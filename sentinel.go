// Package sentinel is a from-scratch reproduction of "Sentinel Scheduling
// for VLIW and Superscalar Processors" (Mahlke, Chen, Hwu, Rau, Schlansker;
// ASPLOS 1992): a compiler and machine substrate for compiler-controlled
// speculative execution with accurate exception detection.
//
// The pipeline is:
//
//	program -> Profile -> FormSuperblocks -> Schedule -> Simulate
//
// Build MIR programs with the re-exported instruction constructors (R, F,
// LOAD, STORE, BR, ...), profile them on a training input, form superblocks
// from the profile, schedule under one of the five speculation models
// (Restricted, General, Sentinel, SentinelStores, plus §2.3's Boosting), and
// run the result on the cycle simulator, which implements the
// exception-tagged register file (Table 1 of the paper), the probationary
// store buffer (Table 2), and shadow register files for boosting.
package sentinel

import (
	"sentinel/internal/core"
	"sentinel/internal/ir"
	"sentinel/internal/machine"
	"sentinel/internal/mem"
	"sentinel/internal/prog"
	"sentinel/internal/sim"
	"sentinel/internal/superblock"
)

// Re-exported core types. Aliases keep the internal packages as the single
// source of truth while giving users one import.
type (
	// Program is an ordered list of labelled blocks of MIR instructions.
	Program = prog.Program
	// Block is one labelled (super)block.
	Block = prog.Block
	// Instr is one MIR instruction.
	Instr = ir.Instr
	// Reg names a machine register.
	Reg = ir.Reg
	// Op is a MIR opcode.
	Op = ir.Op
	// Machine describes the target processor configuration.
	Machine = machine.Desc
	// Model selects the speculative code-motion model.
	Model = machine.Model
	// Memory is the byte-addressable data memory image.
	Memory = mem.Memory
	// Profile is a dynamic execution profile.
	Profile = prog.Profile
	// SimResult is the outcome of a simulated run.
	SimResult = sim.Result
	// RefResult is the outcome of a reference (sequential) run.
	RefResult = prog.Result
	// Stats reports scheduling statistics (sentinels inserted, instructions
	// speculated, ...).
	Stats = core.Stats
	// Exception is a signalled exception with its reported cause.
	Exception = sim.Exception
	// SuperblockOptions tunes superblock formation.
	SuperblockOptions = superblock.Options
	// CPU is the simulated processor state, exposed to exception handlers.
	CPU = sim.Machine
	// Handler decides what happens on a signalled exception; return true to
	// recover (re-execution restarts at the reported PC).
	Handler = sim.Handler
	// Tag is one register's exception tag.
	Tag = sim.Tag
)

// Unhandled extracts the exception from a simulation abort error, if any.
func Unhandled(err error) (Exception, bool) { return sim.Unhandled(err) }

// The scheduling models of the paper (§2, §3, §4), including the
// instruction-boosting related work of §2.3.
const (
	Restricted     = machine.Restricted
	General        = machine.General
	Sentinel       = machine.Sentinel
	SentinelStores = machine.SentinelStores
	Boosting       = machine.Boosting
)

// NewProgram returns an empty program.
func NewProgram() *Program { return prog.NewProgram() }

// NewMemory returns an empty memory image.
func NewMemory() *Memory { return mem.New() }

// BaseMachine returns the paper's base processor (64+64 registers, 8-entry
// store buffer, Table 3 latencies) at the given issue width and model.
func BaseMachine(width int, model Model) Machine { return machine.Base(width, model) }

// Profile executes p sequentially on (a clone of) the training memory and
// returns its execution profile together with the reference architectural
// result.
func ProfileRun(p *Program, m *Memory) (*RefResult, error) {
	p.Layout()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return prog.Run(p, m.Clone(), prog.Options{Collect: true})
}

// FormSuperblocks merges hot traces of p into superblocks using the profile.
func FormSuperblocks(p *Program, prof *Profile, opts SuperblockOptions) *Program {
	return superblock.Form(p, prof, opts)
}

// Schedule list-schedules every block of p for the machine, applying the
// machine's speculation model: dependence-graph reduction, sentinel
// insertion for unprotected speculative instructions, confirm_store
// insertion for speculative stores, and the §3.5/§3.7 supporting
// transformations.
func Schedule(p *Program, md Machine) (*Program, Stats, error) {
	return core.Schedule(p, md)
}

// Simulate runs a scheduled program on the cycle simulator with the given
// memory (mutated in place).
func Simulate(p *Program, md Machine, m *Memory, opts sim.Options) (*SimResult, error) {
	return sim.Run(p, md, m, opts)
}

// SimOptions configures simulation (exception handler, instruction budget).
type SimOptions = sim.Options

// Compile is the full pipeline: profile on the training memory, form
// superblocks, and schedule for md. It returns the scheduled program and
// scheduling statistics.
func Compile(p *Program, train *Memory, md Machine, sbo SuperblockOptions) (*Program, Stats, error) {
	ref, err := ProfileRun(p, train)
	if err != nil {
		return nil, Stats{}, err
	}
	f := FormSuperblocks(p, ref.Profile, sbo)
	f.Layout()
	if err := f.Validate(); err != nil {
		return nil, Stats{}, err
	}
	return core.Schedule(f, md)
}
