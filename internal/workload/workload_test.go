package workload

import (
	"fmt"
	"testing"

	"sentinel/internal/core"
	"sentinel/internal/machine"
	"sentinel/internal/prog"
	"sentinel/internal/sim"
	"sentinel/internal/superblock"
)

// compile runs the full pipeline for one benchmark and machine.
func compile(t *testing.T, b Benchmark, md machine.Desc) (*prog.Program, *prog.Result, core.Stats) {
	t.Helper()
	p, m := b.Build()
	p.Layout()
	if err := p.Validate(); err != nil {
		t.Fatalf("%s: invalid: %v", b.Name, err)
	}
	ref, err := prog.Run(p, m.Clone(), prog.Options{Collect: true})
	if err != nil {
		t.Fatalf("%s: reference run: %v", b.Name, err)
	}
	f := superblock.Form(p, ref.Profile, superblock.Options{})
	f.Layout()
	if err := f.Validate(); err != nil {
		t.Fatalf("%s: formed invalid: %v", b.Name, err)
	}
	sched, stats, err := core.Schedule(f, md)
	if err != nil {
		t.Fatalf("%s: schedule: %v", b.Name, err)
	}
	return sched, ref, stats
}

// TestAllBenchmarksWellFormed: every kernel builds, validates, runs on the
// reference interpreter, and produces nonempty output.
func TestAllBenchmarksWellFormed(t *testing.T) {
	all := All()
	if len(all) == 0 {
		t.Fatal("no benchmarks registered")
	}
	for _, b := range all {
		t.Run(b.Name, func(t *testing.T) {
			p, m := b.Build()
			p.Layout()
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			ref, err := prog.Run(p, m, prog.Options{Collect: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(ref.Out) == 0 {
				t.Error("benchmark produces no output")
			}
			if ref.Instrs < 5000 {
				t.Errorf("only %d dynamic instructions; kernels should be nontrivial", ref.Instrs)
			}
			// There must be a hot block to form a superblock from.
			var hot int64
			for _, c := range ref.Profile.Blocks {
				if c > hot {
					hot = c
				}
			}
			if hot < 100 {
				t.Errorf("hottest block runs only %d times", hot)
			}
		})
	}
}

// TestBenchmarksDifferential: the pipeline preserves architectural results
// for every benchmark, model and width.
func TestBenchmarksDifferential(t *testing.T) {
	models := []machine.Model{machine.Restricted, machine.General,
		machine.Sentinel, machine.SentinelStores, machine.Boosting}
	widths := []int{1, 4, 8}
	for _, b := range All() {
		for _, model := range models {
			for _, w := range widths {
				name := fmt.Sprintf("%s/%v/w%d", b.Name, model, w)
				t.Run(name, func(t *testing.T) {
					md := machine.Base(w, model)
					sched, ref, _ := compile(t, b, md)
					_, m := b.Build()
					res, err := sim.Run(sched, md, m, sim.Options{})
					if err != nil {
						t.Fatalf("simulate: %v", err)
					}
					if res.MemSum != ref.MemSum {
						t.Errorf("memory checksum mismatch")
					}
					if len(res.Out) != len(ref.Out) {
						t.Fatalf("out %v vs %v", res.Out, ref.Out)
					}
					for i := range res.Out {
						if res.Out[i] != ref.Out[i] {
							t.Errorf("out[%d] = %d, want %d", i, res.Out[i], ref.Out[i])
						}
					}
				})
			}
		}
	}
}

// TestBenchmarkClassBalance: the registry must eventually contain the
// paper's 12 non-numeric and 5 numeric programs.
func TestBenchmarkClassBalance(t *testing.T) {
	nn, num := 0, 0
	for _, b := range All() {
		if b.Numeric {
			num++
		} else {
			nn++
		}
	}
	if nn != 12 || num != 5 {
		t.Skipf("registry incomplete: %d non-numeric, %d numeric (want 12+5)", nn, num)
	}
}
