package workload

import (
	"sentinel/internal/ir"
	"sentinel/internal/mem"
	"sentinel/internal/prog"
)

func init() {
	register(Benchmark{
		Name:    "eqntott",
		Profile: "vector compare, data-dependent three-way branch, almost no stores",
		Build:   buildEqntott,
	})
	register(Benchmark{
		Name:    "espresso",
		Profile: "bitmap set operations, disjointness branch, merge store on hot path",
		Build:   buildEspresso,
	})
	register(Benchmark{
		Name:    "xlisp",
		Profile: "cons-cell pointer chase, type-tag branches, mark store below tag branch",
		Build:   buildXlisp,
	})
	register(Benchmark{
		Name:    "yacc",
		Profile: "LR automaton: chained table loads feed the action branch, shift pushes to a stack",
		Build:   buildYacc,
	})
}

// buildEqntott models eqntott's PLA term comparison: walk two vectors and
// classify each pair as less/equal/greater. Branch conditions come from the
// loaded words; the loop stores nothing, so speculative stores buy nothing
// (matching the paper's zero T gain for eqntott).
func buildEqntott() (*prog.Program, *mem.Memory) {
	const (
		aBase = 0x1000
		bBase = 0x8000
		n     = 1800
	)
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), aBase),
		ir.LI(ir.R(2), bBase),
		ir.LI(ir.R(4), n),
		ir.LI(ir.R(5), 0),  // i
		ir.LI(ir.R(6), 0),  // lt
		ir.LI(ir.R(7), 0),  // gt
		ir.LI(ir.R(10), 0), // eq
	)
	p.AddBlock("loop", ir.BR(ir.Bge, ir.R(5), ir.R(4), "done"))
	p.AddBlock("b1",
		ir.LOAD(ir.Ld, ir.R(8), ir.R(1), 0),
		ir.LOAD(ir.Ld, ir.R(9), ir.R(2), 0),
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 8),
		ir.ALUI(ir.Add, ir.R(2), ir.R(2), 8),
		ir.ALUI(ir.Add, ir.R(5), ir.R(5), 1),
		ir.BR(ir.Blt, ir.R(8), ir.R(9), "lt"),
	)
	p.AddBlock("b2", ir.BR(ir.Blt, ir.R(9), ir.R(8), "gt"))
	p.AddBlock("eqv",
		ir.ALUI(ir.Add, ir.R(10), ir.R(10), 1),
		ir.JMP("loop"),
	)
	p.AddBlock("lt",
		ir.ALUI(ir.Add, ir.R(6), ir.R(6), 1),
		ir.JMP("loop"),
	)
	p.AddBlock("gt",
		ir.ALUI(ir.Add, ir.R(7), ir.R(7), 1),
		ir.JMP("loop"),
	)
	p.AddBlock("done",
		ir.JSR("putint", ir.R(6)),
		ir.JSR("putint", ir.R(7)),
		ir.JSR("putint", ir.R(10)),
		ir.HALT(),
	)

	m := mem.New()
	m.Map("a", aBase, n*8)
	m.Map("b", bBase, n*8)
	r := lcg(55)
	for i := 0; i < n; i++ {
		a := r.next() % 1000
		b := a + 1 + r.next()%50 // bias: a < b about 70% of the time
		if r.intn(100) < 30 {
			b = a - r.next()%30
		}
		m.Write(aBase+int64(i)*8, 8, a)
		m.Write(bBase+int64(i)*8, 8, b)
	}
	return p, m
}

// buildEspresso models espresso's cube operations: intersect bitmap words;
// when they overlap (the hot case), store the union into the result cover.
func buildEspresso() (*prog.Program, *mem.Memory) {
	const (
		aBase = 0x1000
		bBase = 0x8000
		oBase = 0x10000
		n     = 1500
	)
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), aBase),
		ir.LI(ir.R(2), bBase),
		ir.LI(ir.R(3), oBase),
		ir.LI(ir.R(4), n),
		ir.LI(ir.R(5), 0), // i
		ir.LI(ir.R(9), 0), // merge count
	)
	p.AddBlock("loop", ir.BR(ir.Bge, ir.R(5), ir.R(4), "done"))
	p.AddBlock("b1",
		ir.LOAD(ir.Ld, ir.R(6), ir.R(1), 0),
		ir.LOAD(ir.Ld, ir.R(7), ir.R(2), 0),
		ir.ALU(ir.And, ir.R(8), ir.R(6), ir.R(7)),
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 8),
		ir.ALUI(ir.Add, ir.R(2), ir.R(2), 8),
		ir.ALUI(ir.Add, ir.R(5), ir.R(5), 1),
		ir.BRI(ir.Beq, ir.R(8), 0, "disjoint"),
	)
	p.AddBlock("merge",
		ir.ALU(ir.Or, ir.R(11), ir.R(6), ir.R(7)),
		ir.STORE(ir.St, ir.R(3), 0, ir.R(11)),
		ir.ALUI(ir.Add, ir.R(3), ir.R(3), 8),
		ir.ALUI(ir.Add, ir.R(9), ir.R(9), 1),
		ir.JMP("loop"),
	)
	p.AddBlock("disjoint",
		ir.ALUI(ir.Add, ir.R(3), ir.R(3), 8),
		ir.JMP("loop"),
	)
	p.AddBlock("done",
		ir.JSR("putint", ir.R(9)),
		ir.HALT(),
	)

	m := mem.New()
	m.Map("a", aBase, n*8)
	m.Map("b", bBase, n*8)
	m.Map("out", oBase, n*8)
	r := lcg(66)
	for i := 0; i < n; i++ {
		a := r.next() | 0x10 // ensure some bits
		b := r.next()
		if r.intn(100) < 25 {
			b = ^a // disjoint-ish 25% of the time
		}
		m.Write(aBase+int64(i)*8, 8, a)
		m.Write(bBase+int64(i)*8, 8, b)
	}
	return p, m
}

// buildXlisp models xlisp's garbage-collector marking walk: chase a list of
// cons cells, branch on the loaded type tag, sum number payloads, and mark
// each visited numeric cell (store below the tag branch). The next-pointer
// chain bounds ILP; gains come from hoisting the tag and payload loads.
func buildXlisp() (*prog.Program, *mem.Memory) {
	const (
		heapBase = 0x1000
		nodes    = 1400
		nodeSize = 24 // tag, payload, next
	)
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), heapBase), // head pointer cell
		ir.LOAD(ir.Ld, ir.R(2), ir.R(1), 0),
		ir.LI(ir.R(3), 0), // numeric sum
		ir.LI(ir.R(6), 0), // symbols seen
	)
	p.AddBlock("loop", ir.BRI(ir.Beq, ir.R(2), 0, "done"))
	p.AddBlock("b1",
		ir.LOAD(ir.Ld, ir.R(4), ir.R(2), 0), // tag
		ir.BRI(ir.Bne, ir.R(4), 1, "sym"),
	)
	p.AddBlock("num",
		ir.LOAD(ir.Ld, ir.R(5), ir.R(2), 8), // payload
		ir.ALU(ir.Add, ir.R(3), ir.R(3), ir.R(5)),
		ir.LI(ir.R(7), 3),
		ir.STORE(ir.St, ir.R(2), 0, ir.R(7)), // mark: store below tag branch
	)
	p.AddBlock("next",
		ir.LOAD(ir.Ld, ir.R(2), ir.R(2), 16),
		ir.JMP("loop"),
	)
	p.AddBlock("sym",
		ir.ALUI(ir.Add, ir.R(6), ir.R(6), 1),
		ir.JMP("next"),
	)
	p.AddBlock("done",
		ir.JSR("putint", ir.R(3)),
		ir.JSR("putint", ir.R(6)),
		ir.HALT(),
	)

	m := mem.New()
	m.Map("heap", heapBase, 16+nodes*nodeSize)
	first := int64(heapBase + 16)
	m.Write(heapBase, 8, uint64(first))
	r := lcg(77)
	for i := 0; i < nodes; i++ {
		node := first + int64(i)*nodeSize
		tag := uint64(1) // number
		if r.intn(100) < 35 {
			tag = 2 // symbol
		}
		m.Write(node, 8, tag)
		m.Write(node+8, 8, r.next()%500)
		next := uint64(0)
		if i < nodes-1 {
			next = uint64(node + nodeSize)
		}
		m.Write(node+16, 8, next)
	}
	return p, m
}

// buildYacc models yacc's LR driver: a token indexes the action table
// through the current state (chained loads feeding the branch); shifts push
// the token onto a stack (hot store below the data-dependent branch),
// reduces pop and fold.
func buildYacc() (*prog.Program, *mem.Memory) {
	const (
		tokBase   = 0x1000
		nTok      = 1600
		tabBase   = 0x8000 // 8 states x 8 tokens x 8 bytes
		stackBase = 0x10000
	)
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), tokBase),
		ir.LI(ir.R(2), tokBase+nTok),
		ir.LI(ir.R(3), tabBase),
		ir.LI(ir.R(11), stackBase), // stack pointer
		ir.LI(ir.R(12), stackBase), // stack floor
		ir.LI(ir.R(13), 0),         // state
		ir.LI(ir.R(14), 0),         // reduce accumulator
	)
	p.AddBlock("loop", ir.BR(ir.Bge, ir.R(1), ir.R(2), "done"))
	p.AddBlock("b1",
		ir.LOAD(ir.Ldb, ir.R(4), ir.R(1), 0), // token (0..7)
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 1),
		ir.ALUI(ir.Shl, ir.R(15), ir.R(13), 3),
		ir.ALU(ir.Add, ir.R(16), ir.R(15), ir.R(4)),
		ir.ALUI(ir.Shl, ir.R(17), ir.R(16), 3),
		ir.ALU(ir.Add, ir.R(5), ir.R(17), ir.R(3)),
		ir.LOAD(ir.Ld, ir.R(6), ir.R(5), 0), // action
		ir.BRI(ir.Blt, ir.R(6), 0, "reduce"),
	)
	p.AddBlock("shift",
		ir.STORE(ir.St, ir.R(11), 0, ir.R(4)), // push token
		ir.ALUI(ir.Add, ir.R(11), ir.R(11), 8),
		ir.ALUI(ir.And, ir.R(13), ir.R(6), 7), // new state
		ir.JMP("loop"),
	)
	p.AddBlock("reduce", ir.BR(ir.Bge, ir.R(12), ir.R(11), "redempty"))
	p.AddBlock("redpop",
		ir.ALUI(ir.Sub, ir.R(11), ir.R(11), 8),
		ir.LOAD(ir.Ld, ir.R(9), ir.R(11), 0),
		ir.ALU(ir.Add, ir.R(14), ir.R(14), ir.R(9)),
		ir.ALUI(ir.And, ir.R(13), ir.R(6), 3),
		ir.JMP("loop"),
	)
	p.AddBlock("redempty",
		ir.LI(ir.R(13), 0),
		ir.JMP("loop"),
	)
	p.AddBlock("done",
		ir.JSR("putint", ir.R(14)),
		ir.JSR("putint", ir.R(13)),
		ir.HALT(),
	)

	m := mem.New()
	seg := m.Map("tokens", tokBase, nTok)
	tab := m.Map("table", tabBase, 8*8*8)
	m.Map("stack", stackBase, (nTok+2)*8)
	r := lcg(88)
	for i := range seg.Data {
		seg.Data[i] = byte(r.intn(8))
	}
	for i := 0; i < 64; i++ {
		var action int64
		if r.intn(100) < 35 { // 35% reduce
			action = -int64(r.intn(8) + 1)
		} else {
			action = int64(r.intn(8))
		}
		tab.Data[i*8] = byte(action)
		if action < 0 {
			for b := 1; b < 8; b++ {
				tab.Data[i*8+b] = 0xff // sign extension
			}
		}
	}
	return p, m
}
