package workload

import (
	"sentinel/internal/ir"
	"sentinel/internal/mem"
	"sentinel/internal/prog"
)

func init() {
	register(Benchmark{
		Name:    "lex",
		Profile: "DFA scan: char -> class -> transition chained loads feed the accept branch",
		Build:   buildLex,
	})
	register(Benchmark{
		Name:    "cccp",
		Profile: "character copy loop, store per char below the directive branch",
		Build:   buildCccp,
	})
	register(Benchmark{
		Name:    "eqn",
		Profile: "token stream, operator/operand branch, position store on both paths",
		Build:   buildEqn,
	})
	register(Benchmark{
		Name:    "tbl",
		Profile: "column-max computation: compare branch with conditional store",
		Build:   buildTbl,
	})
}

// buildLex models a lex-generated scanner: each input byte is classified
// through a class table and then drives a DFA transition table; accepting
// states emit tokens. Two chained loads feed every branch, the pattern where
// restricted percolation loses the most.
func buildLex() (*prog.Program, *mem.Memory) {
	const (
		inBase   = 0x1000
		inLen    = 2500
		clsBase  = 0x8000  // 256 bytes: char class (0..3)
		dfaBase  = 0x9000  // 8 states x 4 classes x 8 bytes
		tokBase  = 0x10000 // token positions
		nStates  = 8
		acceptSt = 5
	)
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), inBase),
		ir.LI(ir.R(2), inBase+inLen),
		ir.LI(ir.R(3), clsBase),
		ir.LI(ir.R(4), dfaBase),
		ir.LI(ir.R(10), tokBase),
		ir.LI(ir.R(13), 0), // state
		ir.LI(ir.R(9), 0),  // token count
	)
	p.AddBlock("loop", ir.BR(ir.Bge, ir.R(1), ir.R(2), "done"))
	p.AddBlock("b1",
		ir.LOAD(ir.Ldb, ir.R(5), ir.R(1), 0), // char
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 1),
		ir.ALU(ir.Add, ir.R(6), ir.R(3), ir.R(5)),
		ir.LOAD(ir.Ldb, ir.R(7), ir.R(6), 0), // class
		ir.ALUI(ir.Shl, ir.R(14), ir.R(13), 2),
		ir.ALU(ir.Add, ir.R(15), ir.R(14), ir.R(7)),
		ir.ALUI(ir.Shl, ir.R(16), ir.R(15), 3),
		ir.ALU(ir.Add, ir.R(8), ir.R(16), ir.R(4)),
		ir.LOAD(ir.Ld, ir.R(13), ir.R(8), 0), // next state
		ir.BRI(ir.Beq, ir.R(13), acceptSt, "accept"),
	)
	p.AddBlock("cont", ir.JMP("loop"))
	p.AddBlock("accept",
		ir.ALUI(ir.Add, ir.R(9), ir.R(9), 1),
		ir.STORE(ir.St, ir.R(10), 0, ir.R(1)), // token position
		ir.ALUI(ir.Add, ir.R(10), ir.R(10), 8),
		ir.LI(ir.R(13), 0),
		ir.JMP("loop"),
	)
	p.AddBlock("done",
		ir.JSR("putint", ir.R(9)),
		ir.JSR("putint", ir.R(13)),
		ir.HALT(),
	)

	m := mem.New()
	in := m.Map("input", inBase, inLen)
	cls := m.Map("class", clsBase, 256)
	dfa := m.Map("dfa", dfaBase, nStates*4*8)
	m.Map("tokens", tokBase, (inLen+1)*8)
	r := lcg(99)
	for i := range in.Data {
		in.Data[i] = byte('a' + r.intn(26))
	}
	for i := range cls.Data {
		cls.Data[i] = byte(i % 4)
	}
	for i := 0; i < nStates*4; i++ {
		next := r.intn(nStates)
		dfa.Data[i*8] = byte(next)
	}
	return p, m
}

// buildCccp models cccp's copy loop: every non-directive character is copied
// to the output buffer (a store on the hot path, below the branch that
// classifies the character).
func buildCccp() (*prog.Program, *mem.Memory) {
	const (
		inBase  = 0x1000
		inLen   = 2600
		outBase = 0x8000
	)
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), inBase),
		ir.LI(ir.R(2), inBase+inLen),
		ir.LI(ir.R(3), outBase),
		ir.LI(ir.R(8), 0), // directive count
		ir.LI(ir.R(9), 0), // line count
	)
	p.AddBlock("loop", ir.BR(ir.Bge, ir.R(1), ir.R(2), "done"))
	p.AddBlock("b1",
		ir.LOAD(ir.Ldb, ir.R(4), ir.R(1), 0),
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 1),
		ir.BRI(ir.Beq, ir.R(4), '#', "directive"),
	)
	p.AddBlock("b2", ir.BRI(ir.Beq, ir.R(4), '\n', "newline"))
	p.AddBlock("copy",
		ir.STORE(ir.Stb, ir.R(3), 0, ir.R(4)),
		ir.ALUI(ir.Add, ir.R(3), ir.R(3), 1),
		ir.JMP("loop"),
	)
	p.AddBlock("newline",
		ir.ALUI(ir.Add, ir.R(9), ir.R(9), 1),
		ir.STORE(ir.Stb, ir.R(3), 0, ir.R(4)),
		ir.ALUI(ir.Add, ir.R(3), ir.R(3), 1),
		ir.JMP("loop"),
	)
	p.AddBlock("directive",
		ir.ALUI(ir.Add, ir.R(8), ir.R(8), 1),
		ir.JMP("loop"),
	)
	p.AddBlock("done",
		ir.JSR("putint", ir.R(8)),
		ir.JSR("putint", ir.R(9)),
		ir.HALT(),
	)

	m := mem.New()
	in := m.Map("input", inBase, inLen)
	m.Map("output", outBase, inLen+8)
	r := lcg(111)
	for i := range in.Data {
		switch x := r.intn(100); {
		case x < 3:
			in.Data[i] = '#'
		case x < 8:
			in.Data[i] = '\n'
		default:
			in.Data[i] = byte('a' + r.intn(26))
		}
	}
	return p, m
}

// buildEqn models eqn's token layout pass: each token record (kind, width)
// is classified by a loaded kind; both paths advance a running position and
// store it back into the record.
func buildEqn() (*prog.Program, *mem.Memory) {
	const (
		tokBase = 0x1000
		nTok    = 1100
		recSize = 24 // kind, width, position
	)
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), tokBase),
		ir.LI(ir.R(2), nTok),
		ir.LI(ir.R(5), 0), // i
		ir.LI(ir.R(6), 0), // position
		ir.LI(ir.R(9), 0), // operator count
	)
	p.AddBlock("loop", ir.BR(ir.Bge, ir.R(5), ir.R(2), "done"))
	p.AddBlock("b1",
		ir.LOAD(ir.Ld, ir.R(4), ir.R(1), 0), // kind
		ir.LOAD(ir.Ld, ir.R(7), ir.R(1), 8), // width
		ir.BRI(ir.Beq, ir.R(4), 1, "operator"),
	)
	p.AddBlock("operand",
		ir.ALU(ir.Add, ir.R(6), ir.R(6), ir.R(7)),
		ir.STORE(ir.St, ir.R(1), 16, ir.R(6)),
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), recSize),
		ir.ALUI(ir.Add, ir.R(5), ir.R(5), 1),
		ir.JMP("loop"),
	)
	p.AddBlock("operator",
		ir.ALUI(ir.Add, ir.R(6), ir.R(6), 2), // fixed operator spacing
		ir.ALUI(ir.Add, ir.R(9), ir.R(9), 1),
		ir.STORE(ir.St, ir.R(1), 16, ir.R(6)),
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), recSize),
		ir.ALUI(ir.Add, ir.R(5), ir.R(5), 1),
		ir.JMP("loop"),
	)
	p.AddBlock("done",
		ir.JSR("putint", ir.R(6)),
		ir.JSR("putint", ir.R(9)),
		ir.HALT(),
	)

	m := mem.New()
	m.Map("tokens", tokBase, nTok*recSize)
	r := lcg(122)
	for i := 0; i < nTok; i++ {
		rec := int64(tokBase + i*recSize)
		kind := uint64(0)
		if r.intn(100) < 30 {
			kind = 1
		}
		m.Write(rec, 8, kind)
		m.Write(rec+8, 8, 1+r.next()%9)
	}
	return p, m
}

// buildTbl models tbl's column-width pass: each cell length is compared
// against the current column maximum (loaded), and the maximum is
// conditionally stored back.
func buildTbl() (*prog.Program, *mem.Memory) {
	const (
		cellBase = 0x1000
		nCells   = 1600
		maxBase  = 0x8000 // 4 columns
	)
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), cellBase),
		ir.LI(ir.R(2), nCells),
		ir.LI(ir.R(3), maxBase),
		ir.LI(ir.R(5), 0), // i
		ir.LI(ir.R(9), 0), // update count
	)
	p.AddBlock("loop", ir.BR(ir.Bge, ir.R(5), ir.R(2), "done"))
	p.AddBlock("b1",
		ir.LOAD(ir.Ld, ir.R(4), ir.R(1), 0), // cell length
		ir.ALUI(ir.And, ir.R(14), ir.R(5), 3),
		ir.ALUI(ir.Shl, ir.R(15), ir.R(14), 3),
		ir.ALU(ir.Add, ir.R(6), ir.R(15), ir.R(3)),
		ir.LOAD(ir.Ld, ir.R(7), ir.R(6), 0), // current max
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 8),
		ir.ALUI(ir.Add, ir.R(5), ir.R(5), 1),
		ir.BR(ir.Bge, ir.R(7), ir.R(4), "keep"),
	)
	p.AddBlock("update",
		ir.STORE(ir.St, ir.R(6), 0, ir.R(4)),
		ir.ALUI(ir.Add, ir.R(9), ir.R(9), 1),
		ir.JMP("loop"),
	)
	p.AddBlock("keep", ir.JMP("loop"))
	p.AddBlock("done",
		ir.LOAD(ir.Ld, ir.R(10), ir.R(3), 0),
		ir.LOAD(ir.Ld, ir.R(11), ir.R(3), 8),
		ir.ALU(ir.Add, ir.R(10), ir.R(10), ir.R(11)),
		ir.JSR("putint", ir.R(9)),
		ir.JSR("putint", ir.R(10)),
		ir.HALT(),
	)

	m := mem.New()
	m.Map("cells", cellBase, nCells*8)
	m.Map("max", maxBase, 4*8)
	r := lcg(133)
	for i := 0; i < nCells; i++ {
		// Mostly small lengths so updates become rarer over time.
		m.Write(cellBase+int64(i)*8, 8, r.next()%64)
	}
	return p, m
}
