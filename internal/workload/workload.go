// Package workload provides the 17 synthetic benchmark kernels standing in
// for the paper's evaluation programs (§5.1): 12 non-numeric programs
// (cccp, cmp, compress, eqn, eqntott, espresso, grep, lex, tbl, wc, xlisp,
// yacc) and 5 numeric SPEC programs (doduc, fpppp, matrix300, nasa7,
// tomcatv).
//
// We do not have the IMPACT-I C front end or the original benchmark
// sources, so each kernel is a from-scratch MIR program that (a) computes a
// real, checkable result, and (b) reproduces the scheduling-relevant
// character the paper reports for its namesake: branch density, whether
// branch conditions depend on loaded data, load/store mix, floating-point
// content, and dependence-chain shape. DESIGN.md documents this substitution
// and why it preserves the evaluation's shape.
package workload

import (
	"sort"

	"sentinel/internal/mem"
	"sentinel/internal/prog"
)

// Benchmark is one synthetic kernel.
type Benchmark struct {
	Name string
	// Numeric groups the benchmark with the paper's numeric programs for
	// the Figure 4/5 averages.
	Numeric bool
	// Profile describes the scheduling-relevant character being modelled.
	Profile string
	// Build returns a fresh program and its input memory image. Every call
	// constructs new state from scratch (builders share no mutable package
	// state), so Build is safe to call from multiple goroutines and the
	// returned program/memory are exclusively the caller's.
	Build func() (*prog.Program, *mem.Memory)
}

var registry = map[string]Benchmark{}

func register(b Benchmark) {
	if _, dup := registry[b.Name]; dup {
		panic("workload: duplicate benchmark " + b.Name)
	}
	registry[b.Name] = b
}

// All returns every benchmark: non-numeric first, then numeric, each group
// alphabetical — the order of the paper's figures.
func All() []Benchmark {
	var nn, num []Benchmark
	for _, b := range registry {
		if b.Numeric {
			num = append(num, b)
		} else {
			nn = append(nn, b)
		}
	}
	sort.Slice(nn, func(i, j int) bool { return nn[i].Name < nn[j].Name })
	sort.Slice(num, func(i, j int) bool { return num[i].Name < num[j].Name })
	return append(nn, num...)
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, bool) {
	b, ok := registry[name]
	return b, ok
}

// lcg is a deterministic pseudo-random generator for input data.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 16)
}

func (r *lcg) intn(n int) int { return int(r.next() % uint64(n)) }
