package workload

import (
	"sentinel/internal/ir"
	"sentinel/internal/mem"
	"sentinel/internal/prog"
)

func init() {
	register(Benchmark{
		Name:    "wc",
		Profile: "byte scan, branch conditions from loaded bytes, no hot stores",
		Build:   buildWC,
	})
	register(Benchmark{
		Name:    "cmp",
		Profile: "paired loads, data-dependent branch, store on every hot iteration below it",
		Build:   buildCmp,
	})
	register(Benchmark{
		Name:    "grep",
		Profile: "text scan with lookahead load used past its home block (unprotected when speculated)",
		Build:   buildGrep,
	})
	register(Benchmark{
		Name:    "compress",
		Profile: "hash-table lookup, data-dependent hit/miss branch, table-update store on hot miss path",
		Build:   buildCompress,
	})
}

// buildWC models wc: count lines, words and characters of a text buffer.
// Branch conditions come straight from loaded bytes, so restricted
// percolation serializes load -> branch -> next load; there are no stores in
// the hot loop, so speculative stores buy nothing (the paper reports no T
// gain for wc).
func buildWC() (*prog.Program, *mem.Memory) {
	const (
		textBase = 0x1000
		textLen  = 4000
	)
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), textBase),
		ir.LI(ir.R(2), textBase+textLen),
		ir.LI(ir.R(3), 0), // lines
		ir.LI(ir.R(4), 0), // words
		ir.LI(ir.R(5), 0), // chars
		ir.LI(ir.R(6), 0), // in-word flag
	)
	p.AddBlock("loop", ir.BR(ir.Bge, ir.R(1), ir.R(2), "done"))
	p.AddBlock("b1",
		ir.LOAD(ir.Ldb, ir.R(7), ir.R(1), 0),
		ir.ALUI(ir.Add, ir.R(5), ir.R(5), 1),
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 1),
		ir.BRI(ir.Beq, ir.R(7), ' ', "wsp"),
	)
	p.AddBlock("b2", ir.BRI(ir.Beq, ir.R(7), '\n', "nl"))
	p.AddBlock("b3", ir.BRI(ir.Bne, ir.R(6), 0, "cont"))
	p.AddBlock("b4",
		ir.ALUI(ir.Add, ir.R(4), ir.R(4), 1),
		ir.LI(ir.R(6), 1),
	)
	p.AddBlock("cont", ir.JMP("loop"))
	p.AddBlock("nl",
		ir.ALUI(ir.Add, ir.R(3), ir.R(3), 1),
		ir.LI(ir.R(6), 0),
		ir.JMP("loop"),
	)
	p.AddBlock("wsp",
		ir.LI(ir.R(6), 0),
		ir.JMP("loop"),
	)
	p.AddBlock("done",
		ir.JSR("putint", ir.R(3)),
		ir.JSR("putint", ir.R(4)),
		ir.JSR("putint", ir.R(5)),
		ir.HALT(),
	)

	m := mem.New()
	seg := m.Map("text", textBase, textLen)
	r := lcg(11)
	for i := range seg.Data {
		switch x := r.intn(100); {
		case x < 13:
			seg.Data[i] = ' '
		case x < 15:
			seg.Data[i] = '\n'
		default:
			seg.Data[i] = byte('a' + r.intn(26))
		}
	}
	return p, m
}

// buildCmp models cmp -l: compare two mostly equal word arrays, recording
// the position (pointer and index, both ready early) of every comparison in
// a trace buffer. The hot path stores on every iteration BELOW a
// data-dependent equality branch while the stored values are available
// before the branch resolves — the pattern that gives cmp its large
// speculative-store gain in the paper.
func buildCmp() (*prog.Program, *mem.Memory) {
	const (
		aBase = 0x1000
		bBase = 0x8000
		oBase = 0x10000
		n     = 1500
	)
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), aBase),
		ir.LI(ir.R(2), bBase),
		ir.LI(ir.R(3), oBase),
		ir.LI(ir.R(4), n),
		ir.LI(ir.R(5), 0), // i
		ir.LI(ir.R(9), 0), // diff count
	)
	p.AddBlock("loop", ir.BR(ir.Bge, ir.R(5), ir.R(4), "done"))
	p.AddBlock("b1",
		ir.LOAD(ir.Ld, ir.R(6), ir.R(1), 0),
		ir.LOAD(ir.Ld, ir.R(7), ir.R(2), 0),
		ir.BR(ir.Bne, ir.R(6), ir.R(7), "diff"),
	)
	p.AddBlock("same",
		ir.STORE(ir.St, ir.R(3), 0, ir.R(1)), // record position (ready early)
		ir.STORE(ir.St, ir.R(3), 8, ir.R(5)), // record index (ready early)
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 8),
		ir.ALUI(ir.Add, ir.R(2), ir.R(2), 8),
		ir.ALUI(ir.Add, ir.R(3), ir.R(3), 16),
		ir.ALUI(ir.Add, ir.R(5), ir.R(5), 1),
		ir.JMP("loop"),
	)
	p.AddBlock("diff",
		ir.ALUI(ir.Add, ir.R(9), ir.R(9), 1),
		ir.ALU(ir.Xor, ir.R(8), ir.R(6), ir.R(7)),
		ir.STORE(ir.St, ir.R(3), 0, ir.R(8)),
		ir.STORE(ir.St, ir.R(3), 8, ir.R(5)),
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 8),
		ir.ALUI(ir.Add, ir.R(2), ir.R(2), 8),
		ir.ALUI(ir.Add, ir.R(3), ir.R(3), 16),
		ir.ALUI(ir.Add, ir.R(5), ir.R(5), 1),
		ir.JMP("loop"),
	)
	p.AddBlock("done",
		ir.JSR("putint", ir.R(9)),
		ir.HALT(),
	)

	m := mem.New()
	m.Map("a", aBase, n*8)
	m.Map("b", bBase, n*8)
	m.Map("out", oBase, n*16)
	r := lcg(22)
	for i := 0; i < n; i++ {
		v := r.next() % 1000
		m.Write(aBase+int64(i)*8, 8, v)
		w := v
		if r.intn(100) < 3 { // 3% differences
			w = v + 1
		}
		m.Write(bBase+int64(i)*8, 8, w)
	}
	return p, m
}

// buildGrep models grep: scan text for a pattern head byte, with a lookahead
// byte consumed only past the branch. The lookahead load has no use in its
// home block, so speculating it requires an explicit check_exception — the
// sentinel slot pressure that makes grep the paper's worst case for
// sentinel-vs-general at issue 2.
func buildGrep() (*prog.Program, *mem.Memory) {
	const (
		textBase = 0x1000
		textLen  = 4000
		posBase  = 0x8000
		pat      = 'q' // rare
	)
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), textBase),
		ir.LI(ir.R(2), textBase+textLen-1),
		ir.LI(ir.R(3), 0),        // match count
		ir.LI(ir.R(6), 0),        // rolling checksum of lookahead bytes
		ir.LI(ir.R(10), posBase), // line-position trace buffer
	)
	p.AddBlock("loop", ir.BR(ir.Bge, ir.R(1), ir.R(2), "done"))
	p.AddBlock("b1",
		ir.LOAD(ir.Ldb, ir.R(4), ir.R(1), 0), // current byte: feeds the branch
		ir.LOAD(ir.Ldb, ir.R(5), ir.R(1), 1), // lookahead: used after the branch
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 1),
		ir.BRI(ir.Beq, ir.R(4), pat, "match"),
	)
	p.AddBlock("cont",
		ir.ALU(ir.Add, ir.R(6), ir.R(6), ir.R(5)), // lookahead use, next home block
		ir.STORE(ir.St, ir.R(10), 0, ir.R(1)),     // record scan position (grep -n bookkeeping)
		ir.ALUI(ir.Add, ir.R(10), ir.R(10), 8),
		ir.JMP("loop"),
	)
	p.AddBlock("match",
		ir.ALUI(ir.Add, ir.R(3), ir.R(3), 1),
		ir.JMP("loop"),
	)
	p.AddBlock("done",
		ir.JSR("putint", ir.R(3)),
		ir.JSR("putint", ir.R(6)),
		ir.HALT(),
	)

	m := mem.New()
	seg := m.Map("text", textBase, textLen)
	m.Map("pos", posBase, (textLen+1)*8)
	r := lcg(33)
	for i := range seg.Data {
		if r.intn(100) < 2 {
			seg.Data[i] = pat
		} else {
			seg.Data[i] = byte('a' + r.intn(16))
		}
	}
	return p, m
}

// buildCompress models compress: a rolling hash indexes a 256-entry table;
// the hot miss path updates the table (store below a data-dependent
// branch), giving a moderate speculative-store gain.
func buildCompress() (*prog.Program, *mem.Memory) {
	const (
		srcBase = 0x1000
		srcLen  = 3000
		tabBase = 0x8000
	)
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), srcBase),
		ir.LI(ir.R(2), srcBase+srcLen),
		ir.LI(ir.R(3), tabBase),
		ir.LI(ir.R(5), 0),  // hash
		ir.LI(ir.R(6), 0),  // hits
		ir.LI(ir.R(10), 0), // misses
	)
	p.AddBlock("loop", ir.BR(ir.Bge, ir.R(1), ir.R(2), "done"))
	p.AddBlock("b1",
		ir.LOAD(ir.Ldb, ir.R(4), ir.R(1), 0),
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 1),
		ir.ALUI(ir.Shl, ir.R(5), ir.R(5), 2),
		ir.ALU(ir.Xor, ir.R(5), ir.R(5), ir.R(4)),
		ir.ALUI(ir.And, ir.R(5), ir.R(5), 255),
		ir.ALUI(ir.Shl, ir.R(15), ir.R(5), 3),
		ir.ALU(ir.Add, ir.R(9), ir.R(15), ir.R(3)),
		ir.LOAD(ir.Ld, ir.R(8), ir.R(9), 0),
		ir.BR(ir.Beq, ir.R(8), ir.R(4), "hit"),
	)
	p.AddBlock("miss",
		ir.STORE(ir.St, ir.R(9), 0, ir.R(4)),
		ir.ALUI(ir.Add, ir.R(10), ir.R(10), 1),
		ir.JMP("loop"),
	)
	p.AddBlock("hit",
		ir.ALUI(ir.Add, ir.R(6), ir.R(6), 1),
		ir.JMP("loop"),
	)
	p.AddBlock("done",
		ir.JSR("putint", ir.R(6)),
		ir.JSR("putint", ir.R(10)),
		ir.HALT(),
	)

	m := mem.New()
	seg := m.Map("src", srcBase, srcLen)
	m.Map("table", tabBase, 256*8)
	r := lcg(44)
	for i := range seg.Data {
		seg.Data[i] = byte('a' + r.intn(8)) // small alphabet: decent hit rate
	}
	return p, m
}
