package workload

import (
	"testing"

	"sentinel/internal/core"
	"sentinel/internal/ir"
	"sentinel/internal/machine"
	"sentinel/internal/mem"
	"sentinel/internal/prog"
	"sentinel/internal/sim"
	"sentinel/internal/superblock"
)

// hotBlock compiles b under the given model at issue 8 and returns the
// hottest superblock of the scheduled program plus the scheduling stats.
func hotBlock(t *testing.T, name string, model machine.Model) (*prog.Block, core.Stats) {
	t.Helper()
	b, ok := ByName(name)
	if !ok {
		t.Fatalf("no benchmark %q", name)
	}
	p, m := b.Build()
	p.Layout()
	ref, err := prog.Run(p, m, prog.Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	f := superblock.Form(p, ref.Profile, superblock.Options{})
	f.Layout()
	sched, stats, err := core.Schedule(f, machine.Base(8, model))
	if err != nil {
		t.Fatal(err)
	}
	var hot *prog.Block
	for _, blk := range sched.Blocks {
		if blk.Superblock && (hot == nil || blk.WeightHint > hot.WeightHint) {
			hot = blk
		}
	}
	if hot == nil {
		t.Fatalf("%s: no superblock formed", name)
	}
	return hot, stats
}

func count(b *prog.Block, pred func(*ir.Instr) bool) int {
	n := 0
	for _, in := range b.Instrs {
		if pred(in) {
			n++
		}
	}
	return n
}

// TestKernelCharacter pins each kernel's scheduling-relevant structure to
// what DESIGN.md documents, so future edits cannot silently change the
// evaluation's meaning.
func TestKernelCharacter(t *testing.T) {
	isStore := func(in *ir.Instr) bool { return ir.BufferedStore(in.Op) }
	isBranch := func(in *ir.Instr) bool { return ir.IsBranch(in.Op) }
	isFP := func(in *ir.Instr) bool {
		return ir.UnitOf(in.Op) == ir.UnitFPALU || ir.UnitOf(in.Op) == ir.UnitFPMul || ir.UnitOf(in.Op) == ir.UnitFPDiv
	}
	isCheck := func(in *ir.Instr) bool { return in.Op == ir.Check }

	t.Run("wc has no hot stores", func(t *testing.T) {
		hot, _ := hotBlock(t, "wc", machine.SentinelStores)
		if n := count(hot, isStore); n != 0 {
			t.Errorf("wc hot loop has %d stores, want 0 (paper: no T gain)", n)
		}
	})
	t.Run("eqntott has no hot stores", func(t *testing.T) {
		hot, _ := hotBlock(t, "eqntott", machine.SentinelStores)
		if n := count(hot, isStore); n != 0 {
			t.Errorf("eqntott hot loop has %d stores, want 0", n)
		}
	})
	t.Run("grep inserts explicit sentinels", func(t *testing.T) {
		hot, stats := hotBlock(t, "grep", machine.Sentinel)
		if stats.Sentinels == 0 || count(hot, isCheck) == 0 {
			t.Errorf("grep must need check_exception sentinels (lookahead load is unprotected); stats=%+v", stats)
		}
	})
	t.Run("cmp speculates stores under T", func(t *testing.T) {
		_, stats := hotBlock(t, "cmp", machine.SentinelStores)
		if stats.Confirms == 0 {
			t.Errorf("cmp must speculate stores under sentinel+stores; stats=%+v", stats)
		}
	})
	t.Run("counted numeric loops lose interior tests", func(t *testing.T) {
		for _, name := range []string{"matrix300", "fpppp"} {
			hot, _ := hotBlock(t, name, machine.Restricted)
			if n := count(hot, isBranch); n != 1 {
				t.Errorf("%s hot loop has %d branches, want 1 (counted unrolling)", name, n)
			}
		}
	})
	t.Run("branchy kernels keep per-iteration branches", func(t *testing.T) {
		for _, name := range []string{"wc", "doduc", "tomcatv"} {
			hot, _ := hotBlock(t, name, machine.Sentinel)
			if n := count(hot, isBranch); n < 2 {
				t.Errorf("%s hot loop has only %d branches; its character is branchy", name, n)
			}
		}
	})
	t.Run("numeric kernels are FP-dominated", func(t *testing.T) {
		for _, name := range []string{"doduc", "fpppp", "matrix300", "nasa7", "tomcatv"} {
			hot, _ := hotBlock(t, name, machine.Sentinel)
			if n := count(hot, isFP); n == 0 {
				t.Errorf("%s hot loop has no FP arithmetic", name)
			}
		}
	})
	t.Run("non-numeric kernels have no FP", func(t *testing.T) {
		for _, b := range All() {
			if b.Numeric {
				continue
			}
			hot, _ := hotBlock(t, b.Name, machine.Sentinel)
			if n := count(hot, isFP); n != 0 {
				t.Errorf("%s (non-numeric) hot loop has %d FP instructions", b.Name, n)
			}
		}
	})
	t.Run("lex chains loads", func(t *testing.T) {
		// lex's DFA walk: a load whose address depends on another load's
		// value must appear in the hot loop (char -> class -> transition).
		hot, _ := hotBlock(t, "lex", machine.Sentinel)
		loads := count(hot, func(in *ir.Instr) bool { return ir.IsLoad(in.Op) })
		if loads < 3 {
			t.Errorf("lex hot loop has %d loads, want >= 3 (chained lookups)", loads)
		}
	})
	t.Run("tomcatv gains little from speculative stores", func(t *testing.T) {
		// The paper reports no T gain for tomcatv: its stores sit before the
		// convergence branch of their own iteration. Speculative stores may
		// move them across earlier unrolled iterations' branches, but the
		// cycle effect must stay small.
		cycles := func(model machine.Model) int64 {
			b, _ := ByName("tomcatv")
			md := machine.Base(8, model)
			sched, stats := compileFor(t, b, md)
			_ = stats
			_, m := b.Build()
			res, err := simRun(sched, md, m)
			if err != nil {
				t.Fatal(err)
			}
			return res.Cycles
		}
		s, tt := cycles(machine.Sentinel), cycles(machine.SentinelStores)
		if ratio := float64(s) / float64(tt); ratio > 1.12 {
			t.Errorf("tomcatv T gain %.1f%% too large (paper: none)", (ratio-1)*100)
		}
	})
}

// TestDeterministicBuilds: kernels must be bit-for-bit reproducible.
func TestDeterministicBuilds(t *testing.T) {
	for _, b := range All() {
		p1, m1 := b.Build()
		p2, m2 := b.Build()
		if p1.String() != p2.String() {
			t.Errorf("%s: program not deterministic", b.Name)
		}
		if m1.Checksum() != m2.Checksum() {
			t.Errorf("%s: memory image not deterministic", b.Name)
		}
	}
}

// TestProfilesAreStable: the scheduling decisions rest on the profile;
// pin the hot-block identity.
func TestProfilesAreStable(t *testing.T) {
	for _, b := range All() {
		p, m := b.Build()
		p.Layout()
		ref, err := prog.Run(p, m, prog.Options{Collect: true})
		if err != nil {
			t.Fatal(err)
		}
		var hot string
		var max int64
		for l, c := range ref.Profile.Blocks {
			if c > max {
				hot, max = l, c
			}
		}
		// Every kernel's hottest block must be executed at least 100x more
		// often than the entry block: the evaluation measures loop code.
		if max < 100*ref.Profile.Blocks[p.Entry] {
			t.Errorf("%s: hottest block %q only %dx entry", b.Name, hot, max)
		}
	}
}

// compileFor compiles a benchmark for a machine (helper for character
// tests).
func compileFor(t *testing.T, b Benchmark, md machine.Desc) (*prog.Program, core.Stats) {
	t.Helper()
	p, m := b.Build()
	p.Layout()
	ref, err := prog.Run(p, m, prog.Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	f := superblock.Form(p, ref.Profile, superblock.Options{})
	f.Layout()
	sched, stats, err := core.Schedule(f, md)
	if err != nil {
		t.Fatal(err)
	}
	return sched, stats
}

func simRun(p *prog.Program, md machine.Desc, m *mem.Memory) (*sim.Result, error) {
	return sim.Run(p, md, m, sim.Options{})
}
