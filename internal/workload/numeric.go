package workload

import (
	"math"

	"sentinel/internal/ir"
	"sentinel/internal/mem"
	"sentinel/internal/prog"
)

func init() {
	register(Benchmark{
		Name: "doduc", Numeric: true,
		Profile: "FP Monte-Carlo style: FP compare feeds a hot branch, store on the hot path",
		Build:   buildDoduc,
	})
	register(Benchmark{
		Name: "fpppp", Numeric: true,
		Profile: "huge straight-line FP block, single counted exit: little need for speculation",
		Build:   buildFpppp,
	})
	register(Benchmark{
		Name: "matrix300", Numeric: true,
		Profile: "dense inner product, counted loops, stores only at row ends",
		Build:   buildMatrix300,
	})
	register(Benchmark{
		Name: "nasa7", Numeric: true,
		Profile: "butterfly-style FP kernel with a data-dependent scaling branch before its stores",
		Build:   buildNasa7,
	})
	register(Benchmark{
		Name: "tomcatv", Numeric: true,
		Profile: "mesh relaxation: FP chain feeds a convergence branch; stores precede the branch",
		Build:   buildTomcatv,
	})
}

func writeFP(m *mem.Memory, addr int64, f float64) {
	m.Write(addr, 8, math.Float64bits(f))
}

// buildDoduc models doduc's hot sections: frequently executed floating-
// point code where conditional branches appear amid larger stretches of
// unconditional work. Each iteration transforms three element pairs
// unconditionally, then one loaded classification flag selects the
// accumulation path; the hot path stores its scaled value (store below the
// data-dependent branch: moderate speculative-store gain, as the paper
// reports for doduc).
func buildDoduc() (*prog.Program, *mem.Memory) {
	const (
		xBase = 0x1000
		fBase = 0x10000
		oBase = 0x18000
		n     = 300 // groups; 3 element pairs each
	)
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), xBase),
		ir.LI(ir.R(2), n),
		ir.LI(ir.R(3), oBase),
		ir.LI(ir.R(4), fBase),
		ir.LI(ir.R(5), 0), // i
		ir.LI(ir.R(9), 0), // small count
		ir.LI(ir.R(10), 3),
		ir.UN(ir.Cvif, ir.F(1), ir.R(10)), // scale 3.0
		ir.LI(ir.R(10), 0),
		ir.UN(ir.Cvif, ir.F(2), ir.R(10)), // accumulator 0.0
	)
	body := []*ir.Instr{}
	for e := 0; e < 3; e++ {
		off := int64(e * 16)
		body = append(body,
			ir.LOAD(ir.Fld, ir.F(4+e), ir.R(1), off),
			ir.LOAD(ir.Fld, ir.F(8+e), ir.R(1), off+8),
			ir.ALU(ir.Fmul, ir.F(12+e), ir.F(4+e), ir.F(8+e)),
			ir.ALU(ir.Fadd, ir.F(16+e), ir.F(4+e), ir.F(8+e)),
		)
	}
	body = append(body,
		ir.ALU(ir.Fadd, ir.F(20), ir.F(12), ir.F(13)),
		ir.ALU(ir.Fadd, ir.F(20), ir.F(20), ir.F(14)), // product sum
		ir.ALU(ir.Fadd, ir.F(21), ir.F(16), ir.F(17)),
		ir.ALU(ir.Fadd, ir.F(21), ir.F(21), ir.F(18)), // element sum
		ir.LOAD(ir.Ld, ir.R(7), ir.R(4), 0),           // classification flag
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 48),
		ir.ALUI(ir.Add, ir.R(4), ir.R(4), 8),
		ir.ALUI(ir.Add, ir.R(5), ir.R(5), 1),
		ir.BRI(ir.Bne, ir.R(7), 0, "small"),
	)
	p.AddBlock("loop", ir.BR(ir.Bge, ir.R(5), ir.R(2), "done"))
	p.AddBlock("b1", body...)
	p.AddBlock("big",
		ir.ALU(ir.Fmul, ir.F(22), ir.F(20), ir.F(1)),
		ir.ALU(ir.Fadd, ir.F(2), ir.F(2), ir.F(22)),
		ir.STORE(ir.Fst, ir.R(3), 0, ir.F(22)),
		ir.ALUI(ir.Add, ir.R(3), ir.R(3), 8),
		ir.JMP("loop"),
	)
	p.AddBlock("small",
		ir.ALU(ir.Fadd, ir.F(2), ir.F(2), ir.F(21)),
		ir.ALUI(ir.Add, ir.R(9), ir.R(9), 1),
		ir.JMP("loop"),
	)
	p.AddBlock("done",
		ir.UN(ir.Cvfi, ir.R(8), ir.F(2)),
		ir.JSR("putint", ir.R(8)),
		ir.JSR("putint", ir.R(9)),
		ir.HALT(),
	)

	m := mem.New()
	m.Map("x", xBase, n*48)
	m.Map("flags", fBase, n*8)
	m.Map("out", oBase, n*8)
	r := lcg(144)
	for i := 0; i < n*6; i++ {
		writeFP(m, xBase+int64(i)*8, 1.0+float64(r.intn(200))/100.0)
	}
	for i := 0; i < n; i++ {
		if r.intn(100) < 30 {
			m.Write(fBase+int64(i)*8, 8, 1)
		}
	}
	return p, m
}

// buildFpppp models fpppp: enormous basic blocks of floating-point code with
// few conditional branches — restricted percolation already achieves a high
// execution rate, so all models perform alike (as in Figure 4).
func buildFpppp() (*prog.Program, *mem.Memory) {
	const (
		aBase = 0x1000
		oBase = 0x8000
		n     = 200 // iterations over a 6-element window
	)
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), aBase),
		ir.LI(ir.R(3), oBase),
		ir.LI(ir.R(5), 0),
	)
	// One huge block: 6 loads, a deep FP expression tree, 3 stores. The
	// counted exit uses an immediate bound so the counted-loop unroller
	// removes interior tests, as IMPACT does for fpppp's few-branch code.
	p.AddBlock("loop", ir.BRI(ir.Bge, ir.R(5), n, "done"))
	p.AddBlock("body",
		ir.LOAD(ir.Fld, ir.F(1), ir.R(1), 0),
		ir.LOAD(ir.Fld, ir.F(2), ir.R(1), 8),
		ir.LOAD(ir.Fld, ir.F(3), ir.R(1), 16),
		ir.LOAD(ir.Fld, ir.F(4), ir.R(1), 24),
		ir.LOAD(ir.Fld, ir.F(5), ir.R(1), 32),
		ir.LOAD(ir.Fld, ir.F(6), ir.R(1), 40),
		// Two-electron-integral flavoured expression tree.
		ir.ALU(ir.Fmul, ir.F(7), ir.F(1), ir.F(2)),
		ir.ALU(ir.Fmul, ir.F(8), ir.F(3), ir.F(4)),
		ir.ALU(ir.Fmul, ir.F(9), ir.F(5), ir.F(6)),
		ir.ALU(ir.Fadd, ir.F(10), ir.F(7), ir.F(8)),
		ir.ALU(ir.Fadd, ir.F(11), ir.F(10), ir.F(9)),
		ir.ALU(ir.Fsub, ir.F(12), ir.F(7), ir.F(9)),
		ir.ALU(ir.Fmul, ir.F(13), ir.F(11), ir.F(12)),
		ir.ALU(ir.Fadd, ir.F(14), ir.F(2), ir.F(5)),
		ir.ALU(ir.Fmul, ir.F(15), ir.F(14), ir.F(1)),
		ir.ALU(ir.Fsub, ir.F(16), ir.F(13), ir.F(15)),
		ir.ALU(ir.Fadd, ir.F(17), ir.F(16), ir.F(8)),
		ir.ALU(ir.Fmul, ir.F(18), ir.F(17), ir.F(14)),
		ir.STORE(ir.Fst, ir.R(3), 0, ir.F(11)),
		ir.STORE(ir.Fst, ir.R(3), 8, ir.F(13)),
		ir.STORE(ir.Fst, ir.R(3), 16, ir.F(18)),
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 8),
		ir.ALUI(ir.Add, ir.R(3), ir.R(3), 24),
		ir.ALUI(ir.Add, ir.R(5), ir.R(5), 1),
		ir.JMP("loop"),
	)
	p.AddBlock("done",
		ir.LOAD(ir.Fld, ir.F(20), ir.R(3), -24),
		ir.UN(ir.Cvfi, ir.R(8), ir.F(20)),
		ir.JSR("putint", ir.R(8)),
		ir.HALT(),
	)

	m := mem.New()
	m.Map("a", aBase, (n+6)*8)
	m.Map("out", oBase, n*24+24)
	r := lcg(155)
	for i := 0; i < n+6; i++ {
		writeFP(m, aBase+int64(i)*8, 0.5+float64(r.intn(100))/100.0)
	}
	return p, m
}

// buildMatrix300 models matrix multiply: a counted inner product whose
// branch conditions depend only on induction variables, so restricted
// percolation already overlaps everything that matters.
func buildMatrix300() (*prog.Program, *mem.Memory) {
	const (
		aBase = 0x1000
		bBase = 0x8000
		cBase = 0x10000
		k     = 48 // inner length
		rows  = 14
	)
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(9), 0), // row
		ir.LI(ir.R(3), cBase),
	)
	p.AddBlock("rowloop", ir.BRI(ir.Bge, ir.R(9), rows, "done"))
	p.AddBlock("rowinit",
		ir.LI(ir.R(1), aBase),
		ir.LI(ir.R(2), bBase),
		ir.LI(ir.R(5), 0), // kk
		ir.LI(ir.R(10), 0),
		ir.UN(ir.Cvif, ir.F(1), ir.R(10)), // acc = 0.0
	)
	p.AddBlock("inner", ir.BRI(ir.Bge, ir.R(5), k, "rowdone"))
	p.AddBlock("body",
		ir.LOAD(ir.Fld, ir.F(2), ir.R(1), 0),
		ir.LOAD(ir.Fld, ir.F(3), ir.R(2), 0),
		ir.ALU(ir.Fmul, ir.F(4), ir.F(2), ir.F(3)),
		ir.ALU(ir.Fadd, ir.F(1), ir.F(1), ir.F(4)),
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 8),
		ir.ALUI(ir.Add, ir.R(2), ir.R(2), 8),
		ir.ALUI(ir.Add, ir.R(5), ir.R(5), 1),
		ir.JMP("inner"),
	)
	p.AddBlock("rowdone",
		ir.STORE(ir.Fst, ir.R(3), 0, ir.F(1)),
		ir.ALUI(ir.Add, ir.R(3), ir.R(3), 8),
		ir.ALUI(ir.Add, ir.R(9), ir.R(9), 1),
		ir.JMP("rowloop"),
	)
	p.AddBlock("done",
		ir.LOAD(ir.Fld, ir.F(5), ir.R(3), -8),
		ir.UN(ir.Cvfi, ir.R(8), ir.F(5)),
		ir.JSR("putint", ir.R(8)),
		ir.JSR("putint", ir.R(9)),
		ir.HALT(),
	)

	m := mem.New()
	m.Map("a", aBase, k*8)
	m.Map("b", bBase, k*8)
	m.Map("c", cBase, (rows+1)*8)
	r := lcg(166)
	for i := 0; i < k; i++ {
		writeFP(m, aBase+int64(i)*8, float64(r.intn(10)))
		writeFP(m, bBase+int64(i)*8, float64(r.intn(10)))
	}
	return p, m
}

// buildNasa7 models the NAS kernels: mostly regular FP work over groups of
// four complex points with an occasional per-group fix-up branch; the
// result stores sit below that branch, which is what gives nasa7 its
// moderate speculative-store gain.
func buildNasa7() (*prog.Program, *mem.Memory) {
	const (
		reBase = 0x1000
		imBase = 0x10000
		fBase  = 0x20000
		oBase  = 0x28000
		n      = 160 // groups of 4 points
	)
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), reBase),
		ir.LI(ir.R(2), imBase),
		ir.LI(ir.R(3), oBase),
		ir.LI(ir.R(4), n),
		ir.LI(ir.R(5), 0),
		ir.LI(ir.R(6), fBase),
		ir.LI(ir.R(9), 0), // fixup count
		ir.LI(ir.R(10), 2),
		ir.UN(ir.Cvif, ir.F(1), ir.R(10)), // 2.0
	)
	body := []*ir.Instr{}
	for e := 0; e < 4; e++ {
		off := int64(e * 8)
		body = append(body,
			ir.LOAD(ir.Fld, ir.F(2+e), ir.R(1), off), // re
			ir.LOAD(ir.Fld, ir.F(6+e), ir.R(2), off), // im
			ir.ALU(ir.Fmul, ir.F(10+e), ir.F(2+e), ir.F(2+e)),
			ir.ALU(ir.Fmul, ir.F(14+e), ir.F(6+e), ir.F(6+e)),
			ir.ALU(ir.Fadd, ir.F(18+e), ir.F(10+e), ir.F(14+e)), // |z|^2
		)
	}
	body = append(body,
		ir.LOAD(ir.Ld, ir.R(7), ir.R(6), 0), // per-group scaling flag
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 32),
		ir.ALUI(ir.Add, ir.R(2), ir.R(2), 32),
		ir.ALUI(ir.Add, ir.R(6), ir.R(6), 8),
		ir.ALUI(ir.Add, ir.R(5), ir.R(5), 1),
		ir.BRI(ir.Bne, ir.R(7), 0, "fixup"),
	)
	p.AddBlock("loop", ir.BR(ir.Bge, ir.R(5), ir.R(4), "done"))
	p.AddBlock("b1", body...)
	keep := []*ir.Instr{}
	for e := 0; e < 4; e++ {
		keep = append(keep, ir.STORE(ir.Fst, ir.R(3), int64(e*8), ir.F(18+e)))
	}
	keep = append(keep,
		ir.ALUI(ir.Add, ir.R(3), ir.R(3), 32),
		ir.JMP("loop"),
	)
	p.AddBlock("keep", keep...)
	fix := []*ir.Instr{}
	for e := 0; e < 4; e++ {
		fix = append(fix,
			ir.ALU(ir.Fdiv, ir.F(22), ir.F(18+e), ir.F(1)),
			ir.STORE(ir.Fst, ir.R(3), int64(e*8), ir.F(22)),
		)
	}
	fix = append(fix,
		ir.ALUI(ir.Add, ir.R(3), ir.R(3), 32),
		ir.ALUI(ir.Add, ir.R(9), ir.R(9), 1),
		ir.JMP("loop"),
	)
	p.AddBlock("fixup", fix...)
	p.AddBlock("done",
		ir.JSR("putint", ir.R(9)),
		ir.HALT(),
	)

	m := mem.New()
	m.Map("re", reBase, n*32)
	m.Map("im", imBase, n*32)
	m.Map("flags", fBase, n*8)
	m.Map("out", oBase, n*32)
	r := lcg(177)
	for i := 0; i < n*4; i++ {
		writeFP(m, reBase+int64(i)*8, float64(r.intn(300))/100.0)
		writeFP(m, imBase+int64(i)*8, float64(r.intn(300))/100.0)
	}
	for i := 0; i < n; i++ {
		if r.intn(100) < 12 {
			m.Write(fBase+int64(i)*8, 8, 1)
		}
	}
	return p, m
}

// buildTomcatv models tomcatv's relaxation sweep: three mesh points are
// relaxed per iteration and their combined residual feeds the convergence
// branch (a long FP chain: the sentinel gain the paper reports); the new
// values are stored BEFORE the branch, so speculative stores add nothing
// (the paper reports no T gain for tomcatv).
func buildTomcatv() (*prog.Program, *mem.Memory) {
	const (
		xBase = 0x1000
		yBase = 0x8000
		n     = 798
	)
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), xBase+8),
		ir.LI(ir.R(2), xBase+int64(n-3)*8),
		ir.LI(ir.R(3), yBase+8),
		ir.LI(ir.R(9), 0), // non-converged count
		ir.LI(ir.R(10), 2),
		ir.UN(ir.Cvif, ir.F(21), ir.R(10)), // eps-ish 2.0
		ir.LI(ir.R(10), 2),
		ir.UN(ir.Cvif, ir.F(20), ir.R(10)), // 2.0
	)
	body := []*ir.Instr{}
	for k := 0; k < 3; k++ {
		off := int64(k * 8)
		body = append(body,
			ir.LOAD(ir.Fld, ir.F(2+k), ir.R(1), off-8), // left
			ir.LOAD(ir.Fld, ir.F(5+k), ir.R(1), off),   // centre
			ir.LOAD(ir.Fld, ir.F(9+k), ir.R(1), off+8), // right
			ir.ALU(ir.Fadd, ir.F(12+k), ir.F(2+k), ir.F(9+k)),
			ir.ALU(ir.Fdiv, ir.F(12+k), ir.F(12+k), ir.F(20)),  // average
			ir.ALU(ir.Fsub, ir.F(15+k), ir.F(12+k), ir.F(5+k)), // residual
			ir.STORE(ir.Fst, ir.R(3), off, ir.F(12+k)),         // store BEFORE the branch
		)
	}
	body = append(body,
		ir.ALU(ir.Fadd, ir.F(18), ir.F(15), ir.F(16)),
		ir.ALU(ir.Fadd, ir.F(18), ir.F(18), ir.F(17)),
		ir.UN(ir.Fabs, ir.F(18), ir.F(18)),
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 24),
		ir.ALUI(ir.Add, ir.R(3), ir.R(3), 24),
		ir.ALU(ir.Flt, ir.R(7), ir.F(18), ir.F(21)),
		ir.BRI(ir.Bne, ir.R(7), 0, "loop"), // converged group: continue
	)
	p.AddBlock("loop", ir.BR(ir.Bge, ir.R(1), ir.R(2), "done"))
	p.AddBlock("b1", body...)
	p.AddBlock("diverged",
		ir.ALUI(ir.Add, ir.R(9), ir.R(9), 1),
		ir.JMP("loop"),
	)
	p.AddBlock("done",
		ir.JSR("putint", ir.R(9)),
		ir.HALT(),
	)

	m := mem.New()
	m.Map("x", xBase, n*8)
	m.Map("y", yBase, n*8)
	r := lcg(188)
	for i := 0; i < n; i++ {
		writeFP(m, xBase+int64(i)*8, float64(r.intn(500))/100.0)
	}
	return p, m
}
