package machine

import (
	"testing"

	"sentinel/internal/ir"
)

// TestTable3 verifies the instruction latencies against Table 3 of the
// paper.
func TestTable3(t *testing.T) {
	want := map[ir.Op]int{
		ir.Add: 1, ir.Sub: 1, ir.And: 1, ir.Slt: 1, // Int ALU 1
		ir.Mul: 3,              // Int multiply 3
		ir.Div: 10, ir.Rem: 10, // Int divide 10
		ir.Beq: 1, ir.Jmp: 1, // branch 1
		ir.Ld: 2, ir.Ldb: 2, ir.Fld: 2, // memory load 2
		ir.St: 1, ir.Stb: 1, ir.Fst: 1, // memory store 1
		ir.Fadd: 3, ir.Fsub: 3, // FP ALU 3
		ir.Cvif: 3, ir.Cvfi: 3, // FP conversion 3
		ir.Fmul: 3,  // FP multiply 3
		ir.Fdiv: 10, // FP divide 10
	}
	for op, lat := range want {
		if got := Latency(op); got != lat {
			t.Errorf("Latency(%v) = %d, want %d", op, got, lat)
		}
	}
	// BranchTakenPenalty is the PERFECT frontend's only branch cost ("1 /
	// 1 slot" in Table 3): under the oracle frontend every taken branch
	// charges exactly this bubble and nothing else. The static and TAGE
	// frontends keep it for correctly predicted taken branches and charge
	// Desc.MispredictPenalty instead on a mispredict.
	if BranchTakenPenalty != 1 {
		t.Errorf("branch taken penalty = %d, want 1 (Table 3: 1 slot, the perfect frontend's bubble)", BranchTakenPenalty)
	}
}

func TestPredictorNamesAndParse(t *testing.T) {
	for p, want := range map[Predictor]string{
		PredPerfect: "perfect", PredStatic: "static", PredTAGE: "tage",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
		got, err := ParsePredictor(want)
		if err != nil || got != p {
			t.Errorf("ParsePredictor(%q) = %v, %v, want %v", want, got, err, p)
		}
	}
	if p, err := ParsePredictor(""); err != nil || p != PredPerfect {
		t.Errorf("ParsePredictor(\"\") = %v, %v, want perfect", p, err)
	}
	if _, err := ParsePredictor("gshare"); err == nil {
		t.Error("ParsePredictor must reject unknown names")
	}
}

func TestWithPredictorCanonical(t *testing.T) {
	d := Base(8, Sentinel)
	s := d.WithPredictor(PredStatic)
	if s.Predictor != PredStatic || s.MispredictPenalty != DefaultMispredictPenalty {
		t.Errorf("WithPredictor(static) = %+v, want default penalty %d", s, DefaultMispredictPenalty)
	}
	if d.Predictor != PredPerfect {
		t.Error("WithPredictor must return a modified copy")
	}
	// An explicit penalty survives the frontend switch.
	s.MispredictPenalty = 9
	if g := s.WithPredictor(PredTAGE); g.MispredictPenalty != 9 {
		t.Errorf("WithPredictor(tage) clobbered explicit penalty: %+v", g)
	}
	// Selecting perfect clears the penalty so the Desc is canonical: equal
	// to one that never had a frontend set (cache keys must coincide).
	if back := s.WithPredictor(PredPerfect); back != d {
		t.Errorf("WithPredictor(perfect) = %+v, want the pristine %+v", back, d)
	}
	if err := d.WithPredictor(PredTAGE).Validate(); err != nil {
		t.Errorf("Validate(tage frontend): %v", err)
	}
}

func TestCompileView(t *testing.T) {
	d := Base(2, General).WithPredictor(PredTAGE)
	cv := d.CompileView()
	if cv != Base(2, General) {
		t.Errorf("CompileView() = %+v, want the frontend-free %+v", cv, Base(2, General))
	}
	if cv != d.WithPredictor(PredStatic).CompileView() {
		t.Error("CompileView must coincide across frontends (schedules are shared)")
	}
}

func TestValidateRejectsBadFrontends(t *testing.T) {
	bad := []Desc{
		{IssueWidth: 4, StoreBuffer: 8, Model: Sentinel, Predictor: Predictor(99)},
		// A perfect frontend cannot mispredict: penalty must be 0.
		{IssueWidth: 4, StoreBuffer: 8, Model: Sentinel, MispredictPenalty: 5},
		// A real frontend needs a redirect cost of at least 1 cycle.
		{IssueWidth: 4, StoreBuffer: 8, Model: Sentinel, Predictor: PredTAGE},
	}
	for i, d := range bad {
		if d.Validate() == nil {
			t.Errorf("case %d: Validate accepted %+v", i, d)
		}
	}
}

func TestModelNames(t *testing.T) {
	for m, want := range map[Model]string{
		Restricted: "restricted", General: "general", Sentinel: "sentinel",
		SentinelStores: "sentinel+stores",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

func TestUsesTags(t *testing.T) {
	if Restricted.UsesTags() || General.UsesTags() {
		t.Error("restricted/general must not require exception tags")
	}
	if !Sentinel.UsesTags() || !SentinelStores.UsesTags() {
		t.Error("sentinel models require exception tags")
	}
}

func TestBaseDesc(t *testing.T) {
	d := Base(8, Sentinel)
	if d.IssueWidth != 8 || d.StoreBuffer != 8 || d.Model != Sentinel || d.Recovery {
		t.Errorf("Base(8, Sentinel) = %+v", d)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	r := d.WithRecovery()
	if !r.Recovery || d.Recovery {
		t.Error("WithRecovery must return a modified copy")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Desc{
		{IssueWidth: 0, StoreBuffer: 8, Model: Sentinel},
		{IssueWidth: 4, StoreBuffer: 0, Model: Sentinel},
		{IssueWidth: 4, StoreBuffer: 8, Model: Model(99)},
		{IssueWidth: 4, StoreBuffer: 1, Model: SentinelStores},
	}
	for i, d := range bad {
		if d.Validate() == nil {
			t.Errorf("case %d: Validate accepted %+v", i, d)
		}
	}
}

// TestAllowSpeculative checks the per-model speculation rules of §2 and §4.
func TestAllowSpeculative(t *testing.T) {
	type c struct {
		op   ir.Op
		want map[Model]bool
	}
	all := func(r, g, s, ss bool) map[Model]bool {
		return map[Model]bool{Restricted: r, General: g, Sentinel: s, SentinelStores: ss}
	}
	cases := []c{
		{ir.Add, all(true, true, true, true)},   // never traps
		{ir.Mul, all(true, true, true, true)},   // never traps
		{ir.Ld, all(false, true, true, true)},   // trapping load
		{ir.Fadd, all(false, true, true, true)}, // FP traps
		{ir.Div, all(false, true, true, true)},  // integer divide traps
		{ir.St, all(false, false, false, true)}, // stores only with §4 support
		{ir.Fst, all(false, false, false, true)},
		{ir.Beq, all(false, false, false, false)}, // control never speculative
		{ir.Jmp, all(false, false, false, false)},
		{ir.Jsr, all(false, false, false, false)},
		{ir.Check, all(false, false, false, false)},     // sentinels stay put
		{ir.ConfirmSt, all(false, false, false, false)}, // sentinels stay put
	}
	for _, tc := range cases {
		for m, want := range tc.want {
			d := Base(4, m)
			if got := d.AllowSpeculative(tc.op); got != want {
				t.Errorf("%v.AllowSpeculative(%v) = %v, want %v", m, tc.op, got, want)
			}
		}
	}
}

func TestBoostingModel(t *testing.T) {
	d := Base(8, Boosting)
	if d.BoostLevels != 2 {
		t.Errorf("default BoostLevels = %d, want 2", d.BoostLevels)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if Boosting.UsesTags() {
		t.Error("boosting uses shadow files, not exception tags")
	}
	// Boosting enforces neither restriction: trapping instructions AND
	// stores may be boosted.
	for _, op := range []ir.Op{ir.Ld, ir.Fadd, ir.Div, ir.St, ir.Fst} {
		if !d.AllowSpeculative(op) {
			t.Errorf("%v must be boostable", op)
		}
	}
	for _, op := range []ir.Op{ir.Beq, ir.Jsr, ir.Check, ir.ConfirmSt} {
		if d.AllowSpeculative(op) {
			t.Errorf("%v must not be boostable", op)
		}
	}
	bad := d
	bad.BoostLevels = 0
	if bad.Validate() == nil {
		t.Error("zero shadow levels must be rejected")
	}
	rec := Base(8, Boosting).WithRecovery()
	if rec.Validate() == nil {
		t.Error("recovery + boosting must be rejected")
	}
}
