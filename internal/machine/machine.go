// Package machine describes the target VLIW/superscalar processor: issue
// width, deterministic instruction latencies (Table 3 of the paper), register
// file sizes, store-buffer depth and the compiler's speculative code-motion
// model. The microarchitecture has CRAY-1 style interlocking, so an
// incorrectly scheduled program still executes correctly, merely slower.
package machine

import (
	"fmt"

	"sentinel/internal/ir"
)

// Model selects the speculative code-motion scheduling model (§2 and §3).
type Model int

const (
	// Restricted percolation: both control-dependence restrictions are
	// enforced; only instructions that can never cause execution-altering
	// exceptions may move above branches (§2.2).
	Restricted Model = iota
	// General percolation: potentially trapping speculative instructions are
	// converted to silent versions; exceptions of speculated instructions
	// may be lost or misattributed (§2.4). Stores may not be speculative.
	General
	// Sentinel scheduling: full general-percolation freedom with accurate
	// exception detection via exception tags and sentinels (§3). Stores may
	// not be speculative.
	Sentinel
	// SentinelStores: sentinel scheduling extended with speculative stores
	// through a store buffer with probationary entries (§4).
	SentinelStores
	// Boosting: the instruction-boosting model of Smith, Lam and Horowitz
	// (§2.3): results of instructions moved above branches are buffered in
	// shadow register files / shadow store buffers and committed when the
	// branches resolve as predicted, or discarded on a misprediction.
	// Neither scheduling restriction is enforced, but an instruction may be
	// boosted above at most BoostLevels branches.
	Boosting
)

var modelNames = [...]string{
	Restricted:     "restricted",
	General:        "general",
	Sentinel:       "sentinel",
	SentinelStores: "sentinel+stores",
	Boosting:       "boosting",
}

func (m Model) String() string {
	if int(m) < len(modelNames) {
		return modelNames[m]
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// UsesTags reports whether the model requires exception-tagged registers.
func (m Model) UsesTags() bool { return m == Sentinel || m == SentinelStores }

// Latencies is Table 3 of the paper, indexed by function-unit class.
// Branches take 1 cycle and have 1 delay slot; the simulator charges one
// bubble cycle on a taken branch.
var Latencies = [ir.NumUnits]int{
	ir.UnitIntALU: 1,
	ir.UnitIntMul: 3,
	ir.UnitIntDiv: 10,
	ir.UnitBranch: 1,
	ir.UnitLoad:   2,
	ir.UnitStore:  1,
	ir.UnitFPALU:  3,
	ir.UnitFPConv: 3,
	ir.UnitFPMul:  3,
	ir.UnitFPDiv:  10,
}

// Latency returns the deterministic latency in cycles of op.
func Latency(op ir.Op) int { return Latencies[ir.UnitOf(op)] }

// BranchTakenPenalty is the redirect bubble charged when a branch is taken
// ("1 / 1 slot" in Table 3).
const BranchTakenPenalty = 1

// Desc is a full machine configuration handed to the scheduler and
// simulator.
type Desc struct {
	// IssueWidth is the maximum number of instructions fetched and issued
	// per cycle. The paper places no limitation on the combination of
	// instructions issued together, only on their count.
	IssueWidth int
	// StoreBuffer is the number of store-buffer entries (8 in the paper's
	// base processor). It is an architectural parameter visible to the
	// scheduler: a speculative store may be separated from its confirm by at
	// most StoreBuffer-1 stores (§4.2).
	StoreBuffer int
	// Model is the speculative code-motion model.
	Model Model
	// Recovery enforces the §3.7 restartable-sequence constraints during
	// scheduling so that sentinel-reported exceptions can be retried.
	Recovery bool
	// NoSharedSentinels disables the §3.1 shared-sentinel optimization: a
	// home-block use no longer protects a trapping instruction, so every
	// speculated trapping instruction needs its own explicit check. Used by
	// the sharing ablation experiment.
	NoSharedSentinels bool
	// BoostLevels is the number of shadow register files / shadow store
	// buffers under the Boosting model: an instruction may move above at
	// most this many branches ("the number of branches an instruction can
	// be boosted above is limited to a small number", §2.3).
	BoostLevels int
}

// Base returns the paper's base processor with the given issue width and
// model: 64 integer + 64 FP registers, an 8-entry store buffer, Table 3
// latencies.
func Base(width int, model Model) Desc {
	return Desc{IssueWidth: width, StoreBuffer: 8, Model: model, BoostLevels: 2}.with(model)
}

func (d Desc) with(m Model) Desc { d.Model = m; return d }

// WithRecovery returns a copy of d with recovery constraints enabled.
func (d Desc) WithRecovery() Desc { d.Recovery = true; return d }

// WithoutSharedSentinels returns a copy of d with the shared-sentinel
// optimization disabled (ablation).
func (d Desc) WithoutSharedSentinels() Desc { d.NoSharedSentinels = true; return d }

// Validate reports configuration errors.
func (d Desc) Validate() error {
	if d.IssueWidth < 1 {
		return fmt.Errorf("machine: issue width %d < 1", d.IssueWidth)
	}
	if d.StoreBuffer < 1 {
		return fmt.Errorf("machine: store buffer size %d < 1", d.StoreBuffer)
	}
	if d.Model < Restricted || d.Model > Boosting {
		return fmt.Errorf("machine: unknown model %d", int(d.Model))
	}
	if d.Model == SentinelStores && d.StoreBuffer < 2 {
		return fmt.Errorf("machine: speculative stores need a store buffer of at least 2 entries")
	}
	if d.Model == Boosting {
		if d.BoostLevels < 1 {
			return fmt.Errorf("machine: boosting needs at least one shadow level")
		}
		if d.Recovery {
			return fmt.Errorf("machine: recovery constraints are a sentinel-scheduling concept, not applicable to boosting")
		}
	}
	return nil
}

// AllowSpeculative reports whether the model permits speculating op (moving
// it above a branch). Control instructions and sentinels never speculate;
// stores only under SentinelStores; trapping instructions only under
// General, Sentinel and SentinelStores.
func (d Desc) AllowSpeculative(op ir.Op) bool {
	if ir.IsControl(op) || op == ir.Check || op == ir.ConfirmSt {
		return false
	}
	if op == ir.SaveTR || op == ir.RestTR {
		// Tag-preserving spill/restore participate in exception bookkeeping
		// and are never reordered above branches.
		return false
	}
	if ir.IsStore(op) {
		return d.Model == SentinelStores || d.Model == Boosting
	}
	if ir.Traps(op) {
		return d.Model != Restricted
	}
	return true
}
