// Package machine describes the target VLIW/superscalar processor: issue
// width, deterministic instruction latencies (Table 3 of the paper), register
// file sizes, store-buffer depth and the compiler's speculative code-motion
// model. The microarchitecture has CRAY-1 style interlocking, so an
// incorrectly scheduled program still executes correctly, merely slower.
package machine

import (
	"fmt"

	"sentinel/internal/ir"
)

// Model selects the speculative code-motion scheduling model (§2 and §3).
type Model int

const (
	// Restricted percolation: both control-dependence restrictions are
	// enforced; only instructions that can never cause execution-altering
	// exceptions may move above branches (§2.2).
	Restricted Model = iota
	// General percolation: potentially trapping speculative instructions are
	// converted to silent versions; exceptions of speculated instructions
	// may be lost or misattributed (§2.4). Stores may not be speculative.
	General
	// Sentinel scheduling: full general-percolation freedom with accurate
	// exception detection via exception tags and sentinels (§3). Stores may
	// not be speculative.
	Sentinel
	// SentinelStores: sentinel scheduling extended with speculative stores
	// through a store buffer with probationary entries (§4).
	SentinelStores
	// Boosting: the instruction-boosting model of Smith, Lam and Horowitz
	// (§2.3): results of instructions moved above branches are buffered in
	// shadow register files / shadow store buffers and committed when the
	// branches resolve as predicted, or discarded on a misprediction.
	// Neither scheduling restriction is enforced, but an instruction may be
	// boosted above at most BoostLevels branches.
	Boosting
)

var modelNames = [...]string{
	Restricted:     "restricted",
	General:        "general",
	Sentinel:       "sentinel",
	SentinelStores: "sentinel+stores",
	Boosting:       "boosting",
}

func (m Model) String() string {
	if int(m) < len(modelNames) {
		return modelNames[m]
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// UsesTags reports whether the model requires exception-tagged registers.
func (m Model) UsesTags() bool { return m == Sentinel || m == SentinelStores }

// ParseModel resolves a request-facing model name to its Model, folding the
// aliases every entry point accepts ("" and "sentinel" are one model,
// "stores" is shorthand for "sentinel+stores"). It is THE normalization —
// the serving layer and the fleet router both resolve names through here,
// so a request can never fingerprint differently on the two sides.
func ParseModel(name string) (Model, error) {
	switch name {
	case "restricted":
		return Restricted, nil
	case "general":
		return General, nil
	case "", "sentinel":
		return Sentinel, nil
	case "sentinel+stores", "stores":
		return SentinelStores, nil
	case "boosting":
		return Boosting, nil
	default:
		return 0, fmt.Errorf("unknown model %q (want restricted, general, sentinel, sentinel+stores, boosting)", name)
	}
}

// Resolve normalizes a request's (model, width, predictor) triple into a
// validated canonical Desc: aliases folded, width defaulted to 8, the
// predictor's penalty filled in. Two textually different requests for the
// same machine resolve to equal Descs — the property the shared request
// fingerprint (internal/fingerprint) depends on.
func Resolve(model string, width int, predictor string) (Desc, error) {
	if width == 0 {
		width = 8
	}
	m, err := ParseModel(model)
	if err != nil {
		return Desc{}, err
	}
	p, err := ParsePredictor(predictor)
	if err != nil {
		return Desc{}, fmt.Errorf("unknown predictor %q (want perfect, static, tage)", predictor)
	}
	md := Base(width, m).WithPredictor(p)
	if err := md.Validate(); err != nil {
		return Desc{}, err
	}
	return md, nil
}

// Predictor selects the branch-prediction frontend of the simulated
// machine. The paper's machine resolves every branch at the end of its
// 1-cycle latency and charges only the fixed taken-branch bubble — an
// oracle frontend, named PredPerfect here, and the default (zero value) so
// every classic figure is unchanged. The other frontends make the fetch
// engine real: a predicted-wrong branch costs a MispredictPenalty redirect,
// and the first fetch cycle after any redirect issues at half width (the
// variable fetch-rate frontend).
type Predictor int

const (
	// PredPerfect is the paper's oracle frontend: branches never
	// mispredict, taken transfers cost BranchTakenPenalty, fetch never
	// throttles. The default.
	PredPerfect Predictor = iota
	// PredStatic is backward-taken/forward-not-taken: a branch whose
	// target does not lie after it in layout order is predicted taken.
	PredStatic
	// PredTAGE is a tagged-geometric-history predictor: the static prior
	// as the base component plus tagged tables of geometrically growing
	// history lengths, with allocation on mispredict and useful-bit
	// eviction.
	PredTAGE
)

var predictorNames = [...]string{
	PredPerfect: "perfect",
	PredStatic:  "static",
	PredTAGE:    "tage",
}

func (p Predictor) String() string {
	if int(p) < len(predictorNames) {
		return predictorNames[p]
	}
	return fmt.Sprintf("predictor(%d)", int(p))
}

// ParsePredictor resolves a predictor name ("" means perfect).
func ParsePredictor(name string) (Predictor, error) {
	switch name {
	case "", "perfect":
		return PredPerfect, nil
	case "static":
		return PredStatic, nil
	case "tage":
		return PredTAGE, nil
	default:
		return 0, fmt.Errorf("machine: unknown predictor %q (want perfect, static, tage)", name)
	}
}

// DefaultMispredictPenalty is the redirect cost of a mispredicted branch
// under a non-perfect frontend: the in-order pipeline squashes wrong-path
// fetch and refills from the resolved target.
const DefaultMispredictPenalty = 5

// Latencies is Table 3 of the paper, indexed by function-unit class.
// Branches take 1 cycle and have 1 delay slot; the simulator charges one
// bubble cycle on a taken branch.
var Latencies = [ir.NumUnits]int{
	ir.UnitIntALU: 1,
	ir.UnitIntMul: 3,
	ir.UnitIntDiv: 10,
	ir.UnitBranch: 1,
	ir.UnitLoad:   2,
	ir.UnitStore:  1,
	ir.UnitFPALU:  3,
	ir.UnitFPConv: 3,
	ir.UnitFPMul:  3,
	ir.UnitFPDiv:  10,
}

// Latency returns the deterministic latency in cycles of op.
func Latency(op ir.Op) int { return Latencies[ir.UnitOf(op)] }

// BranchTakenPenalty is the redirect bubble charged when a branch is taken
// ("1 / 1 slot" in Table 3). It is the perfect frontend's only branch cost;
// the static and TAGE frontends keep it for correctly predicted taken
// branches and add Desc.MispredictPenalty for mispredicted ones.
const BranchTakenPenalty = 1

// Desc is a full machine configuration handed to the scheduler and
// simulator.
type Desc struct {
	// IssueWidth is the maximum number of instructions fetched and issued
	// per cycle. The paper places no limitation on the combination of
	// instructions issued together, only on their count.
	IssueWidth int
	// StoreBuffer is the number of store-buffer entries (8 in the paper's
	// base processor). It is an architectural parameter visible to the
	// scheduler: a speculative store may be separated from its confirm by at
	// most StoreBuffer-1 stores (§4.2).
	StoreBuffer int
	// Model is the speculative code-motion model.
	Model Model
	// Recovery enforces the §3.7 restartable-sequence constraints during
	// scheduling so that sentinel-reported exceptions can be retried.
	Recovery bool
	// NoSharedSentinels disables the §3.1 shared-sentinel optimization: a
	// home-block use no longer protects a trapping instruction, so every
	// speculated trapping instruction needs its own explicit check. Used by
	// the sharing ablation experiment.
	NoSharedSentinels bool
	// BoostLevels is the number of shadow register files / shadow store
	// buffers under the Boosting model: an instruction may move above at
	// most this many branches ("the number of branches an instruction can
	// be boosted above is limited to a small number", §2.3).
	BoostLevels int
	// Predictor selects the branch-prediction frontend. The zero value
	// (PredPerfect) is the paper's oracle frontend and leaves every classic
	// model byte-identical.
	Predictor Predictor
	// MispredictPenalty is the redirect cost in cycles of a mispredicted
	// branch. It must be 0 under PredPerfect (which cannot mispredict) and
	// >= 1 otherwise; WithPredictor fills in DefaultMispredictPenalty.
	MispredictPenalty int
}

// Base returns the paper's base processor with the given issue width and
// model: 64 integer + 64 FP registers, an 8-entry store buffer, Table 3
// latencies.
func Base(width int, model Model) Desc {
	return Desc{IssueWidth: width, StoreBuffer: 8, Model: model, BoostLevels: 2}.with(model)
}

func (d Desc) with(m Model) Desc { d.Model = m; return d }

// WithRecovery returns a copy of d with recovery constraints enabled.
func (d Desc) WithRecovery() Desc { d.Recovery = true; return d }

// WithoutSharedSentinels returns a copy of d with the shared-sentinel
// optimization disabled (ablation).
func (d Desc) WithoutSharedSentinels() Desc { d.NoSharedSentinels = true; return d }

// WithPredictor returns a copy of d with the given branch-prediction
// frontend. A non-perfect predictor gets DefaultMispredictPenalty unless
// the caller already chose one; selecting PredPerfect clears the penalty so
// the resulting Desc is canonical (equal to a Desc that never had a
// predictor set — cache keys and fingerprints must coincide).
func (d Desc) WithPredictor(p Predictor) Desc {
	d.Predictor = p
	if p == PredPerfect {
		d.MispredictPenalty = 0
	} else if d.MispredictPenalty == 0 {
		d.MispredictPenalty = DefaultMispredictPenalty
	}
	return d
}

// CompileView returns d with the frontend fields cleared. The scheduler
// never consults the predictor — schedules are a pure function of the
// speculation model, issue width and store buffer — so artifact caches key
// compile results by this view and share one schedule across frontends.
func (d Desc) CompileView() Desc {
	d.Predictor = PredPerfect
	d.MispredictPenalty = 0
	return d
}

// Validate reports configuration errors.
func (d Desc) Validate() error {
	if d.IssueWidth < 1 {
		return fmt.Errorf("machine: issue width %d < 1", d.IssueWidth)
	}
	if d.StoreBuffer < 1 {
		return fmt.Errorf("machine: store buffer size %d < 1", d.StoreBuffer)
	}
	if d.Model < Restricted || d.Model > Boosting {
		return fmt.Errorf("machine: unknown model %d", int(d.Model))
	}
	if d.Model == SentinelStores && d.StoreBuffer < 2 {
		return fmt.Errorf("machine: speculative stores need a store buffer of at least 2 entries")
	}
	if d.Model == Boosting {
		if d.BoostLevels < 1 {
			return fmt.Errorf("machine: boosting needs at least one shadow level")
		}
		if d.Recovery {
			return fmt.Errorf("machine: recovery constraints are a sentinel-scheduling concept, not applicable to boosting")
		}
	}
	if d.Predictor < PredPerfect || d.Predictor > PredTAGE {
		return fmt.Errorf("machine: unknown predictor %d", int(d.Predictor))
	}
	if d.Predictor == PredPerfect && d.MispredictPenalty != 0 {
		return fmt.Errorf("machine: a perfect frontend cannot mispredict; mispredict penalty %d must be 0", d.MispredictPenalty)
	}
	if d.Predictor != PredPerfect && d.MispredictPenalty < 1 {
		return fmt.Errorf("machine: predictor %v needs a mispredict penalty of at least 1 cycle", d.Predictor)
	}
	return nil
}

// AllowSpeculative reports whether the model permits speculating op (moving
// it above a branch). Control instructions and sentinels never speculate;
// stores only under SentinelStores; trapping instructions only under
// General, Sentinel and SentinelStores.
func (d Desc) AllowSpeculative(op ir.Op) bool {
	if ir.IsControl(op) || op == ir.Check || op == ir.ConfirmSt {
		return false
	}
	if op == ir.SaveTR || op == ir.RestTR {
		// Tag-preserving spill/restore participate in exception bookkeeping
		// and are never reordered above branches.
		return false
	}
	if ir.IsStore(op) {
		return d.Model == SentinelStores || d.Model == Boosting
	}
	if ir.Traps(op) {
		return d.Model != Restricted
	}
	return true
}
