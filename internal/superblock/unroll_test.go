package superblock

import (
	"strings"
	"testing"

	"sentinel/internal/ir"
	"sentinel/internal/mem"
	"sentinel/internal/prog"
)

// countedLoop builds a counted loop with an immediate bound: sum array
// elements with a top test `bge i, n, done`.
func countedLoop(n int64) (*prog.Program, *mem.Memory) {
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), 0x1000),
		ir.LI(ir.R(3), 0),
		ir.LI(ir.R(5), 0),
	)
	p.AddBlock("loop", ir.BRI(ir.Bge, ir.R(5), n, "done"))
	p.AddBlock("body",
		ir.LOAD(ir.Ld, ir.R(6), ir.R(1), 0),
		ir.ALU(ir.Add, ir.R(3), ir.R(3), ir.R(6)),
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 8),
		ir.ALUI(ir.Add, ir.R(5), ir.R(5), 1),
		ir.JMP("loop"),
	)
	p.AddBlock("done", ir.JSR("putint", ir.R(3)), ir.HALT())
	m := mem.New()
	m.Map("data", 0x1000, int(n)*8+8)
	for i := int64(0); i < n; i++ {
		m.Write(0x1000+i*8, 8, uint64(i+1))
	}
	return p, m
}

// TestCountedUnrollRemovesInteriorTests: the main loop must contain exactly
// one counted test (the guard) regardless of the unroll factor, plus a
// remainder loop.
func TestCountedUnrollRemovesInteriorTests(t *testing.T) {
	p, m := countedLoop(48)
	_, f := runBoth(t, p, m, Options{Unroll: 4})
	main := f.Block("loop")
	if main == nil || !main.Superblock {
		t.Fatalf("no main superblock:\n%s", f)
	}
	tests, loads := 0, 0
	for _, in := range main.Instrs {
		if in.Op == ir.Bge {
			tests++
		}
		if in.Op == ir.Ld {
			loads++
		}
	}
	if tests != 1 {
		t.Errorf("main loop has %d counted tests, want 1 (guard only):\n%s", tests, f)
	}
	if loads != 4 {
		t.Errorf("main loop has %d loads, want 4", loads)
	}
	rem := f.Block("loop.rem")
	if rem == nil || !rem.Superblock {
		t.Fatalf("missing remainder loop:\n%s", f)
	}
	// Guard must exit to the remainder with the adjusted bound.
	if g := main.Instrs[0]; g.Op != ir.Bge || g.Target != "loop.rem" || g.Imm != 48-3 {
		t.Errorf("guard = %v, want bge r5, 45, loop.rem", g)
	}
}

// TestCountedUnrollRemainder: trip counts not divisible by the factor must
// still compute the exact result (the remainder loop picks up the tail).
func TestCountedUnrollRemainder(t *testing.T) {
	for _, n := range []int64{1, 2, 3, 5, 7, 47, 49, 50, 51} {
		p, m := countedLoop(n)
		runBoth(t, p, m, Options{Unroll: 4})
	}
}

// TestRegisterExpansionRenamesLocals: in an unrolled loop, the per-iteration
// load destination must differ between copies so iterations can overlap.
func TestRegisterExpansionRenamesLocals(t *testing.T) {
	p, m := countedLoop(40)
	_, f := runBoth(t, p, m, Options{Unroll: 4})
	main := f.Block("loop")
	dests := map[ir.Reg]bool{}
	for _, in := range main.Instrs {
		if in.Op == ir.Ld {
			dests[in.Dest] = true
		}
	}
	if len(dests) != 4 {
		t.Errorf("load destinations = %d distinct, want 4 (expanded):\n%s", len(dests), f)
	}
}

// TestInductionExpansion: the pointer increment chain must write fresh
// registers (one per copy) with a single maintenance move of the
// architectural register at the end.
func TestInductionExpansion(t *testing.T) {
	p, m := countedLoop(40)
	_, f := runBoth(t, p, m, Options{Unroll: 4})
	main := f.Block("loop")
	var addDests []ir.Reg
	movs := 0
	for _, in := range main.Instrs {
		if in.Op == ir.Add && !in.Src2.Valid() && in.Imm == 8 {
			addDests = append(addDests, in.Dest)
		}
		if in.Op == ir.Mov && in.Dest == ir.R(1) {
			movs++
		}
	}
	if len(addDests) != 4 {
		t.Fatalf("pointer adds = %d, want 4", len(addDests))
	}
	seen := map[ir.Reg]bool{}
	for _, d := range addDests {
		if d == ir.R(1) {
			t.Errorf("pointer add still writes the architectural register")
		}
		if seen[d] {
			t.Errorf("pointer add destinations not distinct: %v", addDests)
		}
		seen[d] = true
	}
	if movs != 1 {
		t.Errorf("architectural maintenance moves = %d, want 1 (last copy only)", movs)
	}
}

// branchyLoop builds a loop with a data-dependent side exit whose target
// needs the loaded value and the pointers — exercising compensation stubs.
func branchyLoop() (*prog.Program, *mem.Memory) {
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), 0x1000),
		ir.LI(ir.R(2), 0x1000+64*8),
		ir.LI(ir.R(3), 0),
		ir.LI(ir.R(9), 0),
	)
	p.AddBlock("loop", ir.BR(ir.Bge, ir.R(1), ir.R(2), "done"))
	p.AddBlock("body",
		ir.LOAD(ir.Ld, ir.R(6), ir.R(1), 0),
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 8),
		ir.BRI(ir.Bne, ir.R(6), 0, "rare"),
	)
	p.AddBlock("cont",
		ir.ALUI(ir.Add, ir.R(3), ir.R(3), 1),
		ir.JMP("loop"),
	)
	p.AddBlock("rare",
		// Uses both the loaded value and the current pointer.
		ir.ALU(ir.Add, ir.R(9), ir.R(9), ir.R(6)),
		ir.ALU(ir.Add, ir.R(9), ir.R(9), ir.R(1)),
		ir.JMP("loop"),
	)
	p.AddBlock("done",
		ir.JSR("putint", ir.R(3)),
		ir.JSR("putint", ir.R(9)),
		ir.HALT(),
	)
	m := mem.New()
	m.Map("data", 0x1000, 65*8)
	r := lcgT(7)
	for i := 0; i < 64; i++ {
		v := uint64(0)
		if r.intn(10) == 0 {
			v = r.next() % 100
		}
		m.Write(0x1000+int64(i)*8, 8, v)
	}
	return p, m
}

type lcgT uint64

func (r *lcgT) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 16)
}
func (r *lcgT) intn(n int) int { return int(r.next() % uint64(n)) }

// TestCompensationStubs: side exits of the unrolled loop must go through
// stub blocks that restore the architectural registers; semantics preserved.
func TestCompensationStubs(t *testing.T) {
	p, m := branchyLoop()
	_, f := runBoth(t, p, m, Options{})
	stubs := 0
	for _, b := range f.Blocks {
		if strings.Contains(b.Label, ".x") {
			stubs++
			last := b.Instrs[len(b.Instrs)-1]
			if last.Op != ir.Jmp {
				t.Errorf("stub %q must end with a jump", b.Label)
			}
			for _, in := range b.Instrs[:len(b.Instrs)-1] {
				if in.Op != ir.Mov && in.Op != ir.Fmov {
					t.Errorf("stub %q contains non-move %v", b.Label, in)
				}
			}
		}
	}
	if stubs == 0 {
		t.Fatalf("expected compensation stubs:\n%s", f)
	}
	// The hot superblock itself must not carry per-copy maintenance moves
	// for every exit — at most the final architectural updates.
	main := f.Block("loop")
	movs := 0
	for _, in := range main.Instrs {
		if in.Op == ir.Mov {
			movs++
		}
	}
	if movs > 2 {
		t.Errorf("hot path has %d moves; compensation belongs in stubs:\n%s", movs, main.Instrs)
	}
}
