// Package superblock implements profile-driven superblock formation
// (Chang et al., "IMPACT", ISCA 1991; §2.1 of the sentinel paper).
//
// A superblock is a block of instructions in which control may only enter
// from the top but may leave at one or more exit points. Formation proceeds
// in three steps:
//
//  1. Trace selection: starting from the hottest unvisited block, grow a
//     trace along the most likely control-flow edges.
//  2. Tail duplication: every trace block other than the head is duplicated
//     so that side entrances into the middle of the trace are redirected to
//     the duplicates, leaving the merged superblock single-entry.
//  3. Loop unrolling: a superblock whose terminal control transfer is a
//     likely back edge to its own head is unrolled to expose cross-iteration
//     instruction-level parallelism.
package superblock

import (
	"fmt"
	"sort"

	"sentinel/internal/dataflow"
	"sentinel/internal/ir"
	"sentinel/internal/prog"
)

// Options tunes formation.
type Options struct {
	// MinProb is the minimum successor-edge probability required to extend
	// a trace (default 0.60).
	MinProb float64
	// MinCount is the minimum profiled execution count for a block to seed
	// or join a trace (default 1).
	MinCount int64
	// Unroll is the replication factor applied to self-loop superblocks
	// whose back edge has probability >= MinProb (default 4; 1 disables).
	Unroll int
	// MaxInstrs caps the size of a formed superblock, bounding both trace
	// growth and unrolling (default 220).
	MaxInstrs int
}

// WithDefaults returns o with unset fields replaced by the documented
// defaults. Two Options values that normalize to the same WithDefaults
// result configure identical formations; the evaluation runner relies on
// this to key its formation cache.
func (o Options) WithDefaults() Options {
	if o.MinProb == 0 {
		o.MinProb = 0.60
	}
	if o.MinCount == 0 {
		o.MinCount = 1
	}
	if o.Unroll == 0 {
		o.Unroll = 4
	}
	if o.MaxInstrs == 0 {
		o.MaxInstrs = 220
	}
	return o
}

// Form returns a new program in which hot traces of p have been merged into
// superblocks. p is not modified. The profile must come from a run of p.
// Form only reads p and prof, so concurrent formations may share both.
func Form(p *prog.Program, prof *prog.Profile, opts Options) *prog.Program {
	opts = opts.WithDefaults()
	p = p.Clone()

	traces := selectTraces(p, prof, opts)

	inTrace := map[string]string{} // block label -> trace head label
	lastOf := map[string]string{}  // trace head -> last trace block
	for _, tr := range traces {
		for _, l := range tr {
			inTrace[l] = tr[0]
		}
		lastOf[tr[0]] = tr[len(tr)-1]
	}

	// Duplicate every non-head trace block once; references entering the
	// middle of a trace are redirected to the duplicates.
	dupLabel := map[string]string{}
	var dups []*prog.Block
	for _, tr := range traces {
		for _, l := range tr[1:] {
			d := p.Block(l).Clone()
			d.Label = l + ".dup"
			dupLabel[l] = d.Label
			dups = append(dups, d)
		}
	}

	// Build the merged superblocks.
	merged := map[string]*prog.Block{}
	for _, tr := range traces {
		merged[tr[0]] = mergeTrace(p, prof, tr)
	}

	// Assemble the new program: original order with trace members replaced
	// by their superblock at the head position; duplicates appended. The
	// duplicate of each trace is a contiguous chain in original trace order,
	// so intra-trace fall-throughs keep working.
	np := prog.NewProgram()
	np.Entry = p.Entry
	for _, b := range p.Blocks {
		head, isTrace := inTrace[b.Label]
		switch {
		case !isTrace:
			np.Blocks = append(np.Blocks, b)
		case head == b.Label:
			np.Blocks = append(np.Blocks, merged[b.Label])
		}
	}
	np.Blocks = append(np.Blocks, dups...)
	np.Reindex()

	// Redirect every remaining reference to a duplicated (mid-trace) block
	// to its duplicate: side exits of superblocks, other blocks, and the
	// duplicates themselves. A reference to a trace HEAD keeps targeting the
	// superblock (control enters from the top, which is legal).
	for _, b := range np.Blocks {
		for _, in := range b.Instrs {
			if d, ok := dupLabel[in.Target]; ok && (ir.IsBranch(in.Op) || in.Op == ir.Jmp) {
				in.Target = d
			}
		}
	}

	// The intended fall-through of each superblock is the original
	// fall-through of its last trace block (mapped through duplication).
	ftWant := map[string]string{}
	for head, last := range lastOf {
		ft := fallthroughLabel(p, last)
		if d, ok := dupLabel[ft]; ok {
			ft = d
		}
		ftWant[head] = ft
	}

	// Unroll self-loop superblocks. Must happen before fall-through
	// patching so the terminal back edge is still the last instruction.
	// Counted loops (single induction test against a constant bound) are
	// unrolled with the interior tests removed and a remainder loop
	// appended; other self-loops keep per-copy side exits. Both forms apply
	// register expansion: iteration-local registers get a fresh name per
	// copy so reuse does not serialize the unrolled iterations.
	lv := dataflow.Compute(np)
	used := collectRegs(np)
	var blocks []*prog.Block
	for _, b := range np.Blocks {
		if !b.Superblock {
			blocks = append(blocks, b)
			continue
		}
		if main, rem, ok := unrollCounted(b, opts, lv, used); ok {
			blocks = append(blocks, main, rem)
			continue
		}
		blocks = append(blocks, unroll(b, ftWant[b.Label], opts, lv, used)...)
	}
	np.Blocks = blocks
	np.Reindex()

	// Make fall-through paths explicit wherever the new layout broke them:
	// absorbing trace blocks and appending duplicates changes every block's
	// layout successor, so any block whose intended fall-through no longer
	// follows it gets an explicit jump.
	for i, b := range np.Blocks {
		var want string
		if b.Superblock {
			want = ftWant[b.Label]
		} else {
			origLabel := b.Label
			if o, isDup := dupOrigin(b.Label, dupLabel); isDup {
				origLabel = o
			}
			want = fallthroughLabel(p, origLabel)
			if d, ok := dupLabel[want]; ok {
				want = d
			}
		}
		if want == "" {
			continue
		}
		if i+1 < len(np.Blocks) && np.Blocks[i+1].Label == want {
			continue // layout already provides the fall-through
		}
		b.Instrs = append(b.Instrs, ir.JMP(want))
	}
	return np
}

// selectTraces grows traces from hot seeds along likely edges.
func selectTraces(p *prog.Program, prof *prog.Profile, opts Options) [][]string {
	visited := map[string]bool{}
	var traces [][]string

	// Seeds in decreasing hotness; stable for equal counts by program order.
	order := make([]*prog.Block, len(p.Blocks))
	copy(order, p.Blocks)
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && prof.Blocks[order[j].Label] > prof.Blocks[order[j-1].Label]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	for _, seed := range order {
		if visited[seed.Label] || prof.Blocks[seed.Label] < opts.MinCount {
			continue
		}
		tr := []string{seed.Label}
		visited[seed.Label] = true
		size := len(seed.Instrs)
		cur := seed
		for {
			next, ok := bestSuccessor(p, prof, cur, opts)
			if !ok || visited[next] || next == p.Entry {
				break
			}
			nb := p.Block(next)
			if size+len(nb.Instrs) > opts.MaxInstrs {
				break
			}
			// A trace block must reach the next via its terminal transfer
			// only; joining a block whose hottest predecessor is elsewhere
			// wastes duplication.
			if !mutualMostLikely(p, prof, cur.Label, next) {
				break
			}
			tr = append(tr, next)
			visited[next] = true
			size += len(nb.Instrs)
			cur = nb
		}
		if len(tr) > 1 || isLoopCandidate(p, prof, seed, opts) {
			traces = append(traces, tr)
		}
	}
	return traces
}

// bestSuccessor returns cur's most frequent successor when its edge
// probability meets the threshold.
func bestSuccessor(p *prog.Program, prof *prog.Profile, cur *prog.Block, opts Options) (string, bool) {
	total := prof.Blocks[cur.Label]
	if total < opts.MinCount {
		return "", false
	}
	var best string
	var bestN int64 = -1
	for _, s := range p.Successors(cur) {
		if n := prof.Edges[prog.EdgeKey{From: cur.Label, To: s}]; n > bestN {
			best, bestN = s, n
		}
	}
	if bestN <= 0 || float64(bestN)/float64(total) < opts.MinProb {
		return "", false
	}
	return best, true
}

// mutualMostLikely reports whether from is also next's most frequent
// predecessor.
func mutualMostLikely(p *prog.Program, prof *prog.Profile, from, next string) bool {
	in := prof.Edges[prog.EdgeKey{From: from, To: next}]
	for _, b := range p.Blocks {
		if b.Label == from {
			continue
		}
		for _, s := range p.Successors(b) {
			if s == next && prof.Edges[prog.EdgeKey{From: b.Label, To: next}] > in {
				return false
			}
		}
	}
	return true
}

// isLoopCandidate reports whether a single-block trace is a hot self-loop
// worth turning into a superblock (so it can be unrolled).
func isLoopCandidate(p *prog.Program, prof *prog.Profile, b *prog.Block, opts Options) bool {
	n := prof.Blocks[b.Label]
	if n < opts.MinCount {
		return false
	}
	back := prof.Edges[prog.EdgeKey{From: b.Label, To: b.Label}]
	return back > 0 && float64(back)/float64(n) >= opts.MinProb
}

// invertBranch returns the opposite condition.
func invertBranch(op ir.Op) ir.Op {
	switch op {
	case ir.Beq:
		return ir.Bne
	case ir.Bne:
		return ir.Beq
	case ir.Blt:
		return ir.Bge
	case ir.Bge:
		return ir.Blt
	}
	panic("superblock: invertBranch on " + op.String())
}

// fallthroughLabel returns the label execution reaches when b's terminal
// instruction does not transfer control, or "" if b cannot fall through.
func fallthroughLabel(p *prog.Program, label string) string {
	idx := p.BlockIndex(label)
	if idx < 0 {
		return "" // block created after formation (e.g. a compensation stub)
	}
	b := p.Blocks[idx]
	if n := len(b.Instrs); n > 0 {
		last := b.Instrs[n-1]
		if last.Op == ir.Halt || last.Op == ir.Jmp {
			return ""
		}
	}
	if idx+1 < len(p.Blocks) {
		return p.Blocks[idx+1].Label
	}
	return ""
}

// mergeTrace concatenates the trace blocks into one superblock, flipping
// branches so that staying on the trace is always the fall-through path and
// side exits are the taken paths.
func mergeTrace(p *prog.Program, prof *prog.Profile, tr []string) *prog.Block {
	sb := &prog.Block{
		Label:      tr[0],
		Superblock: true,
		WeightHint: prof.Blocks[tr[0]],
	}
	for ti, label := range tr {
		b := p.Block(label)
		last := ti == len(tr)-1
		for ii, in := range b.Instrs {
			c := in.Clone()
			terminal := ii == len(b.Instrs)-1
			if !last && terminal {
				next := tr[ti+1]
				switch {
				case c.Op == ir.Jmp && c.Target == next:
					continue // interior unconditional transfer: drop
				case ir.IsBranch(c.Op) && c.Target == next:
					// Trace follows the taken edge: invert so the trace is
					// the fall-through and the old fall-through becomes the
					// side exit.
					ft := fallthroughLabel(p, label)
					if ft == "" {
						panic(fmt.Sprintf("superblock: block %q has taken-edge trace successor but no fall-through", label))
					}
					c.Op = invertBranch(c.Op)
					c.Target = ft
				case ir.IsBranch(c.Op):
					// Trace follows the fall-through; branch is a side exit
					// and stays as is.
				default:
					// Plain fall-through into the next trace block.
				}
			}
			sb.Instrs = append(sb.Instrs, c)
		}
	}
	return sb
}

func dupOrigin(label string, dupLabel map[string]string) (string, bool) {
	for o, d := range dupLabel {
		if d == label {
			return o, true
		}
	}
	return "", false
}

// unroll replicates a self-loop superblock body. The back edge of every
// copy but the last is inverted into a side exit targeting the loop's
// fall-through successor. Iteration-local registers and induction variables
// are expanded (renamed per copy) so register reuse does not serialize the
// unrolled iterations; the architectural values expected by exit paths are
// restored by per-exit compensation stubs, keeping the hot path free of
// maintenance moves (the superblock compensation-code technique).
func unroll(sb *prog.Block, exitLabel string, opts Options, lv *dataflow.Liveness, used map[ir.Reg]bool) []*prog.Block {
	if opts.Unroll <= 1 || len(sb.Instrs) == 0 {
		return []*prog.Block{sb}
	}
	last := sb.Instrs[len(sb.Instrs)-1]
	isBack := (ir.IsBranch(last.Op) || last.Op == ir.Jmp) && last.Target == sb.Label
	if !isBack {
		return []*prog.Block{sb}
	}
	factor := opts.Unroll
	for factor > 1 && len(sb.Instrs)*factor > opts.MaxInstrs {
		factor--
	}
	if factor <= 1 {
		return []*prog.Block{sb}
	}
	if ir.IsBranch(last.Op) && exitLabel == "" {
		return []*prog.Block{sb} // conditional back edge with nowhere to fall through
	}
	body := sb.Instrs[:len(sb.Instrs)-1]
	copies := make([][]*ir.Instr, factor)
	for k := 0; k < factor; k++ {
		for _, in := range body {
			copies[k] = append(copies[k], in.Clone())
		}
		if k < factor-1 {
			if ir.IsBranch(last.Op) {
				exit := last.Clone()
				exit.Op = invertBranch(exit.Op)
				exit.Target = exitLabel
				copies[k] = append(copies[k], exit)
			}
			// An unconditional back edge just flows into the next copy.
		} else {
			copies[k] = append(copies[k], last.Clone())
		}
	}
	recs := expandInductions(copies, used)
	recs = append(recs, expandLocals(sb.Label, copies, lv, used)...)
	stubs := buildExitStubs(sb.Label, copies, recs, lv)
	insertFallthroughMovs(copies, recs, exitLabel, lv)

	out := &prog.Block{Label: sb.Label, Superblock: true, WeightHint: sb.WeightHint}
	for _, c := range copies {
		out.Instrs = append(out.Instrs, c...)
	}
	return append([]*prog.Block{out}, stubs...)
}

// unrollCounted unrolls a counted self-loop superblock — the IMPACT-style
// transformation that leaves numeric inner loops with "few conditional
// branches" (§5.2). The pattern is:
//
//	L:  bge rI, N, exit     (immediate bound, test at the top)
//	    ...body, exactly one "add rI, rI, C" (C > 0), no other control...
//	    jmp L
//
// which becomes an unrolled main loop guarded by a single adjusted test,
// plus a remainder loop with the original body:
//
//	L:      bge rI, N-(U-1)*C, L.rem
//	        body x U            (interior tests removed)
//	        jmp L
//	L.rem:  bge rI, N, exit
//	        body
//	        jmp L.rem
func unrollCounted(sb *prog.Block, opts Options, lv *dataflow.Liveness, used map[ir.Reg]bool) (main, rem *prog.Block, ok bool) {
	if opts.Unroll <= 1 || len(sb.Instrs) < 3 {
		return nil, nil, false
	}
	test := sb.Instrs[0]
	last := sb.Instrs[len(sb.Instrs)-1]
	if test.Op != ir.Bge || test.Src2.Valid() || last.Op != ir.Jmp || last.Target != sb.Label {
		return nil, nil, false
	}
	rI := test.Src1
	body := sb.Instrs[1 : len(sb.Instrs)-1]
	var step int64
	incs := 0
	for _, in := range body {
		if ir.IsControl(in.Op) {
			return nil, nil, false // data-dependent exits: not a plain counted loop
		}
		if d, def := in.Def(); def && d == rI {
			if in.Op != ir.Add || in.Src1 != rI || in.Src2.Valid() || in.Imm <= 0 {
				return nil, nil, false
			}
			step = in.Imm
			incs++
		}
	}
	if incs != 1 {
		return nil, nil, false
	}
	factor := opts.Unroll
	for factor > 1 && len(body)*factor+2 > opts.MaxInstrs {
		factor--
	}
	if factor <= 1 {
		return nil, nil, false
	}

	remLabel := sb.Label + ".rem"
	guard := test.Clone()
	guard.Imm = test.Imm - int64(factor-1)*step
	guard.Target = remLabel

	copies := make([][]*ir.Instr, factor)
	for k := 0; k < factor; k++ {
		for _, in := range body {
			copies[k] = append(copies[k], in.Clone())
		}
	}
	expandInductions(copies, used)
	expandLocals(sb.Label, copies, lv, used)

	main = &prog.Block{Label: sb.Label, Superblock: true, WeightHint: sb.WeightHint}
	main.Instrs = append(main.Instrs, guard)
	for _, c := range copies {
		main.Instrs = append(main.Instrs, c...)
	}
	main.Instrs = append(main.Instrs, ir.JMP(sb.Label))

	rem = &prog.Block{Label: remLabel, Superblock: true, WeightHint: sb.WeightHint}
	rem.Instrs = append(rem.Instrs, test.Clone())
	for _, in := range body {
		rem.Instrs = append(rem.Instrs, in.Clone())
	}
	rem.Instrs = append(rem.Instrs, ir.JMP(remLabel))
	return main, rem, true
}

// renameRec records how one architectural register was expanded across the
// unrolled copies, so that exit compensation stubs can restore it.
type renameRec struct {
	arch      ir.Reg
	induction bool
	// names: for inductions, len(copies)+1 registers with names[0] = arch
	// (copy k computes names[k+1] = names[k] + C); for locals, one fresh
	// register per copy.
	names []ir.Reg
	// pos[k] is the position within copies[k] of the induction increment,
	// or of the local's first definition.
	pos []int
}

// nameAt returns the register holding arch's value just before position i
// of copy k executes.
func (r *renameRec) nameAt(k, i int) ir.Reg {
	if r.induction {
		if i <= r.pos[k] {
			return r.names[k]
		}
		return r.names[k+1]
	}
	if i > r.pos[k] {
		return r.names[k]
	}
	if k > 0 {
		return r.names[k-1]
	}
	return r.arch
}

// expandInductions applies the paper's renaming transformation (§3.7
// footnote 4) to loop induction variables in an unrolled superblock: an
// increment "add rI, rI, C" is split into an addition writing a fresh
// register per copy,
//
//	copy k:  add a[k+1], a[k], C        (a[0] = rI)
//
// with every use of rI in copy k renamed to a[k] (before the increment) or
// a[k+1] (after it). The fresh additions are dead at every side exit, so
// the whole address chain can be hoisted to the top of the block; a single
// move at the end of the last copy maintains the architectural register for
// the back edge, and side exits are repaired by compensation stubs built
// from the returned records. Pure accumulators (used by nothing but their
// own increment) are left alone: expansion could only cost slots.
func expandInductions(copies [][]*ir.Instr, used map[ir.Reg]bool) []renameRec {
	if len(copies) < 2 {
		return nil
	}
	proto := copies[0]
	defCount := map[ir.Reg]int{}
	addPos := map[ir.Reg]int{}
	for i, in := range proto {
		if d, ok := in.Def(); ok {
			defCount[d]++
			if in.Op == ir.Add && !in.Src2.Valid() && in.Src1 == d {
				addPos[d] = i
			}
		}
	}
	var cands []ir.Reg
	for r, pos := range addPos {
		if defCount[r] != 1 {
			continue
		}
		usedInCopy := false
		for i, in := range proto {
			if i == pos {
				continue
			}
			for _, u := range in.Uses() {
				if u == r {
					usedInCopy = true
				}
			}
		}
		if usedInCopy {
			cands = append(cands, r)
		}
	}
	sortRegs(cands)
	var recs []renameRec
	for _, r := range cands {
		names := make([]ir.Reg, len(copies)+1)
		names[0] = r
		ok := true
		for k := 1; k <= len(copies); k++ {
			if names[k], ok = allocReg(used, r.Class); !ok {
				break
			}
		}
		if !ok {
			return recs // register file exhausted
		}
		rec := renameRec{arch: r, induction: true, names: names, pos: make([]int, len(copies))}
		for k := range copies {
			pos := -1
			for i, in := range copies[k] {
				if in.Op == ir.Add && !in.Src2.Valid() && in.Dest == r && in.Src1 == r {
					pos = i
					break
				}
			}
			if pos < 0 {
				continue
			}
			rec.pos[k] = pos
			var rewritten []*ir.Instr
			for i, in := range copies[k] {
				cur, next := names[k], names[k+1]
				switch {
				case i == pos:
					in.Dest, in.Src1 = next, cur
					rewritten = append(rewritten, in)
					if k == len(copies)-1 {
						// Maintain the architectural register for the back
						// edge and the fall-through exit.
						rewritten = append(rewritten, ir.MOV(r, next))
					}
					continue
				case i < pos:
					renameUse(in, r, cur)
				default:
					renameUse(in, r, next)
				}
				rewritten = append(rewritten, in)
			}
			copies[k] = rewritten
		}
		recs = append(recs, rec)
	}
	return recs
}

func renameUse(in *ir.Instr, from, to ir.Reg) {
	if in.Src1 == from {
		in.Src1 = to
	}
	if in.Src2 == from {
		in.Src2 = to
	}
}

func sortRegs(regs []ir.Reg) {
	sort.Slice(regs, func(i, j int) bool {
		a, b := regs[i], regs[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.N < b.N
	})
}

// expandLocals renames iteration-local registers to a fresh register per
// unrolled copy ("register expansion"): a register qualifies when its first
// reference is a definition in EVERY copy (it carries nothing between
// iterations) and it is not live around the back edge. Values that side-exit
// paths expect under the original name are restored by compensation stubs
// built from the returned records (registers needed by no exit return no
// record).
func expandLocals(head string, copies [][]*ir.Instr, lv *dataflow.Liveness, used map[ir.Reg]bool) []renameRec {
	if len(copies) < 2 {
		return nil
	}
	proto := copies[0]
	firstIsDef := map[ir.Reg]bool{}
	for ci, c := range copies {
		seen := map[ir.Reg]bool{}
		local := map[ir.Reg]bool{}
		for _, in := range c {
			for _, u := range in.Uses() {
				if !seen[u] {
					seen[u] = true
					local[u] = false
				}
			}
			if d, def := in.Def(); def && !seen[d] {
				seen[d] = true
				local[d] = true
			}
		}
		if ci == 0 {
			firstIsDef = local
			continue
		}
		for r, isDef := range firstIsDef {
			if !isDef {
				continue
			}
			if ld, ok := local[r]; !ok || !ld {
				firstIsDef[r] = false
			}
		}
	}
	loopIn := lv.In[head]
	var cands []ir.Reg
	neededByExit := map[ir.Reg]bool{}
	for r, isDef := range firstIsDef {
		if !isDef || loopIn.Has(r) {
			continue
		}
		defs := 0
		for _, in := range proto {
			if d, def := in.Def(); def && d == r {
				defs++
			}
		}
		liveAtExit := false
		for _, in := range proto {
			if (ir.IsBranch(in.Op) || in.Op == ir.Jmp) && lv.In[in.Target].Has(r) {
				liveAtExit = true
				break
			}
		}
		if liveAtExit && defs != 1 {
			// Compensation is only well-defined for a single definition.
			continue
		}
		neededByExit[r] = liveAtExit
		cands = append(cands, r)
	}
	sortRegs(cands)
	var recs []renameRec
	for _, r := range cands {
		rec := renameRec{arch: r, names: make([]ir.Reg, len(copies)), pos: make([]int, len(copies))}
		ok := true
		for k := range copies {
			if rec.names[k], ok = allocReg(used, r.Class); !ok {
				return recs // register file exhausted
			}
		}
		for k := range copies {
			rec.pos[k] = -1
			for i, in := range copies[k] {
				if d, def := in.Def(); def && d == r && rec.pos[k] < 0 {
					rec.pos[k] = i
				}
				if in.Dest == r {
					in.Dest = rec.names[k]
				}
				if in.Src1 == r {
					in.Src1 = rec.names[k]
				}
				if in.Src2 == r {
					in.Src2 = rec.names[k]
				}
			}
		}
		if neededByExit[r] {
			recs = append(recs, rec)
		}
	}
	return recs
}

// buildExitStubs creates one compensation block per side exit that needs
// architectural values restored: the exit branch is redirected to a stub
// holding the moves, keeping the hot path free of maintenance code.
func buildExitStubs(label string, copies [][]*ir.Instr, recs []renameRec, lv *dataflow.Liveness) []*prog.Block {
	var stubs []*prog.Block
	n := 0
	for k := range copies {
		for i, in := range copies[k] {
			if !ir.IsBranch(in.Op) || in.Target == label {
				continue
			}
			movs := compensationMovs(recs, k, i, lv.In[in.Target])
			if len(movs) == 0 {
				continue
			}
			stub := &prog.Block{Label: fmt.Sprintf("%s.x%d", label, n)}
			n++
			stub.Instrs = append(movs, ir.JMP(in.Target))
			in.Target = stub.Label
			stubs = append(stubs, stub)
		}
	}
	return stubs
}

// compensationMovs returns the moves restoring every expanded register that
// is live at an exit target, given the exit's copy index and position.
func compensationMovs(recs []renameRec, k, i int, live dataflow.RegSet) []*ir.Instr {
	var movs []*ir.Instr
	for ri := range recs {
		rec := &recs[ri]
		if !live.Has(rec.arch) {
			continue
		}
		name := rec.nameAt(k, i)
		if name == rec.arch {
			continue
		}
		if rec.arch.Class == ir.IntClass {
			movs = append(movs, ir.MOV(rec.arch, name))
		} else {
			movs = append(movs, ir.FMOV(rec.arch, name))
		}
	}
	return movs
}

// insertFallthroughMovs restores expanded locals that the loop's
// fall-through successor expects (the path past a conditional back edge,
// which cannot be stubbed): their moves go inline at the end of the last
// copy, before the back-edge branch. Induction finals are already in place.
func insertFallthroughMovs(copies [][]*ir.Instr, recs []renameRec, exitLabel string, lv *dataflow.Liveness) {
	if exitLabel == "" || len(copies) == 0 {
		return
	}
	lastCopy := copies[len(copies)-1]
	k := len(copies) - 1
	var movs []*ir.Instr
	for ri := range recs {
		rec := &recs[ri]
		if rec.induction {
			continue // maintained by the final move after the last increment
		}
		if !lv.In[exitLabel].Has(rec.arch) {
			continue
		}
		movs = append(movs, compensationMovs(recs[ri:ri+1], k, len(lastCopy), lv.In[exitLabel])...)
	}
	if len(movs) == 0 {
		return
	}
	// Insert before the terminal back-edge branch.
	term := lastCopy[len(lastCopy)-1]
	out := append([]*ir.Instr{}, lastCopy[:len(lastCopy)-1]...)
	out = append(out, movs...)
	out = append(out, term)
	copies[len(copies)-1] = out
}

// collectRegs returns every register referenced by the program.
func collectRegs(p *prog.Program) map[ir.Reg]bool {
	used := map[ir.Reg]bool{}
	for _, b := range p.Blocks {
		for _, in := range b.Instrs {
			for _, r := range []ir.Reg{in.Dest, in.Src1, in.Src2} {
				if r.Valid() {
					used[r] = true
				}
			}
		}
	}
	return used
}

// allocReg returns an unused physical register of the class.
func allocReg(used map[ir.Reg]bool, class ir.RegClass) (ir.Reg, bool) {
	n, mk, start := ir.NumIntRegs, ir.R, 1 // r0 is hardwired zero
	if class == ir.FPClass {
		n, mk, start = ir.NumFPRegs, ir.F, 0
	}
	for i := start; i < n; i++ {
		if r := mk(i); !used[r] {
			used[r] = true
			return r, true
		}
	}
	return ir.NoReg, false
}
