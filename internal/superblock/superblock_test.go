package superblock

import (
	"testing"

	"sentinel/internal/ir"
	"sentinel/internal/mem"
	"sentinel/internal/prog"
)

// runBoth executes the original and the formed program on clones of the same
// memory and compares architectural results.
func runBoth(t *testing.T, p *prog.Program, m *mem.Memory, opts Options) (*prog.Result, *prog.Program) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("original invalid: %v", err)
	}
	p.Layout()
	ref, err := prog.Run(p, m.Clone(), prog.Options{Collect: true})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	f := Form(p, ref.Profile, opts)
	if err := f.Validate(); err != nil {
		t.Fatalf("formed program invalid: %v\n%s", err, f)
	}
	f.Layout()
	got, err := prog.Run(f, m.Clone(), prog.Options{})
	if err != nil {
		t.Fatalf("formed run: %v\n%s", err, f)
	}
	if got.MemSum != ref.MemSum {
		t.Errorf("memory checksum mismatch: %#x vs %#x\n%s", got.MemSum, ref.MemSum, f)
	}
	if len(got.Out) != len(ref.Out) {
		t.Fatalf("output length %d vs %d", len(got.Out), len(ref.Out))
	}
	for i := range got.Out {
		if got.Out[i] != ref.Out[i] {
			t.Errorf("out[%d] = %d, want %d", i, got.Out[i], ref.Out[i])
		}
	}
	return ref, f
}

// sumLoop: classic counted loop over an array.
func sumLoop(n int) (*prog.Program, *mem.Memory) {
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), 0x1000),
		ir.LI(ir.R(2), int64(n)),
		ir.LI(ir.R(3), 0),
		ir.LI(ir.R(4), 0),
	)
	p.AddBlock("loop",
		ir.BR(ir.Bge, ir.R(4), ir.R(2), "done"),
	)
	p.AddBlock("body",
		ir.LOAD(ir.Ld, ir.R(5), ir.R(1), 0),
		ir.ALU(ir.Add, ir.R(3), ir.R(3), ir.R(5)),
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 8),
		ir.ALUI(ir.Add, ir.R(4), ir.R(4), 1),
		ir.JMP("loop"),
	)
	p.AddBlock("done",
		ir.JSR("putint", ir.R(3)),
		ir.HALT(),
	)
	m := mem.New()
	m.Map("data", 0x1000, n*8+8)
	for i := 0; i < n; i++ {
		m.Write(0x1000+int64(i)*8, 8, uint64(i*3+1))
	}
	return p, m
}

func TestFormSumLoopPreservesSemantics(t *testing.T) {
	p, m := sumLoop(37)
	_, f := runBoth(t, p, m, Options{})
	var sb *prog.Block
	for _, b := range f.Blocks {
		if b.Superblock {
			sb = b
			break
		}
	}
	if sb == nil {
		t.Fatalf("no superblock formed:\n%s", f)
	}
	// The loop+body trace must have been merged and unrolled 4x: four load
	// instructions in the superblock.
	loads := 0
	for _, in := range sb.Instrs {
		if in.Op == ir.Ld {
			loads++
		}
	}
	if loads != 4 {
		t.Errorf("superblock has %d loads, want 4 (unrolled):\n%s", loads, f)
	}
}

func TestFormNoUnroll(t *testing.T) {
	p, m := sumLoop(10)
	_, f := runBoth(t, p, m, Options{Unroll: 1})
	for _, b := range f.Blocks {
		if !b.Superblock {
			continue
		}
		loads := 0
		for _, in := range b.Instrs {
			if in.Op == ir.Ld {
				loads++
			}
		}
		if loads != 1 {
			t.Errorf("Unroll:1 must keep a single loop body, got %d loads", loads)
		}
	}
}

// biasedDiamond: a branch taken 1 time in 20; the hot path should be merged
// and the cold path redirected through a duplicate of the join block.
func biasedDiamond() (*prog.Program, *mem.Memory) {
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), 0x1000),
		ir.LI(ir.R(2), 20), // n
		ir.LI(ir.R(3), 0),  // i
		ir.LI(ir.R(7), 0),  // acc
	)
	p.AddBlock("head",
		ir.BR(ir.Bge, ir.R(3), ir.R(2), "exit"),
		ir.LOAD(ir.Ld, ir.R(4), ir.R(1), 0),
		ir.BRI(ir.Bne, ir.R(4), 0, "cold"), // mostly 0 values: rarely taken
	)
	p.AddBlock("hot",
		ir.ALUI(ir.Add, ir.R(7), ir.R(7), 1),
	)
	p.AddBlock("join",
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 8),
		ir.ALUI(ir.Add, ir.R(3), ir.R(3), 1),
		ir.JMP("head"),
	)
	p.AddBlock("cold",
		ir.ALU(ir.Add, ir.R(7), ir.R(7), ir.R(4)),
		ir.JMP("join"),
	)
	p.AddBlock("exit",
		ir.JSR("putint", ir.R(7)),
		ir.HALT(),
	)
	m := mem.New()
	m.Map("data", 0x1000, 21*8)
	m.Write(0x1000+8*7, 8, 100) // one nonzero element -> cold path once
	return p, m
}

func TestFormTailDuplication(t *testing.T) {
	p, m := biasedDiamond()
	_, f := runBoth(t, p, m, Options{})
	// join must have been absorbed; the cold path must reach a duplicate.
	var sawDup bool
	for _, b := range f.Blocks {
		if b.Label == "join.dup" {
			sawDup = true
		}
	}
	if !sawDup {
		t.Fatalf("expected join.dup in formed program:\n%s", f)
	}
	cold := f.Block("cold")
	if cold == nil {
		t.Fatal("cold block missing")
	}
	found := false
	for _, in := range cold.Instrs {
		if in.Op == ir.Jmp && in.Target == "join.dup" {
			found = true
		}
	}
	if !found {
		t.Errorf("cold must jump to join.dup:\n%s", f)
	}
	// No block other than superblock heads may be branch-targeted if it was
	// absorbed: references to "hot"/"join" must be gone outside dups.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if (ir.IsBranch(in.Op) || in.Op == ir.Jmp) && (in.Target == "hot" || in.Target == "join") {
				t.Errorf("stale reference to absorbed block %q in %q", in.Target, b.Label)
			}
		}
	}
}

// TestFormTakenEdgeTrace exercises branch inversion: the hot successor is
// reached via the TAKEN edge.
func TestFormTakenEdgeTrace(t *testing.T) {
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), 0),
		ir.LI(ir.R(2), 30),
	)
	p.AddBlock("head",
		ir.BR(ir.Blt, ir.R(1), ir.R(2), "work"), // taken 30x, falls to exit once
	)
	p.AddBlock("exit",
		ir.JSR("putint", ir.R(3)),
		ir.HALT(),
	)
	p.AddBlock("work",
		ir.ALUI(ir.Add, ir.R(3), ir.R(3), 5),
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 1),
		ir.JMP("head"),
	)
	m := mem.New()
	_, f := runBoth(t, p, m, Options{})
	// head+work should merge with the branch inverted to bge -> exit.
	sb := f.Block("head")
	if sb == nil || !sb.Superblock {
		t.Fatalf("head not a superblock:\n%s", f)
	}
	if sb.Instrs[0].Op != ir.Bge || sb.Instrs[0].Target != "exit" {
		t.Errorf("first instr = %v, want inverted branch bge -> exit", sb.Instrs[0])
	}
}

// TestFormColdProgramUntouched: with no profile counts, formation must leave
// the program structurally intact (no superblocks).
func TestFormColdProgramUntouched(t *testing.T) {
	p, _ := sumLoop(3)
	p.Layout()
	empty := &prog.Profile{
		Blocks:   map[string]int64{},
		Branches: map[prog.BranchKey]*prog.BranchStat{},
		Edges:    map[prog.EdgeKey]int64{},
	}
	f := Form(p, empty, Options{})
	for _, b := range f.Blocks {
		if b.Superblock {
			t.Errorf("cold program grew a superblock %q", b.Label)
		}
	}
	if len(f.Blocks) != len(p.Blocks) {
		t.Errorf("block count changed: %d vs %d", len(f.Blocks), len(p.Blocks))
	}
}

// TestFormDoesNotMutateInput verifies Form clones before surgery.
func TestFormDoesNotMutateInput(t *testing.T) {
	p, m := sumLoop(5)
	p.Layout()
	before := p.String()
	ref, err := prog.Run(p, m.Clone(), prog.Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	Form(p, ref.Profile, Options{})
	if p.String() != before {
		t.Error("Form mutated its input program")
	}
}

// TestInvertBranch checks the involution property.
func TestInvertBranch(t *testing.T) {
	for _, op := range []ir.Op{ir.Beq, ir.Bne, ir.Blt, ir.Bge} {
		if invertBranch(invertBranch(op)) != op {
			t.Errorf("invert(invert(%v)) != %v", op, op)
		}
		if invertBranch(op) == op {
			t.Errorf("invert(%v) must differ", op)
		}
	}
}

// TestFormNestedLoops: an inner hot loop inside an outer loop; semantics
// must be preserved and the inner loop should become a superblock.
func TestFormNestedLoops(t *testing.T) {
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), 0), // i
		ir.LI(ir.R(9), 0), // acc
	)
	p.AddBlock("outer",
		ir.BRI(ir.Bge, ir.R(1), 6, "done"),
		ir.LI(ir.R(2), 0), // j
	)
	p.AddBlock("inner",
		ir.ALU(ir.Add, ir.R(9), ir.R(9), ir.R(2)),
		ir.ALUI(ir.Add, ir.R(2), ir.R(2), 1),
		ir.BRI(ir.Blt, ir.R(2), 15, "inner"),
	)
	p.AddBlock("tail",
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 1),
		ir.JMP("outer"),
	)
	p.AddBlock("done",
		ir.JSR("putint", ir.R(9)),
		ir.HALT(),
	)
	_, f := runBoth(t, p, mem.New(), Options{})
	sb := f.Block("inner")
	if sb == nil || !sb.Superblock {
		t.Fatalf("inner loop not a superblock:\n%s", f)
	}
}
