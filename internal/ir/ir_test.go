package ir

import (
	"testing"
	"testing/quick"
)

func TestRegConstruction(t *testing.T) {
	if NoReg.Valid() {
		t.Error("NoReg must be invalid")
	}
	r := R(5)
	if !r.Valid() || r.Class != IntClass || r.N != 5 || r.Virtual {
		t.Errorf("R(5) = %+v", r)
	}
	f := F(63)
	if !f.Valid() || f.Class != FPClass || f.N != 63 {
		t.Errorf("F(63) = %+v", f)
	}
	if !R(0).IsZero() {
		t.Error("r0 must be the hardwired zero register")
	}
	if R(1).IsZero() || F(0).IsZero() || VR(0).IsZero() {
		t.Error("only physical integer r0 is the zero register")
	}
}

func TestRegIndexDense(t *testing.T) {
	seen := map[int]bool{}
	for n := 0; n < NumIntRegs; n++ {
		i := R(n).Index()
		if i < 0 || i >= NumIntRegs+NumFPRegs || seen[i] {
			t.Fatalf("R(%d).Index() = %d (dup=%v)", n, i, seen[i])
		}
		seen[i] = true
	}
	for n := 0; n < NumFPRegs; n++ {
		i := F(n).Index()
		if i < 0 || i >= NumIntRegs+NumFPRegs || seen[i] {
			t.Fatalf("F(%d).Index() = %d (dup=%v)", n, i, seen[i])
		}
		seen[i] = true
	}
}

func TestRegIndexPanicsOnVirtual(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Index on virtual register must panic")
		}
	}()
	VR(3).Index()
}

func TestRegString(t *testing.T) {
	cases := map[string]Reg{
		"r7": R(7), "f12": F(12), "v3": VR(3), "vf4": VF(4), "-": NoReg,
	}
	for want, r := range cases {
		if got := r.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", r, got, want)
		}
	}
}

func TestTrapsMatchesPaperModel(t *testing.T) {
	// Per §5.1: "trap on exceptions for memory load, memory store, integer
	// divide, and all floating point instructions".
	trapping := []Op{Ld, Ldb, Fld, St, Stb, Fst, Div, Rem,
		Fadd, Fsub, Fmul, Fdiv, Fmov, Fneg, Fabs, Cvif, Cvfi, Feq, Flt, Fle}
	for _, op := range trapping {
		if !Traps(op) {
			t.Errorf("Traps(%v) = false, want true", op)
		}
	}
	nonTrapping := []Op{Nop, Add, Sub, Mul, And, Or, Xor, Shl, Shr, Slt, Li,
		Mov, Beq, Bne, Blt, Bge, Jmp, Jsr, Halt, Check, ConfirmSt, ClearTag}
	for _, op := range nonTrapping {
		if Traps(op) {
			t.Errorf("Traps(%v) = true, want false", op)
		}
	}
}

func TestOpClassPredicates(t *testing.T) {
	for _, op := range []Op{Beq, Bne, Blt, Bge} {
		if !IsBranch(op) || !IsControl(op) {
			t.Errorf("%v must be a conditional branch and control op", op)
		}
	}
	for _, op := range []Op{Jmp, Jsr, Halt} {
		if IsBranch(op) || !IsControl(op) {
			t.Errorf("%v must be control but not a conditional branch", op)
		}
	}
	for _, op := range []Op{St, Stb, Fst, SaveTR} {
		if !IsStore(op) || !IsMem(op) || IsLoad(op) {
			t.Errorf("%v store classification wrong", op)
		}
	}
	for _, op := range []Op{Ld, Ldb, Fld, RestTR} {
		if !IsLoad(op) || !IsMem(op) || IsStore(op) {
			t.Errorf("%v load classification wrong", op)
		}
	}
	if !Irreversible(Jsr) || Irreversible(St) || Irreversible(Ld) {
		t.Error("only Jsr is irreversible (weak-ordering memory model, §3.7)")
	}
}

func TestMemSize(t *testing.T) {
	for op, want := range map[Op]int{Ld: 8, Fld: 8, St: 8, Fst: 8, Ldb: 1,
		Stb: 1, SaveTR: 8, RestTR: 8, Add: 0, Beq: 0} {
		if got := MemSize(op); got != want {
			t.Errorf("MemSize(%v) = %d, want %d", op, got, want)
		}
	}
}

func TestUsesAndDef(t *testing.T) {
	i := ALU(Add, R(3), R(1), R(2))
	if d, ok := i.Def(); !ok || d != R(3) {
		t.Errorf("Def = %v,%v", d, ok)
	}
	u := i.Uses()
	if len(u) != 2 || u[0] != R(1) || u[1] != R(2) {
		t.Errorf("Uses = %v", u)
	}

	// r0 is hardwired zero: never a dependence.
	z := ALU(Add, R(0), R(0), R(2))
	if _, ok := z.Def(); ok {
		t.Error("write to r0 must not count as a definition")
	}
	if u := z.Uses(); len(u) != 1 || u[0] != R(2) {
		t.Errorf("Uses with r0 source = %v", u)
	}

	st := STORE(St, R(4), 8, R(5))
	if _, ok := st.Def(); ok {
		t.Error("store has no register definition")
	}
	if u := st.Uses(); len(u) != 2 {
		t.Errorf("store Uses = %v", u)
	}
}

func TestSelfModifying(t *testing.T) {
	if !ALU(Add, R(2), R(2), R(3)).SelfModifying() {
		t.Error("r2 = r2+r3 is self-modifying")
	}
	if !ALUI(Add, R(2), R(2), 1).SelfModifying() {
		t.Error("r2 = r2+1 is self-modifying")
	}
	if ALU(Add, R(4), R(2), R(3)).SelfModifying() {
		t.Error("r4 = r2+r3 is not self-modifying")
	}
	if !LOAD(Ld, R(1), R(1), 0).SelfModifying() {
		t.Error("r1 = mem(r1) is self-modifying")
	}
}

func TestCloneIsDeep(t *testing.T) {
	i := LOAD(Ld, R(1), R(2), 16)
	c := i.Clone()
	c.Dest = R(9)
	c.Spec = true
	c.Cycle = 4
	if i.Dest != R(1) || i.Spec || i.Cycle != -1 {
		t.Error("Clone must not alias the original")
	}
}

func TestNewDefaults(t *testing.T) {
	i := New(Add)
	if i.Cycle != -1 || i.Slot != -1 || i.PC != -1 || i.Spec {
		t.Errorf("New defaults wrong: %+v", i)
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   *Instr
		want string
	}{
		{ALU(Add, R(1), R(2), R(3)), "add r1, r2, r3"},
		{ALUI(Add, R(1), R(2), 4), "add r1, r2, 4"},
		{LI(R(5), 42), "li r5, 42"},
		{MOV(R(1), R(2)), "mov r1, r2"},
		{LOAD(Ld, R(1), R(2), 0), "ld r1, 0(r2)"},
		{STORE(St, R(2), 4, R(4)), "st r4, 4(r2)"},
		{BR(Beq, R(2), R(0), "L1"), "beq r2, r0, L1"},
		{BRI(Beq, R(2), 0, "L1"), "beq r2, 0, L1"},
		{JMP("L2"), "jmp L2"},
		{JSR("putint", R(4)), "jsr putint, r4"},
		{CHECK(R(5)), "check r5"},
		{CONFIRM(2), "confirm_st 2"},
		{CLEARTAG(R(6)), "cleartag r6"},
		{HALT(), "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	spec := LOAD(Ld, R(1), R(2), 0)
	spec.Spec = true
	if got := spec.String(); got != "ld r1, 0(r2) <spec>" {
		t.Errorf("speculative String() = %q", got)
	}
}

func TestUnitLatencyClasses(t *testing.T) {
	cases := map[Op]Unit{
		Add: UnitIntALU, Mul: UnitIntMul, Div: UnitIntDiv, Beq: UnitBranch,
		Ld: UnitLoad, St: UnitStore, Fadd: UnitFPALU, Cvif: UnitFPConv,
		Fmul: UnitFPMul, Fdiv: UnitFPDiv, Check: UnitIntALU,
		ConfirmSt: UnitStore,
	}
	for op, want := range cases {
		if got := UnitOf(op); got != want {
			t.Errorf("UnitOf(%v) = %v, want %v", op, got, want)
		}
	}
}

// Property: every opcode has a name, a unit class, and consistent
// store/load/mem classification.
func TestAllOpcodesWellFormed(t *testing.T) {
	for op := Nop; op < numOps; op++ {
		if op.String() == "" || op.String()[0] == 'o' && op != Or {
			t.Errorf("opcode %d has bad name %q", op, op.String())
		}
		if IsStore(op) && IsLoad(op) {
			t.Errorf("%v is both load and store", op)
		}
		if IsMem(op) != (IsStore(op) || IsLoad(op)) {
			t.Errorf("%v IsMem inconsistent", op)
		}
		if IsBranch(op) && !IsControl(op) {
			t.Errorf("%v branch must be control", op)
		}
	}
}

// Property-based: cloning then mutating arbitrary fields never affects the
// original instruction.
func TestCloneIndependenceQuick(t *testing.T) {
	f := func(op uint8, imm int64, spec bool, cyc int16) bool {
		i := New(Op(op % uint8(numOps)))
		i.Imm = imm
		c := i.Clone()
		c.Spec = spec
		c.Cycle = int(cyc)
		c.Imm = imm + 1
		return i.Imm == imm && !i.Spec == true && i.Cycle == -1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
