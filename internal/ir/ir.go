// Package ir defines MIR, the machine-level intermediate representation used
// throughout the sentinel-scheduling reproduction. MIR is a RISC assembly
// language in the spirit of the MIPS R2000 instruction set, matching the
// machine model of Mahlke et al. (ASPLOS 1992): 64 integer registers, 64
// floating-point registers, deterministic instruction latencies, and a set of
// potentially trapping opcodes (memory loads, memory stores, integer divide,
// and all floating-point instructions).
package ir

import "fmt"

// RegClass distinguishes the two architectural register files.
type RegClass uint8

const (
	// IntClass is the integer register file (r0..r63, r0 hardwired to zero).
	IntClass RegClass = iota
	// FPClass is the floating-point register file (f0..f63).
	FPClass
)

// NumIntRegs and NumFPRegs are the architectural register file sizes.
const (
	NumIntRegs = 64
	NumFPRegs  = 64
)

// Reg names one architectural or virtual register. Physical registers have
// N < NumIntRegs (or NumFPRegs); the register allocator additionally uses
// virtual registers with Virtual set, which must be rewritten to physical
// registers before scheduling or simulation.
type Reg struct {
	Class   RegClass
	N       int16
	Virtual bool
	valid   bool
}

// NoReg is the zero Reg and means "no operand".
var NoReg = Reg{}

// R returns integer register n.
func R(n int) Reg { return Reg{Class: IntClass, N: int16(n), valid: true} }

// F returns floating-point register n.
func F(n int) Reg { return Reg{Class: FPClass, N: int16(n), valid: true} }

// VR returns virtual integer register n.
func VR(n int) Reg { return Reg{Class: IntClass, N: int16(n), Virtual: true, valid: true} }

// VF returns virtual floating-point register n.
func VF(n int) Reg { return Reg{Class: FPClass, N: int16(n), Virtual: true, valid: true} }

// Valid reports whether r names a register (as opposed to NoReg).
func (r Reg) Valid() bool { return r.valid }

// IsZero reports whether r is the hardwired-zero integer register r0.
func (r Reg) IsZero() bool { return r.valid && !r.Virtual && r.Class == IntClass && r.N == 0 }

func (r Reg) String() string {
	if !r.valid {
		return "-"
	}
	switch {
	case r.Virtual && r.Class == IntClass:
		return fmt.Sprintf("v%d", r.N)
	case r.Virtual:
		return fmt.Sprintf("vf%d", r.N)
	case r.Class == IntClass:
		return fmt.Sprintf("r%d", r.N)
	default:
		return fmt.Sprintf("f%d", r.N)
	}
}

// Index returns a dense index for physical registers: integer registers map
// to [0,NumIntRegs) and floating-point registers to [NumIntRegs,
// NumIntRegs+NumFPRegs). It panics on virtual or invalid registers.
func (r Reg) Index() int {
	if !r.valid || r.Virtual {
		panic("ir: Index of non-physical register " + r.String())
	}
	if r.Class == IntClass {
		return int(r.N)
	}
	return NumIntRegs + int(r.N)
}

// Op enumerates the MIR opcodes.
type Op uint8

const (
	// Nop does nothing.
	Nop Op = iota

	// Integer ALU, latency 1. Two-source forms use Src2 when valid,
	// otherwise the Imm field supplies the second operand.
	Add
	Sub
	Mul // integer multiply, latency 3
	Div // integer divide, latency 10, traps on divide by zero
	Rem // integer remainder, latency 10, traps on divide by zero
	And
	Or
	Xor
	Shl
	Shr
	Slt // set less than (signed): dest = (src1 < src2) ? 1 : 0
	Li  // load immediate: dest = Imm
	Mov // register move: dest = src1

	// Memory operations. Effective address is Src1 + Imm.
	Ld  // load 64-bit word, latency 2, traps
	Ldb // load byte (zero-extended), latency 2, traps
	Fld // load 64-bit float, latency 2, traps
	St  // store 64-bit word from Src2, latency 1, traps
	Stb // store byte from Src2, latency 1, traps
	Fst // store 64-bit float from Src2, latency 1, traps

	// Floating point. All FP instructions are potentially trapping.
	Fadd // latency 3
	Fsub // latency 3
	Fmul // latency 3
	Fdiv // latency 10
	Fmov // latency 3 (FP ALU class)
	Fneg // latency 3
	Fabs // latency 3
	Cvif // convert integer src1 to float dest, latency 3
	Cvfi // convert float src1 to integer dest, latency 3
	Feq  // FP compare to integer dest: dest = (src1 == src2), latency 3
	Flt  // dest = (src1 < src2), latency 3
	Fle  // dest = (src1 <= src2), latency 3

	// Control. Conditional branches compare Src1 against Src2 (or Imm when
	// Src2 is invalid) and transfer to Target when the condition holds.
	Beq
	Bne
	Blt  // signed less-than
	Bge  // signed greater-or-equal
	Jmp  // unconditional jump to Target
	Jsr  // call a runtime routine named by Target; irreversible
	Halt // stop the program

	// Sentinel-scheduling architectural support.
	Check     // check_exception(src1): explicit sentinel, no computation
	ConfirmSt // confirm_store(Imm): confirm the probationary store Imm entries from the store-buffer tail
	ClearTag  // reset the exception tag of Dest (for uninitialized registers, §3.5)
	SaveTR    // store Src2's data AND exception tag to mem[Src1+Imm] without signalling (§3.2)
	RestTR    // load data AND exception tag from mem[Src1+Imm] into Dest without signalling (§3.2)

	numOps // sentinel for table sizing; keep last
)

// NumOps is the number of MIR opcodes, for sizing per-opcode tables (e.g.
// the simulator's dynamic opcode-mix counters).
const NumOps = int(numOps)

var opNames = [numOps]string{
	Nop: "nop", Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr", Slt: "slt",
	Li: "li", Mov: "mov",
	Ld: "ld", Ldb: "ldb", Fld: "fld", St: "st", Stb: "stb", Fst: "fst",
	Fadd: "fadd", Fsub: "fsub", Fmul: "fmul", Fdiv: "fdiv", Fmov: "fmov",
	Fneg: "fneg", Fabs: "fabs", Cvif: "cvif", Cvfi: "cvfi",
	Feq: "feq", Flt: "flt", Fle: "fle",
	Beq: "beq", Bne: "bne", Blt: "blt", Bge: "bge", Jmp: "jmp", Jsr: "jsr",
	Halt:  "halt",
	Check: "check", ConfirmSt: "confirm_st", ClearTag: "cleartag",
	SaveTR: "savetr", RestTR: "resttr",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// Unit is the function-unit class of an opcode, which determines its latency
// per Table 3 of the paper.
type Unit uint8

const (
	UnitIntALU Unit = iota
	UnitIntMul
	UnitIntDiv
	UnitBranch
	UnitLoad
	UnitStore
	UnitFPALU
	UnitFPConv
	UnitFPMul
	UnitFPDiv
	NumUnits
)

var unitNames = [NumUnits]string{
	UnitIntALU: "Int ALU", UnitIntMul: "Int multiply", UnitIntDiv: "Int divide",
	UnitBranch: "branch", UnitLoad: "memory load", UnitStore: "memory store",
	UnitFPALU: "FP ALU", UnitFPConv: "FP conversion", UnitFPMul: "FP multiply",
	UnitFPDiv: "FP divide",
}

func (u Unit) String() string { return unitNames[u] }

var opUnit = [numOps]Unit{
	Nop: UnitIntALU, Add: UnitIntALU, Sub: UnitIntALU, Mul: UnitIntMul,
	Div: UnitIntDiv, Rem: UnitIntDiv,
	And: UnitIntALU, Or: UnitIntALU, Xor: UnitIntALU, Shl: UnitIntALU,
	Shr: UnitIntALU, Slt: UnitIntALU, Li: UnitIntALU, Mov: UnitIntALU,
	Ld: UnitLoad, Ldb: UnitLoad, Fld: UnitLoad,
	St: UnitStore, Stb: UnitStore, Fst: UnitStore,
	Fadd: UnitFPALU, Fsub: UnitFPALU, Fmul: UnitFPMul, Fdiv: UnitFPDiv,
	Fmov: UnitFPALU, Fneg: UnitFPALU, Fabs: UnitFPALU,
	Cvif: UnitFPConv, Cvfi: UnitFPConv,
	Feq: UnitFPALU, Flt: UnitFPALU, Fle: UnitFPALU,
	Beq: UnitBranch, Bne: UnitBranch, Blt: UnitBranch, Bge: UnitBranch,
	Jmp: UnitBranch, Jsr: UnitBranch, Halt: UnitBranch,
	Check: UnitIntALU, ConfirmSt: UnitStore, ClearTag: UnitIntALU,
	SaveTR: UnitStore, RestTR: UnitLoad,
}

// UnitOf returns op's function-unit class.
func UnitOf(op Op) Unit { return opUnit[op] }

// Traps reports whether op is a potentially trap-causing instruction. Per the
// paper's machine model these are memory loads, memory stores, integer
// divide, and all floating-point instructions. SaveTR/RestTR access memory
// and may fault; Check and ConfirmSt signal exceptions on behalf of other
// instructions but do not themselves trap.
func Traps(op Op) bool {
	switch op {
	case Ld, Ldb, Fld, St, Stb, Fst, Div, Rem,
		Fadd, Fsub, Fmul, Fdiv, Fmov, Fneg, Fabs, Cvif, Cvfi, Feq, Flt, Fle,
		SaveTR, RestTR:
		return true
	}
	return false
}

// IsBranch reports whether op is a conditional branch.
func IsBranch(op Op) bool {
	switch op {
	case Beq, Bne, Blt, Bge:
		return true
	}
	return false
}

// IsControl reports whether op transfers or may transfer control (branches,
// jumps, calls, halt). Control instructions delimit home blocks inside a
// superblock and may never be executed speculatively.
func IsControl(op Op) bool {
	switch op {
	case Beq, Bne, Blt, Bge, Jmp, Jsr, Halt:
		return true
	}
	return false
}

// IsStore reports whether op writes memory.
func IsStore(op Op) bool {
	switch op {
	case St, Stb, Fst, SaveTR:
		return true
	}
	return false
}

// IsLoad reports whether op reads memory.
func IsLoad(op Op) bool {
	switch op {
	case Ld, Ldb, Fld, RestTR:
		return true
	}
	return false
}

// IsMem reports whether op accesses memory.
func IsMem(op Op) bool { return IsStore(op) || IsLoad(op) }

// BufferedStore reports whether op inserts an entry into the store buffer.
// SaveTR bypasses the buffer (the buffer is drained first), so it does not
// count toward confirm_store indices or the §4.2 separation constraint.
func BufferedStore(op Op) bool {
	switch op {
	case St, Stb, Fst:
		return true
	}
	return false
}

// Irreversible reports whether op has side effects that cannot be undone by
// re-execution (§3.7): I/O, subroutine call and synchronization. In MIR the
// only such opcode is Jsr (runtime calls perform I/O). Under the paper's
// weak-ordering memory model, stores are NOT irreversible.
func Irreversible(op Op) bool { return op == Jsr }

// MemSize returns the access width in bytes of a memory opcode (0 for
// non-memory opcodes).
func MemSize(op Op) int {
	switch op {
	case Ld, Fld, St, Fst, SaveTR, RestTR:
		return 8
	case Ldb, Stb:
		return 1
	}
	return 0
}

// ExcKind identifies the kind of a program exception.
type ExcKind uint8

const (
	ExcNone ExcKind = iota
	ExcPageFault
	ExcAccessViolation
	ExcDivZero
	ExcFPInvalid
	ExcFPOverflow
)

var excNames = [...]string{
	ExcNone: "none", ExcPageFault: "page fault",
	ExcAccessViolation: "access violation", ExcDivZero: "divide by zero",
	ExcFPInvalid: "fp invalid", ExcFPOverflow: "fp overflow",
}

func (k ExcKind) String() string {
	if int(k) < len(excNames) {
		return excNames[k]
	}
	return fmt.Sprintf("exc(%d)", int(k))
}

// Instr is one MIR instruction. Instructions are mutated by the scheduler
// (Spec modifier, Cycle/Slot assignment) and are therefore always handled by
// pointer; Clone produces deep copies for tail duplication and unrolling.
type Instr struct {
	Op     Op
	Dest   Reg
	Src1   Reg
	Src2   Reg
	Imm    int64  // immediate operand / memory offset / confirm_store index
	Target string // branch target label, or Jsr runtime routine name

	// Spec is the speculative modifier: set by the scheduler on every
	// instruction moved above one or more branches (§3.2).
	Spec bool

	// BoostLevel is the number of branches this instruction was boosted
	// above under the instruction-boosting model (§2.3); 0 otherwise. Its
	// result lives in shadow register file / shadow store buffer level
	// BoostLevel until those branches commit.
	BoostLevel int

	// Scheduling results. Cycle is the issue cycle relative to the start of
	// the instruction's (super)block, Slot the position within the issue
	// group; both are -1 before scheduling.
	Cycle int
	Slot  int

	// PC is a globally unique instruction address assigned when a program is
	// laid out; the simulator reports exception PCs in terms of it.
	PC int
}

// New returns an unscheduled instruction with the given opcode.
func New(op Op) *Instr { return &Instr{Op: op, Cycle: -1, Slot: -1, PC: -1} }

// Clone returns a deep copy of i (Instr contains no reference fields other
// than strings, which are immutable).
func (i *Instr) Clone() *Instr {
	c := *i
	return &c
}

// Uses returns the source registers read by i, excluding invalid operands
// and the hardwired-zero register (which is not a real dependence).
func (i *Instr) Uses() []Reg {
	var u []Reg
	if i.Src1.Valid() && !i.Src1.IsZero() {
		u = append(u, i.Src1)
	}
	if i.Src2.Valid() && !i.Src2.IsZero() {
		u = append(u, i.Src2)
	}
	return u
}

// Uses2 is an allocation-free Uses: it returns i's source registers in the
// same order, with NoReg filling unused positions. Callers must skip
// positions for which Valid() is false.
func (i *Instr) Uses2() (a, b Reg) {
	if i.Src1.Valid() && !i.Src1.IsZero() {
		a = i.Src1
	}
	if i.Src2.Valid() && !i.Src2.IsZero() {
		b = i.Src2
	}
	return a, b
}

// Def returns the register written by i and whether there is one. Writes to
// the hardwired-zero register are discarded and reported as no definition.
func (i *Instr) Def() (Reg, bool) {
	if i.Dest.Valid() && !i.Dest.IsZero() {
		return i.Dest, true
	}
	return NoReg, false
}

// SelfModifying reports whether i overwrites one of its own source registers
// (e.g. r2 = r2+1). Such instructions break restartable sequences (§3.7
// restriction 3) unless the scheduler's renaming transformation splits them.
func (i *Instr) SelfModifying() bool {
	d, ok := i.Def()
	if !ok {
		return false
	}
	for _, u := range i.Uses() {
		if u == d {
			return true
		}
	}
	return false
}

func (i *Instr) String() string {
	s := i.format()
	if i.Spec {
		s += " <spec>"
	}
	return s
}

func (i *Instr) format() string {
	switch {
	case i.Op == Nop || i.Op == Halt:
		return i.Op.String()
	case i.Op == Li:
		return fmt.Sprintf("li %s, %d", i.Dest, i.Imm)
	case i.Op == Mov || i.Op == Fmov || i.Op == Fneg || i.Op == Fabs ||
		i.Op == Cvif || i.Op == Cvfi:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Dest, i.Src1)
	case IsLoad(i.Op):
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Dest, i.Imm, i.Src1)
	case IsStore(i.Op):
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Src2, i.Imm, i.Src1)
	case IsBranch(i.Op):
		if i.Src2.Valid() {
			return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Src1, i.Src2, i.Target)
		}
		return fmt.Sprintf("%s %s, %d, %s", i.Op, i.Src1, i.Imm, i.Target)
	case i.Op == Jmp:
		return fmt.Sprintf("jmp %s", i.Target)
	case i.Op == Jsr:
		return fmt.Sprintf("jsr %s, %s", i.Target, i.Src1)
	case i.Op == Check:
		return fmt.Sprintf("check %s", i.Src1)
	case i.Op == ConfirmSt:
		return fmt.Sprintf("confirm_st %d", i.Imm)
	case i.Op == ClearTag:
		return fmt.Sprintf("cleartag %s", i.Dest)
	default:
		if i.Src2.Valid() {
			return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Dest, i.Src1, i.Src2)
		}
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Dest, i.Src1, i.Imm)
	}
}
