package ir

// Constructor helpers. These keep workload generators and tests terse while
// guaranteeing well-formed operand shapes for each opcode.

// ALU builds a three-register ALU instruction dest = src1 op src2.
func ALU(op Op, dest, src1, src2 Reg) *Instr {
	i := New(op)
	i.Dest, i.Src1, i.Src2 = dest, src1, src2
	return i
}

// ALUI builds a register-immediate ALU instruction dest = src1 op imm.
func ALUI(op Op, dest, src1 Reg, imm int64) *Instr {
	i := New(op)
	i.Dest, i.Src1, i.Imm = dest, src1, imm
	return i
}

// LI builds dest = imm.
func LI(dest Reg, imm int64) *Instr {
	i := New(Li)
	i.Dest, i.Imm = dest, imm
	return i
}

// MOV builds dest = src (integer move).
func MOV(dest, src Reg) *Instr {
	i := New(Mov)
	i.Dest, i.Src1 = dest, src
	return i
}

// FMOV builds dest = src (floating-point move).
func FMOV(dest, src Reg) *Instr {
	i := New(Fmov)
	i.Dest, i.Src1 = dest, src
	return i
}

// UN builds a one-source unary instruction dest = op src (Fneg, Fabs, Cvif,
// Cvfi, Mov, Fmov).
func UN(op Op, dest, src Reg) *Instr {
	i := New(op)
	i.Dest, i.Src1 = dest, src
	return i
}

// LOAD builds dest = mem[base+off] with the given load opcode.
func LOAD(op Op, dest, base Reg, off int64) *Instr {
	i := New(op)
	i.Dest, i.Src1, i.Imm = dest, base, off
	return i
}

// STORE builds mem[base+off] = val with the given store opcode.
func STORE(op Op, base Reg, off int64, val Reg) *Instr {
	i := New(op)
	i.Src1, i.Imm, i.Src2 = base, off, val
	return i
}

// BR builds a two-register conditional branch to target.
func BR(op Op, src1, src2 Reg, target string) *Instr {
	i := New(op)
	i.Src1, i.Src2, i.Target = src1, src2, target
	return i
}

// BRI builds a register-immediate conditional branch to target.
func BRI(op Op, src1 Reg, imm int64, target string) *Instr {
	i := New(op)
	i.Src1, i.Imm, i.Target = src1, imm, target
	return i
}

// JMP builds an unconditional jump to target.
func JMP(target string) *Instr {
	i := New(Jmp)
	i.Target = target
	return i
}

// JSR builds a call to the named runtime routine. The routine reads its
// argument from the integer register passed as arg.
func JSR(name string, arg Reg) *Instr {
	i := New(Jsr)
	i.Target = name
	i.Src1 = arg
	return i
}

// HALT builds a program-stop instruction.
func HALT() *Instr { return New(Halt) }

// NOP builds a no-operation instruction.
func NOP() *Instr { return New(Nop) }

// CHECK builds a check_exception(src) explicit sentinel.
func CHECK(src Reg) *Instr {
	i := New(Check)
	i.Src1 = src
	return i
}

// CONFIRM builds a confirm_store(index) sentinel for a speculative store.
func CONFIRM(index int64) *Instr {
	i := New(ConfirmSt)
	i.Imm = index
	return i
}

// CLEARTAG builds an instruction that resets dest's exception tag (§3.5).
func CLEARTAG(dest Reg) *Instr {
	i := New(ClearTag)
	i.Dest = dest
	return i
}
