package ir

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIntALUOp(t *testing.T) {
	cases := []struct {
		op      Op
		a, b, r int64
	}{
		{Add, 2, 3, 5}, {Sub, 2, 3, -1}, {Mul, 4, -3, -12},
		{And, 0b1100, 0b1010, 0b1000}, {Or, 0b1100, 0b1010, 0b1110},
		{Xor, 0b1100, 0b1010, 0b0110},
		{Shl, 1, 4, 16}, {Shr, -1, 60, 15}, {Shr, 256, 4, 16},
		{Slt, 1, 2, 1}, {Slt, 2, 1, 0}, {Slt, -5, 3, 1},
		{Shl, 1, 64, 1}, // shift counts mod 64
	}
	for _, c := range cases {
		if got := IntALUOp(c.op, c.a, c.b); got != c.r {
			t.Errorf("IntALUOp(%v, %d, %d) = %d, want %d", c.op, c.a, c.b, got, c.r)
		}
	}
}

func TestIntDivOp(t *testing.T) {
	if v, e := IntDivOp(Div, 17, 5); v != 3 || e != ExcNone {
		t.Errorf("17/5 = %d, %v", v, e)
	}
	if v, e := IntDivOp(Rem, 17, 5); v != 2 || e != ExcNone {
		t.Errorf("17%%5 = %d, %v", v, e)
	}
	if _, e := IntDivOp(Div, 1, 0); e != ExcDivZero {
		t.Errorf("divide by zero must trap, got %v", e)
	}
	if _, e := IntDivOp(Rem, 1, 0); e != ExcDivZero {
		t.Errorf("remainder by zero must trap, got %v", e)
	}
	// MinInt64 / -1 wraps without trapping, like two's-complement hardware.
	if v, e := IntDivOp(Div, math.MinInt64, -1); v != math.MinInt64 || e != ExcNone {
		t.Errorf("MinInt64/-1 = %d, %v", v, e)
	}
	if v, e := IntDivOp(Rem, math.MinInt64, -1); v != 0 || e != ExcNone {
		t.Errorf("MinInt64%%-1 = %d, %v", v, e)
	}
}

func TestFPOp(t *testing.T) {
	if v, e := FPOp(Fadd, 1.5, 2.5); v != 4.0 || e != ExcNone {
		t.Errorf("fadd = %v, %v", v, e)
	}
	if v, e := FPOp(Fdiv, 1, 4); v != 0.25 || e != ExcNone {
		t.Errorf("fdiv = %v, %v", v, e)
	}
	if _, e := FPOp(Fdiv, 1, 0); e != ExcFPInvalid {
		t.Errorf("fdiv by zero: %v, want fp invalid", e)
	}
	if _, e := FPOp(Fmul, math.MaxFloat64, 2); e != ExcFPOverflow {
		t.Errorf("overflow: %v, want fp overflow", e)
	}
	// inf - inf = NaN from non-NaN inputs: invalid.
	if _, e := FPOp(Fsub, math.Inf(1), math.Inf(1)); e != ExcFPInvalid {
		t.Errorf("inf-inf: %v, want fp invalid", e)
	}
	// NaN input propagates without a fresh exception.
	if _, e := FPOp(Fadd, math.NaN(), 1); e != ExcNone {
		t.Errorf("NaN propagation must not trap, got %v", e)
	}
}

func TestFPUnOp(t *testing.T) {
	if FPUnOp(Fmov, 3.5) != 3.5 || FPUnOp(Fneg, 3.5) != -3.5 || FPUnOp(Fabs, -2.0) != 2.0 {
		t.Error("FP unary ops wrong")
	}
}

func TestFPCmpOp(t *testing.T) {
	type c struct {
		op   Op
		a, b float64
		want int64
	}
	for _, tc := range []c{
		{Feq, 1, 1, 1}, {Feq, 1, 2, 0},
		{Flt, 1, 2, 1}, {Flt, 2, 1, 0}, {Flt, 1, 1, 0},
		{Fle, 1, 1, 1}, {Fle, 2, 1, 0},
	} {
		v, e := FPCmpOp(tc.op, tc.a, tc.b)
		if v != tc.want || e != ExcNone {
			t.Errorf("FPCmpOp(%v,%v,%v) = %d,%v want %d", tc.op, tc.a, tc.b, v, e, tc.want)
		}
	}
	if _, e := FPCmpOp(Flt, math.NaN(), 1); e != ExcFPInvalid {
		t.Errorf("NaN compare: %v, want fp invalid", e)
	}
}

func TestCvfiOp(t *testing.T) {
	if v, e := CvfiOp(3.9); v != 3 || e != ExcNone {
		t.Errorf("CvfiOp(3.9) = %d, %v", v, e)
	}
	if v, e := CvfiOp(-3.9); v != -3 || e != ExcNone {
		t.Errorf("CvfiOp(-3.9) = %d, %v", v, e)
	}
	if _, e := CvfiOp(math.NaN()); e != ExcFPInvalid {
		t.Errorf("CvfiOp(NaN): %v", e)
	}
	if _, e := CvfiOp(1e300); e != ExcFPInvalid {
		t.Errorf("CvfiOp(1e300): %v", e)
	}
}

func TestCondHolds(t *testing.T) {
	type c struct {
		op   Op
		a, b int64
		want bool
	}
	for _, tc := range []c{
		{Beq, 1, 1, true}, {Beq, 1, 2, false},
		{Bne, 1, 2, true}, {Bne, 1, 1, false},
		{Blt, -1, 0, true}, {Blt, 0, 0, false},
		{Bge, 0, 0, true}, {Bge, -1, 0, false},
	} {
		if got := CondHolds(tc.op, tc.a, tc.b); got != tc.want {
			t.Errorf("CondHolds(%v,%d,%d) = %v", tc.op, tc.a, tc.b, got)
		}
	}
}

// Property: Slt agrees with Blt; Sub/Add are inverses; Xor is self-inverse.
func TestALUAlgebraQuick(t *testing.T) {
	f := func(a, b int64) bool {
		slt := IntALUOp(Slt, a, b) == 1
		if slt != CondHolds(Blt, a, b) {
			return false
		}
		if IntALUOp(Sub, IntALUOp(Add, a, b), b) != a {
			return false
		}
		return IntALUOp(Xor, IntALUOp(Xor, a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Div/Rem identity a = (a/b)*b + a%b for non-trapping cases.
func TestDivRemIdentityQuick(t *testing.T) {
	f := func(a, b int64) bool {
		q, e1 := IntDivOp(Div, a, b)
		r, e2 := IntDivOp(Rem, a, b)
		if e1 != ExcNone || e2 != ExcNone {
			return e1 == e2 // both trap together
		}
		if a == math.MinInt64 && b == -1 {
			return true // wrapped case
		}
		return q*b+r == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
