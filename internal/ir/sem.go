package ir

import "math"

// Value semantics shared by the reference interpreter and the cycle
// simulator. Keeping them in one place guarantees that every scheduling
// model computes identical architectural results.

// IntALUOp evaluates a non-trapping integer ALU opcode (Add..Slt, Mul).
// Shift counts are taken modulo 64.
func IntALUOp(op Op, a, b int64) int64 {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	case And:
		return a & b
	case Or:
		return a | b
	case Xor:
		return a ^ b
	case Shl:
		return a << (uint64(b) & 63)
	case Shr:
		return int64(uint64(a) >> (uint64(b) & 63))
	case Slt:
		if a < b {
			return 1
		}
		return 0
	default:
		panic("ir: IntALUOp on " + op.String())
	}
}

// IntDivOp evaluates Div/Rem. Division by zero raises ExcDivZero; the
// result value in that case is unspecified by the architecture and returned
// as zero. MinInt64/-1 wraps (no trap), matching two's-complement hardware.
func IntDivOp(op Op, a, b int64) (int64, ExcKind) {
	if b == 0 {
		return 0, ExcDivZero
	}
	if a == math.MinInt64 && b == -1 {
		if op == Div {
			return math.MinInt64, ExcNone
		}
		return 0, ExcNone
	}
	if op == Div {
		return a / b, ExcNone
	}
	return a % b, ExcNone
}

// FPOp evaluates a two-source floating-point arithmetic opcode. A NaN
// produced from non-NaN inputs or a division by zero raises ExcFPInvalid;
// an infinite result from finite inputs raises ExcFPOverflow.
func FPOp(op Op, a, b float64) (float64, ExcKind) {
	var r float64
	switch op {
	case Fadd:
		r = a + b
	case Fsub:
		r = a - b
	case Fmul:
		r = a * b
	case Fdiv:
		if b == 0 {
			return 0, ExcFPInvalid
		}
		r = a / b
	default:
		panic("ir: FPOp on " + op.String())
	}
	switch {
	case math.IsNaN(r) && !math.IsNaN(a) && !math.IsNaN(b):
		return r, ExcFPInvalid
	case math.IsInf(r, 0) && !math.IsInf(a, 0) && !math.IsInf(b, 0):
		return r, ExcFPOverflow
	}
	return r, ExcNone
}

// FPUnOp evaluates a one-source floating-point opcode (Fmov, Fneg, Fabs).
func FPUnOp(op Op, a float64) float64 {
	switch op {
	case Fmov:
		return a
	case Fneg:
		return -a
	case Fabs:
		return math.Abs(a)
	default:
		panic("ir: FPUnOp on " + op.String())
	}
}

// FPCmpOp evaluates an FP comparison (Feq, Flt, Fle) to its integer result.
// Comparisons involving NaN raise ExcFPInvalid and compare false.
func FPCmpOp(op Op, a, b float64) (int64, ExcKind) {
	if math.IsNaN(a) || math.IsNaN(b) {
		return 0, ExcFPInvalid
	}
	var c bool
	switch op {
	case Feq:
		c = a == b
	case Flt:
		c = a < b
	case Fle:
		c = a <= b
	default:
		panic("ir: FPCmpOp on " + op.String())
	}
	if c {
		return 1, ExcNone
	}
	return 0, ExcNone
}

// CvfiOp converts float to integer (truncating); out-of-range conversions
// raise ExcFPInvalid and produce zero.
func CvfiOp(a float64) (int64, ExcKind) {
	if math.IsNaN(a) || a >= math.MaxInt64 || a <= math.MinInt64 {
		return 0, ExcFPInvalid
	}
	return int64(a), ExcNone
}

// CondHolds evaluates a conditional-branch comparison.
func CondHolds(op Op, a, b int64) bool {
	switch op {
	case Beq:
		return a == b
	case Bne:
		return a != b
	case Blt:
		return a < b
	case Bge:
		return a >= b
	default:
		panic("ir: CondHolds on " + op.String())
	}
}
