package opt

import (
	"testing"

	"sentinel/internal/ir"
	"sentinel/internal/mem"
	"sentinel/internal/prog"
	"sentinel/internal/workload"
)

func run(t *testing.T, p *prog.Program, m *mem.Memory) *prog.Result {
	t.Helper()
	p.Layout()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run(p, m, prog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConstantFolding(t *testing.T) {
	p := prog.NewProgram()
	p.AddBlock("main",
		ir.LI(ir.R(1), 6),
		ir.LI(ir.R(2), 7),
		ir.ALU(ir.Mul, ir.R(3), ir.R(1), ir.R(2)), // foldable: 42
		ir.JSR("putint", ir.R(3)),
		ir.HALT(),
	)
	s := Optimize(p)
	if s.Folded == 0 {
		t.Errorf("no folding happened: %+v", s)
	}
	found := false
	for _, in := range p.Blocks[0].Instrs {
		if in.Op == ir.Li && in.Imm == 42 {
			found = true
		}
		if in.Op == ir.Mul {
			t.Errorf("mul survived constant folding: %v", in)
		}
	}
	if !found {
		t.Error("expected li 42")
	}
	res := run(t, p, mem.New())
	if res.Out[0] != 42 {
		t.Errorf("out = %v", res.Out)
	}
}

func TestCopyPropagation(t *testing.T) {
	p := prog.NewProgram()
	p.AddBlock("main",
		ir.LI(ir.R(1), 5),
		ir.MOV(ir.R(2), ir.R(1)),
		ir.ALUI(ir.Add, ir.R(3), ir.R(2), 1), // should read r1 / fold
		ir.JSR("putint", ir.R(3)),
		ir.HALT(),
	)
	s := Optimize(p)
	if s.Propagated == 0 && s.Folded == 0 {
		t.Errorf("nothing propagated: %+v", s)
	}
	res := run(t, p, mem.New())
	if res.Out[0] != 6 {
		t.Errorf("out = %v", res.Out)
	}
}

func TestStrengthReduction(t *testing.T) {
	p := prog.NewProgram()
	p.AddBlock("main",
		ir.LOAD(ir.Ld, ir.R(1), ir.R(9), 0), // unknown value (keeps r1 non-const)
		ir.ALUI(ir.Mul, ir.R(2), ir.R(1), 8),
		ir.ALUI(ir.Mul, ir.R(3), ir.R(1), 1),
		ir.ALUI(ir.Add, ir.R(4), ir.R(1), 0),
		ir.JSR("putint", ir.R(2)),
		ir.JSR("putint", ir.R(3)),
		ir.JSR("putint", ir.R(4)),
		ir.HALT(),
	)
	Optimize(p)
	b := p.Blocks[0]
	var ops []ir.Op
	for _, in := range b.Instrs {
		ops = append(ops, in.Op)
	}
	hasShl, hasMul := false, false
	for _, in := range b.Instrs {
		if in.Op == ir.Shl && in.Imm == 3 {
			hasShl = true
		}
		if in.Op == ir.Mul {
			hasMul = true
		}
	}
	if !hasShl || hasMul {
		t.Errorf("strength reduction failed: %v", ops)
	}
}

func TestDeadCodeElimination(t *testing.T) {
	p := prog.NewProgram()
	p.AddBlock("main",
		ir.LI(ir.R(1), 5),
		ir.LI(ir.R(2), 99),                   // dead
		ir.ALUI(ir.Add, ir.R(3), ir.R(1), 0), // becomes mov, then dead after prop
		ir.LOAD(ir.Ld, ir.R(4), ir.R(9), 0),  // dead BUT trapping: must stay
		ir.JSR("putint", ir.R(1)),
		ir.HALT(),
	)
	s := Optimize(p)
	if s.Eliminated == 0 {
		t.Errorf("nothing eliminated: %+v", s)
	}
	loads, li99 := 0, 0
	for _, in := range p.Blocks[0].Instrs {
		if in.Op == ir.Ld {
			loads++
		}
		if in.Op == ir.Li && in.Imm == 99 {
			li99++
		}
	}
	if loads != 1 {
		t.Error("dead TRAPPING load must not be removed (exception behaviour)")
	}
	if li99 != 0 {
		t.Error("dead li survived")
	}
}

func TestDivNeverFolded(t *testing.T) {
	p := prog.NewProgram()
	p.AddBlock("main",
		ir.LI(ir.R(1), 10),
		ir.LI(ir.R(2), 0),
		ir.ALU(ir.Div, ir.R(3), ir.R(1), ir.R(2)), // would trap: keep!
		ir.JSR("putint", ir.R(3)),
		ir.HALT(),
	)
	Optimize(p)
	found := false
	for _, in := range p.Blocks[0].Instrs {
		if in.Op == ir.Div {
			found = true
		}
	}
	if !found {
		t.Error("divide must never be folded (divide-by-zero is observable)")
	}
}

// TestOptimizePreservesKernelSemantics: the optimizer must not change any
// benchmark's architectural result.
func TestOptimizePreservesKernelSemantics(t *testing.T) {
	for _, b := range workload.All() {
		p, m := b.Build()
		p.Layout()
		ref, err := prog.Run(p, m.Clone(), prog.Options{})
		if err != nil {
			t.Fatal(err)
		}
		p2, m2 := b.Build()
		stats := Optimize(p2)
		p2.Layout()
		if err := p2.Validate(); err != nil {
			t.Fatalf("%s: optimized program invalid: %v", b.Name, err)
		}
		got, err := prog.Run(p2, m2, prog.Options{})
		if err != nil {
			t.Fatalf("%s: optimized run: %v", b.Name, err)
		}
		if got.MemSum != ref.MemSum {
			t.Errorf("%s: memory changed by optimization (%+v)", b.Name, stats)
		}
		for i := range ref.Out {
			if got.Out[i] != ref.Out[i] {
				t.Errorf("%s: out[%d] %d != %d", b.Name, i, got.Out[i], ref.Out[i])
			}
		}
	}
}

// TestOptimizeIdempotent: a second run finds nothing left to do.
func TestOptimizeIdempotent(t *testing.T) {
	p := prog.NewProgram()
	p.AddBlock("main",
		ir.LI(ir.R(1), 6),
		ir.LI(ir.R(2), 7),
		ir.ALU(ir.Mul, ir.R(3), ir.R(1), ir.R(2)),
		ir.MOV(ir.R(4), ir.R(3)),
		ir.JSR("putint", ir.R(4)),
		ir.HALT(),
	)
	Optimize(p)
	if s := Optimize(p); s != (Stats{}) {
		t.Errorf("second Optimize still found work: %+v", s)
	}
}
