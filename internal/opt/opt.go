// Package opt implements the classical local optimizations a compiler like
// IMPACT-I runs before scheduling: constant folding and propagation, copy
// propagation, algebraic simplification / strength reduction, and
// liveness-based dead-code elimination. The passes are semantics-preserving
// on the reference machine, including exception behaviour: potentially
// trapping instructions are never deleted or folded away, since removing
// one would change which exceptions the program raises.
//
// The optimizer is an optional pipeline stage (sentinelc -O): the paper's
// evaluation numbers in EXPERIMENTS.md are measured without it, since the
// workload kernels already model post-optimization code.
package opt

import (
	"sentinel/internal/dataflow"
	"sentinel/internal/ir"
	"sentinel/internal/prog"
)

// Stats counts what the optimizer did.
type Stats struct {
	Folded     int // instructions reduced to constants or simpler ops
	Propagated int // operands replaced by constants or copy sources
	Eliminated int // dead instructions removed
}

// Optimize runs the passes to a fixpoint (bounded) over p, in place, and
// returns pass statistics. The program must still validate afterwards.
func Optimize(p *prog.Program) Stats {
	var total Stats
	for round := 0; round < 10; round++ {
		var s Stats
		for _, b := range p.Blocks {
			s.add(localPass(b))
		}
		s.Eliminated += eliminateDead(p)
		total.add(s)
		if s == (Stats{}) {
			break
		}
	}
	return total
}

func (s *Stats) add(o Stats) {
	s.Folded += o.Folded
	s.Propagated += o.Propagated
	s.Eliminated += o.Eliminated
}

// localPass runs constant/copy propagation and folding within one block.
// Facts do not cross block boundaries (side entrances would invalidate
// them).
type fact struct {
	isConst bool
	val     int64
	isCopy  bool
	src     ir.Reg
}

func localPass(b *prog.Block) Stats {
	var s Stats
	facts := map[ir.Reg]fact{}
	kill := func(r ir.Reg) {
		delete(facts, r)
		// Any copy fact whose source is r dies with it.
		for d, f := range facts {
			if f.isCopy && f.src == r {
				delete(facts, d)
			}
		}
	}
	constOf := func(r ir.Reg) (int64, bool) {
		if r.IsZero() {
			return 0, true
		}
		f, ok := facts[r]
		if ok && f.isConst {
			return f.val, true
		}
		return 0, false
	}

	for _, in := range b.Instrs {
		// Operand rewriting: copy propagation first, then constant use.
		for _, slot := range []*ir.Reg{&in.Src1, &in.Src2} {
			if !slot.Valid() || slot.IsZero() {
				continue
			}
			if f, ok := facts[*slot]; ok && f.isCopy {
				*slot = f.src
				s.Propagated++
			}
		}
		// Fold a constant second source into the immediate form (not for
		// memory/control operands, whose Src2/Imm have fixed roles).
		if isALU3(in.Op) && in.Src2.Valid() {
			if v, ok := constOf(in.Src2); ok {
				in.Src2 = ir.NoReg
				in.Imm = v
				s.Propagated++
			}
		}

		// Folding and simplification of the instruction itself.
		switch {
		case isALU3(in.Op) && !in.Src2.Valid():
			if v1, ok := constOf(in.Src1); ok {
				// Both operands constant: fold to li.
				in.Op, in.Imm = ir.Li, ir.IntALUOp(in.Op, v1, in.Imm)
				in.Src1 = ir.NoReg
				s.Folded++
			} else {
				s.Folded += simplify(in)
			}
		case in.Op == ir.Mov:
			if v, ok := constOf(in.Src1); ok {
				in.Op, in.Imm, in.Src1 = ir.Li, v, ir.NoReg
				s.Folded++
			}
		}

		// Fact updates.
		if d, ok := in.Def(); ok {
			kill(d)
			switch {
			case in.Op == ir.Li:
				facts[d] = fact{isConst: true, val: in.Imm}
			case in.Op == ir.Mov && in.Src1.Valid() && in.Src1 != d:
				facts[d] = fact{isCopy: true, src: in.Src1}
			}
		}
	}
	return s
}

// isALU3 reports whether op is a non-trapping three-operand integer ALU
// opcode that IntALUOp evaluates. Div/Rem are excluded: folding them could
// erase a divide-by-zero exception.
func isALU3(op ir.Op) bool {
	switch op {
	case ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr, ir.Slt:
		return true
	}
	return false
}

// simplify applies algebraic identities and strength reduction to a
// register-immediate ALU instruction. Returns 1 if changed.
func simplify(in *ir.Instr) int {
	switch in.Op {
	case ir.Add, ir.Sub, ir.Or, ir.Xor, ir.Shl, ir.Shr:
		if in.Imm == 0 {
			// x op 0 == x for all of these.
			in.Op = ir.Mov
			return 1
		}
	case ir.Mul:
		switch {
		case in.Imm == 0:
			in.Op, in.Src1, in.Imm = ir.Li, ir.NoReg, 0
			return 1
		case in.Imm == 1:
			in.Op, in.Imm = ir.Mov, 0
			return 1
		case in.Imm > 1 && in.Imm&(in.Imm-1) == 0:
			// Multiply by a power of two: shift (3 cycles -> 1).
			k := int64(0)
			for v := in.Imm; v > 1; v >>= 1 {
				k++
			}
			in.Op, in.Imm = ir.Shl, k
			return 1
		}
	case ir.And:
		if in.Imm == 0 {
			in.Op, in.Src1, in.Imm = ir.Li, ir.NoReg, 0
			return 1
		}
	}
	return 0
}

// eliminateDead removes instructions whose results are never used, using
// global liveness. Only side-effect-free, non-trapping instructions are
// candidates: stores, control transfers, trapping instructions (their
// exception IS an effect) and sentinel-support opcodes are kept.
func eliminateDead(p *prog.Program) int {
	lv := dataflow.Compute(p)
	removed := 0
	for _, b := range p.Blocks {
		after := lv.LiveWithinBlock(b)
		var kept []*ir.Instr
		for i, in := range b.Instrs {
			d, hasDef := in.Def()
			dead := hasDef && !after[i].Has(d) &&
				!ir.Traps(in.Op) && !ir.IsControl(in.Op) &&
				in.Op != ir.ClearTag && in.Op != ir.Check && in.Op != ir.ConfirmSt
			if dead {
				removed++
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return removed
}
