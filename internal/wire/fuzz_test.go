package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWireDecode pins the decoder's defensive contract: arbitrary bytes —
// malformed, truncated, oversized, adversarial varints — always yield a
// structured error (io.EOF on a clean close, *ProtocolError otherwise),
// never a panic, a hang, or an allocation beyond the declared limits. A
// successfully decoded frame must also re-encode to bytes that decode to
// the same frame (the round-trip invariant the server and load client
// depend on).
func FuzzWireDecode(f *testing.F) {
	// Seeds: a well-formed single-element frame, a multi-element frame, a
	// keep-alive pair, an error frame, and classic near-misses.
	valid := AppendRequest(nil, &ReqFrame{TimeoutMS: 250, Elems: []ReqElem{
		{Tag: 0, Op: OpSimulate, Payload: []byte(`{"workload":"cmp","model":"sentinel+stores","width":8}`)},
	}})
	multi := AppendRequest(nil, &ReqFrame{Elems: []ReqElem{
		{Tag: 1, Op: OpSimulate, Payload: []byte(`{"workload":"wc"}`)},
		{Tag: 2, Op: OpSchedule, Payload: []byte(`{"workload":"grep","width":2}`)},
		{Tag: 3, Op: OpSimulate, Payload: nil},
	}})
	f.Add(valid)
	f.Add(multi)
	f.Add(append(append([]byte{}, valid...), multi...))
	f.Add(AppendError(nil, ErrDraining, "server is draining"))
	f.Add(valid[:len(valid)-7])                  // truncated payload
	f.Add([]byte("POST /v1/batch HTTP/1.1\r\n")) // HTTP on the wire port
	f.Add([]byte{0xF7, 'S', 'B', 'W', Version, KindRequest, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	f.Add([]byte{0xF7, 'S', 'B', 'W', Version, KindRequest, 0, 0xff, 0xff, 0xff, 0x07})

	lim := Limits{MaxElems: 64, MaxPayload: 1 << 16}
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for {
			fr, err := ReadRequest(br, lim)
			if err != nil {
				if errors.Is(err, io.EOF) {
					return // clean end of stream
				}
				var pe *ProtocolError
				if !errors.As(err, &pe) {
					t.Fatalf("ReadRequest returned a non-protocol error: %v", err)
				}
				return // a protocol error poisons the connection; stop like the server does
			}
			if len(fr.Elems) == 0 || len(fr.Elems) > lim.MaxElems {
				t.Fatalf("decoded %d elements outside (0, %d]", len(fr.Elems), lim.MaxElems)
			}
			for i, e := range fr.Elems {
				if len(e.Payload) > lim.MaxPayload {
					t.Fatalf("element %d payload %d exceeds limit", i, len(e.Payload))
				}
				if e.Op != OpSimulate && e.Op != OpSchedule {
					t.Fatalf("element %d decoded with invalid op %d", i, e.Op)
				}
			}
			// Round-trip: re-encoding the decoded frame must decode equal.
			re := AppendRequest(nil, fr)
			fr2, err := ReadRequest(bufio.NewReader(bytes.NewReader(re)), lim)
			if err != nil {
				t.Fatalf("re-encoded frame failed to decode: %v", err)
			}
			if fr2.TimeoutMS != fr.TimeoutMS || len(fr2.Elems) != len(fr.Elems) {
				t.Fatalf("round trip mismatch: %+v vs %+v", fr2, fr)
			}
			for i := range fr.Elems {
				if fr2.Elems[i].Tag != fr.Elems[i].Tag || fr2.Elems[i].Op != fr.Elems[i].Op ||
					!bytes.Equal(fr2.Elems[i].Payload, fr.Elems[i].Payload) {
					t.Fatalf("round trip element %d mismatch", i)
				}
			}
		}
	})
}

// FuzzWireDecodeResponse drives the client-side decoders with the same
// contract: arbitrary bytes never panic or hang.
func FuzzWireDecodeResponse(f *testing.F) {
	resp := AppendResponseHeader(nil, 1)
	resp = AppendElemHeader(resp, 3, 200, 2)
	resp = append(resp, '{', '}')
	f.Add(resp)
	f.Add(AppendError(nil, ErrOverload, "admission queue full; retry later"))

	lim := Limits{MaxElems: 64, MaxPayload: 1 << 16}
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		n, err := ReadResponseHeader(br, lim)
		if err != nil {
			var pe *ProtocolError
			if !errors.Is(err, io.EOF) && !errors.As(err, &pe) {
				t.Fatalf("ReadResponseHeader returned a non-protocol error: %v", err)
			}
			return
		}
		for i := 0; i < n; i++ {
			_, _, plen, err := ReadElemHeader(br, lim)
			if err != nil {
				var pe *ProtocolError
				if !errors.As(err, &pe) {
					t.Fatalf("ReadElemHeader returned a non-protocol error: %v", err)
				}
				return
			}
			if _, err := br.Discard(plen); err != nil {
				return // truncated payload: transport-level, connection drops
			}
		}
	})
}
