// Package wire is the length-prefixed binary batch protocol: the framing
// that lets one TCP round trip carry many schedule/simulate requests and
// stream their results back as they complete. It is the cold-path analogue
// of the response-byte cache — where the cache removes marshal work from
// warm repeats, this framing removes per-request HTTP parsing, header
// traffic and admission round-trips from cold misses, amortizing them over
// a whole frame.
//
// Every frame starts with a fixed header:
//
//	magic   4 bytes  0xF7 'S' 'B' 'W'   (0xF7 never begins an HTTP method,
//	                                     so one listener can sniff the first
//	                                     byte and split protocols)
//	version 1 byte   0x01
//	kind    1 byte   1 request, 2 response, 3 error
//
// All integers beyond the header are unsigned LEB128 varints. Frame bodies:
//
//	request:  timeout_ms | count | count × (tag, op byte, len, payload)
//	response: count | count × (tag, status, len, payload), completion order
//	error:    code | len | message
//
// Element payloads are exactly the JSON bodies of the single-request HTTP
// endpoints (request side) and exactly their response envelopes (response
// side) — the protocol only frames bytes, it never re-encodes them, which
// is what keeps batched responses byte-identical to unbatched ones.
//
// Decoding is defensive by construction: every length is bounded before any
// allocation, varints are capped at 10 bytes and 2^31-1, and a truncated or
// malformed frame yields a *ProtocolError — never a panic, an unbounded
// read, or an unbounded allocation (FuzzWireDecode pins this).
package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// Magic is the 4-byte frame preamble. The leading byte is deliberately
// outside ASCII so it can never collide with an HTTP method line.
var Magic = [4]byte{0xF7, 'S', 'B', 'W'}

// MagicByte0 is the first magic byte — the single byte a protocol-sniffing
// listener needs to peek to route a fresh connection.
const MagicByte0 = 0xF7

// Version is the protocol version this package speaks.
const Version = 1

// Frame kinds.
const (
	KindRequest  = 1
	KindResponse = 2
	KindError    = 3
)

// Element opcodes: which single-request endpoint the payload addresses.
const (
	OpSimulate = 1
	OpSchedule = 2
)

// Error-frame codes. They mirror the HTTP error vocabulary so a wire client
// and an HTTP client can share retry logic.
const (
	ErrMalformed = 1 // unparseable or over-limit frame; the connection closes
	ErrOverload  = 2 // admission queue full; retry later
	ErrDraining  = 3 // server shutting down; the connection closes
	ErrTimeout   = 4 // batch deadline expired before the frame was admitted
	ErrInternal  = 5
)

// Varint ceiling: no length, tag, status or count in a valid frame exceeds
// this, so the decoder can reject early without looking at limits.
const maxVarint = 1<<31 - 1

// ProtocolError is a structured framing error: malformed input on the
// decode side, or a received error frame on the client side. It is the only
// error kind (besides transport errors) the decoder returns for bad bytes.
type ProtocolError struct {
	Code int
	Msg  string
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("wire: protocol error %d: %s", e.Code, e.Msg)
}

func malformedf(format string, args ...any) *ProtocolError {
	return &ProtocolError{Code: ErrMalformed, Msg: fmt.Sprintf(format, args...)}
}

// Limits bounds what a decoder will accept. The zero value selects the
// defaults (1024 elements, 4 MiB payloads — matching the HTTP endpoints'
// body limit).
type Limits struct {
	MaxElems   int
	MaxPayload int
}

func (l Limits) withDefaults() Limits {
	if l.MaxElems <= 0 {
		l.MaxElems = 1024
	}
	if l.MaxPayload <= 0 {
		l.MaxPayload = 4 << 20
	}
	return l
}

// ReqElem is one element of a request frame: a tag the client chooses (the
// response echoes it, so results can stream in completion order), the
// opcode, and the single-endpoint JSON request body.
type ReqElem struct {
	Payload []byte
	Tag     uint32
	Op      byte
}

// ReqFrame is one decoded batch request.
type ReqFrame struct {
	Elems     []ReqElem
	TimeoutMS uint32
}

// readUvarint reads a bounded LEB128 varint: at most 10 bytes, value at
// most maxVarint. Returns io.EOF only when the stream ends before the first
// byte (so callers can distinguish a clean close from a truncated frame).
func readUvarint(br *bufio.Reader) (uint64, error) {
	var v uint64
	for i := 0; i < 10; i++ {
		b, err := br.ReadByte()
		if err != nil {
			if i == 0 {
				return 0, err
			}
			return 0, truncated(err)
		}
		v |= uint64(b&0x7f) << (7 * i)
		if b < 0x80 {
			if v > maxVarint {
				return 0, malformedf("varint %d exceeds limit", v)
			}
			return v, nil
		}
	}
	return 0, malformedf("varint longer than 10 bytes")
}

// truncated maps an unexpected mid-frame EOF onto a ProtocolError.
func truncated(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return malformedf("truncated frame")
	}
	return err
}

// readHeader consumes and validates magic+version and returns the kind.
// A clean EOF before the first byte surfaces as io.EOF.
func readHeader(br *bufio.Reader) (kind byte, err error) {
	var hdr [6]byte
	if _, err := io.ReadFull(br, hdr[:1]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, io.EOF
		}
		return 0, err
	}
	if _, err := io.ReadFull(br, hdr[1:]); err != nil {
		return 0, truncated(err)
	}
	if [4]byte(hdr[:4]) != Magic {
		return 0, malformedf("bad magic %x", hdr[:4])
	}
	if hdr[4] != Version {
		return 0, malformedf("unsupported version %d (want %d)", hdr[4], Version)
	}
	return hdr[5], nil
}

// ReadRequest decodes one request frame. io.EOF (clean connection close
// between frames) is returned verbatim; any malformed, truncated or
// over-limit input yields a *ProtocolError.
func ReadRequest(br *bufio.Reader, lim Limits) (*ReqFrame, error) {
	lim = lim.withDefaults()
	kind, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if kind != KindRequest {
		return nil, malformedf("unexpected frame kind %d (want request)", kind)
	}
	timeoutMS, err := readUvarint(br)
	if err != nil {
		return nil, truncated(err)
	}
	count, err := readUvarint(br)
	if err != nil {
		return nil, truncated(err)
	}
	if count == 0 {
		return nil, malformedf("empty batch")
	}
	if count > uint64(lim.MaxElems) {
		return nil, malformedf("batch of %d elements exceeds limit %d", count, lim.MaxElems)
	}
	fr := &ReqFrame{TimeoutMS: uint32(timeoutMS), Elems: make([]ReqElem, count)}
	for i := range fr.Elems {
		tag, err := readUvarint(br)
		if err != nil {
			return nil, truncated(err)
		}
		op, err := br.ReadByte()
		if err != nil {
			return nil, truncated(err)
		}
		if op != OpSimulate && op != OpSchedule {
			return nil, malformedf("element %d: unknown opcode %d", i, op)
		}
		plen, err := readUvarint(br)
		if err != nil {
			return nil, truncated(err)
		}
		if plen > uint64(lim.MaxPayload) {
			return nil, malformedf("element %d: payload of %d bytes exceeds limit %d", i, plen, lim.MaxPayload)
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, truncated(err)
		}
		fr.Elems[i] = ReqElem{Tag: uint32(tag), Op: op, Payload: payload}
	}
	return fr, nil
}

// appendUvarint appends v as LEB128.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func appendHeader(dst []byte, kind byte) []byte {
	dst = append(dst, Magic[:]...)
	return append(dst, Version, kind)
}

// AppendRequest serializes a request frame onto dst — the client-side
// encoder, shaped for preserialization (a load generator renders each frame
// once and writes the same bytes forever).
func AppendRequest(dst []byte, fr *ReqFrame) []byte {
	dst = appendHeader(dst, KindRequest)
	dst = appendUvarint(dst, uint64(fr.TimeoutMS))
	dst = appendUvarint(dst, uint64(len(fr.Elems)))
	for _, e := range fr.Elems {
		dst = appendUvarint(dst, uint64(e.Tag))
		dst = append(dst, e.Op)
		dst = appendUvarint(dst, uint64(len(e.Payload)))
		dst = append(dst, e.Payload...)
	}
	return dst
}

// AppendResponseHeader starts a response frame of count elements.
func AppendResponseHeader(dst []byte, count int) []byte {
	dst = appendHeader(dst, KindResponse)
	return appendUvarint(dst, uint64(count))
}

// AppendElemHeader appends one response element's header; the caller writes
// plen payload bytes immediately after.
func AppendElemHeader(dst []byte, tag uint32, status int, plen int) []byte {
	dst = appendUvarint(dst, uint64(tag))
	dst = appendUvarint(dst, uint64(status))
	return appendUvarint(dst, uint64(plen))
}

// AppendError serializes an error frame.
func AppendError(dst []byte, code int, msg string) []byte {
	dst = appendHeader(dst, KindError)
	dst = appendUvarint(dst, uint64(code))
	dst = appendUvarint(dst, uint64(len(msg)))
	return append(dst, msg...)
}

// ReadResponseHeader decodes a response frame's header and returns its
// element count. A received error frame is surfaced as *ProtocolError with
// the sender's code and message.
func ReadResponseHeader(br *bufio.Reader, lim Limits) (count int, err error) {
	lim = lim.withDefaults()
	kind, err := readHeader(br)
	if err != nil {
		return 0, err
	}
	switch kind {
	case KindError:
		code, err := readUvarint(br)
		if err != nil {
			return 0, truncated(err)
		}
		mlen, err := readUvarint(br)
		if err != nil {
			return 0, truncated(err)
		}
		if mlen > 1<<16 {
			return 0, malformedf("error message of %d bytes exceeds limit", mlen)
		}
		msg := make([]byte, mlen)
		if _, err := io.ReadFull(br, msg); err != nil {
			return 0, truncated(err)
		}
		return 0, &ProtocolError{Code: int(code), Msg: string(msg)}
	case KindResponse:
		n, err := readUvarint(br)
		if err != nil {
			return 0, truncated(err)
		}
		if n == 0 || n > uint64(lim.MaxElems) {
			return 0, malformedf("response of %d elements exceeds limit %d", n, lim.MaxElems)
		}
		return int(n), nil
	default:
		return 0, malformedf("unexpected frame kind %d (want response)", kind)
	}
}

// ReadElemHeader decodes one response element's header. The caller must
// consume exactly plen payload bytes from br before the next call — with
// io.ReadFull to keep them, or br.Discard to drop them (the load client's
// path: latency accounting without body retention).
func ReadElemHeader(br *bufio.Reader, lim Limits) (tag uint32, status int, plen int, err error) {
	lim = lim.withDefaults()
	t, err := readUvarint(br)
	if err != nil {
		return 0, 0, 0, truncated(err)
	}
	st, err := readUvarint(br)
	if err != nil {
		return 0, 0, 0, truncated(err)
	}
	n, err := readUvarint(br)
	if err != nil {
		return 0, 0, 0, truncated(err)
	}
	if n > uint64(lim.MaxPayload) {
		return 0, 0, 0, malformedf("element payload of %d bytes exceeds limit %d", n, lim.MaxPayload)
	}
	return uint32(t), int(st), int(n), nil
}
