package wire

// Protocol sniffing: one listener, two protocols. The wire magic's leading
// 0xF7 can never begin an HTTP method line, so peeking a single byte of a
// fresh connection decides which protocol it speaks. Both sentineld (the
// backend) and sentinelfront (the fleet router) deploy this — the router
// must terminate exactly what a backend terminates, or a wire client could
// not point at either interchangeably.

import (
	"bufio"
	"net"
	"sync"
	"time"
)

// SniffBufSize sizes the per-connection read buffer handed to the wire
// handler: large enough that a typical 64-element request frame arrives in
// one read.
const SniffBufSize = 32 << 10

// sniffTimeout bounds how long a fresh connection may sit silent before the
// sniffer gives up on it — a slot-exhaustion guard, not a request deadline.
const sniffTimeout = 30 * time.Second

// SplitListener splits l between the two protocols: connections whose
// first byte is the wire magic are handed to serveWire on their own
// goroutines (the handler owns the connection and must close it);
// everything else (HTTP can only start with an ASCII method letter) is
// delivered through the returned listener, which the caller hands to its
// http.Server. Closing the returned listener closes l.
func SplitListener(l net.Listener, serveWire func(br *bufio.Reader, conn net.Conn)) net.Listener {
	sl := &sniffListener{inner: l, serveWire: serveWire,
		conns: make(chan net.Conn), done: make(chan struct{})}
	go sl.accept()
	return sl
}

// sniffListener adapts the sniffing accept loop to the net.Listener
// contract the HTTP server expects.
type sniffListener struct {
	inner     net.Listener
	serveWire func(br *bufio.Reader, conn net.Conn)
	conns     chan net.Conn
	done      chan struct{}
	err       error // Accept error from inner; written before done closes
	once      sync.Once
}

func (l *sniffListener) accept() {
	for {
		conn, err := l.inner.Accept()
		if err != nil {
			l.err = err
			l.once.Do(func() { close(l.done) })
			return
		}
		go func() {
			// The peek is bounded so an idle connection cannot pin its
			// goroutine forever; the deadline is lifted before serving.
			br := bufio.NewReaderSize(conn, SniffBufSize)
			conn.SetReadDeadline(time.Now().Add(sniffTimeout)) //nolint:errcheck
			first, err := br.Peek(1)
			if err != nil {
				conn.Close()
				return
			}
			conn.SetReadDeadline(time.Time{}) //nolint:errcheck
			if first[0] == MagicByte0 {
				l.serveWire(br, conn)
				return
			}
			select {
			case l.conns <- &sniffedConn{Conn: conn, br: br}:
			case <-l.done:
				conn.Close()
			}
		}()
	}
}

func (l *sniffListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		if l.err != nil {
			return nil, l.err
		}
		return nil, net.ErrClosed
	}
}

func (l *sniffListener) Close() error {
	err := l.inner.Close()
	l.once.Do(func() { close(l.done) })
	return err
}

func (l *sniffListener) Addr() net.Addr { return l.inner.Addr() }

// sniffedConn replays the peeked byte(s): reads drain the sniffer's buffer
// before touching the socket.
type sniffedConn struct {
	net.Conn
	br *bufio.Reader
}

func (c *sniffedConn) Read(p []byte) (int, error) { return c.br.Read(p) }
