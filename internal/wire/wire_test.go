package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func reader(b []byte) *bufio.Reader { return bufio.NewReader(bytes.NewReader(b)) }

func TestRequestRoundTrip(t *testing.T) {
	fr := &ReqFrame{
		TimeoutMS: 1500,
		Elems: []ReqElem{
			{Tag: 0, Op: OpSimulate, Payload: []byte(`{"workload":"cmp"}`)},
			{Tag: 7, Op: OpSchedule, Payload: []byte(`{"workload":"wc","width":2}`)},
			{Tag: 300, Op: OpSimulate, Payload: nil},
		},
	}
	data := AppendRequest(nil, fr)
	got, err := ReadRequest(reader(data), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if got.TimeoutMS != fr.TimeoutMS {
		t.Errorf("timeout = %d, want %d", got.TimeoutMS, fr.TimeoutMS)
	}
	if len(got.Elems) != len(fr.Elems) {
		t.Fatalf("decoded %d elements, want %d", len(got.Elems), len(fr.Elems))
	}
	for i, e := range got.Elems {
		w := fr.Elems[i]
		if e.Tag != w.Tag || e.Op != w.Op || !bytes.Equal(e.Payload, w.Payload) {
			t.Errorf("elem %d = %+v, want %+v", i, e, w)
		}
	}
}

func TestRequestKeepAliveFrames(t *testing.T) {
	fr := &ReqFrame{Elems: []ReqElem{{Tag: 1, Op: OpSimulate, Payload: []byte("x")}}}
	data := AppendRequest(AppendRequest(nil, fr), fr)
	br := reader(data)
	for i := 0; i < 2; i++ {
		if _, err := ReadRequest(br, Limits{}); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if _, err := ReadRequest(br, Limits{}); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	body := []byte(`{"cycles":42}`)
	data := AppendResponseHeader(nil, 2)
	data = AppendElemHeader(data, 5, 200, len(body))
	data = append(data, body...)
	data = AppendElemHeader(data, 9, 422, 0)

	br := reader(data)
	n, err := ReadResponseHeader(br, Limits{})
	if err != nil || n != 2 {
		t.Fatalf("header = (%d, %v), want (2, nil)", n, err)
	}
	tag, status, plen, err := ReadElemHeader(br, Limits{})
	if err != nil || tag != 5 || status != 200 || plen != len(body) {
		t.Fatalf("elem 0 = (%d,%d,%d,%v)", tag, status, plen, err)
	}
	got := make([]byte, plen)
	if _, err := io.ReadFull(br, got); err != nil || !bytes.Equal(got, body) {
		t.Fatalf("payload = %q (%v), want %q", got, err, body)
	}
	tag, status, plen, err = ReadElemHeader(br, Limits{})
	if err != nil || tag != 9 || status != 422 || plen != 0 {
		t.Fatalf("elem 1 = (%d,%d,%d,%v)", tag, status, plen, err)
	}
}

func TestErrorFrameRoundTrip(t *testing.T) {
	data := AppendError(nil, ErrDraining, "server is draining")
	_, err := ReadResponseHeader(reader(data), Limits{})
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ProtocolError", err)
	}
	if pe.Code != ErrDraining || pe.Msg != "server is draining" {
		t.Errorf("got %+v", pe)
	}
}

func TestMalformedFrames(t *testing.T) {
	valid := AppendRequest(nil, &ReqFrame{Elems: []ReqElem{
		{Tag: 1, Op: OpSimulate, Payload: []byte(`{"workload":"cmp"}`)}}})
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"bad magic", []byte("GET / HTTP/1.1\r\n"), "bad magic"},
		{"bad version", append(append([]byte{}, Magic[:]...), 99, KindRequest), "unsupported version"},
		{"response kind to server", appendHeader(nil, KindResponse), "unexpected frame kind"},
		{"empty batch", appendUvarint(appendUvarint(appendHeader(nil, KindRequest), 0), 0), "empty batch"},
		{"truncated mid-header", valid[:3], "truncated"},
		{"truncated mid-element", valid[:len(valid)-4], "truncated"},
		{"bad opcode", func() []byte {
			// Layout: header(6) timeout(1) count(1) tag(1), then the op byte.
			d := append([]byte{}, valid...)
			d[9] = 77
			return d
		}(), "unknown opcode"},
		{"oversized count", appendUvarint(appendUvarint(appendHeader(nil, KindRequest), 0), 1<<20), "exceeds limit"},
		{"oversized varint", append(appendHeader(nil, KindRequest), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff), "varint"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadRequest(reader(c.data), Limits{MaxElems: 64, MaxPayload: 1 << 16})
			var pe *ProtocolError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *ProtocolError", err)
			}
			if c.want != "" && !strings.Contains(pe.Msg, c.want) {
				t.Errorf("message %q does not contain %q", pe.Msg, c.want)
			}
		})
	}
}

func TestPayloadLimitRejectedBeforeAllocation(t *testing.T) {
	// A frame claiming a huge payload it never sends must be refused by the
	// limit check, not by an allocation attempt.
	d := appendUvarint(appendUvarint(appendHeader(nil, KindRequest), 0), 1) // timeout, count
	d = appendUvarint(d, 1)                                                // tag
	d = append(d, OpSimulate)
	d = appendUvarint(d, maxVarint) // declared payload length, no bytes follow
	_, err := ReadRequest(reader(d), Limits{MaxPayload: 1 << 16})
	var pe *ProtocolError
	if !errors.As(err, &pe) || !strings.Contains(pe.Msg, "exceeds limit") {
		t.Fatalf("err = %v, want payload-limit ProtocolError", err)
	}
}

func TestCleanEOFBetweenFrames(t *testing.T) {
	if _, err := ReadRequest(reader(nil), Limits{}); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
	if _, err := ReadResponseHeader(reader(nil), Limits{}); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
}
