package server

// The response-byte cache's contract: it can only ever return what the
// uncached path would have written, it stays under its configured bound, it
// never outlives the Runner artifacts its bytes were rendered from, and it
// survives concurrent hammering of one key.

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"sentinel/internal/workload"
)

func postRaw(t testing.TB, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader([]byte(body)))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestRespCacheByteIdentity sweeps every workload × model: the first
// (miss) response, the repeat (hit) response, and the response of a server
// with the cache disabled must be byte-for-byte identical, for both
// /v1/simulate and /v1/schedule.
func TestRespCacheByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep")
	}
	cached := New(Config{Workers: 2})
	plain := New(Config{Workers: 2, RespCacheEntries: -1}) // cache disabled
	if plain.resp != nil {
		t.Fatal("RespCacheEntries=-1 did not disable the response cache")
	}

	all := workload.All()
	if len(all) != 17 {
		t.Fatalf("workload.All() = %d benchmarks, want the paper's 17", len(all))
	}
	for _, wl := range all {
		for _, model := range []string{"restricted", "sentinel+stores"} {
			for _, path := range []string{"/v1/simulate", "/v1/schedule"} {
				body := fmt.Sprintf(`{"workload":%q,"model":%q,"width":8}`, wl.Name, model)
				miss := postRaw(t, cached.Handler(), path, body)
				hit := postRaw(t, cached.Handler(), path, body)
				ref := postRaw(t, plain.Handler(), path, body)
				for name, rec := range map[string]*httptest.ResponseRecorder{
					"miss": miss, "hit": hit, "uncached": ref,
				} {
					if rec.Code != http.StatusOK {
						t.Fatalf("%s %s %s/%s = %d: %s", name, path, wl.Name, model, rec.Code, rec.Body.String())
					}
				}
				if !bytes.Equal(miss.Body.Bytes(), hit.Body.Bytes()) {
					t.Errorf("%s %s/%s: cache hit diverges from its own miss", path, wl.Name, model)
				}
				if !bytes.Equal(miss.Body.Bytes(), ref.Body.Bytes()) {
					t.Errorf("%s %s/%s: cached server diverges from cache-disabled server", path, wl.Name, model)
				}
				if got, want := hit.Header().Get("Content-Type"), ref.Header().Get("Content-Type"); got != want {
					t.Errorf("%s %s/%s: content type %q != uncached %q", path, wl.Name, model, got, want)
				}
			}
		}
	}
	if cached.resp.hits.Load() == 0 {
		t.Error("sweep produced no response-cache hits; repeats are not being served from bytes")
	}
}

// TestRespCacheLRUBound storms the cache with random keys from many
// goroutines and checks the configured bound holds, for both the sharded
// (entries >= 16) and single-shard (entries < 16) layouts.
func TestRespCacheLRUBound(t *testing.T) {
	for _, entries := range []int{5, 128} {
		t.Run(fmt.Sprintf("entries=%d", entries), func(t *testing.T) {
			c := NewRespCache(entries)
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g)))
					var k respKey
					for i := 0; i < 2000; i++ {
						rng.Read(k[:]) //nolint:errcheck
						if rng.Intn(3) == 0 {
							c.Get(k) //nolint:errcheck // racing misses are the point
						}
						c.Put(k, []byte("body"), "text/plain")
					}
				}(g)
			}
			wg.Wait()
			if got := c.Len(); got > entries {
				t.Fatalf("cache holds %d entries, configured bound %d", got, entries)
			}
			if c.evicts.Load() == 0 {
				t.Fatal("storm of 16000 keys caused no evictions; the bound is not being enforced")
			}
			// After the dust settles the LRU still serves what it stores.
			var k respKey
			k[0] = 0xFF
			c.Put(k, []byte("fresh"), "text/plain")
			if body, _, ok := c.Get(k); !ok || string(body) != "fresh" {
				t.Fatalf("get after storm = %q, %v; want \"fresh\", true", body, ok)
			}
		})
	}
}

// TestRespCacheResetWithRunner: Runner.Reset must drop the response bytes
// rendered from the artifacts it just dropped, and the rebuilt response
// must match the original bytes.
func TestRespCacheResetWithRunner(t *testing.T) {
	s := New(Config{Workers: 2})
	const body = `{"workload":"cmp","model":"sentinel","width":8}`
	first := postRaw(t, s.Handler(), "/v1/simulate", body)
	if first.Code != http.StatusOK {
		t.Fatalf("first = %d: %s", first.Code, first.Body.String())
	}
	// One success registers two entries: the canonical key and the raw
	// request-bytes key the v1 wrapper fingerprinted.
	if got := s.resp.Len(); got != 2 {
		t.Fatalf("respcache len = %d after one success, want 2 (canonical + raw)", got)
	}

	missesBefore := s.resp.misses.Load()
	s.Runner().Reset()
	if got := s.resp.Len(); got != 0 {
		t.Fatalf("respcache len = %d after Runner.Reset, want 0 (stale bytes survived)", got)
	}

	again := postRaw(t, s.Handler(), "/v1/simulate", body)
	if again.Code != http.StatusOK {
		t.Fatalf("after reset = %d: %s", again.Code, again.Body.String())
	}
	if got := s.resp.misses.Load(); got <= missesBefore {
		t.Fatalf("misses = %d after reset, want > %d (request must recompute, not hit)", got, missesBefore)
	}
	if !bytes.Equal(first.Body.Bytes(), again.Body.Bytes()) {
		t.Error("response after Runner.Reset diverges from the original bytes")
	}
}

// TestRespCacheOneKeyRace hammers a single request from 32 goroutines
// through the full handler: every response must be 200 with identical
// bytes, whichever goroutine filled the cache. Meaningful under -race.
func TestRespCacheOneKeyRace(t *testing.T) {
	s := New(Config{Workers: 2, MaxInFlight: 32, MaxQueue: 64})
	const body = `{"workload":"wc","model":"sentinel+stores","width":8}`
	want := postRaw(t, s.Handler(), "/v1/simulate", body)
	if want.Code != http.StatusOK {
		t.Fatalf("seed request = %d: %s", want.Code, want.Body.String())
	}

	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				rec := postRaw(t, s.Handler(), "/v1/simulate", body)
				if rec.Code != http.StatusOK {
					t.Errorf("status %d: %s", rec.Code, rec.Body.String())
					return
				}
				if !bytes.Equal(rec.Body.Bytes(), want.Body.Bytes()) {
					t.Error("concurrent response diverges from the seed response")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestRespCacheBypasses pins the two documented escape hatches: Full runs
// and fault-injection runs never populate or hit the response cache.
func TestRespCacheBypasses(t *testing.T) {
	s := New(Config{Workers: 2})
	for _, body := range []string{
		`{"workload":"cmp","model":"sentinel","width":8,"full":true}`,
		`{"workload":"cmp","model":"sentinel","width":8,"fault_segment":"a"}`,
	} {
		before := s.resp.Len()
		rec := postRaw(t, s.Handler(), "/v1/simulate", body)
		if rec.Code != http.StatusOK && rec.Code != http.StatusUnprocessableEntity {
			t.Fatalf("%s = %d: %s", body, rec.Code, rec.Body.String())
		}
		if got := s.resp.Len(); got != before {
			t.Errorf("%s changed respcache len %d -> %d; escape hatch leaked into the cache", body, before, got)
		}
	}
}
