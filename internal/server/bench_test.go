package server

// Serving-path benchmarks: the numbers behind BENCH_serve.json. Each
// endpoint is measured warm (the response-byte cache hit path — the steady
// state of a long-lived sentineld) both in-process against the handler and
// over a real TCP connection with keep-alive, so transport overhead is
// visible separately from handler overhead.

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sentinel/internal/obs"
)

// benchWriter is the minimal ResponseWriter: preallocated header map and a
// discarding body, so in-process benchmarks measure the serving path rather
// than the recorder fixture. It remembers an explicit non-200 status so the
// loop can fail instead of timing error responses.
type benchWriter struct {
	h    http.Header
	code int
}

func newBenchWriter() *benchWriter                 { return &benchWriter{h: make(http.Header, 4)} }
func (w *benchWriter) Header() http.Header         { return w.h }
func (w *benchWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *benchWriter) WriteHeader(code int)        { w.code = code }

// reqBody is a reusable request body: the serving fast path replaces r.Body
// with its own pooled scratch, so a benchmark reusing one request object
// must reattach a body every iteration — this one resets without allocating.
type reqBody struct{ bytes.Reader }

func (b *reqBody) Close() error { return nil }

// warmOnce issues one request through the handler and fails the benchmark
// unless it succeeded — every warm benchmark measures cache hits, never a
// first miss.
func warmOnce(b *testing.B, h http.Handler, method, target string, body []byte) {
	b.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("warm %s %s = %d: %s", method, target, rec.Code, rec.Body.String())
	}
}

// benchInproc drives the handler directly with a reused request object and
// rewound body reader — the pure handler-path cost.
func benchInproc(b *testing.B, s *Server, method, target string, body []byte) {
	h := s.Handler()
	warmOnce(b, h, method, target, body)
	req := httptest.NewRequest(method, target, nil)
	req.Header.Set("Content-Type", "application/json")
	rb := &reqBody{}
	w := newBenchWriter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if body != nil {
			rb.Reader.Reset(body)
			req.Body = rb
			req.ContentLength = int64(len(body))
		}
		h.ServeHTTP(w, req)
		if w.code != 0 && w.code != http.StatusOK {
			b.Fatalf("iteration %d: status %d", i, w.code)
		}
	}
}

// benchTCP drives the same request over a real listener with keep-alive —
// handler path plus HTTP transport, what sentinelload actually sees.
func benchTCP(b *testing.B, s *Server, method, path string, body []byte) {
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	warmOnce(b, s.Handler(), method, path, body)
	var rd *bytes.Reader
	var bodyRC io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
		bodyRC = rd
	}
	req, err := http.NewRequest(method, ts.URL+path, bodyRC)
	if err != nil {
		b.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rd != nil {
			rd.Reset(body)
		}
		resp, err := client.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

var (
	benchSimBody   = []byte(`{"workload":"cmp","model":"sentinel+stores","width":8}`)
	benchSchedBody = []byte(`{"workload":"cmp","model":"sentinel+stores","width":8}`)
)

func BenchmarkServeSimulate(b *testing.B) {
	s := New(Config{Workers: 1})
	b.Run("inproc/warm", func(b *testing.B) {
		benchInproc(b, s, http.MethodPost, "/v1/simulate", benchSimBody)
	})
	b.Run("tcp/warm", func(b *testing.B) {
		benchTCP(b, s, http.MethodPost, "/v1/simulate", benchSimBody)
	})
	// The observability-overhead rows: same warm hit with the flight recorder
	// armed but effectively never sampling (the steady-state production
	// setting), and tail-sampling 1 in 16 (the recommended diagnostic rate).
	b.Run("inproc/warm-recorder", func(b *testing.B) {
		sr := New(Config{Workers: 1, Recorder: obs.NewRecorder(obs.RecorderConfig{
			Entries: 256, Slow: time.Hour, Every: 1 << 30})})
		benchInproc(b, sr, http.MethodPost, "/v1/simulate", benchSimBody)
	})
	b.Run("inproc/warm-sampled16", func(b *testing.B) {
		sr := New(Config{Workers: 1, Recorder: obs.NewRecorder(obs.RecorderConfig{
			Entries: 256, Slow: time.Hour, Every: 16})})
		benchInproc(b, sr, http.MethodPost, "/v1/simulate", benchSimBody)
	})
}

func BenchmarkServeSchedule(b *testing.B) {
	s := New(Config{Workers: 1})
	b.Run("inproc/warm", func(b *testing.B) {
		benchInproc(b, s, http.MethodPost, "/v1/schedule", benchSchedBody)
	})
	b.Run("tcp/warm", func(b *testing.B) {
		benchTCP(b, s, http.MethodPost, "/v1/schedule", benchSchedBody)
	})
}

func BenchmarkServeFigures(b *testing.B) {
	s := New(Config{Workers: 1})
	b.Run("inproc/fig4", func(b *testing.B) {
		benchInproc(b, s, http.MethodGet, "/v1/figures?section=fig4", nil)
	})
	b.Run("tcp/fig4", func(b *testing.B) {
		benchTCP(b, s, http.MethodGet, "/v1/figures?section=fig4", nil)
	})
}

// TestRespCacheServeAllocs pins the acceptance bound: serving a response-
// cache hit performs zero marshal work — the only allocation left is the
// header value slice Set builds, well under the 2 allocs/op budget.
func TestRespCacheServeAllocs(t *testing.T) {
	c := NewRespCache(64)
	var k respKey
	k[0] = 0xA5
	c.Put(k, []byte(`{"ok":true}`), jsonContentType)
	w := newBenchWriter()
	avg := testing.AllocsPerRun(1000, func() {
		if !c.Serve(w, k) {
			t.Fatal("unexpected cache miss")
		}
	})
	if avg > 2 {
		t.Fatalf("RespCache.serve = %.2f allocs/op, want <= 2", avg)
	}
}
