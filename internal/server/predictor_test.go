package server

// Serving-layer tests for the branch-prediction frontends: the predictor
// field must round-trip, distinct frontends must never share cached bytes or
// cells, an unknown name must be a structured 400, and the classic (perfect)
// response bytes must not change shape.

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func TestSimulatePredictorRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	for _, pred := range []string{"static", "tage"} {
		resp, body := postJSON(t, ts.URL+"/v1/simulate",
			map[string]any{"workload": "cmp", "model": "sentinel", "width": 8, "predictor": pred})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", pred, resp.StatusCode, body)
		}
		var got SimulateResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.Predictor != pred {
			t.Errorf("predictor %q echoed as %q", pred, got.Predictor)
		}
		if got.Stats.PredictedBranches == 0 || got.Stats.Mispredicts == 0 {
			t.Errorf("%s: prediction counters missing from served stats: %+v", pred, got.Stats)
		}
	}
	// A classic request's response bytes must not mention the frontend at
	// all: the predictor field is omitempty and perfect echoes as "".
	resp, body := postJSON(t, ts.URL+"/v1/simulate",
		map[string]any{"workload": "cmp", "model": "sentinel", "width": 8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classic: status %d: %s", resp.StatusCode, body)
	}
	if strings.Contains(string(body), `"predictor"`) {
		t.Errorf("classic response bytes gained a predictor field: %s", body)
	}
	// An explicit "perfect" canonicalizes to the same classic response.
	_, body2 := postJSON(t, ts.URL+"/v1/simulate",
		map[string]any{"workload": "cmp", "model": "sentinel", "width": 8, "predictor": "perfect"})
	if string(body2) != string(body) {
		t.Errorf("explicit perfect response differs from classic:\n%s\nvs\n%s", body2, body)
	}
}

func TestSchedulePredictorRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/schedule",
		map[string]any{"workload": "cmp", "model": "sentinel", "width": 8, "predictor": "tage"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got ScheduleResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Predictor != "tage" {
		t.Errorf("predictor echoed as %q, want tage", got.Predictor)
	}
	// The schedule itself is frontend-independent: the listing under tage is
	// the perfect frontend's listing (one schedule shared across frontends).
	_, cbody := postJSON(t, ts.URL+"/v1/schedule",
		map[string]any{"workload": "cmp", "model": "sentinel", "width": 8})
	var classic ScheduleResponse
	if err := json.Unmarshal(cbody, &classic); err != nil {
		t.Fatal(err)
	}
	if got.Listing != classic.Listing || got.Stats != classic.Stats {
		t.Error("tage-frontend schedule differs from the classic schedule; the scheduler must not consult the predictor")
	}
}

// TestPredictorsDistinctCells: requests that differ only in predictor are
// different cells — they must never share a response-cache entry, a
// singleflight flight, or a runner cell.
func TestPredictorsDistinctCells(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	cycles := map[string]int64{}
	for _, pred := range []string{"", "static", "tage"} {
		req := map[string]any{"workload": "compress", "model": "sentinel", "width": 8}
		if pred != "" {
			req["predictor"] = pred
		}
		resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%q: status %d: %s", pred, resp.StatusCode, body)
		}
		var got SimulateResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		cycles[pred] = got.Cycles
	}
	if hits := s.resp.hits.Load(); hits != 0 {
		t.Errorf("response cache hits = %d across distinct predictors, want 0 (no shared bytes)", hits)
	}
	if cs := s.Runner().CacheStats()["cells"]; cs.Size != 3 {
		t.Errorf("cells cache size = %d, want 3 (one per frontend)", cs.Size)
	}
	// One schedule serves all three frontends.
	if ss := s.Runner().CacheStats()["scheds"]; ss.Size != 1 {
		t.Errorf("scheds cache size = %d, want 1 (schedule shared across frontends)", ss.Size)
	}
	if cycles[""] >= cycles["static"] {
		t.Errorf("static frontend (%d cycles) must cost more than perfect (%d)", cycles["static"], cycles[""])
	}
}

// TestUnknownPredictor400: a bad predictor name is a client error with the
// typed envelope on both endpoints — never a 500.
func TestUnknownPredictor400(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, ep := range []string{"/v1/simulate", "/v1/schedule"} {
		resp, body := postJSON(t, ts.URL+ep,
			map[string]any{"workload": "cmp", "model": "sentinel", "predictor": "gshare"})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", ep, resp.StatusCode, body)
		}
		ae := decodeError(t, body)
		if ae.Kind != KindBadRequest {
			t.Errorf("%s: kind = %q, want %q", ep, ae.Kind, KindBadRequest)
		}
		if !strings.Contains(ae.Message, "gshare") {
			t.Errorf("%s: message %q does not name the bad predictor", ep, ae.Message)
		}
	}
}
