package server

// Observability wiring tests: request-ID echo on every response shape, the
// /metrics exposition, the flight-recorder debug endpoints, and the warm-path
// allocation budget with the recorder armed.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sentinel/internal/obs"
)

// quietRecorder samples nothing on its own: no slow threshold in reach, a
// 1-in-2^30 warm/tail rate. Errors still sample (always-on), which is what
// the error-path tests rely on.
func quietRecorder() *obs.Recorder {
	return obs.NewRecorder(obs.RecorderConfig{Entries: 64, Slow: time.Hour, Every: 1 << 30})
}

// eagerRecorder samples every request.
func eagerRecorder() *obs.Recorder {
	return obs.NewRecorder(obs.RecorderConfig{Entries: 64, Slow: time.Hour, Every: 1})
}

func postJSONWithID(t *testing.T, url, id string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if id != "" {
		req.Header.Set(requestIDHeader, id)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestRequestIDEcho(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Recorder: quietRecorder()})
	simReq := map[string]any{"workload": "cmp", "model": "sentinel", "width": 4}

	// Cold request with a client-supplied ID: echoed verbatim.
	resp, body := postJSONWithID(t, ts.URL+"/v1/simulate", "client-id-1", simReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(requestIDHeader); got != "client-id-1" {
		t.Errorf("cold echo = %q, want client-id-1", got)
	}

	// Warm repeat (response-cache hit): still echoed, even unsampled.
	resp, body = postJSONWithID(t, ts.URL+"/v1/simulate", "client-id-2", simReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(requestIDHeader); got != "client-id-2" {
		t.Errorf("warm echo = %q, want client-id-2", got)
	}

	// No client ID: the recorder generates one and the response carries it.
	resp, body = postJSONWithID(t, ts.URL+"/v1/schedule", "", simReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generated-id status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(requestIDHeader); got == "" {
		t.Error("no generated request ID on cold request without client ID")
	} else if !strings.Contains(got, "-") {
		t.Errorf("generated ID %q does not look like <prefix>-<seq>", got)
	}

	// Error envelopes carry the ID too: a 400 (decode error) ...
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/simulate",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(requestIDHeader, "client-id-3")
	errResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	errResp.Body.Close()
	if errResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-body status = %d, want 400", errResp.StatusCode)
	}
	if got := errResp.Header.Get(requestIDHeader); got != "client-id-3" {
		t.Errorf("400 echo = %q, want client-id-3", got)
	}

	// ... and a 422 (sentinel exception via fault injection).
	resp, body = postJSONWithID(t, ts.URL+"/v1/simulate", "client-id-4",
		map[string]any{"workload": "cmp", "model": "sentinel", "width": 8,
			"fault_segment": "a"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("fault status = %d, want 422: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(requestIDHeader); got != "client-id-4" {
		t.Errorf("422 echo = %q, want client-id-4", got)
	}
}

// TestRequestIDEchoWithoutRecorder: the echo is part of the protocol, not
// the recorder — client IDs round-trip even with observability disabled.
func TestRequestIDEchoWithoutRecorder(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSONWithID(t, ts.URL+"/v1/simulate", "bare-7",
		map[string]any{"workload": "cmp", "model": "sentinel", "width": 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(requestIDHeader); got != "bare-7" {
		t.Errorf("echo = %q, want bare-7", got)
	}
	// Without a recorder there is nobody to mint IDs; absent stays absent.
	resp, _ = postJSONWithID(t, ts.URL+"/v1/simulate", "",
		map[string]any{"workload": "cmp", "model": "sentinel", "width": 4})
	if got := resp.Header.Get(requestIDHeader); got != "" {
		t.Errorf("recorder-less response minted ID %q, want none", got)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Workers: 1, Registry: reg, Recorder: quietRecorder()})
	const n = 5
	for i := 0; i < n; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/simulate",
			map[string]any{"workload": "cmp", "model": "sentinel", "width": 4})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain exposition", ct)
	}
	fams, err := obs.ValidateProm(resp.Body)
	if err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	var reqHist *obs.PromFamily
	var reqCount float64
	for i := range fams {
		switch fams[i].Name {
		case "server_request_ns":
			reqHist = &fams[i]
		case "server_requests":
			reqCount = fams[i].Samples[0].Value
		}
	}
	if reqHist == nil {
		t.Fatal("no server_request_ns histogram family in exposition")
	}
	if reqHist.Type != "histogram" {
		t.Fatalf("server_request_ns type %q, want histogram", reqHist.Type)
	}
	if reqCount != n {
		t.Errorf("server_requests = %v, want %d", reqCount, n)
	}
	// The histogram's count must agree with the admitted-request counter:
	// every admitted request observes exactly one latency.
	for _, s := range reqHist.Samples {
		if s.Name == "server_request_ns_count" && s.Value != reqCount {
			t.Errorf("histogram count %v != requests counter %v", s.Value, reqCount)
		}
	}
}

func TestMetricsWithoutRegistry(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/metrics without registry = %d, want 404", resp.StatusCode)
	}
}

func TestDebugRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Recorder: eagerRecorder()})
	simReq := map[string]any{"workload": "cmp", "model": "sentinel", "width": 4}
	// One cold request (full pipeline, spans) and one warm repeat (raw hit).
	for i := 0; i < 2; i++ {
		resp, body := postJSONWithID(t, ts.URL+"/v1/simulate", "dbg-req-1", simReq)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
	}

	resp, err := http.Get(ts.URL + "/debug/requests.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/requests.json = %d, want 200", resp.StatusCode)
	}
	var views []*obs.RecordView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(views) < 2 {
		t.Fatalf("retained %d records, want >= 2", len(views))
	}
	// Newest first: views[0] is the warm raw-tier hit, views[1] the cold run.
	byTier := map[string]*obs.RecordView{}
	var sawID bool
	for _, v := range views {
		byTier[v.Tier] = v
		if v.ID == "dbg-req-1" {
			sawID = true
		}
	}
	if !sawID {
		t.Error("no retained record carries the client request ID")
	}
	warm, cold := byTier["raw"], byTier["cell"]
	if warm == nil {
		t.Fatal("no raw-tier (warm hit) record retained")
	}
	if cold == nil {
		t.Fatal("no cell-tier (cold fast-path) record retained")
	}
	if warm.Sampled != "warm" {
		t.Errorf("warm record sampled = %q, want warm", warm.Sampled)
	}
	spanStages := map[string]bool{}
	for _, sp := range cold.Spans {
		spanStages[sp.Stage] = true
	}
	for _, want := range []string{"admission", "sfown"} {
		if !spanStages[want] {
			t.Errorf("cold record missing %q span; has %v", want, spanStages)
		}
	}
	if len(warm.Spans) == 0 || warm.Spans[0].Stage != "respcache" {
		t.Errorf("warm record spans = %+v, want leading respcache span", warm.Spans)
	}

	// The text page renders and carries the same ID, escaped.
	resp, err = http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/requests = %d, want 200", resp.StatusCode)
	}
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(page, []byte("dbg-req-1")) {
		t.Error("text page does not mention the request ID")
	}
	if !bytes.Contains(page, []byte("respcache")) {
		t.Error("text page has no span waterfall lines")
	}
}

func TestDebugRequestsWithoutRecorder(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, path := range []string{"/debug/requests", "/debug/requests.json"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without recorder = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestRespCacheServeAllocsRecorderArmed pins the tentpole's zero-overhead
// bound end to end: the full handler path on a warm response-cache hit, with
// the flight recorder armed but not sampling this request, stays within the
// same 2 allocs/op budget as the recorder-less path. The request carries no
// client ID (matching the benchmark load), so no echo header is built.
func TestRespCacheServeAllocsRecorderArmed(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; absolute bound measured without -race")
	}
	s := New(Config{Workers: 1, Recorder: quietRecorder()})
	h := s.Handler()
	body := []byte(`{"workload":"cmp","model":"sentinel+stores","width":8}`)
	// Prime the response cache.
	warm := httptest.NewRequest(http.MethodPost, "/v1/simulate", bytes.NewReader(body))
	warm.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, warm)
	if rec.Code != http.StatusOK {
		t.Fatalf("prime = %d: %s", rec.Code, rec.Body.String())
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/simulate", nil)
	req.Header.Set("Content-Type", "application/json")
	rb := &reqBody{}
	w := newBenchWriter()
	avg := testing.AllocsPerRun(1000, func() {
		rb.Reader.Reset(body)
		req.Body = rb
		req.ContentLength = int64(len(body))
		h.ServeHTTP(w, req)
		if w.code != 0 && w.code != http.StatusOK {
			t.Fatalf("status %d", w.code)
		}
	})
	if avg > 2 {
		t.Fatalf("warm serve with recorder armed = %.2f allocs/op, want <= 2", avg)
	}
}
