package server

// The observability endpoints: Prometheus text exposition over the metrics
// registry, and the flight recorder's retained request records as both a
// human-readable waterfall page and JSON.

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strings"
	"time"

	"sentinel/internal/obs"
)

// handleMetrics renders every registry instrument in Prometheus text
// exposition format — counters, gauges, and histograms with cumulative
// power-of-two `le` buckets. 404 when the server runs without a registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Registry == nil {
		http.Error(w, "metrics registry disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Registry.WritePrometheus(w) //nolint:errcheck // client gone; nothing left to do
}

// handleDebugRequestsJSON dumps the flight recorder's retained request
// records, newest first. 404 when the recorder is disabled.
func (s *Server) handleDebugRequestsJSON(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	views := s.rec.Snapshot()
	if views == nil {
		views = []*obs.RecordView{}
	}
	w.Header().Set("Content-Type", jsonContentType)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(views) //nolint:errcheck // client gone; nothing left to do
}

// handleDebugRequests renders the retained records as a text page: one
// header line per request plus an indented span waterfall. Request IDs and
// labels are client-influenced, so everything is HTML-escaped into a <pre>.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	views := s.rec.Snapshot()
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>sentineld flight recorder</title></head><body>\n")
	fmt.Fprintf(&b, "<h1>flight recorder</h1><p>%d retained records (%d total retained since start), newest first</p>\n<pre>\n",
		len(views), s.rec.Retained())
	for _, v := range views {
		writeRequestWaterfall(&b, v)
	}
	b.WriteString("</pre></body></html>\n")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(b.String())) //nolint:errcheck // client gone; nothing left to do
}

// waterfallWidth is the character width of a record's full duration in the
// waterfall bars.
const waterfallWidth = 40

func writeRequestWaterfall(b *strings.Builder, v *obs.RecordView) {
	fmt.Fprintf(b, "%s  %-13s %3d  %-6s %-8s %-7s %10s  id=%s",
		html.EscapeString(v.Time), html.EscapeString(v.Endpoint), v.Status,
		html.EscapeString(v.Tier), html.EscapeString(v.Predictor),
		v.Sampled, time.Duration(v.DurNs), html.EscapeString(v.ID))
	if v.FP != "" {
		fmt.Fprintf(b, " fp=%s", html.EscapeString(v.FP))
	}
	b.WriteByte('\n')
	if len(v.Spans) == 0 {
		return
	}
	// Depth of each span by walking parents; the arena guarantees a parent
	// index precedes its children.
	depth := make([]int, len(v.Spans))
	for i, sp := range v.Spans {
		if sp.Parent >= 0 && sp.Parent < i {
			depth[i] = depth[sp.Parent] + 1
		}
	}
	for i, sp := range v.Spans {
		label := sp.Stage
		if sp.Arg != "" {
			label += "/" + sp.Arg
		}
		fmt.Fprintf(b, "    %-24s %10s  |%s|\n",
			strings.Repeat("  ", depth[i])+html.EscapeString(label),
			time.Duration(sp.DurNs), waterfallBar(sp.StartNs, sp.DurNs, v.DurNs))
	}
	b.WriteByte('\n')
}

// waterfallBar draws a span's position within the request as a fixed-width
// bar: spaces before the span starts, '#' while it runs (at least one), and
// spaces after it ends.
func waterfallBar(startNs, durNs, totalNs int64) string {
	if totalNs <= 0 {
		return strings.Repeat(" ", waterfallWidth)
	}
	lead := int(startNs * waterfallWidth / totalNs)
	span := int(durNs * waterfallWidth / totalNs)
	if span < 1 {
		span = 1
	}
	if lead > waterfallWidth-1 {
		lead = waterfallWidth - 1
	}
	if lead+span > waterfallWidth {
		span = waterfallWidth - lead
	}
	var bar strings.Builder
	bar.Grow(waterfallWidth)
	bar.WriteString(strings.Repeat(" ", lead))
	bar.WriteString(strings.Repeat("#", span))
	bar.WriteString(strings.Repeat(" ", waterfallWidth-lead-span))
	return bar.String()
}
