package server

// The observability endpoints: Prometheus text exposition over the metrics
// registry, and the flight recorder's retained request records as both a
// human-readable waterfall page (rendered by obs.WriteRequestsHTML, shared
// with the fleet router) and JSON.

import (
	"encoding/json"
	"net/http"

	"sentinel/internal/obs"
)

// handleMetrics renders every registry instrument in Prometheus text
// exposition format — counters, gauges, and histograms with cumulative
// power-of-two `le` buckets. 404 when the server runs without a registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Registry == nil {
		http.Error(w, "metrics registry disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Registry.WritePrometheus(w) //nolint:errcheck // client gone; nothing left to do
}

// handleDebugRequestsJSON dumps the flight recorder's retained request
// records, newest first. 404 when the recorder is disabled.
func (s *Server) handleDebugRequestsJSON(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	views := s.rec.Snapshot()
	if views == nil {
		views = []*obs.RecordView{}
	}
	w.Header().Set("Content-Type", jsonContentType)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(views) //nolint:errcheck // client gone; nothing left to do
}

// handleDebugRequests renders the retained records as the waterfall page.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	obs.WriteRequestsHTML(w, "sentineld", s.rec.Snapshot(), s.rec.Retained()) //nolint:errcheck // client gone
}
