package server

// The /v1 endpoint implementations. Handlers return errors; the v1 wrapper
// owns the envelope. Anything written directly to w is a success response.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"sentinel/internal/asm"
	"sentinel/internal/core"
	"sentinel/internal/eval"
	"sentinel/internal/machine"
	"sentinel/internal/obs"
	"sentinel/internal/prog"
	"sentinel/internal/sim"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

// KindProgramError classifies a program that assembles but cannot be
// compiled or reference-executed (e.g. traps deterministically in the
// sequential interpreter).
const KindProgramError = "program_error"

// ipc guards the instructions-per-cycle division: a zero-cycle result must
// not put NaN into the response, which json.Encode would reject.
func ipc(instrs, cycles int64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(instrs) / float64(cycles)
}

// maxBodyBytes bounds request bodies — shared by the decode path and the
// v1 wrapper's raw-fingerprint slurp so both refuse at the same size.
const maxBodyBytes = 4 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, into any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return apiErrorf(http.StatusBadRequest, KindBadRequest, "invalid request body: %v", err)
	}
	return nil
}

// parseMachine normalizes the request's machine triple through the shared
// machine.Resolve — the same resolution the fleet router applies before
// fingerprinting, so a request can never hash one way at the router and
// key another way here.
func parseMachine(model string, width int, predictor string) (machine.Desc, error) {
	md, err := machine.Resolve(model, width, predictor)
	if err != nil {
		return machine.Desc{}, apiErrorf(http.StatusBadRequest, KindBadRequest, "%v", err)
	}
	return md, nil
}

// respPredictor is the response echo of the resolved frontend: empty under
// the default perfect predictor so classic response bytes are unchanged.
func respPredictor(md machine.Desc) string {
	if md.Predictor == machine.PredPerfect {
		return ""
	}
	return md.Predictor.String()
}

// prepared resolves a ProgramSpec into compile artifacts: workload kernels
// through the Runner's caches, inline source through the content-hash
// cache.
func (s *Server) prepared(r *http.Request, spec ProgramSpec, md machine.Desc, form bool) (eval.Prepared, error) {
	ctx := r.Context()
	switch {
	case spec.Workload != "" && spec.Source != "":
		return eval.Prepared{}, apiErrorf(http.StatusBadRequest, KindBadRequest,
			"workload and source are mutually exclusive")
	case spec.Workload != "":
		if !form {
			return eval.Prepared{}, apiErrorf(http.StatusBadRequest, KindBadRequest,
				"superblock=false requires an inline source program; workload cells always use the paper pipeline")
		}
		b, ok := workload.ByName(spec.Workload)
		if !ok {
			return eval.Prepared{}, apiErrorf(http.StatusNotFound, KindUnknownWorkload,
				"unknown workload %q", spec.Workload)
		}
		return s.runner.PreparedCtx(ctx, b, md, superblock.Options{})
	case spec.Source != "":
		// Compile artifacts are frontend-independent (the scheduler never
		// consults the predictor), so the source cache keys by the compile
		// view and shares one entry across predictors.
		cmd := md.CompileView()
		key := sourceKey{sum: sha256.Sum256([]byte(spec.Source)), md: cmd, form: form}
		c, err := s.sources.get(ctx, key, func() (*compiled, error) {
			return compileSource(ctx, spec.Source, cmd, form)
		})
		if err != nil {
			return eval.Prepared{}, err
		}
		return eval.Prepared{Prog: c.prog, Index: c.index, Stats: c.stats,
			Ref: c.ref, Mem: c.mem.Clone()}, nil
	default:
		return eval.Prepared{}, apiErrorf(http.StatusBadRequest, KindBadRequest,
			"one of workload or source is required")
	}
}

// compileSource runs the full compile pipeline on inline assembly: parse,
// lay out, reference-interpret for the profile, optionally form
// superblocks, schedule for md. The ctx is span plumbing only — the request
// record, when one is attached, gets compile and schedule stages.
func compileSource(ctx context.Context, src string, md machine.Desc, form bool) (*compiled, error) {
	rd := obs.RecordFrom(ctx)
	rd.Start(obs.StageCompile, obs.ArgSources)
	p, m, err := asm.Parse(src)
	if err != nil {
		rd.End()
		return nil, apiErrorf(http.StatusUnprocessableEntity, KindAssemblyError, "%v", err)
	}
	p.Layout()
	ref, err := prog.Run(p, m.Clone(), prog.Options{Collect: true})
	if err != nil {
		rd.End()
		return nil, apiErrorf(http.StatusUnprocessableEntity, KindProgramError,
			"reference interpretation failed: %v", err)
	}
	if form {
		p = superblock.Form(p, ref.Profile, superblock.Options{})
		p.Layout()
		if err := p.Validate(); err != nil {
			rd.End()
			return nil, apiErrorf(http.StatusUnprocessableEntity, KindProgramError,
				"superblock formation: %v", err)
		}
	}
	rd.End()
	rd.Start(obs.StageSchedule, obs.ArgNone)
	sched, stats, err := core.Schedule(p, md)
	rd.End()
	if err != nil {
		return nil, apiErrorf(http.StatusUnprocessableEntity, KindProgramError,
			"schedule: %v", err)
	}
	return &compiled{prog: sched, index: sim.NewProgIndex(sched), stats: stats,
		mem: m, ref: ref}, nil
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) error {
	req := getSchedReq()
	defer putSchedReq(req)
	if err := decodeBody(w, r, req); err != nil {
		return err
	}
	md, err := parseMachine(req.Model, req.Width, req.Predictor)
	if err != nil {
		return err
	}
	form := req.Superblock == nil || *req.Superblock

	// Schedules are a pure function of (program, machine, formation): every
	// repeat is served straight from the response-byte cache.
	key := scheduleKey(req, md, form)
	rd := obs.RecordFrom(r.Context())
	rd.SetFingerprint(key[:])
	rd.SetPredictor(md.Predictor.String())
	rd.Start(obs.StageRespCache, obs.ArgCanon)
	hit := s.resp.Serve(w, key)
	rd.End()
	if hit {
		rd.SetTier(tierCanon)
		return nil
	}
	rd.SetTier(tierFull)

	p, err := s.prepared(r, req.ProgramSpec, md, form)
	if err != nil {
		return err
	}
	instrs := 0
	for _, b := range p.Prog.Blocks {
		instrs += len(b.Instrs)
	}
	resp := getSchedResp()
	defer putSchedResp(resp)
	*resp = ScheduleResponse{
		Model:     md.Model.String(),
		Width:     md.IssueWidth,
		Predictor: respPredictor(md),
		Blocks:    len(p.Prog.Blocks),
		Instrs:    instrs,
		Stats:     p.Stats,
		Listing:   asm.FormatScheduled(p.Prog),
	}
	s.writeJSONCaching(w, r, key, true, resp)
	return nil
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) error {
	req := getSimReq()
	defer putSimReq(req)
	if err := decodeBody(w, r, req); err != nil {
		return err
	}
	md, err := parseMachine(req.Model, req.Width, req.Predictor)
	if err != nil {
		return err
	}

	// A simulate response is a pure function of the normalized request
	// unless the run is perturbed (fault injection) or explicitly forced
	// (Full, the documented escape hatch past every cache): those two
	// bypass the response-byte cache entirely.
	rd := obs.RecordFrom(r.Context())
	rd.SetPredictor(md.Predictor.String())
	rd.SetTier(tierFull)
	cacheable := req.FaultSegment == "" && !req.Full
	var key respKey
	if cacheable {
		key = simulateKey(req, md)
		rd.SetFingerprint(key[:])
		rd.Start(obs.StageRespCache, obs.ArgCanon)
		hit := s.resp.Serve(w, key)
		rd.End()
		if hit {
			rd.SetTier(tierCanon)
			return nil
		}
	}

	// Fast path: a plain workload cell is served from the Runner's verified
	// cell cache — identical concurrent requests coalesce onto one
	// simulation, repeats never simulate at all.
	if req.Workload != "" && req.Source == "" && req.FaultSegment == "" && !req.Full {
		b, ok := workload.ByName(req.Workload)
		if !ok {
			return apiErrorf(http.StatusNotFound, KindUnknownWorkload,
				"unknown workload %q", req.Workload)
		}
		cell, err := s.runner.MeasureCtx(r.Context(), b, md, superblock.Options{})
		if err != nil {
			return err
		}
		rd.SetTier(tierCell)
		resp := getSimResp()
		defer putSimResp(resp)
		*resp = SimulateResponse{
			Model:     md.Model.String(),
			Width:     md.IssueWidth,
			Predictor: respPredictor(md),
			Cycles:    cell.Cycles,
			Instrs:    cell.Instrs,
			IPC:       ipc(cell.Instrs, cell.Cycles),
			Stalls:    cell.Sim.Stalls(),
			Stats:     cell.Sim,
		}
		s.writeJSONCaching(w, r, key, true, resp)
		return nil
	}

	// Full path: a per-request simulation over cached compile artifacts —
	// inline source, fault injection, or an explicit Full run that needs
	// the program output and memory checksum.
	p, err := s.prepared(r, req.ProgramSpec, md, true)
	if err != nil {
		return err
	}
	if req.FaultSegment != "" {
		seg := p.Mem.Segment(req.FaultSegment)
		if seg == nil {
			return apiErrorf(http.StatusBadRequest, KindUnknownSegment,
				"program has no segment %q", req.FaultSegment)
		}
		seg.Present = false
	}
	rd.Start(obs.StageSimulate, obs.ArgNone)
	res, err := sim.Run(p.Prog, md, p.Mem, sim.Options{Index: p.Index})
	rd.End()
	if err != nil {
		if exc, ok := sim.Unhandled(err); ok {
			pc := exc.ReportedPC
			return &APIError{
				Status:  http.StatusUnprocessableEntity,
				Kind:    KindSentinelException,
				Message: fmt.Sprintf("unhandled exception: %v", exc),
				PC:      &pc,
				ExcKind: exc.Kind.String(),
			}
		}
		return err
	}
	if req.FaultSegment == "" {
		// Verification only makes sense against an unfaulted image.
		if res.MemSum != p.Ref.MemSum || fmt.Sprint(res.Out) != fmt.Sprint(p.Ref.Out) {
			return apiErrorf(http.StatusInternalServerError, KindInternal,
				"verification failed: simulated result diverges from the reference interpreter")
		}
	}
	resp := getSimResp()
	defer putSimResp(resp)
	*resp = SimulateResponse{
		Model:      md.Model.String(),
		Width:      md.IssueWidth,
		Predictor:  respPredictor(md),
		Cycles:     res.Cycles,
		Instrs:     res.Instrs,
		IPC:        ipc(res.Instrs, res.Cycles),
		Stalls:     res.Stalls,
		Stats:      res.Stats,
		Out:        res.Out,
		MemSum:     strconv.FormatUint(res.MemSum, 10),
		Exceptions: len(res.Exceptions),
	}
	s.writeJSONCaching(w, r, key, cacheable, resp)
	return nil
}

func (s *Server) handleFigures(w http.ResponseWriter, r *http.Request) error {
	var secs eval.Sections
	names := r.URL.Query()["section"]
	if len(names) == 0 {
		secs = eval.AllSections()
	}
	for _, name := range names {
		if !secs.SectionByName(name) {
			return apiErrorf(http.StatusBadRequest, KindBadRequest,
				"unknown section %q (want fig4, fig5, table3, overhead, recovery, buffer, faults, sharing, boosting, prediction, all)", name)
		}
	}
	// A figure render is deterministic per section set; repeats come from
	// the response-byte cache without touching the Runner.
	const figuresContentType = "text/plain; charset=utf-8"
	key := figuresKey(secs)
	rd := obs.RecordFrom(r.Context())
	rd.SetFingerprint(key[:])
	rd.Start(obs.StageRespCache, obs.ArgCanon)
	hit := s.resp.Serve(w, key)
	rd.End()
	if hit {
		rd.SetTier(tierCanon)
		return nil
	}
	rd.SetTier(tierFull)
	// Render into memory first: an error after bytes hit the wire could not
	// change the status line anymore. The render fans out across the
	// Runner's workers, so its pipeline stages land outside this record
	// (the record is single-goroutine; see parallelForCtx).
	rd.Start(obs.StageSimulate, obs.ArgNone)
	var buf bytes.Buffer
	err := eval.RenderSections(r.Context(), secs, s.runner, &buf)
	rd.End()
	if err != nil {
		return err
	}
	rd.Start(obs.StageEncode, obs.ArgNone)
	body := append([]byte(nil), buf.Bytes()...)
	s.resp.Put(key, body, figuresContentType)
	if rk, ok := rawKeyFrom(r.Context()); ok {
		s.resp.Put(rk, body, figuresContentType)
	}
	w.Header().Set("Content-Type", figuresContentType)
	w.Write(buf.Bytes()) //nolint:errcheck
	rd.End()
	return nil
}
