package server

// End-to-end coverage of the fault-injection path over HTTP: paging out a
// program's input segment must surface as a structured 422 carrying the
// excepting PC — the serving mirror of internal/eval/faults.go — and never
// as a bare 500.

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"sentinel/internal/ir"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

// faultSegment finds the benchmark's primary input segment, mirroring the
// candidate list in eval's injection campaign.
func faultSegment(t *testing.T, s *Server, b workload.Benchmark) string {
	t.Helper()
	p, err := s.runner.PreparedCtx(context.Background(), b,
		mustMachine(t, "sentinel", 8), superblock.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"text", "input", "src", "a", "heap",
		"cells", "x", "re", "b-data", "tokens"} {
		if p.Mem.Segment(name) != nil {
			return name
		}
	}
	t.Fatalf("%s: no known input segment", b.Name)
	return ""
}

// TestFaultInjection422EveryWorkload: for every benchmark, paging out the
// input segment under the sentinel model signals an unhandled exception,
// and the server reports it as 422 sentinel_exception with the PC of a
// memory instruction — the recovered excepting PC, not a 500.
func TestFaultInjection422EveryWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("uncached per-workload simulations")
	}
	s, ts := newTestServer(t, Config{Workers: 4})
	for _, b := range workload.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			seg := faultSegment(t, s, b)
			resp, body := postJSON(t, ts.URL+"/v1/simulate", map[string]any{
				"workload":      b.Name,
				"model":         "sentinel",
				"width":         8,
				"fault_segment": seg,
			})
			if resp.StatusCode == http.StatusInternalServerError {
				t.Fatalf("fault surfaced as 500 — must be a structured 422: %s", body)
			}
			if resp.StatusCode != http.StatusUnprocessableEntity {
				t.Fatalf("status %d, want 422: %s", resp.StatusCode, body)
			}
			ae := decodeError(t, body)
			if ae.Kind != KindSentinelException {
				t.Errorf("kind = %q, want %q", ae.Kind, KindSentinelException)
			}
			if ae.ExcKind == "" {
				t.Error("exc_kind missing")
			}
			if ae.PC == nil {
				t.Fatal("pc missing from sentinel_exception response")
			}
			// The reported PC must identify the faulting instruction itself: a
			// memory op in the scheduled program, recovered from the tagged
			// register — not the sentinel that signalled.
			p, err := s.runner.PreparedCtx(context.Background(), b,
				mustMachine(t, "sentinel", 8), superblock.Options{})
			if err != nil {
				t.Fatal(err)
			}
			in, _, _ := p.Prog.InstrAt(*ae.PC)
			if in == nil || !ir.IsMem(in.Op) {
				t.Errorf("pc %d does not name a memory instruction (got %v)", *ae.PC, in)
			}
		})
	}
}

func TestFaultUnknownSegment400(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/simulate", map[string]any{
		"workload": "cmp", "model": "sentinel", "fault_segment": "no-such-segment",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	if ae := decodeError(t, body); ae.Kind != KindUnknownSegment {
		t.Errorf("kind = %q, want %q", ae.Kind, KindUnknownSegment)
	}
}

// TestFaultResponseShape pins the exact JSON field names clients depend on.
func TestFaultResponseShape(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	seg := faultSegment(t, s, mustWorkload(t, "cmp"))
	resp, body := postJSON(t, ts.URL+"/v1/simulate", map[string]any{
		"workload": "cmp", "model": "sentinel", "width": 8, "fault_segment": seg,
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, body)
	}
	var raw struct {
		Error map[string]json.RawMessage `json:"error"`
	}
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"kind", "message", "pc", "exc_kind"} {
		if _, ok := raw.Error[field]; !ok {
			t.Errorf("error envelope missing %q: %s", field, body)
		}
	}
}
