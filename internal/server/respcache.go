package server

// The response-byte cache: a bounded, sharded LRU from a canonical request
// fingerprint to the fully serialized success response. The Runner's
// artifact caches and the source compile cache already make a repeat
// request cheap to *compute*; this cache makes it cheap to *serve* — a warm
// hit is one shard lookup plus one w.Write of bytes that were encoded
// exactly once, so the hot path performs zero JSON marshal work and touches
// no state shared across shards. Entries are immutable once inserted
// (readers get the stored slice, never a copy), and the whole cache is
// dropped when the Runner's artifact caches are reset (Runner.OnReset), so
// stale bytes cannot outlive the artifacts they were rendered from.
//
// Only deterministic success responses are stored: the fingerprint is a
// sha256 over the normalized request (see fingerprint.go), so two requests
// with the same key are guaranteed the same body byte-for-byte — the cache
// can only ever return what the uncached path would have written.
//
// The type is exported because the fleet router (internal/fleet) memoizes
// proxied responses with the exact same structure and keying discipline;
// one implementation keeps the two caches from ever skewing.

import (
	"encoding/binary"
	"net/http"
	"sync"
	"sync/atomic"
)

// respEntry is one cached response: the serialized body and its content
// type, threaded on the owning shard's LRU list. Immutable after insert.
type respEntry struct {
	prev, next *respEntry
	key        respKey
	body       []byte
	ctype      string
}

// respShard is one LRU stripe: its own mutex, map and recency list
// (head = most recent). Capacity is enforced per shard, so the cache-wide
// bound is nshards × cap with no cross-shard coordination.
type respShard struct {
	mu         sync.Mutex
	m          map[respKey]*respEntry
	head, tail *respEntry
	cap        int
}

// RespCache is the sharded LRU. A nil RespCache is valid and disabled:
// lookups miss, stores discard — the zero-configuration off switch.
type RespCache struct {
	shards               []respShard
	hits, misses, evicts atomic.Int64
}

// NewRespCache builds a cache bounded to at most `entries` responses
// (0 selects the default; negative disables by returning nil). The bound is
// split over power-of-two shards; when entries is smaller than the shard
// count a single shard keeps the bound exact.
func NewRespCache(entries int) *RespCache {
	const nshards = 16
	if entries < 0 {
		return nil
	}
	if entries == 0 {
		entries = 4096
	}
	c := &RespCache{}
	if entries < nshards {
		c.shards = make([]respShard, 1)
		c.shards[0].cap = entries
	} else {
		c.shards = make([]respShard, nshards)
		for i := range c.shards {
			c.shards[i].cap = entries / nshards
		}
	}
	for i := range c.shards {
		c.shards[i].m = make(map[respKey]*respEntry)
	}
	return c
}

// shard picks the stripe for k. The key is a sha256, so any 8 bytes of it
// are uniformly distributed — no second hash needed.
func (c *RespCache) shard(k respKey) *respShard {
	h := binary.LittleEndian.Uint64(k[:8])
	return &c.shards[h&uint64(len(c.shards)-1)]
}

// Get returns the cached body and content type for k, refreshing its
// recency. ok is false on a miss or a nil (disabled) cache.
func (c *RespCache) Get(k respKey) (body []byte, ctype string, ok bool) {
	if c == nil {
		return nil, "", false
	}
	s := c.shard(k)
	s.mu.Lock()
	e, ok := s.m[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, "", false
	}
	s.moveFront(e)
	s.mu.Unlock()
	c.hits.Add(1)
	return e.body, e.ctype, true
}

// Put stores body (which the cache takes ownership of — callers must pass a
// copy if they keep writing to the backing array) under k, evicting the
// least-recently-used entry of k's shard when full. No-op on nil.
func (c *RespCache) Put(k respKey, body []byte, ctype string) {
	if c == nil {
		return
	}
	s := c.shard(k)
	s.mu.Lock()
	if e, ok := s.m[k]; ok {
		// A racing request already stored this key; the bodies are
		// byte-identical by construction, keep the incumbent.
		s.moveFront(e)
		s.mu.Unlock()
		return
	}
	if s.cap < 1 {
		s.mu.Unlock()
		return
	}
	if len(s.m) >= s.cap {
		lru := s.tail
		s.unlink(lru)
		delete(s.m, lru.key)
		c.evicts.Add(1)
	}
	e := &respEntry{key: k, body: body, ctype: ctype}
	s.m[k] = e
	s.pushFront(e)
	s.mu.Unlock()
}

// Serve writes the cached response for k to w, reporting whether it did.
// This is the entire warm hot path after fingerprinting: one shard lookup,
// one header set, one Write.
func (c *RespCache) Serve(w http.ResponseWriter, k respKey) bool {
	body, ctype, ok := c.Get(k)
	if !ok {
		return false
	}
	w.Header().Set("Content-Type", ctype)
	w.Write(body) //nolint:errcheck // client gone; nothing left to do
	return true
}

// Reset drops every entry (hit/miss/evict counters persist). Runs on
// Runner.OnReset so response bytes never outlive their source artifacts.
func (c *RespCache) Reset() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[respKey]*respEntry)
		s.head, s.tail = nil, nil
		s.mu.Unlock()
	}
}

// Len reports the cached entry count.
func (c *RespCache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Hits reports lifetime cache hits (0 on a nil cache).
func (c *RespCache) Hits() int64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

// Misses reports lifetime cache misses (0 on a nil cache).
func (c *RespCache) Misses() int64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}

// Evicts reports lifetime LRU evictions (0 on a nil cache).
func (c *RespCache) Evicts() int64 {
	if c == nil {
		return 0
	}
	return c.evicts.Load()
}

// Intrusive LRU list plumbing; callers hold the shard mutex.

func (s *respShard) pushFront(e *respEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *respShard) unlink(e *respEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *respShard) moveFront(e *respEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
