package server

// The binary batch protocol's server side (see internal/wire for the frame
// format). A connection carries sequential request frames; each frame is
// one batch — admitted as a single unit, answered with a response frame
// whose elements stream back in completion order through the same runBatch
// engine as POST /v1/batch, so the two entry points cannot drift.
//
// Deployment is either a dedicated listener (ServeWire, sentineld's
// -wire-addr) or the main HTTP port: SniffWire peeks each fresh
// connection's first byte — the wire magic's 0xF7 can never begin an HTTP
// method — and routes the connection to whichever protocol it speaks.
//
// Error discipline mirrors the HTTP envelope vocabulary at two levels.
// Frame-level refusals (overload, draining, malformed bytes) are error
// frames: overload and pre-admission timeout leave the connection usable
// for retries, while malformed framing and draining close it (the former
// because resynchronization is impossible, the latter because the server
// is going away). Element-level failures never surface here at all — they
// are tagged response elements carrying the endpoint's own JSON error
// envelope.

import (
	"bufio"
	"context"
	"errors"
	"net"
	"net/http"
	"time"

	"sentinel/internal/obs"
	"sentinel/internal/wire"
)

// wireBufSize sizes the per-connection read and write buffers: large enough
// that a typical 64-element request frame arrives in one read.
const wireBufSize = 32 << 10

// wireLimits mirrors the HTTP endpoints' bounds: same element ceiling as
// /v1/batch, same per-payload cap as the JSON body limit.
var wireLimits = wire.Limits{MaxElems: maxBatchElems, MaxPayload: maxBodyBytes}

// ServeWire accepts wire-protocol connections from l until it closes, one
// goroutine per connection. Returns l's Accept error.
func (s *Server) ServeWire(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.ServeWireConn(conn)
	}
}

// ServeWireConn serves the binary batch protocol on one connection until
// clean close, transport error, or a poisoned stream. Closes conn.
func (s *Server) ServeWireConn(conn net.Conn) {
	s.serveWireBuffered(bufio.NewReaderSize(conn, wireBufSize), conn)
}

// serveWireBuffered is ServeWireConn for a connection whose first bytes
// were already buffered by the protocol sniffer.
func (s *Server) serveWireBuffered(br *bufio.Reader, conn net.Conn) {
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, wireBufSize)
	fb := getFrameBuf()
	defer putFrameBuf(fb)
	for {
		fr, err := wire.ReadRequest(br, wireLimits)
		if err != nil {
			var pe *wire.ProtocolError
			if errors.As(err, &pe) {
				// Malformed framing poisons the stream: answer with an error
				// frame and close — there is no way to find the next frame
				// boundary.
				fb.b = wire.AppendError(fb.b[:0], pe.Code, pe.Msg)
				bw.Write(fb.b) //nolint:errcheck // closing either way
				bw.Flush()     //nolint:errcheck
			}
			return // io.EOF between frames is the clean close
		}
		keep := s.serveWireFrame(bw, fb, fr)
		if bw.Flush() != nil || !keep {
			return
		}
	}
}

// serveWireFrame admits and answers one batch frame, reporting whether the
// connection should stay open.
func (s *Server) serveWireFrame(bw *bufio.Writer, fb *frameBuf, fr *wire.ReqFrame) bool {
	var t0 time.Time
	if s.reqTime != nil {
		t0 = time.Now()
	}
	var rd *obs.Record
	if s.rec != nil {
		rd = s.rec.Begin("/wire/batch")
	}
	status := http.StatusOK
	defer func() { rd.Finish(status) }()

	// The frame's timeout_ms may shorten (never extend) the server default,
	// exactly like ?timeout_ms= on the HTTP side.
	timeout := s.cfg.RequestTimeout
	if d := time.Duration(fr.TimeoutMS) * time.Millisecond; fr.TimeoutMS > 0 && d < timeout {
		timeout = d
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if rd != nil {
		ctx = obs.ContextWithRecord(ctx, rd)
	}

	// One admission slot per frame, however many elements it carries.
	rd.Start(obs.StageAdmission, obs.ArgNone)
	release, err := s.adm.acquire(ctx)
	rd.End()
	if err != nil {
		s.rejected.Inc()
		ae := toAPIError(err)
		status = ae.Status
		code, keepOpen := wireRefusal(err)
		fb.b = wire.AppendError(fb.b[:0], code, ae.Message)
		bw.Write(fb.b) //nolint:errcheck // flush in the caller decides
		return keepOpen
	}
	defer release()
	s.reqs.Inc()
	s.batches.Inc()
	s.batchElems.Add(int64(len(fr.Elems)))
	s.batchesInFlight.Add(1)
	defer s.batchesInFlight.Add(-1)

	elems := make([]batchElem, len(fr.Elems))
	for i := range fr.Elems {
		elems[i] = batchElem{payload: fr.Elems[i].Payload, tag: fr.Elems[i].Tag, op: fr.Elems[i].Op}
	}
	fb.b = wire.AppendResponseHeader(fb.b[:0], len(elems))
	bw.Write(fb.b) //nolint:errcheck // a latched write error surfaces at Flush
	s.runBatch(ctx, elems, func(i, st int, body []byte) {
		fb.b = wire.AppendElemHeader(fb.b[:0], elems[i].tag, st, len(body))
		bw.Write(fb.b) //nolint:errcheck
		bw.Write(body) //nolint:errcheck
		bw.Flush()     //nolint:errcheck // stream each element as it completes
	})
	if s.reqTime != nil {
		s.reqTime.Observe(time.Since(t0).Nanoseconds())
	}
	return true
}

// wireRefusal maps an admission error onto its error-frame code and whether
// the connection survives (overload and timeout are retryable on the same
// connection; draining and anything unexpected are not).
func wireRefusal(err error) (code int, keepOpen bool) {
	switch {
	case errors.Is(err, errOverload):
		return wire.ErrOverload, true
	case isContextErr(err):
		return wire.ErrTimeout, true
	case errors.Is(err, errDraining):
		return wire.ErrDraining, false
	default:
		return wire.ErrInternal, false
	}
}

// SniffWire splits l between the two protocols: connections whose first
// byte is the wire magic are served by s's wire handler on their own
// goroutines; everything else is delivered through the returned listener,
// which the caller hands to its http.Server (see wire.SplitListener — the
// fleet router shares the same splitter with its own wire handler).
func (s *Server) SniffWire(l net.Listener) net.Listener {
	return wire.SplitListener(l, s.serveWireBuffered)
}
