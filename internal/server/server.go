// Package server is the long-lived serving layer over the compile-and-
// simulate pipeline: an HTTP/JSON front-end that owns one process-wide
// eval.Runner and adds the concerns the Runner lacks — bounded admission
// with per-request deadlines, coalescing of identical requests (workload
// cells through the Runner's singleflight caches, inline source programs
// through a content-hash cache), typed error responses, readiness and
// graceful drain, and request metrics.
//
// Endpoints:
//
//	POST /v1/schedule   assemble + form superblocks + schedule a program
//	POST /v1/simulate   run a program and return sim result + stats
//	GET  /v1/figures    paper figure/table sections (byte-identical to paperfigs)
//	GET  /healthz       liveness (200 while the process serves)
//	GET  /readyz        readiness (503 while warming or draining)
//	GET  /debug/vars    expvar (published metrics registries)
//	GET  /debug/pprof/  net/http/pprof profiles
package server

import (
	"bytes"
	"context"
	"expvar"
	"io"
	"net/http"
	netpprof "net/http/pprof"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sentinel/internal/eval"
	"sentinel/internal/obs"
)

// Config sizes the serving layer. The zero value of every field selects a
// sensible default.
type Config struct {
	// Workers is the eval.Runner's parallelism (0 = GOMAXPROCS).
	Workers int
	// MaxInFlight bounds concurrently executing requests (default 16).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot; anything
	// beyond is refused with 429 (default 64).
	MaxQueue int
	// RequestTimeout is the default per-request deadline; a request may
	// shorten (never extend) it with ?timeout_ms= (default 30s).
	RequestTimeout time.Duration
	// MaxSourcePrograms caps the inline-source compile cache (default 256).
	MaxSourcePrograms int
	// RespCacheEntries bounds the response-byte cache — the LRU of fully
	// serialized success responses that lets a repeat request skip all
	// marshal work (default 4096; negative disables).
	RespCacheEntries int
	// Registry receives request metrics and the Runner's cache/utilization
	// instruments; nil disables metrics entirely (the obs nil path).
	Registry *obs.Registry
	// Recorder is the request flight recorder: span traces, /debug/requests
	// and the access-log sink. Nil disables request records entirely (the
	// obs nil path); request-ID echo of client-supplied IDs still works.
	Recorder *obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 16
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxSourcePrograms == 0 {
		c.MaxSourcePrograms = 256
	}
	return c
}

// Server is the serving layer. Construct with New; safe for concurrent use.
type Server struct {
	cfg     Config
	runner  *eval.Runner
	adm     *admission
	sources *sourceCache
	resp    *RespCache
	mux     *http.ServeMux
	rec     *obs.Recorder
	ready   atomic.Bool

	// batchesInFlight counts batches currently streaming (both entry
	// points). It is not an admission signal — each batch holds one
	// admission slot — but the drain path reports it so an operator can see
	// in-flight batches run to completion.
	batchesInFlight atomic.Int64

	// Metrics, nil (the obs discard path) unless Config.Registry was set.
	reqTime    *obs.Histogram // wall time per /v1 request, ns
	reqs       *obs.Counter   // admitted /v1 requests
	rejected   *obs.Counter   // refused at admission (overload/draining/deadline)
	errs4xx    *obs.Counter
	errs5xx    *obs.Counter
	batches    *obs.Counter // batch frames admitted (HTTP + wire)
	batchElems *obs.Counter // batch elements across admitted frames
	coalesced  *obs.Counter // batch elements answered by an in-frame twin
}

// New builds a Server around a fresh eval.Runner. The server starts ready;
// callers that warm caches first should SetReady(false) before serving and
// flip it after warmup.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		runner:  eval.NewRunner(cfg.Workers),
		adm:     newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		sources: newSourceCache(cfg.MaxSourcePrograms),
		resp:    NewRespCache(cfg.RespCacheEntries),
		rec:     cfg.Recorder,
	}
	// Response bytes are rendered from Runner artifacts; dropping the
	// artifacts must drop the bytes memoized on top of them.
	s.runner.OnReset(s.resp.Reset)
	s.ready.Store(true)
	if reg := cfg.Registry; reg != nil {
		s.runner.SetMetrics(reg)
		s.reqTime = reg.Histogram("server.request_ns")
		s.reqs = reg.Counter("server.requests")
		s.rejected = reg.Counter("server.rejected")
		s.errs4xx = reg.Counter("server.errors_4xx")
		s.errs5xx = reg.Counter("server.errors_5xx")
		s.batches = reg.Counter("server.batches")
		s.batchElems = reg.Counter("server.batch_elements")
		s.coalesced = reg.Counter("server.batch_coalesced")
		reg.Gauge("server.batches_inflight", s.BatchesInFlight)
		reg.Gauge("server.inflight", s.adm.InFlight)
		reg.Gauge("server.queued", s.adm.Queued)
		reg.Gauge("server.draining", func() int64 {
			if s.adm.draining.Load() {
				return 1
			}
			return 0
		})
		reg.Gauge("server.cache_hit_permille", s.cacheHitPermille)
		reg.Gauge("server.respcache.size", func() int64 { return int64(s.resp.Len()) })
		reg.Gauge("server.respcache.hits", func() int64 {
			if s.resp == nil {
				return 0
			}
			return s.resp.hits.Load()
		})
		reg.Gauge("server.respcache.misses", func() int64 {
			if s.resp == nil {
				return 0
			}
			return s.resp.misses.Load()
		})
		reg.Gauge("server.respcache.evicts", func() int64 {
			if s.resp == nil {
				return 0
			}
			return s.resp.evicts.Load()
		})
		if s.rec != nil {
			reg.Gauge("server.recorder.retained", s.rec.Retained)
		}
	}
	s.routes()
	return s
}

// Runner exposes the process-wide evaluation runner (tests and warmup).
func (s *Server) Runner() *eval.Runner { return s.runner }

// BatchesInFlight reports how many batches are currently streaming — the
// signal sentineld's drain log uses to show in-flight batches completing.
func (s *Server) BatchesInFlight() int64 { return s.batchesInFlight.Load() }

// Handler returns the root handler serving every endpoint.
func (s *Server) Handler() http.Handler { return s.mux }

// SetReady flips the /readyz signal (warmup gating).
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// StartDrain makes /readyz report 503 and refuses new /v1 requests while
// in-flight ones complete. Idempotent.
func (s *Server) StartDrain() {
	s.adm.startDrain()
	s.ready.Store(false)
}

// Drain starts draining and blocks until no request is in flight or ctx
// expires. The HTTP listener's own Shutdown still applies on top: Drain
// settles the admission layer, Shutdown the connections.
func (s *Server) Drain(ctx context.Context) error {
	s.StartDrain()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for !s.adm.settled() {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	return nil
}

// cacheHitPermille summarizes all Runner caches into one effectiveness
// gauge: hits per thousand lookups across builds, forms, scheds and cells.
// Uses the Runner's allocation-free totals — this gauge is polled by every
// /debug/vars scrape on a hot service.
func (s *Server) cacheHitPermille() int64 {
	hits, misses := s.runner.CacheHitsMisses()
	total := hits + misses
	if total == 0 {
		return 0
	}
	return hits * 1000 / total
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/schedule", s.v1("/v1/schedule", s.handleSchedule))
	s.mux.HandleFunc("POST /v1/simulate", s.v1("/v1/simulate", s.handleSimulate))
	s.mux.HandleFunc("POST /v1/batch", s.v1("/v1/batch", s.handleBatch))
	s.mux.HandleFunc("GET /v1/figures", s.v1("/v1/figures", s.handleFigures))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("GET /debug/requests.json", s.handleDebugRequestsJSON)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n")) //nolint:errcheck
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		switch {
		case s.adm.draining.Load():
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n")) //nolint:errcheck
		case !s.ready.Load():
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("warming\n")) //nolint:errcheck
		default:
			w.Write([]byte("ready\n")) //nolint:errcheck
		}
	})
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux.HandleFunc("GET /debug/pprof/", netpprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", netpprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", netpprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", netpprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", netpprof.Trace)
}

// requestIDHeader is the propagation header tying responses, the flight
// recorder and the access log together. The literal is in canonical MIME
// form so Header.Get on it performs no canonicalization work.
const requestIDHeader = "X-Request-Id"

// Cache-tier labels for request records: which serving layer produced the
// response. Static strings — records alias them.
const (
	tierRaw   = "raw"   // raw-fingerprint response-byte cache
	tierCanon = "canon" // canonical-fingerprint response-byte cache
	tierCell  = "cell"  // runner's verified cell cache (computed or cached)
	tierFull  = "full"  // uncached per-request simulation
)

// v1 wraps an API handler with the serving concerns every /v1 endpoint
// shares: per-request deadline, admission, error envelope, request-ID echo,
// the flight-recorder record, and metrics.
func (s *Server) v1(endpoint string, h func(w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var t0 time.Time
		if s.reqTime != nil {
			t0 = time.Now()
		}
		// Echo a client-supplied request ID on every response, error
		// envelopes included. Get on the canonical constant is alloc-free;
		// Set (one header-slice alloc) only runs when the client sent one.
		clientID := r.Header.Get(requestIDHeader)
		if clientID != "" {
			w.Header().Set(requestIDHeader, clientID)
		}

		// rd is this request's flight-recorder record. On the warm fast path
		// it exists only for head-sampled hits — an unsampled warm hit must
		// record nothing — so a warm hit without a client ID carries no
		// generated request ID either (the documented fast-path exception).
		var rd *obs.Record

		// Warm fast path: a byte-identical repeat of an already-answered
		// request (same path, query and body bytes) is served straight from
		// the response cache — no JSON decode, no normalization, no
		// admission round-trip (the serve is a map lookup plus one Write,
		// cheaper than the bookkeeping that would otherwise guard it).
		// Draining still wins: a draining server refuses repeats too.
		if s.resp != nil && !s.adm.draining.Load() {
			rawK, sc, ok := s.fingerprintRaw(r)
			if sc != nil {
				defer putBodyScratch(sc)
			}
			if ok {
				if s.rec.SampleWarm() {
					rd = s.rec.Begin(endpoint)
					rd.SetID(clientID) // no-op when empty: keep the generated ID
					rd.SetFingerprint(rawK[:])
					if clientID == "" {
						w.Header().Set(requestIDHeader, rd.ID())
					}
					rd.Start(obs.StageRespCache, obs.ArgRaw)
				}
				if s.resp.Serve(w, rawK) {
					s.reqs.Inc()
					if s.reqTime != nil {
						s.reqTime.Observe(time.Since(t0).Nanoseconds())
					}
					if rd != nil {
						rd.End()
						rd.MarkWarm()
						rd.SetTier(tierRaw)
						rd.Finish(http.StatusOK)
					}
					return
				}
				rd.End() // nil-safe: closes the lookup span on a sampled miss
				// Miss: remember the key so the handler's cache fill also
				// registers these exact request bytes for the next repeat.
				r = r.WithContext(context.WithValue(r.Context(), rawKeyCtxKey{}, rawK))
			}
		}

		// Admitted path: every request gets a record (its cost is noise
		// against ms-scale pipeline work); whether it is retained is decided
		// at Finish. A record carried over from a sampled warm miss is kept.
		if rd == nil && s.rec != nil {
			rd = s.rec.Begin(endpoint)
			rd.SetID(clientID)
			if clientID == "" {
				w.Header().Set(requestIDHeader, rd.ID())
			}
		}
		status := http.StatusOK
		defer func() { rd.Finish(status) }()

		ctx := r.Context()
		timeout := s.cfg.RequestTimeout
		if q, ok := queryValue(r.URL.RawQuery, "timeout_ms"); ok {
			ms, err := strconv.Atoi(q)
			if err != nil || ms < 1 {
				status = writeError(w, apiErrorf(http.StatusBadRequest, KindBadRequest,
					"invalid timeout_ms %q", q)).Status
				s.countStatus(status)
				return
			}
			if d := time.Duration(ms) * time.Millisecond; d < timeout {
				timeout = d
			}
		}
		ctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		if rd != nil {
			ctx = obs.ContextWithRecord(ctx, rd)
		}

		rd.Start(obs.StageAdmission, obs.ArgNone)
		release, err := s.adm.acquire(ctx)
		rd.End()
		if err != nil {
			s.rejected.Inc()
			status = writeError(w, err).Status
			s.countStatus(status)
			return
		}
		defer release()
		s.reqs.Inc()

		if err := h(w, r.WithContext(ctx)); err != nil {
			status = writeError(w, err).Status
			s.countStatus(status)
		}
		if s.reqTime != nil {
			s.reqTime.Observe(time.Since(t0).Nanoseconds())
		}
	}
}

// rawKeyCtxKey carries the raw-request fingerprint from the v1 wrapper to
// the handler's cache fill (context is the only channel the handler
// signature offers; the value allocates on cache misses only).
type rawKeyCtxKey struct{}

// rawKeyFrom returns the raw-request key the v1 wrapper stashed, if any.
func rawKeyFrom(ctx context.Context) (respKey, bool) {
	k, ok := ctx.Value(rawKeyCtxKey{}).(respKey)
	return k, ok
}

// fingerprintRaw slurps the request body (bounded by the decode limit) into
// pooled scratch, fingerprints the raw request, and hands the body bytes
// back via r.Body for the normal decode path. The returned scratch (nil for
// bodyless requests) must be recycled with putBodyScratch at request end —
// it backs r.Body until then. ok is false when the body exceeds the limit
// or fails mid-read — those requests skip the fast path and the normal path
// owns the error, seeing the original byte stream.
func (s *Server) fingerprintRaw(r *http.Request) (k respKey, sc *bodyScratch, ok bool) {
	if r.Body == nil || r.Body == http.NoBody {
		return rawRequestKey(r.URL.Path, r.URL.RawQuery, nil), nil, true
	}
	sc = getBodyScratch()
	sc.lim = io.LimitedReader{R: r.Body, N: maxBodyBytes + 1}
	_, err := sc.buf.ReadFrom(&sc.lim)
	if err != nil || sc.buf.Len() > maxBodyBytes {
		r.Body = readCloser{io.MultiReader(bytes.NewReader(sc.buf.Bytes()), r.Body), r.Body}
		return respKey{}, sc, false
	}
	sc.rd.Reset(sc.buf.Bytes())
	r.Body = sc
	return rawRequestKey(r.URL.Path, r.URL.RawQuery, sc.buf.Bytes()), sc, true
}

// readCloser splices a replacement read stream onto the original body's
// Close (over-limit fallback path only).
type readCloser struct {
	io.Reader
	io.Closer
}

// queryValue extracts the value of key from a raw query string without
// materializing the url.Values map — the v1 wrapper runs this on every
// request, and the common case (no query at all) must cost nothing.
// Percent- or plus-escaped values take the slow unescape path.
func queryValue(rawQuery, key string) (string, bool) {
	for len(rawQuery) > 0 {
		part := rawQuery
		if i := strings.IndexByte(rawQuery, '&'); i >= 0 {
			part, rawQuery = rawQuery[:i], rawQuery[i+1:]
		} else {
			rawQuery = ""
		}
		if len(part) > len(key)+1 && part[:len(key)] == key && part[len(key)] == '=' {
			v := part[len(key)+1:]
			if strings.ContainsAny(v, "%+") {
				if u, err := url.QueryUnescape(v); err == nil {
					return u, true
				}
			}
			return v, true
		}
	}
	return "", false
}

func (s *Server) countStatus(status int) {
	switch {
	case status >= 500:
		s.errs5xx.Inc()
	case status >= 400:
		s.errs4xx.Inc()
	}
}
