package server

// The batched request path: many schedule/simulate requests per round trip,
// results streamed back as they complete. Two entry points share this one
// implementation — POST /v1/batch (handleBatch, a JSON array answered as a
// chunked element-per-element stream) and the length-prefixed binary
// protocol (wireserver.go) — both reducing to []batchElem and runBatch.
//
// The contract that makes batching safe to adopt incrementally: an element's
// payload bytes are exactly what the single-request endpoint would have
// written for the same request body — success envelope, error envelope,
// trailing newline and all. That holds by construction, because a cold
// element runs through the very handler that serves the endpoint (via a
// captured ResponseWriter) and a warm element is served from the same
// response-byte cache rows, keyed by the same raw-request fingerprint a
// single request would have filled.
//
// Cost model: one admission slot per batch (the batch is the unit of
// admission, as a frame is the paper's unit of issue), one respcache probe
// per element (warm elements never touch the pipeline), in-frame
// coalescing of byte-identical cold elements (one execution per distinct
// request, twins get the bytes copied), and one fan-out across the
// Runner's worker pool for the distinct misses — so a batch of N cold
// requests pays one round trip of framing, decode and admission instead
// of N, and only as many pipeline walks as it has distinct requests.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"

	"sentinel/internal/obs"
	"sentinel/internal/wire"
)

// maxBatchElems bounds one batch on both entry points; it matches the wire
// decoder's default element limit.
const maxBatchElems = 1024

// coalesceOptOut* mark request bodies that must never be answered by an
// in-frame twin: "full" forces a fresh simulation and "fault_segment"
// injects a fault, and both are documented as reaching past every cache.
// Matching the raw bytes keeps the check ahead of any decode.
var (
	coalesceOptOutFull  = []byte(`"full"`)
	coalesceOptOutFault = []byte(`"fault_segment"`)
)

// CacheOptOut reports whether raw request-body bytes name one of the two
// documented cache escape hatches — a "full" forced re-simulation or an
// injected "fault_segment". Exported for the fleet router, whose response
// cache must honor exactly the bypass discipline the backends do. The sniff
// is conservative: a spelled-out "full":false merely forfeits caching, it
// never causes a wrong answer.
func CacheOptOut(body []byte) bool {
	return bytes.Contains(body, coalesceOptOutFull) || bytes.Contains(body, coalesceOptOutFault)
}

// batchContentType marks the /v1/batch response stream: a sequence of
// header-line + payload element frames, not one JSON document.
const batchContentType = "application/x-sentinel-batch"

// batchItem is one element of the /v1/batch JSON array: which
// single-request endpoint it addresses, and that endpoint's request body
// passed through undecoded — the element handler decodes it exactly as the
// endpoint itself would, unknown-field rejection included.
type batchItem struct {
	// Op is "simulate" (the default when omitted) or "schedule".
	Op string `json:"op,omitempty"`
	// Request is the single-endpoint JSON request body, verbatim.
	Request json.RawMessage `json:"request"`
}

// batchElem is the protocol-neutral element both entry points reduce to.
type batchElem struct {
	payload []byte
	tag     uint32 // client-chosen (wire) or array index (HTTP); echoed back
	op      byte   // wire.OpSimulate or wire.OpSchedule
}

// path returns the single-request endpoint this element addresses — also
// the path component of its raw-request cache key, which is what lets
// batched and unbatched repeats of the same body warm each other.
func (e batchElem) path() string {
	if e.op == wire.OpSchedule {
		return "/v1/schedule"
	}
	return "/v1/simulate"
}

// batchOp maps the JSON op name onto the wire opcode.
func batchOp(op string) (byte, error) {
	switch op {
	case "", "simulate":
		return wire.OpSimulate, nil
	case "schedule":
		return wire.OpSchedule, nil
	default:
		return 0, apiErrorf(http.StatusBadRequest, KindBadRequest,
			"unknown op %q (want simulate, schedule)", op)
	}
}

// captureWriter is the http.ResponseWriter a batch element's handler writes
// into: status and body land in memory and are re-framed by the entry
// point. Pooled; one Get per cold element.
type captureWriter struct {
	buf    bytes.Buffer
	hdr    http.Header
	status int
}

func (c *captureWriter) Header() http.Header {
	if c.hdr == nil {
		c.hdr = make(http.Header, 2)
	}
	return c.hdr
}

func (c *captureWriter) WriteHeader(status int) {
	if c.status == 0 {
		c.status = status
	}
}

func (c *captureWriter) Write(p []byte) (int, error) {
	if c.status == 0 {
		c.status = http.StatusOK
	}
	return c.buf.Write(p)
}

func (c *captureWriter) statusCode() int {
	if c.status == 0 {
		return http.StatusOK
	}
	return c.status
}

var capturePool = sync.Pool{New: func() any { return new(captureWriter) }}

func getCapture() *captureWriter {
	c := capturePool.Get().(*captureWriter)
	c.buf.Reset()
	c.status = 0
	for k := range c.hdr {
		delete(c.hdr, k)
	}
	return c
}

func putCapture(c *captureWriter) { capturePool.Put(c) }

// execElement runs one cold element through the same handler that serves
// its single-request endpoint, so the captured bytes are byte-identical to
// an unbatched response — error envelopes included (a fault-injected
// element is a tagged 422 inside a successful frame, never a dropped
// batch). The element's raw-request key is threaded through the context so
// the handler's cache fill warms future batched and unbatched repeats of
// these exact bytes alike.
func (s *Server) execElement(ctx context.Context, e batchElem) *captureWriter {
	path := e.path()
	if s.resp != nil {
		ctx = context.WithValue(ctx, rawKeyCtxKey{}, rawRequestKey(path, "", e.payload))
	}
	cw := getCapture()
	r := (&http.Request{
		Method:        http.MethodPost,
		URL:           &url.URL{Path: path},
		Body:          io.NopCloser(bytes.NewReader(e.payload)),
		ContentLength: int64(len(e.payload)),
	}).WithContext(ctx)
	h := s.handleSimulate
	if e.op == wire.OpSchedule {
		h = s.handleSchedule
	}
	if err := h(cw, r); err != nil {
		cw.buf.Reset()
		cw.status = 0
		writeError(cw, err)
	}
	return cw
}

// runBatch is the shared batch engine. emit is called exactly once per
// element, serialized, in completion order; the body bytes are valid only
// for the duration of the call (they may alias a cache row or a pooled
// capture buffer). ctx carries the batch deadline and, optionally, the
// batch's flight-recorder record.
func (s *Server) runBatch(ctx context.Context, elems []batchElem, emit func(i, status int, body []byte)) {
	rd := obs.RecordFrom(ctx)

	// Warm probe: an element whose exact request bytes were answered before
	// is served straight from the response-byte cache — no decode, no
	// admission beyond the batch's own slot, no pipeline.
	cold := make([]int, 0, len(elems))
	rd.Start(obs.StageRespCache, obs.ArgRaw)
	fp := getFrameBuf()
	for i := range elems {
		var k respKey
		k, fp.b = rawRequestKeyInto(fp.b, elems[i].path(), "", elems[i].payload)
		if body, _, ok := s.resp.Get(k); ok {
			emit(i, http.StatusOK, body)
			continue
		}
		cold = append(cold, i)
	}
	putFrameBuf(fp)
	rd.End()
	if len(cold) == 0 {
		return
	}

	// Coalescing: within one frame, cold elements with byte-identical op and
	// payload are the same deterministic computation — the determinism the
	// byte-identity contract already relies on — so only the first of each
	// group (the leader) runs; its twins get the leader's envelope copied
	// under the same serialization the leader's emit holds. Requests that
	// opt out of caching (a "full" re-simulation, an injected fault) are
	// sniffed out by raw bytes and always run individually, keeping the
	// escape hatch past every cache honest; the sniff is conservative, so a
	// spelled-out "full":false merely forfeits coalescing.
	runs := cold
	var twins [][]int // parallel to runs: element indices answered by runs[j]
	if len(cold) > 1 {
		runs = make([]int, 0, len(cold))
		twins = make([][]int, 0, len(cold))
		leader := make(map[string]int, len(cold))
		kb := getFrameBuf()
		for _, i := range cold {
			p := elems[i].payload
			if CacheOptOut(p) {
				runs = append(runs, i)
				twins = append(twins, nil)
				continue
			}
			kb.b = append(append(kb.b[:0], elems[i].op), p...)
			if j, ok := leader[string(kb.b)]; ok {
				twins[j] = append(twins[j], i)
				s.coalesced.Inc()
				continue
			}
			leader[string(kb.b)] = len(runs)
			runs = append(runs, i)
			twins = append(twins, nil)
		}
		putFrameBuf(kb)
	}

	// Cold fan-out: the misses pipeline through the Runner's worker pool. A
	// single element's failure becomes its own tagged envelope — fn never
	// returns an error, which would stop dispatch for its siblings. The
	// captured context must not carry the record (records are
	// single-goroutine; ParallelCtx strips its own copy but cannot reach the
	// closure's).
	runCtx := ctx
	if rd != nil {
		runCtx = obs.ContextWithRecord(runCtx, nil)
	}
	var mu sync.Mutex
	emitted := make([]bool, len(runs))
	rd.Start(obs.StageBatch, obs.ArgNone)
	s.runner.ParallelCtx(ctx, len(runs), func(j int) error { //nolint:errcheck // fn never errs; ctx expiry handled below
		cw := s.execElement(runCtx, elems[runs[j]])
		mu.Lock()
		emitted[j] = true
		emit(runs[j], cw.statusCode(), cw.buf.Bytes())
		if twins != nil {
			for _, i := range twins[j] {
				emit(i, cw.statusCode(), cw.buf.Bytes())
			}
		}
		mu.Unlock()
		putCapture(cw)
		return nil
	})
	rd.End()

	// The frame promised every element up front; a deadline that stopped
	// dispatch mid-batch leaves the unrun tail to be filled in with the
	// same structured timeout envelope a single request would have got.
	var lateBody []byte
	lateStatus := http.StatusGatewayTimeout
	for j, i := range runs {
		if emitted[j] {
			continue
		}
		if lateBody == nil {
			cw := getCapture()
			writeError(cw, context.Cause(ctx))
			lateStatus = cw.statusCode()
			lateBody = append([]byte(nil), cw.buf.Bytes()...)
			putCapture(cw)
		}
		emit(i, lateStatus, lateBody)
		if twins != nil {
			for _, t := range twins[j] {
				emit(t, lateStatus, lateBody)
			}
		}
	}
}

// handleBatch is POST /v1/batch: a JSON array of batch items, answered as a
// chunked stream framed per element —
//
//	{"index":i,"status":s,"bytes":n}\n   followed by exactly n payload bytes
//
// in completion order, then a {"done":true,"elements":N}\n trailer. Element
// payloads are the single-endpoint response bytes verbatim (newline-
// terminated JSON, so the stream stays line-readable). The v1 wrapper has
// already charged the batch its one admission slot and deadline.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) error {
	var items []batchItem
	if err := decodeBody(w, r, &items); err != nil {
		return err
	}
	if len(items) == 0 {
		return apiErrorf(http.StatusBadRequest, KindBadRequest, "empty batch")
	}
	if len(items) > maxBatchElems {
		return apiErrorf(http.StatusBadRequest, KindBadRequest,
			"batch of %d elements exceeds limit %d", len(items), maxBatchElems)
	}
	elems := make([]batchElem, len(items))
	for i := range items {
		op, err := batchOp(items[i].Op)
		if err != nil {
			return err
		}
		elems[i] = batchElem{payload: items[i].Request, tag: uint32(i), op: op}
	}

	s.batches.Inc()
	s.batchElems.Add(int64(len(elems)))
	s.batchesInFlight.Add(1)
	defer s.batchesInFlight.Add(-1)

	w.Header().Set("Content-Type", batchContentType)
	flusher, _ := w.(http.Flusher)
	fb := getFrameBuf()
	defer putFrameBuf(fb)
	n := 0
	s.runBatch(r.Context(), elems, func(i, status int, body []byte) {
		fb.b = append(fb.b[:0], `{"index":`...)
		fb.b = strconv.AppendInt(fb.b, int64(i), 10)
		fb.b = append(fb.b, `,"status":`...)
		fb.b = strconv.AppendInt(fb.b, int64(status), 10)
		fb.b = append(fb.b, `,"bytes":`...)
		fb.b = strconv.AppendInt(fb.b, int64(len(body)), 10)
		fb.b = append(fb.b, '}', '\n')
		w.Write(fb.b) //nolint:errcheck // client gone; remaining writes are no-ops
		w.Write(body) //nolint:errcheck
		n++
		if flusher != nil {
			flusher.Flush()
		}
	})
	fb.b = append(fb.b[:0], `{"done":true,"elements":`...)
	fb.b = strconv.AppendInt(fb.b, int64(n), 10)
	fb.b = append(fb.b, '}', '\n')
	w.Write(fb.b) //nolint:errcheck
	return nil
}
