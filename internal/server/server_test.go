package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sentinel/internal/eval"
	"sentinel/internal/machine"
	"sentinel/internal/obs"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// decodeError unpacks the typed error envelope.
func decodeError(t *testing.T, body []byte) *APIError {
	t.Helper()
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("error body is not the typed envelope: %v\n%s", err, body)
	}
	if er.Error == nil {
		t.Fatalf("error body has no error field: %s", body)
	}
	return er.Error
}

func TestHealthAndReady(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", path, resp.StatusCode)
		}
	}
	s.SetReady(false)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while warming = %d, want 503", resp.StatusCode)
	}
}

func TestSimulateWorkloadMatchesRunner(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/simulate",
		map[string]any{"workload": "cmp", "model": "sentinel+stores", "width": 8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got SimulateResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	// The served cell must equal a direct Runner measurement (same process-
	// wide cache, so this also exercises a hit).
	want, err := eval.Measure(mustWorkload(t, "cmp"), mustMachine(t, "sentinel+stores", 8), superblock.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != want.Cycles || got.Instrs != want.Instrs {
		t.Errorf("served cell = %d cycles / %d instrs, direct measure = %d / %d",
			got.Cycles, got.Instrs, want.Cycles, want.Instrs)
	}
	if got.Stalls != want.Sim.Stalls() {
		t.Errorf("served stalls = %d, want %d", got.Stalls, want.Sim.Stalls())
	}
	_ = s
}

func TestSimulateCoalescesRepeats(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	req := map[string]any{"workload": "wc", "model": "sentinel", "width": 4}
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	cs := s.Runner().CacheStats()["cells"]
	if cs.Size != 1 {
		t.Errorf("cells cache size = %d, want 1 (identical requests must share one cell)", cs.Size)
	}
	// Repeats are absorbed above the Runner now: the first request fills
	// the response-byte cache, the other two are byte hits that never
	// reach the cell cache at all.
	if hits := s.resp.hits.Load(); hits < 2 {
		t.Errorf("response cache hits = %d, want >= 2 (repeats served as cached bytes)", hits)
	}
	if cs.Misses != 1 {
		t.Errorf("cells cache misses = %d, want 1 (one real measurement)", cs.Misses)
	}
}

func TestSimulateFullReturnsOutput(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/simulate",
		map[string]any{"workload": "cmp", "model": "sentinel", "width": 8, "full": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got SimulateResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Out) == 0 || got.MemSum == "" {
		t.Errorf("full run must include out and mem_sum, got out=%v mem_sum=%q", got.Out, got.MemSum)
	}
}

func TestScheduleSource(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	src := `
entry:
    li   r1, 4096
    li   r2, 7
    add  r3, r1, r2
    jsr  putint, r3
    halt
`
	resp, body := postJSON(t, ts.URL+"/v1/schedule",
		map[string]any{"source": src, "model": "sentinel", "width": 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got ScheduleResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Listing == "" || got.Instrs == 0 {
		t.Errorf("schedule response missing listing/instrs: %+v", got)
	}
}

func TestScheduleAssemblyError(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/schedule",
		map[string]any{"source": "entry:\n    bogus r1, r2\n", "model": "sentinel"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, body)
	}
	ae := decodeError(t, body)
	if ae.Kind != KindAssemblyError {
		t.Errorf("kind = %q, want %q", ae.Kind, KindAssemblyError)
	}
}

func TestSimulateSourceRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	src := `
entry:
    li   r1, 40
    li   r2, 2
    add  r3, r1, r2
    jsr  putint, r3
    halt
`
	resp, body := postJSON(t, ts.URL+"/v1/simulate",
		map[string]any{"source": src, "model": "sentinel", "width": 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got SimulateResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Out) != 1 || got.Out[0] != 42 {
		t.Errorf("out = %v, want [42]", got.Out)
	}
}

func TestUnknownWorkload404(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/simulate", map[string]any{"workload": "nope"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404: %s", resp.StatusCode, body)
	}
	if ae := decodeError(t, body); ae.Kind != KindUnknownWorkload {
		t.Errorf("kind = %q, want %q", ae.Kind, KindUnknownWorkload)
	}
}

func TestBadModel400(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/simulate",
		map[string]any{"workload": "cmp", "model": "warp-drive"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	if ae := decodeError(t, body); ae.Kind != KindBadRequest {
		t.Errorf("kind = %q, want %q", ae.Kind, KindBadRequest)
	}
}

// TestFiguresByteIdentical pins the serving guarantee: a served figure
// section must be byte-identical to what the paperfigs pipeline renders for
// the same inputs, including across repeated (cache-served) requests.
func TestFiguresByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	want := renderDirect(t, "fig4")
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/v1/figures?section=fig4")
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("request %d: served fig4 differs from direct render\nserved:\n%s\ndirect:\n%s", i, got, want)
		}
	}
}

func TestFiguresUnknownSection400(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/figures?section=fig99")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
}

// TestRequestTimeout504: a 1ms deadline cannot complete a cold full-matrix
// figure render; the typed timeout error must come back, not a hang or 500.
func TestRequestTimeout504(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/figures?section=fig4&timeout_ms=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	if ae := decodeError(t, body); ae.Kind != KindTimeout {
		t.Errorf("kind = %q, want %q", ae.Kind, KindTimeout)
	}
}

// TestTimeoutDoesNotPoisonCache: a request whose deadline expires while it
// OWNS the Runner's singleflight computation (not merely waits on it) must
// not cache its context error — otherwise every later request for the same
// cell serves the dead request's 504 until process restart. The doomed
// requests below expire at whatever pipeline stage 1ms reaches; the sane
// retry must succeed regardless.
func TestTimeoutDoesNotPoisonCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := SimulateRequest{ProgramSpec: ProgramSpec{Workload: "cmp"}, Model: "sentinel"}
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/simulate?timeout_ms=1", req)
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("doomed request %d: status %d, want 200 or 504: %s", i, resp.StatusCode, body)
		}
	}
	resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after a timed-out owner: status %d, want 200 (cache poisoned): %s",
			resp.StatusCode, body)
	}
}

// TestWriteJSONUnencodableIs500: an unencodable response value must become
// a 500 error envelope, never a 200 status line with a truncated body.
func TestWriteJSONUnencodableIs500(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, math.NaN())
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if ae := decodeError(t, rec.Body.Bytes()); ae.Kind != KindInternal {
		t.Errorf("kind = %q, want %q", ae.Kind, KindInternal)
	}
}

// TestAdmissionOverload: with one slot and no queue, a held slot turns the
// next acquire into an immediate overload refusal.
func TestAdmissionOverload(t *testing.T) {
	a := newAdmission(1, 0)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.acquire(context.Background()); err != errOverload {
		t.Fatalf("second acquire = %v, want errOverload", err)
	}
	release()
	release2, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release = %v", err)
	}
	release2()
}

// TestAdmissionQueueDeadline: a queued request leaves the queue when its
// deadline expires.
func TestAdmissionQueueDeadline(t *testing.T) {
	a := newAdmission(1, 4)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := a.acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("queued acquire = %v, want DeadlineExceeded", err)
	}
	if q := a.Queued(); q != 0 {
		t.Errorf("queued = %d after deadline, want 0", q)
	}
}

// TestDrain pins the graceful-drain contract: once draining, /readyz is
// 503 and new work is refused, but the in-flight request completes and
// Drain returns only after it does.
func TestDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxInFlight: 2})

	// Hold an admission slot, standing in for an in-flight request.
	release, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()

	// Drain must not complete while the request is in flight.
	waitFor(t, func() bool { return s.adm.draining.Load() })
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with a request still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	// While draining: readyz 503, new API requests refused with the typed
	// draining error.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", resp.StatusCode)
	}
	resp2, body := postJSON(t, ts.URL+"/v1/simulate", map[string]any{"workload": "cmp"})
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("simulate during drain = %d, want 503: %s", resp2.StatusCode, body)
	}
	if ae := decodeError(t, body); ae.Kind != KindDraining {
		t.Errorf("kind = %q, want %q", ae.Kind, KindDraining)
	}

	// Completing the in-flight request completes the drain.
	release()
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return after the in-flight request finished")
	}
}

func TestMetricsPopulated(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Workers: 1, Registry: reg})
	resp, body := postJSON(t, ts.URL+"/v1/simulate",
		map[string]any{"workload": "cmp", "model": "sentinel", "width": 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	sum := reg.Summary()
	for _, want := range []string{"server.requests", "server.request_ns.count", "server.inflight", "server.cache_hit_permille"} {
		if !strings.Contains(sum, want) {
			t.Errorf("metrics summary missing %s:\n%s", want, sum)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// renderDirect renders one section through the same shared renderer the
// CLI uses, on a fresh Runner, standing in for `paperfigs -<section>`.
func renderDirect(t *testing.T, name string) []byte {
	t.Helper()
	var s eval.Sections
	if !s.SectionByName(name) {
		t.Fatalf("unknown section %q", name)
	}
	var buf bytes.Buffer
	if err := eval.RenderSections(context.Background(), s, eval.NewRunner(2), &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func mustWorkload(t *testing.T, name string) workload.Benchmark {
	t.Helper()
	b, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	return b
}

func mustMachine(t *testing.T, model string, width int) machine.Desc {
	t.Helper()
	md, err := parseMachine(model, width, "")
	if err != nil {
		t.Fatalf("parseMachine(%s, %d): %v", model, width, err)
	}
	return md
}
