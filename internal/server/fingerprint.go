package server

// Canonical request fingerprints for the response-byte cache. The key must
// identify everything that can influence the response bytes and nothing
// else: the normalized program spec (workload name, or the sha256 of inline
// source), the fully resolved machine description (so "sentinel" and "" and
// width 0 vs 8 land on one key), and the per-endpoint options. Requests
// whose responses are not a pure function of these inputs — fault
// injection, explicit Full runs — are never fingerprinted (see handlers.go).

import (
	"crypto/sha256"
	"encoding/binary"

	"sentinel/internal/eval"
	"sentinel/internal/machine"
)

// Endpoint tags keep the keyspaces disjoint: a schedule and a simulate of
// the same program must never collide.
const (
	fpSimulate = byte(1)
	fpSchedule = byte(2)
	fpFigures  = byte(3)
	fpRaw      = byte(4)
)

// fpBuf accumulates the canonical serialization on the stack — sized so a
// workload-cell request (the warm path) never allocates on its way to the
// sha256. Inline source is folded in as its own sha256, so source length
// does not matter.
type fpBuf struct {
	b []byte
	a [96]byte
}

func newFpBuf(tag byte) fpBuf {
	var f fpBuf
	f.b = append(f.a[:0], tag)
	return f
}

func (f *fpBuf) str(s string) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
	f.b = append(f.b, n[:]...) // length-prefixed: "ab"+"c" != "a"+"bc"
	f.b = append(f.b, s...)
}

func (f *fpBuf) u64(v uint64) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], v)
	f.b = append(f.b, n[:]...)
}

func (f *fpBuf) bool(v bool) {
	if v {
		f.b = append(f.b, 1)
	} else {
		f.b = append(f.b, 0)
	}
}

func (f *fpBuf) bytes(p []byte) { f.b = append(f.b, p...) }

func (f *fpBuf) sum() respKey { return sha256.Sum256(f.b) }

// machineDesc folds every field of the resolved machine description in.
// parseMachine already normalized aliases and defaults, so equivalent
// requests share bytes here.
func (f *fpBuf) machineDesc(md machine.Desc) {
	f.u64(uint64(md.IssueWidth))
	f.u64(uint64(md.StoreBuffer))
	f.u64(uint64(md.Model))
	f.bool(md.Recovery)
	f.bool(md.NoSharedSentinels)
	f.u64(uint64(md.BoostLevels))
	f.u64(uint64(md.Predictor))
	f.u64(uint64(md.MispredictPenalty))
}

// programSpec folds the normalized program identity in: the workload name,
// or the content hash of inline source (never the source itself).
func (f *fpBuf) programSpec(spec ProgramSpec) {
	f.str(spec.Workload)
	if spec.Source != "" {
		sum := sha256.Sum256([]byte(spec.Source))
		f.bytes(sum[:])
	}
}

// rawRequestKey fingerprints the request exactly as received: path, query
// and body bytes. Two requests with the same raw key are indistinguishable
// on the wire, so serving the first one's cached bytes to the second is
// trivially byte-identical — without decoding anything. Textual variants of
// the same logical request (field order, whitespace, defaulted fields) miss
// here and fall through to the canonical keys below.
func rawRequestKey(path, rawQuery string, body []byte) respKey {
	f := newFpBuf(fpRaw)
	f.str(path)
	f.str(rawQuery)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(body)))
	f.b = append(f.b, n[:]...)
	f.b = append(f.b, body...)
	return f.sum()
}

// rawRequestKeyInto is rawRequestKey over caller-owned scratch, for callers
// that fingerprint many requests back to back (the batch probe loop): the
// accumulation buffer is reused across calls instead of escaping per call.
// Returns the key and the (possibly grown) scratch to carry forward.
func rawRequestKeyInto(scratch []byte, path, rawQuery string, body []byte) (respKey, []byte) {
	b := append(scratch[:0], fpRaw)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(path)))
	b = append(b, n[:]...)
	b = append(b, path...)
	binary.LittleEndian.PutUint32(n[:], uint32(len(rawQuery)))
	b = append(b, n[:]...)
	b = append(b, rawQuery...)
	binary.LittleEndian.PutUint32(n[:], uint32(len(body)))
	b = append(b, n[:]...)
	b = append(b, body...)
	return sha256.Sum256(b), b
}

// simulateKey fingerprints a cacheable simulate request. Callers must have
// ruled out fault injection and Full runs first.
func simulateKey(req *SimulateRequest, md machine.Desc) respKey {
	f := newFpBuf(fpSimulate)
	f.programSpec(req.ProgramSpec)
	f.machineDesc(md)
	return f.sum()
}

// scheduleKey fingerprints a schedule request (always deterministic).
func scheduleKey(req *ScheduleRequest, md machine.Desc, form bool) respKey {
	f := newFpBuf(fpSchedule)
	f.programSpec(req.ProgramSpec)
	f.machineDesc(md)
	f.bool(form)
	return f.sum()
}

// figuresKey fingerprints a figures request by its resolved section set.
func figuresKey(secs eval.Sections) respKey {
	f := newFpBuf(fpFigures)
	f.bool(secs.Fig4)
	f.bool(secs.Fig5)
	f.bool(secs.Table3)
	f.bool(secs.Overhead)
	f.bool(secs.Recovery)
	f.bool(secs.Buffer)
	f.bool(secs.Faults)
	f.bool(secs.Sharing)
	f.bool(secs.Boost)
	f.bool(secs.Prediction)
	return f.sum()
}
