package server

// Canonical request fingerprints for the response-byte cache. The
// serialization itself lives in internal/fingerprint, shared with the fleet
// router (internal/fleet) so the two sides can never skew: the router
// consistent-hashes the same bytes this cache keys by, which is what makes
// a backend's caches fleet-visible. This file only adapts the server's
// request types onto that shared implementation. Requests whose responses
// are not a pure function of these inputs — fault injection, explicit Full
// runs — are never fingerprinted (see handlers.go).

import (
	"sentinel/internal/eval"
	"sentinel/internal/fingerprint"
	"sentinel/internal/machine"
)

// respKey is the canonical request fingerprint keying the response cache.
type respKey = fingerprint.Key

// rawRequestKey fingerprints the request exactly as received (see
// fingerprint.RawRequest).
func rawRequestKey(path, rawQuery string, body []byte) respKey {
	return fingerprint.RawRequest(path, rawQuery, body)
}

// rawRequestKeyInto is rawRequestKey over caller-owned scratch (the batch
// probe loop reuses one buffer across elements).
func rawRequestKeyInto(scratch []byte, path, rawQuery string, body []byte) (respKey, []byte) {
	return fingerprint.RawRequestInto(scratch, path, rawQuery, body)
}

// simulateKey fingerprints a cacheable simulate request. Callers must have
// ruled out fault injection and Full runs first.
func simulateKey(req *SimulateRequest, md machine.Desc) respKey {
	return fingerprint.Simulate(req.Workload, req.Source, md)
}

// scheduleKey fingerprints a schedule request (always deterministic).
func scheduleKey(req *ScheduleRequest, md machine.Desc, form bool) respKey {
	return fingerprint.Schedule(req.Workload, req.Source, md, form)
}

// figuresKey fingerprints a figures request by its resolved section set.
func figuresKey(secs eval.Sections) respKey {
	return fingerprint.Figures(secs.Fig4, secs.Fig5, secs.Table3, secs.Overhead,
		secs.Recovery, secs.Buffer, secs.Faults, secs.Sharing, secs.Boost,
		secs.Prediction)
}
