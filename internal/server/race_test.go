//go:build race

package server

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation adds allocations, so absolute allocs/op tests skip.
const raceEnabled = true
