package server

// Admission control: a fixed number of requests execute at once, a bounded
// number may wait for a slot, and everything beyond that is refused
// immediately with 429 rather than queued into memory. Waiting requests
// leave the queue the moment their deadline expires, so a burst of doomed
// requests cannot occupy the queue. Draining flips one switch: no new
// request is admitted (503), in-flight requests run to completion.

import (
	"context"
	"errors"
	"sync/atomic"
)

var (
	// errOverload: the admission queue is full (429).
	errOverload = errors.New("server: admission queue full")
	// errDraining: the server is shutting down and admits nothing new (503).
	errDraining = errors.New("server: draining")
)

func isContextErr(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// admission is the bounded two-stage queue in front of the pipeline.
type admission struct {
	sem      chan struct{} // in-flight slots
	maxQueue int64
	queued   atomic.Int64
	inflight atomic.Int64
	draining atomic.Bool
}

func newAdmission(maxInFlight, maxQueue int) *admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{sem: make(chan struct{}, maxInFlight), maxQueue: int64(maxQueue)}
}

// acquire admits one request, blocking in the bounded queue if all slots are
// busy. The returned release must be called exactly once when the request
// finishes. Fails fast with errDraining, errOverload, or the context's
// error.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	if a.draining.Load() {
		return nil, errDraining
	}
	select {
	case a.sem <- struct{}{}:
	default:
		// No free slot: join the bounded queue or be refused.
		if a.queued.Add(1) > a.maxQueue {
			a.queued.Add(-1)
			return nil, errOverload
		}
		select {
		case a.sem <- struct{}{}:
			a.queued.Add(-1)
		case <-ctx.Done():
			a.queued.Add(-1)
			return nil, ctx.Err()
		}
	}
	// A drain that started after the first check still refuses us, on both
	// paths: every admitted request holds its slot by the time it re-checks,
	// so the drain waiter (settled) either sees the slot occupied or the
	// request sees draining and bows out — never neither.
	if a.draining.Load() {
		<-a.sem
		return nil, errDraining
	}
	a.inflight.Add(1)
	return func() {
		a.inflight.Add(-1)
		<-a.sem
	}, nil
}

// settled reports that no request holds an execution slot. The drain waiter
// uses this rather than InFlight(): the slot is acquired before inflight is
// incremented and released after it is decremented, so the semaphore is the
// authoritative signal that admission has quiesced.
func (a *admission) settled() bool { return len(a.sem) == 0 }

// startDrain stops admitting new requests. Idempotent.
func (a *admission) startDrain() { a.draining.Store(true) }

// Queued and InFlight are metrics-gauge snapshots.
func (a *admission) Queued() int64   { return a.queued.Load() }
func (a *admission) InFlight() int64 { return a.inflight.Load() }
