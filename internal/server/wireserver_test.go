package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"sentinel/internal/wire"
)

// startWireServer runs s's wire handler on a loopback TCP listener and
// returns its address.
func startWireServer(t *testing.T, s *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go s.ServeWire(l) //nolint:errcheck // returns when the listener closes
	return l.Addr().String()
}

func dialWire(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

type wireResult struct {
	status  int
	payload []byte
}

// readWireFrame consumes one response frame and returns its elements by tag.
func readWireFrame(t *testing.T, br *bufio.Reader) map[uint32]wireResult {
	t.Helper()
	count, err := wire.ReadResponseHeader(br, wire.Limits{})
	if err != nil {
		t.Fatalf("response header: %v", err)
	}
	out := make(map[uint32]wireResult, count)
	for i := 0; i < count; i++ {
		tag, status, plen, err := wire.ReadElemHeader(br, wire.Limits{})
		if err != nil {
			t.Fatalf("element %d header: %v", i, err)
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			t.Fatalf("element %d payload: %v", i, err)
		}
		if _, dup := out[tag]; dup {
			t.Fatalf("tag %d emitted twice", tag)
		}
		out[tag] = wireResult{status: status, payload: payload}
	}
	return out
}

func sendWireFrame(t *testing.T, conn net.Conn, fr *wire.ReqFrame) {
	t.Helper()
	if _, err := conn.Write(wire.AppendRequest(nil, fr)); err != nil {
		t.Fatalf("write frame: %v", err)
	}
}

// TestWireRoundTrip: element payloads over the binary protocol are the
// single-request endpoints' response bytes, tags echoed as sent.
func TestWireRoundTrip(t *testing.T) {
	s := New(Config{})
	addr := startWireServer(t, s)
	_, single := newTestServer(t, Config{}) // independent server: no shared cache

	simBody := `{"workload":"cmp","model":"sentinel+stores","width":8}`
	schedBody := `{"workload":"wc","model":"sentinel","width":4}`

	conn := dialWire(t, addr)
	sendWireFrame(t, conn, &wire.ReqFrame{Elems: []wire.ReqElem{
		{Tag: 7, Op: wire.OpSimulate, Payload: []byte(simBody)},
		{Tag: 99, Op: wire.OpSchedule, Payload: []byte(schedBody)},
	}})
	got := readWireFrame(t, bufio.NewReader(conn))
	if len(got) != 2 {
		t.Fatalf("got %d elements, want 2", len(got))
	}

	wantSim := mustSingle(t, single.URL+"/v1/simulate", simBody)
	wantSched := mustSingle(t, single.URL+"/v1/schedule", schedBody)
	for _, tc := range []struct {
		tag  uint32
		want []byte
	}{{7, wantSim}, {99, wantSched}} {
		el, ok := got[tc.tag]
		if !ok {
			t.Fatalf("tag %d missing from response", tc.tag)
		}
		if el.status != http.StatusOK {
			t.Fatalf("tag %d: status %d\n%s", tc.tag, el.status, el.payload)
		}
		if string(el.payload) != string(tc.want) {
			t.Errorf("tag %d payload differs from single endpoint\nwire:   %s\nsingle: %s",
				tc.tag, el.payload, tc.want)
		}
	}
}

func mustSingle(t *testing.T, url, body string) []byte {
	t.Helper()
	resp, out := postRawURL(t, url, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single endpoint %s: %d\n%s", url, resp.StatusCode, out)
	}
	return out
}

// TestWireKeepAlive: a connection carries many frames; the second round's
// repeated element comes back warm with identical bytes.
func TestWireKeepAlive(t *testing.T) {
	s := New(Config{RespCacheEntries: 64})
	addr := startWireServer(t, s)
	conn := dialWire(t, addr)
	br := bufio.NewReader(conn)

	body := `{"workload":"cmp","model":"sentinel","width":8}`
	var first []byte
	for round := 0; round < 3; round++ {
		sendWireFrame(t, conn, &wire.ReqFrame{Elems: []wire.ReqElem{
			{Tag: uint32(round), Op: wire.OpSimulate, Payload: []byte(body)},
		}})
		got := readWireFrame(t, br)
		el, ok := got[uint32(round)]
		if !ok || el.status != http.StatusOK {
			t.Fatalf("round %d: %+v", round, got)
		}
		if round == 0 {
			first = el.payload
		} else if string(el.payload) != string(first) {
			t.Fatalf("round %d bytes differ from round 0", round)
		}
	}
	if s.resp.Len() == 0 {
		t.Fatal("response cache untouched after repeated frames")
	}
}

// TestWireElementErrorsAreTagged: a failing element is a tagged structured
// error inside a successful frame, byte-identical to the single endpoint's
// envelope; its siblings are unaffected.
func TestWireElementErrorsAreTagged(t *testing.T) {
	s := New(Config{})
	addr := startWireServer(t, s)
	_, single := newTestServer(t, Config{})

	badBody := `{"workload":"no-such-kernel"}`
	goodBody := `{"workload":"wc","model":"sentinel","width":8}`
	conn := dialWire(t, addr)
	sendWireFrame(t, conn, &wire.ReqFrame{Elems: []wire.ReqElem{
		{Tag: 0, Op: wire.OpSimulate, Payload: []byte(badBody)},
		{Tag: 1, Op: wire.OpSimulate, Payload: []byte(goodBody)},
	}})
	got := readWireFrame(t, bufio.NewReader(conn))

	resp, want := postRawURL(t, single.URL+"/v1/simulate", badBody)
	if el := got[0]; el.status != resp.StatusCode || string(el.payload) != string(want) {
		t.Errorf("bad element: status %d (want %d)\nwire:   %s\nsingle: %s",
			el.status, resp.StatusCode, el.payload, want)
	}
	if el := got[1]; el.status != http.StatusOK {
		t.Errorf("good sibling caught the error: %d\n%s", el.status, el.payload)
	}
}

// TestWireMalformedFrame: garbage framing gets an error frame, then the
// connection closes — resynchronization is impossible.
func TestWireMalformedFrame(t *testing.T) {
	s := New(Config{})
	addr := startWireServer(t, s)
	conn := dialWire(t, addr)

	if _, err := conn.Write([]byte{wire.MagicByte0, 'S', 'B', 'W', 0xEE, wire.KindRequest}); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	_, err := wire.ReadResponseHeader(br, wire.Limits{})
	var pe *wire.ProtocolError
	if !errors.As(err, &pe) || pe.Code != wire.ErrMalformed {
		t.Fatalf("want ErrMalformed error frame, got %v", err)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("connection should be closed after a malformed frame, read gave %v", err)
	}
}

// TestWireDrainingClosesConn: a draining server answers with an ErrDraining
// frame and closes the connection.
func TestWireDrainingClosesConn(t *testing.T) {
	s := New(Config{})
	addr := startWireServer(t, s)
	s.adm.startDrain()

	conn := dialWire(t, addr)
	sendWireFrame(t, conn, &wire.ReqFrame{Elems: []wire.ReqElem{
		{Tag: 0, Op: wire.OpSimulate, Payload: []byte(`{"workload":"cmp"}`)},
	}})
	br := bufio.NewReader(conn)
	_, err := wire.ReadResponseHeader(br, wire.Limits{})
	var pe *wire.ProtocolError
	if !errors.As(err, &pe) || pe.Code != wire.ErrDraining {
		t.Fatalf("want ErrDraining error frame, got %v", err)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("connection should be closed after draining refusal, read gave %v", err)
	}
}

// TestWireOverloadKeepsConn: an overload refusal is retryable on the same
// connection.
func TestWireOverloadKeepsConn(t *testing.T) {
	s := New(Config{MaxInFlight: 1, MaxQueue: -1})
	addr := startWireServer(t, s)

	// Hold the only slot so the frame is refused at admission.
	release, err := s.adm.acquire(t.Context())
	if err != nil {
		t.Fatal(err)
	}

	conn := dialWire(t, addr)
	br := bufio.NewReader(conn)
	body := `{"workload":"cmp","model":"sentinel","width":8}`
	fr := &wire.ReqFrame{Elems: []wire.ReqElem{
		{Tag: 5, Op: wire.OpSimulate, Payload: []byte(body)},
	}}
	sendWireFrame(t, conn, fr)
	_, err = wire.ReadResponseHeader(br, wire.Limits{})
	var pe *wire.ProtocolError
	if !errors.As(err, &pe) || pe.Code != wire.ErrOverload {
		t.Fatalf("want ErrOverload error frame, got %v", err)
	}

	// Same connection, slot freed: the retry succeeds.
	release()
	sendWireFrame(t, conn, fr)
	got := readWireFrame(t, br)
	if el := got[5]; el.status != http.StatusOK {
		t.Fatalf("retry after overload on same conn: %+v", got)
	}
}

// TestWireSniffing: one listener serves both protocols — HTTP requests reach
// the mux, magic-prefixed connections reach the wire handler — and the
// response cache is shared between them.
func TestWireSniffing(t *testing.T) {
	s := New(Config{RespCacheEntries: 64})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpLn := s.SniffWire(l)
	t.Cleanup(func() { httpLn.Close() })
	go http.Serve(httpLn, s.Handler()) //nolint:errcheck // exits when the listener closes
	addr := l.Addr().String()

	// HTTP on the shared port.
	body := `{"workload":"cmp","model":"sentinel","width":8}`
	resp, want := postRawURL(t, "http://"+addr+"/v1/simulate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP over sniffed listener: %d\n%s", resp.StatusCode, want)
	}

	// Wire on the same port; the element repeats the HTTP request's bytes and
	// must come back warm from the shared cache.
	conn := dialWire(t, addr)
	sendWireFrame(t, conn, &wire.ReqFrame{Elems: []wire.ReqElem{
		{Tag: 3, Op: wire.OpSimulate, Payload: []byte(body)},
	}})
	got := readWireFrame(t, bufio.NewReader(conn))
	el, ok := got[3]
	if !ok || el.status != http.StatusOK {
		t.Fatalf("wire over sniffed listener: %+v", got)
	}
	if string(el.payload) != string(want) {
		t.Errorf("wire payload differs from the HTTP response it should share\nwire: %s\nhttp: %s",
			el.payload, want)
	}
}

// TestWireFrameTimeout: a frame deadline too short for its elements still
// answers every element — late ones carry the structured timeout envelope.
func TestWireFrameTimeout(t *testing.T) {
	s := New(Config{})
	addr := startWireServer(t, s)
	conn := dialWire(t, addr)

	const n = 48
	elems := make([]wire.ReqElem, n)
	for i := range elems {
		elems[i] = wire.ReqElem{Tag: uint32(i), Op: wire.OpSimulate, Payload: []byte(fmt.Sprintf(
			`{"workload":%q,"model":"sentinel","width":%d,"full":true}`,
			[]string{"cmp", "wc", "eqntott", "grep"}[i%4], 2<<(i%3)))}
	}
	sendWireFrame(t, conn, &wire.ReqFrame{TimeoutMS: 1, Elems: elems})
	got := readWireFrame(t, bufio.NewReader(conn))
	if len(got) != n {
		t.Fatalf("got %d elements, want all %d even under the deadline", len(got), n)
	}
	timedOut := 0
	for tag, el := range got {
		switch el.status {
		case http.StatusOK:
		case http.StatusGatewayTimeout:
			timedOut++
			if ae := decodeError(t, el.payload); ae.Kind != KindTimeout {
				t.Fatalf("tag %d: late element kind %q, want %q", tag, ae.Kind, KindTimeout)
			}
		default:
			t.Fatalf("tag %d: unexpected status %d\n%s", tag, el.status, el.payload)
		}
	}
	if timedOut == 0 {
		t.Skip("all 48 full simulations beat the 1ms frame deadline")
	}
}
