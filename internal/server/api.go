package server

// The wire types and typed error vocabulary of the v1 HTTP/JSON API.
//
// Every error response carries a machine-readable kind so clients can
// distinguish a bad program (assembly_error), a bad request, an
// architecturally signalled sentinel exception (sentinel_exception, with
// the excepting PC), an expired deadline (timeout), and the two admission
// outcomes (overload, draining). Plain 500s are reserved for genuine
// internal failures; a simulated program trapping is a client-visible
// result, never a server error.

import (
	"errors"
	"fmt"
	"net/http"

	"sentinel/internal/core"
	"sentinel/internal/obs"
)

// ProgramSpec names the program a request operates on: a built-in workload
// kernel by name, or MIR assembly source submitted inline (exactly one must
// be set).
type ProgramSpec struct {
	Workload string `json:"workload,omitempty"`
	Source   string `json:"source,omitempty"`
}

// ScheduleRequest asks the compile pipeline to assemble (or fetch) the
// program, form superblocks, and schedule it for one machine configuration.
type ScheduleRequest struct {
	ProgramSpec
	// Model is the speculation model: restricted, general, sentinel,
	// sentinel+stores, boosting.
	Model string `json:"model"`
	// Width is the issue width (default 8).
	Width int `json:"width,omitempty"`
	// Predictor is the branch-prediction frontend: perfect (default),
	// static, tage. The scheduler never consults it — it is accepted here so
	// one request shape covers both endpoints — but it must still be a known
	// name.
	Predictor string `json:"predictor,omitempty"`
	// Superblock disables profile-driven superblock formation when set to
	// false; nil/true means form (the default pipeline).
	Superblock *bool `json:"superblock,omitempty"`
}

// ScheduleResponse is the scheduled program and its compile statistics.
type ScheduleResponse struct {
	Model string `json:"model"`
	Width int    `json:"width"`
	// Predictor echoes the resolved non-default frontend ("" when perfect,
	// keeping classic response bytes unchanged).
	Predictor string     `json:"predictor,omitempty"`
	Blocks    int        `json:"blocks"`
	Instrs    int        `json:"instrs"`
	Stats     core.Stats `json:"stats"`
	// Listing is the scheduled program in assembler syntax with cycle/slot
	// annotations.
	Listing string `json:"listing"`
}

// SimulateRequest runs a program on the cycle simulator.
type SimulateRequest struct {
	ProgramSpec
	Model string `json:"model"`
	Width int    `json:"width,omitempty"`
	// Predictor selects the branch-prediction frontend: perfect (default,
	// the paper's oracle), static (backward-taken/forward-not-taken), or
	// tage. Non-perfect frontends add mispredict redirects and fetch
	// throttling to the timing; architectural results are unchanged.
	Predictor string `json:"predictor,omitempty"`
	// FaultSegment, when set, pages out the named memory segment before the
	// run, so the first access to it raises a page fault — the serving
	// mirror of the fault-injection study. The run is uncached and
	// unverified; a signalled exception comes back as a structured 422.
	FaultSegment string `json:"fault_segment,omitempty"`
	// Full forces an uncached full simulation whose response includes the
	// program output and memory checksum. The default (workload, no fault)
	// path serves the runner's verified cell cache, which coalesces
	// identical concurrent requests and answers repeats without simulating.
	Full bool `json:"full,omitempty"`
}

// SimulateResponse reports one simulated run.
type SimulateResponse struct {
	Model string `json:"model"`
	Width int    `json:"width"`
	// Predictor echoes the resolved non-default frontend ("" when perfect,
	// keeping classic response bytes unchanged).
	Predictor string  `json:"predictor,omitempty"`
	Cycles    int64   `json:"cycles"`
	Instrs    int64   `json:"instrs"`
	IPC       float64 `json:"ipc"`
	Stalls    int64   `json:"stalls"`
	// Stats is the simulator's per-run observability breakdown.
	Stats obs.SimStats `json:"stats"`
	// Out and MemSum are only present on Full (uncached) runs; MemSum is a
	// decimal string because a uint64 checksum overflows JSON numbers.
	Out    []int64 `json:"out,omitempty"`
	MemSum string  `json:"mem_sum,omitempty"`
	// Exceptions counts signalled-and-recovered exceptions (Full runs).
	Exceptions int `json:"exceptions,omitempty"`
}

// Error kinds, the machine-readable half of every error response.
const (
	KindBadRequest        = "bad_request"
	KindUnknownWorkload   = "unknown_workload"
	KindUnknownSegment    = "unknown_segment"
	KindAssemblyError     = "assembly_error"
	KindSentinelException = "sentinel_exception"
	KindTimeout           = "timeout"
	KindOverload          = "overload"
	KindDraining          = "draining"
	KindInternal          = "internal"
)

// APIError is an error with a fixed HTTP status and error kind; handlers
// return it (possibly wrapped) to control the response envelope.
type APIError struct {
	Status  int    `json:"-"`
	Kind    string `json:"kind"`
	Message string `json:"message"`
	// PC is the excepting program counter of a sentinel_exception: the PC
	// recovered from the tagged register's data field, i.e. the speculative
	// instruction that actually faulted, not the sentinel that signalled.
	PC *int `json:"pc,omitempty"`
	// ExcKind is the architectural exception kind (sentinel_exception only).
	ExcKind string `json:"exc_kind,omitempty"`
}

func (e *APIError) Error() string { return e.Kind + ": " + e.Message }

func apiErrorf(status int, kind, format string, args ...any) *APIError {
	return &APIError{Status: status, Kind: kind, Message: fmt.Sprintf(format, args...)}
}

// errorResponse is the JSON envelope of every non-2xx response.
type errorResponse struct {
	Error *APIError `json:"error"`
}

// jsonContentType is the Content-Type of every JSON response, cached and
// uncached alike.
const jsonContentType = "application/json; charset=utf-8"

// writeJSON writes v as the response body with the given status. The body
// is encoded into memory first (a pooled buffer): an unencodable value
// (e.g. a NaN that slipped into a response) must become a 500 envelope, not
// a 200 status line with a truncated body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	e := getEnc()
	if err := e.enc.Encode(v); err != nil {
		// The failing encoder is poisoned (json.Encoder latches its first
		// error); encode the fallback envelope on a fresh pair.
		e = getEnc()
		status = http.StatusInternalServerError
		ae := apiErrorf(status, KindInternal, "response encoding failed: %v", err)
		e.enc.Encode(errorResponse{Error: ae}) //nolint:errcheck // static payload always encodes
	}
	w.Header().Set("Content-Type", jsonContentType)
	w.WriteHeader(status)
	w.Write(e.buf.Bytes()) //nolint:errcheck // client gone; nothing left to do
	putEnc(e)
}

// writeJSONCaching is writeJSON for success responses that may enter the
// response-byte cache: when cacheable, the encoded bytes are copied into
// the cache under the canonical key — and under the raw-request key the v1
// wrapper stashed, so a byte-identical repeat short-circuits before decode
// — before being written; the next identical request is a single Write of
// these exact bytes.
func (s *Server) writeJSONCaching(w http.ResponseWriter, r *http.Request, key respKey, cacheable bool, v any) {
	rd := obs.RecordFrom(r.Context())
	rd.Start(obs.StageEncode, obs.ArgNone)
	defer rd.End()
	e := getEnc()
	if err := e.enc.Encode(v); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{
			Error: apiErrorf(http.StatusInternalServerError, KindInternal,
				"response encoding failed: %v", err)})
		return // drop the poisoned encoder pair
	}
	if cacheable {
		body := append([]byte(nil), e.buf.Bytes()...)
		s.resp.Put(key, body, jsonContentType)
		if rk, ok := rawKeyFrom(r.Context()); ok {
			s.resp.Put(rk, body, jsonContentType)
		}
	}
	w.Header().Set("Content-Type", jsonContentType)
	w.Write(e.buf.Bytes()) //nolint:errcheck // client gone; nothing left to do
	putEnc(e)
}

// writeError maps err onto the typed error envelope and writes it.
func writeError(w http.ResponseWriter, err error) *APIError {
	ae := toAPIError(err)
	writeJSON(w, ae.Status, errorResponse{Error: ae})
	return ae
}

// toAPIError classifies an arbitrary pipeline error. Context expiry maps to
// timeout, admission errors to their statuses, and anything unrecognized to
// a 500 internal.
func toAPIError(err error) *APIError {
	var ae *APIError
	switch {
	case errors.As(err, &ae):
		return ae
	case errors.Is(err, errOverload):
		return apiErrorf(http.StatusTooManyRequests, KindOverload,
			"admission queue full; retry later")
	case errors.Is(err, errDraining):
		return apiErrorf(http.StatusServiceUnavailable, KindDraining,
			"server is draining")
	case isContextErr(err):
		return apiErrorf(http.StatusGatewayTimeout, KindTimeout,
			"request deadline exceeded: %v", err)
	default:
		return apiErrorf(http.StatusInternalServerError, KindInternal, "%v", err)
	}
}
