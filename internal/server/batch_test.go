package server

// Batched request path coverage: the framing of the /v1/batch stream, the
// byte-identity contract against the single-request endpoints (the property
// that makes batching transparent to adopt), partial-failure isolation,
// admission accounting, deadlines, and the warm-element allocation budget.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"sentinel/internal/obs"
	"sentinel/internal/workload"
)

// batchFrame is one parsed element of a /v1/batch response stream.
type batchFrame struct {
	status  int
	payload []byte
}

// parseBatchStream decodes the element-per-element framing: one
// {"index","status","bytes"} header line followed by exactly that many
// payload bytes, repeated, then a {"done":true,"elements":N} trailer.
func parseBatchStream(t *testing.T, body []byte) map[int]batchFrame {
	t.Helper()
	frames := map[int]batchFrame{}
	rest := body
	for {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			t.Fatalf("unterminated header line: %q", rest)
		}
		line, after := rest[:nl+1], rest[nl+1:]
		var hdr struct {
			Index    *int `json:"index"`
			Status   int  `json:"status"`
			Bytes    int  `json:"bytes"`
			Done     bool `json:"done"`
			Elements int  `json:"elements"`
		}
		if err := json.Unmarshal(line, &hdr); err != nil {
			t.Fatalf("bad header line %q: %v", line, err)
		}
		if hdr.Done {
			if len(after) != 0 {
				t.Fatalf("%d bytes after the trailer: %q", len(after), after)
			}
			if hdr.Elements != len(frames) {
				t.Fatalf("trailer elements = %d, parsed %d", hdr.Elements, len(frames))
			}
			return frames
		}
		if hdr.Index == nil {
			t.Fatalf("element header without index: %q", line)
		}
		if len(after) < hdr.Bytes {
			t.Fatalf("element %d: payload truncated (%d of %d bytes)", *hdr.Index, len(after), hdr.Bytes)
		}
		if _, dup := frames[*hdr.Index]; dup {
			t.Fatalf("element %d emitted twice", *hdr.Index)
		}
		frames[*hdr.Index] = batchFrame{status: hdr.Status,
			payload: append([]byte(nil), after[:hdr.Bytes]...)}
		rest = after[hdr.Bytes:]
	}
}

// testBatchItem mirrors the request-side element shape.
type testBatchItem struct {
	Op      string          `json:"op,omitempty"`
	Request json.RawMessage `json:"request"`
}

func postBatch(t *testing.T, url string, items []testBatchItem) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(items)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/batch", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestBatchByteIdenticalToSingleEndpoints is the core contract across every
// workload: for each benchmark, a batched simulate and a batched schedule
// element must return byte-for-byte what the single-request endpoints
// return for the same body. The batch runs on its own server (all-cold) and
// again warm, so identity holds on both serving tiers; the singles run on a
// second, independent server so neither side can serve the other's cache.
func TestBatchByteIdenticalToSingleEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates every workload")
	}
	_, single := newTestServer(t, Config{Workers: 4})
	_, batched := newTestServer(t, Config{Workers: 4})

	var items []testBatchItem
	var want [][]byte
	for _, b := range workload.All() {
		simBody := fmt.Sprintf(`{"workload":%q,"model":"sentinel+stores","width":8}`, b.Name)
		schedBody := fmt.Sprintf(`{"workload":%q,"model":"sentinel","width":4}`, b.Name)
		items = append(items,
			testBatchItem{Request: json.RawMessage(simBody)},
			testBatchItem{Op: "schedule", Request: json.RawMessage(schedBody)})
		resp, out := postRawURL(t, single.URL+"/v1/simulate", simBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s single simulate: %d %s", b.Name, resp.StatusCode, out)
		}
		want = append(want, out)
		resp, out = postRawURL(t, single.URL+"/v1/schedule", schedBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s single schedule: %d %s", b.Name, resp.StatusCode, out)
		}
		want = append(want, out)
	}

	for _, tier := range []string{"cold", "warm"} {
		resp, body := postBatch(t, batched.URL, items)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s batch: %d %s", tier, resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != batchContentType {
			t.Errorf("Content-Type = %q, want %q", ct, batchContentType)
		}
		frames := parseBatchStream(t, body)
		if len(frames) != len(items) {
			t.Fatalf("%s batch: %d elements, want %d", tier, len(frames), len(items))
		}
		for i := range items {
			fr, ok := frames[i]
			if !ok {
				t.Fatalf("%s batch: element %d missing", tier, i)
			}
			if fr.status != http.StatusOK {
				t.Errorf("%s element %d: status %d: %s", tier, i, fr.status, fr.payload)
			}
			if !bytes.Equal(fr.payload, want[i]) {
				t.Errorf("%s element %d: payload differs from single endpoint\nbatch:  %s\nsingle: %s",
					tier, i, fr.payload, want[i])
			}
		}
	}
}

// postRawURL posts exact body bytes over the network (postJSON would
// re-marshal them; the handler-level postRaw skips the wire).
func postRawURL(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestBatchPartialFailure: one fault-injected element among 63 good ones
// yields 63 successes plus one tagged structured 422 — byte-identical to
// what the single endpoint returns for the same fault — never a dropped or
// failed batch.
func TestBatchPartialFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("uncached fault simulation")
	}
	s, batched := newTestServer(t, Config{Workers: 4})
	_, single := newTestServer(t, Config{Workers: 4})

	seg := faultSegment(t, s, mustWorkload(t, "cmp"))
	faultBody := fmt.Sprintf(`{"workload":"cmp","model":"sentinel","width":8,"fault_segment":%q}`, seg)
	const faultIdx = 40

	all := workload.All()
	items := make([]testBatchItem, 64)
	for i := range items {
		if i == faultIdx {
			items[i] = testBatchItem{Request: json.RawMessage(faultBody)}
			continue
		}
		b := all[i%len(all)]
		width := 2 << (i / len(all) % 3) // 2, 4, 8: distinct cells per repeat
		items[i] = testBatchItem{Request: json.RawMessage(
			fmt.Sprintf(`{"workload":%q,"model":"sentinel","width":%d}`, b.Name, width))}
	}

	resp, body := postBatch(t, batched.URL, items)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with one faulted element must still be a 200 frame: %d %s", resp.StatusCode, body)
	}
	frames := parseBatchStream(t, body)
	if len(frames) != 64 {
		t.Fatalf("%d elements, want 64", len(frames))
	}
	for i, fr := range frames {
		if i == faultIdx {
			continue
		}
		if fr.status != http.StatusOK {
			t.Errorf("element %d: status %d, want 200: %s", i, fr.status, fr.payload)
		}
	}
	fault := frames[faultIdx]
	if fault.status != http.StatusUnprocessableEntity {
		t.Fatalf("faulted element: status %d, want 422: %s", fault.status, fault.payload)
	}
	ae := decodeError(t, fault.payload)
	if ae.Kind != KindSentinelException {
		t.Errorf("faulted element kind = %q, want %q", ae.Kind, KindSentinelException)
	}
	singleResp, singleBody := postRawURL(t, single.URL+"/v1/simulate", faultBody)
	if singleResp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("single fault request: %d %s", singleResp.StatusCode, singleBody)
	}
	if !bytes.Equal(fault.payload, singleBody) {
		t.Errorf("faulted element payload differs from single endpoint\nbatch:  %s\nsingle: %s",
			fault.payload, singleBody)
	}
}

// TestBatchElementErrorsAreTagged: undecodable and unknown-workload
// elements fail alone, with the endpoint's own envelope, inside a 200
// frame.
func TestBatchElementErrorsAreTagged(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	items := []testBatchItem{
		{Request: json.RawMessage(`{"workload":"cmp","model":"sentinel","width":8}`)},
		{Request: json.RawMessage(`{"workload":"no-such-kernel"}`)},
		{Request: json.RawMessage(`{"not_a_field":1}`)},
		{Request: nil}, // missing request body entirely
	}
	resp, body := postBatch(t, ts.URL, items)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", resp.StatusCode, body)
	}
	frames := parseBatchStream(t, body)
	wantStatus := map[int]int{
		0: http.StatusOK,
		1: http.StatusNotFound,
		2: http.StatusBadRequest,
		3: http.StatusBadRequest,
	}
	wantKind := map[int]string{1: KindUnknownWorkload, 2: KindBadRequest, 3: KindBadRequest}
	for i, want := range wantStatus {
		fr, ok := frames[i]
		if !ok {
			t.Fatalf("element %d missing", i)
		}
		if fr.status != want {
			t.Errorf("element %d: status %d, want %d: %s", i, fr.status, want, fr.payload)
		}
		if kind, ok := wantKind[i]; ok {
			if ae := decodeError(t, fr.payload); ae.Kind != kind {
				t.Errorf("element %d: kind %q, want %q", i, ae.Kind, kind)
			}
		}
	}
}

// TestBatchRequestValidation: an empty array, an oversized batch, an
// unknown op and a non-array body are batch-level 400s.
func TestBatchRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		body string
	}{
		{"empty array", `[]`},
		{"not an array", `{"op":"simulate"}`},
		{"unknown op", `[{"op":"divine","request":{}}]`},
		{"oversized", "[" + strings.Repeat(`{"request":{}},`, maxBatchElems) + `{"request":{}}]`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := postRawURL(t, ts.URL+"/v1/batch", c.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
			}
			if ae := decodeError(t, body); ae.Kind != KindBadRequest {
				t.Errorf("kind = %q, want %q", ae.Kind, KindBadRequest)
			}
		})
	}
}

// TestBatchOneAdmissionSlot: a batch occupies exactly one admission slot,
// so a server with MaxInFlight=1 and no queue still completes a 32-element
// batch — if each element charged admission, the batch would deadlock or
// overflow into 429s.
func TestBatchOneAdmissionSlot(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, MaxInFlight: 1, MaxQueue: 0})
	all := workload.All()
	items := make([]testBatchItem, 32)
	for i := range items {
		items[i] = testBatchItem{Request: json.RawMessage(
			fmt.Sprintf(`{"workload":%q,"model":"sentinel","width":8}`, all[i%len(all)].Name))}
	}
	resp, body := postBatch(t, ts.URL, items)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", resp.StatusCode, body)
	}
	frames := parseBatchStream(t, body)
	for i := range items {
		if frames[i].status != http.StatusOK {
			t.Errorf("element %d: status %d: %s", i, frames[i].status, frames[i].payload)
		}
	}
}

// TestBatchDeadlineFillsRemainingElements: a batch whose deadline expires
// mid-frame still delivers every promised element — the unrun tail carries
// the structured timeout envelope, and the frame terminates cleanly.
func TestBatchDeadlineFillsRemainingElements(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	all := workload.All()
	items := make([]testBatchItem, 64)
	for i := range items {
		// full:true forces an uncached simulation per element; 64 of them
		// across every workload take well over the 1ms deadline, so the
		// batch always expires mid-frame.
		width := 2 << (i / len(all) % 3)
		items[i] = testBatchItem{Request: json.RawMessage(
			fmt.Sprintf(`{"workload":%q,"model":"sentinel","width":%d,"full":true}`, all[i%len(all)].Name, width))}
	}
	b, err := json.Marshal(items)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/batch?timeout_ms=1", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (the frame started streaming): %s", resp.StatusCode, body)
	}
	frames := parseBatchStream(t, body)
	if len(frames) != len(items) {
		t.Fatalf("%d elements, want all %d (timed-out elements must be filled in)", len(frames), len(items))
	}
	timedOut := 0
	for i, fr := range frames {
		switch fr.status {
		case http.StatusOK:
		case http.StatusGatewayTimeout:
			timedOut++
			if ae := decodeError(t, fr.payload); ae.Kind != KindTimeout {
				t.Errorf("element %d: kind %q, want %q", i, ae.Kind, KindTimeout)
			}
		default:
			t.Errorf("element %d: status %d, want 200 or 504: %s", i, fr.status, fr.payload)
		}
	}
	if timedOut == 0 {
		t.Error("no element timed out under a 1ms deadline over 8 full simulations")
	}
}

// TestBatchDrainingRefused: a draining server refuses new batches with the
// same 503 envelope as single requests.
func TestBatchDrainingRefused(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.StartDrain()
	resp, body := postBatch(t, ts.URL, []testBatchItem{
		{Request: json.RawMessage(`{"workload":"cmp"}`)}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if ae := decodeError(t, body); ae.Kind != KindDraining {
		t.Errorf("kind = %q, want %q", ae.Kind, KindDraining)
	}
}

// TestBatchCrossWarmsSingleEndpoint: a batched element's cache fill is
// keyed exactly like a single request with the same body bytes, so a batch
// warms the single-request raw fast path (and vice versa).
func TestBatchCrossWarmsSingleEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	body := `{"workload":"wc","model":"sentinel","width":8}`
	resp, out := postBatch(t, ts.URL, []testBatchItem{{Request: json.RawMessage(body)}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, out)
	}
	if s.resp.Len() == 0 {
		t.Fatal("batched element did not fill the response cache")
	}
	hitsBefore := s.resp.hits.Load()
	singleResp, singleBody := postRawURL(t, ts.URL+"/v1/simulate", body)
	if singleResp.StatusCode != http.StatusOK {
		t.Fatalf("single: %d %s", singleResp.StatusCode, singleBody)
	}
	if s.resp.hits.Load() == hitsBefore {
		t.Error("single request after an identical batched element was not a cache hit")
	}
	frames := parseBatchStream(t, out)
	if !bytes.Equal(frames[0].payload, singleBody) {
		t.Errorf("cross-warmed bytes differ\nbatch:  %s\nsingle: %s", frames[0].payload, singleBody)
	}
}

// discardRW is a ResponseWriter that counts nothing and keeps nothing —
// the allocation benchmark must measure the batch path, not the recorder.
type discardRW struct{ hdr http.Header }

func (d *discardRW) Header() http.Header {
	if d.hdr == nil {
		d.hdr = make(http.Header, 2)
	}
	return d.hdr
}
func (d *discardRW) WriteHeader(int)             {}
func (d *discardRW) Write(p []byte) (int, error) { return len(p), nil }

// TestBatchWarmAllocs pins the satellite budget: a warm batch element —
// probe, cache hit, framing — costs at most 2 allocations, measured over a
// full 64-element handleBatch call (the per-call constant is charged to the
// same budget). Skipped under the race detector, which adds allocations.
// TestBatchCoalescesDuplicateElements: byte-identical cold elements in one
// frame run once and share the leader's envelope — every duplicate still
// gets its own tagged frame with the exact single-endpoint bytes — while
// full:true duplicates (the escape hatch past every cache) are exempt and
// each run individually. The coalesced count is observable as a counter.
func TestBatchCoalescesDuplicateElements(t *testing.T) {
	reg := obs.NewRegistry()
	_, batched := newTestServer(t, Config{Workers: 2, Registry: reg, RespCacheEntries: -1})
	_, single := newTestServer(t, Config{Workers: 2})

	bodyA := `{"workload":"cmp","model":"sentinel+stores","width":8}`
	bodyB := `{"workload":"wc","model":"sentinel","width":4}`
	bodyFull := `{"workload":"cmp","model":"sentinel","width":4,"full":true}`
	var items []testBatchItem
	for _, b := range []string{bodyA, bodyB, bodyA, bodyFull, bodyA, bodyB, bodyFull} {
		items = append(items, testBatchItem{Request: json.RawMessage(b)})
	}

	resp, out := postBatch(t, batched.URL, items)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, out)
	}
	frames := parseBatchStream(t, out)
	if len(frames) != len(items) {
		t.Fatalf("got %d elements, want %d", len(frames), len(items))
	}
	for i, body := range []string{bodyA, bodyB, bodyA, bodyFull, bodyA, bodyB, bodyFull} {
		f, ok := frames[i]
		if !ok {
			t.Fatalf("element %d missing from stream", i)
		}
		if f.status != http.StatusOK {
			t.Fatalf("element %d status %d: %s", i, f.status, f.payload)
		}
		sresp, sout := postRawURL(t, single.URL+"/v1/simulate", body)
		if sresp.StatusCode != http.StatusOK {
			t.Fatalf("single %d: %d %s", i, sresp.StatusCode, sout)
		}
		if !bytes.Equal(f.payload, sout) {
			t.Errorf("element %d bytes differ from single endpoint\nbatch:  %s\nsingle: %s",
				i, f.payload, sout)
		}
	}

	// bodyA ×3 and bodyB ×2 coalesce to one run each (1+2 twins); the two
	// full:true duplicates must not.
	if got := reg.Counter("server.batch_coalesced").Value(); got != 3 {
		t.Errorf("batch_coalesced = %d, want 3", got)
	}
}

// BenchmarkServeBatch drives handleBatch in-process with a 64-element frame
// over the load-client workload mix. The cold variant disables the response
// cache, so every element runs the full single-endpoint handler against
// warm artifacts — the amortization target of the batched cold path.
func BenchmarkServeBatch(b *testing.B) {
	items := make([]testBatchItem, 64)
	for i := range items {
		items[i] = testBatchItem{Request: json.RawMessage(fmt.Sprintf(
			`{"workload":%q,"model":"sentinel+stores","width":8}`,
			[]string{"cmp", "wc", "grep", "eqntott"}[i%4]))}
	}
	body, err := json.Marshal(items)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"warm64", Config{Workers: 1}},
		{"cold64", Config{Workers: 1, RespCacheEntries: -1}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s := New(tc.cfg)
			run := func() {
				w := &discardRW{}
				r, _ := http.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body))
				if err := s.handleBatch(w, r); err != nil {
					b.Fatal(err)
				}
			}
			run() // warm artifacts (and, where enabled, the cache)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
		})
	}
}

func TestBatchWarmAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	if testing.Short() {
		t.Skip("primes 64 cold elements")
	}
	s := New(Config{Workers: 1})
	all := workload.All()
	items := make([]testBatchItem, 64)
	for i := range items {
		width := 2 << (i / len(all) % 3)
		items[i] = testBatchItem{Request: json.RawMessage(
			fmt.Sprintf(`{"workload":%q,"model":"sentinel","width":%d}`, all[i%len(all)].Name, width))}
	}
	body, err := json.Marshal(items)
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		w := &discardRW{}
		r, _ := http.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body))
		if err := s.handleBatch(w, r); err != nil {
			t.Fatal(err)
		}
	}
	run() // prime: all 64 elements cold → respcache rows filled
	allocs := testing.AllocsPerRun(50, run)
	if budget := float64(2 * len(items)); allocs > budget {
		t.Errorf("warm 64-element batch = %.1f allocs (%.2f/element), budget %.0f (2/element)",
			allocs, allocs/float64(len(items)), budget)
	}
}
