package server

// The source-program compile cache. Workload cells are cached and coalesced
// by the eval.Runner's singleflight caches; inline-source programs get the
// same treatment here, keyed by content hash so identical submissions —
// concurrent or repeated — are assembled, formed and scheduled exactly once
// per machine configuration.

import (
	"context"
	"crypto/sha256"
	"sync"

	"sentinel/internal/core"
	"sentinel/internal/machine"
	"sentinel/internal/mem"
	"sentinel/internal/obs"
	"sentinel/internal/prog"
	"sentinel/internal/sim"
)

// sourceKey identifies one compiled source program: content hash × machine
// configuration × formation on/off.
type sourceKey struct {
	sum  [sha256.Size]byte
	md   machine.Desc
	form bool
}

// compiled is the read-only compile artifact of one source program; mem is
// the pristine input image, cloned per simulation.
type compiled struct {
	prog  *prog.Program
	index *sim.ProgIndex
	stats core.Stats
	mem   *mem.Memory
	ref   *prog.Result
}

type sourceEntry struct {
	done chan struct{}
	val  *compiled
	err  error
}

// sourceCache is a capacity-capped singleflight memo. When the map exceeds
// cap it is dropped wholesale — the artifacts are deterministic, so a cold
// recompute is only a latency cost, and wholesale reset keeps the
// bookkeeping trivial under concurrent fills.
type sourceCache struct {
	mu  sync.Mutex
	m   map[sourceKey]*sourceEntry
	cap int
}

func newSourceCache(capacity int) *sourceCache {
	if capacity < 1 {
		capacity = 1
	}
	return &sourceCache{m: map[sourceKey]*sourceEntry{}, cap: capacity}
}

func (c *sourceCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// get returns the cached compile of k, computing it via fn on first use.
// Errors are cached alongside values (a malformed program stays malformed).
// A caller whose context expires while another goroutine compiles unblocks
// with the context's error.
func (c *sourceCache) get(ctx context.Context, k sourceKey, fn func() (*compiled, error)) (*compiled, error) {
	c.mu.Lock()
	if e, ok := c.m[k]; ok {
		c.mu.Unlock()
		// Completed entries serve without touching the request record; only
		// a genuine wait on another request's compile earns a span.
		select {
		case <-e.done:
			return e.val, e.err
		default:
		}
		rd := obs.RecordFrom(ctx)
		rd.Start(obs.StageSFWait, obs.ArgSources)
		select {
		case <-e.done:
			rd.End()
			return e.val, e.err
		case <-ctx.Done():
			rd.End()
			return nil, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	if len(c.m) >= c.cap {
		c.m = map[sourceKey]*sourceEntry{}
	}
	e := &sourceEntry{done: make(chan struct{})}
	c.m[k] = e
	c.mu.Unlock()
	rd := obs.RecordFrom(ctx)
	rd.Start(obs.StageSFOwn, obs.ArgSources)
	e.val, e.err = fn()
	rd.End()
	close(e.done)
	return e.val, e.err
}
