package server

// Per-request state pools. Every /v1 request used to allocate an encode
// buffer, a JSON encoder, and its request/response structs; under load that
// is pure allocator traffic on the hot path, paid again on every repeat of
// an already-answered request. The pools below recycle all of it. Encoders
// are pooled together with their buffer (a json.Encoder is bound to its
// writer at construction and remembers a write error forever, so a pair
// that ever failed is dropped rather than recycled).

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"
)

// jsonEnc is a reusable encode buffer + encoder pair. The encoder writes
// into buf and is configured once with the API's indentation, so pooled and
// fresh pairs produce byte-identical output.
type jsonEnc struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	e := &jsonEnc{}
	e.enc = json.NewEncoder(&e.buf)
	e.enc.SetIndent("", "  ")
	return e
}}

// getEnc returns a ready pair with an empty buffer.
func getEnc() *jsonEnc {
	e := encPool.Get().(*jsonEnc)
	e.buf.Reset()
	return e
}

// putEnc recycles a pair whose last Encode succeeded. Callers that hit an
// encode error must drop the pair instead: json.Encoder latches its first
// error and would fail every future encode.
func putEnc(e *jsonEnc) { encPool.Put(e) }

// bodyScratch is the pooled state for slurping a request body on the v1
// fast path: the accumulation buffer, the limit reader bounding it, and a
// bytes.Reader handing the bytes back to the normal decode path. It is
// itself the replacement r.Body (Read delegates to rd, Close is a no-op —
// the HTTP server closes the original body on its own), so a warm request
// allocates nothing while reading, keying and restoring its body.
type bodyScratch struct {
	buf bytes.Buffer
	lim io.LimitedReader
	rd  bytes.Reader
}

func (s *bodyScratch) Read(p []byte) (int, error) { return s.rd.Read(p) }
func (s *bodyScratch) Close() error               { return nil }

var bodyScratchPool = sync.Pool{New: func() any { return new(bodyScratch) }}

func getBodyScratch() *bodyScratch {
	s := bodyScratchPool.Get().(*bodyScratch)
	s.buf.Reset()
	return s
}

// putBodyScratch recycles the scratch. Callers must be done with the bytes
// AND with any r.Body aliasing it — in practice: call at v1-wrapper exit.
func putBodyScratch(s *bodyScratch) {
	s.lim.R = nil
	s.rd.Reset(nil)
	bodyScratchPool.Put(s)
}

// frameBuf is the pooled encode scratch for batch framing: element header
// lines on the /v1/batch chunk stream and wire frame headers alike are
// appended into b and written out in one Write, so a warm batch element
// performs no per-element allocation on its way to the socket.
type frameBuf struct{ b []byte }

var frameBufPool = sync.Pool{New: func() any { return &frameBuf{b: make([]byte, 0, 512)} }}

func getFrameBuf() *frameBuf { return frameBufPool.Get().(*frameBuf) }

// putFrameBuf recycles the scratch; buffers grown past any sane header size
// (an error-frame message is the largest variable part) are dropped so one
// pathological frame cannot pin memory in the pool.
func putFrameBuf(f *frameBuf) {
	if cap(f.b) > 64<<10 {
		return
	}
	frameBufPool.Put(f)
}

// Request/response struct pools. Gets return a zeroed value (the previous
// request's strings and slices must never leak into this one); puts are
// unconditional — the structs hold no resources, only garbage.

var simReqPool = sync.Pool{New: func() any { return new(SimulateRequest) }}

func getSimReq() *SimulateRequest {
	req := simReqPool.Get().(*SimulateRequest)
	*req = SimulateRequest{}
	return req
}

func putSimReq(req *SimulateRequest) { simReqPool.Put(req) }

var schedReqPool = sync.Pool{New: func() any { return new(ScheduleRequest) }}

func getSchedReq() *ScheduleRequest {
	req := schedReqPool.Get().(*ScheduleRequest)
	*req = ScheduleRequest{}
	return req
}

func putSchedReq(req *ScheduleRequest) { schedReqPool.Put(req) }

var simRespPool = sync.Pool{New: func() any { return new(SimulateResponse) }}

func getSimResp() *SimulateResponse {
	resp := simRespPool.Get().(*SimulateResponse)
	*resp = SimulateResponse{}
	return resp
}

func putSimResp(resp *SimulateResponse) { simRespPool.Put(resp) }

var schedRespPool = sync.Pool{New: func() any { return new(ScheduleResponse) }}

func getSchedResp() *ScheduleResponse {
	resp := schedRespPool.Get().(*ScheduleResponse)
	*resp = ScheduleResponse{}
	return resp
}

func putSchedResp(resp *ScheduleResponse) { schedRespPool.Put(resp) }
