package eval

import (
	"strings"
	"testing"

	"sentinel/internal/machine"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

func bench(t *testing.T, name string) workload.Benchmark {
	t.Helper()
	b, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("workload %q missing", name)
	}
	return b
}

func TestMeasureVerifiesResults(t *testing.T) {
	c, err := Measure(bench(t, "wc"), machine.Base(4, machine.Sentinel), superblock.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycles <= 0 || c.Instrs <= 0 {
		t.Errorf("cell = %+v", c)
	}
}

func TestRunComputesSpeedups(t *testing.T) {
	r, err := Run(bench(t, "grep"),
		[]machine.Model{machine.Restricted, machine.Sentinel},
		[]int{2, 8}, superblock.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Base.Cycles <= 0 {
		t.Fatal("no base measurement")
	}
	s8 := r.Speedup(machine.Sentinel, 8)
	r8 := r.Speedup(machine.Restricted, 8)
	if s8 <= 1 || r8 <= 1 {
		t.Errorf("speedups = S %.2f, R %.2f; both must exceed the issue-1 base", s8, r8)
	}
	if s8 <= r8 {
		t.Errorf("grep: sentinel (%.2f) must beat restricted (%.2f) at issue 8", s8, r8)
	}
}

func TestGroupHelpers(t *testing.T) {
	rs := []*BenchResult{
		{Name: "a", Numeric: false, Cells: map[Key]Cell{
			{machine.Sentinel, 8}:   {Speedup: 3.0},
			{machine.Restricted, 8}: {Speedup: 2.0},
		}},
		{Name: "b", Numeric: false, Cells: map[Key]Cell{
			{machine.Sentinel, 8}:   {Speedup: 2.0},
			{machine.Restricted, 8}: {Speedup: 2.0},
		}},
		{Name: "n", Numeric: true, Cells: map[Key]Cell{
			{machine.Sentinel, 8}:   {Speedup: 4.0},
			{machine.Restricted, 8}: {Speedup: 2.0},
		}},
	}
	if got := GroupAverage(rs, false, machine.Sentinel, 8); got != 2.5 {
		t.Errorf("non-numeric average = %v, want 2.5", got)
	}
	if got := GroupAverage(rs, true, machine.Sentinel, 8); got != 4.0 {
		t.Errorf("numeric average = %v, want 4.0", got)
	}
	// Improvements: a: +50%, b: 0% -> mean 25%.
	if got := GroupImprovement(rs, false, machine.Sentinel, machine.Restricted, 8); got != 25 {
		t.Errorf("improvement = %v, want 25", got)
	}
}

func TestFigureRendering(t *testing.T) {
	models := []machine.Model{machine.Restricted, machine.General,
		machine.Sentinel, machine.SentinelStores}
	var rs []*BenchResult
	for _, name := range []string{"grep", "matrix300"} {
		r, err := Run(bench(t, name), models, Widths, superblock.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, r)
	}
	f4 := Figure4(rs)
	for _, want := range []string{"grep", "matrix300", "R@2", "S@8", "improvement"} {
		if !strings.Contains(f4, want) {
			t.Errorf("Figure4 missing %q:\n%s", want, f4)
		}
	}
	f5 := Figure5(rs)
	for _, want := range []string{"G@4", "T@8", "T over S"} {
		if !strings.Contains(f5, want) {
			t.Errorf("Figure5 missing %q:\n%s", want, f5)
		}
	}
	ov := SentinelOverheadTable(rs, 8)
	if !strings.Contains(ov, "grep") || !strings.Contains(ov, "checks") {
		t.Errorf("overhead table malformed:\n%s", ov)
	}
}

func TestTable3Rendering(t *testing.T) {
	s := Table3()
	for _, want := range []string{"Int ALU", "memory load", "FP divide", "10", "1 / 1 slot"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table3 missing %q:\n%s", want, s)
		}
	}
}

// TestHeadlineShapes asserts the paper's qualitative results hold on a
// representative subset (the full sweep runs in cmd/paperfigs and the
// benchmark harness).
func TestHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full compile+simulate sweep")
	}
	models := []machine.Model{machine.Restricted, machine.General,
		machine.Sentinel, machine.SentinelStores}
	get := func(name string) *BenchResult {
		r, err := Run(bench(t, name), models, []int{2, 8}, superblock.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	// Load-dependent branches: sentinel clearly beats restricted at 8.
	for _, name := range []string{"wc", "lex", "grep", "tomcatv"} {
		r := get(name)
		if s, rr := r.Speedup(machine.Sentinel, 8), r.Speedup(machine.Restricted, 8); s < rr*1.15 {
			t.Errorf("%s: S@8 %.2f not clearly above R@8 %.2f", name, s, rr)
		}
	}
	// Few-branch numeric code: restricted is already close.
	for _, name := range []string{"fpppp", "matrix300"} {
		r := get(name)
		if s, rr := r.Speedup(machine.Sentinel, 8), r.Speedup(machine.Restricted, 8); s > rr*1.15 {
			t.Errorf("%s: S@8 %.2f should be close to R@8 %.2f (few branches)", name, s, rr)
		}
	}
	// Sentinel ~ general percolation at issue 8 (sentinels ride free slots).
	for _, name := range []string{"grep", "wc", "espresso"} {
		r := get(name)
		g, s := r.Speedup(machine.General, 8), r.Speedup(machine.Sentinel, 8)
		if s < g*0.97 {
			t.Errorf("%s: S@8 %.2f must be within 3%% of G@8 %.2f", name, s, g)
		}
	}
	// grep at issue 2: the paper's worst case for sentinel vs general.
	r := get("grep")
	if g2, s2 := r.Speedup(machine.General, 2), r.Speedup(machine.Sentinel, 2); s2 > g2 {
		t.Errorf("grep: S@2 %.2f should not beat G@2 %.2f (check slot pressure)", s2, g2)
	}
}

// TestSharingAblationDirection: disabling shared sentinels may only add
// checks, and may not speed programs up at issue 2.
func TestSharingAblationDirection(t *testing.T) {
	for _, name := range []string{"grep", "tomcatv"} {
		b := bench(t, name)
		shared, err := Measure(b, machine.Base(2, machine.Sentinel), superblock.Options{})
		if err != nil {
			t.Fatal(err)
		}
		noshare, err := Measure(b, machine.Base(2, machine.Sentinel).WithoutSharedSentinels(), superblock.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if noshare.Stats.Sentinels < shared.Stats.Sentinels {
			t.Errorf("%s: no-sharing must not insert fewer checks (%d vs %d)",
				name, noshare.Stats.Sentinels, shared.Stats.Sentinels)
		}
		if noshare.Cycles < shared.Cycles {
			t.Errorf("%s: no-sharing unexpectedly faster (%d vs %d cycles)",
				name, noshare.Cycles, shared.Cycles)
		}
	}
}
