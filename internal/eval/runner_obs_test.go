package eval

import (
	"context"
	"runtime"
	"testing"
	"time"

	"sentinel/internal/machine"
	"sentinel/internal/obs"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

func testRecorder() *obs.Recorder {
	// Retain nothing automatically; tests force retention with Finish(500).
	return obs.NewRecorder(obs.RecorderConfig{Entries: 16, Slow: time.Hour, Every: -1})
}

func spanStages(v *obs.RecordView) map[string]int {
	out := map[string]int{}
	for _, s := range v.Spans {
		out[s.Stage]++
	}
	return out
}

// A cold MeasureCtx with a request record attached must produce the full
// pipeline waterfall — singleflight ownership plus compile, schedule and
// simulate stages — and a warm repeat of the same cell must record nothing.
func TestMeasureCtxSpans(t *testing.T) {
	r := NewRunner(1)
	rec := testRecorder()
	b, ok := workload.ByName("cmp")
	if !ok {
		t.Fatal("no cmp workload")
	}
	md := machine.Base(8, machine.SentinelStores)

	rd := rec.Begin("/test")
	ctx := obs.ContextWithRecord(context.Background(), rd)
	if _, err := r.MeasureCtx(ctx, b, md, superblock.Options{}); err != nil {
		t.Fatal(err)
	}
	rd.Finish(500) // force retention
	cold := rec.Snapshot()[0]
	stages := spanStages(cold)
	for _, want := range []string{"sfown", "compile", "schedule", "simulate"} {
		if stages[want] == 0 {
			t.Errorf("cold measure missing %q span; got %+v", want, cold.Spans)
		}
	}
	// The cells-flight ownership span must enclose the pipeline: some span
	// with arg "cells" is a parent of the simulate span.
	var cellsOwn = -1
	for i, s := range cold.Spans {
		if s.Stage == "sfown" && s.Arg == "cells" {
			cellsOwn = i
		}
	}
	if cellsOwn < 0 {
		t.Fatalf("no sfown/cells span: %+v", cold.Spans)
	}
	for _, s := range cold.Spans {
		if s.Stage == "simulate" && s.Parent != cellsOwn {
			t.Errorf("simulate span parent = %d, want %d (sfown/cells)", s.Parent, cellsOwn)
		}
	}

	rd2 := rec.Begin("/test")
	ctx2 := obs.ContextWithRecord(context.Background(), rd2)
	if _, err := r.MeasureCtx(ctx2, b, md, superblock.Options{}); err != nil {
		t.Fatal(err)
	}
	rd2.Finish(500)
	warm := rec.Snapshot()[0]
	if warm.Seq == cold.Seq {
		t.Fatal("snapshot did not return the warm record first")
	}
	if len(warm.Spans) != 0 {
		t.Errorf("warm measure recorded spans: %+v", warm.Spans)
	}
}

// A caller that blocks on another goroutine's in-flight computation gets a
// wait span labeled with the flight's cache arg.
func TestFlightWaitSpan(t *testing.T) {
	f := &flight[int, int]{arg: obs.ArgCells}
	rec := testRecorder()
	block := make(chan struct{})
	started := make(chan struct{})
	ownerDone := make(chan struct{})
	go func() {
		defer close(ownerDone)
		f.getCtx(context.Background(), 1, func() (int, error) {
			close(started)
			<-block
			return 7, nil
		})
	}()
	<-started

	rd := rec.Begin("/test")
	ctx := obs.ContextWithRecord(context.Background(), rd)
	waiterDone := make(chan int, 1)
	go func() {
		v, err := f.getCtx(ctx, 1, func() (int, error) { return 0, nil })
		if err != nil {
			t.Error(err)
		}
		waiterDone <- v
	}()
	// Wait until the second caller has registered its hit, then release.
	for f.hits.Load() == 0 {
		runtime.Gosched()
	}
	close(block)
	if v := <-waiterDone; v != 7 {
		t.Fatalf("waiter got %d, want 7", v)
	}
	<-ownerDone
	rd.Finish(500)
	snap := rec.Snapshot()[0]
	found := false
	for _, s := range snap.Spans {
		if s.Stage == "sfwait" && s.Arg == "cells" {
			found = true
		}
	}
	if !found {
		t.Errorf("no sfwait/cells span: %+v", snap.Spans)
	}

	// A hit on the now-completed entry must record nothing.
	rd2 := rec.Begin("/test")
	ctx2 := obs.ContextWithRecord(context.Background(), rd2)
	if v, err := f.getCtx(ctx2, 1, func() (int, error) { return 0, nil }); err != nil || v != 7 {
		t.Fatalf("completed hit = %d, %v", v, err)
	}
	rd2.Finish(500)
	if got := rec.Snapshot()[0]; len(got.Spans) != 0 {
		t.Errorf("completed hit recorded spans: %+v", got.Spans)
	}
}

// Fan-out must strip the record from the context: the record is
// single-goroutine and RunBenchmarksCtx dispatches cells across workers.
func TestParallelForStripsRecord(t *testing.T) {
	r := NewRunner(4)
	rec := testRecorder()
	rd := rec.Begin("/test")
	ctx := obs.ContextWithRecord(context.Background(), rd)
	b, _ := workload.ByName("cmp")
	if _, err := r.RunBenchmarksCtx(ctx, []workload.Benchmark{b},
		[]machine.Model{machine.SentinelStores}, []int{2, 4, 8}, superblock.Options{}); err != nil {
		t.Fatal(err)
	}
	rd.Finish(500)
	if got := rec.Snapshot()[0]; len(got.Spans) != 0 {
		t.Errorf("fan-out leaked %d spans into the request record: %+v", len(got.Spans), got.Spans)
	}
}
