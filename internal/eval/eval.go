// Package eval is the experiment harness that regenerates the paper's
// evaluation: Figure 4 (sentinel scheduling vs restricted percolation) and
// Figure 5 (general percolation vs sentinel scheduling vs sentinel
// scheduling with speculative stores), for issue rates 2, 4 and 8, over the
// 17 benchmark kernels — plus the extension experiments (recovery-constraint
// cost, store-buffer size sweep, sentinel-overhead counts).
//
// As in the paper, the base machine for all speedup calculations has an
// issue rate of 1 and supports the restricted percolation model (§5.2).
package eval

import (
	"errors"
	"fmt"

	"sentinel/internal/core"
	"sentinel/internal/machine"
	"sentinel/internal/obs"
	"sentinel/internal/prog"
	"sentinel/internal/sim"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

// Widths are the issue rates evaluated in the paper's figures.
var Widths = []int{2, 4, 8}

// Sentinel errors for the Measure invariant, so callers can classify
// verification failures with errors.Is instead of string matching. Every
// wrapping error still carries the benchmark name and machine configuration.
var (
	// ErrChecksumMismatch: a scheduled run's final memory image differs
	// from the reference interpreter's.
	ErrChecksumMismatch = errors.New("memory checksum mismatch")
	// ErrOutputMismatch: a scheduled run's output stream differs from the
	// reference interpreter's.
	ErrOutputMismatch = errors.New("output mismatch")
)

// Cell is one measurement: a benchmark compiled and simulated on one
// machine configuration.
type Cell struct {
	Cycles  int64
	Instrs  int64
	Speedup float64 // vs the issue-1 restricted base of the same benchmark
	Stats   core.Stats
	// Sim is the simulator's per-run observability breakdown (stall causes,
	// speculation and sentinel activity, occupancy high-water marks).
	Sim obs.SimStats
}

// Measurement errors wrap the benchmark name.

// Measure compiles benchmark b for machine md (profiling on the training
// input, forming superblocks, scheduling) and simulates it, verifying that
// the architectural result matches the reference interpreter.
func Measure(b workload.Benchmark, md machine.Desc, sbo superblock.Options) (Cell, error) {
	p, m := b.Build()
	p.Layout()
	if err := p.Validate(); err != nil {
		return Cell{}, fmt.Errorf("%s: %w", b.Name, err)
	}
	ref, err := prog.Run(p, m.Clone(), prog.Options{Collect: true})
	if err != nil {
		return Cell{}, fmt.Errorf("%s: reference: %w", b.Name, err)
	}
	f := superblock.Form(p, ref.Profile, sbo)
	f.Layout()
	if err := f.Validate(); err != nil {
		return Cell{}, fmt.Errorf("%s: formation: %w", b.Name, err)
	}
	sched, stats, err := core.Schedule(f, md)
	if err != nil {
		return Cell{}, fmt.Errorf("%s: schedule: %w", b.Name, err)
	}
	res, err := sim.Run(sched, md, m, sim.Options{})
	if err != nil {
		return Cell{}, fmt.Errorf("%s: simulate: %w", b.Name, err)
	}
	if err := verifyResult(b.Name, md, res, ref); err != nil {
		return Cell{}, err
	}
	return Cell{Cycles: res.Cycles, Instrs: res.Instrs, Stats: stats, Sim: res.Stats}, nil
}

// verifyResult enforces the Measure invariant: the scheduled run's
// architectural result (memory checksum and output stream) must match the
// reference interpreter's, under every model and width.
func verifyResult(name string, md machine.Desc, res *sim.Result, ref *prog.Result) error {
	if res.MemSum != ref.MemSum {
		return fmt.Errorf("%s: %w under %v w%d", name, ErrChecksumMismatch, md.Model, md.IssueWidth)
	}
	if len(res.Out) != len(ref.Out) {
		return fmt.Errorf("%s: %w: output length %d != %d under %v w%d",
			name, ErrOutputMismatch, len(res.Out), len(ref.Out), md.Model, md.IssueWidth)
	}
	for i := range res.Out {
		if res.Out[i] != ref.Out[i] {
			return fmt.Errorf("%s: %w: output[%d]: %d != %d under %v w%d",
				name, ErrOutputMismatch, i, res.Out[i], ref.Out[i], md.Model, md.IssueWidth)
		}
	}
	return nil
}

// Key identifies a machine configuration within a benchmark's results.
type Key struct {
	Model machine.Model
	Width int
}

// BenchResult holds all measurements of one benchmark.
type BenchResult struct {
	Name    string
	Numeric bool
	// Base is the issue-1 restricted-percolation measurement all speedups
	// are relative to.
	Base  Cell
	Cells map[Key]Cell
}

// Speedup returns the speedup of a configuration over the base machine.
func (r *BenchResult) Speedup(model machine.Model, width int) float64 {
	return r.Cells[Key{model, width}].Speedup
}

// Run measures benchmark b under every model in models at every width,
// plus the base machine.
func Run(b workload.Benchmark, models []machine.Model, widths []int, sbo superblock.Options) (*BenchResult, error) {
	base, err := Measure(b, machine.Base(1, machine.Restricted), sbo)
	if err != nil {
		return nil, err
	}
	base.Speedup = 1
	out := &BenchResult{Name: b.Name, Numeric: b.Numeric, Base: base, Cells: map[Key]Cell{}}
	for _, model := range models {
		for _, w := range widths {
			c, err := Measure(b, machine.Base(w, model), sbo)
			if err != nil {
				return nil, err
			}
			c.Speedup = float64(base.Cycles) / float64(c.Cycles)
			out.Cells[Key{model, w}] = c
		}
	}
	return out, nil
}

// RunAll measures every registered benchmark.
func RunAll(models []machine.Model, widths []int, sbo superblock.Options) ([]*BenchResult, error) {
	var out []*BenchResult
	for _, b := range workload.All() {
		r, err := Run(b, models, widths, sbo)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// GroupAverage returns the arithmetic-mean speedup of a configuration over
// the numeric or non-numeric group.
func GroupAverage(rs []*BenchResult, numeric bool, model machine.Model, width int) float64 {
	sum, n := 0.0, 0
	for _, r := range rs {
		if r.Numeric != numeric {
			continue
		}
		sum += r.Speedup(model, width)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// GroupImprovement returns the arithmetic-mean percentage improvement of
// model a over model b at the given width, over one benchmark group — the
// statistic the paper quotes ("57% speedup improvement ... over restricted
// percolation").
func GroupImprovement(rs []*BenchResult, numeric bool, a, b machine.Model, width int) float64 {
	sum, n := 0.0, 0
	for _, r := range rs {
		if r.Numeric != numeric {
			continue
		}
		sa, sb := r.Speedup(a, width), r.Speedup(b, width)
		if sb > 0 {
			sum += (sa/sb - 1) * 100
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
