package eval

// flight is a singleflight-style memo: the first caller of a key computes
// the value while later callers block on it; afterwards the value is served
// from the cache. Errors are cached alongside values — within one process
// the inputs are deterministic, so recomputing a failed artifact cannot
// succeed. Hit/miss counts are tracked so the Runner's metrics can expose
// cache effectiveness and growth.
//
// The map is striped over a power-of-two number of shards, each behind its
// own mutex, with the shard picked by a cheap hash of the key. A warm
// lookup therefore contends only with other keys that happen to share its
// shard, never with the whole request population — on the serving hot path
// every /v1 request takes four of these lookups (builds, forms, scheds,
// cells), and a single mutex in front of them serialized the entire warm
// path. Shard choice is invisible in every observable way: values, error
// caching, context-error eviction, reset, len and hit/miss counts are
// byte-for-byte what the single-map implementation produced (the
// determinism tests in flight_test.go pin this across shard counts).

import (
	"context"
	"errors"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"sentinel/internal/obs"
)

// flightSeed is the process-wide seed for shard selection. Sharing one seed
// across every flight keeps the hash cheap to compute and the shard choice
// stable within a process; it carries no security weight (keys are not
// attacker-controlled map-flood vectors — a full shard is just a slower
// shard).
var flightSeed = maphash.MakeSeed()

// defaultFlightShards is the shard count a zero-value flight initializes
// itself with: enough stripes that 16 admission slots' worth of concurrent
// requests rarely collide, small enough that reset/len stay trivial.
const defaultFlightShards = 16

type flightShard[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// flight's zero value is ready to use (shards materialize on first access
// with defaultFlightShards); newFlight pins an explicit shard count, which
// only tests exercising the striping itself need.
type flight[K comparable, V any] struct {
	once         sync.Once
	shards       []flightShard[K, V]
	nshards      int // desired shard count; 0 selects defaultFlightShards
	hits, misses atomic.Int64
	// arg labels this flight's wait/own spans in request records (which
	// artifact cache a request blocked on). Set once at construction,
	// before any get; ArgNone on flights nobody instruments.
	arg obs.Arg
}

func newFlight[K comparable, V any](nshards int) *flight[K, V] {
	f := &flight[K, V]{nshards: nshards}
	f.once.Do(f.init)
	return f
}

func (f *flight[K, V]) init() {
	n := f.nshards
	if n <= 0 {
		n = defaultFlightShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	f.shards = make([]flightShard[K, V], p)
}

func (f *flight[K, V]) shard(k K) *flightShard[K, V] {
	f.once.Do(f.init)
	h := maphash.Comparable(flightSeed, k)
	return &f.shards[h&uint64(len(f.shards)-1)]
}

func (f *flight[K, V]) get(k K, fn func() (V, error)) (V, error) {
	s := f.shard(k)
	s.mu.Lock()
	if s.m == nil {
		s.m = map[K]*flightCall[V]{}
	}
	if c, ok := s.m[k]; ok {
		s.mu.Unlock()
		f.hits.Add(1)
		<-c.done
		return c.val, c.err
	}
	c := &flightCall[V]{done: make(chan struct{})}
	s.m[k] = c
	s.mu.Unlock()
	f.misses.Add(1)
	c.val, c.err = fn()
	close(c.done)
	return c.val, c.err
}

// getCtx is get with cancellation: a caller whose context expires while the
// value is computed by another goroutine unblocks immediately with the
// context's error, and an already-expired context never starts a
// computation. Real errors are cached like values (deterministic inputs
// cannot recompute differently), but a context error is the owner's deadline
// talking, not a property of the artifact: the entry is dropped before
// waiters are released, so the next caller recomputes instead of being
// served a dead request's timeout forever.
func (f *flight[K, V]) getCtx(ctx context.Context, k K, fn func() (V, error)) (V, error) {
	var zero V
	s := f.shard(k)
	s.mu.Lock()
	if s.m == nil {
		s.m = map[K]*flightCall[V]{}
	}
	if c, ok := s.m[k]; ok {
		s.mu.Unlock()
		f.hits.Add(1)
		// Completed entries — the warm path — serve without touching the
		// request record; only a genuine wait on another goroutine's
		// in-flight computation earns a span.
		select {
		case <-c.done:
			return c.val, c.err
		default:
		}
		rec := obs.RecordFrom(ctx)
		rec.Start(obs.StageSFWait, f.arg)
		select {
		case <-c.done:
			rec.End()
			return c.val, c.err
		case <-ctx.Done():
			rec.End()
			return zero, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		s.mu.Unlock()
		return zero, err
	}
	c := &flightCall[V]{done: make(chan struct{})}
	s.m[k] = c
	s.mu.Unlock()
	f.misses.Add(1)
	rec := obs.RecordFrom(ctx)
	rec.Start(obs.StageSFOwn, f.arg)
	c.val, c.err = fn()
	rec.End()
	if errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded) {
		s.mu.Lock()
		if s.m[k] == c {
			delete(s.m, k)
		}
		s.mu.Unlock()
	}
	close(c.done)
	return c.val, c.err
}

// len returns the number of cached entries (including in-flight ones).
func (f *flight[K, V]) len() int {
	f.once.Do(f.init)
	n := 0
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// reset drops every cached entry. It must not race with get: callers reset
// between sweeps, not during one.
func (f *flight[K, V]) reset() {
	f.once.Do(f.init)
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		s.m = nil
		s.mu.Unlock()
	}
}
