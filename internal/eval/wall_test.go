package eval

// The differential wall around the classic models. The branch-prediction
// frontends added to the simulator must be invisible under the default
// (perfect, oracle) frontend: every classic cell's cycles, stall breakdown,
// output vector and memory checksum stays byte-identical. These tests pin
// that surface — the 17 workloads and a 50-program generated corpus, across
// every speculation model, both paper issue widths and the recovery/sharing
// variants — against committed goldens, so frontend work creeping into the
// classic inner loop fails CI rather than silently shifting every figure.
//
// Regenerate after an *intentional* timing change with:
//
//	go test ./internal/eval/ -run TestClassicWall -update

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sentinel/internal/core"
	"sentinel/internal/machine"
	"sentinel/internal/prog"
	"sentinel/internal/sim"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

var updateWall = flag.Bool("update", false, "rewrite the classic-wall goldens")

// wallConfigs is the classic machine matrix the wall pins: every speculation
// model plus the recovery and no-shared-sentinel variants, all under the
// default perfect frontend.
func wallConfigs(w int) []machine.Desc {
	return []machine.Desc{
		machine.Base(w, machine.Restricted),
		machine.Base(w, machine.General),
		machine.Base(w, machine.Sentinel),
		machine.Base(w, machine.SentinelStores),
		machine.Base(w, machine.Boosting),
		machine.Base(w, machine.Sentinel).WithRecovery(),
		machine.Base(w, machine.SentinelStores).WithRecovery(),
		machine.Base(w, machine.Sentinel).WithoutSharedSentinels(),
	}
}

// wallLine renders one cell's architectural and timing signature: cycles,
// instructions, the stall breakdown by cause, redirect counts, the output
// vector and the memory checksum.
func wallLine(key string, res *sim.Result) string {
	s := res.Stats
	return fmt.Sprintf("%-42s cycles=%d instrs=%d interlock=%d storebuf=%d redirects=%d redircyc=%d out=%v memsum=%#x\n",
		key, res.Cycles, res.Instrs, s.InterlockStalls, s.StoreBufferStalls,
		s.BranchRedirects, s.RedirectCycles, res.Out, res.MemSum)
}

// checkGolden compares got against the committed golden at path, rewriting
// it under -update.
func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateWall {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (generate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from the committed golden.\nThe classic models' timing and results must not change when frontend\ncode changes; if this shift is intentional, regenerate with -update.\nDiff sketch: got %d bytes, want %d bytes", filepath.Base(path), len(got), len(want))
		for i, gl := range strings.Split(string(got), "\n") {
			wl := ""
			if ws := strings.Split(string(want), "\n"); i < len(ws) {
				wl = ws[i]
			}
			if gl != wl {
				t.Errorf("first difference, line %d:\n got: %s\nwant: %s", i+1, gl, wl)
				break
			}
		}
	}
}

// TestClassicWallWorkloads pins every workload's classic results: 17
// benchmarks x 8 machine configurations x 2 issue widths under the perfect
// frontend, byte-identical to the committed golden.
func TestClassicWallWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("full wall matrix in -short mode")
	}
	r := NewRunner(0)
	var sb strings.Builder
	for _, w := range workload.All() {
		for _, width := range []int{2, 8} {
			for _, md := range wallConfigs(width) {
				res, err := r.Simulate(w, md, superblock.Options{}, sim.Options{})
				if err != nil {
					t.Fatalf("%s %v: %v", w.Name, CellKey{w.Name, md, superblock.Options{}.WithDefaults()}, err)
				}
				sb.WriteString(wallLine(CellKey{Bench: w.Name, MD: md}.String(), res))
			}
		}
	}
	checkGolden(t, filepath.Join("testdata", "classic_wall.txt"), []byte(sb.String()))
}

// TestClassicWallFuzzCorpus pins the generated-program half of the wall: the
// same 50-program deterministic corpus the scheduler-equivalence suite uses
// (seed 0x5e47135c0de, spanning the full genProgram input range), simulated
// under the classic matrix. Cells the scheduler legitimately refuses (the
// SS 4.2 separation constraint) and runs that fault record their error text,
// which must be just as stable as a clean run's cycle count.
func TestClassicWallFuzzCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus matrix in -short mode")
	}
	var sb strings.Builder
	rng := rand.New(rand.NewSource(0x5e47135c0de))
	for ci := 0; ci < 50; ci++ {
		n := 6 + rng.Intn(49)
		data := make([]byte, n)
		rng.Read(data)

		p, m := genProgram(data)
		if p == nil {
			t.Fatalf("corpus %d: generator rejected %d bytes", ci, n)
		}
		p.Layout()
		prof, _ := prog.Run(p, m.Clone(), prog.Options{Collect: true, MaxInstrs: 100_000})
		fp := superblock.Form(p, prof.Profile, superblock.Options{})
		fp.Layout()

		for _, width := range []int{2, 8} {
			for _, md := range wallConfigs(width) {
				key := fmt.Sprintf("corpus%02d/%v", ci, CellKey{MD: md})
				sched, _, err := core.Schedule(fp, md)
				if err != nil {
					fmt.Fprintf(&sb, "%-42s refused: %v\n", key, err)
					continue
				}
				res, err := sim.Run(sched, md, m.Clone(), sim.Options{MaxInstrs: 1_000_000})
				if err != nil {
					fmt.Fprintf(&sb, "%-42s error: %v\n", key, err)
					continue
				}
				sb.WriteString(wallLine(key, res))
			}
		}
	}
	checkGolden(t, filepath.Join("testdata", "classic_wall_corpus.txt"), []byte(sb.String()))
}

// TestPerfectFrontendCanonical: a Desc that explicitly selects the perfect
// frontend is the SAME value as one that never mentioned a frontend, so the
// runner's caches, cell keys and fingerprints all coincide — there is no
// "classic" / "perfect" split anywhere in the system.
func TestPerfectFrontendCanonical(t *testing.T) {
	classic := machine.Base(8, machine.Sentinel)
	explicit := classic.WithPredictor(machine.PredPerfect)
	if classic != explicit {
		t.Fatalf("WithPredictor(perfect) changed the Desc: %+v != %+v", explicit, classic)
	}
	k := CellKey{Bench: "cmp", MD: classic}
	if s := k.String(); strings.Contains(s, "perfect") {
		t.Errorf("classic cell key %q must not name the frontend", s)
	}
	r := NewRunner(1)
	a, err := r.Measure(mustBench(t, "cmp"), classic, superblock.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Measure(mustBench(t, "cmp"), explicit, superblock.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("classic and explicit-perfect cells diverge: %+v != %+v", a, b)
	}
	if stats := r.CacheStats()["cells"]; stats.Size != 1 {
		t.Errorf("classic and explicit-perfect descs occupy %d cell cache entries, want 1", stats.Size)
	}
}

// TestPredictionDeterminism: predictor-frontend cells are a pure function of
// the cell key — identical across worker counts (-j1 vs -j4) and across a
// Runner.Reset (recompute from scratch), for both dynamic frontends.
func TestPredictionDeterminism(t *testing.T) {
	benches := []string{"cmp", "wc", "eqn"}
	descs := []machine.Desc{
		machine.Base(8, machine.Sentinel).WithPredictor(machine.PredStatic),
		machine.Base(8, machine.Sentinel).WithPredictor(machine.PredTAGE),
		machine.Base(2, machine.Boosting).WithPredictor(machine.PredTAGE),
	}
	measureAll := func(r *Runner) map[string]Cell {
		out := map[string]Cell{}
		for _, name := range benches {
			for _, md := range descs {
				c, err := r.Measure(mustBench(t, name), md, superblock.Options{})
				if err != nil {
					t.Fatalf("%s %v: %v", name, md.Predictor, err)
				}
				out[CellKey{Bench: name, MD: md}.String()] = c
			}
		}
		return out
	}
	serial := NewRunner(1)
	parallel := NewRunner(4)
	got1 := measureAll(serial)
	got4 := measureAll(parallel)
	serial.Reset()
	gotReset := measureAll(serial)
	for k, c := range got1 {
		if got4[k] != c {
			t.Errorf("%s: -j4 cell %+v != -j1 cell %+v", k, got4[k], c)
		}
		if gotReset[k] != c {
			t.Errorf("%s: post-Reset cell %+v != original %+v", k, gotReset[k], c)
		}
	}
}

func mustBench(t *testing.T, name string) workload.Benchmark {
	t.Helper()
	b, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	return b
}
