package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"sentinel/internal/core"
	"sentinel/internal/machine"
	"sentinel/internal/prog"
	"sentinel/internal/superblock"
)

// corpusProgsEqual compares two scheduled programs instruction by
// instruction, including the schedule coordinates.
func corpusProgsEqual(a, b *prog.Program) error {
	if len(a.Blocks) != len(b.Blocks) {
		return fmt.Errorf("block count %d != %d", len(a.Blocks), len(b.Blocks))
	}
	for bi, ba := range a.Blocks {
		bb := b.Blocks[bi]
		if ba.Label != bb.Label {
			return fmt.Errorf("block %d label %q != %q", bi, ba.Label, bb.Label)
		}
		if len(ba.Instrs) != len(bb.Instrs) {
			return fmt.Errorf("block %q: %d instrs != %d", ba.Label, len(ba.Instrs), len(bb.Instrs))
		}
		for i, ia := range ba.Instrs {
			ib := bb.Instrs[i]
			if ia.Op != ib.Op || ia.Dest != ib.Dest || ia.Src1 != ib.Src1 ||
				ia.Src2 != ib.Src2 || ia.Imm != ib.Imm || ia.Target != ib.Target ||
				ia.Spec != ib.Spec || ia.BoostLevel != ib.BoostLevel ||
				ia.Cycle != ib.Cycle || ia.Slot != ib.Slot || ia.PC != ib.PC {
				return fmt.Errorf("block %q instr %d: %v (cycle %d slot %d) != %v (cycle %d slot %d)",
					ba.Label, i, ia, ia.Cycle, ia.Slot, ib, ib.Cycle, ib.Slot)
			}
		}
	}
	return nil
}

// TestScheduleMatchesReferenceOnFuzzCorpus is the corpus half of the
// scheduler equivalence property (the workload half lives in internal/core):
// 50 deterministically generated fuzz-shaped programs, spanning the full
// genProgram input range (6..54 bytes), must schedule byte-identically under
// the dense heap scheduler and the preserved seed scheduler, for every
// speculation model, both issue widths, and the recovery variants.
func TestScheduleMatchesReferenceOnFuzzCorpus(t *testing.T) {
	models := []machine.Desc{
		machine.Base(2, machine.Restricted),
		machine.Base(2, machine.General),
		machine.Base(2, machine.Sentinel),
		machine.Base(2, machine.SentinelStores),
		machine.Base(2, machine.Boosting),
		machine.Base(2, machine.Sentinel).WithRecovery(),
		machine.Base(2, machine.SentinelStores).WithRecovery(),
		machine.Base(8, machine.Restricted),
		machine.Base(8, machine.General),
		machine.Base(8, machine.Sentinel),
		machine.Base(8, machine.SentinelStores),
		machine.Base(8, machine.Boosting),
		machine.Base(8, machine.Sentinel).WithRecovery(),
		machine.Base(8, machine.SentinelStores).WithRecovery(),
	}

	rng := rand.New(rand.NewSource(0x5e47135c0de))
	for ci := 0; ci < 50; ci++ {
		n := 6 + rng.Intn(49) // 6..54 bytes: header through maximal body
		data := make([]byte, n)
		rng.Read(data)

		p, m := genProgram(data)
		if p == nil {
			t.Fatalf("corpus %d: generator rejected %d bytes", ci, n)
		}
		p.Layout()
		if err := p.Validate(); err != nil {
			t.Fatalf("corpus %d: invalid program: %v", ci, err)
		}
		prof, _ := prog.Run(p, m.Clone(), prog.Options{Collect: true, MaxInstrs: 100_000})
		fp := superblock.Form(p, prof.Profile, superblock.Options{})
		fp.Layout()

		for _, md := range models {
			got, gotStats, err1 := core.Schedule(fp, md)
			want, wantStats, err2 := core.ScheduleReference(fp, md)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("corpus %d %v w%d: error mismatch: %v vs reference %v",
					ci, md.Model, md.IssueWidth, err1, err2)
			}
			if err1 != nil {
				if err1.Error() != err2.Error() {
					t.Errorf("corpus %d %v w%d: error %q != reference %q",
						ci, md.Model, md.IssueWidth, err1, err2)
				}
				continue
			}
			if gotStats != wantStats {
				t.Errorf("corpus %d %v w%d recovery=%v: stats %+v != reference %+v",
					ci, md.Model, md.IssueWidth, md.Recovery, gotStats, wantStats)
			}
			if err := corpusProgsEqual(got, want); err != nil {
				t.Errorf("corpus %d %v w%d recovery=%v: %v",
					ci, md.Model, md.IssueWidth, md.Recovery, err)
			}
		}
	}
}
