package eval

import (
	"fmt"
	"strings"

	"sentinel/internal/ir"
	"sentinel/internal/machine"
)

// Figure4 renders the paper's Figure 4: speedup of sentinel scheduling (S)
// vs restricted percolation (R) at issue rates 2, 4, 8, base = issue-1
// restricted percolation.
func Figure4(rs []*BenchResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4: sentinel scheduling (S) vs restricted percolation (R)\n")
	fmt.Fprintf(&sb, "speedup over issue-1 restricted base\n\n")
	fmt.Fprintf(&sb, "%-11s", "benchmark")
	for _, w := range Widths {
		fmt.Fprintf(&sb, "  R@%-4d S@%-4d", w, w)
	}
	fmt.Fprintf(&sb, "\n")
	writeRows(&sb, rs, func(r *BenchResult) []float64 {
		var v []float64
		for _, w := range Widths {
			v = append(v, r.Speedup(machine.Restricted, w), r.Speedup(machine.Sentinel, w))
		}
		return v
	})
	for _, numeric := range []bool{false, true} {
		fmt.Fprintf(&sb, "\n%s group, S over R improvement:", groupName(numeric))
		for _, w := range Widths {
			fmt.Fprintf(&sb, "  issue %d: %+.0f%%", w,
				GroupImprovement(rs, numeric, machine.Sentinel, machine.Restricted, w))
		}
		fmt.Fprintf(&sb, "\n")
	}
	return sb.String()
}

// Figure5 renders the paper's Figure 5: general percolation (G), sentinel
// scheduling (S), and sentinel scheduling with speculative stores (T).
func Figure5(rs []*BenchResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5: general percolation (G), sentinel (S), sentinel+spec stores (T)\n")
	fmt.Fprintf(&sb, "speedup over issue-1 restricted base\n\n")
	fmt.Fprintf(&sb, "%-11s", "benchmark")
	for _, w := range Widths {
		fmt.Fprintf(&sb, "  G@%-4d S@%-4d T@%-4d", w, w, w)
	}
	fmt.Fprintf(&sb, "\n")
	writeRows(&sb, rs, func(r *BenchResult) []float64 {
		var v []float64
		for _, w := range Widths {
			v = append(v,
				r.Speedup(machine.General, w),
				r.Speedup(machine.Sentinel, w),
				r.Speedup(machine.SentinelStores, w))
		}
		return v
	})
	for _, numeric := range []bool{false, true} {
		fmt.Fprintf(&sb, "\n%s group, T over S improvement:", groupName(numeric))
		for _, w := range Widths {
			fmt.Fprintf(&sb, "  issue %d: %+.1f%%", w,
				GroupImprovement(rs, numeric, machine.SentinelStores, machine.Sentinel, w))
		}
		fmt.Fprintf(&sb, "\n")
	}
	return sb.String()
}

func writeRows(sb *strings.Builder, rs []*BenchResult, cols func(*BenchResult) []float64) {
	numericShown := false
	for _, r := range rs {
		if r.Numeric && !numericShown {
			fmt.Fprintf(sb, "%s\n", strings.Repeat("-", 11+len(cols(r))*8))
			numericShown = true
		}
		fmt.Fprintf(sb, "%-11s", r.Name)
		for _, v := range cols(r) {
			fmt.Fprintf(sb, "  %-6.2f", v)
		}
		fmt.Fprintf(sb, "\n")
	}
}

func groupName(numeric bool) string {
	if numeric {
		return "numeric"
	}
	return "non-numeric"
}

// Table3 renders the instruction-latency table of the paper.
func Table3() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 3: instruction latencies\n\n")
	rows := []struct {
		name string
		unit ir.Unit
	}{
		{"Int ALU", ir.UnitIntALU},
		{"Int multiply", ir.UnitIntMul},
		{"Int divide", ir.UnitIntDiv},
		{"branch", ir.UnitBranch},
		{"memory load", ir.UnitLoad},
		{"memory store", ir.UnitStore},
		{"FP ALU", ir.UnitFPALU},
		{"FP conversion", ir.UnitFPConv},
		{"FP multiply", ir.UnitFPMul},
		{"FP divide", ir.UnitFPDiv},
	}
	for _, r := range rows {
		lat := fmt.Sprintf("%d", machine.Latencies[r.unit])
		if r.unit == ir.UnitBranch {
			lat = fmt.Sprintf("%d / %d slot", machine.Latencies[r.unit], machine.BranchTakenPenalty)
		}
		fmt.Fprintf(&sb, "%-15s %s\n", r.name, lat)
	}
	return sb.String()
}

// SentinelOverheadTable reports the scheduling statistics per benchmark at
// the given width under sentinel scheduling: speculated instructions,
// explicit sentinels inserted, confirms inserted under the store model —
// the ablation behind the paper's claim that "most of the sentinels can be
// scheduled in empty instruction slots".
func SentinelOverheadTable(rs []*BenchResult, width int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sentinel overhead at issue %d\n\n", width)
	fmt.Fprintf(&sb, "%-11s %6s %7s %9s %9s\n", "benchmark", "spec", "checks", "confirms", "S/G ratio")
	for _, r := range rs {
		s := r.Cells[Key{machine.Sentinel, width}]
		ts := r.Cells[Key{machine.SentinelStores, width}]
		g := r.Cells[Key{machine.General, width}]
		ratio := 0.0
		if s.Cycles > 0 {
			ratio = float64(g.Cycles) / float64(s.Cycles)
		}
		fmt.Fprintf(&sb, "%-11s %6d %7d %9d %9.3f\n",
			r.Name, s.Stats.Speculative, s.Stats.Sentinels, ts.Stats.Confirms, ratio)
	}
	return sb.String()
}
