package eval

// Context threading through the Runner: canceled contexts fail fast, a
// waiter abandoning a shared in-flight computation does not poison the
// cache for everyone else.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sentinel/internal/machine"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

func TestMeasureCtxCanceledBeforeStart(t *testing.T) {
	r := NewRunner(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, _ := workload.ByName("cmp")
	_, err := r.MeasureCtx(ctx, b, machine.Base(8, machine.Sentinel), superblock.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Nothing may have been computed or cached on behalf of a dead request.
	for name, cs := range r.CacheStats() {
		if cs.Size != 0 {
			t.Errorf("cache %s has %d entries after a canceled request", name, cs.Size)
		}
	}
}

func TestRunAllCtxCanceled(t *testing.T) {
	r := NewRunner(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := r.RunAllCtx(ctx, []machine.Model{machine.Sentinel}, []int{2, 4, 8}, superblock.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("canceled RunAllCtx took %s; must fail fast", d)
	}
}

func TestParallelForCtxCancelMidway(t *testing.T) {
	r := NewRunner(4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	err := r.parallelForCtx(ctx, 1000, func(i int) error {
		once.Do(cancel) // first index to run cancels the rest
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestFlightGetCtxWaiterAbandons: a waiter whose context expires unblocks
// immediately, while the in-flight computation completes and is cached for
// subsequent callers.
func TestFlightGetCtxWaiterAbandons(t *testing.T) {
	var f flight[int, int]
	block := make(chan struct{})
	computing := make(chan struct{})

	go func() {
		f.get(1, func() (int, error) { // owner: computes, slowly
			close(computing)
			<-block
			return 42, nil
		}) //nolint:errcheck
	}()
	<-computing

	// Waiter with a deadline: must give up without waiting for the owner.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := f.getCtx(ctx, 1, func() (int, error) { return 0, nil }); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter err = %v, want DeadlineExceeded", err)
	}

	// The owner finishes; the value is cached and served to new callers.
	close(block)
	v, err := f.getCtx(context.Background(), 1, func() (int, error) {
		t.Error("recompute after the owner cached the value")
		return 0, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("cached get = %d, %v; want 42, nil", v, err)
	}
}

// TestCtxWrappersMatch: the context-free entry points are thin wrappers —
// same artifacts, same results, shared caches.
func TestCtxWrappersMatch(t *testing.T) {
	r := NewRunner(2)
	b, _ := workload.ByName("cmp")
	md := machine.Base(4, machine.Sentinel)
	viaCtx, err := r.MeasureCtx(context.Background(), b, md, superblock.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := r.Measure(b, md, superblock.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if viaCtx.Cycles != plain.Cycles || viaCtx.Instrs != plain.Instrs {
		t.Errorf("MeasureCtx %d/%d != Measure %d/%d",
			viaCtx.Cycles, viaCtx.Instrs, plain.Cycles, plain.Instrs)
	}
	if cs := r.CacheStats()["cells"]; cs.Size != 1 || cs.Hits == 0 {
		t.Errorf("wrappers must share one cell cache: %+v", cs)
	}
}
