package eval

// Context threading through the Runner: canceled contexts fail fast, a
// waiter abandoning a shared in-flight computation does not poison the
// cache for everyone else.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sentinel/internal/machine"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

func TestMeasureCtxCanceledBeforeStart(t *testing.T) {
	r := NewRunner(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, _ := workload.ByName("cmp")
	_, err := r.MeasureCtx(ctx, b, machine.Base(8, machine.Sentinel), superblock.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Nothing may have been computed or cached on behalf of a dead request.
	for name, cs := range r.CacheStats() {
		if cs.Size != 0 {
			t.Errorf("cache %s has %d entries after a canceled request", name, cs.Size)
		}
	}
}

func TestRunAllCtxCanceled(t *testing.T) {
	r := NewRunner(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := r.RunAllCtx(ctx, []machine.Model{machine.Sentinel}, []int{2, 4, 8}, superblock.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("canceled RunAllCtx took %s; must fail fast", d)
	}
}

func TestParallelForCtxCancelMidway(t *testing.T) {
	r := NewRunner(4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	err := r.parallelForCtx(ctx, 1000, func(i int) error {
		once.Do(cancel) // first index to run cancels the rest
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestFlightGetCtxWaiterAbandons: a waiter whose context expires unblocks
// immediately, while the in-flight computation completes and is cached for
// subsequent callers.
func TestFlightGetCtxWaiterAbandons(t *testing.T) {
	var f flight[int, int]
	block := make(chan struct{})
	computing := make(chan struct{})

	go func() {
		f.get(1, func() (int, error) { // owner: computes, slowly
			close(computing)
			<-block
			return 42, nil
		}) //nolint:errcheck
	}()
	<-computing

	// Waiter with a deadline: must give up without waiting for the owner.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := f.getCtx(ctx, 1, func() (int, error) { return 0, nil }); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter err = %v, want DeadlineExceeded", err)
	}

	// The owner finishes; the value is cached and served to new callers.
	close(block)
	v, err := f.getCtx(context.Background(), 1, func() (int, error) {
		t.Error("recompute after the owner cached the value")
		return 0, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("cached get = %d, %v; want 42, nil", v, err)
	}
}

// TestFlightGetCtxOwnerExpires: the poisoning path. When the singleflight
// OWNER's own deadline expires mid-computation, its context error must not
// be cached — otherwise every later request for that key is served the dead
// request's timeout until process restart. Waiters already blocked on the
// owner still see the error once; the next caller recomputes.
func TestFlightGetCtxOwnerExpires(t *testing.T) {
	var f flight[int, int]
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := f.getCtx(ctx, 1, func() (int, error) {
		<-ctx.Done() // the owner's pipeline stage observes its own expiry
		return 0, fmt.Errorf("build: %w", ctx.Err())
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("owner err = %v, want DeadlineExceeded", err)
	}
	if n := f.len(); n != 0 {
		t.Fatalf("cache holds %d entries after an owner-expired computation; the context error is poisoned in", n)
	}
	// A fresh caller recomputes and caches the real value.
	v, err := f.getCtx(context.Background(), 1, func() (int, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("recompute = %d, %v; want 42, nil", v, err)
	}
	v, err = f.getCtx(context.Background(), 1, func() (int, error) {
		t.Error("recompute after a successful fill")
		return 0, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("cached get = %d, %v; want 42, nil", v, err)
	}
}

// expireAfter is a context that starts reporting DeadlineExceeded from its
// nth Err() call on — a deterministic stand-in for a deadline that fires
// between two pipeline stages, which no real timer can place reliably.
type expireAfter struct {
	context.Context
	calls atomic.Int32
	after int32
}

func (c *expireAfter) Err() error {
	if c.calls.Add(1) > c.after {
		return context.DeadlineExceeded
	}
	return nil
}

// TestMeasureCtxOwnerExpiresDoesNotPoison drives the poisoning path end to
// end through the Runner: a Measure that passes the cell cache's entry
// check alive but expires inside the pipeline (here: at the build stage)
// must not condemn every later Measure of that cell to its timeout.
func TestMeasureCtxOwnerExpiresDoesNotPoison(t *testing.T) {
	r := NewRunner(2)
	b, _ := workload.ByName("cmp")
	md := machine.Base(8, machine.Sentinel)
	// Call 1 is the cells cache's liveness check (survives), call 2 the
	// builds cache's (expires): the owner dies mid-pipeline, after its cell
	// entry exists.
	ctx := &expireAfter{Context: context.Background(), after: 1}
	if _, err := r.MeasureCtx(ctx, b, md, superblock.Options{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-pipeline MeasureCtx err = %v, want DeadlineExceeded", err)
	}
	for name, cs := range r.CacheStats() {
		if cs.Size != 0 {
			t.Errorf("cache %s holds %d entries after an owner-expired measure (context error poisoned in)", name, cs.Size)
		}
	}
	cell, err := r.MeasureCtx(context.Background(), b, md, superblock.Options{})
	if err != nil {
		t.Fatalf("Measure after an expired owner: %v (cache poisoned)", err)
	}
	if cell.Cycles == 0 {
		t.Fatal("Measure after an expired owner returned an empty cell")
	}
}

// TestCtxWrappersMatch: the context-free entry points are thin wrappers —
// same artifacts, same results, shared caches.
func TestCtxWrappersMatch(t *testing.T) {
	r := NewRunner(2)
	b, _ := workload.ByName("cmp")
	md := machine.Base(4, machine.Sentinel)
	viaCtx, err := r.MeasureCtx(context.Background(), b, md, superblock.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := r.Measure(b, md, superblock.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if viaCtx.Cycles != plain.Cycles || viaCtx.Instrs != plain.Instrs {
		t.Errorf("MeasureCtx %d/%d != Measure %d/%d",
			viaCtx.Cycles, viaCtx.Instrs, plain.Cycles, plain.Instrs)
	}
	if cs := r.CacheStats()["cells"]; cs.Size != 1 || cs.Hits == 0 {
		t.Errorf("wrappers must share one cell cache: %+v", cs)
	}
}
