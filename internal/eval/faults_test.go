package eval

import (
	"testing"

	"sentinel/internal/workload"
)

// TestFaultInjectionOutcomes verifies the paper's central qualitative claim
// quantitatively on a representative subset: sentinel scheduling (with
// recovery constraints) detects an injected page fault at the exact PC and
// recovers to the fault-free result, while general percolation either
// silently corrupts the result or traps away from the true cause.
func TestFaultInjectionOutcomes(t *testing.T) {
	r := NewRunner(0)
	for _, name := range []string{"wc", "cmp", "grep", "tomcatv"} {
		b, _ := workload.ByName(name)
		o, err := r.injectOne(b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if o.SentinelSignals == 0 || !o.SentinelExactPC {
			t.Errorf("%s: sentinel must signal with the exact PC: %+v", name, o)
		}
		if !o.SentinelRecovered {
			t.Errorf("%s: sentinel+recovery must reach the fault-free result", name)
		}
		if !o.RestrictedExact {
			t.Errorf("%s: restricted percolation must trap precisely", name)
		}
		if !o.GeneralSilentCorruption && !o.GeneralMisattributed {
			t.Errorf("%s: general percolation should corrupt or misattribute, got %+v", name, o)
		}
	}
}

// TestFaultInjectionAllBenchmarks runs the full study (skipped with -short).
func TestFaultInjectionAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("full fault campaign")
	}
	r := NewRunner(0)
	for _, b := range workload.All() {
		o, err := r.injectOne(b)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if !o.SentinelRecovered {
			t.Errorf("%s: sentinel recovery failed: %+v", b.Name, o)
		}
		if o.SentinelSignals == 0 {
			t.Errorf("%s: no fault was ever signalled (injection ineffective)", b.Name)
		}
	}
}
