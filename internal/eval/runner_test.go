package eval

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"sentinel/internal/machine"
	"sentinel/internal/obs"
	"sentinel/internal/prog"
	"sentinel/internal/sim"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

var allModels = []machine.Model{machine.Restricted, machine.General,
	machine.Sentinel, machine.SentinelStores}

// TestRunnerMatchesSerial: the parallel engine must render byte-identical
// figures to the serial path over the same matrix slice, at any worker
// count. Run with -race this doubles as the engine's data-race audit.
func TestRunnerMatchesSerial(t *testing.T) {
	benches := []workload.Benchmark{
		bench(t, "grep"), bench(t, "wc"), bench(t, "cmp"), bench(t, "matrix300"),
	}
	var serial []*BenchResult
	for _, b := range benches {
		r, err := Run(b, allModels, Widths, superblock.Options{})
		if err != nil {
			t.Fatal(err)
		}
		serial = append(serial, r)
	}

	for _, workers := range []int{1, 4, 16} {
		parallel, err := NewRunner(workers).RunBenchmarks(benches, allModels, Widths, superblock.Options{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, render := range []struct {
			name string
			fn   func([]*BenchResult) string
		}{
			{"Figure4", Figure4},
			{"Figure5", Figure5},
			{"Overhead", func(rs []*BenchResult) string { return SentinelOverheadTable(rs, 8) }},
		} {
			want, got := render.fn(serial), render.fn(parallel)
			if want != got {
				t.Errorf("workers=%d: %s differs from serial path:\nserial:\n%s\nparallel:\n%s",
					workers, render.name, want, got)
			}
		}
	}
}

// TestConcurrentMeasureSharedCache: many goroutines measuring the same
// benchmark through one Runner must not interfere — every call sees the
// same cell, and the shared cached artifacts (program, memory image,
// reference result) are never corrupted by cache aliasing. -race enforces
// the "never corrupted" half; the value comparison the rest.
func TestConcurrentMeasureSharedCache(t *testing.T) {
	r := NewRunner(8)
	b := bench(t, "wc")
	md := machine.Base(8, machine.Sentinel)

	want, err := Measure(b, md, superblock.Options{}) // independent serial baseline
	if err != nil {
		t.Fatal(err)
	}

	const callers = 16
	cells := make([]Cell, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Half the callers measure the same cell, half a different
			// width of the same benchmark, so the underlying build/form
			// artifacts are shared across distinct schedules too.
			m := md
			if i%2 == 1 {
				m = machine.Base(2, machine.Sentinel)
			}
			cells[i], errs[i] = r.Measure(b, m, superblock.Options{})
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
	}
	for i := 0; i < callers; i += 2 {
		if cells[i] != want {
			t.Errorf("caller %d: cell %+v != serial %+v", i, cells[i], want)
		}
		if cells[i] != cells[0] {
			t.Errorf("caller %d: cell differs from caller 0", i)
		}
	}
}

// TestRunnerSurfacesCellKey: when a cell fails, the error must name the
// failing cell (benchmark, model, width) so a 221-cell sweep is debuggable.
func TestRunnerSurfacesCellKey(t *testing.T) {
	// Issue width 0 fails machine.Desc.Validate inside core.Schedule.
	_, err := NewRunner(4).Run(bench(t, "grep"), []machine.Model{machine.Sentinel}, []int{0}, superblock.Options{})
	if err == nil {
		t.Fatal("want error for width 0")
	}
	for _, want := range []string{"grep", "sentinel", "@0"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name the failing cell (%q missing)", err, want)
		}
	}
}

// TestVerifySentinelErrors: verification failures must be classifiable with
// errors.Is, and still carry the benchmark and configuration.
func TestVerifySentinelErrors(t *testing.T) {
	md := machine.Base(8, machine.Sentinel)
	ref := &prog.Result{MemSum: 1, Out: []int64{1, 2}}

	err := verifyResult("x", md, &sim.Result{MemSum: 2}, ref)
	if !errors.Is(err, ErrChecksumMismatch) {
		t.Errorf("checksum mismatch not errors.Is(ErrChecksumMismatch): %v", err)
	}
	if err == nil || !strings.Contains(err.Error(), "x") || !strings.Contains(err.Error(), "sentinel") {
		t.Errorf("checksum error lacks cell context: %v", err)
	}

	err = verifyResult("x", md, &sim.Result{MemSum: 1, Out: []int64{1}}, ref)
	if !errors.Is(err, ErrOutputMismatch) {
		t.Errorf("length mismatch not errors.Is(ErrOutputMismatch): %v", err)
	}
	err = verifyResult("x", md, &sim.Result{MemSum: 1, Out: []int64{1, 3}}, ref)
	if !errors.Is(err, ErrOutputMismatch) {
		t.Errorf("value mismatch not errors.Is(ErrOutputMismatch): %v", err)
	}
	if err := verifyResult("x", md, &sim.Result{MemSum: 1, Out: []int64{1, 2}}, ref); err != nil {
		t.Errorf("matching result must verify: %v", err)
	}
}

// TestRunnerResetAndCacheStats: the artifact caches must be observable
// (sizes, hits, misses) and reclaimable — Reset drops every entry and a
// subsequent measurement recomputes from scratch with identical results,
// so long-lived sweep processes can bound their footprint.
func TestRunnerResetAndCacheStats(t *testing.T) {
	r := NewRunner(2)
	b := bench(t, "wc")
	md := machine.Base(8, machine.Sentinel)

	before, err := r.Measure(b, md, superblock.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Measure(b, md, superblock.Options{}); err != nil {
		t.Fatal(err)
	}
	cs := r.CacheStats()
	for _, name := range []string{"builds", "forms", "scheds", "cells"} {
		if cs[name].Size != 1 {
			t.Errorf("cache %s size = %d, want 1", name, cs[name].Size)
		}
		if cs[name].Misses != 1 {
			t.Errorf("cache %s misses = %d, want 1", name, cs[name].Misses)
		}
	}
	if cs["cells"].Hits != 1 {
		t.Errorf("cells hits = %d, want 1 (second Measure is a cache hit)", cs["cells"].Hits)
	}

	r.Reset()
	for name, c := range r.CacheStats() {
		if c.Size != 0 {
			t.Errorf("cache %s size after Reset = %d, want 0", name, c.Size)
		}
	}
	after, err := r.Measure(b, md, superblock.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Errorf("post-Reset cell differs: %+v vs %+v", after, before)
	}
	if got := r.CacheStats()["cells"].Misses; got != 2 {
		t.Errorf("cells misses after Reset+Measure = %d, want 2 (recomputed)", got)
	}
}

// TestRunnerMetrics: an attached registry must observe the sweep — per-cell
// wall times, worker busy/span, cache gauges — without changing any
// measured value relative to an uninstrumented Runner.
func TestRunnerMetrics(t *testing.T) {
	benches := []workload.Benchmark{bench(t, "wc"), bench(t, "cmp")}
	models := []machine.Model{machine.Sentinel}

	plain, err := NewRunner(2).RunBenchmarks(benches, models, Widths, superblock.Options{})
	if err != nil {
		t.Fatal(err)
	}

	r := NewRunner(2)
	reg := obs.NewRegistry()
	r.SetMetrics(reg)
	observed, err := r.RunBenchmarks(benches, models, Widths, superblock.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i].Base != observed[i].Base {
			t.Errorf("%s: metrics changed the base cell", plain[i].Name)
		}
		for k, c := range plain[i].Cells {
			if observed[i].Cells[k] != c {
				t.Errorf("%s/%v: metrics changed the cell", plain[i].Name, k)
			}
		}
	}

	cellCount := reg.Histogram("runner.cell_ns").Snapshot().Count
	if want := int64(len(benches) * (1 + len(Widths))); cellCount != want {
		t.Errorf("cell_ns observations = %d, want %d", cellCount, want)
	}
	if reg.Counter("runner.busy_ns").Value() <= 0 {
		t.Error("busy_ns not recorded")
	}
	sum := r.MetricsSummary()
	for _, want := range []string{"worker utilization", "cell wall time",
		"runner.cache.builds.size", "runner.cache.cells.misses", "runner.workers"} {
		if !strings.Contains(sum, want) {
			t.Errorf("metrics summary missing %q:\n%s", want, sum)
		}
	}
	if NewRunner(1).MetricsSummary() != "" {
		t.Error("summary without SetMetrics must be empty")
	}
}

// TestRunnerSimulate: the trace entry point must reuse cached artifacts
// (no new cell entries) and reproduce the measured cell's timing while
// feeding the tracer.
func TestRunnerSimulate(t *testing.T) {
	r := NewRunner(1)
	b := bench(t, "cmp")
	md := machine.Base(8, machine.SentinelStores)
	cell, err := r.Measure(b, md, superblock.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	tr := obs.NewTracer(&buf)
	res, err := r.Simulate(b, md, superblock.Options{}, sim.Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if res.Cycles != cell.Cycles || res.Instrs != cell.Instrs {
		t.Errorf("Simulate result %d cycles/%d instrs != measured cell %d/%d",
			res.Cycles, res.Instrs, cell.Cycles, cell.Instrs)
	}
	if buf.Len() == 0 {
		t.Error("tracer received no events")
	}
	if got := r.CacheStats()["cells"].Size; got != 1 {
		t.Errorf("Simulate must not grow the cells cache: size %d, want 1", got)
	}
}

// TestRunnerExtensionsMatchSerial pins the extension experiments' parallel
// rendering: -j 1 and -j 8 must agree byte for byte. (The serial originals
// were folded into the Runner; determinism across worker counts is the
// contract that replaced them.)
func TestRunnerExtensionsMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full extension sweep")
	}
	r1, r8 := NewRunner(1), NewRunner(8)
	for _, sec := range []struct {
		name string
		fn   func(*Runner) (string, error)
	}{
		{"RecoveryCost", (*Runner).RecoveryCost},
		{"StoreBufferSweep", (*Runner).StoreBufferSweep},
		{"SharingAblation", (*Runner).SharingAblation},
		{"BoostingComparison", (*Runner).BoostingComparison},
		{"FaultInjection", (*Runner).FaultInjection},
	} {
		a, err := sec.fn(r1)
		if err != nil {
			t.Fatalf("%s -j1: %v", sec.name, err)
		}
		b, err := sec.fn(r8)
		if err != nil {
			t.Fatalf("%s -j8: %v", sec.name, err)
		}
		if a != b {
			t.Errorf("%s: -j1 and -j8 outputs differ:\n%s\n----\n%s", sec.name, a, b)
		}
	}
}
