package eval

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"sentinel/internal/machine"
	"sentinel/internal/prog"
	"sentinel/internal/sim"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

var allModels = []machine.Model{machine.Restricted, machine.General,
	machine.Sentinel, machine.SentinelStores}

// TestRunnerMatchesSerial: the parallel engine must render byte-identical
// figures to the serial path over the same matrix slice, at any worker
// count. Run with -race this doubles as the engine's data-race audit.
func TestRunnerMatchesSerial(t *testing.T) {
	benches := []workload.Benchmark{
		bench(t, "grep"), bench(t, "wc"), bench(t, "cmp"), bench(t, "matrix300"),
	}
	var serial []*BenchResult
	for _, b := range benches {
		r, err := Run(b, allModels, Widths, superblock.Options{})
		if err != nil {
			t.Fatal(err)
		}
		serial = append(serial, r)
	}

	for _, workers := range []int{1, 4, 16} {
		parallel, err := NewRunner(workers).RunBenchmarks(benches, allModels, Widths, superblock.Options{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, render := range []struct {
			name string
			fn   func([]*BenchResult) string
		}{
			{"Figure4", Figure4},
			{"Figure5", Figure5},
			{"Overhead", func(rs []*BenchResult) string { return SentinelOverheadTable(rs, 8) }},
		} {
			want, got := render.fn(serial), render.fn(parallel)
			if want != got {
				t.Errorf("workers=%d: %s differs from serial path:\nserial:\n%s\nparallel:\n%s",
					workers, render.name, want, got)
			}
		}
	}
}

// TestConcurrentMeasureSharedCache: many goroutines measuring the same
// benchmark through one Runner must not interfere — every call sees the
// same cell, and the shared cached artifacts (program, memory image,
// reference result) are never corrupted by cache aliasing. -race enforces
// the "never corrupted" half; the value comparison the rest.
func TestConcurrentMeasureSharedCache(t *testing.T) {
	r := NewRunner(8)
	b := bench(t, "wc")
	md := machine.Base(8, machine.Sentinel)

	want, err := Measure(b, md, superblock.Options{}) // independent serial baseline
	if err != nil {
		t.Fatal(err)
	}

	const callers = 16
	cells := make([]Cell, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Half the callers measure the same cell, half a different
			// width of the same benchmark, so the underlying build/form
			// artifacts are shared across distinct schedules too.
			m := md
			if i%2 == 1 {
				m = machine.Base(2, machine.Sentinel)
			}
			cells[i], errs[i] = r.Measure(b, m, superblock.Options{})
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
	}
	for i := 0; i < callers; i += 2 {
		if cells[i] != want {
			t.Errorf("caller %d: cell %+v != serial %+v", i, cells[i], want)
		}
		if cells[i] != cells[0] {
			t.Errorf("caller %d: cell differs from caller 0", i)
		}
	}
}

// TestRunnerSurfacesCellKey: when a cell fails, the error must name the
// failing cell (benchmark, model, width) so a 221-cell sweep is debuggable.
func TestRunnerSurfacesCellKey(t *testing.T) {
	// Issue width 0 fails machine.Desc.Validate inside core.Schedule.
	_, err := NewRunner(4).Run(bench(t, "grep"), []machine.Model{machine.Sentinel}, []int{0}, superblock.Options{})
	if err == nil {
		t.Fatal("want error for width 0")
	}
	for _, want := range []string{"grep", "sentinel", "@0"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name the failing cell (%q missing)", err, want)
		}
	}
}

// TestVerifySentinelErrors: verification failures must be classifiable with
// errors.Is, and still carry the benchmark and configuration.
func TestVerifySentinelErrors(t *testing.T) {
	md := machine.Base(8, machine.Sentinel)
	ref := &prog.Result{MemSum: 1, Out: []int64{1, 2}}

	err := verifyResult("x", md, &sim.Result{MemSum: 2}, ref)
	if !errors.Is(err, ErrChecksumMismatch) {
		t.Errorf("checksum mismatch not errors.Is(ErrChecksumMismatch): %v", err)
	}
	if err == nil || !strings.Contains(err.Error(), "x") || !strings.Contains(err.Error(), "sentinel") {
		t.Errorf("checksum error lacks cell context: %v", err)
	}

	err = verifyResult("x", md, &sim.Result{MemSum: 1, Out: []int64{1}}, ref)
	if !errors.Is(err, ErrOutputMismatch) {
		t.Errorf("length mismatch not errors.Is(ErrOutputMismatch): %v", err)
	}
	err = verifyResult("x", md, &sim.Result{MemSum: 1, Out: []int64{1, 3}}, ref)
	if !errors.Is(err, ErrOutputMismatch) {
		t.Errorf("value mismatch not errors.Is(ErrOutputMismatch): %v", err)
	}
	if err := verifyResult("x", md, &sim.Result{MemSum: 1, Out: []int64{1, 2}}, ref); err != nil {
		t.Errorf("matching result must verify: %v", err)
	}
}

// TestRunnerExtensionsMatchSerial pins the extension experiments' parallel
// rendering: -j 1 and -j 8 must agree byte for byte. (The serial originals
// were folded into the Runner; determinism across worker counts is the
// contract that replaced them.)
func TestRunnerExtensionsMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full extension sweep")
	}
	r1, r8 := NewRunner(1), NewRunner(8)
	for _, sec := range []struct {
		name string
		fn   func(*Runner) (string, error)
	}{
		{"RecoveryCost", (*Runner).RecoveryCost},
		{"StoreBufferSweep", (*Runner).StoreBufferSweep},
		{"SharingAblation", (*Runner).SharingAblation},
		{"BoostingComparison", (*Runner).BoostingComparison},
		{"FaultInjection", (*Runner).FaultInjection},
	} {
		a, err := sec.fn(r1)
		if err != nil {
			t.Fatalf("%s -j1: %v", sec.name, err)
		}
		b, err := sec.fn(r8)
		if err != nil {
			t.Fatalf("%s -j8: %v", sec.name, err)
		}
		if a != b {
			t.Errorf("%s: -j1 and -j8 outputs differ:\n%s\n----\n%s", sec.name, a, b)
		}
	}
}
