package eval

// The figure/table section renderer shared by `paperfigs` and the serving
// layer's /v1/figures endpoint. Both front-ends funnel through
// RenderSections with a shared Runner, so their bytes cannot drift: the CI
// serve job pins a served figure response byte-identical to the CLI's
// stdout.

import (
	"context"
	"fmt"
	"io"

	"sentinel/internal/machine"
	"sentinel/internal/superblock"
)

// Sections selects which tables/figures to emit, in the fixed output order
// of RenderSections.
type Sections struct {
	Fig4, Fig5, Table3, Overhead             bool
	Recovery, Buffer, Faults, Sharing, Boost bool
	Prediction                               bool
}

// AllSections selects every section, as `paperfigs -all` does.
func AllSections() Sections {
	return Sections{
		Fig4: true, Fig5: true, Table3: true, Overhead: true,
		Recovery: true, Buffer: true, Faults: true, Sharing: true, Boost: true,
		Prediction: true,
	}
}

// Any reports whether at least one section is selected.
func (s Sections) Any() bool {
	return s.Fig4 || s.Fig5 || s.Table3 || s.Overhead ||
		s.Recovery || s.Buffer || s.Faults || s.Sharing || s.Boost ||
		s.Prediction
}

// SectionByName sets the named section on s, reporting whether the name is
// known. Names match the paperfigs flags: fig4, fig5, table3, overhead,
// recovery, buffer, faults, sharing, boosting, prediction (and "all").
func (s *Sections) SectionByName(name string) bool {
	switch name {
	case "fig4":
		s.Fig4 = true
	case "fig5":
		s.Fig5 = true
	case "table3":
		s.Table3 = true
	case "overhead":
		s.Overhead = true
	case "recovery":
		s.Recovery = true
	case "buffer":
		s.Buffer = true
	case "faults":
		s.Faults = true
	case "sharing":
		s.Sharing = true
	case "boosting", "boost":
		s.Boost = true
	case "prediction":
		s.Prediction = true
	case "all":
		*s = AllSections()
	default:
		return false
	}
	return true
}

// RenderSections renders the selected sections to w using r for every
// measurement. The headline figures share one RunAll matrix; extension
// sections run through the same Runner, so artifacts are reused across
// sections. Cancellation stops the figure matrix between cells; an expired
// context returns its error with nothing further written.
func RenderSections(ctx context.Context, s Sections, r *Runner, w io.Writer) error {
	if s.Table3 {
		fmt.Fprintln(w, Table3())
	}

	var results []*BenchResult
	if s.Fig4 || s.Fig5 || s.Overhead {
		var err error
		results, err = r.RunAllCtx(ctx,
			[]machine.Model{machine.Restricted, machine.General,
				machine.Sentinel, machine.SentinelStores},
			Widths, superblock.Options{})
		if err != nil {
			return err
		}
	}
	if s.Fig4 {
		fmt.Fprintln(w, Figure4(results))
	}
	if s.Fig5 {
		fmt.Fprintln(w, Figure5(results))
	}
	if s.Overhead {
		fmt.Fprintln(w, SentinelOverheadTable(results, 8))
	}

	for _, sec := range []struct {
		on     bool
		render func() (string, error)
	}{
		{s.Recovery, r.RecoveryCost},
		{s.Buffer, r.StoreBufferSweep},
		{s.Faults, r.FaultInjection},
		{s.Sharing, r.SharingAblation},
		{s.Boost, r.BoostingComparison},
		{s.Prediction, r.PredictionStudy},
	} {
		if !sec.on {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		out, err := sec.render()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, out)
	}
	return nil
}
