package eval

// The concurrent experiment engine. The paper's evaluation is a large cell
// matrix (benchmark × model × width × options); the serial path in eval.go
// rebuilds, re-profiles and re-interprets the benchmark for every cell. The
// Runner instead computes each expensive per-benchmark artifact exactly once
// per process — the built ir program, the reference-interpreter result and
// profile, the formed superblock program per superblock.Options, and each
// scheduled program per machine configuration — behind singleflight caches,
// and fans the remaining per-cell work (simulation + verification) out over
// a bounded worker pool. Aggregation is ordered by cell key, never by
// completion order, so output is byte-identical at any worker count.
//
// Sharing discipline (see the concurrency notes on prog.Program, mem.Memory
// and workload.Benchmark.Build): cached programs and reference results are
// read-only once constructed; superblock.Form and core.Schedule clone their
// input internally; every simulation gets its own mem.Memory clone.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sentinel/internal/core"
	"sentinel/internal/machine"
	"sentinel/internal/mem"
	"sentinel/internal/prog"
	"sentinel/internal/sim"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

// CellKey names one cell of the experiment matrix: a benchmark compiled
// with the given formation options for the given machine. Runner errors
// wrap the failing cell's key.
type CellKey struct {
	Bench string
	MD    machine.Desc
	SBO   superblock.Options
}

func (k CellKey) String() string {
	s := fmt.Sprintf("%s/%v@%d", k.Bench, k.MD.Model, k.MD.IssueWidth)
	if k.MD.Recovery {
		s += "+recovery"
	}
	if k.MD.NoSharedSentinels {
		s += "+noshare"
	}
	return s
}

// flight is a singleflight-style memo: the first caller of a key computes
// the value while later callers block on it; afterwards the value is served
// from the cache. Errors are cached alongside values — within one process
// the inputs are deterministic, so recomputing a failed artifact cannot
// succeed.
type flight[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

func (f *flight[K, V]) get(k K, fn func() (V, error)) (V, error) {
	f.mu.Lock()
	if f.m == nil {
		f.m = map[K]*flightCall[V]{}
	}
	if c, ok := f.m[k]; ok {
		f.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.m[k] = c
	f.mu.Unlock()
	c.val, c.err = fn()
	close(c.done)
	return c.val, c.err
}

// buildArtifact is everything derivable from one benchmark independent of
// machine configuration: the built, laid-out, validated program; the
// pristine input memory image; and the reference-interpreter result with
// its execution profile. All fields are read-only after construction —
// simulations clone the memory, formation and scheduling clone the program.
type buildArtifact struct {
	prog *prog.Program
	mem  *mem.Memory
	ref  *prog.Result
}

type formKey struct {
	bench string
	sbo   superblock.Options
}

type schedArtifact struct {
	prog  *prog.Program
	stats core.Stats
}

// Runner runs experiment cells concurrently with per-benchmark artifact
// caching. The zero value is not usable; construct with NewRunner. A Runner
// is safe for concurrent use and may be shared across experiments — sharing
// one Runner across sections is what makes `paperfigs -all` cheap, since
// the figure sweep and the extension studies revisit many identical cells.
type Runner struct {
	workers int

	builds flight[string, *buildArtifact]
	forms  flight[formKey, *prog.Program]
	scheds flight[CellKey, *schedArtifact]
	cells  flight[CellKey, Cell]
}

// NewRunner returns a Runner that executes at most workers cells at once;
// workers < 1 selects GOMAXPROCS.
func NewRunner(workers int) *Runner {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers}
}

// Workers reports the configured parallelism.
func (r *Runner) Workers() int { return r.workers }

// build returns the benchmark's machine-independent artifact, computing it
// on first use: build + layout + validate + reference interpretation.
func (r *Runner) build(b workload.Benchmark) (*buildArtifact, error) {
	return r.builds.get(b.Name, func() (*buildArtifact, error) {
		p, m := b.Build()
		p.Layout()
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		ref, err := prog.Run(p, m.Clone(), prog.Options{Collect: true})
		if err != nil {
			return nil, fmt.Errorf("%s: reference: %w", b.Name, err)
		}
		return &buildArtifact{prog: p, mem: m, ref: ref}, nil
	})
}

// formed returns the benchmark's superblock-formed program for the given
// options, formed once per (benchmark, options) pair.
func (r *Runner) formed(b workload.Benchmark, sbo superblock.Options) (*prog.Program, error) {
	sbo = sbo.WithDefaults()
	return r.forms.get(formKey{b.Name, sbo}, func() (*prog.Program, error) {
		art, err := r.build(b)
		if err != nil {
			return nil, err
		}
		f := superblock.Form(art.prog, art.ref.Profile, sbo)
		f.Layout()
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("%s: formation: %w", b.Name, err)
		}
		return f, nil
	})
}

// scheduled returns the benchmark's scheduled program for the given machine
// configuration, compiled once per cell key.
func (r *Runner) scheduled(b workload.Benchmark, md machine.Desc, sbo superblock.Options) (*schedArtifact, error) {
	key := CellKey{b.Name, md, sbo.WithDefaults()}
	return r.scheds.get(key, func() (*schedArtifact, error) {
		f, err := r.formed(b, sbo)
		if err != nil {
			return nil, err
		}
		sched, stats, err := core.Schedule(f, md)
		if err != nil {
			return nil, fmt.Errorf("%s: schedule: %w", b.Name, err)
		}
		return &schedArtifact{prog: sched, stats: stats}, nil
	})
}

// Measure is the cached equivalent of the package-level Measure: it
// compiles and simulates one cell, verifying the architectural result
// against the reference interpreter, reusing every artifact the Runner has
// already computed for the benchmark. Identical cells are measured once.
func (r *Runner) Measure(b workload.Benchmark, md machine.Desc, sbo superblock.Options) (Cell, error) {
	key := CellKey{b.Name, md, sbo.WithDefaults()}
	return r.cells.get(key, func() (Cell, error) {
		art, err := r.build(b)
		if err != nil {
			return Cell{}, err
		}
		sa, err := r.scheduled(b, md, sbo)
		if err != nil {
			return Cell{}, err
		}
		res, err := sim.Run(sa.prog, md, art.mem.Clone(), sim.Options{})
		if err != nil {
			return Cell{}, fmt.Errorf("%s: simulate: %w", b.Name, err)
		}
		if err := verifyResult(b.Name, md, res, art.ref); err != nil {
			return Cell{}, err
		}
		return Cell{Cycles: res.Cycles, Instrs: res.Instrs, Stats: sa.stats}, nil
	})
}

// parallelFor runs fn(0..n-1) on up to r.workers goroutines and returns the
// lowest-index error (the same error a serial in-order run would hit
// first), so failures are independent of scheduling order.
func (r *Runner) parallelFor(n int, fn func(i int) error) error {
	workers := r.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run measures benchmark b under every model at every width plus the
// issue-1 restricted base, like the serial Run, with cells fanned out over
// the worker pool.
func (r *Runner) Run(b workload.Benchmark, models []machine.Model, widths []int, sbo superblock.Options) (*BenchResult, error) {
	rs, err := r.RunBenchmarks([]workload.Benchmark{b}, models, widths, sbo)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// RunAll measures every registered benchmark, like the serial RunAll, with
// the full cell matrix fanned out over the worker pool. Results are
// aggregated in benchmark order regardless of completion order, so the
// output is byte-identical to the serial path at any worker count.
func (r *Runner) RunAll(models []machine.Model, widths []int, sbo superblock.Options) ([]*BenchResult, error) {
	return r.RunBenchmarks(workload.All(), models, widths, sbo)
}

// RunBenchmarks measures the full cell matrix benches × (base ∪ models ×
// widths) concurrently and aggregates deterministically.
func (r *Runner) RunBenchmarks(benches []workload.Benchmark, models []machine.Model, widths []int, sbo superblock.Options) ([]*BenchResult, error) {
	type spec struct {
		bench int
		md    machine.Desc
	}
	var specs []spec
	for bi := range benches {
		specs = append(specs, spec{bi, machine.Base(1, machine.Restricted)})
		for _, model := range models {
			for _, w := range widths {
				specs = append(specs, spec{bi, machine.Base(w, model)})
			}
		}
	}
	cells := make([]Cell, len(specs))
	err := r.parallelFor(len(specs), func(i int) error {
		c, err := r.Measure(benches[specs[i].bench], specs[i].md, sbo)
		if err != nil {
			return fmt.Errorf("cell %v: %w",
				CellKey{benches[specs[i].bench].Name, specs[i].md, sbo.WithDefaults()}, err)
		}
		cells[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Deterministic aggregation: specs are laid out per benchmark as
	// [base, models × widths...], in the caller's order.
	stride := 1 + len(models)*len(widths)
	out := make([]*BenchResult, len(benches))
	for bi, b := range benches {
		base := cells[bi*stride]
		base.Speedup = 1
		br := &BenchResult{Name: b.Name, Numeric: b.Numeric, Base: base, Cells: map[Key]Cell{}}
		i := bi*stride + 1
		for _, model := range models {
			for _, w := range widths {
				c := cells[i]
				c.Speedup = float64(base.Cycles) / float64(c.Cycles)
				br.Cells[Key{model, w}] = c
				i++
			}
		}
		out[bi] = br
	}
	return out, nil
}
