package eval

// The concurrent experiment engine. The paper's evaluation is a large cell
// matrix (benchmark × model × width × options); the serial path in eval.go
// rebuilds, re-profiles and re-interprets the benchmark for every cell. The
// Runner instead computes each expensive per-benchmark artifact exactly once
// per process — the built ir program, the reference-interpreter result and
// profile, the formed superblock program per superblock.Options, and each
// scheduled program per machine configuration — behind singleflight caches,
// and fans the remaining per-cell work (simulation + verification) out over
// a bounded worker pool. Aggregation is ordered by cell key, never by
// completion order, so output is byte-identical at any worker count.
//
// Sharing discipline (see the concurrency notes on prog.Program, mem.Memory
// and workload.Benchmark.Build): cached programs and reference results are
// read-only once constructed; superblock.Form and core.Schedule clone their
// input internally; every simulation gets its own mem.Memory clone.

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sentinel/internal/core"
	"sentinel/internal/machine"
	"sentinel/internal/mem"
	"sentinel/internal/obs"
	"sentinel/internal/prog"
	"sentinel/internal/sim"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

// CellKey names one cell of the experiment matrix: a benchmark compiled
// with the given formation options for the given machine. Runner errors
// wrap the failing cell's key.
type CellKey struct {
	Bench string
	MD    machine.Desc
	SBO   superblock.Options
}

func (k CellKey) String() string {
	s := fmt.Sprintf("%s/%v@%d", k.Bench, k.MD.Model, k.MD.IssueWidth)
	if k.MD.Recovery {
		s += "+recovery"
	}
	if k.MD.NoSharedSentinels {
		s += "+noshare"
	}
	if k.MD.Predictor != machine.PredPerfect {
		s += "+" + k.MD.Predictor.String()
	}
	return s
}

// buildArtifact is everything derivable from one benchmark independent of
// machine configuration: the built, laid-out, validated program; the
// pristine input memory image; and the reference-interpreter result with
// its execution profile. All fields are read-only after construction —
// simulations clone the memory, formation and scheduling clone the program.
type buildArtifact struct {
	prog *prog.Program
	mem  *mem.Memory
	ref  *prog.Result
}

type formKey struct {
	bench string
	sbo   superblock.Options
}

type schedArtifact struct {
	prog  *prog.Program
	stats core.Stats
	// index is the simulator's PC index for prog, built once alongside the
	// schedule and shared by every simulation of this cell.
	index *sim.ProgIndex
}

// Runner runs experiment cells concurrently with per-benchmark artifact
// caching. The zero value is not usable; construct with NewRunner. A Runner
// is safe for concurrent use and may be shared across experiments — sharing
// one Runner across sections is what makes `paperfigs -all` cheap, since
// the figure sweep and the extension studies revisit many identical cells.
type Runner struct {
	workers int

	// Metrics instruments, nil unless SetMetrics was called. Every handle
	// is nil-safe (obs's disabled path), but time.Now calls are still gated
	// on cellTime/busy to keep the disabled path free of syscalls.
	reg      *obs.Registry
	cellTime *obs.Histogram // per-cell wall time, ns
	busy     *obs.Counter   // summed worker busy time, ns
	span     *obs.Counter   // summed parallelFor wall spans, ns

	builds flight[string, *buildArtifact]
	forms  flight[formKey, *prog.Program]
	scheds flight[CellKey, *schedArtifact]
	cells  flight[CellKey, Cell]

	// caches is the metrics/Reset view over the four flights above, built
	// once at construction — CacheStats and the registry gauges iterate it
	// instead of rebuilding a map of closures per scrape.
	caches []namedCache

	// onReset callbacks run after every Reset, in registration order —
	// how derived caches (the server's response-byte cache) stay coherent
	// with the artifact caches they were computed from.
	resetMu sync.Mutex
	onReset []func()
}

// NewRunner returns a Runner that executes at most workers cells at once;
// workers < 1 selects GOMAXPROCS.
func NewRunner(workers int) *Runner {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := &Runner{workers: workers}
	r.builds.arg = obs.ArgBuilds
	r.forms.arg = obs.ArgForms
	r.scheds.arg = obs.ArgScheds
	r.cells.arg = obs.ArgCells
	r.caches = []namedCache{
		{"builds", view(&r.builds)},
		{"forms", view(&r.forms)},
		{"scheds", view(&r.scheds)},
		{"cells", view(&r.cells)},
	}
	return r
}

// Workers reports the configured parallelism.
func (r *Runner) Workers() int { return r.workers }

// SetMetrics attaches a metrics registry: per-cell wall-time histogram,
// worker busy/span counters, and gauges for every artifact cache's size,
// hits and misses. Pass nil to detach (the default: no metrics, no timing
// syscalls on the measurement path). Call before running cells, not during.
func (r *Runner) SetMetrics(reg *obs.Registry) {
	r.reg = reg
	if reg == nil {
		r.cellTime, r.busy, r.span = nil, nil, nil
		return
	}
	r.cellTime = reg.Histogram("runner.cell_ns")
	r.busy = reg.Counter("runner.busy_ns")
	r.span = reg.Counter("runner.span_ns")
	reg.Gauge("runner.workers", func() int64 { return int64(r.workers) })
	for _, c := range r.caches {
		c := c
		reg.Gauge("runner.cache."+c.name+".size", func() int64 { return int64(c.size()) })
		reg.Gauge("runner.cache."+c.name+".hits", func() int64 { return c.hits() })
		reg.Gauge("runner.cache."+c.name+".misses", func() int64 { return c.misses() })
	}
}

// cacheView abstracts one generic flight cache for metrics and Reset.
type cacheView struct {
	size   func() int
	hits   func() int64
	misses func() int64
	reset  func()
}

// namedCache pairs a cacheView with its stable metrics name. The Runner
// builds the full table once in NewRunner; everything that used to rebuild
// a map of closures per call (CacheStats on every /debug/vars scrape, the
// gauges, Reset) walks this slice instead.
type namedCache struct {
	name string
	cacheView
}

func view[K comparable, V any](f *flight[K, V]) cacheView {
	return cacheView{
		size:   f.len,
		hits:   f.hits.Load,
		misses: f.misses.Load,
		reset:  f.reset,
	}
}

// CacheStats is one artifact cache's effectiveness snapshot.
type CacheStats struct {
	Size         int
	Hits, Misses int64
}

// CacheStats reports every artifact cache's current size and hit/miss
// counts, keyed by cache name (builds, forms, scheds, cells). This is how a
// long-lived Runner's growth is observed — see Reset.
func (r *Runner) CacheStats() map[string]CacheStats {
	out := make(map[string]CacheStats, len(r.caches))
	for _, c := range r.caches {
		out[c.name] = CacheStats{Size: c.size(), Hits: c.hits(), Misses: c.misses()}
	}
	return out
}

// CacheHitsMisses sums hit and miss counts across every artifact cache
// without allocating — the per-scrape form of CacheStats that metric gauges
// (the server's cache_hit_permille) poll on a hot service.
func (r *Runner) CacheHitsMisses() (hits, misses int64) {
	for _, c := range r.caches {
		hits += c.hits()
		misses += c.misses()
	}
	return hits, misses
}

// OnReset registers fn to run after every Reset, in registration order.
// Derived caches — anything whose entries were computed from this Runner's
// artifacts, like the serving layer's response-byte cache — hook in here so
// dropping the artifacts also drops everything memoized on top of them.
func (r *Runner) OnReset(fn func()) {
	r.resetMu.Lock()
	r.onReset = append(r.onReset, fn)
	r.resetMu.Unlock()
}

// Reset drops every cached artifact (hit/miss counters persist). The caches
// otherwise grow without bound across RunAll sweeps — one entry per distinct
// cell key — which is what makes a shared Runner fast within one figure
// regeneration but a leak in a long-lived process sweeping many
// configurations. Must not be called concurrently with in-flight
// measurements.
func (r *Runner) Reset() {
	for _, c := range r.caches {
		c.reset()
	}
	r.resetMu.Lock()
	fns := r.onReset
	r.resetMu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// MetricsSummary renders the one-shot text summary of the attached
// registry, prefixed with derived worker utilization (busy / span×workers).
// Empty when SetMetrics was never called.
func (r *Runner) MetricsSummary() string {
	if r.reg == nil {
		return ""
	}
	var b strings.Builder
	if span := r.span.Value(); span > 0 {
		util := float64(r.busy.Value()) / (float64(span) * float64(r.workers))
		fmt.Fprintf(&b, "worker utilization: %.1f%% (%d workers)\n", 100*util, r.workers)
	}
	if s := r.cellTime.Snapshot(); s.Count > 0 {
		fmt.Fprintf(&b, "cell wall time: n=%d mean=%s min=%s max=%s\n",
			s.Count, time.Duration(int64(s.Mean())), time.Duration(s.Min), time.Duration(s.Max))
	}
	b.WriteString(r.reg.Summary())
	return b.String()
}

// build returns the benchmark's machine-independent artifact, computing it
// on first use: build + layout + validate + reference interpretation.
func (r *Runner) build(b workload.Benchmark) (*buildArtifact, error) {
	return r.buildCtx(context.Background(), b)
}

func (r *Runner) buildCtx(ctx context.Context, b workload.Benchmark) (*buildArtifact, error) {
	return r.builds.getCtx(ctx, b.Name, func() (*buildArtifact, error) {
		rec := obs.RecordFrom(ctx)
		rec.Start(obs.StageCompile, obs.ArgBuilds)
		defer rec.End()
		p, m := b.Build()
		p.Layout()
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		ref, err := prog.Run(p, m.Clone(), prog.Options{Collect: true})
		if err != nil {
			return nil, fmt.Errorf("%s: reference: %w", b.Name, err)
		}
		return &buildArtifact{prog: p, mem: m, ref: ref}, nil
	})
}

// formed returns the benchmark's superblock-formed program for the given
// options, formed once per (benchmark, options) pair.
func (r *Runner) formed(ctx context.Context, b workload.Benchmark, sbo superblock.Options) (*prog.Program, error) {
	sbo = sbo.WithDefaults()
	return r.forms.getCtx(ctx, formKey{b.Name, sbo}, func() (*prog.Program, error) {
		art, err := r.buildCtx(ctx, b)
		if err != nil {
			return nil, err
		}
		rec := obs.RecordFrom(ctx)
		rec.Start(obs.StageCompile, obs.ArgForms)
		defer rec.End()
		f := superblock.Form(art.prog, art.ref.Profile, sbo)
		f.Layout()
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("%s: formation: %w", b.Name, err)
		}
		return f, nil
	})
}

// scheduled returns the benchmark's scheduled program for the given machine
// configuration, compiled once per cell key. The key uses the machine's
// CompileView: the scheduler never consults the branch-prediction frontend,
// so one schedule is computed and shared across every predictor that
// simulates it.
func (r *Runner) scheduled(ctx context.Context, b workload.Benchmark, md machine.Desc, sbo superblock.Options) (*schedArtifact, error) {
	md = md.CompileView()
	key := CellKey{b.Name, md, sbo.WithDefaults()}
	return r.scheds.getCtx(ctx, key, func() (*schedArtifact, error) {
		f, err := r.formed(ctx, b, sbo)
		if err != nil {
			return nil, err
		}
		rec := obs.RecordFrom(ctx)
		rec.Start(obs.StageSchedule, obs.ArgNone)
		defer rec.End()
		sched, stats, err := core.Schedule(f, md)
		if err != nil {
			return nil, fmt.Errorf("%s: schedule: %w", b.Name, err)
		}
		return &schedArtifact{prog: sched, stats: stats, index: sim.NewProgIndex(sched)}, nil
	})
}

// Measure is the cached equivalent of the package-level Measure: it
// compiles and simulates one cell, verifying the architectural result
// against the reference interpreter, reusing every artifact the Runner has
// already computed for the benchmark. Identical cells are measured once.
func (r *Runner) Measure(b workload.Benchmark, md machine.Desc, sbo superblock.Options) (Cell, error) {
	return r.MeasureCtx(context.Background(), b, md, sbo)
}

// MeasureCtx is Measure with cancellation: an expired context stops the
// measurement before the next pipeline stage and unblocks a caller waiting
// on another goroutine's in-flight computation of the same cell (which
// itself runs to completion and is cached — concurrent identical requests
// coalesce onto it).
func (r *Runner) MeasureCtx(ctx context.Context, b workload.Benchmark, md machine.Desc, sbo superblock.Options) (Cell, error) {
	key := CellKey{b.Name, md, sbo.WithDefaults()}
	return r.cells.getCtx(ctx, key, func() (Cell, error) {
		var t0 time.Time
		if r.cellTime != nil {
			t0 = time.Now()
		}
		art, err := r.buildCtx(ctx, b)
		if err != nil {
			return Cell{}, err
		}
		sa, err := r.scheduled(ctx, b, md, sbo)
		if err != nil {
			return Cell{}, err
		}
		rec := obs.RecordFrom(ctx)
		rec.Start(obs.StageSimulate, obs.ArgNone)
		res, err := sim.Run(sa.prog, md, art.mem.Clone(), sim.Options{Index: sa.index})
		rec.End()
		if err != nil {
			return Cell{}, fmt.Errorf("%s: simulate: %w", b.Name, err)
		}
		if err := verifyResult(b.Name, md, res, art.ref); err != nil {
			return Cell{}, err
		}
		if r.cellTime != nil {
			r.cellTime.Observe(time.Since(t0).Nanoseconds())
		}
		return Cell{Cycles: res.Cycles, Instrs: res.Instrs, Stats: sa.stats, Sim: res.Stats}, nil
	})
}

// Simulate runs one cell's simulation with the given simulator options
// (typically a tracer) attached, reusing every cached artifact but caching
// nothing itself and skipping verification — the entry point `paperfigs
// -trace` and ad-hoc profiling use to observe a cell without perturbing the
// measured matrix.
func (r *Runner) Simulate(b workload.Benchmark, md machine.Desc, sbo superblock.Options, opts sim.Options) (*sim.Result, error) {
	return r.SimulateCtx(context.Background(), b, md, sbo, opts)
}

// SimulateCtx is Simulate with cancellation of the artifact-compilation
// stages (see MeasureCtx). The simulation itself, once started, runs to
// completion.
func (r *Runner) SimulateCtx(ctx context.Context, b workload.Benchmark, md machine.Desc, sbo superblock.Options, opts sim.Options) (*sim.Result, error) {
	art, err := r.buildCtx(ctx, b)
	if err != nil {
		return nil, err
	}
	sa, err := r.scheduled(ctx, b, md, sbo)
	if err != nil {
		return nil, err
	}
	if opts.Index == nil {
		opts.Index = sa.index
	}
	res, err := sim.Run(sa.prog, md, art.mem.Clone(), opts)
	if err != nil {
		return nil, fmt.Errorf("%s: simulate: %w", b.Name, err)
	}
	return res, nil
}

// Prepared is one cell's compiled artifact set, for callers that run their
// own simulations instead of going through Measure — fault injection,
// tracing, and the serving layer's uncached simulate path. Prog, Index, Ref
// and Stats are shared read-only cached artifacts; Mem is a fresh clone of
// the benchmark's pristine input image that the caller owns outright (and
// may mutate, e.g. paging a segment out before the run).
type Prepared struct {
	Prog  *prog.Program
	Index *sim.ProgIndex
	Stats core.Stats
	Ref   *prog.Result
	Mem   *mem.Memory
}

// PreparedCtx compiles (or fetches from cache) one cell's artifacts without
// simulating it.
func (r *Runner) PreparedCtx(ctx context.Context, b workload.Benchmark, md machine.Desc, sbo superblock.Options) (Prepared, error) {
	art, err := r.buildCtx(ctx, b)
	if err != nil {
		return Prepared{}, err
	}
	sa, err := r.scheduled(ctx, b, md, sbo)
	if err != nil {
		return Prepared{}, err
	}
	return Prepared{Prog: sa.prog, Index: sa.index, Stats: sa.stats, Ref: art.ref, Mem: art.mem.Clone()}, nil
}

// parallelFor runs fn(0..n-1) on up to r.workers goroutines and returns the
// lowest-index error (the same error a serial in-order run would hit
// first), so failures are independent of scheduling order.
func (r *Runner) parallelFor(n int, fn func(i int) error) error {
	return r.parallelForCtx(context.Background(), n, fn)
}

// ParallelCtx is the exported form of the Runner's fan-out primitive, for
// callers outside the package (the server's batch path): fn(0..n-1) runs on
// up to the Runner's workers, no further index is dispatched once ctx
// expires, and errors surface lowest-index-first. Any request record in ctx
// is stripped before dispatch (records are single-goroutine); a closure
// capturing a record-carrying context must strip its own copy.
func (r *Runner) ParallelCtx(ctx context.Context, n int, fn func(i int) error) error {
	return r.parallelForCtx(ctx, n, fn)
}

// parallelForCtx is parallelFor with cancellation: once ctx expires no
// further index is dispatched (already-running fn calls finish), and the
// context's error is returned in place of any per-index error — the results
// are incomplete, so no per-index error can be meaningfully "first".
func (r *Runner) parallelForCtx(ctx context.Context, n int, fn func(i int) error) error {
	// A request record is single-goroutine; fan-out would race on its span
	// arena. Strip it before dispatch (even at workers=1, so the recorded
	// shape does not depend on the worker count). Callers whose fn closure
	// captures a request-carrying ctx must strip that one themselves —
	// RunBenchmarksCtx does.
	if obs.RecordFrom(ctx) != nil {
		ctx = obs.ContextWithRecord(ctx, nil)
	}
	workers := r.workers
	if workers > n {
		workers = n
	}
	if r.busy != nil {
		inner := fn
		fn = func(i int) error {
			t0 := time.Now()
			defer func() { r.busy.Add(time.Since(t0).Nanoseconds()) }()
			return inner(i)
		}
		start := time.Now()
		defer func() { r.span.Add(time.Since(start).Nanoseconds()) }()
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run measures benchmark b under every model at every width plus the
// issue-1 restricted base, like the serial Run, with cells fanned out over
// the worker pool.
func (r *Runner) Run(b workload.Benchmark, models []machine.Model, widths []int, sbo superblock.Options) (*BenchResult, error) {
	return r.RunCtx(context.Background(), b, models, widths, sbo)
}

// RunCtx is Run with cancellation (see RunBenchmarksCtx).
func (r *Runner) RunCtx(ctx context.Context, b workload.Benchmark, models []machine.Model, widths []int, sbo superblock.Options) (*BenchResult, error) {
	rs, err := r.RunBenchmarksCtx(ctx, []workload.Benchmark{b}, models, widths, sbo)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// RunAll measures every registered benchmark, like the serial RunAll, with
// the full cell matrix fanned out over the worker pool. Results are
// aggregated in benchmark order regardless of completion order, so the
// output is byte-identical to the serial path at any worker count.
func (r *Runner) RunAll(models []machine.Model, widths []int, sbo superblock.Options) ([]*BenchResult, error) {
	return r.RunAllCtx(context.Background(), models, widths, sbo)
}

// RunAllCtx is RunAll with cancellation (see RunBenchmarksCtx).
func (r *Runner) RunAllCtx(ctx context.Context, models []machine.Model, widths []int, sbo superblock.Options) ([]*BenchResult, error) {
	return r.RunBenchmarksCtx(ctx, workload.All(), models, widths, sbo)
}

// RunBenchmarks measures the full cell matrix benches × (base ∪ models ×
// widths) concurrently and aggregates deterministically.
func (r *Runner) RunBenchmarks(benches []workload.Benchmark, models []machine.Model, widths []int, sbo superblock.Options) ([]*BenchResult, error) {
	return r.RunBenchmarksCtx(context.Background(), benches, models, widths, sbo)
}

// RunBenchmarksCtx is RunBenchmarks with cancellation: once ctx expires,
// queued cells are no longer dispatched (in-flight cells complete and stay
// cached) and the context's error is returned.
func (r *Runner) RunBenchmarksCtx(ctx context.Context, benches []workload.Benchmark, models []machine.Model, widths []int, sbo superblock.Options) ([]*BenchResult, error) {
	// The per-cell closure below captures ctx and runs on pool workers; a
	// request record is single-goroutine, so detach it here — before the
	// capture — not just inside parallelForCtx.
	if obs.RecordFrom(ctx) != nil {
		ctx = obs.ContextWithRecord(ctx, nil)
	}
	type spec struct {
		bench int
		md    machine.Desc
	}
	var specs []spec
	for bi := range benches {
		specs = append(specs, spec{bi, machine.Base(1, machine.Restricted)})
		for _, model := range models {
			for _, w := range widths {
				specs = append(specs, spec{bi, machine.Base(w, model)})
			}
		}
	}
	cells := make([]Cell, len(specs))
	err := r.parallelForCtx(ctx, len(specs), func(i int) error {
		c, err := r.MeasureCtx(ctx, benches[specs[i].bench], specs[i].md, sbo)
		if err != nil {
			return fmt.Errorf("cell %v: %w",
				CellKey{benches[specs[i].bench].Name, specs[i].md, sbo.WithDefaults()}, err)
		}
		cells[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Deterministic aggregation: specs are laid out per benchmark as
	// [base, models × widths...], in the caller's order.
	stride := 1 + len(models)*len(widths)
	out := make([]*BenchResult, len(benches))
	for bi, b := range benches {
		base := cells[bi*stride]
		base.Speedup = 1
		br := &BenchResult{Name: b.Name, Numeric: b.Numeric, Base: base, Cells: map[Key]Cell{}}
		i := bi*stride + 1
		for _, model := range models {
			for _, w := range widths {
				c := cells[i]
				c.Speedup = float64(base.Cycles) / float64(c.Cycles)
				br.Cells[Key{model, w}] = c
				i++
			}
		}
		out[bi] = br
	}
	return out, nil
}
