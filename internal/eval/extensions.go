package eval

import (
	"fmt"
	"strings"

	"sentinel/internal/machine"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

// RecoveryCost quantifies the §3.7 recovery constraints' performance impact
// — the experiment the paper defers ("We are currently quantifying this
// performance impact"): sentinel scheduling with and without restartable-
// sequence enforcement, at issue 8.
func RecoveryCost() (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Recovery-constraint cost (extension; issue 8, sentinel model)\n\n")
	fmt.Fprintf(&sb, "%-11s %10s %10s %8s %8s %7s\n",
		"benchmark", "S cycles", "S+rec", "slowdown", "renamed", "forced")
	totS, totR := 0.0, 0.0
	for _, b := range workload.All() {
		s, err := Measure(b, machine.Base(8, machine.Sentinel), superblock.Options{})
		if err != nil {
			return "", err
		}
		r, err := Measure(b, machine.Base(8, machine.Sentinel).WithRecovery(), superblock.Options{})
		if err != nil {
			return "", err
		}
		slow := float64(r.Cycles)/float64(s.Cycles) - 1
		totS += 1
		totR += float64(r.Cycles) / float64(s.Cycles)
		fmt.Fprintf(&sb, "%-11s %10d %10d %+7.1f%% %8d %7d\n",
			b.Name, s.Cycles, r.Cycles, slow*100, r.Stats.Renamed, r.Stats.ForcedIssues)
	}
	fmt.Fprintf(&sb, "\naverage slowdown: %+.1f%%\n", (totR/totS-1)*100)
	return sb.String(), nil
}

// StoreBufferSweep measures sentinel scheduling with speculative stores as
// the store-buffer size varies: the §4.2 separation constraint ties a
// speculative store to a confirm at most N-1 stores away, so small buffers
// limit store speculation.
func StoreBufferSweep() (string, error) {
	sizes := []int{2, 4, 8, 16}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Store-buffer size sweep (extension; issue 8, sentinel+stores)\n\n")
	fmt.Fprintf(&sb, "%-11s", "benchmark")
	for _, n := range sizes {
		fmt.Fprintf(&sb, "  N=%-7d", n)
	}
	fmt.Fprintf(&sb, "\n")
	for _, b := range workload.All() {
		fmt.Fprintf(&sb, "%-11s", b.Name)
		for _, n := range sizes {
			md := machine.Base(8, machine.SentinelStores)
			md.StoreBuffer = n
			c, err := Measure(b, md, superblock.Options{})
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "  %-9d", c.Cycles)
		}
		fmt.Fprintf(&sb, "\n")
	}
	return sb.String(), nil
}

// SharingAblation measures the §3.1 shared-sentinel optimization: with
// sharing, a home-block use of a speculated instruction's result doubles as
// its sentinel; without it, every speculated trapping instruction needs its
// own check_exception. The ablation reports the extra checks and their
// cycle cost at issue 2 (slot-starved) and issue 8.
func SharingAblation() (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Shared-sentinel ablation (extension; sentinel model)\n\n")
	fmt.Fprintf(&sb, "%-11s %8s %8s   %10s %10s   %10s %10s\n",
		"benchmark", "checks", "nochecks", "cyc@2", "noshare@2", "cyc@8", "noshare@8")
	for _, b := range workload.All() {
		row := make(map[string]Cell)
		for _, w := range []int{2, 8} {
			shared, err := Measure(b, machine.Base(w, machine.Sentinel), superblock.Options{})
			if err != nil {
				return "", err
			}
			noshare, err := Measure(b, machine.Base(w, machine.Sentinel).WithoutSharedSentinels(), superblock.Options{})
			if err != nil {
				return "", err
			}
			row[fmt.Sprintf("s%d", w)] = shared
			row[fmt.Sprintf("n%d", w)] = noshare
		}
		fmt.Fprintf(&sb, "%-11s %8d %8d   %10d %10d   %10d %10d\n",
			b.Name,
			row["s8"].Stats.Sentinels, row["n8"].Stats.Sentinels,
			row["s2"].Cycles, row["n2"].Cycles,
			row["s8"].Cycles, row["n8"].Cycles)
	}
	return sb.String(), nil
}

// BoostingComparison measures instruction boosting (§2.3) against sentinel
// scheduling and general percolation at issue 8, across shadow-level
// budgets. The paper's argument is that boosting's hardware cost grows with
// the number of branches an instruction can be boosted above, while
// sentinel scheduling gets unlimited-depth speculation from one tag bit per
// register: boosting should approach (but not quite reach) sentinel
// performance as levels grow.
func BoostingComparison() (string, error) {
	levels := []int{1, 2, 4}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Instruction boosting vs sentinel scheduling (extension; issue 8, speedup vs base)\n\n")
	fmt.Fprintf(&sb, "%-11s", "benchmark")
	for _, l := range levels {
		fmt.Fprintf(&sb, "  B%-6d", l)
	}
	fmt.Fprintf(&sb, "  %-7s %-7s\n", "S", "G")
	for _, b := range workload.All() {
		base, err := Measure(b, machine.Base(1, machine.Restricted), superblock.Options{})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%-11s", b.Name)
		for _, l := range levels {
			md := machine.Base(8, machine.Boosting)
			md.BoostLevels = l
			c, err := Measure(b, md, superblock.Options{})
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "  %-7.2f", float64(base.Cycles)/float64(c.Cycles))
		}
		s, err := Measure(b, machine.Base(8, machine.Sentinel), superblock.Options{})
		if err != nil {
			return "", err
		}
		g, err := Measure(b, machine.Base(8, machine.General), superblock.Options{})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "  %-7.2f %-7.2f\n",
			float64(base.Cycles)/float64(s.Cycles), float64(base.Cycles)/float64(g.Cycles))
	}
	return sb.String(), nil
}
