package eval

import (
	"fmt"
	"strings"

	"sentinel/internal/machine"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

// The extension experiments fan their per-benchmark measurements out over
// the Runner's worker pool, then format rows strictly in benchmark order so
// the tables are byte-identical at any worker count.

// RecoveryCost quantifies the §3.7 recovery constraints' performance impact
// — the experiment the paper defers ("We are currently quantifying this
// performance impact"): sentinel scheduling with and without restartable-
// sequence enforcement, at issue 8.
func (r *Runner) RecoveryCost() (string, error) {
	benches := workload.All()
	type row struct{ s, rec Cell }
	rows := make([]row, len(benches))
	err := r.parallelFor(len(benches), func(i int) error {
		s, err := r.Measure(benches[i], machine.Base(8, machine.Sentinel), superblock.Options{})
		if err != nil {
			return err
		}
		rec, err := r.Measure(benches[i], machine.Base(8, machine.Sentinel).WithRecovery(), superblock.Options{})
		if err != nil {
			return err
		}
		rows[i] = row{s, rec}
		return nil
	})
	if err != nil {
		return "", err
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "Recovery-constraint cost (extension; issue 8, sentinel model)\n\n")
	fmt.Fprintf(&sb, "%-11s %10s %10s %8s %8s %7s\n",
		"benchmark", "S cycles", "S+rec", "slowdown", "renamed", "forced")
	totS, totR := 0.0, 0.0
	for i, b := range benches {
		s, rec := rows[i].s, rows[i].rec
		slow := float64(rec.Cycles)/float64(s.Cycles) - 1
		totS += 1
		totR += float64(rec.Cycles) / float64(s.Cycles)
		fmt.Fprintf(&sb, "%-11s %10d %10d %+7.1f%% %8d %7d\n",
			b.Name, s.Cycles, rec.Cycles, slow*100, rec.Stats.Renamed, rec.Stats.ForcedIssues)
	}
	fmt.Fprintf(&sb, "\naverage slowdown: %+.1f%%\n", (totR/totS-1)*100)
	return sb.String(), nil
}

// StoreBufferSweep measures sentinel scheduling with speculative stores as
// the store-buffer size varies: the §4.2 separation constraint ties a
// speculative store to a confirm at most N-1 stores away, so small buffers
// limit store speculation.
func (r *Runner) StoreBufferSweep() (string, error) {
	sizes := []int{2, 4, 8, 16}
	benches := workload.All()
	rows := make([][]Cell, len(benches))
	for i := range rows {
		rows[i] = make([]Cell, len(sizes))
	}
	err := r.parallelFor(len(benches)*len(sizes), func(i int) error {
		bi, si := i/len(sizes), i%len(sizes)
		md := machine.Base(8, machine.SentinelStores)
		md.StoreBuffer = sizes[si]
		c, err := r.Measure(benches[bi], md, superblock.Options{})
		if err != nil {
			return err
		}
		rows[bi][si] = c
		return nil
	})
	if err != nil {
		return "", err
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "Store-buffer size sweep (extension; issue 8, sentinel+stores)\n\n")
	fmt.Fprintf(&sb, "%-11s", "benchmark")
	for _, n := range sizes {
		fmt.Fprintf(&sb, "  N=%-7d", n)
	}
	fmt.Fprintf(&sb, "\n")
	for i, b := range benches {
		fmt.Fprintf(&sb, "%-11s", b.Name)
		for si := range sizes {
			fmt.Fprintf(&sb, "  %-9d", rows[i][si].Cycles)
		}
		fmt.Fprintf(&sb, "\n")
	}
	return sb.String(), nil
}

// SharingAblation measures the §3.1 shared-sentinel optimization: with
// sharing, a home-block use of a speculated instruction's result doubles as
// its sentinel; without it, every speculated trapping instruction needs its
// own check_exception. The ablation reports the extra checks and their
// cycle cost at issue 2 (slot-starved) and issue 8.
func (r *Runner) SharingAblation() (string, error) {
	widths := []int{2, 8}
	benches := workload.All()
	type row struct{ shared, noshare [2]Cell }
	rows := make([]row, len(benches))
	err := r.parallelFor(len(benches)*len(widths), func(i int) error {
		bi, wi := i/len(widths), i%len(widths)
		w := widths[wi]
		shared, err := r.Measure(benches[bi], machine.Base(w, machine.Sentinel), superblock.Options{})
		if err != nil {
			return err
		}
		noshare, err := r.Measure(benches[bi], machine.Base(w, machine.Sentinel).WithoutSharedSentinels(), superblock.Options{})
		if err != nil {
			return err
		}
		rows[bi].shared[wi] = shared
		rows[bi].noshare[wi] = noshare
		return nil
	})
	if err != nil {
		return "", err
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "Shared-sentinel ablation (extension; sentinel model)\n\n")
	fmt.Fprintf(&sb, "%-11s %8s %8s   %10s %10s   %10s %10s\n",
		"benchmark", "checks", "nochecks", "cyc@2", "noshare@2", "cyc@8", "noshare@8")
	for i, b := range benches {
		fmt.Fprintf(&sb, "%-11s %8d %8d   %10d %10d   %10d %10d\n",
			b.Name,
			rows[i].shared[1].Stats.Sentinels, rows[i].noshare[1].Stats.Sentinels,
			rows[i].shared[0].Cycles, rows[i].noshare[0].Cycles,
			rows[i].shared[1].Cycles, rows[i].noshare[1].Cycles)
	}
	return sb.String(), nil
}

// BoostingComparison measures instruction boosting (§2.3) against sentinel
// scheduling and general percolation at issue 8, across shadow-level
// budgets. The paper's argument is that boosting's hardware cost grows with
// the number of branches an instruction can be boosted above, while
// sentinel scheduling gets unlimited-depth speculation from one tag bit per
// register: boosting should approach (but not quite reach) sentinel
// performance as levels grow.
func (r *Runner) BoostingComparison() (string, error) {
	levels := []int{1, 2, 4}
	benches := workload.All()
	type row struct {
		base    Cell
		boosted []Cell
		s, g    Cell
	}
	rows := make([]row, len(benches))
	err := r.parallelFor(len(benches), func(i int) error {
		base, err := r.Measure(benches[i], machine.Base(1, machine.Restricted), superblock.Options{})
		if err != nil {
			return err
		}
		boosted := make([]Cell, len(levels))
		for li, l := range levels {
			md := machine.Base(8, machine.Boosting)
			md.BoostLevels = l
			if boosted[li], err = r.Measure(benches[i], md, superblock.Options{}); err != nil {
				return err
			}
		}
		s, err := r.Measure(benches[i], machine.Base(8, machine.Sentinel), superblock.Options{})
		if err != nil {
			return err
		}
		g, err := r.Measure(benches[i], machine.Base(8, machine.General), superblock.Options{})
		if err != nil {
			return err
		}
		rows[i] = row{base: base, boosted: boosted, s: s, g: g}
		return nil
	})
	if err != nil {
		return "", err
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "Instruction boosting vs sentinel scheduling (extension; issue 8, speedup vs base)\n\n")
	fmt.Fprintf(&sb, "%-11s", "benchmark")
	for _, l := range levels {
		fmt.Fprintf(&sb, "  B%-6d", l)
	}
	fmt.Fprintf(&sb, "  %-7s %-7s\n", "S", "G")
	for i, b := range benches {
		fmt.Fprintf(&sb, "%-11s", b.Name)
		for li := range levels {
			fmt.Fprintf(&sb, "  %-7.2f", float64(rows[i].base.Cycles)/float64(rows[i].boosted[li].Cycles))
		}
		fmt.Fprintf(&sb, "  %-7.2f %-7.2f\n",
			float64(rows[i].base.Cycles)/float64(rows[i].s.Cycles),
			float64(rows[i].base.Cycles)/float64(rows[i].g.Cycles))
	}
	return sb.String(), nil
}
