package eval

// The sharded flight's contract: shard count is invisible in every
// observable way. The context-error eviction regressions from ctx_test.go
// are re-run here across shard counts {1, 4, 16}, and a determinism test
// pins that values, error caching, hit/miss counts, len and reset behave
// identically no matter how the keys stripe.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var flightShardCounts = []int{1, 4, 16}

// TestFlightShardWaiterAbandons ports TestFlightGetCtxWaiterAbandons across
// shard counts: an abandoning waiter never evicts the owner's computation.
func TestFlightShardWaiterAbandons(t *testing.T) {
	for _, n := range flightShardCounts {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			f := newFlight[int, int](n)
			block := make(chan struct{})
			computing := make(chan struct{})
			go func() {
				f.get(1, func() (int, error) {
					close(computing)
					<-block
					return 42, nil
				}) //nolint:errcheck
			}()
			<-computing

			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
			defer cancel()
			if _, err := f.getCtx(ctx, 1, func() (int, error) { return 0, nil }); !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("waiter err = %v, want DeadlineExceeded", err)
			}

			close(block)
			v, err := f.getCtx(context.Background(), 1, func() (int, error) {
				t.Error("recompute after the owner cached the value")
				return 0, nil
			})
			if err != nil || v != 42 {
				t.Fatalf("cached get = %d, %v; want 42, nil", v, err)
			}
		})
	}
}

// TestFlightShardOwnerExpires ports TestFlightGetCtxOwnerExpires across
// shard counts: an owner's context error is evicted, not cached, whichever
// shard the key lands in.
func TestFlightShardOwnerExpires(t *testing.T) {
	for _, n := range flightShardCounts {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			f := newFlight[int, int](n)
			// Spread keys so at least one lands in a non-zero shard when
			// striping is real.
			for k := 0; k < 8; k++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
				_, err := f.getCtx(ctx, k, func() (int, error) {
					<-ctx.Done()
					return 0, fmt.Errorf("build: %w", ctx.Err())
				})
				cancel()
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("key %d: owner err = %v, want DeadlineExceeded", k, err)
				}
			}
			if got := f.len(); got != 0 {
				t.Fatalf("cache holds %d entries after owner-expired computations", got)
			}
			for k := 0; k < 8; k++ {
				v, err := f.getCtx(context.Background(), k, func() (int, error) { return 100 + k, nil })
				if err != nil || v != 100+k {
					t.Fatalf("key %d: recompute = %d, %v; want %d, nil", k, v, err, 100+k)
				}
			}
		})
	}
}

// TestFlightShardCountInvisible runs the same deterministic workload against
// every shard count and demands identical observables: every value, every
// cached error, the hit/miss totals, len before and after reset.
func TestFlightShardCountInvisible(t *testing.T) {
	type observed struct {
		vals       map[int]int
		errs       map[int]string
		hits       int64
		misses     int64
		size       int
		afterReset int
	}
	boom := errors.New("boom")
	drive := func(f *flight[int, int]) observed {
		o := observed{vals: map[int]int{}, errs: map[int]string{}}
		// 32 keys, even ones succeed, odd ones fail; each looked up 3 times
		// (1 miss + 2 hits per key, cached errors included).
		for pass := 0; pass < 3; pass++ {
			for k := 0; k < 32; k++ {
				v, err := f.get(k, func() (int, error) {
					if k%2 == 1 {
						return 0, fmt.Errorf("key %d: %w", k, boom)
					}
					return k * k, nil
				})
				if err != nil {
					o.errs[k] = err.Error()
				} else {
					o.vals[k] = v
				}
			}
		}
		o.hits, o.misses = f.hits.Load(), f.misses.Load()
		o.size = f.len()
		f.reset()
		o.afterReset = f.len()
		return o
	}

	var base observed
	for i, n := range flightShardCounts {
		got := drive(newFlight[int, int](n))
		if i == 0 {
			base = got
			// Sanity on the baseline itself before comparing against it.
			if base.misses != 32 || base.hits != 64 || base.size != 32 || base.afterReset != 0 {
				t.Fatalf("baseline observables off: %+v", base)
			}
			continue
		}
		if got.hits != base.hits || got.misses != base.misses ||
			got.size != base.size || got.afterReset != base.afterReset {
			t.Errorf("shards=%d: counters (hits=%d misses=%d size=%d reset=%d) != baseline (%d %d %d %d)",
				n, got.hits, got.misses, got.size, got.afterReset,
				base.hits, base.misses, base.size, base.afterReset)
		}
		for k, v := range base.vals {
			if got.vals[k] != v {
				t.Errorf("shards=%d: key %d = %d, baseline %d", n, k, got.vals[k], v)
			}
		}
		for k, e := range base.errs {
			if got.errs[k] != e {
				t.Errorf("shards=%d: key %d error %q, baseline %q", n, k, got.errs[k], e)
			}
		}
	}

	// The zero value (implicit default shard count) matches too.
	var zf flight[int, int]
	if got := drive(&zf); got.hits != base.hits || got.misses != base.misses || got.size != base.size {
		t.Errorf("zero-value flight observables diverge: %+v != %+v", got, base)
	}
}

// TestFlightShardConcurrentSingleflight: under 64 goroutines hammering 8
// keys, each key's function runs exactly once per shard configuration.
func TestFlightShardConcurrentSingleflight(t *testing.T) {
	for _, n := range flightShardCounts {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			f := newFlight[int, int](n)
			var computes atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < 64; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 100; i++ {
						k := (g + i) % 8
						v, err := f.get(k, func() (int, error) {
							computes.Add(1)
							return k * 10, nil
						})
						if err != nil || v != k*10 {
							t.Errorf("key %d = %d, %v; want %d, nil", k, v, err, k*10)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			if got := computes.Load(); got != 8 {
				t.Errorf("computed %d times for 8 keys; singleflight broken", got)
			}
			if got := f.len(); got != 8 {
				t.Errorf("len = %d, want 8", got)
			}
		})
	}
}
