package eval

import (
	"fmt"
	"strings"

	"sentinel/internal/machine"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

// PredictionStudy measures how much of each speculation model's win survives
// a real branch-prediction frontend. The paper's machine resolves branches
// with an oracle (only the fixed taken-branch bubble); here every benchmark
// is re-simulated under the static (backward-taken/forward-not-taken) and
// TAGE frontends, for general percolation, sentinel scheduling and boosting
// at issue 2 and 8. Speedups are against the issue-1 restricted base under
// the *same* frontend, so each column isolates the value of speculation from
// the cost of misprediction; the mispredict-rate columns (from the sentinel
// cells — the dynamic branch stream is architectural, so rates barely move
// across models) explain the gaps. Schedules are shared across frontends
// (the scheduler never consults the predictor), so the sweep only pays for
// new simulations.
func (r *Runner) PredictionStudy() (string, error) {
	preds := []machine.Predictor{machine.PredPerfect, machine.PredStatic, machine.PredTAGE}
	models := []machine.Model{machine.General, machine.Sentinel, machine.Boosting}
	widths := []int{2, 8}
	benches := workload.All()

	type frontend struct {
		base  Cell
		cells [3][2]Cell // [model][width]
	}
	rows := make([][]frontend, len(benches)) // [bench][predictor]
	for i := range rows {
		rows[i] = make([]frontend, len(preds))
	}
	err := r.parallelFor(len(benches)*len(preds), func(i int) error {
		bi, pi := i/len(preds), i%len(preds)
		p := preds[pi]
		base, err := r.Measure(benches[bi],
			machine.Base(1, machine.Restricted).WithPredictor(p), superblock.Options{})
		if err != nil {
			return err
		}
		rows[bi][pi].base = base
		for mi, m := range models {
			for wi, w := range widths {
				c, err := r.Measure(benches[bi], machine.Base(w, m).WithPredictor(p), superblock.Options{})
				if err != nil {
					return err
				}
				rows[bi][pi].cells[mi][wi] = c
			}
		}
		return nil
	})
	if err != nil {
		return "", err
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "Branch-prediction sensitivity (extension)\n")
	fmt.Fprintf(&sb, "speedup vs issue-1 restricted base under the same frontend\n")
	fmt.Fprintf(&sb, "G=general percolation, S=sentinel, B=boosting; perf=perfect frontend,\n")
	fmt.Fprintf(&sb, "stat=backward-taken/forward-not-taken, tage=TAGE; mr=mispredict rate\n")
	for wi, w := range widths {
		fmt.Fprintf(&sb, "\nissue %d\n", w)
		fmt.Fprintf(&sb, "%-11s %6s %6s %6s  %6s %6s %6s  %6s %6s %6s  %7s %7s\n",
			"benchmark",
			"G:perf", "G:stat", "G:tage",
			"S:perf", "S:stat", "S:tage",
			"B:perf", "B:stat", "B:tage",
			"mr:stat", "mr:tage")
		sums := make([]float64, len(models)*len(preds))
		for bi, b := range benches {
			fmt.Fprintf(&sb, "%-11s", b.Name)
			for mi := range models {
				for pi := range preds {
					f := rows[bi][pi]
					sp := float64(f.base.Cycles) / float64(f.cells[mi][wi].Cycles)
					sums[mi*len(preds)+pi] += sp
					fmt.Fprintf(&sb, " %6.2f", sp)
				}
				fmt.Fprintf(&sb, " ")
			}
			for _, pi := range []int{1, 2} { // static, tage
				s := rows[bi][pi].cells[1][wi].Sim // sentinel model cell
				fmt.Fprintf(&sb, " %6.1f%%", 100*rate(s.Mispredicts, s.PredictedBranches))
			}
			fmt.Fprintf(&sb, "\n")
		}
		fmt.Fprintf(&sb, "%-11s", "average")
		for mi := range models {
			for pi := range preds {
				fmt.Fprintf(&sb, " %6.2f", sums[mi*len(preds)+pi]/float64(len(benches)))
			}
			fmt.Fprintf(&sb, " ")
		}
		fmt.Fprintf(&sb, "\n")
	}
	return sb.String(), nil
}

func rate(n, total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}
