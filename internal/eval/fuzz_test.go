package eval

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"sentinel/internal/core"
	"sentinel/internal/ir"
	"sentinel/internal/machine"
	"sentinel/internal/mem"
	"sentinel/internal/prog"
	"sentinel/internal/sim"
	"sentinel/internal/superblock"
)

// FuzzScheduleDifferential is the end-to-end differential oracle: a small
// looping program is generated from the fuzz bytes, profiled, formed into
// superblocks, scheduled under every speculation model at issue 2 and 8,
// and simulated. When the sequential reference completes, every model must
// reproduce its output vector and memory checksum exactly. When the
// reference faults, every precise model (restricted, sentinel,
// sentinel+stores) must signal the same exception kind and attribute it to
// the same instruction — general percolation is exempt, since imprecise
// attribution under speculation is exactly the deficiency the paper's
// sentinel mechanism repairs (§2.4).
//
// Scheduling renumbers PCs (sentinel insertion re-layouts the program), so
// "same instruction" is checked by identity of the instruction at the
// reported PC — opcode and immediate survive scheduling unchanged, while
// raw PCs and (because of live-range renaming) register numbers need not.
func FuzzScheduleDifferential(f *testing.F) {
	// Seeds cover the interesting populations: a clean ALU/memory mix, a
	// division by zero, a load through an unmapped segment, and an FP chain
	// that can overflow. The same byte strings are checked in under
	// testdata/fuzz/FuzzScheduleDifferential/.
	f.Add([]byte("\x03\x05\x07\x0b\x0d\x11\x00\x21\x86\x38\xa0\x5f\x42\x13"))
	f.Add([]byte("\x02\x09\x04\x06\x08\x0a\x00\x09\x86\x21"))
	f.Add([]byte("\x05\x04\x03\x02\x01\x00\x07\x00\x37\x86\x38"))
	f.Add([]byte("\x01\x03\x05\x07\x09\x0b\x0a\x4b\x8c\x3d\x6e\x0c"))
	// Maximal-body seeds (6-byte header + the full 48-instruction body cap),
	// the generator's stand-in for the largest workload superblocks — real
	// benchmark blocks are not encodable in genProgram's byte menu, so these
	// stress the same scheduler structures at the same scale instead:
	// "wide" interleaves six equal-height ALU chains so the ready heap is
	// persistently full of tie-broken peers; "memdense" alternates loads and
	// immediate chains with periodic stores so issue is dominated by load
	// latency (future-heap promotion) and store-FIFO order; "deferral" mixes
	// stores, a faulting load, division and an FP chain so sentinel-stores
	// scheduling exercises the §4.2 separation/deferral paths.
	f.Add([]byte("\x05\x11\x22\x33\x44\x55\x00\x51\xa2\xf3\x44\x95\xe0\x31\x82\xd3\x24\x75\xc0\x11\x62\xb3\x04\x55\xa0\xf1\x42\x93\xe4\x35\x80\xd1\x22\x73\xc4\x15\x60\xb1\x02\x53\xa4\xf5\x40\x91\xe2\x33\x84\xd5\x20\x71\xc2\x13\x64\xb5"))
	f.Add([]byte("\x03\x07\x0b\x0d\x11\x13\x06\x1f\x2f\x36\x4f\x5f\x66\x78\x8f\x96\xaf\xbf\xc6\xdf\xef\xf8\x0f\x1f\x26\x3f\x4f\x56\x6f\x78\x86\x9f\xaf\xb6\xcf\xdf\xe6\xf8\x0f\x16\x2f\x3f\x46\x5f\x6f\x78\x8f\x9f\xa6\xbf\xcf\xd6\xef\xf8"))
	f.Add([]byte("\x04\x01\x02\x03\x05\x08\x08\x36\x69\x9a\xcb\xfc\x20\x58\x87\xbd\xee\x12\x48\x76\xa9\xda\x0b\x3c\x60\x98\xc7\xfd\x2e\x52\x88\xb6\xe9\x1a\x4b\x7c\xa0\xd8\x07\x3d\x6e\x92\xc8\xf6\x29\x5a\x8b\xbc\xe0\x18\x47\x7d\xae\xd2"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, m := genProgram(data)
		if p == nil {
			t.Skip("input too short to seed a program")
		}
		p.Layout()
		if err := p.Validate(); err != nil {
			t.Fatalf("generator produced an invalid program: %v", err)
		}

		// Profile the sequential program. A fault mid-profile is fine: the
		// partial profile still drives superblock formation, and the faulting
		// path is then the reference behavior the models must reproduce.
		prof, _ := prog.Run(p, m.Clone(), prog.Options{Collect: true, MaxInstrs: 100_000})
		fp := superblock.Form(p, prof.Profile, superblock.Options{})
		fp.Layout()
		if err := fp.Validate(); err != nil {
			t.Fatalf("formed program invalid: %v", err)
		}

		// The formed program is the scheduler's input, so it is also the
		// differential reference: its sequential semantics are what every
		// scheduled variant must preserve.
		ref, rerr := prog.Run(fp, m.Clone(), prog.Options{MaxInstrs: 100_000})
		var refExc *prog.ExcInfo
		if rerr != nil && !errors.As(rerr, &refExc) {
			t.Skipf("reference did not terminate normally: %v", rerr)
		}

		for _, model := range []machine.Model{machine.Restricted, machine.General,
			machine.Sentinel, machine.SentinelStores} {
			for _, w := range []int{2, 8} {
				md := machine.Base(w, model)
				sched, _, err := core.Schedule(fp, md)
				if err != nil {
					// The §4.2 separation constraint makes some dense-store
					// superblocks uncompilable under speculative stores;
					// refusing them is the documented correct outcome, so
					// that cell has nothing to check differentially.
					if model == machine.SentinelStores &&
						strings.Contains(err.Error(), "separation constraint") {
						continue
					}
					t.Fatalf("%v w%d: schedule: %v", model, w, err)
				}
				res, serr := sim.Run(sched, md, m.Clone(), sim.Options{MaxInstrs: 1_000_000})

				if refExc == nil {
					if serr != nil {
						t.Fatalf("%v w%d: reference completes but simulation failed: %v", model, w, serr)
					}
					if res.MemSum != ref.MemSum {
						t.Errorf("%v w%d: memory checksum %#x != reference %#x",
							model, w, res.MemSum, ref.MemSum)
					}
					if len(res.Out) != len(ref.Out) {
						t.Errorf("%v w%d: output length %d != reference %d", model, w, len(res.Out), len(ref.Out))
						continue
					}
					for i := range ref.Out {
						if res.Out[i] != ref.Out[i] {
							t.Errorf("%v w%d: out[%d] = %d != reference %d", model, w, i, res.Out[i], ref.Out[i])
						}
					}
					continue
				}

				if model == machine.General {
					// General percolation substitutes garbage for a
					// speculative fault; results and attribution are
					// architecturally wrong by design. Only require that the
					// simulator itself terminates (res/serr unconstrained).
					continue
				}
				if serr == nil {
					t.Fatalf("%v w%d: reference faults (%v) but simulation completed", model, w, refExc)
				}
				exc, ok := sim.Unhandled(serr)
				if !ok {
					t.Fatalf("%v w%d: reference faults (%v) but simulation failed differently: %v",
						model, w, refExc, serr)
				}
				got, _, _ := sched.InstrAt(exc.ReportedPC)
				want, _, _ := fp.InstrAt(refExc.PC)
				if got == nil || want == nil {
					t.Fatalf("%v w%d: reported pc %d or reference pc %d not found",
						model, w, exc.ReportedPC, refExc.PC)
				}
				// The scheduler may legally reorder independent trapping
				// instructions, so the delivered exception need not be the
				// sequentially first one. The sentinel guarantee is
				// precision: the reported instruction genuinely causes the
				// reported exception kind.
				switch exc.Kind {
				case ir.ExcAccessViolation, ir.ExcPageFault:
					if !ir.IsMem(got.Op) || got.Src1 != ir.R(11) {
						t.Errorf("%v w%d: %v attributed to %v, which cannot fault that way",
							model, w, exc.Kind, got)
					}
				case ir.ExcDivZero:
					if (got.Op != ir.Div && got.Op != ir.Rem) || got.Src2.Valid() || got.Imm != 0 {
						t.Errorf("%v w%d: %v attributed to %v, which cannot fault that way",
							model, w, exc.Kind, got)
					}
				case ir.ExcFPInvalid, ir.ExcFPOverflow:
					switch ir.UnitOf(got.Op) {
					case ir.UnitFPALU, ir.UnitFPConv, ir.UnitFPMul, ir.UnitFPDiv:
					default:
						t.Errorf("%v w%d: %v attributed to non-FP %v", model, w, exc.Kind, got)
					}
				default:
					t.Errorf("%v w%d: unexpected exception kind %v at %v", model, w, exc.Kind, got)
				}
				// The generator emits at most one always-faulting site per
				// kind, so when the delivered kind matches the reference the
				// attribution must name the reference's instruction exactly.
				if exc.Kind == refExc.Kind &&
					(exc.Kind == ir.ExcAccessViolation || exc.Kind == ir.ExcDivZero) {
					if got.Op != want.Op || got.Imm != want.Imm {
						t.Errorf("%v w%d: exception attributed to %v, reference faulted at %v",
							model, w, got, want)
					}
				}
			}
		}

		// The branch-prediction frontends change timing, never architecture:
		// under the static and TAGE predictors the sentinel machine must still
		// reproduce the reference's output vector and memory checksum on clean
		// runs, and still fault (the wrong-path fetch is squashed, so a
		// mispredict can neither execute nor suppress a faulting instruction)
		// when the reference faults.
		for _, pk := range []machine.Predictor{machine.PredStatic, machine.PredTAGE} {
			md := machine.Base(8, machine.Sentinel).WithPredictor(pk)
			sched, _, err := core.Schedule(fp, md.CompileView())
			if err != nil {
				t.Fatalf("%v frontend: schedule: %v", pk, err)
			}
			res, serr := sim.Run(sched, md, m.Clone(), sim.Options{MaxInstrs: 1_000_000})
			if refExc == nil {
				if serr != nil {
					t.Fatalf("%v frontend: reference completes but simulation failed: %v", pk, serr)
				}
				if res.MemSum != ref.MemSum {
					t.Errorf("%v frontend: memory checksum %#x != reference %#x", pk, res.MemSum, ref.MemSum)
				}
				if fmt.Sprint(res.Out) != fmt.Sprint(ref.Out) {
					t.Errorf("%v frontend: output %v != reference %v", pk, res.Out, ref.Out)
				}
				continue
			}
			if serr == nil {
				t.Errorf("%v frontend: reference faults (%v) but simulation completed", pk, refExc)
			} else if _, ok := sim.Unhandled(serr); !ok {
				t.Errorf("%v frontend: reference faults (%v) but simulation failed differently: %v", pk, refExc, serr)
			}
		}
	})
}

// genProgram decodes fuzz bytes into a small looping program and its data
// memory. The first 6 bytes seed register/loop-count initialization; each
// remaining byte (capped at 48) decodes one loop-body instruction: low
// nibble selects the operation, high nibble the operands. The menu spans
// integer ALU, in-bounds loads/stores through r10 (segment "d"), loads
// through the deliberately unmapped r11, division with a possibly-zero
// immediate, and FP arithmetic/conversions that can trap — so the fuzzer
// reaches both the clean-run and the faulting differential populations.
// Always-faulting sites are capped at one per exception kind (see the
// decode loop) to keep exception attribution uniquely checkable.
// The loop counter r15 only ever decrements, so every program terminates.
func genProgram(data []byte) (*prog.Program, *mem.Memory) {
	if len(data) < 6 {
		return nil, nil
	}
	hdr, body := data[:6], data[6:]
	if len(body) > 48 {
		body = body[:48]
	}

	p := prog.NewProgram()
	entry := []*ir.Instr{
		ir.LI(ir.R(10), 0x1000), // mapped data segment
		ir.LI(ir.R(11), 0x2000), // unmapped: loads through r11 fault
		ir.LI(ir.R(15), int64(2+hdr[0]%6)),
	}
	for i := 0; i < 6; i++ {
		entry = append(entry, ir.LI(ir.R(2+i), int64(hdr[i])+1)) // +1 keeps divisors non-zero
	}
	for i := 0; i < 3; i++ {
		entry = append(entry, ir.UN(ir.Cvif, ir.F(1+i), ir.R(2+i)))
	}
	p.AddBlock("entry", entry...)

	// At most one always-faulting site of each kind per program: the
	// scheduler may reorder independent faulting instructions, so a unique
	// site is what makes exact exception attribution checkable. Stores are
	// capped below the base store-buffer size, or the §4.2 separation
	// constraint becomes unsatisfiable and sentinel+stores scheduling
	// (correctly) refuses the program.
	var badLoads, badDivs, stores int
	var instrs []*ir.Instr
	for _, b := range body {
		op, arg := int(b&0x0F), int(b>>4)
		rd := ir.R(2 + arg%6)
		rs := ir.R(2 + (arg>>1)%6)
		fd := ir.F(1 + arg%3)
		fs := ir.F(1 + (arg>>2)%3)
		if op == 7 {
			if badLoads++; badLoads > 1 {
				op = 6 // decode as an in-bounds load instead
			}
		}
		if op == 9 && arg%4 == 0 {
			if badDivs++; badDivs > 1 {
				arg++ // divisor 1: safe
			}
		}
		if op == 8 {
			if stores++; stores > 6 {
				op = 6 // decode as a load instead
			}
		}
		switch op {
		case 0:
			instrs = append(instrs, ir.ALU(ir.Add, rd, rd, rs))
		case 1:
			instrs = append(instrs, ir.ALU(ir.Sub, rd, rd, rs))
		case 2:
			instrs = append(instrs, ir.ALU(ir.Mul, rd, rs, rd))
		case 3:
			instrs = append(instrs, ir.ALU(ir.And, rd, rd, rs))
		case 4:
			instrs = append(instrs, ir.ALU(ir.Xor, rd, rs, rd))
		case 5:
			instrs = append(instrs, ir.ALU(ir.Slt, rd, rs, rd))
		case 6:
			instrs = append(instrs, ir.LOAD(ir.Ld, rd, ir.R(10), int64(arg)*8))
		case 7:
			instrs = append(instrs, ir.LOAD(ir.Ld, rd, ir.R(11), int64(arg)*8)) // faults
		case 8:
			instrs = append(instrs, ir.STORE(ir.St, ir.R(10), int64(arg)*8, rs))
		case 9:
			instrs = append(instrs, ir.ALUI(ir.Div, rd, rs, int64(arg%4))) // arg%4==0: div-zero
		case 10:
			instrs = append(instrs, ir.ALU(ir.Fadd, fd, fd, fs))
		case 11:
			instrs = append(instrs, ir.ALU(ir.Fmul, fd, fs, fd))
		case 12:
			instrs = append(instrs, ir.ALU(ir.Fdiv, fd, fs, fd)) // fd may be 0: FP trap
		case 13:
			instrs = append(instrs, ir.UN(ir.Cvif, fd, rd))
		case 14:
			instrs = append(instrs, ir.UN(ir.Cvfi, rd, fs)) // out-of-range: FP trap
		case 15:
			instrs = append(instrs, ir.ALUI(ir.Add, rd, rd, int64(arg)-7))
		}
	}
	instrs = append(instrs,
		ir.ALUI(ir.Add, ir.R(15), ir.R(15), -1),
		ir.BRI(ir.Bne, ir.R(15), 0, "loop"))
	p.AddBlock("loop", instrs...)
	p.AddBlock("tail",
		ir.JSR("putint", ir.R(2)),
		ir.JSR("putint", ir.R(3)),
		ir.JSR("putint", ir.R(7)),
		ir.HALT())

	m := mem.New()
	m.Map("d", 0x1000, 256)
	for i := 0; i < 32; i++ {
		m.Write(0x1000+int64(i)*8, 8, uint64(i)*0x9E3779B9+uint64(hdr[1]))
	}
	return p, m
}
