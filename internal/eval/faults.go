package eval

import (
	"context"
	"fmt"
	"strings"

	"sentinel/internal/ir"
	"sentinel/internal/machine"
	"sentinel/internal/sim"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

// FaultOutcome summarizes one benchmark's behaviour under fault injection.
type FaultOutcome struct {
	Name string
	// Sentinel model (with recovery constraints):
	SentinelSignals   int  // exceptions signalled and repaired
	SentinelExactPC   bool // every reported PC was a memory instruction on the faulted segment
	SentinelRecovered bool // final result matches the fault-free reference
	// Restricted model: precise by construction.
	RestrictedSignals int
	RestrictedExact   bool
	// General percolation:
	GeneralSilentCorruption bool // completed with a wrong result, no signal
	GeneralMisattributed    bool // trapped, but not at the true first fault
	GeneralCorrect          bool // (only possible if the fault path was cold)
}

// FaultInjection pages out each benchmark's primary input segment, runs the
// program under three models, and classifies the outcomes: sentinel
// scheduling must detect every injected fault at the exact PC and recover to
// the correct result; restricted percolation traps precisely (but runs
// slowly); general percolation silently corrupts or misattributes — the
// §2.4 failure this paper exists to fix.
func (r *Runner) FaultInjection() (string, error) {
	benches := workload.All()
	rows := make([]FaultOutcome, len(benches))
	err := r.parallelFor(len(benches), func(i int) error {
		o, err := r.injectOne(benches[i])
		if err != nil {
			return fmt.Errorf("%s: %w", benches[i].Name, err)
		}
		rows[i] = o
		return nil
	})
	if err != nil {
		return "", err
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "Fault injection (extension; issue 8): primary input segment paged out at start\n\n")
	fmt.Fprintf(&sb, "%-11s  %-28s %-12s %-s\n", "benchmark", "sentinel+recovery", "restricted", "general percolation")
	for i, b := range benches {
		o := rows[i]
		sentinelCol := fmt.Sprintf("%d signals, exact=%v, ok=%v",
			o.SentinelSignals, o.SentinelExactPC, o.SentinelRecovered)
		restrictedCol := fmt.Sprintf("exact=%v", o.RestrictedExact)
		var generalCol string
		switch {
		case o.GeneralSilentCorruption:
			generalCol = "SILENT CORRUPTION"
		case o.GeneralMisattributed:
			generalCol = "misattributed trap"
		case o.GeneralCorrect:
			generalCol = "unaffected (cold fault)"
		default:
			generalCol = "precise (store faulted first)"
		}
		fmt.Fprintf(&sb, "%-11s  %-28s %-12s %-s\n", b.Name, sentinelCol, restrictedCol, generalCol)
	}
	return sb.String(), nil
}

// injectOne runs the fault-injection campaign for one benchmark, reusing
// the Runner's cached build/reference/schedule artifacts; only the memory
// image (whose segment is paged out and repaired) is cloned per run.
func (r *Runner) injectOne(b workload.Benchmark) (FaultOutcome, error) {
	out := FaultOutcome{Name: b.Name}
	art, err := r.build(b)
	if err != nil {
		return out, err
	}
	segName := ""
	for _, name := range []string{"text", "input", "src", "a", "heap",
		"cells", "x", "re", "b-data", "tokens"} {
		if art.mem.Segment(name) != nil {
			segName = name
			break
		}
	}
	if segName == "" {
		return out, fmt.Errorf("no known input segment")
	}
	ref := art.ref

	// Sentinel with recovery constraints: must detect at the exact PC and
	// recover to the reference result.
	{
		md := machine.Base(8, machine.Sentinel).WithRecovery()
		sa, err := r.scheduled(context.Background(), b, md, superblock.Options{})
		if err != nil {
			return out, err
		}
		run := art.mem.Clone()
		seg := run.Segment(segName)
		seg.Present = false
		exact := true
		res, err := sim.Run(sa.prog, md, run, sim.Options{
			Index: sa.index,
			Handler: func(exc sim.Exception, mach *sim.Machine) bool {
				out.SentinelSignals++
				in, _, _ := sa.prog.InstrAt(exc.ReportedPC)
				if in == nil || !ir.IsMem(in.Op) {
					exact = false
				}
				seg.Present = true
				return out.SentinelSignals < 10_000 // livelock guard
			},
		})
		out.SentinelExactPC = exact && out.SentinelSignals > 0
		out.SentinelRecovered = err == nil && res.MemSum == ref.MemSum &&
			fmt.Sprint(res.Out) == fmt.Sprint(ref.Out)
	}

	// Restricted percolation: precise exceptions without any support.
	{
		md := machine.Base(8, machine.Restricted)
		sa, err := r.scheduled(context.Background(), b, md, superblock.Options{})
		if err != nil {
			return out, err
		}
		run := art.mem.Clone()
		seg := run.Segment(segName)
		seg.Present = false
		exact := true
		_, err = sim.Run(sa.prog, md, run, sim.Options{
			Index: sa.index,
			Handler: func(exc sim.Exception, mach *sim.Machine) bool {
				out.RestrictedSignals++
				if exc.ReportedPC != exc.ByPC {
					exact = false // restricted must self-report
				}
				seg.Present = true
				return out.RestrictedSignals < 10_000
			},
		})
		out.RestrictedExact = exact && err == nil && out.RestrictedSignals > 0
	}

	// General percolation: no tags, no recovery. A speculative load's fault
	// becomes garbage. Repair the page at the FIRST signal (if any) so the
	// run can finish, then compare.
	{
		md := machine.Base(8, machine.General)
		sa, err := r.scheduled(context.Background(), b, md, superblock.Options{})
		if err != nil {
			return out, err
		}
		run := art.mem.Clone()
		seg := run.Segment(segName)
		seg.Present = false
		signalled := 0
		res, err := sim.Run(sa.prog, md, run, sim.Options{
			Index: sa.index,
			Handler: func(exc sim.Exception, mach *sim.Machine) bool {
				signalled++
				seg.Present = true
				return signalled < 10_000
			},
		})
		correct := err == nil && res != nil && res.MemSum == ref.MemSum &&
			fmt.Sprint(res.Out) == fmt.Sprint(ref.Out)
		switch {
		case correct && signalled == 0:
			out.GeneralCorrect = true
		case err == nil && !correct && signalled == 0:
			out.GeneralSilentCorruption = true
		case !correct:
			out.GeneralMisattributed = true
		default:
			// Signalled precisely (e.g. a non-speculative store faulted
			// before any speculative load) and still finished correctly.
		}
	}
	return out, nil
}
