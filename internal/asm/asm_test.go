package asm

import (
	"strings"
	"testing"

	"sentinel/internal/ir"
	"sentinel/internal/prog"
)

const sample = `
; sum an array of 3 words
.seg data 0x1000 32
.word 0x1000 5
.word 0x1008 7
.word 0x1010 11

entry:
	li r1, 0x1000
	li r2, 3
	li r3, 0
	li r4, 0
loop:
	bge r4, r2, done
	ld r5, 0(r1)
	add r3, r3, r5
	add r1, r1, 8
	add r4, r4, 1
	jmp loop
done:
	jsr putint, r3
	halt
`

func TestParseAndRun(t *testing.T) {
	p, m, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	p.Layout()
	res, err := prog.Run(p, m, prog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Out) != 1 || res.Out[0] != 23 {
		t.Fatalf("out = %v, want [23]", res.Out)
	}
}

func TestRoundTrip(t *testing.T) {
	p, _, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(p)
	p2, _, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if Format(p2) != text {
		t.Errorf("round trip not stable:\n%s\nvs\n%s", text, Format(p2))
	}
}

func TestParseInstrForms(t *testing.T) {
	cases := []string{
		"nop",
		"add r1, r2, r3",
		"add r1, r2, -4",
		"mul r5, r6, 9",
		"li r5, 4096",
		"mov r1, r2",
		"fmov f1, f2",
		"fadd f3, f1, f2",
		"cvif f1, r2",
		"cvfi r2, f1",
		"ld r1, 8(r2)",
		"ldb r1, 0(r2)",
		"fld f1, -8(r2)",
		"st r4, 16(r2)",
		"stb r4, 0(r2)",
		"fst f4, 0(r2)",
		"beq r1, r2, foo",
		"bne r1, 0, foo",
		"blt r1, -5, foo",
		"jmp foo",
		"jsr putint, r3",
		"check r5",
		"confirm_st 2",
		"cleartag r6",
		"halt",
	}
	for _, c := range cases {
		in, err := ParseInstr(c)
		if err != nil {
			t.Errorf("ParseInstr(%q): %v", c, err)
			continue
		}
		if got := in.String(); got != c {
			t.Errorf("round trip %q -> %q", c, got)
		}
	}
}

func TestParseSpecSuffixTolerated(t *testing.T) {
	in, err := ParseInstr("ld r1, 0(r2) <spec>")
	if err != nil || in.Op != ir.Ld {
		t.Fatalf("spec-suffixed parse failed: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frobnicate r1",
		"add r1, r2",
		"ld r1, r2",
		"ld r1, 0(z9)",
		"beq r1, r2",
		"li r99, 5",
		"jsr putint",
	}
	for _, c := range bad {
		if _, err := ParseInstr(c); err == nil {
			t.Errorf("ParseInstr(%q) accepted", c)
		}
	}
	for _, src := range []string{
		"add r1, r2, r3\n", // instruction before label
		"main:\n\tjmp nowhere\n",
		".seg x\nmain:\n\thalt\n",
		".word 0x1000 1\nmain:\n\thalt\n", // write outside any segment
	} {
		if _, _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestDirectives(t *testing.T) {
	src := `
.seg d 0x100 32
.word 0x100 0x2a
.byte 0x108 7
.fp 0x110 1.5
main:
	halt
`
	_, m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Read(0x100, 8); v != 0x2a {
		t.Errorf("word = %#x", v)
	}
	if v, _ := m.Read(0x108, 1); v != 7 {
		t.Errorf("byte = %d", v)
	}
	if v, _ := m.Read(0x110, 8); v != 0x3FF8000000000000 {
		t.Errorf("fp bits = %#x", v)
	}
}

func TestFormatScheduled(t *testing.T) {
	p, _, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	p.Blocks[0].Instrs[0].Cycle = 0
	p.Blocks[0].Instrs[0].Slot = 1
	s := FormatScheduled(p)
	if !strings.Contains(s, "[  0.1]") {
		t.Errorf("missing cycle annotation:\n%s", s)
	}
}

func TestVirtualRegisterSyntax(t *testing.T) {
	in, err := ParseInstr("add v3, v1, v2")
	if err != nil {
		t.Fatal(err)
	}
	if !in.Dest.Virtual || in.Dest.N != 3 {
		t.Errorf("dest = %+v", in.Dest)
	}
	fin, err := ParseInstr("fadd vf3, vf1, vf2")
	if err != nil {
		t.Fatal(err)
	}
	if !fin.Dest.Virtual || fin.Dest.Class != ir.FPClass {
		t.Errorf("fp dest = %+v", fin.Dest)
	}
}
