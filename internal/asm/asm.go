// Package asm implements a textual assembler and disassembler for MIR. The
// syntax matches the String form of instructions (so Format/Parse round-trip)
// plus a few directives for setting up the data memory image:
//
//	; comment
//	.seg  name base size      ; map a zeroed segment
//	.word addr value          ; store a 64-bit integer
//	.byte addr value          ; store one byte
//	.fp   addr float          ; store a 64-bit float
//
//	entry:
//	    li   r1, 4096
//	    ld   r5, 0(r1)
//	    beq  r5, 0, done
//	    st   r5, 8(r1)
//	    jsr  putint, r5
//	done:
//	    halt
package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"sentinel/internal/ir"
	"sentinel/internal/mem"
	"sentinel/internal/prog"
)

// Parse assembles source text into a program and its memory image.
func Parse(src string) (*prog.Program, *mem.Memory, error) {
	p := prog.NewProgram()
	m := mem.New()
	var cur *prog.Block
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("asm: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(line, "."):
			if err := directive(line, m); err != nil {
				return nil, nil, fail("%v", err)
			}
		case strings.HasSuffix(line, ":"):
			label := strings.TrimSuffix(line, ":")
			if label == "" {
				return nil, nil, fail("empty label")
			}
			cur = p.AddBlock(label)
		default:
			if cur == nil {
				return nil, nil, fail("instruction before any label")
			}
			in, err := ParseInstr(line)
			if err != nil {
				return nil, nil, fail("%v", err)
			}
			cur.Instrs = append(cur.Instrs, in)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	return p, m, nil
}

func directive(line string, m *mem.Memory) error {
	f := strings.Fields(line)
	switch f[0] {
	case ".seg":
		if len(f) != 4 {
			return fmt.Errorf(".seg wants: name base size")
		}
		base, err1 := parseInt(f[2])
		size, err2 := parseInt(f[3])
		if err1 != nil || err2 != nil {
			return fmt.Errorf(".seg: bad numbers %q %q", f[2], f[3])
		}
		m.Map(f[1], base, int(size))
		return nil
	case ".word", ".byte":
		if len(f) != 3 {
			return fmt.Errorf("%s wants: addr value", f[0])
		}
		addr, err1 := parseInt(f[1])
		val, err2 := parseInt(f[2])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("%s: bad numbers", f[0])
		}
		size := 8
		if f[0] == ".byte" {
			size = 1
		}
		if fault := m.Write(addr, size, uint64(val)); fault != nil {
			return fmt.Errorf("%s: %v", f[0], fault)
		}
		return nil
	case ".fp":
		if len(f) != 3 {
			return fmt.Errorf(".fp wants: addr value")
		}
		addr, err1 := parseInt(f[1])
		val, err2 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf(".fp: bad numbers")
		}
		if fault := m.Write(addr, 8, math.Float64bits(val)); fault != nil {
			return fmt.Errorf(".fp: %v", fault)
		}
		return nil
	default:
		return fmt.Errorf("unknown directive %s", f[0])
	}
}

var opByName = func() map[string]ir.Op {
	out := map[string]ir.Op{}
	for op := ir.Nop; ; op++ {
		name := op.String()
		if strings.HasPrefix(name, "op(") {
			break
		}
		out[name] = op
	}
	return out
}()

// ParseInstr parses one instruction in String() syntax.
func ParseInstr(line string) (*ir.Instr, error) {
	line = strings.TrimSuffix(strings.TrimSpace(line), " <spec>")
	name, rest, _ := strings.Cut(line, " ")
	op, ok := opByName[name]
	if !ok {
		return nil, fmt.Errorf("unknown opcode %q", name)
	}
	args := splitArgs(rest)
	in := ir.New(op)
	switch {
	case op == ir.Nop || op == ir.Halt:
		if len(args) != 0 {
			return nil, fmt.Errorf("%s takes no operands", name)
		}
	case op == ir.Li:
		if len(args) != 2 {
			return nil, fmt.Errorf("li wants: dest, imm")
		}
		var err error
		if in.Dest, err = parseReg(args[0]); err != nil {
			return nil, err
		}
		if in.Imm, err = parseInt(args[1]); err != nil {
			return nil, err
		}
	case op == ir.Mov || op == ir.Fmov || op == ir.Fneg || op == ir.Fabs ||
		op == ir.Cvif || op == ir.Cvfi || op == ir.ClearTag:
		if op == ir.ClearTag {
			if len(args) != 1 {
				return nil, fmt.Errorf("cleartag wants: reg")
			}
			var err error
			if in.Dest, err = parseReg(args[0]); err != nil {
				return nil, err
			}
			break
		}
		if len(args) != 2 {
			return nil, fmt.Errorf("%s wants: dest, src", name)
		}
		var err error
		if in.Dest, err = parseReg(args[0]); err != nil {
			return nil, err
		}
		if in.Src1, err = parseReg(args[1]); err != nil {
			return nil, err
		}
	case ir.IsLoad(op):
		if len(args) != 2 {
			return nil, fmt.Errorf("%s wants: dest, off(base)", name)
		}
		var err error
		if in.Dest, err = parseReg(args[0]); err != nil {
			return nil, err
		}
		if in.Imm, in.Src1, err = parseMemOperand(args[1]); err != nil {
			return nil, err
		}
	case ir.IsStore(op):
		if len(args) != 2 {
			return nil, fmt.Errorf("%s wants: val, off(base)", name)
		}
		var err error
		if in.Src2, err = parseReg(args[0]); err != nil {
			return nil, err
		}
		if in.Imm, in.Src1, err = parseMemOperand(args[1]); err != nil {
			return nil, err
		}
	case ir.IsBranch(op):
		if len(args) != 3 {
			return nil, fmt.Errorf("%s wants: src1, src2|imm, target", name)
		}
		var err error
		if in.Src1, err = parseReg(args[0]); err != nil {
			return nil, err
		}
		if r, err2 := parseReg(args[1]); err2 == nil {
			in.Src2 = r
		} else if in.Imm, err = parseInt(args[1]); err != nil {
			return nil, fmt.Errorf("bad second operand %q", args[1])
		}
		in.Target = args[2]
	case op == ir.Jmp:
		if len(args) != 1 {
			return nil, fmt.Errorf("jmp wants: target")
		}
		in.Target = args[0]
	case op == ir.Jsr:
		if len(args) != 2 {
			return nil, fmt.Errorf("jsr wants: routine, argreg")
		}
		in.Target = args[0]
		var err error
		if in.Src1, err = parseReg(args[1]); err != nil {
			return nil, err
		}
	case op == ir.Check:
		if len(args) != 1 {
			return nil, fmt.Errorf("check wants: reg")
		}
		var err error
		if in.Src1, err = parseReg(args[0]); err != nil {
			return nil, err
		}
	case op == ir.ConfirmSt:
		if len(args) != 1 {
			return nil, fmt.Errorf("confirm_st wants: index")
		}
		var err error
		if in.Imm, err = parseInt(args[0]); err != nil {
			return nil, err
		}
	default: // three-operand ALU: dest, src1, src2|imm
		if len(args) != 3 {
			return nil, fmt.Errorf("%s wants: dest, src1, src2|imm", name)
		}
		var err error
		if in.Dest, err = parseReg(args[0]); err != nil {
			return nil, err
		}
		if in.Src1, err = parseReg(args[1]); err != nil {
			return nil, err
		}
		if r, err2 := parseReg(args[2]); err2 == nil {
			in.Src2 = r
		} else if in.Imm, err = parseInt(args[2]); err != nil {
			return nil, fmt.Errorf("bad second operand %q", args[2])
		}
	}
	return in, nil
}

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string) (ir.Reg, error) {
	if len(s) < 2 {
		return ir.NoReg, fmt.Errorf("bad register %q", s)
	}
	var mk func(int) ir.Reg
	var num string
	switch {
	case s[0] == 'r':
		mk, num = ir.R, s[1:]
	case s[0] == 'f':
		mk, num = ir.F, s[1:]
	case s[0] == 'v' && len(s) > 2 && s[1] == 'f':
		mk, num = ir.VF, s[2:]
	case s[0] == 'v':
		mk, num = ir.VR, s[1:]
	default:
		return ir.NoReg, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(num)
	if err != nil || n < 0 || (s[0] != 'v' && n >= ir.NumIntRegs) {
		return ir.NoReg, fmt.Errorf("bad register %q", s)
	}
	return mk(n), nil
}

// parseMemOperand parses "off(base)".
func parseMemOperand(s string) (int64, ir.Reg, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, ir.NoReg, fmt.Errorf("bad memory operand %q", s)
	}
	off, err := parseInt(s[:open])
	if err != nil {
		return 0, ir.NoReg, fmt.Errorf("bad offset in %q", s)
	}
	base, err := parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, ir.NoReg, err
	}
	return off, base, nil
}

func parseInt(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}

// Format renders a program as parseable assembly.
func Format(p *prog.Program) string {
	return p.String()
}

// FormatScheduled renders a scheduled program with cycle/slot annotations
// (not parseable; for human inspection).
func FormatScheduled(p *prog.Program) string {
	var sb strings.Builder
	for _, b := range p.Blocks {
		fmt.Fprintf(&sb, "%s:", b.Label)
		if b.Superblock {
			fmt.Fprintf(&sb, "  ; superblock, weight %d", b.WeightHint)
		}
		fmt.Fprintln(&sb)
		for _, in := range b.Instrs {
			if in.Cycle >= 0 {
				fmt.Fprintf(&sb, "  [%3d.%d] %v\n", in.Cycle, in.Slot, in)
			} else {
				fmt.Fprintf(&sb, "          %v\n", in)
			}
		}
	}
	return sb.String()
}
