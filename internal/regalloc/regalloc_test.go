package regalloc

import (
	"testing"

	"sentinel/internal/ir"
	"sentinel/internal/machine"
	"sentinel/internal/mem"
	"sentinel/internal/prog"
	"sentinel/internal/sim"
)

// vprog builds a small program over virtual registers: sum three loads.
func vprog() (*prog.Program, *mem.Memory) {
	p := prog.NewProgram()
	p.AddBlock("main",
		ir.LI(ir.VR(1), 0x1000),
		ir.LOAD(ir.Ld, ir.VR(2), ir.VR(1), 0),
		ir.LOAD(ir.Ld, ir.VR(3), ir.VR(1), 8),
		ir.LOAD(ir.Ld, ir.VR(4), ir.VR(1), 16),
		ir.ALU(ir.Add, ir.VR(5), ir.VR(2), ir.VR(3)),
		ir.ALU(ir.Add, ir.VR(6), ir.VR(5), ir.VR(4)),
		ir.MOV(ir.R(9), ir.VR(6)),
		ir.JSR("putint", ir.R(9)),
		ir.HALT(),
	)
	m := mem.New()
	m.Map("d", 0x1000, 32)
	m.Write(0x1000, 8, 3)
	m.Write(0x1008, 8, 5)
	m.Write(0x1010, 8, 7)
	return p, m
}

func TestAllocateAndRun(t *testing.T) {
	p, m := vprog()
	stats, err := Allocate(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Virtuals != 6 {
		t.Errorf("Virtuals = %d, want 6", stats.Virtuals)
	}
	// No virtual registers may remain.
	for _, b := range p.Blocks {
		for _, in := range b.Instrs {
			for _, r := range []ir.Reg{in.Dest, in.Src1, in.Src2} {
				if r.Valid() && r.Virtual {
					t.Fatalf("virtual register %v survived allocation in %v", r, in)
				}
			}
		}
	}
	p.Layout()
	res, err := sim.Run(p, machine.Base(1, machine.Restricted), m, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Out) != 1 || res.Out[0] != 15 {
		t.Errorf("out = %v, want [15]", res.Out)
	}
}

func TestReusesDeadRegisters(t *testing.T) {
	// v2 dies at its use; v3 should be able to reuse its register.
	p := prog.NewProgram()
	p.AddBlock("main",
		ir.LI(ir.VR(1), 1),
		ir.ALUI(ir.Add, ir.VR(2), ir.VR(1), 1), // v2 live [1,2]
		ir.ALUI(ir.Add, ir.VR(3), ir.VR(2), 1), // v3 live [2,3]... overlaps v2 at 2
		ir.ALUI(ir.Add, ir.VR(4), ir.VR(3), 1),
		ir.HALT(),
	)
	if _, err := Allocate(p, Options{}); err != nil {
		t.Fatal(err)
	}
	// v1 dies at instruction 1 (its last use); v4 starts at 3: they may
	// share. We only assert allocation succeeded and registers are distinct
	// where live ranges overlap: v2/v3 overlap at 2.
	b := p.Blocks[0]
	if b.Instrs[1].Dest == b.Instrs[2].Dest {
		t.Error("overlapping v2/v3 share a register")
	}
}

// figure3V reproduces the paper's Figure 3 scenario on virtual registers:
// a speculative load D above an instruction E' (renamed increment) whose
// move I must not share a register with r2. Without the §3.7 extension the
// allocator may reuse v2's register for v10; with it, it must not.
func figure3V() *prog.Program {
	p := prog.NewProgram()
	spec := ir.LOAD(ir.Ld, ir.VR(1), ir.VR(6), 0) // D: speculative load
	spec.Spec = true
	p.AddBlock("main",
		ir.LI(ir.VR(6), 0x1000),
		ir.LI(ir.VR(2), 0x2000),
		spec,                                    // D <spec>
		ir.ALUI(ir.Add, ir.VR(10), ir.VR(2), 1), // E': r10 = r2+1 (reads v2!)
		ir.ALUI(ir.Add, ir.VR(8), ir.VR(1), 1),  // G: sentinel for D (uses v1)
		ir.MOV(ir.VR(2), ir.VR(10)),             // I: r2 = r10 (after sentinel)
		ir.LOAD(ir.Ld, ir.VR(9), ir.VR(2), 0),   // H: uses updated r2
		ir.MOV(ir.R(9), ir.VR(9)),
		ir.JSR("putint", ir.R(9)),
		ir.HALT(),
	)
	return p
}

func TestLiveRangeExtensionFigure3(t *testing.T) {
	// With recovery extension: v2 (source of E', which executes between the
	// speculative D and its sentinel G) must stay live through G, so v2 and
	// v10 may not share a physical register.
	p := figure3V()
	stats, err := Allocate(p, Options{ExtendForRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Extended == 0 {
		t.Fatal("expected at least one extended live range")
	}
	b := p.Blocks[0]
	e := b.Instrs[3]  // E': add v10, v2, 1 (now physical)
	mv := b.Instrs[5] // I: mov v2, v10
	if e.Dest == e.Src1 {
		t.Errorf("v10 and v2 share %v despite extension", e.Dest)
	}
	if mv.Dest == mv.Src1 {
		t.Errorf("move operands share %v", mv.Dest)
	}
}

func TestSentinelPosChain(t *testing.T) {
	spec := ir.LOAD(ir.Ld, ir.VR(1), ir.VR(6), 0)
	spec.Spec = true
	prop := ir.ALUI(ir.Add, ir.VR(2), ir.VR(1), 1) // speculative propagation
	prop.Spec = true
	order := []*ir.Instr{
		spec,
		prop,
		ir.ALUI(ir.Add, ir.VR(3), ir.VR(2), 1), // non-spec: the sentinel
	}
	if got := sentinelPos(order, 0); got != 2 {
		t.Errorf("sentinelPos = %d, want 2 (propagation tracked)", got)
	}
}

func TestSentinelPosConfirm(t *testing.T) {
	st := ir.STORE(ir.St, ir.VR(1), 0, ir.VR(2))
	st.Spec = true
	other := ir.STORE(ir.St, ir.VR(3), 0, ir.VR(2))
	order := []*ir.Instr{
		st,
		other,         // one intervening store
		ir.CONFIRM(1), // confirms st (1 store between)
		ir.CONFIRM(0), // confirms other... (not st's)
	}
	if got := sentinelPos(order, 0); got != 2 {
		t.Errorf("store sentinelPos = %d, want 2", got)
	}
}

func TestOutOfRegisters(t *testing.T) {
	p := prog.NewProgram()
	var instrs []*ir.Instr
	// 70 simultaneously live integer virtuals cannot fit in 63 registers.
	for i := 0; i < 70; i++ {
		instrs = append(instrs, ir.LI(ir.VR(i), int64(i)))
	}
	sum := ir.ALU(ir.Add, ir.VR(100), ir.VR(0), ir.VR(1))
	instrs = append(instrs, sum)
	for i := 2; i < 70; i++ {
		instrs = append(instrs, ir.ALU(ir.Add, ir.VR(100+i), ir.VR(100+i-1), ir.VR(i)))
	}
	instrs = append(instrs, ir.HALT())
	p.AddBlock("main", instrs...)
	if _, err := Allocate(p, Options{}); err == nil {
		t.Fatal("expected out-of-registers error")
	}
}

func TestLoopWidening(t *testing.T) {
	// v1 defined before the loop, used inside: must not share with a
	// loop-local virtual even though naive intervals would allow it.
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.VR(1), 10), // loop bound
		ir.LI(ir.VR(2), 0),  // i
	)
	p.AddBlock("loop",
		ir.ALUI(ir.Add, ir.VR(3), ir.VR(2), 1), // loop-local temp
		ir.MOV(ir.VR(2), ir.VR(3)),
		ir.BR(ir.Blt, ir.VR(2), ir.VR(1), "loop"),
	)
	p.AddBlock("done",
		ir.MOV(ir.R(9), ir.VR(2)),
		ir.JSR("putint", ir.R(9)),
		ir.HALT(),
	)
	if _, err := Allocate(p, Options{}); err != nil {
		t.Fatal(err)
	}
	p.Layout()
	res, err := sim.Run(p, machine.Base(1, machine.Restricted), mem.New(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out[0] != 10 {
		t.Errorf("out = %v, want [10]", res.Out)
	}
}
