// Package regalloc assigns physical registers to virtual registers with the
// register-allocator support sentinel scheduling needs for exception
// recovery (§3.7): the live range of every source register of instructions
// between a speculative instruction and its sentinel is extended to reach
// the sentinel, so the allocator cannot reuse those registers and break the
// restartable-sequence property the scheduler established. The paper's
// Figure 3 example is exactly this: virtual r10 must not share a physical
// register with r2, achieved by extending r2's live range to G.
//
// The allocator is a linear scan over the laid-out program. It assumes the
// paper's flow — speculative code motion happens before register allocation
// — so instruction order is final when intervals are computed.
package regalloc

import (
	"fmt"
	"sort"

	"sentinel/internal/ir"
	"sentinel/internal/prog"
)

// Stats reports allocation results.
type Stats struct {
	// Virtuals is the number of virtual registers allocated.
	Virtuals int
	// Extended counts live ranges lengthened by the §3.7 rule.
	Extended int
	// MaxLive is the maximum number of simultaneously live virtual
	// registers (integer and FP classes combined).
	MaxLive int
}

// Options configures allocation.
type Options struct {
	// ExtendForRecovery applies the §3.7 live-range extension.
	ExtendForRecovery bool
}

type interval struct {
	reg        ir.Reg
	start, end int
}

// Allocate rewrites every virtual register of p (in place) to a free
// physical register. It returns an error when a class runs out of physical
// registers (spilling is out of scope; the paper notes the extension "will
// tend to increase the number of registers used").
func Allocate(p *prog.Program, opts Options) (Stats, error) {
	var stats Stats
	p.Layout()

	// Physical registers already referenced stay reserved.
	reserved := map[ir.Reg]bool{}
	var order []*ir.Instr
	for _, b := range p.Blocks {
		for _, in := range b.Instrs {
			order = append(order, in)
			for _, r := range []ir.Reg{in.Dest, in.Src1, in.Src2} {
				if r.Valid() && !r.Virtual {
					reserved[r] = true
				}
			}
		}
	}

	ivs := intervals(order)
	widenLoops(p, ivs)
	if opts.ExtendForRecovery {
		stats.Extended = extend(order, ivs)
	}

	var list []*interval
	for _, iv := range ivs {
		list = append(list, iv)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].start != list[j].start {
			return list[i].start < list[j].start
		}
		return regLess(list[i].reg, list[j].reg)
	})
	stats.Virtuals = len(list)

	assign := map[ir.Reg]ir.Reg{}
	type active struct {
		iv   *interval
		phys ir.Reg
	}
	var live []active
	free := freePool(reserved)
	maxLive := 0
	for _, iv := range list {
		kept := live[:0]
		for _, a := range live {
			if a.iv.end < iv.start {
				free[a.phys.Class] = append(free[a.phys.Class], a.phys)
				sortPool(free[a.phys.Class])
			} else {
				kept = append(kept, a)
			}
		}
		live = kept
		pool := free[iv.reg.Class]
		if len(pool) == 0 {
			return stats, fmt.Errorf("regalloc: out of %v registers at %v", iv.reg.Class, iv.reg)
		}
		phys := pool[0]
		free[iv.reg.Class] = pool[1:]
		assign[iv.reg] = phys
		live = append(live, active{iv, phys})
		if len(live) > maxLive {
			maxLive = len(live)
		}
	}
	stats.MaxLive = maxLive

	for _, in := range order {
		for _, slot := range []*ir.Reg{&in.Dest, &in.Src1, &in.Src2} {
			if slot.Valid() && slot.Virtual {
				phys, ok := assign[*slot]
				if !ok {
					return stats, fmt.Errorf("regalloc: no interval for %v", *slot)
				}
				*slot = phys
			}
		}
	}
	return stats, nil
}

// intervals computes one [firstDef, lastUse] interval per virtual register
// over the global instruction order. Registers live across backward branches
// (loops) get their interval widened to the whole loop span.
func intervals(order []*ir.Instr) map[ir.Reg]*interval {
	ivs := map[ir.Reg]*interval{}
	touch := func(r ir.Reg, i int) {
		if !r.Valid() || !r.Virtual {
			return
		}
		iv, ok := ivs[r]
		if !ok {
			ivs[r] = &interval{reg: r, start: i, end: i}
			return
		}
		if i < iv.start {
			iv.start = i
		}
		if i > iv.end {
			iv.end = i
		}
	}
	for i, in := range order {
		touch(in.Dest, i)
		touch(in.Src1, i)
		touch(in.Src2, i)
	}
	return ivs
}

// widenLoops widens intervals across backward control transfers: any
// register whose interval overlaps a loop body must span the whole loop,
// since its value is needed on the next iteration.
func widenLoops(p *prog.Program, ivs map[ir.Reg]*interval) {
	startOf := map[string]int{}
	i := 0
	for _, b := range p.Blocks {
		startOf[b.Label] = i
		i += len(b.Instrs)
	}
	i = 0
	for _, b := range p.Blocks {
		for k, in := range b.Instrs {
			if (ir.IsBranch(in.Op) || in.Op == ir.Jmp) && startOf[in.Target] <= i+k {
				lo, hi := startOf[in.Target], i+k
				for _, iv := range ivs {
					if iv.start <= hi && iv.end >= lo {
						if iv.start > lo {
							iv.start = lo
						}
						if iv.end < hi {
							iv.end = hi
						}
					}
				}
			}
		}
		i += len(b.Instrs)
	}
}

// extend applies the §3.7 live-range extension: for every speculative
// instruction I, the sources of every instruction between I and I's
// sentinel must stay live until the sentinel. Returns how many intervals
// were lengthened.
func extend(order []*ir.Instr, ivs map[ir.Reg]*interval) int {
	extended := 0
	for i, in := range order {
		if !in.Spec {
			continue
		}
		s := sentinelPos(order, i)
		if s < 0 {
			continue
		}
		for j := i; j <= s; j++ {
			for _, u := range []ir.Reg{order[j].Src1, order[j].Src2} {
				if !u.Valid() || !u.Virtual {
					continue
				}
				if iv := ivs[u]; iv != nil && iv.end < s {
					iv.end = s
					extended++
				}
			}
		}
	}
	return extended
}

// sentinelPos locates the sentinel of the speculative instruction at
// position i: the first subsequent non-speculative instruction that reads a
// register carrying its exception condition (tracking propagation through
// speculative readers), or the confirm for a speculative store.
func sentinelPos(order []*ir.Instr, i int) int {
	in := order[i]
	if ir.IsStore(in.Op) {
		stores := 0
		for j := i + 1; j < len(order); j++ {
			if order[j].Op == ir.ConfirmSt && order[j].Imm == int64(stores) {
				return j
			}
			if ir.BufferedStore(order[j].Op) {
				stores++
			}
		}
		return -1
	}
	d, ok := in.Def()
	if !ok {
		return -1
	}
	watch := map[ir.Reg]bool{d: true}
	for j := i + 1; j < len(order); j++ {
		cur := order[j]
		reads := false
		for _, u := range cur.Uses() {
			if watch[u] {
				reads = true
			}
		}
		if reads {
			if !cur.Spec {
				return j
			}
			if nd, ok := cur.Def(); ok {
				watch[nd] = true
			}
			continue
		}
		if nd, ok := cur.Def(); ok && watch[nd] {
			delete(watch, nd)
			if len(watch) == 0 {
				return -1 // condition overwritten before any sentinel
			}
		}
	}
	return -1
}

func freePool(reserved map[ir.Reg]bool) map[ir.RegClass][]ir.Reg {
	pools := map[ir.RegClass][]ir.Reg{}
	for n := 1; n < ir.NumIntRegs; n++ { // r0 is hardwired zero
		if r := ir.R(n); !reserved[r] {
			pools[ir.IntClass] = append(pools[ir.IntClass], r)
		}
	}
	for n := 0; n < ir.NumFPRegs; n++ {
		if r := ir.F(n); !reserved[r] {
			pools[ir.FPClass] = append(pools[ir.FPClass], r)
		}
	}
	return pools
}

func sortPool(pool []ir.Reg) {
	sort.Slice(pool, func(i, j int) bool { return pool[i].N < pool[j].N })
}

func regLess(a, b ir.Reg) bool {
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	return a.N < b.N
}
