package obs

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on http.DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles configures the profiling side-channels a CLI exposes: CPU and
// heap profile files and an HTTP listener serving net/http/pprof (plus
// /debug/vars for published registries).
type Profiles struct {
	CPUFile  string // -cpuprofile: pprof CPU profile written from start to Stop
	MemFile  string // -memprofile: heap profile written at Stop (after a GC)
	HTTPAddr string // -httpprof: address to serve /debug/pprof and /debug/vars on
}

// Start begins the configured profiling. The returned stop function ends
// the CPU profile and writes the heap profile; it must be called before
// exit (the HTTP listener, if any, stays up until the process ends).
func (p Profiles) Start() (stop func() error, err error) {
	var cpuOut *os.File
	if p.CPUFile != "" {
		cpuOut, err = os.Create(p.CPUFile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuOut); err != nil {
			cpuOut.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	if p.HTTPAddr != "" {
		ln, err := net.Listen("tcp", p.HTTPAddr)
		if err != nil {
			if cpuOut != nil {
				pprof.StopCPUProfile()
				cpuOut.Close()
			}
			return nil, fmt.Errorf("httpprof: %w", err)
		}
		go http.Serve(ln, nil) //nolint:errcheck // best-effort debug listener
	}
	return func() error {
		if cpuOut != nil {
			pprof.StopCPUProfile()
			if err := cpuOut.Close(); err != nil {
				return err
			}
		}
		if p.MemFile != "" {
			f, err := os.Create(p.MemFile)
			if err != nil {
				return err
			}
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("mem profile: %w", err)
			}
			return f.Close()
		}
		return nil
	}, nil
}
