package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestNilDisabledPath: every instrument obtained from a nil registry must be
// callable and inert — the zero-allocation disabled path instrumented code
// relies on.
func TestNilDisabledPath(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter must discard")
	}
	h := r.Histogram("y")
	h.Observe(7)
	if s := h.Snapshot(); s != (HistSnapshot{}) {
		t.Errorf("nil histogram snapshot = %+v, want zero", s)
	}
	r.Gauge("z", func() int64 { return 1 })
	if got := r.Summary(); got != "" {
		t.Errorf("nil registry summary = %q, want empty", got)
	}
	if err := r.Publish("nil-reg"); err != nil {
		t.Errorf("nil publish: %v", err)
	}
}

// TestNilDisabledAllocs: the disabled counter path must not allocate.
func TestNilDisabledAllocs(t *testing.T) {
	var r *Registry
	allocs := testing.AllocsPerRun(100, func() {
		r.Counter("hot").Add(1)
		r.Histogram("hot").Observe(3)
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates %v per op, want 0", allocs)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if r.Counter("n") != c {
		t.Error("same name must return the same counter")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []int64{5, 1, 9, 3} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.Sum != 18 || s.Min != 1 || s.Max != 9 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.Mean() != 4.5 {
		t.Errorf("mean = %v, want 4.5", s.Mean())
	}
}

func TestSummaryAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Gauge("a.size", func() int64 { return 7 })
	r.Histogram("h").Observe(10)
	sum := r.Summary()
	for _, want := range []string{"a.size", "b.count", "h.count", "h.sum", "h.min", "h.max"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	lines := strings.Split(strings.TrimSpace(sum), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Errorf("summary not sorted: %q before %q", lines[i-1], lines[i])
		}
	}
}

func TestPublishDuplicate(t *testing.T) {
	r := NewRegistry()
	if err := r.Publish("obs-test-reg"); err != nil {
		t.Fatal(err)
	}
	if err := r.Publish("obs-test-reg"); err == nil {
		t.Error("duplicate publish must error, not panic")
	}
}
