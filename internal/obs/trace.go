package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Tracer streams Chrome trace-event JSON (the "JSON Array Format" consumed
// by Perfetto and chrome://tracing): one duration slice per issued
// instruction on a track per issue slot, counter tracks for machine
// occupancy, and flow arrows linking a speculative instruction that recorded
// an exception to the sentinel that later signalled it.
//
// Timestamps are simulated cycles, reported as microseconds (1 cycle = 1us).
// The simulator guards every hook on a nil *Tracer, so the disabled path is
// a single pointer compare; none of this code is on the hot path when
// tracing is off.
type Tracer struct {
	w      *bufio.Writer
	closer io.Closer
	err    error
	tracks map[int]bool
	first  bool
}

// NewTracer starts a trace on w, writing the array header immediately. If w
// is also an io.Closer, Close closes it.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{w: bufio.NewWriterSize(w, 1<<16), tracks: map[int]bool{}, first: true}
	if c, ok := w.(io.Closer); ok {
		t.closer = c
	}
	t.raw(`{"traceEvents":[`)
	return t
}

func (t *Tracer) raw(s string) {
	if t.err == nil {
		_, t.err = t.w.WriteString(s)
	}
}

// event begins one JSON event object, handling array commas.
func (t *Tracer) event(s string) {
	if !t.first {
		t.raw(",\n")
	} else {
		t.raw("\n")
		t.first = false
	}
	t.raw(s)
}

// track emits thread metadata the first time a tid is used, so Perfetto
// labels each track as an issue slot.
func (t *Tracer) track(tid int) {
	if t.tracks[tid] {
		return
	}
	t.tracks[tid] = true
	t.event(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":"issue slot %d"}}`, tid, tid))
	t.event(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`, tid, tid))
}

// Slice records a complete duration event: an instruction named name
// occupying slot track from cycle ts for dur cycles, with its PC and
// speculative flag as args.
func (t *Tracer) Slice(track int, name string, ts, dur int64, pc int, spec bool) {
	t.track(track)
	t.event(fmt.Sprintf(`{"ph":"X","pid":1,"tid":%d,"ts":%d,"dur":%d,"name":%s,"args":{"pc":%d,"spec":%v}}`,
		track, ts, dur, strconv.Quote(name), pc, spec))
}

// Counter records a counter-track sample (e.g. store-buffer occupancy).
func (t *Tracer) Counter(name string, ts, value int64) {
	t.event(fmt.Sprintf(`{"ph":"C","pid":1,"ts":%d,"name":%s,"args":{"value":%d}}`,
		ts, strconv.Quote(name), value))
}

// Instant records a zero-duration marker on a slot track.
func (t *Tracer) Instant(track int, name string, ts int64) {
	t.track(track)
	t.event(fmt.Sprintf(`{"ph":"i","pid":1,"tid":%d,"ts":%d,"s":"t","name":%s}`,
		track, ts, strconv.Quote(name)))
}

// flow emits one flow event. Chrome binds flow endpoints to the slice at the
// same (tid, ts), drawing an arrow between the bound slices; id correlates
// the endpoints — we use the excepting instruction's PC, which is exactly
// the value the architecture itself threads through the tagged register.
func (t *Tracer) flow(ph string, id int64, track int, ts int64, extra string) {
	t.track(track)
	t.event(fmt.Sprintf(`{"ph":%q,"pid":1,"tid":%d,"ts":%d,"id":%d,"cat":"sentinel","name":"exception"%s}`,
		ph, track, ts, id, extra))
}

// FlowStart opens a flow arrow at the slice on track at ts: a speculative
// instruction recorded an exception (tag set, PC id captured).
func (t *Tracer) FlowStart(id int64, track int, ts int64) { t.flow("s", id, track, ts, "") }

// FlowStep extends the flow through a propagating instruction.
func (t *Tracer) FlowStep(id int64, track int, ts int64) { t.flow("t", id, track, ts, "") }

// FlowEnd terminates the flow at the sentinel that signalled the exception.
func (t *Tracer) FlowEnd(id int64, track int, ts int64) {
	t.flow("f", id, track, ts, `,"bp":"e"`)
}

// Close terminates the JSON array, flushes, and closes the underlying
// writer when it is closable, returning the first error encountered.
func (t *Tracer) Close() error {
	t.raw("\n]}\n")
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	if t.closer != nil {
		if err := t.closer.Close(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}
