package obs

// Request-scoped observability: per-request span arenas and an always-on
// flight recorder.
//
// A Record is a fixed-size arena of Spans covering one request's stages
// (admission wait, response-cache lookup, singleflight wait-vs-own,
// compile, schedule, simulate, encode). Records are pooled and never
// allocate on the request path; every method on *Record is nil-safe so
// instrumented code holds a possibly-nil handle and calls it
// unconditionally, exactly like the Registry instruments.
//
// The Recorder tail-samples completed records — every error, every request
// over a latency threshold, and 1-in-K of the rest — into a lock-striped
// ring of the last N retained records, which /debug/requests renders. The
// microsecond-scale warm cache-hit path instead asks SampleWarm up front:
// with warm sampling off that is a single atomic load and the hit records
// nothing; with 1-in-K on it is a load plus one counter add.
//
// A Record belongs to one goroutine. Code that fans work out across
// goroutines must strip the record from the context first (the eval
// runner's parallel driver does).

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Stage labels one request stage a Span covers.
type Stage uint8

const (
	StageAdmission  Stage = iota // waiting for an admission slot
	StageRespCache               // response-byte cache lookup/serve
	StageSFWait                  // waiting on another request's singleflight
	StageSFOwn                   // owning (computing) a singleflight entry
	StageCompile                 // build + profile + superblock formation
	StageSchedule                // list scheduling
	StageSimulate                // cycle-level simulation
	StageEncode                  // response encoding + cache fill
	StageBatch                   // batch fan-out across the worker pool
	StageRoute                   // fleet router: fingerprint + ring/spill decision
	StageProxy                   // fleet router: proxied hop to the chosen backend
	StageFleetCache              // fleet router: front response-cache lookup/serve
	numStages
)

var stageNames = [numStages]string{
	"admission", "respcache", "sfwait", "sfown",
	"compile", "schedule", "simulate", "encode", "batch",
	"route", "proxy", "fcache",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage" + strconv.Itoa(int(s))
}

// Arg qualifies a Stage with which cache or artifact it concerns.
type Arg uint8

const (
	ArgNone    Arg = iota
	ArgBuilds      // built-program flight
	ArgForms       // formed-superblock flight
	ArgScheds      // schedule flight
	ArgCells       // measured-cell flight
	ArgSources     // compiled-source singleflight
	ArgRaw         // raw-fingerprint response cache
	ArgCanon       // canonical-fingerprint response cache
	ArgHashed      // fleet: routed to the fingerprint's ring owner
	ArgSpilled     // fleet: hot key spilled across the whole fleet
	numArgs
)

var argNames = [numArgs]string{
	"", "builds", "forms", "scheds", "cells", "sources", "raw", "canon",
	"hashed", "spilled",
}

func (a Arg) String() string {
	if int(a) < len(argNames) {
		return argNames[a]
	}
	return "arg" + strconv.Itoa(int(a))
}

// Span is one timed stage within a request: nanosecond offsets from the
// record start, and the arena index of the enclosing span (-1 at top level).
type Span struct {
	Start  int64 // ns offset from record start
	End    int64 // ns offset; 0 means still open at Finish
	Stage  Stage
	Arg    Arg
	Parent int8
}

// Arena geometry: enough for every stage the handlers record plus nesting,
// small enough that a pooled Record stays a few cache lines.
const (
	maxSpans = 16
	maxDepth = 8
	maxIDLen = 48
)

// Record is one request's span arena plus identity fields. Obtained from
// Recorder.Begin, finished exactly once with Finish. The nil Record is
// valid and discards everything — the un-instrumented path.
type Record struct {
	rec                       *Recorder
	t0                        time.Time
	seq                       uint64
	endpoint, predictor, tier string
	spans                     [maxSpans]Span
	id                        [maxIDLen]byte
	fp                        [8]byte
	stack                     [maxDepth]int8
	nspans, depth             uint8
	idLen, fpLen              uint8
	warm                      bool
}

func (r *Record) since() int64 {
	return time.Since(r.t0).Nanoseconds()
}

// Start opens a span. Spans nest: the closest open span becomes the parent.
// Beyond the arena or depth limits the span is silently dropped (End still
// balances). No-op on nil.
func (r *Record) Start(stage Stage, arg Arg) {
	if r == nil {
		return
	}
	idx := int8(-1)
	if int(r.nspans) < maxSpans {
		parent := int8(-1)
		if r.depth > 0 && r.depth <= maxDepth {
			parent = r.stack[r.depth-1]
		}
		idx = int8(r.nspans)
		r.spans[idx] = Span{Start: r.since(), Stage: stage, Arg: arg, Parent: parent}
		r.nspans++
	}
	if int(r.depth) < maxDepth {
		r.stack[r.depth] = idx
	}
	r.depth++
}

// End closes the most recently opened span. No-op on nil or when no span
// is open.
func (r *Record) End() {
	if r == nil || r.depth == 0 {
		return
	}
	r.depth--
	if int(r.depth) < maxDepth {
		if i := r.stack[r.depth]; i >= 0 {
			r.spans[i].End = r.since()
		}
	}
}

// SetID copies a client-supplied request ID over the generated one,
// truncated to the arena. No-op on nil or empty.
func (r *Record) SetID(id string) {
	if r == nil || id == "" {
		return
	}
	n := copy(r.id[:], id)
	r.idLen = uint8(n)
}

// ID returns the record's request ID (allocates the string; callers on the
// hot path avoid it unless the record is sampled). Empty on nil.
func (r *Record) ID() string {
	if r == nil {
		return ""
	}
	return string(r.id[:r.idLen])
}

// SetEndpoint, SetPredictor and SetTier label the record. The strings must
// be static (endpoint constants, predictor name table, tier constants) —
// retained views alias them. No-ops on nil.
func (r *Record) SetEndpoint(s string) {
	if r != nil {
		r.endpoint = s
	}
}
func (r *Record) SetPredictor(s string) {
	if r != nil {
		r.predictor = s
	}
}
func (r *Record) SetTier(s string) {
	if r != nil {
		r.tier = s
	}
}

// SetFingerprint copies the leading bytes of a request fingerprint (up to
// 8) for cross-referencing with cache keys. No-op on nil.
func (r *Record) SetFingerprint(p []byte) {
	if r == nil {
		return
	}
	r.fpLen = uint8(copy(r.fp[:], p))
}

// MarkWarm tags the record as a head-sampled warm cache hit: Finish
// retains it unconditionally (the 1-in-K decision already happened in
// SampleWarm) instead of re-rolling the tail sample. No-op on nil.
func (r *Record) MarkWarm() {
	if r != nil {
		r.warm = true
	}
}

// Finish completes the record: applies the tail-sampling decision, retains
// the view in the recorder's ring (and sink) when sampled, and returns the
// arena to the pool. The record must not be used after Finish. No-op on nil.
func (r *Record) Finish(status int) {
	if r == nil {
		return
	}
	rec := r.rec
	dur := r.since()
	var reason string
	switch {
	case status >= 400:
		reason = "error"
	case dur >= rec.slowNs:
		reason = "slow"
	case r.warm:
		reason = "warm"
	default:
		if k := rec.every.Load(); k > 0 && rec.tailSeq.Add(1)%k == 0 {
			reason = "sample"
		}
	}
	if reason != "" {
		v := r.view(status, dur, reason)
		rec.keep(v)
		if s := rec.sink; s != nil {
			s(v)
		}
	}
	r.rec = nil
	rec.pool.Put(r)
}

// view builds the immutable retained form of the record.
func (r *Record) view(status int, dur int64, reason string) *RecordView {
	v := &RecordView{
		Time:      r.t0.UTC().Format(time.RFC3339Nano),
		ID:        r.ID(),
		Endpoint:  r.endpoint,
		Predictor: r.predictor,
		Tier:      r.tier,
		Sampled:   reason,
		TimeNs:    r.t0.UnixNano(),
		DurNs:     dur,
		Seq:       r.seq,
		Status:    status,
	}
	if r.fpLen > 0 {
		v.FP = hex.EncodeToString(r.fp[:r.fpLen])
	}
	if r.nspans > 0 {
		v.Spans = make([]SpanView, r.nspans)
		for i := uint8(0); i < r.nspans; i++ {
			s := r.spans[i]
			end := s.End
			if end == 0 || end < s.Start {
				end = dur // span still open at Finish: close it there
			}
			v.Spans[i] = SpanView{
				Stage:   s.Stage.String(),
				Arg:     s.Arg.String(),
				StartNs: s.Start,
				DurNs:   end - s.Start,
				Parent:  int(s.Parent),
			}
		}
	}
	return v
}

// SpanView is the retained, JSON-ready form of a Span.
type SpanView struct {
	Stage   string `json:"stage"`
	Arg     string `json:"arg,omitempty"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Parent  int    `json:"parent"`
}

// RecordView is the retained, JSON-ready form of a completed request
// record, as served by /debug/requests.json and written to the access log.
type RecordView struct {
	Time      string     `json:"time"`
	ID        string     `json:"id"`
	Endpoint  string     `json:"endpoint"`
	Predictor string     `json:"predictor,omitempty"`
	Tier      string     `json:"tier,omitempty"`
	FP        string     `json:"fp,omitempty"`
	Sampled   string     `json:"sampled"`
	Spans     []SpanView `json:"spans,omitempty"`
	TimeNs    int64      `json:"time_unix_ns"`
	DurNs     int64      `json:"dur_ns"`
	Seq       uint64     `json:"seq"`
	Status    int        `json:"status"`
}

// RecorderConfig sizes a Recorder. Zero values take the defaults.
type RecorderConfig struct {
	// Entries is the ring capacity: how many retained records
	// /debug/requests can show. Default 256.
	Entries int
	// Slow is the latency threshold above which every request is retained.
	// Default 5ms.
	Slow time.Duration
	// Every retains 1 in Every of the requests that are neither errors nor
	// slow, and head-samples 1 in Every warm cache hits. <= 0 disables both
	// (errors and slow requests are still always retained). Default 16.
	Every int64
}

// recStripes shards the retained-record ring so concurrent Finish calls on
// sampled requests rarely contend.
const recStripes = 8

type recStripe struct {
	buf []*RecordView
	pos int
	mu  sync.Mutex
}

// Recorder is the flight recorder: a pool of Record arenas and a
// lock-striped ring of the last N retained request views. The nil Recorder
// is valid: Begin returns nil (a valid, discarding Record) and SampleWarm
// is false.
type Recorder struct {
	sink     func(*RecordView)
	idPrefix string
	perEntry int
	slowNs   int64
	pool     sync.Pool
	every    atomic.Int64
	warmSeq  atomic.Int64
	tailSeq  atomic.Int64
	retained atomic.Int64
	seq      atomic.Uint64
	stripes  [recStripes]recStripe
}

// NewRecorder builds a Recorder with the given config.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Entries <= 0 {
		cfg.Entries = 256
	}
	if cfg.Slow <= 0 {
		cfg.Slow = 5 * time.Millisecond
	}
	per := (cfg.Entries + recStripes - 1) / recStripes
	rec := &Recorder{
		idPrefix: fmt.Sprintf("%08x", rand.Uint32()),
		perEntry: per,
		slowNs:   cfg.Slow.Nanoseconds(),
	}
	if cfg.Every == 0 {
		cfg.Every = 16
	}
	if cfg.Every > 0 {
		rec.every.Store(cfg.Every)
	}
	for i := range rec.stripes {
		rec.stripes[i].buf = make([]*RecordView, per)
	}
	rec.pool.New = func() any { return new(Record) }
	return rec
}

// Begin starts a request record with a generated request ID
// ("<prefix>-<seq>"). The arena comes from a pool; the call does not
// allocate in steady state. Returns nil on a nil recorder.
func (rec *Recorder) Begin(endpoint string) *Record {
	if rec == nil {
		return nil
	}
	r := rec.pool.Get().(*Record)
	r.rec = rec
	r.t0 = time.Now()
	r.seq = rec.seq.Add(1)
	r.endpoint = endpoint
	r.predictor, r.tier = "", ""
	r.nspans, r.depth, r.fpLen = 0, 0, 0
	r.warm = false
	b := append(r.id[:0], rec.idPrefix...)
	b = append(b, '-')
	b = strconv.AppendUint(b, r.seq, 10)
	r.idLen = uint8(len(b))
	return r
}

// SampleWarm is the head-sampling decision for the warm cache-hit path:
// true 1-in-Every times. With warm sampling disabled (Every <= 0) the cost
// is a single atomic load and the answer is always false. False on nil.
func (rec *Recorder) SampleWarm() bool {
	if rec == nil {
		return false
	}
	k := rec.every.Load()
	if k <= 0 {
		return false
	}
	return rec.warmSeq.Add(1)%k == 0
}

// SetSink registers a callback invoked with every retained record view
// (the access-log hook). Call before serving; views passed to the sink are
// immutable and may be retained. No-op on nil.
func (rec *Recorder) SetSink(fn func(*RecordView)) {
	if rec != nil {
		rec.sink = fn
	}
}

// Retained reports how many records have been retained since start.
// Zero on nil.
func (rec *Recorder) Retained() int64 {
	if rec == nil {
		return 0
	}
	return rec.retained.Load()
}

func (rec *Recorder) keep(v *RecordView) {
	rec.retained.Add(1)
	s := &rec.stripes[v.Seq&(recStripes-1)]
	s.mu.Lock()
	s.buf[s.pos] = v
	s.pos++
	if s.pos == len(s.buf) {
		s.pos = 0
	}
	s.mu.Unlock()
}

// Snapshot returns the retained records, newest first. Views are immutable
// and shared with the ring. Nil on a nil recorder.
func (rec *Recorder) Snapshot() []*RecordView {
	if rec == nil {
		return nil
	}
	out := make([]*RecordView, 0, recStripes*rec.perEntry)
	for i := range rec.stripes {
		s := &rec.stripes[i]
		s.mu.Lock()
		for _, v := range s.buf {
			if v != nil {
				out = append(out, v)
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TimeNs != out[j].TimeNs {
			return out[i].TimeNs > out[j].TimeNs
		}
		return out[i].Seq > out[j].Seq
	})
	return out
}

// recordKey carries the per-request *Record through a context.
type recordKey struct{}

// ContextWithRecord attaches r to the context (detaches when r is nil,
// which parallel fan-out uses to keep the single-goroutine invariant).
func ContextWithRecord(ctx context.Context, r *Record) context.Context {
	return context.WithValue(ctx, recordKey{}, r)
}

// RecordFrom returns the request record attached to ctx, or nil.
func RecordFrom(ctx context.Context) *Record {
	r, _ := ctx.Value(recordKey{}).(*Record)
	return r
}

// AccessLogger serializes retained record views as one JSON line each —
// the structured access log behind sentineld's -accesslog flag. Safe for
// concurrent use.
type AccessLogger struct {
	w  io.Writer
	mu sync.Mutex
}

// NewAccessLogger writes JSON lines to w.
func NewAccessLogger(w io.Writer) *AccessLogger {
	return &AccessLogger{w: w}
}

// Log writes one record view as a JSON line. Errors are dropped: the
// access log must never fail a request.
func (l *AccessLogger) Log(v *RecordView) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	data = append(data, '\n')
	l.mu.Lock()
	l.w.Write(data)
	l.mu.Unlock()
}
