package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// quietConfig retains nothing but errors/slow: armed recorder, unsampled
// requests — the zero-overhead configuration the alloc tests pin.
func quietConfig() RecorderConfig {
	return RecorderConfig{Entries: 64, Slow: time.Hour, Every: 1 << 30}
}

func TestNilRecorder(t *testing.T) {
	var rec *Recorder
	if r := rec.Begin("/v1/simulate"); r != nil {
		t.Fatal("nil recorder must Begin a nil record")
	}
	if rec.SampleWarm() {
		t.Error("nil recorder must not sample warm hits")
	}
	if rec.Snapshot() != nil {
		t.Error("nil recorder snapshot must be nil")
	}
	if rec.Retained() != 0 {
		t.Error("nil recorder retained must be 0")
	}
	rec.SetSink(func(*RecordView) {})
	var r *Record
	r.Start(StageCompile, ArgNone)
	r.End()
	r.SetID("x")
	r.SetEndpoint("e")
	r.SetPredictor("p")
	r.SetTier("t")
	r.SetFingerprint([]byte{1, 2})
	r.MarkWarm()
	r.Finish(200)
	if r.ID() != "" {
		t.Error("nil record ID must be empty")
	}
}

func TestRecordSpanNesting(t *testing.T) {
	rec := NewRecorder(RecorderConfig{})
	r := rec.Begin("/v1/simulate")
	r.SetTier("miss")
	r.SetPredictor("tage")
	r.SetFingerprint([]byte{0xde, 0xad, 0xbe, 0xef})
	r.Start(StageCompile, ArgBuilds)
	r.Start(StageSchedule, ArgNone)
	r.End()
	r.End()
	r.Start(StageSimulate, ArgCells)
	// Leave the simulate span open: Finish must close it at the end.
	r.Finish(500) // error: always retained
	snap := rec.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d records, want 1", len(snap))
	}
	v := snap[0]
	if v.Endpoint != "/v1/simulate" || v.Tier != "miss" || v.Predictor != "tage" {
		t.Errorf("record labels = %+v", v)
	}
	if v.Sampled != "error" || v.Status != 500 {
		t.Errorf("sampled=%q status=%d, want error/500", v.Sampled, v.Status)
	}
	if v.FP != "deadbeef" {
		t.Errorf("fp = %q, want deadbeef", v.FP)
	}
	if !strings.Contains(v.ID, "-") {
		t.Errorf("generated id = %q, want prefix-seq form", v.ID)
	}
	if len(v.Spans) != 3 {
		t.Fatalf("spans = %+v, want 3", v.Spans)
	}
	if v.Spans[0].Stage != "compile" || v.Spans[0].Parent != -1 || v.Spans[0].Arg != "builds" {
		t.Errorf("span 0 = %+v", v.Spans[0])
	}
	if v.Spans[1].Stage != "schedule" || v.Spans[1].Parent != 0 {
		t.Errorf("span 1 = %+v (want parent 0)", v.Spans[1])
	}
	if v.Spans[2].Stage != "simulate" || v.Spans[2].DurNs <= 0 {
		t.Errorf("span 2 = %+v (open span must close at Finish)", v.Spans[2])
	}
	for _, s := range v.Spans {
		if s.DurNs < 0 || s.StartNs < 0 || s.StartNs+s.DurNs > v.DurNs {
			t.Errorf("span %+v escapes record duration %d", s, v.DurNs)
		}
	}
}

func TestTailSampling(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Entries: 64, Slow: time.Hour, Every: 4})
	for i := 0; i < 16; i++ {
		rec.Begin("/v1/schedule").Finish(200)
	}
	if got := rec.Retained(); got != 4 {
		t.Errorf("retained %d of 16 at 1-in-4, want 4", got)
	}
	rec.Begin("/v1/schedule").Finish(422)
	rec.Begin("/v1/schedule").Finish(503)
	if got := rec.Retained(); got != 6 {
		t.Errorf("retained = %d, want 6 (errors always kept)", got)
	}
	for _, v := range rec.Snapshot() {
		if v.Status >= 400 && v.Sampled != "error" {
			t.Errorf("status %d sampled as %q, want error", v.Status, v.Sampled)
		}
	}
}

func TestSlowSampling(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Entries: 8, Slow: time.Nanosecond, Every: -1})
	r := rec.Begin("/v1/simulate")
	time.Sleep(10 * time.Microsecond)
	r.Finish(200)
	snap := rec.Snapshot()
	if len(snap) != 1 || snap[0].Sampled != "slow" {
		t.Fatalf("snapshot = %+v, want one slow record", snap)
	}
}

func TestWarmSampling(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Entries: 16, Slow: time.Hour, Every: 2})
	hits := 0
	for i := 0; i < 10; i++ {
		if rec.SampleWarm() {
			hits++
			r := rec.Begin("/v1/simulate")
			r.MarkWarm()
			r.SetTier("raw")
			r.Finish(200)
		}
	}
	if hits != 5 {
		t.Errorf("SampleWarm fired %d of 10 at 1-in-2, want 5", hits)
	}
	for _, v := range rec.Snapshot() {
		if v.Sampled != "warm" || v.Tier != "raw" {
			t.Errorf("warm record = %+v", v)
		}
	}
	off := NewRecorder(RecorderConfig{Every: -1})
	for i := 0; i < 10; i++ {
		if off.SampleWarm() {
			t.Fatal("SampleWarm must never fire with Every <= 0")
		}
	}
}

func TestRingEviction(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Entries: 8, Slow: time.Hour, Every: -1})
	for i := 0; i < 100; i++ {
		rec.Begin("/v1/simulate").Finish(500)
	}
	snap := rec.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot keeps %d records, want ring capacity 8", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].TimeNs < snap[i].TimeNs {
			t.Fatalf("snapshot not newest-first at %d", i)
		}
	}
	// The newest records must have survived: seqs 93..100 in some order.
	for _, v := range snap {
		if v.Seq <= 92 {
			t.Errorf("old record seq %d survived eviction", v.Seq)
		}
	}
}

func TestSetIDAndTruncation(t *testing.T) {
	rec := NewRecorder(quietConfig())
	r := rec.Begin("/v1/simulate")
	r.SetID("client-supplied-id")
	if got := r.ID(); got != "client-supplied-id" {
		t.Errorf("ID = %q", got)
	}
	long := strings.Repeat("x", 100)
	r.SetID(long)
	if got := r.ID(); got != long[:maxIDLen] {
		t.Errorf("long ID = %q (len %d), want truncation to %d", got, len(got), maxIDLen)
	}
	r.Finish(200)
}

func TestAccessLogSink(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Entries: 8, Slow: time.Hour, Every: -1})
	var buf bytes.Buffer
	l := NewAccessLogger(&buf)
	rec.SetSink(l.Log)
	r := rec.Begin("/v1/figures")
	r.SetID("req-123")
	r.Start(StageEncode, ArgCanon)
	r.End()
	r.Finish(504)
	rec.Begin("/v1/figures").Finish(200) // unsampled: no line
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("access log has %d lines, want 1:\n%s", len(lines), buf.String())
	}
	var v RecordView
	if err := json.Unmarshal([]byte(lines[0]), &v); err != nil {
		t.Fatalf("access log line is not JSON: %v", err)
	}
	if v.ID != "req-123" || v.Status != 504 || v.Endpoint != "/v1/figures" {
		t.Errorf("logged view = %+v", v)
	}
	if len(v.Spans) != 1 || v.Spans[0].Stage != "encode" || v.Spans[0].Arg != "canon" {
		t.Errorf("logged spans = %+v", v.Spans)
	}
}

// The armed-but-unsampled record lifecycle must not allocate in steady
// state: this is the budget the serving hot path inherits.
func TestRecordLifecycleAllocs(t *testing.T) {
	rec := NewRecorder(quietConfig())
	// Prime the pool.
	for i := 0; i < 8; i++ {
		rec.Begin("/v1/simulate").Finish(200)
	}
	allocs := testing.AllocsPerRun(200, func() {
		r := rec.Begin("/v1/simulate")
		r.SetTier("cell")
		r.Start(StageSimulate, ArgCells)
		r.End()
		r.Finish(200)
	})
	if allocs != 0 {
		t.Errorf("unsampled record lifecycle allocates %v per op, want 0", allocs)
	}
	if rec.Retained() != 0 {
		t.Errorf("retained = %d, want 0", rec.Retained())
	}
}

func TestSampleWarmAllocs(t *testing.T) {
	rec := NewRecorder(quietConfig())
	allocs := testing.AllocsPerRun(200, func() {
		if rec.SampleWarm() {
			t.Fatal("unexpected warm sample")
		}
	})
	if allocs != 0 {
		t.Errorf("SampleWarm allocates %v per op, want 0", allocs)
	}
}

func TestSpanOverflow(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Entries: 8, Slow: time.Hour, Every: -1})
	r := rec.Begin("/v1/simulate")
	for i := 0; i < maxSpans+10; i++ {
		r.Start(StageCompile, ArgNone)
	}
	for i := 0; i < maxSpans+10; i++ {
		r.End()
	}
	r.Finish(500)
	snap := rec.Snapshot()
	if len(snap) != 1 || len(snap[0].Spans) != maxSpans {
		t.Fatalf("overflowed arena kept %d spans, want %d", len(snap[0].Spans), maxSpans)
	}
}

func TestContextRecord(t *testing.T) {
	ctx := context.Background()
	if RecordFrom(ctx) != nil {
		t.Fatal("empty context must have no record")
	}
	rec := NewRecorder(quietConfig())
	r := rec.Begin("/v1/simulate")
	ctx = ContextWithRecord(ctx, r)
	if RecordFrom(ctx) != r {
		t.Fatal("record not carried through context")
	}
	stripped := ContextWithRecord(ctx, nil)
	if RecordFrom(stripped) != nil {
		t.Fatal("nil record must strip the context")
	}
	r.Finish(200)
}
