package obs

import (
	"flag"
	"math"
	"math/bits"
	"os"
	"strings"
	"testing"
)

// -promfile points TestExpositionFiles at a scraped /metrics body; CI uses
// it to validate the live sentineld exposition with this parser instead of
// an external promtool.
var promFile = flag.String("promfile", "", "path to a Prometheus exposition file to validate")

func TestQuantileEmptyAndExtremes(t *testing.T) {
	var s HistSnapshot
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %d, want 0", got)
	}
	h := &Histogram{}
	for _, v := range []int64{3, 14, 1, 500} {
		h.Observe(v)
	}
	s = h.Snapshot()
	if got := s.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %d, want Min 1", got)
	}
	if got := s.Quantile(1); got != 500 {
		t.Errorf("Quantile(1) = %d, want Max 500", got)
	}
}

// A single repeated value pins every quantile exactly: the bucket bounds
// clamp to [Min, Max] so interpolation cannot leave the observed value.
func TestQuantileSingleValue(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 1000; i++ {
		h.Observe(100)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.01, 0.5, 0.9, 0.99} {
		if got := s.Quantile(q); got != 100 {
			t.Errorf("Quantile(%v) = %d, want 100", q, got)
		}
	}
}

// Quantiles over 1..N must land inside the power-of-two bucket that holds
// the true rank, and must be monotone in q.
func TestQuantileBucketAccuracy(t *testing.T) {
	h := &Histogram{}
	const n = 1000
	for v := int64(1); v <= n; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	prev := int64(math.MinInt64)
	for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		got := s.Quantile(q)
		exact := int64(math.Ceil(q * n))
		bl := bits.Len64(uint64(exact))
		lo, hi := int64(1)<<(bl-1), int64(1)<<bl-1
		if hi > n {
			hi = n
		}
		if got < lo || got > hi {
			t.Errorf("Quantile(%v) = %d, want within bucket [%d, %d] of exact %d", q, got, lo, hi, exact)
		}
		if got < prev {
			t.Errorf("Quantile(%v) = %d not monotone (prev %d)", q, got, prev)
		}
		prev = got
	}
}

// Bucket counts must sum to Count, with each value in its bit-length bucket
// and non-positive values in bucket 0.
func TestSnapshotBuckets(t *testing.T) {
	h := &Histogram{}
	vals := []int64{-5, 0, 1, 2, 3, 7, 8, 1000, 1 << 40}
	for _, v := range vals {
		h.Observe(v)
	}
	s := h.Snapshot()
	var sum int64
	for _, c := range s.Buckets {
		sum += c
	}
	if sum != s.Count || s.Count != int64(len(vals)) {
		t.Fatalf("bucket sum = %d, count = %d, want %d", sum, s.Count, len(vals))
	}
	if s.Buckets[0] != 2 {
		t.Errorf("bucket 0 = %d, want 2 (values -5 and 0)", s.Buckets[0])
	}
	if s.Buckets[bits.Len64(1000)] == 0 {
		t.Errorf("bucket %d empty, want it to hold 1000", bits.Len64(1000))
	}
}

func TestSummaryIncludesQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat.ns")
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	sum := r.Summary()
	for _, want := range []string{"lat.ns.p50", "lat.ns.p90", "lat.ns.p99"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestPromName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"server.req.count", "server_req_count"},
		{"eval:thing", "eval:thing"},
		{"9lives", "_9lives"},
		{"ok_name", "ok_name"},
	} {
		if got := promName(tc.in); got != tc.want {
			t.Errorf("promName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// The renderer's own output must round-trip through the validator, with
// histogram buckets cumulative and +Inf equal to the observation count.
func TestWritePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.req").Add(42)
	r.Gauge("cache.size", func() int64 { return 7 })
	h := r.Histogram("server.lat.ns")
	for _, v := range []int64{-1, 0, 1, 3, 900, 900, 64000} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ValidateProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ValidateProm: %v\n%s", err, b.String())
	}
	byName := map[string]PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["server_req"]; f.Type != "counter" || f.Samples[0].Value != 42 {
		t.Errorf("server_req = %+v", f)
	}
	if f := byName["cache_size"]; f.Type != "gauge" || f.Samples[0].Value != 7 {
		t.Errorf("cache_size = %+v", f)
	}
	f, ok := byName["server_lat_ns"]
	if !ok || f.Type != "histogram" {
		t.Fatalf("server_lat_ns = %+v", f)
	}
	var inf, count float64
	sawZeroLe := false
	for _, s := range f.Samples {
		switch {
		case s.Name == "server_lat_ns_count":
			count = s.Value
		case s.Name == "server_lat_ns_sum":
			continue
		case math.IsInf(s.Le, 1):
			inf = s.Value
		case s.Le == 0:
			sawZeroLe = true
			if s.Value != 2 {
				t.Errorf(`le="0" bucket = %v, want 2 (values -1 and 0)`, s.Value)
			}
		case s.Le != math.Trunc(s.Le) || uint64(s.Le)&(uint64(s.Le)+1) != 0:
			// Finite nonzero bounds must be 2^i - 1.
			t.Errorf("le bound %v is not 2^i - 1", s.Le)
		}
	}
	if !sawZeroLe {
		t.Error(`missing le="0" bucket for non-positive observations`)
	}
	if count != 7 || inf != 7 {
		t.Errorf("_count = %v, +Inf bucket = %v, want 7", count, inf)
	}
}

func TestWritePrometheusNil(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil registry: err=%v out=%q", err, b.String())
	}
}

func TestValidatePromRejects(t *testing.T) {
	for name, in := range map[string]string{
		"no type":        "x 1\n",
		"missing inf":    "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"not cumulative": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"3\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"inf != count":   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n",
		"unsorted le":    "# TYPE h histogram\nh_bucket{le=\"3\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"two counters":   "# TYPE c counter\nc 1\nc 2\n",
	} {
		if _, err := ValidateProm(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ValidateProm accepted invalid input:\n%s", name, in)
		}
	}
}

// TestExpositionFiles validates an on-disk exposition scraped from a live
// server (CI's serve job); skipped without -promfile.
func TestExpositionFiles(t *testing.T) {
	if *promFile == "" {
		t.Skip("no -promfile")
	}
	f, err := os.Open(*promFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fams, err := ValidateProm(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) == 0 {
		t.Fatal("exposition has no metric families")
	}
	hists := 0
	for _, fam := range fams {
		if fam.Type == "histogram" {
			hists++
		}
	}
	if hists == 0 {
		t.Error("exposition has no histogram families")
	}
	t.Logf("validated %d families (%d histograms) from %s", len(fams), hists, *promFile)
}
