package obs

// A minimal Prometheus text-exposition (0.0.4) parser and validator, used by
// tests and CI to check /metrics output without an external promtool
// dependency. It understands exactly the subset WritePrometheus emits —
// `# TYPE` lines, bare samples, and `{le="..."}` histogram series — and
// ValidateProm enforces the structural invariants scrapers rely on:
// every sample is preceded by a TYPE for its family, histogram buckets are
// sorted and cumulative, and the +Inf bucket equals the _count sample.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// PromSample is one parsed sample line. Le is NaN for non-bucket samples.
type PromSample struct {
	Le    float64 // `le` label value; NaN when absent
	Value float64
	Name  string
}

// PromFamily is one metric family: its declared TYPE and samples in file
// order. For histograms the family name is the base name; `_bucket`,
// `_sum` and `_count` samples all land in the base family.
type PromFamily struct {
	Name    string
	Type    string
	Samples []PromSample
}

// promBase maps a sample name to its family name: histogram series suffixes
// collapse onto the base family, everything else is its own family.
func promBase(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// ParseProm parses Prometheus text-exposition input into families, in file
// order. Unknown syntax (labels other than a single `le`, escapes, HELP
// lines with embedded newlines, etc.) is an error: the parser is a strict
// checker for our own exposition, not a general scraper.
func ParseProm(r io.Reader) ([]PromFamily, error) {
	var (
		fams  []PromFamily
		index = map[string]int{}
	)
	family := func(base string) *PromFamily {
		i, ok := index[base]
		if !ok {
			i = len(fams)
			index[base] = i
			fams = append(fams, PromFamily{Name: base})
		}
		return &fams[i]
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "# HELP") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return nil, fmt.Errorf("promparse: line %d: malformed TYPE line %q", lineno, line)
			}
			f := family(fields[2])
			if f.Type != "" && f.Type != fields[3] {
				return nil, fmt.Errorf("promparse: line %d: family %s re-typed %s -> %s", lineno, fields[2], f.Type, fields[3])
			}
			f.Type = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, le, err := splitPromSample(line)
		if err != nil {
			return nil, fmt.Errorf("promparse: line %d: %v", lineno, err)
		}
		val, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return nil, fmt.Errorf("promparse: line %d: bad value %q: %v", lineno, rest, err)
		}
		f := family(promBase(name))
		f.Samples = append(f.Samples, PromSample{Name: name, Le: le, Value: val})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// splitPromSample splits a sample line into metric name, value text and the
// parsed `le` label (NaN when there is no label set).
func splitPromSample(line string) (name, value string, le float64, err error) {
	le = math.NaN()
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return "", "", le, fmt.Errorf("malformed labels in %q", line)
		}
		labels := line[i+1 : j]
		const pre = `le="`
		if !strings.HasPrefix(labels, pre) || !strings.HasSuffix(labels, `"`) {
			return "", "", le, fmt.Errorf("unsupported label set %q", labels)
		}
		leText := strings.TrimSuffix(strings.TrimPrefix(labels, pre), `"`)
		if leText == "+Inf" {
			le = promInf
		} else if le, err = strconv.ParseFloat(leText, 64); err != nil {
			return "", "", math.NaN(), fmt.Errorf("bad le %q: %v", leText, err)
		}
		name = line[:i]
		value = strings.TrimSpace(line[j+1:])
		return name, value, le, nil
	}
	fields := strings.Fields(line)
	if len(fields) != 2 {
		return "", "", le, fmt.Errorf("malformed sample %q", line)
	}
	return fields[0], fields[1], le, nil
}

// ValidateProm parses the exposition and checks the invariants a scraper
// depends on: every family has a TYPE; counter and gauge families have
// exactly one sample; histogram families have strictly increasing `le`
// bounds, non-decreasing cumulative bucket counts, a +Inf bucket, and
// _count == +Inf bucket with a _sum present. Returns the families for
// further assertions.
func ValidateProm(r io.Reader) ([]PromFamily, error) {
	fams, err := ParseProm(r)
	if err != nil {
		return nil, err
	}
	for _, f := range fams {
		if f.Type == "" {
			return nil, fmt.Errorf("promparse: family %s has samples but no TYPE", f.Name)
		}
		switch f.Type {
		case "counter", "gauge":
			if len(f.Samples) != 1 {
				return nil, fmt.Errorf("promparse: %s %s has %d samples, want 1", f.Type, f.Name, len(f.Samples))
			}
			if s := f.Samples[0]; s.Name != f.Name || !math.IsNaN(s.Le) {
				return nil, fmt.Errorf("promparse: %s %s has unexpected sample %q", f.Type, f.Name, s.Name)
			}
		case "histogram":
			if err := validatePromHistogram(f); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("promparse: family %s has unsupported type %q", f.Name, f.Type)
		}
	}
	return fams, nil
}

func validatePromHistogram(f PromFamily) error {
	var (
		buckets      []PromSample
		sum, count   float64
		haveSum      bool
		haveCount    bool
		bucketSuffix = f.Name + "_bucket"
	)
	for _, s := range f.Samples {
		switch s.Name {
		case bucketSuffix:
			if math.IsNaN(s.Le) {
				return fmt.Errorf("promparse: %s bucket without le label", f.Name)
			}
			buckets = append(buckets, s)
		case f.Name + "_sum":
			sum, haveSum = s.Value, true
		case f.Name + "_count":
			count, haveCount = s.Value, true
		default:
			return fmt.Errorf("promparse: histogram %s has unexpected sample %q", f.Name, s.Name)
		}
	}
	if len(buckets) == 0 {
		return fmt.Errorf("promparse: histogram %s has no buckets", f.Name)
	}
	if !haveSum || !haveCount {
		return fmt.Errorf("promparse: histogram %s missing _sum or _count", f.Name)
	}
	_ = sum
	for i, b := range buckets {
		if i > 0 {
			if b.Le <= buckets[i-1].Le {
				return fmt.Errorf("promparse: histogram %s le bounds not increasing: %v after %v", f.Name, b.Le, buckets[i-1].Le)
			}
			if b.Value < buckets[i-1].Value {
				return fmt.Errorf("promparse: histogram %s bucket counts not cumulative: %v after %v", f.Name, b.Value, buckets[i-1].Value)
			}
		}
	}
	last := buckets[len(buckets)-1]
	if !math.IsInf(last.Le, 1) {
		return fmt.Errorf("promparse: histogram %s missing +Inf bucket", f.Name)
	}
	if last.Value != count {
		return fmt.Errorf("promparse: histogram %s +Inf bucket %v != _count %v", f.Name, last.Value, count)
	}
	return nil
}
