package obs

// The flight recorder's human-readable debug page: one header line per
// retained request plus an indented span waterfall. Shared by every binary
// that carries a Recorder (sentineld's /debug/requests and sentinelfront's),
// so the two pages cannot drift.

import (
	"fmt"
	"html"
	"io"
	"strings"
	"time"
)

// WriteRequestsHTML renders views (newest first, as Recorder.Snapshot
// returns them) as the flight-recorder page. Request IDs and labels are
// client-influenced, so everything is HTML-escaped into a <pre>.
func WriteRequestsHTML(w io.Writer, title string, views []*RecordView, retained int64) error {
	var b strings.Builder
	fmt.Fprintf(&b, "<!DOCTYPE html><html><head><title>%s flight recorder</title></head><body>\n",
		html.EscapeString(title))
	fmt.Fprintf(&b, "<h1>flight recorder</h1><p>%d retained records (%d total retained since start), newest first</p>\n<pre>\n",
		len(views), retained)
	for _, v := range views {
		writeRequestWaterfall(&b, v)
	}
	b.WriteString("</pre></body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// waterfallWidth is the character width of a record's full duration in the
// waterfall bars.
const waterfallWidth = 40

func writeRequestWaterfall(b *strings.Builder, v *RecordView) {
	fmt.Fprintf(b, "%s  %-13s %3d  %-6s %-8s %-7s %10s  id=%s",
		html.EscapeString(v.Time), html.EscapeString(v.Endpoint), v.Status,
		html.EscapeString(v.Tier), html.EscapeString(v.Predictor),
		v.Sampled, time.Duration(v.DurNs), html.EscapeString(v.ID))
	if v.FP != "" {
		fmt.Fprintf(b, " fp=%s", html.EscapeString(v.FP))
	}
	b.WriteByte('\n')
	if len(v.Spans) == 0 {
		return
	}
	// Depth of each span by walking parents; the arena guarantees a parent
	// index precedes its children.
	depth := make([]int, len(v.Spans))
	for i, sp := range v.Spans {
		if sp.Parent >= 0 && sp.Parent < i {
			depth[i] = depth[sp.Parent] + 1
		}
	}
	for i, sp := range v.Spans {
		label := sp.Stage
		if sp.Arg != "" {
			label += "/" + sp.Arg
		}
		fmt.Fprintf(b, "    %-24s %10s  |%s|\n",
			strings.Repeat("  ", depth[i])+html.EscapeString(label),
			time.Duration(sp.DurNs), waterfallBar(sp.StartNs, sp.DurNs, v.DurNs))
	}
	b.WriteByte('\n')
}

// waterfallBar draws a span's position within the request as a fixed-width
// bar: spaces before the span starts, '#' while it runs (at least one), and
// spaces after it ends.
func waterfallBar(startNs, durNs, totalNs int64) string {
	if totalNs <= 0 {
		return strings.Repeat(" ", waterfallWidth)
	}
	lead := int(startNs * waterfallWidth / totalNs)
	span := int(durNs * waterfallWidth / totalNs)
	if span < 1 {
		span = 1
	}
	if lead > waterfallWidth-1 {
		lead = waterfallWidth - 1
	}
	if lead+span > waterfallWidth {
		span = waterfallWidth - lead
	}
	var bar strings.Builder
	bar.Grow(waterfallWidth)
	bar.WriteString(strings.Repeat(" ", lead))
	bar.WriteString(strings.Repeat("#", span))
	bar.WriteString(strings.Repeat(" ", waterfallWidth-lead-span))
	return bar.String()
}
