package obs

// Prometheus text-exposition rendering for the Registry: counters, gauges
// and the striped power-of-two Histogram, with no external dependency. The
// histogram's 65 bit-length buckets map directly onto cumulative `le`
// buckets (bucket i covers values of bit length i, so its upper bound is
// 2^i - 1), which keeps downstream quantile math working against the same
// data /debug/vars and Summary expose. Rendering samples every instrument
// exactly once per scrape and writes deterministic, name-sorted output.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// promName sanitizes a registry name into the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], mapping everything else (the registry's dots) to
// underscores. A leading digit gets an underscore prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders every instrument in Prometheus text exposition
// format (version 0.0.4): counters as `counter`, gauge callbacks as
// `gauge`, histograms as cumulative-`le` `histogram` families whose +Inf
// bucket equals the observation count. No-op on a nil registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]func() int64, len(r.gauges))
	for name, fn := range r.gauges {
		gauges[name] = fn
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, name := range sortedKeys(counters) {
		n := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, counters[name].Value())
	}
	for _, name := range sortedKeys(gauges) {
		n := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", n, n, gauges[name]())
	}
	for _, name := range sortedKeys(hists) {
		writePromHistogram(&b, promName(name), hists[name].Snapshot())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram renders one histogram family: each nonzero bit-length
// bucket becomes a cumulative `le` bucket at its upper bound (2^i - 1;
// bucket 0, which counts v <= 0, at le="0"), followed by +Inf, _sum and
// _count. Empty buckets are elided — the cumulative counts stay valid at
// every emitted boundary, and the +Inf bucket always equals the count.
func writePromHistogram(b *strings.Builder, name string, s HistSnapshot) {
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	var cum int64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		cum += c
		switch {
		case i == 0:
			fmt.Fprintf(b, "%s_bucket{le=\"0\"} %d\n", name, cum)
		case i == 64:
			// Bit length 64's upper bound is MaxInt64; fold it into +Inf.
		default:
			fmt.Fprintf(b, "%s_bucket{le=\"%d\"} %d\n", name, uint64(1)<<i-1, cum)
		}
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	fmt.Fprintf(b, "%s_sum %d\n", name, s.Sum)
	fmt.Fprintf(b, "%s_count %d\n", name, s.Count)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promInf is the parse result of a "+Inf" le label.
var promInf = math.Inf(1)
