package obs

import (
	"fmt"
	"sort"
	"strings"

	"sentinel/internal/ir"
)

// SimStats is the per-run breakdown behind sim.Result's aggregate counters:
// where cycles were lost, how much speculation ran, and how the sentinel
// machinery (tags, signals, store buffer, PC queue) was exercised. It is
// embedded by value in the simulator's machine state and updated with plain
// (non-atomic) increments on the per-dynamic-instruction hot path — no
// allocation, no indirection, always on. Keep the field order
// size-descending; CI checks this struct's packing with fieldalignment.
type SimStats struct {
	// Stall causes, in cycles. InterlockStalls are scoreboard interlocks on
	// source operands (including in-order issue slip); StoreBufferStalls
	// are cycles the processor waited for a free store-buffer entry. Their
	// sum is sim.Result.Stalls.
	InterlockStalls   int64
	StoreBufferStalls int64

	// RedirectCycles are branch-redirect bubbles (BranchTakenPenalty per
	// taken transfer) over BranchRedirects taken transfers. Kept separate
	// from Stalls for compatibility: the aggregate never included them.
	RedirectCycles  int64
	BranchRedirects int64

	// Branch-prediction frontend counters, all zero under the perfect
	// (oracle) frontend. PredictedBranches counts conditional branches run
	// through the predictor; Mispredicts is how many resolved against the
	// prediction, costing MispredictCycles of redirect penalty (also folded
	// into RedirectCycles when the branch was taken). FetchThrottleStalls
	// are slip cycles from the variable fetch-rate frontend's half-width
	// fetch cycle after a redirect. None of these join Stalls(): the
	// aggregate keeps its classic interlock+store-buffer meaning.
	PredictedBranches   int64
	Mispredicts         int64
	MispredictCycles    int64
	FetchThrottleStalls int64

	// Speculation and sentinel activity.
	SpecOps         int64 // dynamic instructions with the speculative modifier
	TagSets         int64 // exceptions recorded by a speculative op (tag set / shadow record / probationary entry)
	TagPropagations int64 // tag (or store-entry) propagations through speculative consumers
	SentinelSignals int64 // architecturally signalled exceptions (all causes)
	CheckFires      int64 // signals raised by an explicit check_exception

	// Structure occupancy high-water marks.
	StoreBufferHighWater int64
	PCQueueHighWater     int64

	// OpMix is the dynamic opcode mix, indexed by ir.Op.
	OpMix [ir.NumOps]int64
}

// Stalls returns the aggregate stall count, the sum the pre-breakdown
// sim.Result.Stalls field reported.
func (s *SimStats) Stalls() int64 { return s.InterlockStalls + s.StoreBufferStalls }

// Instrs returns the dynamic instruction count implied by the opcode mix.
func (s *SimStats) Instrs() int64 {
	var n int64
	for _, c := range s.OpMix {
		n += c
	}
	return n
}

// String renders the deterministic text block behind `sentinelsim -stats`:
// the stall-cause breakdown, speculation and sentinel activity, occupancy
// high-water marks, and the dynamic opcode mix (descending count, ties in
// opcode order).
func (s *SimStats) String() string {
	var b strings.Builder
	instrs := s.Instrs()
	fmt.Fprintf(&b, "stalls:      %d (interlock %d, store-buffer %d)\n",
		s.Stalls(), s.InterlockStalls, s.StoreBufferStalls)
	fmt.Fprintf(&b, "redirects:   %d taken transfers (%d penalty cycles)\n",
		s.BranchRedirects, s.RedirectCycles)
	// The branch-prediction line appears only when a predictor ran, so the
	// classic (perfect-frontend) stats block is byte-identical to before.
	if s.PredictedBranches > 0 {
		fmt.Fprintf(&b, "branch pred: %d predicted, %d mispredicted (%.1f%%), %d penalty cycles, %d fetch-throttle stalls\n",
			s.PredictedBranches, s.Mispredicts, pct(s.Mispredicts, s.PredictedBranches),
			s.MispredictCycles, s.FetchThrottleStalls)
	}
	fmt.Fprintf(&b, "speculative: %d ops (%.1f%% of %d instrs)\n",
		s.SpecOps, pct(s.SpecOps, instrs), instrs)
	fmt.Fprintf(&b, "exceptions:  %d tags set, %d propagations, %d signalled (%d by check_exception)\n",
		s.TagSets, s.TagPropagations, s.SentinelSignals, s.CheckFires)
	fmt.Fprintf(&b, "store buf:   high-water %d entries\n", s.StoreBufferHighWater)
	fmt.Fprintf(&b, "pc queue:    high-water %d entries\n", s.PCQueueHighWater)
	fmt.Fprintf(&b, "op mix:\n")
	type mix struct {
		op ir.Op
		n  int64
	}
	var ops []mix
	for op, n := range s.OpMix {
		if n > 0 {
			ops = append(ops, mix{ir.Op(op), n})
		}
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].n > ops[j].n })
	for _, m := range ops {
		fmt.Fprintf(&b, "  %-12s %10d  (%.1f%%)\n", m.op, m.n, pct(m.n, instrs))
	}
	return b.String()
}

func pct(n, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}
