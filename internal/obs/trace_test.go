package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestTracerEmitsValidJSON: a tracer session with every event kind must
// produce a parseable Chrome trace-event document with the expected phases.
func TestTracerEmitsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Slice(0, `ld "quoted"`, 0, 2, 10, true)
	tr.Slice(1, "add", 1, 1, 11, false)
	tr.FlowStart(10, 0, 0)
	tr.FlowStep(10, 1, 1)
	tr.FlowEnd(10, 2, 3)
	tr.Counter("store-buffer", 2, 5)
	tr.Instant(0, "signal", 3)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		phases[ph]++
	}
	for _, want := range []string{"X", "s", "t", "f", "C", "i", "M"} {
		if phases[want] == 0 {
			t.Errorf("no %q events emitted: %v", want, phases)
		}
	}
	// Slot metadata is emitted once per track: tracks 0, 1, 2 were used.
	if phases["M"] != 6 {
		t.Errorf("metadata events = %d, want 6 (name + sort index per track)", phases["M"])
	}
}

// TestTracerEmptyTrace: opening and closing without events must still be a
// valid document.
func TestTracerEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTracer(&buf).Close(); err != nil {
		t.Fatal(err)
	}
	var doc any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is invalid JSON: %v\n%s", err, buf.String())
	}
}

// errWriter fails after n bytes, to exercise sticky error handling.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, bytes.ErrTooLarge
	}
	w.n -= len(p)
	return len(p), nil
}

func TestTracerWriteErrorSurfacesAtClose(t *testing.T) {
	tr := NewTracer(&errWriter{n: 8})
	for i := 0; i < 10000; i++ {
		tr.Slice(0, "add", int64(i), 1, i, false)
	}
	if err := tr.Close(); err == nil {
		t.Error("write failure must surface from Close")
	}
}
