// Package obs is the observability layer shared by the simulator, the
// scheduler and the evaluation engine: a counters/histogram registry with a
// zero-allocation disabled path, a Chrome trace-event tracer for per-cycle
// pipeline visualization (see trace.go), the per-run simulator statistics
// breakdown (see simstats.go), and pprof/expvar plumbing for the CLIs (see
// pprof.go).
//
// The disabled path is the nil path: every method on *Registry, *Counter and
// *Histogram is nil-safe, so instrumented code holds a possibly-nil handle
// and calls it unconditionally — no branches at call sites, no allocation,
// no atomics when observability is off.
package obs

import (
	"expvar"
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The nil Counter is
// valid and discards all updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d. No-op on nil.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram accumulates int64 observations into power-of-two buckets,
// tracking count, sum, min and max. The nil Histogram is valid and discards
// all observations.
//
// Internally the state is striped: each Observe picks one of histStripes
// stripe replicas (cheap per-thread randomness, no shared state consulted)
// and updates it with plain atomics; Snapshot merges the stripes. There is
// no mutex anywhere on the observe path — under the old single-mutex
// implementation every request on the serving hot path serialized behind
// the request-latency histogram's lock, which is exactly the contention the
// instrument was supposed to measure, not add. The merge-on-read trade: a
// Snapshot taken concurrently with observations may be skewed by updates
// still in flight (count lags sum by at most the in-flight observations);
// a Snapshot ordered after the observations (the only kind tests and
// one-shot summaries take) is exact.
type Histogram struct {
	stripes [histStripes]histStripe
	init    sync.Once
}

// histStripes is the stripe count: a power of two, enough that the default
// 16 in-flight requests rarely collide on one stripe's cache lines.
const histStripes = 8

// histStripe is one replica of the histogram state, updated with atomics
// only. min/max start at the int64 extremes (set by the owning Histogram's
// init) so the CAS loops need no emptiness special case; a stripe's min/max
// are meaningful only once its count is nonzero, and Observe orders the
// count increment last so a reader that sees count > 0 also sees the
// min/max/sum/bucket updates of at least that many observations.
type histStripe struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [65]atomic.Int64 // bucket i counts v with bit length i (v<=0 in 0)
}

func (h *Histogram) initStripes() {
	for i := range h.stripes {
		h.stripes[i].min.Store(math.MaxInt64)
		h.stripes[i].max.Store(math.MinInt64)
	}
}

// Observe records one value. No-op on nil.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.init.Do(h.initStripes)
	s := &h.stripes[rand.Uint64()&(histStripes-1)]
	for {
		cur := s.min.Load()
		if v >= cur || s.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := s.max.Load()
		if v <= cur || s.max.CompareAndSwap(cur, v) {
			break
		}
	}
	s.sum.Add(v)
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
	}
	s.buckets[b].Add(1)
	s.count.Add(1) // last: count>0 publishes the stripe (see histStripe)
}

// HistSnapshot is a point-in-time summary of a Histogram, including the
// merged per-bit-length bucket counts (bucket i counts observations whose
// bit length is i; bucket 0 counts v <= 0).
type HistSnapshot struct {
	Count, Sum, Min, Max int64
	Buckets              [65]int64
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// bucketBounds returns the inclusive value range bucket i covers, clamped
// to the snapshot's observed extremes so interpolation never leaves the
// data: bucket 0 is (-inf, 0], bucket i>=1 is [2^(i-1), 2^i - 1].
func (s HistSnapshot) bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		lo, hi = s.Min, 0
	} else {
		lo = int64(1) << (i - 1)
		if i == 64 {
			hi = math.MaxInt64
		} else {
			hi = int64(1)<<i - 1
		}
	}
	if lo < s.Min {
		lo = s.Min
	}
	if hi > s.Max {
		hi = s.Max
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observations by
// locating the bucket holding the q-th ranked value and interpolating
// linearly inside its value range — the precision is the bucket width
// (one power of two), which is what the 65 bit-length buckets can give
// without storing samples. Returns 0 when empty; q <= 0 returns Min and
// q >= 1 returns Max exactly.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := int64(math.Ceil(q * float64(s.Count))) // 1-based rank of the quantile
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := s.bucketBounds(i)
			// Place the rank at the midpoint of its slot within the bucket.
			frac := (float64(rank-cum) - 0.5) / float64(c)
			return lo + int64(frac*float64(hi-lo)+0.5)
		}
		cum += c
	}
	return s.Max
}

// Snapshot returns the histogram's current summary, merged across stripes;
// the zero snapshot on nil.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	var out HistSnapshot
	first := true
	for i := range h.stripes {
		s := &h.stripes[i]
		c := s.count.Load()
		if c == 0 {
			continue
		}
		out.Count += c
		out.Sum += s.sum.Load()
		for b := range s.buckets {
			out.Buckets[b] += s.buckets[b].Load()
		}
		mn, mx := s.min.Load(), s.max.Load()
		if first || mn < out.Min {
			out.Min = mn
		}
		if first || mx > out.Max {
			out.Max = mx
		}
		first = false
	}
	return out
}

// Registry is a named collection of counters, gauges and histograms. The nil
// Registry is valid: lookups return nil instruments, which in turn discard
// all updates — the fully disabled, zero-allocation path.
type Registry struct {
	counters map[string]*Counter
	hists    map[string]*Histogram
	gauges   map[string]func() int64
	mu       sync.Mutex
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		hists:    map[string]*Histogram{},
		gauges:   map[string]func() int64{},
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a valid, discarding counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil (a valid, discarding histogram) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Gauge registers a callback sampled at snapshot time (cache sizes, queue
// depths — values owned elsewhere). No-op on a nil registry.
func (r *Registry) Gauge(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = fn
	r.mu.Unlock()
}

// snapshot samples every instrument under one name → value map.
func (r *Registry) snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	gauges := make(map[string]func() int64, len(r.gauges))
	for name, fn := range r.gauges {
		gauges[name] = fn
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()
	// Gauge callbacks and histogram locks are taken outside r.mu: a gauge
	// may itself consult a structure that records into this registry.
	for name, fn := range gauges {
		out[name] = fn()
	}
	for name, h := range hists {
		s := h.Snapshot()
		out[name+".count"] = s.Count
		out[name+".sum"] = s.Sum
		out[name+".min"] = s.Min
		out[name+".max"] = s.Max
		out[name+".p50"] = s.Quantile(0.50)
		out[name+".p90"] = s.Quantile(0.90)
		out[name+".p99"] = s.Quantile(0.99)
	}
	return out
}

// Publish exposes the registry under the given expvar name (visible on
// -httpprof's /debug/vars). Publishing the same name twice is an error
// rather than the expvar panic.
func (r *Registry) Publish(name string) error {
	if r == nil {
		return nil
	}
	if expvar.Get(name) != nil {
		return fmt.Errorf("obs: expvar %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any { return r.snapshot() }))
	return nil
}

// Summary renders a one-shot text summary, one "name value" line per
// instrument, sorted by name for stable output. Empty on nil.
func (r *Registry) Summary() string {
	snap := r.snapshot()
	if len(snap) == 0 {
		return ""
	}
	names := make([]string, 0, len(snap))
	width := 0
	for name := range snap {
		names = append(names, name)
		if len(name) > width {
			width = len(name)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%-*s %d\n", width+2, name, snap[name])
	}
	return b.String()
}
