package sim

import (
	"testing"

	"sentinel/internal/core"
	"sentinel/internal/machine"
	"sentinel/internal/mem"
	"sentinel/internal/prog"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

// benchScheduled compiles one workload kernel end to end (build, profile,
// form, schedule) for the given machine, returning the scheduled program and
// the pristine input memory. Everything here is out of the measured loop.
func benchScheduled(b *testing.B, name string, md machine.Desc) (*prog.Program, *mem.Memory) {
	b.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		b.Fatalf("unknown workload %q", name)
	}
	p, m := w.Build()
	p.Layout()
	ref, err := prog.Run(p, m.Clone(), prog.Options{Collect: true})
	if err != nil {
		b.Fatal(err)
	}
	f := superblock.Form(p, ref.Profile, superblock.Options{})
	f.Layout()
	sched, _, err := core.Schedule(f, md)
	if err != nil {
		b.Fatal(err)
	}
	return sched, m
}

// BenchmarkSimRun measures the simulator inner loop on the kernels with the
// largest superblocks plus wc (the longest dynamic run) under sentinel +
// speculative stores at issue 8. Memory cloning is inside the loop (every
// real measurement pays it) but is O(segments), not O(cycles). These are the
// perf-trajectory benchmarks recorded in BENCH_sim.json; CI fails on a >20%
// ns/op regression against the committed baseline.
func BenchmarkSimRun(b *testing.B) {
	for _, name := range []string{"nasa7", "tomcatv", "doduc", "wc"} {
		b.Run(name, func(b *testing.B) {
			md := machine.Base(8, machine.SentinelStores)
			sched, m := benchScheduled(b, name, md)
			idx := NewProgIndex(sched)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(sched, md, m.Clone(), Options{Index: idx}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimRunNoIndex is BenchmarkSimRun/wc without a prebuilt ProgIndex:
// the per-run cost of building the dense PC/target index inside Run, which
// callers without a schedule cache (tests, one-shot tools) pay.
func BenchmarkSimRunNoIndex(b *testing.B) {
	md := machine.Base(8, machine.SentinelStores)
	sched, m := benchScheduled(b, "wc", md)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(sched, md, m.Clone(), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
