package sim

import (
	"testing"

	"sentinel/internal/core"
	"sentinel/internal/machine"
	"sentinel/internal/mem"
	"sentinel/internal/prog"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

// benchScheduled compiles one workload kernel end to end (build, profile,
// form, schedule) for the given machine, returning the scheduled program and
// the pristine input memory. Everything here is out of the measured loop.
func benchScheduled(b *testing.B, name string, md machine.Desc) (*prog.Program, *mem.Memory) {
	b.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		b.Fatalf("unknown workload %q", name)
	}
	p, m := w.Build()
	p.Layout()
	ref, err := prog.Run(p, m.Clone(), prog.Options{Collect: true})
	if err != nil {
		b.Fatal(err)
	}
	f := superblock.Form(p, ref.Profile, superblock.Options{})
	f.Layout()
	sched, _, err := core.Schedule(f, md)
	if err != nil {
		b.Fatal(err)
	}
	return sched, m
}

// BenchmarkSimRun measures the simulator inner loop on the kernels with the
// largest superblocks plus wc (the longest dynamic run) under sentinel +
// speculative stores at issue 8. Memory cloning is inside the loop (every
// real measurement pays it) but is O(segments), not O(cycles). These are the
// perf-trajectory benchmarks recorded in BENCH_sim.json; CI fails on a >20%
// ns/op regression against the committed baseline.
func BenchmarkSimRun(b *testing.B) {
	for _, name := range []string{"nasa7", "tomcatv", "doduc", "wc"} {
		b.Run(name, func(b *testing.B) {
			md := machine.Base(8, machine.SentinelStores)
			sched, m := benchScheduled(b, name, md)
			idx := NewProgIndex(sched)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(sched, md, m.Clone(), Options{Index: idx}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimRunTAGE is BenchmarkSimRun with the TAGE frontend: the same
// kernels, machine and prebuilt index, plus a prebuilt predictor passed via
// Options.Pred so the measured loop stays allocation-free. The delta against
// BenchmarkSimRun is the pure frontend cost (lookup, update, redirect and
// throttle accounting). Recorded in BENCH_sim.json alongside the classic
// rows and gated by the same CI regression check.
func BenchmarkSimRunTAGE(b *testing.B) {
	for _, name := range []string{"nasa7", "tomcatv", "doduc", "wc"} {
		b.Run(name, func(b *testing.B) {
			md := machine.Base(8, machine.SentinelStores).WithPredictor(machine.PredTAGE)
			sched, m := benchScheduled(b, name, md.CompileView())
			idx := NewProgIndex(sched)
			pred := NewPredictor(md, idx)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(sched, md, m.Clone(), Options{Index: idx, Pred: pred}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestRunTAGEAllocFree pins the frontend's steady-state allocation behavior:
// with a prebuilt index and predictor, a TAGE-frontend Run allocates no more
// than the perfect-frontend Run on the same schedule. All predictor state
// lives in the arena built by NewPredictor and is Reset per run, so the
// frontend adds zero allocations to the inner loop.
func TestRunTAGEAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement in -short mode")
	}
	md := machine.Base(8, machine.SentinelStores).WithPredictor(machine.PredTAGE)
	sched, m := schedFor(t, "wc", md)
	idx := NewProgIndex(sched)
	pred := NewPredictor(md, idx)
	perfect := md.CompileView()

	measure := func(md machine.Desc, opts Options) float64 {
		// One warmup run outside the measurement settles lazy runtime state.
		if _, err := Run(sched, md, m.Clone(), opts); err != nil {
			t.Fatal(err)
		}
		// The clone is inside the measured function on both sides of the
		// comparison, so its (identical, O(segments)) allocations cancel.
		return testing.AllocsPerRun(5, func() {
			if _, err := Run(sched, md, m.Clone(), opts); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := measure(perfect, Options{Index: idx})
	tage := measure(md, Options{Index: idx, Pred: pred})
	if tage > base {
		t.Errorf("TAGE frontend Run allocates %.1f/op > perfect %.1f/op; the frontend must be allocation-free", tage, base)
	}
	t.Logf("allocs/op: perfect %.1f, tage %.1f", base, tage)
}

// BenchmarkSimRunNoIndex is BenchmarkSimRun/wc without a prebuilt ProgIndex:
// the per-run cost of building the dense PC/target index inside Run, which
// callers without a schedule cache (tests, one-shot tools) pay.
func BenchmarkSimRunNoIndex(b *testing.B) {
	md := machine.Base(8, machine.SentinelStores)
	sched, m := benchScheduled(b, "wc", md)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(sched, md, m.Clone(), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
