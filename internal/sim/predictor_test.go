package sim

import (
	"testing"

	"sentinel/internal/core"
	"sentinel/internal/machine"
	"sentinel/internal/mem"
	"sentinel/internal/prog"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

// schedFor compiles one workload end to end for md (build, profile, form,
// schedule), returning the scheduled program and pristine memory.
func schedFor(t *testing.T, name string, md machine.Desc) (*prog.Program, *mem.Memory) {
	t.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	p, m := w.Build()
	p.Layout()
	ref, err := prog.Run(p, m.Clone(), prog.Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	f := superblock.Form(p, ref.Profile, superblock.Options{})
	f.Layout()
	sched, _, err := core.Schedule(f, md.CompileView())
	if err != nil {
		t.Fatal(err)
	}
	return sched, m
}

// branchEvent is one resolved conditional branch of a run.
type branchEvent struct {
	bid   int32
	taken bool
}

// recorder is a Predictor that predicts statically and records the resolved
// branch stream, used to capture each workload's architectural branch trace.
type recorder struct {
	ix    *ProgIndex
	trace []branchEvent
}

func (r *recorder) Predict(bid int32) bool { return r.ix.StaticPrediction(bid) }
func (r *recorder) Update(bid int32, taken bool) {
	r.trace = append(r.trace, branchEvent{bid, taken})
}
func (r *recorder) Reset() { r.trace = r.trace[:0] }

// recordTrace runs name's scheduled program once with a recording frontend
// and returns the dynamic (branch, direction) stream plus the index.
func recordTrace(t *testing.T, name string) ([]branchEvent, *ProgIndex) {
	t.Helper()
	md := machine.Base(8, machine.Sentinel).WithPredictor(machine.PredStatic)
	sched, m := schedFor(t, name, md)
	idx := NewProgIndex(sched)
	rec := &recorder{ix: idx}
	if _, err := Run(sched, md, m, Options{Index: idx, Pred: rec}); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return rec.trace, idx
}

// replay feeds a recorded branch trace through p, returning the mispredict
// count.
func replay(p Predictor, trace []branchEvent) int {
	miss := 0
	for _, ev := range trace {
		if p.Predict(ev.bid) != ev.taken {
			miss++
		}
		p.Update(ev.bid, ev.taken)
	}
	return miss
}

// TestPerfectNeverMispredicts: the perfect frontend is the oracle — no
// predictor runs at all, so every prediction counter stays zero on every
// workload, and NewPredictor returns nil (nothing to consult).
func TestPerfectNeverMispredicts(t *testing.T) {
	for _, w := range workload.All() {
		md := machine.Base(8, machine.Sentinel) // PredPerfect by default
		sched, m := schedFor(t, w.Name, md)
		res, err := Run(sched, md, m, Options{})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		s := res.Stats
		if s.PredictedBranches != 0 || s.Mispredicts != 0 || s.MispredictCycles != 0 || s.FetchThrottleStalls != 0 {
			t.Errorf("%s: perfect frontend touched prediction counters: %+v", w.Name, s)
		}
		if p := NewPredictor(md, NewProgIndex(sched)); p != nil {
			t.Errorf("%s: NewPredictor(perfect) = %T, want nil", w.Name, p)
		}
	}
}

// TestFixedDirectionConverges: any predictor fed a branch that always goes
// one way converges to predicting that way and never leaves it — even when
// the direction contradicts the static prior.
func TestFixedDirectionConverges(t *testing.T) {
	// Two branches: id 0 statically predicted not-taken, id 1 taken.
	ix := &ProgIndex{staticTaken: []bool{false, true}}
	for _, tc := range []struct {
		name  string
		pred  machine.Predictor
		bid   int32
		taken bool
	}{
		{"tage-against-prior-taken", machine.PredTAGE, 0, true},
		{"tage-against-prior-nottaken", machine.PredTAGE, 1, false},
		{"tage-with-prior", machine.PredTAGE, 1, true},
		{"static-with-prior", machine.PredStatic, 1, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := NewPredictor(machine.Desc{Predictor: tc.pred}, ix)
			// Feed the fixed direction; after a short learning transient the
			// predictor must lock on and never mispredict again.
			const warmup, steady = 8, 100
			for i := 0; i < warmup; i++ {
				p.Predict(tc.bid)
				p.Update(tc.bid, tc.taken)
			}
			for i := 0; i < steady; i++ {
				if got := p.Predict(tc.bid); got != tc.taken {
					t.Fatalf("iteration %d: predicted %v after %d fixed-%v outcomes",
						i, got, warmup+i, tc.taken)
				}
				p.Update(tc.bid, tc.taken)
			}
		})
	}
}

// TestTAGEBeatsStaticOnWorkloads replays every workload's recorded branch
// trace through both dynamic frontends: TAGE must mispredict no more than
// the static predictor on each of them (the bimodal base starts at the
// static prior, and tagged entries only override once they prove out).
func TestTAGEBeatsStaticOnWorkloads(t *testing.T) {
	for _, w := range workload.All() {
		trace, ix := recordTrace(t, w.Name)
		if len(trace) == 0 {
			t.Fatalf("%s: no conditional branches recorded", w.Name)
		}
		static := replay(NewPredictor(machine.Desc{Predictor: machine.PredStatic}, ix), trace)
		tage := replay(NewPredictor(machine.Desc{Predictor: machine.PredTAGE}, ix), trace)
		t.Logf("%-11s %7d branches  static %6d  tage %6d", w.Name, len(trace), static, tage)
		if tage > static {
			t.Errorf("%s: TAGE mispredicted %d > static %d over %d branches",
				w.Name, tage, static, len(trace))
		}
	}
}

// TestPredictorDeterminism: replaying the same trace through a fresh
// predictor, and through the same predictor after Reset, yields identical
// mispredict counts — predictor state is a pure function of the update
// stream.
func TestPredictorDeterminism(t *testing.T) {
	trace, ix := recordTrace(t, "cmp")
	for _, pk := range []machine.Predictor{machine.PredStatic, machine.PredTAGE} {
		p := NewPredictor(machine.Desc{Predictor: pk}, ix)
		first := replay(p, trace)
		p.Reset()
		again := replay(p, trace)
		fresh := replay(NewPredictor(machine.Desc{Predictor: pk}, ix), trace)
		if first != again || first != fresh {
			t.Errorf("%v: mispredicts first=%d afterReset=%d fresh=%d, want identical",
				pk, first, again, fresh)
		}
	}
}
