package sim

import (
	"testing"

	"sentinel/internal/ir"
	"sentinel/internal/machine"
	"sentinel/internal/mem"
	"sentinel/internal/prog"
)

func TestShadowFileReadThrough(t *testing.T) {
	sf := newShadowFile(3)
	sf.write(2, ir.R(5), 42, ir.ExcNone, 0)
	// Visible at levels >= 2, invisible below.
	if v, ok := sf.read(3, ir.R(5)); !ok || v.raw != 42 {
		t.Errorf("read(3) = %+v, %v", v, ok)
	}
	if v, ok := sf.read(2, ir.R(5)); !ok || v.raw != 42 {
		t.Errorf("read(2) = %+v, %v", v, ok)
	}
	if _, ok := sf.read(1, ir.R(5)); ok {
		t.Error("level-1 read must miss a level-2 value")
	}
	// Higher applicable levels are later in program order and win; lower
	// levels serve readers boosted above fewer branches.
	sf.write(1, ir.R(5), 7, ir.ExcNone, 0)
	if v, _ := sf.read(3, ir.R(5)); v.raw != 42 {
		t.Errorf("highest applicable level must win, got %d", v.raw)
	}
	if v, _ := sf.read(1, ir.R(5)); v.raw != 7 {
		t.Errorf("level-1 reader must see the level-1 value, got %d", v.raw)
	}
}

func TestShadowCommitShiftsLevels(t *testing.T) {
	sf := newShadowFile(2)
	sf.write(1, ir.R(1), 10, ir.ExcNone, 0)
	sf.write(2, ir.R(2), 20, ir.ExcNone, 0)
	committed := map[int]int64{}
	sf.commit(func(idx int, v shadowVal) bool {
		committed[idx] = v.raw
		return true
	})
	if committed[ir.R(1).Index()] != 10 || len(committed) != 1 {
		t.Errorf("first commit = %v, want only r1=10", committed)
	}
	// r2 moved from level 2 to level 1.
	if v, ok := sf.read(1, ir.R(2)); !ok || v.raw != 20 {
		t.Errorf("after shift, read(1, r2) = %+v, %v", v, ok)
	}
	committed = map[int]int64{}
	sf.commit(func(idx int, v shadowVal) bool {
		committed[idx] = v.raw
		return true
	})
	if committed[ir.R(2).Index()] != 20 {
		t.Errorf("second commit = %v, want r2=20", committed)
	}
}

func TestShadowDiscard(t *testing.T) {
	sf := newShadowFile(2)
	sf.write(1, ir.R(1), 1, ir.ExcNone, 0)
	sf.write(2, ir.R(2), 2, ir.ExcNone, 0)
	sf.discard()
	if _, ok := sf.read(2, ir.R(1)); ok {
		t.Error("discard must clear all levels")
	}
}

// mkBoost builds a hand-scheduled boosted program:
//
//	entry: r2 = base (maybe invalid)
//	main:  ld r1, 0(r2) <boost 1>   (hoisted above the branch)
//	       add r3, r1, 1 <boost 1>
//	       bne r4, 0, skip          (taken when r4 != 0)
//	       jsr putint, r3
//	       halt
//	skip:  jsr putint, r0; halt
func mkBoost(base int64, r4 int64) *prog.Program {
	mk := func(in *ir.Instr, cyc, slot, boost int) *ir.Instr {
		in.Cycle, in.Slot = cyc, slot
		if boost > 0 {
			in.Spec = true
			in.BoostLevel = boost
		}
		return in
	}
	p := prog.NewProgram()
	p.AddBlock("entry",
		mk(ir.LI(ir.R(2), base), 0, 0, 0),
		mk(ir.LI(ir.R(4), r4), 0, 1, 0),
	)
	p.AddBlock("main",
		mk(ir.LOAD(ir.Ld, ir.R(1), ir.R(2), 0), 0, 0, 1),
		mk(ir.ALUI(ir.Add, ir.R(3), ir.R(1), 1), 2, 0, 1),
		mk(ir.BRI(ir.Bne, ir.R(4), 0, "skip"), 3, 0, 0),
		mk(ir.JSR("putint", ir.R(3)), 3, 1, 0),
		mk(ir.HALT(), 4, 0, 0),
	)
	p.AddBlock("skip", ir.JSR("putint", ir.R(0)), ir.HALT())
	p.Layout()
	return p
}

func TestBoostCommitDeliversValue(t *testing.T) {
	p := mkBoost(0x1000, 0) // branch not taken: boosted chain commits
	m := mem.New()
	m.Map("d", 0x1000, 8)
	m.Write(0x1000, 8, 41)
	res, err := Run(p, machine.Base(8, machine.Boosting), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Out) != 1 || res.Out[0] != 42 {
		t.Errorf("out = %v, want [42]", res.Out)
	}
}

func TestBoostDiscardOnTaken(t *testing.T) {
	// Branch taken: the boosted load's (faulting!) result is discarded; the
	// architectural r3 stays 0 and no exception signals.
	p := mkBoost(0x9000, 1) // unmapped base AND taken branch
	res, err := Run(p, machine.Base(8, machine.Boosting), mem.New(), Options{})
	if err != nil {
		t.Fatalf("boosted fault on mispredicted path must be ignored: %v", err)
	}
	if len(res.Out) != 1 || res.Out[0] != 0 {
		t.Errorf("out = %v, want [0] (skip path)", res.Out)
	}
}

func TestBoostExceptionSignalsAtCommit(t *testing.T) {
	// Branch not taken: the boosted load's fault must signal at the branch
	// (the commit point), reporting the LOAD's pc.
	p := mkBoost(0x9000, 0)
	_, err := Run(p, machine.Base(8, machine.Boosting), mem.New(), Options{})
	exc, ok := Unhandled(err)
	if !ok {
		t.Fatalf("err = %v, want exception", err)
	}
	if exc.ReportedPC != 2 {
		t.Errorf("reported pc = %d, want 2 (the boosted load)", exc.ReportedPC)
	}
	// Signalled by the committing branch.
	in, _, _ := p.InstrAt(exc.ByPC)
	if in == nil || !ir.IsBranch(in.Op) {
		t.Errorf("signalled by %v, want the committing branch", in)
	}
}

func TestBoostedStoreCommitAndCancel(t *testing.T) {
	mk := func(in *ir.Instr, cyc, slot, boost int) *ir.Instr {
		in.Cycle, in.Slot = cyc, slot
		if boost > 0 {
			in.Spec = true
			in.BoostLevel = boost
		}
		return in
	}
	build := func(taken int64) (*prog.Program, *mem.Memory) {
		p := prog.NewProgram()
		p.AddBlock("entry",
			mk(ir.LI(ir.R(2), 0x1000), 0, 0, 0),
			mk(ir.LI(ir.R(5), 77), 0, 1, 0),
			mk(ir.LI(ir.R(4), taken), 0, 2, 0),
		)
		p.AddBlock("main",
			mk(ir.STORE(ir.St, ir.R(2), 0, ir.R(5)), 0, 0, 1), // boosted store
			mk(ir.BRI(ir.Bne, ir.R(4), 0, "skip"), 1, 0, 0),
			mk(ir.HALT(), 2, 0, 0),
		)
		p.AddBlock("skip", ir.HALT())
		p.Layout()
		m := mem.New()
		m.Map("d", 0x1000, 8)
		return p, m
	}
	// Not taken: the shadow entry commits at the branch and drains.
	p, m := build(0)
	if _, err := Run(p, machine.Base(8, machine.Boosting), m, Options{}); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Read(0x1000, 8); v != 77 {
		t.Errorf("committed store missing: %d", v)
	}
	// Taken: the shadow entry is cancelled.
	p2, m2 := build(1)
	if _, err := Run(p2, machine.Base(8, machine.Boosting), m2, Options{}); err != nil {
		t.Fatal(err)
	}
	if v, _ := m2.Read(0x1000, 8); v != 0 {
		t.Errorf("cancelled boosted store leaked: %d", v)
	}
}

func TestBoostedConsumerReadsShadow(t *testing.T) {
	// A boosted consumer at the same level must see the boosted producer's
	// shadow value, not the stale architectural one.
	mk := func(in *ir.Instr, cyc, slot, boost int) *ir.Instr {
		in.Cycle, in.Slot = cyc, slot
		if boost > 0 {
			in.Spec = true
			in.BoostLevel = boost
		}
		return in
	}
	p := prog.NewProgram()
	p.AddBlock("entry",
		mk(ir.LI(ir.R(1), 5), 0, 0, 0),
		mk(ir.LI(ir.R(4), 0), 0, 1, 0),
	)
	p.AddBlock("main",
		mk(ir.ALUI(ir.Add, ir.R(1), ir.R(1), 10), 0, 0, 1), // boosted: r1 = 15 (shadow)
		mk(ir.ALUI(ir.Mul, ir.R(3), ir.R(1), 2), 1, 0, 1),  // boosted: must read 15
		mk(ir.BRI(ir.Bne, ir.R(4), 0, "skip"), 2, 0, 0),
		mk(ir.JSR("putint", ir.R(3)), 2, 1, 0),
		mk(ir.JSR("putint", ir.R(1)), 2, 2, 0),
		mk(ir.HALT(), 3, 0, 0),
	)
	p.AddBlock("skip", ir.HALT())
	p.Layout()
	res, err := Run(p, machine.Base(8, machine.Boosting), mem.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Out) != 2 || res.Out[0] != 30 || res.Out[1] != 15 {
		t.Errorf("out = %v, want [30 15]", res.Out)
	}
}
