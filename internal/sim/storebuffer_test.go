package sim

import (
	"testing"
	"testing/quick"

	"sentinel/internal/mem"
)

func bufMem() *mem.Memory {
	m := mem.New()
	m.Map("d", 0, 4096)
	return m
}

func TestBufferFIFODrain(t *testing.T) {
	m := bufMem()
	sb := newStoreBuffer(4)
	for i := 0; i < 3; i++ {
		if _, err := sb.insert(int64(i), Entry{Addr: int64(i * 8), Size: 8, Data: uint64(i + 1), Confirmed: true}, m); err != nil {
			t.Fatal(err)
		}
	}
	// Releases happen one per cycle after insertion: by the time the third
	// store inserts at t=2, the first two entries (insertable at t=1 and
	// t=2) have already been released.
	if sb.Len() != 1 {
		t.Errorf("after inserts: %d entries, want 1", sb.Len())
	}
	sb.drainTo(100, m)
	if sb.Len() != 0 {
		t.Errorf("after full drain: %d entries", sb.Len())
	}
	for i := 0; i < 3; i++ {
		if v, _ := m.Read(int64(i*8), 8); v != uint64(i+1) {
			t.Errorf("mem[%d] = %d", i*8, v)
		}
	}
}

func TestProbationaryHeadBlocksDrain(t *testing.T) {
	m := bufMem()
	sb := newStoreBuffer(4)
	sb.insert(0, Entry{Addr: 0, Size: 8, Data: 1}, m) // probationary
	sb.insert(0, Entry{Addr: 8, Size: 8, Data: 2, Confirmed: true}, m)
	sb.drainTo(100, m)
	if sb.Len() != 2 {
		t.Errorf("probationary head must block releases; %d entries", sb.Len())
	}
	if v, _ := m.Read(0, 8); v != 0 {
		t.Error("probationary data must not reach memory")
	}
}

func TestInsertStallsWhenFull(t *testing.T) {
	m := bufMem()
	sb := newStoreBuffer(2)
	sb.insert(0, Entry{Addr: 0, Size: 8, Data: 1, Confirmed: true}, m)
	sb.insert(0, Entry{Addr: 8, Size: 8, Data: 2, Confirmed: true}, m)
	// Buffer full at t=0; the head can drain at t=1, freeing a slot.
	at, err := sb.insert(0, Entry{Addr: 16, Size: 8, Data: 3, Confirmed: true}, m)
	if err != nil {
		t.Fatal(err)
	}
	if at != 1 {
		t.Errorf("stalled insert at t=%d, want 1", at)
	}
}

func TestInsertDeadlockDetected(t *testing.T) {
	m := bufMem()
	sb := newStoreBuffer(2)
	sb.insert(0, Entry{Addr: 0, Size: 8, Data: 1}, m) // probationary head
	sb.insert(0, Entry{Addr: 8, Size: 8, Data: 2, Confirmed: true}, m)
	if _, err := sb.insert(0, Entry{Addr: 16, Size: 8, Data: 3, Confirmed: true}, m); err == nil {
		t.Fatal("full buffer with probationary head must be detected as deadlock")
	}
}

func TestConfirmIndexFromTail(t *testing.T) {
	m := bufMem()
	sb := newStoreBuffer(8)
	sb.insert(0, Entry{Addr: 0, Size: 8, Data: 1}, m)                  // spec S1
	sb.insert(0, Entry{Addr: 8, Size: 8, Data: 2, Confirmed: true}, m) // regular
	sb.insert(0, Entry{Addr: 16, Size: 8, Data: 3}, m)                 // spec S2
	// S1 is 2 entries from the tail; S2 is 0.
	if exc, _, _, err := sb.confirm(2); err != nil || exc {
		t.Fatalf("confirm(2): exc=%v err=%v", exc, err)
	}
	if !sb.Entries()[0].Confirmed {
		t.Error("S1 must be confirmed")
	}
	if exc, _, _, err := sb.confirm(0); err != nil || exc {
		t.Fatalf("confirm(0): exc=%v err=%v", exc, err)
	}
	if !sb.Entries()[2].Confirmed {
		t.Error("S2 must be confirmed")
	}
	// Double confirm is a machine error.
	if _, _, _, err := sb.confirm(0); err == nil {
		t.Error("double confirm must error")
	}
	// Out of range.
	if _, _, _, err := sb.confirm(9); err == nil {
		t.Error("out-of-range confirm must error")
	}
}

func TestCancelProbationaryKeepsConfirmed(t *testing.T) {
	m := bufMem()
	sb := newStoreBuffer(8)
	sb.insert(0, Entry{Addr: 0, Size: 8, Data: 1, Confirmed: true}, m)
	sb.insert(0, Entry{Addr: 8, Size: 8, Data: 2}, m)
	sb.insert(0, Entry{Addr: 16, Size: 8, Data: 3, Confirmed: true}, m)
	sb.insert(0, Entry{Addr: 24, Size: 8, Data: 4}, m)
	sb.cancelProbationary()
	if sb.Len() != 2 {
		t.Fatalf("%d entries after cancel, want 2", sb.Len())
	}
	for _, e := range sb.Entries() {
		if !e.Confirmed {
			t.Error("unconfirmed entry survived cancellation")
		}
	}
}

func TestLoadOverlayPartial(t *testing.T) {
	m := bufMem()
	m.Write(0x10, 8, 0x1111111111111111)
	sb := newStoreBuffer(8)
	// Byte store into the middle of the word.
	sb.insert(0, Entry{Addr: 0x13, Size: 1, Data: 0xAB, Confirmed: true}, m)
	v, f := sb.loadOverlay(0x10, 8, m)
	if f != nil {
		t.Fatal(f)
	}
	want := uint64(0x11111111AB111111)
	if v != want {
		t.Errorf("overlay = %#x, want %#x", v, want)
	}
}

func TestLoadOverlaySkipsExceptedProbationary(t *testing.T) {
	m := bufMem()
	m.Write(0x20, 8, 7)
	sb := newStoreBuffer(8)
	sb.insert(0, Entry{Addr: 0x20, Size: 8, Data: 99, ExcSet: true}, m)
	v, _ := sb.loadOverlay(0x20, 8, m)
	if v != 7 {
		t.Errorf("load = %d: excepting probationary entry must not forward", v)
	}
}

func TestPCQueue(t *testing.T) {
	q := NewPCQueue(4)
	for pc := 0; pc < 6; pc++ {
		q.Push(pc)
	}
	if q.Len() != 4 {
		t.Errorf("Len = %d", q.Len())
	}
	for pc := 2; pc < 6; pc++ {
		if !q.Contains(pc) {
			t.Errorf("pc %d must be recorded", pc)
		}
	}
	for _, pc := range []int{0, 1, 99} {
		if q.Contains(pc) {
			t.Errorf("pc %d must have aged out", pc)
		}
	}
}

func TestPCQueueSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-size queue must panic")
		}
	}()
	NewPCQueue(0)
}

// Property: after any sequence of confirmed inserts and drains, memory
// reflects exactly the youngest store per address.
func TestBufferCoherenceQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		m := bufMem()
		sb := newStoreBuffer(8)
		shadow := map[int64]uint64{}
		var tick int64
		for _, op := range ops {
			addr := int64(op%32) * 8
			val := uint64(op)
			tick += 2 // leave room for drains
			if _, err := sb.insert(tick, Entry{Addr: addr, Size: 8, Data: val, Confirmed: true}, m); err != nil {
				return false
			}
			shadow[addr] = val
		}
		sb.drainAll(tick, m)
		for a, v := range shadow {
			got, fa := m.Read(a, 8)
			if fa != nil || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
