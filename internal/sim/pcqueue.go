package sim

// PCQueue is the PC History Queue of §3.2: a ring buffer recording the
// program counters of the last m issued instructions, so that an exception
// detected at the completion of a non-uniform-latency function unit can
// still be attributed to the correct instruction. The simulator detects
// exceptions with full knowledge of the issuing instruction, but models the
// queue faithfully and asserts that every reported PC is still recorded —
// i.e. that the architectural mechanism the paper relies on would have had
// the information.
type PCQueue struct {
	pcs  []int
	next int
	full bool
}

// NewPCQueue returns a queue recording the last m PCs. m must cover the
// longest instruction latency (10 cycles in Table 3).
func NewPCQueue(m int) *PCQueue {
	if m < 1 {
		panic("sim: PC queue size must be positive")
	}
	return &PCQueue{pcs: make([]int, m)}
}

// Push records the PC of an issued instruction.
func (q *PCQueue) Push(pc int) {
	q.pcs[q.next] = pc
	q.next++
	if q.next == len(q.pcs) {
		q.next = 0
		q.full = true
	}
}

// Contains reports whether pc is still recorded.
func (q *PCQueue) Contains(pc int) bool {
	n := q.next
	if q.full {
		n = len(q.pcs)
	}
	for i := 0; i < n; i++ {
		if q.pcs[i] == pc {
			return true
		}
	}
	return false
}

// Len returns the number of recorded PCs.
func (q *PCQueue) Len() int {
	if q.full {
		return len(q.pcs)
	}
	return q.next
}
