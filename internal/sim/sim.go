// Package sim is the execution-driven simulator for scheduled MIR programs.
// It models the paper's machine: an in-order VLIW/superscalar with CRAY-1
// style scoreboard interlocks and deterministic latencies (Table 3), an
// exception-tagged register file implementing the sentinel semantics of
// Table 1, a PC history queue, and a store buffer with probationary entries
// implementing Table 2 for speculative stores.
//
// Instructions execute in schedule order with immediate architectural
// effect; the scoreboard provides timing (stalls), and a taken branch
// nullifies all younger instructions, so a correctly scheduled program
// produces exactly the results of the sequential reference interpreter.
package sim

import (
	"fmt"
	"math"

	"sentinel/internal/ir"
	"sentinel/internal/machine"
	"sentinel/internal/mem"
	"sentinel/internal/obs"
	"sentinel/internal/prog"
)

// GarbageValue is the deterministic "garbage" written by a silent (general
// percolation) speculative instruction that caused an exception (§2.4).
const GarbageValue = int64(-0x0BAD0BAD0BAD0BAD)

// Tag is one register's exception tag. The minimum tag is a single bit; we
// carry the exception kind as well, which the paper notes is "useful to
// indicate the type of exception to assist in debugging" (§3.2 fn. 3).
type Tag struct {
	Set  bool
	Kind ir.ExcKind
}

// Exception describes a signalled (architecturally visible) exception.
type Exception struct {
	// ReportedPC is the PC of the instruction reported as the cause: for
	// sentinel-detected exceptions this is the PC recovered from the tagged
	// register's data field.
	ReportedPC int
	// ByPC is the PC of the instruction that signalled (the sentinel, or
	// the excepting instruction itself when non-speculative).
	ByPC  int
	Kind  ir.ExcKind
	Cycle int64
}

func (e Exception) String() string {
	return fmt.Sprintf("%v: pc %d (signalled by pc %d, cycle %d)",
		e.Kind, e.ReportedPC, e.ByPC, e.Cycle)
}

// Handler decides what happens on a signalled exception. Returning true
// asks the machine to recover: re-execution restarts at the reported PC
// (§3.7). Returning false aborts the run with the exception as error.
type Handler func(exc Exception, m *Machine) bool

// Options configures a simulation.
type Options struct {
	// MaxInstrs bounds dynamic instructions (default 200M).
	MaxInstrs int64
	// Handler is consulted on signalled exceptions; nil aborts.
	Handler Handler
	// Trace, when non-nil, receives one Chrome trace-event slice per issued
	// instruction (a track per issue slot), store-buffer occupancy samples,
	// and flow events linking each speculative exception to the sentinel
	// that signals it. Every hook is behind a nil check: a nil Trace costs
	// one pointer compare per instruction.
	Trace *obs.Tracer
	// Index is an optional precomputed ProgIndex for the program being run
	// (NewProgIndex). Callers that simulate the same scheduled program many
	// times should build it once and share it; when nil (or built for a
	// different program), Run constructs its own, exactly once per call.
	Index *ProgIndex
	// Pred is an optional prebuilt predictor (NewPredictor) for the
	// machine's frontend, built against the same program as Index. Callers
	// that simulate the same program many times supply one to keep the
	// steady state allocation-free; Run Resets it before use. When nil and
	// the machine selects a non-perfect frontend, Run builds one. Ignored
	// (never consulted) under PredPerfect.
	Pred Predictor
}

// Result is the outcome of a simulated run.
type Result struct {
	Cycles int64
	Instrs int64
	// Stalls aggregates interlock and store-buffer stall cycles; Stats
	// carries the per-cause breakdown (Stalls == Stats.Stalls()).
	Stalls     int64
	Out        []int64
	MemSum     uint64
	Exceptions []Exception // signalled exceptions that were recovered
	// Stats is the per-run observability breakdown: stall causes,
	// speculation and sentinel activity, occupancy high-water marks, and
	// the dynamic opcode mix.
	Stats obs.SimStats
}

// Machine is the simulated processor state.
type Machine struct {
	md   machine.Desc
	p    *prog.Program
	Mem  *mem.Memory
	Int  [ir.NumIntRegs]int64
	FP   [ir.NumFPRegs]float64
	Tags [ir.NumIntRegs + ir.NumFPRegs]Tag

	readyAt [ir.NumIntRegs + ir.NumFPRegs]int64
	buf     *storeBuffer
	pcq     *PCQueue
	boost   *shadowFile // shadow register files (boosting model only)
	curLvl  int         // boost level of the currently executing instruction
	out     []int64

	instrs int64
	stats  obs.SimStats
	trace  *obs.Tracer // nil unless Options.Trace was set
}

// traceSlot maps an instruction to its trace track: its issue slot, or 0
// for unscheduled programs (Slot < 0).
func traceSlot(in *ir.Instr) int {
	if in.Slot < 0 {
		return 0
	}
	return in.Slot
}

// Raw reads a register's data field as raw bits (the data field carries the
// excepting PC after a speculative exception, for either register file).
func (m *Machine) Raw(r ir.Reg) int64 {
	if r.Class == ir.IntClass {
		return m.Int[r.N]
	}
	return int64(math.Float64bits(m.FP[r.N]))
}

// SetRaw writes a register's data field as raw bits. Writes to r0 are
// discarded (hardwired zero).
func (m *Machine) SetRaw(r ir.Reg, v int64) {
	if r.Class == ir.IntClass {
		if r.N != 0 {
			m.Int[r.N] = v
		}
		return
	}
	m.FP[r.N] = math.Float64frombits(uint64(v))
}

// tag returns the register's exception tag.
func (m *Machine) tag(r ir.Reg) Tag { return m.Tags[r.Index()] }

// setTag sets or clears the register's exception tag.
func (m *Machine) setTag(r ir.Reg, t Tag) {
	if r.IsZero() {
		return
	}
	m.Tags[r.Index()] = t
}

// firstTaggedSrc returns the first source operand of in whose exception tag
// is set (Table 1: "the first source operand of I whose exception tag is
// set"), or NoReg. Written out over Src1/Src2 directly — a slice literal
// here would allocate on every tagged-model dynamic instruction.
func (m *Machine) firstTaggedSrc(in *ir.Instr) ir.Reg {
	if r := in.Src1; r.Valid() && !r.IsZero() && m.tag(r).Set {
		return r
	}
	if r := in.Src2; r.Valid() && !r.IsZero() && m.tag(r).Set {
		return r
	}
	return ir.NoReg
}

type abort struct {
	exc Exception
}

func (a *abort) Error() string { return "unhandled exception: " + a.exc.String() }

// Unhandled extracts the exception from an abort error, if any.
func Unhandled(err error) (Exception, bool) {
	if a, ok := err.(*abort); ok {
		return a.exc, true
	}
	return Exception{}, false
}

// Run simulates the scheduled program p on machine md with the given data
// memory (mutated in place). The program must be laid out (Layout).
func Run(p *prog.Program, md machine.Desc, memory *mem.Memory, opts Options) (*Result, error) {
	if err := md.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxInstrs == 0 {
		opts.MaxInstrs = 200_000_000
	}
	m := &Machine{
		md:  md,
		p:   p,
		Mem: memory,
		buf: newStoreBuffer(md.StoreBuffer),
		pcq: NewPCQueue(32),
	}
	if md.Model == machine.Boosting {
		m.boost = newShadowFile(md.BoostLevels)
	}
	m.trace = opts.Trace
	m.out = make([]int64, 0, 32)
	res := &Result{}
	if opts.Handler != nil {
		res.Exceptions = make([]Exception, 0, 8)
	}

	// The PC index maps PCs to (block, instruction) positions for recovery
	// restarts and precomputes branch-target block indices for redirects.
	// It is built exactly once per program: either by the caller (shared
	// across runs via Options.Index) or here, up front.
	idx := opts.Index
	if idx == nil || idx.p != p {
		idx = NewProgIndex(p)
	}

	// The branch-prediction frontend. Under PredPerfect (the classic,
	// default machine) pred stays nil and every predictor branch below is a
	// single never-taken comparison — the oracle timing is untouched. The
	// variable fetch-rate model: the first issue cycle after a frontend
	// redirect runs at half width (throttleT marks that cycle; overflow
	// slips the stream one cycle into FetchThrottleStalls).
	var pred Predictor
	fetchBudget := 0
	if md.Predictor != machine.PredPerfect {
		pred = opts.Pred
		if pred == nil {
			pred = NewPredictor(md, idx)
		}
		pred.Reset()
		fetchBudget = max(1, md.IssueWidth/2)
	}
	throttleT := int64(-1)
	throttleLeft := 0

	now := int64(0)
	bi := idx.blockOf(-1, p.Entry)
	start := 0 // instruction index to start at within the block (recovery)
	for bi >= 0 && bi < len(p.Blocks) {
		b := p.Blocks[bi]
		blockStart := now
		if start > 0 && start < len(b.Instrs) {
			// Restarting mid-block: align the schedule so the restart
			// instruction issues now.
			blockStart = now - int64(b.Instrs[start].Cycle)
		}
		redirect := -1     // next block index when a transfer happens
		redirectStart := 0 // instruction index within redirect target
		halted := false
		last := now

		for i := start; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			m.instrs++
			if m.instrs > opts.MaxInstrs {
				return res, fmt.Errorf("sim: instruction budget exceeded (%d)", opts.MaxInstrs)
			}

			// Issue timing: scheduled slot adjusted for accumulated drift,
			// delayed by scoreboard interlocks on source operands. An
			// unscheduled program (Cycle < 0) degenerates to one
			// instruction per cycle.
			rel := in.Cycle
			if rel < 0 {
				rel = i
			}
			tSched := blockStart + int64(rel)
			t := tSched
			if t < last {
				t = last // in-order issue: never earlier than an older instruction
			}
			// Scoreboard check on source operands, written out over
			// Src1/Src2 directly: Uses() allocates a slice, and this is
			// the simulator's per-dynamic-instruction hot path.
			if r := in.Src1; r.Valid() && !r.IsZero() {
				if ra := m.readyAt[r.Index()]; ra > t {
					t = ra
				}
			}
			if r := in.Src2; r.Valid() && !r.IsZero() {
				if ra := m.readyAt[r.Index()]; ra > t {
					t = ra
				}
			}
			if t > tSched {
				m.stats.InterlockStalls += t - tSched
				blockStart += t - tSched // in-order: the whole stream slips
			}
			if t == throttleT {
				// Half-width fetch cycle right after a redirect: once the
				// reduced budget is spent, the rest of the stream slips one
				// cycle while fetch refills.
				if throttleLeft > 0 {
					throttleLeft--
				} else {
					t++
					blockStart++
					m.stats.FetchThrottleStalls++
					throttleT = -1
				}
			}
			last = t

			m.stats.OpMix[in.Op]++
			if in.Spec {
				m.stats.SpecOps++
			}
			if m.trace != nil {
				m.trace.Slice(traceSlot(in), in.Op.String(), t,
					int64(machine.Latency(in.Op)), in.PC, in.Spec)
			}

			ev, err := m.exec(in, t)
			if err != nil {
				res.Cycles = t
				return res, err
			}
			if ev.stall > 0 {
				m.stats.StoreBufferStalls += ev.stall
				blockStart += ev.stall
				last = t + ev.stall
			}
			if ev.signalled {
				m.stats.SentinelSignals++
				if in.Op == ir.Check {
					m.stats.CheckFires++
				}
				if m.trace != nil {
					m.trace.FlowEnd(int64(ev.reportPC), traceSlot(in), t)
				}
				exc := Exception{ReportedPC: ev.reportPC, ByPC: in.PC, Kind: ev.kind, Cycle: t}
				if opts.Handler == nil || !opts.Handler(exc, m) {
					res.Cycles = t
					finishResult(res, m)
					return res, &abort{exc}
				}
				res.Exceptions = append(res.Exceptions, exc)
				// Recovery: re-execution restarts at the reported PC
				// (repair happened in the handler), §3.7.
				rp, ok := idx.lookup(exc.ReportedPC)
				if !ok {
					res.Cycles = t
					return res, fmt.Errorf("sim: recovery target pc %d not found", exc.ReportedPC)
				}
				redirect, redirectStart = int(rp.block), int(rp.idx)
				now = t + 1
				break
			}
			// Consult the branch-prediction frontend for every resolved
			// conditional branch (signalled branches recover instead of
			// resolving and are not predicted). mispredicted stays false
			// under the perfect frontend, so everything below degenerates
			// to the classic timing.
			mispredicted := false
			if pred != nil && ir.IsBranch(in.Op) {
				if bid := idx.branchOf(in.PC); bid >= 0 {
					predTaken := pred.Predict(bid)
					pred.Update(bid, ev.taken)
					m.stats.PredictedBranches++
					if predTaken != ev.taken {
						mispredicted = true
						m.stats.Mispredicts++
						m.stats.MispredictCycles += int64(m.md.MispredictPenalty)
					}
				}
			}
			if ev.taken {
				// Taken control transfer: younger instructions (same cycle,
				// later slots, and all later cycles) are nullified simply by
				// leaving the block loop. A taken conditional branch is a
				// (compile-time) branch misprediction: cancel probationary
				// store-buffer entries (§4.1).
				if ir.IsBranch(in.Op) {
					m.buf.cancelProbationary()
				}
				m.stats.BranchRedirects++
				penalty := int64(machine.BranchTakenPenalty)
				if mispredicted {
					// Predicted not-taken, taken: the full mispredict
					// redirect replaces the fixed taken-branch bubble.
					penalty = int64(m.md.MispredictPenalty)
				}
				m.stats.RedirectCycles += penalty
				redirect = idx.blockOf(in.PC, ev.target)
				now = t + 1 + penalty
				if pred != nil {
					throttleT = now
					throttleLeft = fetchBudget
				}
				break
			}
			if mispredicted {
				// Predicted taken, fell through: wrong-path fetch at the
				// target is squashed and fetch refills from the fall-through
				// path, slipping the whole in-order stream.
				p := int64(m.md.MispredictPenalty)
				blockStart += p
				last = t + p
				throttleT = last
				throttleLeft = fetchBudget
			}
			if in.Op == ir.Halt {
				halted = true
				res.Cycles = t
				break
			}
		}

		if halted {
			break
		}
		if redirect >= 0 {
			bi = redirect
			start = redirectStart
			continue
		}
		// Fall through to the next block.
		now = last + 1
		bi++
		start = 0
		if bi >= len(p.Blocks) {
			return res, fmt.Errorf("sim: fell off the end of the program")
		}
	}

	// Drain the store buffer and wait for in-flight results.
	drain := m.buf.drainAll(res.Cycles, m.Mem)
	if drain > res.Cycles {
		res.Cycles = drain
	}
	for _, ra := range m.readyAt {
		if ra > res.Cycles {
			res.Cycles = ra
		}
	}
	finishResult(res, m)
	return res, nil
}

func finishResult(res *Result, m *Machine) {
	// The PC queue only ever fills (a ring of issued PCs), so its final
	// length is its high-water mark — recorded here, off the hot path.
	m.stats.PCQueueHighWater = int64(m.pcq.Len())
	res.Instrs = m.instrs
	res.Stats = m.stats
	res.Stalls = m.stats.Stalls()
	res.Out = m.out
	res.MemSum = m.Mem.Checksum()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
