package sim

import (
	"testing"

	"sentinel/internal/ir"
	"sentinel/internal/machine"
	"sentinel/internal/mem"
	"sentinel/internal/prog"
)

// loopProgram is a counting loop whose backward branch is taken n-1 times:
// every iteration is a block redirect through the simulator's transfer path.
func loopProgram(n int64) *prog.Program {
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), 0),
		ir.LI(ir.R(2), n),
	)
	p.AddBlock("loop",
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 1),
		ir.BR(ir.Blt, ir.R(1), ir.R(2), "loop"),
	)
	p.AddBlock("done",
		ir.JSR("putint", ir.R(1)),
		ir.HALT(),
	)
	p.Layout()
	return p
}

// TestProgIndexBuiltOncePerRun asserts the satellite property: one Run builds
// its PC index exactly once, no matter how many redirects the program takes
// (the seed built a map lazily per run; the dense index must not regress to
// per-redirect or per-recovery rebuilds).
func TestProgIndexBuiltOncePerRun(t *testing.T) {
	p := loopProgram(500)
	md := machine.Base(2, machine.Sentinel)

	before := progIndexBuilds.Load()
	res, err := Run(p, md, mem.New(), Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := progIndexBuilds.Load() - before; got != 1 {
		t.Errorf("Run built the PC index %d times, want exactly 1 (499 redirects)", got)
	}
	if len(res.Out) != 1 || res.Out[0] != 500 {
		t.Errorf("out = %v, want [500]", res.Out)
	}
	if res.Stats.BranchRedirects != 499 {
		t.Errorf("redirects = %d, want 499", res.Stats.BranchRedirects)
	}
}

// TestProgIndexSharedAcrossRuns asserts that a caller-provided index is
// reused: N runs of the same program cost one construction, total.
func TestProgIndexSharedAcrossRuns(t *testing.T) {
	p := loopProgram(100)
	md := machine.Base(2, machine.Sentinel)

	before := progIndexBuilds.Load()
	idx := NewProgIndex(p)
	for i := 0; i < 5; i++ {
		res, err := Run(p, md, mem.New(), Options{Index: idx})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if len(res.Out) != 1 || res.Out[0] != 100 {
			t.Fatalf("run %d: out = %v, want [100]", i, res.Out)
		}
	}
	if got := progIndexBuilds.Load() - before; got != 1 {
		t.Errorf("5 runs with a shared index built %d indices, want 1", got)
	}
}

// TestProgIndexForeignProgram asserts the safety valve: an index built for a
// different program is ignored, not trusted.
func TestProgIndexForeignProgram(t *testing.T) {
	pa := loopProgram(10)
	pb := loopProgram(20)
	idx := NewProgIndex(pa)
	res, err := Run(pb, machine.Base(2, machine.Sentinel), mem.New(), Options{Index: idx})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Out) != 1 || res.Out[0] != 20 {
		t.Errorf("out = %v, want [20] (index for another program must be rebuilt)", res.Out)
	}
}

// TestProgIndexRecoveryLookup exercises the recovery path through the index:
// a speculative load faults, the sentinel signals, and the handler-driven
// restart must land on the reported PC via the index's position lookup.
func TestProgIndexRecoveryLookup(t *testing.T) {
	mk := func(in *ir.Instr, cyc, slot int, spec bool) *ir.Instr {
		in.Cycle, in.Slot, in.Spec = cyc, slot, spec
		return in
	}
	p := prog.NewProgram()
	p.AddBlock("entry",
		mk(ir.LI(ir.R(2), 0x9000), 0, 0, false), // unmapped until repaired
	)
	p.AddBlock("main",
		mk(ir.LOAD(ir.Ld, ir.R(1), ir.R(2), 0), 0, 0, true),
		mk(ir.CHECK(ir.R(1)), 1, 0, false),
		mk(ir.JSR("putint", ir.R(1)), 2, 0, false),
		mk(ir.HALT(), 3, 0, false),
	)
	p.Layout()
	m := mem.New()
	recovered := 0
	res, err := Run(p, machine.Base(2, machine.Sentinel).WithRecovery(), m, Options{
		Handler: func(exc Exception, mach *Machine) bool {
			recovered++
			if exc.ReportedPC != 1 {
				t.Errorf("reported pc = %d, want 1 (the speculative load)", exc.ReportedPC)
			}
			m.Map("late", 0x9000, 64)
			m.Write(0x9000, 8, 7)
			return true
		},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if recovered != 1 {
		t.Errorf("recoveries = %d, want 1", recovered)
	}
	if len(res.Out) != 1 || res.Out[0] != 7 {
		t.Errorf("out = %v, want [7] (re-executed load after repair)", res.Out)
	}
}
