package sim

import (
	"fmt"

	"sentinel/internal/ir"
	"sentinel/internal/mem"
)

// Entry is one store-buffer entry. Beyond the conventional address, data and
// valid fields, probationary entries (speculative stores, §4.1) carry a
// confirmation bit, an exception tag and an exception PC.
type Entry struct {
	Addr int64
	Size int
	Data uint64

	Confirmed bool
	ExcSet    bool
	ExcKind   ir.ExcKind
	ExcPC     int64 // raw: PC of the excepting store, or propagated source data

	// Level is the shadow store-buffer level under the boosting model: the
	// number of branch commits remaining before the entry is confirmed
	// (0 for sentinel-model probationary entries, which confirm_store
	// confirms explicitly).
	Level int

	insertedAt int64
}

// storeBuffer is the FIFO store buffer between CPU and data cache. Entries
// are appended at the tail; the head releases to the cache at one entry per
// cycle, but a probationary (unconfirmed) head entry blocks all releases.
//
// Storage is a fixed ring allocated once at construction: the buffer is
// bounded by the machine's capacity, and insert/release run once per dynamic
// store, so the ring keeps the simulator's inner loop allocation-free.
type storeBuffer struct {
	data      []Entry // ring storage, len == capacity
	head      int     // index of the oldest entry in data
	count     int     // live entries
	lastDrain int64
}

func newStoreBuffer(capacity int) *storeBuffer {
	return &storeBuffer{data: make([]Entry, capacity)}
}

// at returns the i-th oldest live entry (0 is the head). i < capacity, so a
// conditional wrap suffices (and avoids a hardware divide on the hot path).
func (sb *storeBuffer) at(i int) *Entry {
	j := sb.head + i
	if j >= len(sb.data) {
		j -= len(sb.data)
	}
	return &sb.data[j]
}

// popHead discards the oldest entry.
func (sb *storeBuffer) popHead() {
	sb.head++
	if sb.head == len(sb.data) {
		sb.head = 0
	}
	sb.count--
}

// removeAt deletes the i-th oldest entry, shifting younger entries down.
func (sb *storeBuffer) removeAt(i int) {
	for j := i; j < sb.count-1; j++ {
		*sb.at(j) = *sb.at(j + 1)
	}
	sb.count--
}

// Len returns the current occupancy.
func (sb *storeBuffer) Len() int { return sb.count }

// Entries returns a copy of the buffer contents (oldest first) for tests and
// tools; the ring layout is not exposed.
func (sb *storeBuffer) Entries() []Entry {
	out := make([]Entry, sb.count)
	for i := range out {
		out[i] = *sb.at(i)
	}
	return out
}

// drainTo releases confirmed head entries to memory, one per cycle, up to
// time t.
func (sb *storeBuffer) drainTo(t int64, m *mem.Memory) {
	for sb.count > 0 {
		h := sb.at(0)
		if !h.Confirmed {
			return
		}
		at := sb.lastDrain + 1
		if h.insertedAt+1 > at {
			at = h.insertedAt + 1
		}
		if at > t {
			return
		}
		if f := m.Write(h.Addr, h.Size, h.Data); f != nil {
			// Address translation succeeded at insertion; a fault here means
			// the memory map changed under a buffered store.
			panic(fmt.Sprintf("sim: store buffer release faulted: %v", f))
		}
		sb.lastDrain = at
		sb.popHead()
	}
}

// flushConfirmed drains all confirmed head entries immediately (used by the
// tag-preserving spill instructions and by Table 2 row 001: "force all
// confirmed entries at head of buffer to update cache").
func (sb *storeBuffer) flushConfirmed(m *mem.Memory) {
	for sb.count > 0 && sb.at(0).Confirmed {
		h := sb.at(0)
		if f := m.Write(h.Addr, h.Size, h.Data); f != nil {
			panic(fmt.Sprintf("sim: store buffer release faulted: %v", f))
		}
		sb.popHead()
	}
}

// insert appends a new entry at time t, stalling (returning a later time)
// when the buffer is full. It reports an error when the buffer can never
// free an entry (probationary head with the processor stalled: the deadlock
// §4.2's separation constraint exists to prevent).
func (sb *storeBuffer) insert(t int64, e Entry, m *mem.Memory) (int64, error) {
	sb.drainTo(t, m)
	for sb.count >= len(sb.data) {
		h := sb.at(0)
		if !h.Confirmed {
			return t, fmt.Errorf("sim: store buffer deadlock: full with probationary head (schedule violates the N-1 separation constraint)")
		}
		at := sb.lastDrain + 1
		if h.insertedAt+1 > at {
			at = h.insertedAt + 1
		}
		if at > t {
			t = at // stall the processor until an entry frees
		}
		sb.drainTo(t, m)
	}
	e.insertedAt = t
	*sb.at(sb.count) = e
	sb.count++
	return t, nil
}

// loadOverlay performs a load at (addr,size): the memory value overlaid with
// all overlapping buffer entries in insertion order (oldest to youngest), so
// the youngest store wins byte-wise. Probationary entries whose exception
// tag is set do not participate in the search (§4.1), enabling independent
// re-execution of the load and the excepting store.
func (sb *storeBuffer) loadOverlay(addr int64, size int, m *mem.Memory) (uint64, *mem.Fault) {
	v, f := m.Read(addr, size)
	if f != nil {
		return 0, f
	}
	var bytes [8]byte
	for i := 0; i < size; i++ {
		bytes[i] = byte(v >> (8 * i))
	}
	for i := 0; i < sb.count; i++ {
		e := sb.at(i)
		if e.ExcSet && !e.Confirmed {
			continue
		}
		lo := max64(addr, e.Addr)
		hi := min64(addr+int64(size), e.Addr+int64(e.Size))
		for b := lo; b < hi; b++ {
			bytes[b-addr] = byte(e.Data >> (8 * (b - e.Addr)))
		}
	}
	var out uint64
	for i := 0; i < size; i++ {
		out |= uint64(bytes[i]) << (8 * i)
	}
	return out, nil
}

// confirm handles confirm_store(index): the probationary entry index entries
// from the tail is confirmed; if its exception tag is set, the entry is
// removed and the exception information returned for signalling (the store
// will be re-executed under recovery).
func (sb *storeBuffer) confirm(index int64) (exc bool, kind ir.ExcKind, excPC int64, err error) {
	i := sb.count - 1 - int(index)
	if index < 0 || i < 0 {
		return false, 0, 0, fmt.Errorf("sim: confirm_store(%d) out of range (%d entries)", index, sb.count)
	}
	e := sb.at(i)
	if e.Confirmed {
		return false, 0, 0, fmt.Errorf("sim: confirm_store(%d) targets an already confirmed entry", index)
	}
	if e.ExcSet {
		kind, excPC = e.ExcKind, e.ExcPC
		sb.removeAt(i)
		return true, kind, excPC, nil
	}
	e.Confirmed = true
	return false, 0, 0, nil
}

// commitLevel moves every shadow (boosted) entry one branch closer to
// commitment; entries reaching level 0 are confirmed, or returned for
// signalling when their exception tag is set (and removed, like a
// confirm-time exception).
func (sb *storeBuffer) commitLevel() *Entry {
	for i := 0; i < sb.count; i++ {
		e := sb.at(i)
		if e.Confirmed || e.Level == 0 {
			continue
		}
		e.Level--
		if e.Level == 0 {
			if e.ExcSet {
				out := *e
				sb.removeAt(i)
				return &out
			}
			e.Confirmed = true
		}
	}
	return nil
}

// cancelProbationary removes all unconfirmed entries (branch misprediction,
// §4.1).
func (sb *storeBuffer) cancelProbationary() {
	kept := 0
	for i := 0; i < sb.count; i++ {
		e := *sb.at(i)
		if e.Confirmed {
			*sb.at(kept) = e
			kept++
		}
	}
	sb.count = kept
}

// drainAll flushes every remaining entry to memory and returns the cycle at
// which the last release completes. All entries must be confirmed.
func (sb *storeBuffer) drainAll(t int64, m *mem.Memory) int64 {
	for sb.count > 0 {
		h := sb.at(0)
		if !h.Confirmed {
			panic("sim: drainAll with probationary entry (unconfirmed speculative store at program end)")
		}
		at := sb.lastDrain + 1
		if h.insertedAt+1 > at {
			at = h.insertedAt + 1
		}
		if f := m.Write(h.Addr, h.Size, h.Data); f != nil {
			panic(fmt.Sprintf("sim: store buffer release faulted: %v", f))
		}
		sb.lastDrain = at
		sb.popHead()
		if at > t {
			t = at
		}
	}
	return t
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
