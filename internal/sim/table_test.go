package sim

import (
	"testing"

	"sentinel/internal/ir"
	"sentinel/internal/machine"
	"sentinel/internal/mem"
)

func testMachine(model machine.Model) *Machine {
	m := &Machine{
		md:  machine.Base(8, model),
		Mem: mem.New(),
		buf: newStoreBuffer(8),
		pcq: NewPCQueue(32),
	}
	m.Mem.Map("data", 0x1000, 64)
	return m
}

// TestTable1 drives every row of Table 1 (exception detection with sentinel
// scheduling) through the register-file semantics.
//
//	spec srcTag causesExc => destTag destData signal
func TestTable1(t *testing.T) {
	const specPC = 7 // pretend PC of an earlier speculative excepting instr

	// Helpers to build a machine with r2 pointing at valid or invalid
	// memory, and optionally r2 carrying a set exception tag.
	setup := func(validAddr, srcTagged bool) *Machine {
		m := testMachine(machine.Sentinel)
		if validAddr {
			m.Int[2] = 0x1000
		} else {
			m.Int[2] = 0xdead000
		}
		if srcTagged {
			m.Int[2] = specPC // data field carries the excepting PC
			m.setTag(ir.R(2), Tag{Set: true, Kind: ir.ExcPageFault})
		}
		m.Mem.Write(0x1000, 8, 42)
		return m
	}
	load := func(spec bool, pc int) *ir.Instr {
		in := ir.LOAD(ir.Ld, ir.R(1), ir.R(2), 0)
		in.Spec = spec
		in.PC = pc
		return in
	}

	t.Run("000_conventional", func(t *testing.T) {
		m := setup(true, false)
		ev, err := m.exec(load(false, 10), 0)
		if err != nil || ev.signalled {
			t.Fatalf("ev=%+v err=%v", ev, err)
		}
		if m.Int[1] != 42 || m.tag(ir.R(1)).Set {
			t.Errorf("dest = %d tag=%v, want 42 untagged", m.Int[1], m.tag(ir.R(1)))
		}
	})
	t.Run("001_nonspec_exception_signals_own_pc", func(t *testing.T) {
		m := setup(false, false)
		ev, err := m.exec(load(false, 10), 0)
		if err != nil || !ev.signalled || ev.reportPC != 10 {
			t.Fatalf("ev=%+v err=%v, want signal pc 10", ev, err)
		}
	})
	t.Run("010_sentinel_signals_src_data", func(t *testing.T) {
		m := setup(true, true)
		add := ir.ALUI(ir.Add, ir.R(3), ir.R(2), 1)
		add.PC = 11
		ev, err := m.exec(add, 0)
		if err != nil || !ev.signalled || ev.reportPC != specPC {
			t.Fatalf("ev=%+v err=%v, want signal pc %d", ev, err, specPC)
		}
		if ev.kind != ir.ExcPageFault {
			t.Errorf("kind = %v", ev.kind)
		}
	})
	t.Run("011_sentinel_signals_before_own_exception", func(t *testing.T) {
		m := setup(false, true) // base tagged AND load would fault
		ev, err := m.exec(load(false, 12), 0)
		if err != nil || !ev.signalled || ev.reportPC != specPC {
			t.Fatalf("ev=%+v err=%v, want signal pc %d", ev, err, specPC)
		}
	})
	t.Run("100_speculative_conventional", func(t *testing.T) {
		m := setup(true, false)
		ev, err := m.exec(load(true, 13), 0)
		if err != nil || ev.signalled {
			t.Fatalf("ev=%+v err=%v", ev, err)
		}
		if m.Int[1] != 42 || m.tag(ir.R(1)).Set {
			t.Errorf("dest = %d tagged=%v", m.Int[1], m.tag(ir.R(1)).Set)
		}
	})
	t.Run("101_speculative_exception_tags_dest_with_pc", func(t *testing.T) {
		m := setup(false, false)
		ev, err := m.exec(load(true, 14), 0)
		if err != nil || ev.signalled {
			t.Fatalf("ev=%+v err=%v: speculative exception must not signal", ev, err)
		}
		if tg := m.tag(ir.R(1)); !tg.Set || tg.Kind != ir.ExcAccessViolation {
			t.Errorf("dest tag = %+v", tg)
		}
		if m.Int[1] != 14 {
			t.Errorf("dest data = %d, want pc 14", m.Int[1])
		}
	})
	t.Run("110_propagation", func(t *testing.T) {
		m := setup(true, true)
		add := ir.ALUI(ir.Add, ir.R(3), ir.R(2), 1)
		add.Spec = true
		add.PC = 15
		ev, err := m.exec(add, 0)
		if err != nil || ev.signalled {
			t.Fatalf("ev=%+v err=%v", ev, err)
		}
		if tg := m.tag(ir.R(3)); !tg.Set {
			t.Error("propagation must set dest tag")
		}
		if m.Int[3] != specPC {
			t.Errorf("dest data = %d, want propagated pc %d", m.Int[3], specPC)
		}
	})
	t.Run("111_propagation_wins_over_own_exception", func(t *testing.T) {
		m := setup(false, true)
		ev, err := m.exec(load(true, 16), 0)
		if err != nil || ev.signalled {
			t.Fatalf("ev=%+v err=%v", ev, err)
		}
		if m.Int[1] != specPC {
			t.Errorf("dest data = %d, want propagated pc %d (not own pc 16)", m.Int[1], specPC)
		}
	})
	t.Run("first_tagged_source_wins", func(t *testing.T) {
		m := testMachine(machine.Sentinel)
		m.Int[2], m.Int[3] = 100, 200
		m.setTag(ir.R(2), Tag{Set: true, Kind: ir.ExcPageFault})
		m.setTag(ir.R(3), Tag{Set: true, Kind: ir.ExcDivZero})
		add := ir.ALU(ir.Add, ir.R(4), ir.R(2), ir.R(3))
		add.Spec = true
		if _, err := m.exec(add, 0); err != nil {
			t.Fatal(err)
		}
		if m.Int[4] != 100 {
			t.Errorf("dest data = %d, want first tagged source's data 100", m.Int[4])
		}
		if m.tag(ir.R(4)).Kind != ir.ExcPageFault {
			t.Errorf("kind = %v, want first source's kind", m.tag(ir.R(4)).Kind)
		}
	})
	t.Run("normal_write_clears_tag", func(t *testing.T) {
		m := testMachine(machine.Sentinel)
		m.setTag(ir.R(1), Tag{Set: true, Kind: ir.ExcPageFault})
		li := ir.LI(ir.R(1), 5)
		if _, err := m.exec(li, 0); err != nil {
			t.Fatal(err)
		}
		if m.tag(ir.R(1)).Set {
			t.Error("redefinition must clear the exception tag")
		}
	})
}

// TestTable2 drives every row of Table 2 (insertion of a store into the
// store buffer) under the speculative-store model.
func TestTable2(t *testing.T) {
	const specPC = 21
	setup := func(validAddr, srcTagged bool) (*Machine, *ir.Instr) {
		m := testMachine(machine.SentinelStores)
		m.Int[2] = 0x1000
		if !validAddr {
			m.Int[2] = 0xdead000
		}
		m.Int[5] = 77 // store data
		if srcTagged {
			m.Int[5] = specPC
			m.setTag(ir.R(5), Tag{Set: true, Kind: ir.ExcPageFault})
		}
		st := ir.STORE(ir.St, ir.R(2), 0, ir.R(5))
		st.PC = 30
		return m, st
	}

	t.Run("000_confirmed_entry", func(t *testing.T) {
		m, st := setup(true, false)
		ev, err := m.exec(st, 0)
		if err != nil || ev.signalled {
			t.Fatalf("ev=%+v err=%v", ev, err)
		}
		es := m.buf.Entries()
		if len(es) != 1 || !es[0].Confirmed || es[0].ExcSet {
			t.Errorf("entries = %+v", es)
		}
	})
	t.Run("001_nonspec_fault_flushes_and_signals", func(t *testing.T) {
		m, _ := setup(true, false)
		// Pre-load a confirmed entry that must be forced to the cache.
		m.exec(ir.STORE(ir.St, ir.R(2), 8, ir.R(5)), 0)
		m.Int[2] = 0xdead000
		st := ir.STORE(ir.St, ir.R(2), 0, ir.R(5))
		st.PC = 31
		ev, err := m.exec(st, 1)
		if err != nil || !ev.signalled || ev.reportPC != 31 {
			t.Fatalf("ev=%+v err=%v", ev, err)
		}
		if m.buf.Len() != 0 {
			t.Error("confirmed entries must have been forced to the cache")
		}
		if v, _ := m.Mem.Read(0x1008, 8); v != 77 {
			t.Errorf("flushed store missing: %d", v)
		}
	})
	t.Run("010_store_as_sentinel", func(t *testing.T) {
		m, st := setup(true, true)
		ev, err := m.exec(st, 0)
		if err != nil || !ev.signalled || ev.reportPC != specPC {
			t.Fatalf("ev=%+v err=%v, want signal pc %d", ev, err, specPC)
		}
		if m.buf.Len() != 0 {
			t.Error("no entry may be inserted when the store signals")
		}
	})
	t.Run("100_probationary_entry", func(t *testing.T) {
		m, st := setup(true, false)
		st.Spec = true
		ev, err := m.exec(st, 0)
		if err != nil || ev.signalled {
			t.Fatalf("ev=%+v err=%v", ev, err)
		}
		es := m.buf.Entries()
		if len(es) != 1 || es[0].Confirmed || es[0].ExcSet {
			t.Errorf("entries = %+v", es)
		}
	})
	t.Run("101_spec_fault_tags_entry_with_own_pc", func(t *testing.T) {
		m, st := setup(false, false)
		st.Spec = true
		ev, err := m.exec(st, 0)
		if err != nil || ev.signalled {
			t.Fatalf("speculative store exception must not signal: %+v %v", ev, err)
		}
		es := m.buf.Entries()
		if len(es) != 1 || !es[0].ExcSet || es[0].ExcPC != 30 {
			t.Errorf("entries = %+v, want exc entry with pc 30", es)
		}
	})
	t.Run("110_spec_tagged_source_propagates", func(t *testing.T) {
		m, st := setup(true, true)
		st.Spec = true
		ev, err := m.exec(st, 0)
		if err != nil || ev.signalled {
			t.Fatalf("ev=%+v err=%v", ev, err)
		}
		es := m.buf.Entries()
		if len(es) != 1 || !es[0].ExcSet || es[0].ExcPC != specPC {
			t.Errorf("entries = %+v, want propagated pc %d", es, specPC)
		}
	})
	t.Run("111_propagation_wins", func(t *testing.T) {
		m, _ := setup(false, true)
		m.Int[2] = 0xdead000
		st := ir.STORE(ir.St, ir.R(2), 0, ir.R(5))
		st.PC = 30
		st.Spec = true
		ev, err := m.exec(st, 0)
		if err != nil || ev.signalled {
			t.Fatalf("ev=%+v err=%v", ev, err)
		}
		es := m.buf.Entries()
		if len(es) != 1 || es[0].ExcPC != specPC {
			t.Errorf("entries = %+v, want propagated pc %d", es, specPC)
		}
	})
	t.Run("confirm_reports_exception", func(t *testing.T) {
		m, st := setup(false, false)
		st.Spec = true
		if _, err := m.exec(st, 0); err != nil {
			t.Fatal(err)
		}
		cf := ir.CONFIRM(0)
		cf.PC = 40
		ev, err := m.exec(cf, 1)
		if err != nil || !ev.signalled || ev.reportPC != 30 {
			t.Fatalf("confirm ev=%+v err=%v, want signal pc 30", ev, err)
		}
		if m.buf.Len() != 0 {
			t.Error("excepting entry must be removed at confirm (for re-execution)")
		}
	})
	t.Run("confirm_clean_entry", func(t *testing.T) {
		m, st := setup(true, false)
		st.Spec = true
		m.exec(st, 0)
		ev, err := m.exec(ir.CONFIRM(0), 1)
		if err != nil || ev.signalled {
			t.Fatalf("ev=%+v err=%v", ev, err)
		}
		if es := m.buf.Entries(); !es[0].Confirmed {
			t.Error("entry must be confirmed")
		}
	})
}
