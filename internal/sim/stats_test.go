package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sentinel/internal/ir"
	"sentinel/internal/machine"
	"sentinel/internal/mem"
	"sentinel/internal/obs"
	"sentinel/internal/prog"
)

// TestStallCauseSplitInterlock provokes a pure scoreboard interlock (a
// load's consumer scheduled one cycle early) and requires the breakdown to
// attribute every stall cycle to interlocks, none to the store buffer, with
// the compatibility aggregate equal to the sum.
func TestStallCauseSplitInterlock(t *testing.T) {
	mk := func(in *ir.Instr, cyc, slot int) *ir.Instr {
		in.Cycle, in.Slot = cyc, slot
		return in
	}
	p := prog.NewProgram()
	p.AddBlock("main",
		mk(ir.LI(ir.R(2), 0x1000), 0, 0),
		mk(ir.LOAD(ir.Ld, ir.R(1), ir.R(2), 0), 1, 0),
		// Mis-scheduled: uses r1 one cycle too early (load latency 2).
		mk(ir.ALUI(ir.Add, ir.R(3), ir.R(1), 0), 2, 0),
		mk(ir.HALT(), 3, 0),
	)
	p.Layout()
	m := mem.New()
	m.Map("d", 0x1000, 8)
	res, err := Run(p, machine.Base(1, machine.Restricted), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.InterlockStalls == 0 {
		t.Error("expected interlock stalls")
	}
	if res.Stats.StoreBufferStalls != 0 {
		t.Errorf("store-buffer stalls = %d, want 0 (no store pressure in this program)",
			res.Stats.StoreBufferStalls)
	}
	if got := res.Stats.Stalls(); res.Stalls != got {
		t.Errorf("aggregate Stalls %d != breakdown sum %d", res.Stalls, got)
	}
}

// TestStallCauseSplitStoreBuffer provokes pure store-buffer pressure: four
// stores issued in one cycle against a 2-entry buffer, with r0-relative
// addressing so the scoreboard never interlocks. The breakdown must charge
// the store buffer and only the store buffer.
func TestStallCauseSplitStoreBuffer(t *testing.T) {
	mk := func(in *ir.Instr, cyc, slot int) *ir.Instr {
		in.Cycle, in.Slot = cyc, slot
		return in
	}
	p := prog.NewProgram()
	p.AddBlock("main",
		mk(ir.STORE(ir.St, ir.R(0), 0x1000, ir.R(0)), 0, 0),
		mk(ir.STORE(ir.St, ir.R(0), 0x1008, ir.R(0)), 0, 1),
		mk(ir.STORE(ir.St, ir.R(0), 0x1010, ir.R(0)), 0, 2),
		mk(ir.STORE(ir.St, ir.R(0), 0x1018, ir.R(0)), 0, 3),
		mk(ir.HALT(), 1, 0),
	)
	p.Layout()
	m := mem.New()
	m.Map("d", 0x1000, 64)
	md := machine.Base(8, machine.Restricted)
	md.StoreBuffer = 2
	res, err := Run(p, md, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StoreBufferStalls == 0 {
		t.Error("expected store-buffer stalls with 4 same-cycle stores into a 2-entry buffer")
	}
	if res.Stats.InterlockStalls != 0 {
		t.Errorf("interlock stalls = %d, want 0 (all operands are r0)", res.Stats.InterlockStalls)
	}
	if got := res.Stats.Stalls(); res.Stalls != got {
		t.Errorf("aggregate Stalls %d != breakdown sum %d", res.Stalls, got)
	}
	if res.Stats.StoreBufferHighWater != 2 {
		t.Errorf("store-buffer high-water = %d, want 2 (the full buffer)", res.Stats.StoreBufferHighWater)
	}
}

// sentinelPairProgram builds the canonical sentinel pair: a speculative
// faulting load whose exception propagates through a speculative add and is
// signalled by an explicit check_exception.
func sentinelPairProgram() (*prog.Program, *mem.Memory) {
	mk := func(in *ir.Instr, spec bool) *ir.Instr {
		in.Spec = spec
		return in
	}
	p := prog.NewProgram()
	p.AddBlock("main",
		mk(ir.LI(ir.R(2), 0x9000), false), // unmapped: the load faults
		mk(ir.LOAD(ir.Ld, ir.R(1), ir.R(2), 0), true),
		mk(ir.ALUI(ir.Add, ir.R(3), ir.R(1), 1), true),
		mk(ir.CHECK(ir.R(3)), false),
		mk(ir.HALT(), false),
	)
	p.Layout()
	return p, mem.New()
}

// TestStatsSentinelActivity pins the tag/signal counters on the canonical
// sentinel pair: one tag set, one propagation, one signal, fired by
// check_exception.
func TestStatsSentinelActivity(t *testing.T) {
	p, m := sentinelPairProgram()
	res, err := Run(p, machine.Base(8, machine.Sentinel), m, Options{})
	if _, ok := Unhandled(err); !ok {
		t.Fatalf("err = %v, want unhandled exception", err)
	}
	s := res.Stats
	if s.TagSets != 1 || s.TagPropagations != 1 || s.SentinelSignals != 1 || s.CheckFires != 1 {
		t.Errorf("sentinel activity = tags %d props %d signals %d checks %d, want 1/1/1/1",
			s.TagSets, s.TagPropagations, s.SentinelSignals, s.CheckFires)
	}
	if s.SpecOps != 2 {
		t.Errorf("spec ops = %d, want 2", s.SpecOps)
	}
	if s.OpMix[ir.Ld] != 1 || s.OpMix[ir.Check] != 1 {
		t.Errorf("op mix: ld %d check %d, want 1/1", s.OpMix[ir.Ld], s.OpMix[ir.Check])
	}
	if !strings.Contains(s.String(), "1 signalled (1 by check_exception)") {
		t.Errorf("stats text missing signal line:\n%s", s.String())
	}
}

// traceEvent mirrors the Chrome trace-event fields the schema test checks.
type traceEvent struct {
	Ph   string         `json:"ph"`
	Name string         `json:"name"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   *int64         `json:"ts"`
	Dur  int64          `json:"dur"`
	ID   int64          `json:"id"`
	BP   string         `json:"bp"`
	Args map[string]any `json:"args"`
}

// TestTraceChromeSchema validates that a traced run emits well-formed
// Chrome trace-event JSON: the document parses, duration events carry
// ts/pid/tid, and the sentinel pair produced a complete flow (start at the
// speculative faulting op, step at the propagation, end at the sentinel)
// sharing the excepting PC as the flow id.
func TestTraceChromeSchema(t *testing.T) {
	p, m := sentinelPairProgram()
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	res, err := Run(p, machine.Base(8, machine.Sentinel), m, Options{Trace: tr})
	if _, ok := Unhandled(err); !ok {
		t.Fatalf("err = %v, want unhandled exception", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid Chrome trace-event JSON: %v\n%s", err, buf.String())
	}
	var flows = map[string]int{}
	var flowID int64 = -1
	slices := 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			slices++
			if e.Ts == nil || e.Pid != 1 || e.Tid < 0 || e.Name == "" {
				t.Errorf("malformed slice: %+v", e)
			}
		case "s", "t", "f":
			flows[e.Ph]++
			if flowID == -1 {
				flowID = e.ID
			} else if e.ID != flowID {
				t.Errorf("flow id %d != %d: one sentinel pair must share one id", e.ID, flowID)
			}
			if e.Ph == "f" && e.BP != "e" {
				t.Errorf("flow end missing bp:e: %+v", e)
			}
		}
	}
	if slices != int(res.Instrs) {
		t.Errorf("slices = %d, want one per dynamic instruction (%d)", slices, res.Instrs)
	}
	// One sentinel pair → at least one complete flow: start, step, end.
	if flows["s"] < 1 || flows["t"] < 1 || flows["f"] < 1 {
		t.Errorf("flow events s/t/f = %d/%d/%d, want >=1 each", flows["s"], flows["t"], flows["f"])
	}
	if s := res.Stats; int64(flows["f"]) != s.SentinelSignals {
		t.Errorf("flow ends %d != sentinel signals %d", flows["f"], s.SentinelSignals)
	}
}

// TestTraceDoesNotPerturbResult runs the same program traced and untraced
// and requires identical architectural and timing results — the "no
// observer effect" contract the paperfigs CI job checks end to end.
func TestTraceDoesNotPerturbResult(t *testing.T) {
	build := func() (*prog.Program, *mem.Memory) {
		p := prog.NewProgram()
		p.AddBlock("entry", ir.LI(ir.R(2), 0x1000), ir.LI(ir.R(8), 0))
		p.AddBlock("loop",
			ir.STORE(ir.St, ir.R(2), 0, ir.R(8)),
			ir.LOAD(ir.Ld, ir.R(3), ir.R(2), 0),
			ir.ALUI(ir.Add, ir.R(8), ir.R(8), 1),
			ir.BRI(ir.Blt, ir.R(8), 100, "loop"),
		)
		p.AddBlock("done", ir.JSR("putint", ir.R(3)), ir.HALT())
		p.Layout()
		m := mem.New()
		m.Map("d", 0x1000, 8)
		return p, m
	}
	md := machine.Base(8, machine.Sentinel)
	p1, m1 := build()
	plain, err := Run(p1, md, m1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, m2 := build()
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	traced, err := Run(p2, md, m2, Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != traced.Cycles || plain.Instrs != traced.Instrs ||
		plain.Stalls != traced.Stalls || plain.MemSum != traced.MemSum {
		t.Errorf("traced run differs: %+v vs %+v", plain, traced)
	}
	if plain.Stats != traced.Stats {
		t.Errorf("traced stats differ:\n%v\nvs\n%v", plain.Stats, traced.Stats)
	}
}
