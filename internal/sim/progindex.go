package sim

import (
	"sync/atomic"

	"sentinel/internal/ir"
	"sentinel/internal/prog"
)

// progIndexBuilds counts ProgIndex constructions; tests assert that Run
// builds at most one index per program regardless of how many control
// transfers or recoveries the run takes.
var progIndexBuilds atomic.Int64

// pos is the (block, instruction) coordinate of a PC.
type pos struct{ block, idx int32 }

// ProgIndex is a dense PC-indexed acceleration structure for Run: per-PC
// (block, instruction) positions for recovery restarts, and per-PC branch
// target block indices so a taken transfer does not pay prog.BlockIndex's
// linear label scan on every redirect. Build one with NewProgIndex and pass
// it via Options.Index to amortise the construction across the many runs of
// a single scheduled program (Run otherwise builds its own, once, up front).
type ProgIndex struct {
	p *prog.Program

	// pos maps PC -> position when the program's PCs are the dense range
	// 0..n-1 (the invariant prog.Layout establishes); posMap is the fallback
	// for programs with gaps or duplicates.
	pos    []pos
	posMap map[int]pos

	// targetBlock maps PC -> block index of that instruction's Target label,
	// or -1 (no target, unknown label, or runtime routine).
	targetBlock []int32

	byLabel map[string]int32

	// Branch-history footprint: every conditional branch gets a dense id so
	// predictor tables index by a small integer instead of hashing PCs, and
	// its static (backward-taken/forward-not-taken) prediction is resolved
	// at build time. branchID is PC-indexed in the dense layout; branchIDMap
	// is the sparse fallback. staticTaken is indexed by branch id.
	branchID    []int32
	branchIDMap map[int]int32
	staticTaken []bool
}

// NumBranches reports the number of static conditional branches indexed.
func (ix *ProgIndex) NumBranches() int { return len(ix.staticTaken) }

// branchOf returns the dense branch id of the conditional branch at pc, or
// -1 when pc holds no indexed branch.
func (ix *ProgIndex) branchOf(pc int) int32 {
	if ix.branchID != nil {
		if pc < 0 || pc >= len(ix.branchID) {
			return -1
		}
		return ix.branchID[pc]
	}
	if id, ok := ix.branchIDMap[pc]; ok {
		return id
	}
	return -1
}

// StaticPrediction reports the backward-taken/forward-not-taken prediction
// of branch id b: taken iff the branch's target block does not lie after
// the branch in layout order (loop back-edges and self-loops predict
// taken; unresolved targets predict not-taken).
func (ix *ProgIndex) StaticPrediction(b int32) bool {
	return b >= 0 && int(b) < len(ix.staticTaken) && ix.staticTaken[b]
}

// NewProgIndex builds the index for a laid-out program. The index is valid
// until the program's blocks, instructions or labels change.
func NewProgIndex(p *prog.Program) *ProgIndex {
	progIndexBuilds.Add(1)
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Instrs)
	}
	ix := &ProgIndex{p: p, byLabel: make(map[string]int32, len(p.Blocks))}
	for bi, b := range p.Blocks {
		if _, dup := ix.byLabel[b.Label]; !dup {
			ix.byLabel[b.Label] = int32(bi)
		}
	}

	dense := true
	seen := make([]bool, n)
	for _, b := range p.Blocks {
		for _, in := range b.Instrs {
			if in.PC < 0 || in.PC >= n || seen[in.PC] {
				dense = false
				break
			}
			seen[in.PC] = true
		}
		if !dense {
			break
		}
	}

	if dense {
		ix.pos = make([]pos, n)
		ix.targetBlock = make([]int32, n)
		ix.branchID = make([]int32, n)
		for i := range ix.branchID {
			ix.branchID[i] = -1
		}
	} else {
		ix.posMap = make(map[int]pos, n)
		ix.branchIDMap = make(map[int]int32)
	}
	for bi, b := range p.Blocks {
		for ii, in := range b.Instrs {
			tb := int32(-1)
			if in.Target != "" {
				if t, ok := ix.byLabel[in.Target]; ok {
					tb = t
				}
			}
			if dense {
				ix.pos[in.PC] = pos{int32(bi), int32(ii)}
				ix.targetBlock[in.PC] = tb
			} else {
				ix.posMap[in.PC] = pos{int32(bi), int32(ii)}
			}
			if ir.IsBranch(in.Op) {
				id := int32(len(ix.staticTaken))
				if dense {
					ix.branchID[in.PC] = id
				} else {
					ix.branchIDMap[in.PC] = id
				}
				// Backward (target block at or before this one in layout
				// order) predicts taken; forward or unresolved, not-taken.
				ix.staticTaken = append(ix.staticTaken, tb >= 0 && tb <= int32(bi))
			}
		}
	}
	return ix
}

// lookup returns the position of pc, for recovery restarts.
func (ix *ProgIndex) lookup(pc int) (pos, bool) {
	if ix.pos != nil {
		if pc < 0 || pc >= len(ix.pos) {
			return pos{}, false
		}
		return ix.pos[pc], true
	}
	rp, ok := ix.posMap[pc]
	return rp, ok
}

// blockOf resolves a control transfer: the block index of the label targeted
// by the instruction at pc, or -1 when the label names no block (matching
// prog.BlockIndex). The per-PC precomputation covers the scheduled-program
// hot path; the label map covers everything else.
func (ix *ProgIndex) blockOf(pc int, label string) int {
	if ix.targetBlock != nil && pc >= 0 && pc < len(ix.targetBlock) {
		if tb := ix.targetBlock[pc]; tb >= 0 {
			return int(tb)
		}
	}
	if bi, ok := ix.byLabel[label]; ok {
		return int(bi)
	}
	return -1
}
