package sim

// TAGE: a TAgged GEometric-history-length branch predictor. The static
// (backward-taken) prior serves as the base prediction; four tagged tables indexed by a hash
// of the branch id and a geometrically growing slice of global history
// {5, 11, 22, 44} provide the context-sensitive predictions. The component
// with the longest matching history wins (the provider); the next match (or
// the base) is the alternate. On a mispredict a new entry is allocated in a
// longer-history table whose victim's useful counter is zero; useful
// counters are trained when provider and alternate disagree, and aged
// periodically so stale entries become reclaimable.
//
// Everything here is deterministic — table sizes are fixed, allocation
// picks the shortest eligible table, there is no randomness — and
// allocation-free after construction: Predict and Update touch only the
// arrays built by newTAGE, so a predictor value can sit in the simulator's
// per-run arena and be Reset between runs.
const (
	tageTables    = 4
	tageLogSize   = 9 // 2^9 entries per tagged table
	tageSize      = 1 << tageLogSize
	tageTagBits   = 9
	tageTagMask   = (1 << tageTagBits) - 1
	tageCtrMax    = 3 // 3-bit signed counter: -4..3, taken iff >= 0
	tageCtrMin    = -4
	tageUMax      = 3       // 2-bit useful counter
	tageAgePeriod = 1 << 18 // updates between useful-counter agings
	tageMetaUse   = 2       // chooser threshold: trust the chain at meta >= this
	tageMetaMax   = 7
	tageMetaMin   = -8
)

// tageHistLens are the geometric global-history lengths of the tagged
// tables, shortest first.
var tageHistLens = [tageTables]int{5, 11, 22, 44}

type tageEntry struct {
	tag uint16
	ctr int8
	u   uint8
}

type tage struct {
	ix *ProgIndex

	// meta is the per-branch chooser between the static prior and the
	// dynamic tagged chain: +1 each time the chain is right where static is
	// wrong, -2 for the reverse, clamped to [-8, 7]. The chain's prediction
	// is used only at meta >= 2 — it must demonstrate a net advantage on
	// this branch twice before being trusted, and one betrayal costs two
	// demonstrations. Branch ids are dense per program, so the chooser is
	// exact (no aliasing), which is what makes the >=-static workload
	// property hold: a branch the chain cannot beat static on stays pinned
	// to the static prediction.
	meta []int8

	tables  [tageTables][tageSize]tageEntry
	hist    uint64 // global direction history, newest outcome in bit 0
	updates int64  // dynamic branches seen, for useful-counter aging

	// Prediction context carried from Predict to the matching Update;
	// recomputed defensively if the branch ids disagree.
	pBid      int32
	pProvider int  // provider table, -1 = base
	pAlt      int  // alternate table, -1 = base
	pPred     bool // final output: pDyn or the static prior, per meta
	pDyn      bool // the tagged chain's own prediction
	pAltPred  bool
	pIdx      [tageTables]uint32
	pTag      [tageTables]uint16
}

func newTAGE(ix *ProgIndex) *tage {
	t := &tage{ix: ix, meta: make([]int8, ix.NumBranches())}
	t.Reset()
	return t
}

func (t *tage) Reset() {
	clear(t.meta)
	for i := range t.tables {
		clear(t.tables[i][:])
	}
	t.hist = 0
	t.updates = 0
	t.pBid = -1
}

// foldHist compresses the low histLen bits of h into bits bits by XOR
// folding, the classic TAGE index/tag compression.
func foldHist(h uint64, histLen, bits int) uint32 {
	h &= (uint64(1) << uint(histLen)) - 1
	mask := (uint32(1) << uint(bits)) - 1
	var f uint32
	for histLen > 0 {
		f ^= uint32(h) & mask
		h >>= uint(bits)
		histLen -= bits
	}
	return f
}

// basePred is the base component: the static (backward-taken/forward-not-
// taken) prior itself, not a learnable bimodal. Anchoring the base makes
// TAGE's accuracy floor the static frontend's — a tagged entry must earn
// the right to override it — which is what the >=-static workload property
// pins.
func (t *tage) basePred(bid int32) bool { return t.ix.StaticPrediction(bid) }

// lookup fills the prediction context for bid: per-table indices and tags,
// provider/alternate components and their predictions.
func (t *tage) lookup(bid int32) {
	t.pBid = bid
	t.pProvider, t.pAlt = -1, -1
	for i := 0; i < tageTables; i++ {
		l := tageHistLens[i]
		ub := uint32(bid)
		t.pIdx[i] = (ub ^ ub>>tageLogSize ^ foldHist(t.hist, l, tageLogSize) ^ uint32(i)) & (tageSize - 1)
		t.pTag[i] = uint16((ub ^ foldHist(t.hist, l, tageTagBits) ^ foldHist(t.hist, l, tageTagBits-1)<<1) & tageTagMask)
	}
	for i := tageTables - 1; i >= 0; i-- {
		if t.tables[i][t.pIdx[i]].tag == t.pTag[i] {
			if t.pProvider < 0 {
				t.pProvider = i
			} else {
				t.pAlt = i
				break
			}
		}
	}
	t.pAltPred = t.basePred(bid)
	if t.pAlt >= 0 {
		t.pAltPred = t.tables[t.pAlt][t.pIdx[t.pAlt]].ctr >= 0
	}
	t.pDyn = t.pAltPred
	if t.pProvider >= 0 {
		e := t.tables[t.pProvider][t.pIdx[t.pProvider]]
		// Use-alt-on-newly-allocated: a weak entry that has never been
		// useful is still in its learning transient (or an aliasing victim),
		// so the alternate decides until the entry proves itself.
		if e.u > 0 || !weakCtr(e.ctr) {
			t.pDyn = e.ctr >= 0
		}
	}
	// The meta chooser arbitrates between the chain and the static prior.
	t.pPred = t.pDyn
	if t.meta[bid] < tageMetaUse {
		t.pPred = t.basePred(bid)
	}
}

// weakCtr reports a counter still at one of the two just-allocated values.
func weakCtr(c int8) bool { return c == 0 || c == -1 }

func (t *tage) Predict(bid int32) bool {
	t.lookup(bid)
	return t.pPred
}

func satUpdate(ctr int8, taken bool) int8 {
	if taken {
		if ctr < tageCtrMax {
			ctr++
		}
	} else if ctr > tageCtrMin {
		ctr--
	}
	return ctr
}

func (t *tage) Update(bid int32, taken bool) {
	if t.pBid != bid {
		t.lookup(bid) // defensive: Update without a matching Predict
	}
	// Train the meta chooser on every disagreement between the chain and
	// the static prior, whichever side was actually used.
	if sp := t.basePred(bid); t.pDyn != sp {
		m := t.meta[bid]
		if t.pDyn == taken {
			if m < tageMetaMax {
				m++
			}
		} else {
			m -= 2
			if m < tageMetaMin {
				m = tageMetaMin
			}
		}
		t.meta[bid] = m
	}

	if t.pProvider >= 0 {
		e := &t.tables[t.pProvider][t.pIdx[t.pProvider]]
		// The useful counter tracks predictions the provider's own counter
		// got right where the alternate would have been wrong — its own
		// prediction, not the final output, which use-alt-on-newly-allocated
		// may have overridden with the alternate.
		provPred := e.ctr >= 0
		if provPred != t.pAltPred {
			if provPred == taken {
				if e.u < tageUMax {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
		// A never-useful provider also trains its alternate: while the
		// alternate is deciding (the u > 0 gate above), it must keep
		// learning, or a stale entry would starve the component below.
		if e.u == 0 && t.pAlt >= 0 {
			a := &t.tables[t.pAlt][t.pIdx[t.pAlt]]
			a.ctr = satUpdate(a.ctr, taken)
		}
		e.ctr = satUpdate(e.ctr, taken)
	}

	// Allocation on a chain mispredict (the chain keeps learning even while
	// the chooser routes around it): claim an entry with a zero useful
	// counter in the shortest table with longer history than the provider;
	// if every candidate is defended, age them all so the next mispredict
	// succeeds.
	if t.pDyn != taken && t.pProvider < tageTables-1 {
		allocated := false
		for i := t.pProvider + 1; i < tageTables; i++ {
			e := &t.tables[i][t.pIdx[i]]
			if e.u == 0 {
				e.tag = t.pTag[i]
				if taken {
					e.ctr = 0 // weakly taken
				} else {
					e.ctr = -1 // weakly not-taken
				}
				allocated = true
				break
			}
		}
		if !allocated {
			for i := t.pProvider + 1; i < tageTables; i++ {
				e := &t.tables[i][t.pIdx[i]]
				if e.u > 0 {
					e.u--
				}
			}
		}
	}

	// Periodic aging halves every useful counter so entries that stopped
	// earning their keep eventually become allocation victims.
	t.updates++
	if t.updates%tageAgePeriod == 0 {
		for i := range t.tables {
			for j := range t.tables[i] {
				t.tables[i][j].u >>= 1
			}
		}
	}

	t.hist = t.hist<<1 | b2u(taken)
	t.pBid = -1
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
