package sim

import (
	"testing"

	"sentinel/internal/ir"
	"sentinel/internal/machine"
	"sentinel/internal/mem"
	"sentinel/internal/prog"
)

// runFigure1 executes the Figure 1(b) schedule with an entry block that sets
// r2 (B's base and the branch condition) and r4 (C's base):
//
//	B[1]: r1 = mem(r2+0)   <spec>
//	C[1]: r3 = mem(r4+0)   <spec>
//	D[2]: r6 = r1+1        <spec>   (dest renamed from r4 to keep C's base)
//	E[2]: r5 = r3*9        <spec>
//	A[3]: if (r2==0) goto L1
//	F[3]: mem(r2+8) = r6
//	G[3]: check_exception(r5)
//
// We deviate from the paper's fragment in two harmless ways: D writes r6
// (the paper's anti-dependence on r4 is irrelevant to exception detection),
// and F stores at offset 8 so it does not overlap B's load.
func runFigure1(t *testing.T, r2 int64, handler Handler) (*Result, error) {
	t.Helper()
	mk := func(in *ir.Instr, cyc, slot int, spec bool) *ir.Instr {
		in.Cycle, in.Slot, in.Spec = cyc, slot, spec
		return in
	}
	p := prog.NewProgram()
	p.AddBlock("entry",
		mk(ir.LI(ir.R(2), r2), 0, 0, false),
		mk(ir.LI(ir.R(4), 0x2000), 0, 1, false),
	)
	p.AddBlock("main",
		mk(ir.LOAD(ir.Ld, ir.R(1), ir.R(2), 0), 0, 0, true),
		mk(ir.LOAD(ir.Ld, ir.R(3), ir.R(4), 0), 0, 1, true),
		mk(ir.ALUI(ir.Add, ir.R(6), ir.R(1), 1), 2, 0, true),
		mk(ir.ALUI(ir.Mul, ir.R(5), ir.R(3), 9), 2, 1, true),
		mk(ir.BRI(ir.Beq, ir.R(2), 0, "L1"), 3, 0, false),
		mk(ir.STORE(ir.St, ir.R(2), 8, ir.R(6)), 3, 1, false),
		mk(ir.CHECK(ir.R(5)), 3, 2, false),
		mk(ir.HALT(), 4, 0, false),
	)
	p.AddBlock("L1", ir.JSR("putint", ir.R(3)), ir.HALT())
	p.Layout()
	m := mem.New()
	m.Map("ok", 0x2000, 64)
	m.Write(0x2000, 8, 5)
	if r2 >= 0x2000 && r2 < 0x2040 {
		// valid case: nothing else needed
	}
	return Run(p, machine.Base(8, machine.Sentinel), m, Options{Handler: handler})
}

func TestFigure2SignalsOnFallThrough(t *testing.T) {
	// r2 = unmapped and nonzero: B faults speculatively, branch not taken,
	// F (the first non-speculative use of the tagged chain) signals and
	// reports B's PC.
	_, err := runFigure1(t, 0x9000, nil)
	exc, ok := Unhandled(err)
	if !ok {
		t.Fatalf("err = %v, want exception abort", err)
	}
	// B is the first instruction of block "main" (entry has 2 instrs).
	if exc.ReportedPC != 2 {
		t.Errorf("reported pc = %d, want 2 (instruction B)", exc.ReportedPC)
	}
	if exc.ByPC != 7 {
		t.Errorf("signalled by pc = %d, want 7 (instruction F)", exc.ByPC)
	}
	if exc.Kind != ir.ExcAccessViolation {
		t.Errorf("kind = %v", exc.Kind)
	}
}

func TestFigure2IgnoredOnTakenBranch(t *testing.T) {
	// r2 = 0: B faults speculatively, but the branch IS taken, so B should
	// not have executed: the exception must be completely ignored (§3.4).
	res, err := runFigure1(t, 0, nil)
	if err != nil {
		t.Fatalf("exception must be ignored on the taken path: %v", err)
	}
	if len(res.Out) != 1 || res.Out[0] != 5 {
		t.Errorf("out = %v, want [5] (r3 loaded by C)", res.Out)
	}
	if len(res.Exceptions) != 0 {
		t.Errorf("no exception may be recorded: %v", res.Exceptions)
	}
}

func TestCheckSignalsForUnprotected(t *testing.T) {
	// Make E the excepting chain's end: C faults (r4 unmapped); E (spec)
	// propagates; G (check) signals reporting C.
	mk := func(in *ir.Instr, cyc, slot int, spec bool) *ir.Instr {
		in.Cycle, in.Slot, in.Spec = cyc, slot, spec
		return in
	}
	p := prog.NewProgram()
	p.AddBlock("entry",
		mk(ir.LI(ir.R(2), 0x2000), 0, 0, false),
		mk(ir.LI(ir.R(4), 0x9000), 0, 1, false), // C's base unmapped
	)
	p.AddBlock("main",
		mk(ir.LOAD(ir.Ld, ir.R(1), ir.R(2), 0), 0, 0, true),  // B ok
		mk(ir.LOAD(ir.Ld, ir.R(3), ir.R(4), 0), 0, 1, true),  // C faults
		mk(ir.ALUI(ir.Add, ir.R(6), ir.R(1), 1), 2, 0, true), // D
		mk(ir.ALUI(ir.Mul, ir.R(5), ir.R(3), 9), 2, 1, true), // E propagates
		mk(ir.BRI(ir.Beq, ir.R(2), 0, "L1"), 3, 0, false),
		mk(ir.STORE(ir.St, ir.R(2), 8, ir.R(6)), 3, 1, false), // F clean
		mk(ir.CHECK(ir.R(5)), 3, 2, false),                    // G signals
		mk(ir.HALT(), 4, 0, false),
	)
	p.AddBlock("L1", ir.HALT())
	p.Layout()
	m := mem.New()
	m.Map("ok", 0x2000, 64)
	_, err := Run(p, machine.Base(8, machine.Sentinel), m, Options{})
	exc, ok := Unhandled(err)
	if !ok {
		t.Fatalf("err = %v", err)
	}
	if exc.ReportedPC != 3 || exc.ByPC != 8 {
		t.Errorf("reported pc %d by %d, want C (3) reported by G (8)", exc.ReportedPC, exc.ByPC)
	}
}

// TestRecoveryRetry: a speculative load page-faults; the handler maps the
// page in and asks for recovery; execution restarts at the load and the
// program completes with the correct result (§3.7).
func TestRecoveryRetry(t *testing.T) {
	mk := func(in *ir.Instr, cyc, slot int, spec bool) *ir.Instr {
		in.Cycle, in.Slot, in.Spec = cyc, slot, spec
		return in
	}
	p := prog.NewProgram()
	p.AddBlock("entry",
		mk(ir.LI(ir.R(2), 0x3000), 0, 0, false),
	)
	p.AddBlock("main",
		mk(ir.LOAD(ir.Ld, ir.R(1), ir.R(2), 0), 0, 0, true),  // spec load, page fault
		mk(ir.ALUI(ir.Add, ir.R(3), ir.R(1), 1), 2, 0, true), // propagates
		mk(ir.BRI(ir.Beq, ir.R(2), 0, "L1"), 3, 0, false),
		mk(ir.JSR("putint", ir.R(3)), 3, 1, false), // sentinel: uses r3
		mk(ir.HALT(), 4, 0, false),
	)
	p.AddBlock("L1", ir.HALT())
	p.Layout()
	m := mem.New()
	seg := m.Map("heap", 0x3000, 16)
	m.Write(0x3000, 8, 41)
	seg.Present = false

	handled := 0
	res, err := Run(p, machine.Base(8, machine.Sentinel), m, Options{
		Handler: func(exc Exception, mach *Machine) bool {
			handled++
			if exc.Kind != ir.ExcPageFault {
				t.Errorf("kind = %v", exc.Kind)
			}
			seg.Present = true
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if handled != 1 {
		t.Errorf("handler calls = %d", handled)
	}
	if len(res.Out) != 1 || res.Out[0] != 42 {
		t.Errorf("out = %v, want [42]", res.Out)
	}
	if len(res.Exceptions) != 1 || res.Exceptions[0].ReportedPC != 1 {
		t.Errorf("exceptions = %v, want reported pc 1 (the load)", res.Exceptions)
	}
}

// TestGeneralPercolationCorrupts: the same faulting speculative load under
// general percolation writes garbage and the program SILENTLY completes with
// a wrong result — the §2.4 failure mode sentinel scheduling fixes.
func TestGeneralPercolationCorrupts(t *testing.T) {
	mk := func(in *ir.Instr, cyc, slot int, spec bool) *ir.Instr {
		in.Cycle, in.Slot, in.Spec = cyc, slot, spec
		return in
	}
	build := func() (*prog.Program, *mem.Memory) {
		p := prog.NewProgram()
		p.AddBlock("entry", mk(ir.LI(ir.R(2), 0x9000), 0, 0, false)) // unmapped!
		p.AddBlock("main",
			mk(ir.LOAD(ir.Ld, ir.R(1), ir.R(2), 0), 0, 0, true),
			mk(ir.ALUI(ir.Add, ir.R(3), ir.R(1), 1), 2, 0, true),
			mk(ir.BRI(ir.Beq, ir.R(2), 0, "L1"), 3, 0, false),
			mk(ir.JSR("putint", ir.R(3)), 3, 1, false),
			mk(ir.HALT(), 4, 0, false),
		)
		p.AddBlock("L1", ir.HALT())
		p.Layout()
		return p, mem.New()
	}

	// General percolation: completes, wrong value, no exception.
	p, m := build()
	res, err := Run(p, machine.Base(8, machine.General), m, Options{})
	if err != nil {
		t.Fatalf("general percolation must not signal: %v", err)
	}
	if len(res.Out) != 1 || res.Out[0] != GarbageValue+1 {
		t.Errorf("out = %v, want garbage+1 (%d)", res.Out, GarbageValue+1)
	}

	// Sentinel: the same program signals with the exact cause.
	p2, m2 := build()
	_, err = Run(p2, machine.Base(8, machine.Sentinel), m2, Options{})
	exc, ok := Unhandled(err)
	if !ok || exc.ReportedPC != 1 {
		t.Fatalf("sentinel must report the load (pc 1): %v", err)
	}
}

// TestInterlockStalls: a load's consumer scheduled too early must be stalled
// by the scoreboard, never given a stale value.
func TestInterlockStalls(t *testing.T) {
	mk := func(in *ir.Instr, cyc, slot int) *ir.Instr {
		in.Cycle, in.Slot = cyc, slot
		return in
	}
	p := prog.NewProgram()
	p.AddBlock("main",
		mk(ir.LI(ir.R(2), 0x1000), 0, 0),
		mk(ir.LOAD(ir.Ld, ir.R(1), ir.R(2), 0), 1, 0),
		// Mis-scheduled: uses r1 one cycle too early (load latency 2).
		mk(ir.ALUI(ir.Add, ir.R(3), ir.R(1), 0), 2, 0),
		mk(ir.JSR("putint", ir.R(3)), 3, 0),
		mk(ir.HALT(), 4, 0),
	)
	p.Layout()
	m := mem.New()
	m.Map("d", 0x1000, 8)
	m.Write(0x1000, 8, 99)
	res, err := Run(p, machine.Base(1, machine.Restricted), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out[0] != 99 {
		t.Errorf("out = %v; interlock must deliver the loaded value", res.Out)
	}
	if res.Stalls == 0 {
		t.Error("expected at least one interlock stall")
	}
}

// TestTakenBranchNullifiesYoungerSlots: instructions in the same cycle after
// a taken branch must not execute.
func TestTakenBranchNullifiesYoungerSlots(t *testing.T) {
	mk := func(in *ir.Instr, cyc, slot int) *ir.Instr {
		in.Cycle, in.Slot = cyc, slot
		return in
	}
	p := prog.NewProgram()
	p.AddBlock("main",
		mk(ir.LI(ir.R(1), 1), 0, 0),
		mk(ir.BRI(ir.Bne, ir.R(1), 0, "target"), 1, 0),
		mk(ir.LI(ir.R(5), 123), 1, 1), // same cycle, younger slot: nullified
		mk(ir.HALT(), 2, 0),
	)
	p.AddBlock("target",
		ir.JSR("putint", ir.R(5)),
		ir.HALT(),
	)
	p.Layout()
	res, err := Run(p, machine.Base(4, machine.Restricted), mem.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out[0] != 0 {
		t.Errorf("r5 = %d leaked from a nullified slot", res.Out[0])
	}
}

// TestTakenBranchCancelsProbationary: a taken conditional branch is a
// misprediction and must cancel unconfirmed store-buffer entries.
func TestTakenBranchCancelsProbationary(t *testing.T) {
	mk := func(in *ir.Instr, cyc, slot int, spec bool) *ir.Instr {
		in.Cycle, in.Slot, in.Spec = cyc, slot, spec
		return in
	}
	p := prog.NewProgram()
	p.AddBlock("main",
		mk(ir.LI(ir.R(2), 0x1000), 0, 0, false),
		mk(ir.LI(ir.R(5), 55), 0, 1, false),
		// Speculative store hoisted above the branch.
		mk(ir.STORE(ir.St, ir.R(2), 0, ir.R(5)), 1, 0, true),
		mk(ir.BRI(ir.Bne, ir.R(5), 0, "skip"), 2, 0, false), // taken
		mk(ir.CONFIRM(0), 2, 1, false),                      // nullified
		mk(ir.HALT(), 3, 0, false),
	)
	p.AddBlock("skip",
		ir.LOAD(ir.Ld, ir.R(6), ir.R(2), 0),
		ir.JSR("putint", ir.R(6)),
		ir.HALT(),
	)
	p.Layout()
	m := mem.New()
	m.Map("d", 0x1000, 8)
	res, err := Run(p, machine.Base(4, machine.SentinelStores), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out[0] != 0 {
		t.Errorf("memory = %d: cancelled probationary store leaked", res.Out[0])
	}
}

// TestStoreForwarding: a load must see an older buffered store (confirmed or
// clean probationary), youngest winning.
func TestStoreForwarding(t *testing.T) {
	mk := func(in *ir.Instr, cyc int, spec bool) *ir.Instr {
		in.Cycle, in.Slot, in.Spec = cyc, 0, spec
		return in
	}
	p := prog.NewProgram()
	p.AddBlock("main",
		mk(ir.LI(ir.R(2), 0x1000), 0, false),
		mk(ir.LI(ir.R(5), 11), 1, false),
		mk(ir.STORE(ir.St, ir.R(2), 0, ir.R(5)), 2, false), // confirmed
		mk(ir.LI(ir.R(5), 22), 3, false),
		mk(ir.STORE(ir.St, ir.R(2), 0, ir.R(5)), 4, true), // probationary, same addr
		mk(ir.LOAD(ir.Ld, ir.R(6), ir.R(2), 0), 5, false), // must see 22
		mk(ir.CONFIRM(0), 6, false),
		mk(ir.JSR("putint", ir.R(6)), 8, false),
		mk(ir.HALT(), 9, false),
	)
	p.Layout()
	m := mem.New()
	m.Map("d", 0x1000, 8)
	res, err := Run(p, machine.Base(1, machine.SentinelStores), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out[0] != 22 {
		t.Errorf("forwarded value = %d, want 22 (youngest store wins)", res.Out[0])
	}
	if v, _ := m.Read(0x1000, 8); v != 22 {
		t.Errorf("final memory = %d, want 22", v)
	}
}

// TestSaveRestoreTags: SaveTR/RestTR preserve the exception tag across a
// spill without signalling (§3.2).
func TestSaveRestoreTags(t *testing.T) {
	mk := func(in *ir.Instr, cyc int, spec bool) *ir.Instr {
		in.Cycle, in.Slot, in.Spec = cyc, 0, spec
		return in
	}
	sv := ir.New(ir.SaveTR)
	sv.Src1, sv.Imm, sv.Src2 = ir.R(10), 0, ir.R(1)
	rs := ir.New(ir.RestTR)
	rs.Dest, rs.Src1, rs.Imm = ir.R(4), ir.R(10), 0
	p := prog.NewProgram()
	p.AddBlock("main",
		mk(ir.LI(ir.R(2), 0x9000), 0, false),               // unmapped
		mk(ir.LI(ir.R(10), 0x1000), 0, false),              // spill slot
		mk(ir.LOAD(ir.Ld, ir.R(1), ir.R(2), 0), 1, true),   // spec fault -> tag r1
		mk(sv, 4, false),                                   // spill r1 WITHOUT signalling
		mk(rs, 5, false),                                   // reload into r4, tag intact
		mk(ir.ALUI(ir.Add, ir.R(6), ir.R(4), 0), 7, false), // sentinel: signals
		mk(ir.HALT(), 8, false),
	)
	p.Layout()
	m := mem.New()
	m.Map("stack", 0x1000, 16)
	_, err := Run(p, machine.Base(1, machine.Sentinel), m, Options{})
	exc, ok := Unhandled(err)
	if !ok {
		t.Fatalf("err = %v, want signal from the reloaded tag", err)
	}
	if exc.ReportedPC != 2 {
		t.Errorf("reported pc = %d, want 2 (the speculative load)", exc.ReportedPC)
	}
	if exc.ByPC != 5 {
		t.Errorf("signalled by %d, want 5 (the add after restore)", exc.ByPC)
	}
}

// TestUnknownRuntimeRoutine: calling an undefined routine is an error.
func TestUnknownRuntimeRoutine(t *testing.T) {
	p := prog.NewProgram()
	p.AddBlock("main", ir.JSR("frobnicate", ir.R(1)), ir.HALT())
	p.Layout()
	if _, err := Run(p, machine.Base(1, machine.Restricted), mem.New(), Options{}); err == nil {
		t.Fatal("unknown runtime routine must error")
	}
}

// TestMultipleExceptionsAcrossBlocks (§3.6): exceptions in different basic
// blocks are detected in proper order, because every speculative
// instruction's sentinel stays in its home block, which is checked before
// the block is exited.
func TestMultipleExceptionsAcrossBlocks(t *testing.T) {
	mk := func(in *ir.Instr, cyc, slot int, spec bool) *ir.Instr {
		in.Cycle, in.Slot, in.Spec = cyc, slot, spec
		return in
	}
	p := prog.NewProgram()
	p.AddBlock("entry",
		mk(ir.LI(ir.R(2), 0x9000), 0, 0, false), // both bases unmapped
		mk(ir.LI(ir.R(4), 0x9100), 0, 1, false),
	)
	// Home block 1: speculative load via r2, sentinel = add r3.
	// Home block 2 (after the branch): speculative load via r4, sentinel =
	// add r6. Both loads fault; home block 1's must be reported first.
	p.AddBlock("main",
		mk(ir.LOAD(ir.Ld, ir.R(1), ir.R(2), 0), 0, 0, true),
		mk(ir.LOAD(ir.Ld, ir.R(5), ir.R(4), 0), 0, 1, true),
		mk(ir.ALUI(ir.Add, ir.R(3), ir.R(1), 1), 2, 0, false), // sentinel 1
		mk(ir.BRI(ir.Beq, ir.R(0), 1, "L1"), 2, 1, false),     // never taken
		mk(ir.ALUI(ir.Add, ir.R(6), ir.R(5), 1), 3, 0, false), // sentinel 2
		mk(ir.HALT(), 4, 0, false),
	)
	p.AddBlock("L1", ir.HALT())
	p.Layout()
	_, err := Run(p, machine.Base(8, machine.Sentinel), mem.New(), Options{})
	exc, ok := Unhandled(err)
	if !ok {
		t.Fatalf("err = %v", err)
	}
	// The FIRST home block's exception (load at pc 2) must be the one
	// signalled, even though the second load also faulted earlier in time.
	if exc.ReportedPC != 2 {
		t.Errorf("reported pc = %d, want 2 (home-block order preserved)", exc.ReportedPC)
	}
}

// TestStoreSepDeadlockDetected: a hand-mis-scheduled program violating the
// §4.2 separation constraint must be detected by the simulator, not hang.
func TestStoreSepDeadlockDetected(t *testing.T) {
	mk := func(in *ir.Instr, cyc, slot int, spec bool) *ir.Instr {
		in.Cycle, in.Slot, in.Spec = cyc, slot, spec
		return in
	}
	p := prog.NewProgram()
	instrs := []*ir.Instr{
		mk(ir.LI(ir.R(2), 0x1000), 0, 0, false),
		mk(ir.LI(ir.R(5), 1), 0, 1, false),
	}
	p.AddBlock("entry", instrs...)
	var main []*ir.Instr
	// One probationary store followed by enough stores to overflow a
	// 2-entry buffer before any confirm.
	st := ir.STORE(ir.St, ir.R(2), 0, ir.R(5))
	main = append(main, mk(st, 0, 0, true))
	for i := 0; i < 3; i++ {
		main = append(main, mk(ir.STORE(ir.St, ir.R(2), int64(8+8*i), ir.R(5)), i+1, 0, false))
	}
	main = append(main,
		mk(ir.BRI(ir.Beq, ir.R(0), 1, "L1"), 5, 0, false),
		mk(ir.CONFIRM(3), 5, 1, false),
		mk(ir.HALT(), 6, 0, false))
	p.AddBlock("main", main...)
	p.AddBlock("L1", ir.HALT())
	p.Layout()
	md := machine.Base(4, machine.SentinelStores)
	md.StoreBuffer = 2
	m := mem.New()
	m.Map("d", 0x1000, 64)
	_, err := Run(p, md, m, Options{})
	if err == nil {
		t.Fatal("expected store-buffer deadlock detection")
	}
}
