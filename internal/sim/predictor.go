package sim

import (
	"sentinel/internal/machine"
)

// Predictor is the branch-direction predictor consulted by the simulator's
// frontend for every conditional branch. Branches are identified by the
// dense per-program id assigned by ProgIndex (branchOf), so implementations
// index flat tables instead of hashing PCs. Implementations must be
// deterministic: prediction and update order fully determine state.
//
// The perfect frontend uses no Predictor at all (Run keeps today's oracle
// timing when machine.Desc.Predictor is PredPerfect), so a nil Predictor
// never reaches the inner loop.
type Predictor interface {
	// Predict returns the predicted direction of branch bid.
	Predict(bid int32) bool
	// Update trains the predictor with the branch's resolved direction.
	// Called exactly once per dynamic branch, after Predict.
	Update(bid int32, taken bool)
	// Reset restores the initial (post-construction) state so one
	// predictor value can be reused across runs without reallocation.
	Reset()
}

// NewPredictor builds the predictor for md's frontend, sized for the
// program indexed by ix. It returns nil for PredPerfect: the oracle
// frontend has no predictor state and Run never consults one.
func NewPredictor(md machine.Desc, ix *ProgIndex) Predictor {
	switch md.Predictor {
	case machine.PredStatic:
		return &staticPredictor{ix: ix}
	case machine.PredTAGE:
		return newTAGE(ix)
	default:
		return nil
	}
}

// staticPredictor is backward-taken/forward-not-taken. The direction of
// every branch is resolved at ProgIndex build time, so the predictor is
// stateless — Update and Reset are no-ops.
type staticPredictor struct {
	ix *ProgIndex
}

func (s *staticPredictor) Predict(bid int32) bool       { return s.ix.StaticPrediction(bid) }
func (s *staticPredictor) Update(bid int32, taken bool) {}
func (s *staticPredictor) Reset()                       {}
