package sim

import (
	"fmt"
	"math"

	"sentinel/internal/ir"
	"sentinel/internal/machine"
)

// event is the outcome of executing one instruction.
type event struct {
	signalled bool
	reportPC  int
	kind      ir.ExcKind
	taken     bool
	target    string
	stall     int64 // extra cycles lost to store-buffer pressure
}

func signal(reportPC int64, kind ir.ExcKind) event {
	return event{signalled: true, reportPC: int(reportPC), kind: kind}
}

// exec executes one instruction at issue time t, implementing Table 1
// (exception detection with sentinel scheduling) and Table 2 (store-buffer
// insertion).
func (m *Machine) exec(in *ir.Instr, t int64) (event, error) {
	m.pcq.Push(in.PC)
	usesTags := m.md.Model.UsesTags()

	switch in.Op {
	case ir.Nop, ir.Halt:
		return event{}, nil

	case ir.ClearTag:
		m.setTag(in.Dest, Tag{})
		m.setReady(in.Dest, t+1)
		return event{}, nil

	case ir.Check:
		// The explicit sentinel: signals iff its source carries an
		// exception condition; performs no computation (§3.2).
		if usesTags {
			if tg := m.tag(in.Src1); tg.Set {
				return signal(m.Raw(in.Src1), tg.Kind), nil
			}
		}
		return event{}, nil

	case ir.ConfirmSt:
		exc, kind, excPC, err := m.buf.confirm(in.Imm)
		if err != nil {
			return event{}, err
		}
		if exc {
			return signal(excPC, kind), nil
		}
		return event{}, nil

	case ir.Jmp:
		return event{taken: true, target: in.Target}, nil

	case ir.Jsr:
		// Calls are never speculative; a tagged argument register makes the
		// call act as a sentinel.
		if usesTags {
			if tg := m.tag(in.Src1); tg.Set {
				return signal(m.Raw(in.Src1), tg.Kind), nil
			}
		}
		switch in.Target {
		case "putint":
			m.out = append(m.out, m.Int[in.Src1.N])
		default:
			return event{}, fmt.Errorf("sim: unknown runtime routine %q", in.Target)
		}
		return event{}, nil

	case ir.Beq, ir.Bne, ir.Blt, ir.Bge:
		// Branches are never speculative; a tagged source makes the branch
		// the sentinel (Table 1, spec=0 rows).
		if usesTags {
			if r := m.firstTaggedSrc(in); r.Valid() {
				tg := m.tag(r)
				return signal(m.Raw(r), tg.Kind), nil
			}
		}
		b := in.Imm
		if in.Src2.Valid() {
			b = m.Int[in.Src2.N]
		}
		if ir.CondHolds(in.Op, m.Int[in.Src1.N], b) {
			if m.boost != nil {
				m.boost.discard() // misprediction: shadow state dies
			}
			return event{taken: true, target: in.Target}, nil
		}
		if m.boost != nil {
			// Correct prediction: one shadow level commits; a recorded
			// boosted exception signals here with the boosted PC (§2.3).
			if ev := m.commitBoost(); ev.signalled {
				return ev, nil
			}
		}
		return event{}, nil

	case ir.SaveTR:
		// Save data AND exception tag without signalling (§3.2), e.g. for
		// register spill, function call or context switch.
		m.buf.flushConfirmed(m.Mem)
		addr := m.Int[in.Src1.N] + in.Imm
		tg := m.tag(in.Src2)
		var tagByte byte
		if tg.Set {
			tagByte = byte(tg.Kind)
		}
		if f := m.Mem.WriteTagged(addr, uint64(m.Raw(in.Src2)), tagByte); f != nil {
			return signal(int64(in.PC), f.Kind), nil
		}
		return event{}, nil

	case ir.RestTR:
		m.buf.flushConfirmed(m.Mem)
		addr := m.Int[in.Src1.N] + in.Imm
		v, tagByte, f := m.Mem.ReadTagged(addr)
		if f != nil {
			return signal(int64(in.PC), f.Kind), nil
		}
		m.SetRaw(in.Dest, int64(v))
		if tagByte != 0 {
			m.setTag(in.Dest, Tag{Set: true, Kind: ir.ExcKind(tagByte)})
		} else {
			m.setTag(in.Dest, Tag{})
		}
		m.setReady(in.Dest, t+int64(machine.Latency(in.Op)))
		return event{}, nil
	}

	if m.boost != nil && in.Spec {
		if ir.BufferedStore(in.Op) {
			return m.execBoostedStore(in, t)
		}
		return m.execBoosted(in, t)
	}
	if ir.BufferedStore(in.Op) {
		return m.execStore(in, t, usesTags)
	}
	return m.execValue(in, t, usesTags)
}

// execValue implements Table 1 for register-writing instructions.
func (m *Machine) execValue(in *ir.Instr, t int64, usesTags bool) (event, error) {
	var srcTag ir.Reg
	if usesTags {
		srcTag = m.firstTaggedSrc(in)
	}
	lat := int64(machine.Latency(in.Op))

	if in.Spec {
		if srcTag.Valid() {
			// Exception propagation (Table 1, spec=1 src-tag=1 rows): the
			// destination's tag is set and the first tagged source's data
			// (the excepting PC) is copied through.
			tg := m.tag(srcTag)
			m.stats.TagPropagations++
			if m.trace != nil {
				m.trace.FlowStep(m.Raw(srcTag), traceSlot(in), t)
			}
			m.SetRaw(in.Dest, m.Raw(srcTag))
			m.setTag(in.Dest, tg)
			m.setReady(in.Dest, t+lat)
			return event{}, nil
		}
		val, exc := m.compute(in)
		if exc != ir.ExcNone {
			if usesTags {
				// Table 1, spec=1 row: tag set, data = PC of I, no signal.
				if !m.pcq.Contains(in.PC) {
					return event{}, fmt.Errorf("sim: pc %d aged out of the PC history queue", in.PC)
				}
				m.stats.TagSets++
				if m.trace != nil {
					m.trace.FlowStart(int64(in.PC), traceSlot(in), t)
				}
				m.SetRaw(in.Dest, int64(in.PC))
				m.setTag(in.Dest, Tag{Set: true, Kind: exc})
			} else {
				// General percolation (§2.4): the silent version writes a
				// garbage value and the exception is ignored.
				m.SetRaw(in.Dest, GarbageValue)
			}
			m.setReady(in.Dest, t+lat)
			return event{}, nil
		}
		m.SetRaw(in.Dest, val)
		m.setTag(in.Dest, Tag{})
		m.setReady(in.Dest, t+lat)
		return event{}, nil
	}

	// Non-speculative (Table 1, spec=0 rows).
	if srcTag.Valid() {
		// This instruction is the sentinel for an earlier speculative
		// exception: signal, reporting the tagged source's data as the PC.
		tg := m.tag(srcTag)
		return signal(m.Raw(srcTag), tg.Kind), nil
	}
	val, exc := m.compute(in)
	if exc != ir.ExcNone {
		return signal(int64(in.PC), exc), nil
	}
	m.SetRaw(in.Dest, val)
	m.setTag(in.Dest, Tag{})
	m.setReady(in.Dest, t+lat)
	return event{}, nil
}

// execStore implements Table 2: insertion of a store into the store buffer.
func (m *Machine) execStore(in *ir.Instr, t int64, usesTags bool) (event, error) {
	var srcTag ir.Reg
	if usesTags {
		srcTag = m.firstTaggedSrc(in)
	}
	addr := m.Int[in.Src1.N] + in.Imm
	size := ir.MemSize(in.Op)
	data := uint64(m.Raw(in.Src2))
	fault := m.Mem.Check(addr, size)

	if !in.Spec {
		if srcTag.Valid() {
			// Table 2 rows 010/011: the store is the sentinel.
			tg := m.tag(srcTag)
			return signal(m.Raw(srcTag), tg.Kind), nil
		}
		if fault != nil {
			// Table 2 row 001: force confirmed head entries to update the
			// cache, then process the exception precisely.
			m.buf.flushConfirmed(m.Mem)
			return signal(int64(in.PC), fault.Kind), nil
		}
		t2, err := m.buf.insert(t, Entry{Addr: addr, Size: size, Data: data, Confirmed: true}, m.Mem)
		if err != nil {
			return event{}, err
		}
		m.noteBufInsert(t2)
		return event{stall: t2 - t}, nil
	}

	// Speculative store: allowed only under the §4 extension.
	if m.md.Model != machine.SentinelStores {
		return event{}, fmt.Errorf("sim: speculative store under model %v at pc %d", m.md.Model, in.PC)
	}
	e := Entry{Addr: addr, Size: size, Data: data}
	switch {
	case srcTag.Valid():
		// Table 2 rows 110/111: propagate the source's exception condition
		// into the probationary entry.
		tg := m.tag(srcTag)
		e.ExcSet, e.ExcKind, e.ExcPC = true, tg.Kind, m.Raw(srcTag)
		m.stats.TagPropagations++
		if m.trace != nil {
			m.trace.FlowStep(e.ExcPC, traceSlot(in), t)
		}
	case fault != nil:
		// Table 2 row 101: record the store's own exception.
		e.ExcSet, e.ExcKind, e.ExcPC = true, fault.Kind, int64(in.PC)
		m.stats.TagSets++
		if m.trace != nil {
			m.trace.FlowStart(int64(in.PC), traceSlot(in), t)
		}
	}
	t2, err := m.buf.insert(t, e, m.Mem)
	if err != nil {
		return event{}, err
	}
	m.noteBufInsert(t2)
	return event{stall: t2 - t}, nil
}

// noteBufInsert records store-buffer occupancy observability after an
// insert completing at time t: the high-water mark (occupancy only grows at
// inserts) and, when tracing, a counter-track sample.
func (m *Machine) noteBufInsert(t int64) {
	n := int64(m.buf.Len())
	if n > m.stats.StoreBufferHighWater {
		m.stats.StoreBufferHighWater = n
	}
	if m.trace != nil {
		m.trace.Counter("store-buffer", t, n)
	}
}

// setReady records the scoreboard availability time of a destination.
func (m *Machine) setReady(r ir.Reg, at int64) {
	if !r.Valid() || r.IsZero() {
		return
	}
	m.readyAt[r.Index()] = at
}

// compute evaluates the value semantics of a non-store, register-writing
// instruction, returning the raw result bits and any exception.
func (m *Machine) compute(in *ir.Instr) (int64, ir.ExcKind) {
	// Reads go through the shadow file at the current boost level; at level
	// 0 (every model but boosting) they are plain architectural reads.
	lvl := m.curLvl
	rdi := func(r ir.Reg) int64 { return m.rdInt(lvl, r) }
	rdf := func(r ir.Reg) float64 { return m.rdFP(lvl, r) }
	src2 := func() int64 {
		if in.Src2.Valid() {
			return rdi(in.Src2)
		}
		return in.Imm
	}
	switch in.Op {
	case ir.Li:
		return in.Imm, ir.ExcNone
	case ir.Mov:
		return rdi(in.Src1), ir.ExcNone
	case ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr, ir.Slt:
		return ir.IntALUOp(in.Op, rdi(in.Src1), src2()), ir.ExcNone
	case ir.Div, ir.Rem:
		return ir.IntDivOp(in.Op, rdi(in.Src1), src2())
	case ir.Ld, ir.Ldb:
		v, f := m.buf.loadOverlay(rdi(in.Src1)+in.Imm, ir.MemSize(in.Op), m.Mem)
		if f != nil {
			return 0, f.Kind
		}
		return int64(v), ir.ExcNone
	case ir.Fld:
		v, f := m.buf.loadOverlay(rdi(in.Src1)+in.Imm, 8, m.Mem)
		if f != nil {
			return 0, f.Kind
		}
		return int64(v), ir.ExcNone
	case ir.Fadd, ir.Fsub, ir.Fmul, ir.Fdiv:
		v, exc := ir.FPOp(in.Op, rdf(in.Src1), rdf(in.Src2))
		return int64(math.Float64bits(v)), exc
	case ir.Fmov, ir.Fneg, ir.Fabs:
		v := ir.FPUnOp(in.Op, rdf(in.Src1))
		return int64(math.Float64bits(v)), ir.ExcNone
	case ir.Cvif:
		return int64(math.Float64bits(float64(rdi(in.Src1)))), ir.ExcNone
	case ir.Cvfi:
		return ir.CvfiOp(rdf(in.Src1))
	case ir.Feq, ir.Flt, ir.Fle:
		return ir.FPCmpOp(in.Op, rdf(in.Src1), rdf(in.Src2))
	default:
		panic(fmt.Sprintf("sim: compute on %v", in.Op))
	}
}
