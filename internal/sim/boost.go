package sim

import (
	"math"

	"sentinel/internal/ir"
	"sentinel/internal/machine"
)

// Shadow register state for the instruction-boosting model (§2.3, after
// Smith, Lam and Horowitz). A result boosted above k branches is written to
// shadow level k; each correctly predicted (not-taken) branch commits level
// 1 to the architectural file and shifts the higher levels down; a
// mispredicted (taken) branch discards all shadow state. Exceptions of
// boosted instructions are recorded in the shadow entry and signalled when
// the entry commits — precise attribution, at the price of one full shadow
// register file per level.

type shadowVal struct {
	present bool
	raw     int64
	exc     ir.ExcKind
	excPC   int64
}

type shadowFile struct {
	levels [][ir.NumIntRegs + ir.NumFPRegs]shadowVal
}

func newShadowFile(levels int) *shadowFile {
	sf := &shadowFile{}
	sf.levels = make([][ir.NumIntRegs + ir.NumFPRegs]shadowVal, levels)
	return sf
}

// write stores a boosted result (or its exception record) at the given
// level (1-based).
func (sf *shadowFile) write(level int, r ir.Reg, raw int64, exc ir.ExcKind, excPC int64) {
	sf.levels[level-1][r.Index()] = shadowVal{present: true, raw: raw, exc: exc, excPC: excPC}
}

// read returns the newest value of r visible to an instruction boosted
// above `level` branches: shadow levels level..1, then the architectural
// value is indicated by present=false.
func (sf *shadowFile) read(level int, r ir.Reg) (shadowVal, bool) {
	for l := level; l >= 1; l-- {
		if v := sf.levels[l-1][r.Index()]; v.present {
			return v, true
		}
	}
	return shadowVal{}, false
}

// commit applies shadow level 1 to the architectural state via the apply
// callback (called for each present entry; returning false aborts, used
// when an entry's recorded exception signals), then shifts levels down.
func (sf *shadowFile) commit(apply func(idx int, v shadowVal) bool) bool {
	for idx := range sf.levels[0] {
		v := sf.levels[0][idx]
		if v.present && !apply(idx, v) {
			return false
		}
	}
	copy(sf.levels, sf.levels[1:])
	sf.levels[len(sf.levels)-1] = [ir.NumIntRegs + ir.NumFPRegs]shadowVal{}
	return true
}

// discard clears all shadow state (branch misprediction).
func (sf *shadowFile) discard() {
	for i := range sf.levels {
		sf.levels[i] = [ir.NumIntRegs + ir.NumFPRegs]shadowVal{}
	}
}

// rdRaw reads a register's raw bits through the shadow file at the given
// boost level (0 = architectural).
func (m *Machine) rdRaw(level int, r ir.Reg) int64 {
	if level > 0 && m.boost != nil {
		if v, ok := m.boost.read(level, r); ok {
			return v.raw
		}
	}
	return m.Raw(r)
}

// rdInt and rdFP are typed conveniences over rdRaw.
func (m *Machine) rdInt(level int, r ir.Reg) int64 { return m.rdRaw(level, r) }

func (m *Machine) rdFP(level int, r ir.Reg) float64 {
	return math.Float64frombits(uint64(m.rdRaw(level, r)))
}

// execBoosted executes a boosted (Spec, BoostLevel >= 1) register-writing
// instruction: its result goes to the shadow file; an exception is recorded
// in the shadow entry rather than signalled.
func (m *Machine) execBoosted(in *ir.Instr, t int64) (event, error) {
	lvl := in.BoostLevel
	m.curLvl = lvl
	val, exc := m.compute(in)
	m.curLvl = 0
	if d, ok := in.Def(); ok {
		if exc != ir.ExcNone {
			m.stats.TagSets++
			if m.trace != nil {
				m.trace.FlowStart(int64(in.PC), traceSlot(in), t)
			}
			m.boost.write(lvl, d, 0, exc, int64(in.PC))
		} else {
			m.boost.write(lvl, d, val, ir.ExcNone, 0)
		}
		m.setReady(d, t+int64(machine.Latency(in.Op)))
	}
	return event{}, nil
}

// execBoostedStore inserts a boosted store into the store buffer as a
// shadow entry at its boost level; branch commits decrement the level and
// level 0 confirms the entry (§2.3's shadow store buffers, realized on the
// same buffer that serves §4's probationary entries).
func (m *Machine) execBoostedStore(in *ir.Instr, t int64) (event, error) {
	addr := m.rdInt(in.BoostLevel, in.Src1) + in.Imm
	size := ir.MemSize(in.Op)
	data := uint64(m.rdRaw(in.BoostLevel, in.Src2))
	e := Entry{Addr: addr, Size: size, Data: data, Level: in.BoostLevel}
	if fault := m.Mem.Check(addr, size); fault != nil {
		e.ExcSet, e.ExcKind, e.ExcPC = true, fault.Kind, int64(in.PC)
		m.stats.TagSets++
		if m.trace != nil {
			m.trace.FlowStart(int64(in.PC), traceSlot(in), t)
		}
	}
	t2, err := m.buf.insert(t, e, m.Mem)
	if err != nil {
		return event{}, err
	}
	m.noteBufInsert(t2)
	return event{stall: t2 - t}, nil
}

// commitBoost commits one shadow level (a correctly predicted branch): the
// first recorded exception signals with the boosted instruction's PC.
func (m *Machine) commitBoost() (ev event) {
	ok := m.boost.commit(func(idx int, v shadowVal) bool {
		if v.exc != ir.ExcNone {
			ev = signal(v.excPC, v.exc)
			return false
		}
		r := regFromIndex(idx)
		m.SetRaw(r, v.raw)
		return true
	})
	if !ok {
		return ev
	}
	// Shadow store-buffer entries move one level closer to commitment.
	if bev := m.buf.commitLevel(); bev != nil {
		return signal(bev.ExcPC, bev.ExcKind)
	}
	return event{}
}

func regFromIndex(idx int) ir.Reg {
	if idx < ir.NumIntRegs {
		return ir.R(idx)
	}
	return ir.F(idx - ir.NumIntRegs)
}
