package depgraph

import (
	"testing"

	"sentinel/internal/alias"
	"sentinel/internal/dataflow"
	"sentinel/internal/ir"
	"sentinel/internal/machine"
	"sentinel/internal/prog"
)

// figure1 builds the paper's Figure 1(a) code fragment as a superblock:
//
//	A: if (r2==0) goto L1
//	B: r1 = mem(r2+0)
//	C: r3 = mem(r4+0)
//	D: r4 = r1+1
//	E: r5 = r3*9
//	F: mem(r2+4) = r4
//
// L1 uses none of r1,r3,r4,r5, so all four candidates may be speculated.
func figure1() (*prog.Program, *prog.Block) {
	p := prog.NewProgram()
	sb := p.AddBlock("main",
		ir.BRI(ir.Beq, ir.R(2), 0, "L1"),     // A
		ir.LOAD(ir.Ld, ir.R(1), ir.R(2), 0),  // B
		ir.LOAD(ir.Ld, ir.R(3), ir.R(4), 0),  // C
		ir.ALUI(ir.Add, ir.R(4), ir.R(1), 1), // D
		ir.ALUI(ir.Mul, ir.R(5), ir.R(3), 9), // E
		ir.STORE(ir.St, ir.R(2), 4, ir.R(4)), // F
		ir.HALT(),
	)
	sb.Superblock = true
	p.AddBlock("L1", ir.HALT())
	return p, sb
}

func build(t *testing.T, md machine.Desc) (*Graph, *prog.Block) {
	t.Helper()
	p, sb := figure1()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	lv := dataflow.Compute(p)
	g := Build(sb, lv, nil)
	g.Reduce(md)
	return g, sb
}

// edge reports whether an edge from->to of the given kind exists.
func edge(g *Graph, from, to int, k Kind) bool {
	for _, e := range g.Nodes[from].Out {
		if e.To == g.Nodes[to] && e.Kind == k {
			return true
		}
	}
	return false
}

const (
	iA = iota
	iB
	iC
	iD
	iE
	iF
	iHalt
)

func TestFigure1Unprotected(t *testing.T) {
	g, _ := build(t, machine.Base(8, machine.Sentinel))
	// Per the paper: "instructions E and F are identified as unprotected,
	// since they are the last uses of the potential trap-causing
	// instructions B and C".
	wantUnprotected := map[int]bool{iA: false, iB: false, iC: false,
		iD: false, iE: true, iF: true}
	for idx, want := range wantUnprotected {
		if got := g.Nodes[idx].Unprotected; got != want {
			t.Errorf("node %d (%v): unprotected = %v, want %v",
				idx, g.Nodes[idx].Instr, got, want)
		}
	}
}

func TestFigure1DataDeps(t *testing.T) {
	g, _ := build(t, machine.Base(8, machine.Sentinel))
	if !edge(g, iB, iD, Flow) {
		t.Error("missing flow B->D (r1)")
	}
	if !edge(g, iC, iE, Flow) {
		t.Error("missing flow C->E (r3)")
	}
	if !edge(g, iD, iF, Flow) {
		t.Error("missing flow D->F (r4)")
	}
	// C reads r4, D writes r4: anti dependence C->D.
	if !edge(g, iC, iD, Anti) {
		t.Error("missing anti C->D (r4)")
	}
}

func TestFigure1ReductionByModel(t *testing.T) {
	// Sentinel: control deps A->B, A->C, A->D, A->E removed (dest dead at
	// L1); A->F (store) kept.
	g, _ := build(t, machine.Base(8, machine.Sentinel))
	for _, idx := range []int{iB, iC, iD, iE} {
		if edge(g, iA, idx, Control) {
			t.Errorf("sentinel: control A->%d should be removed", idx)
		}
	}
	if !edge(g, iA, iF, Control) {
		t.Error("sentinel: store F must stay below the branch")
	}

	// Restricted: loads B, C stay control-dependent (they trap); D and E do
	// not trap and may be hoisted — but they depend on B/C via flow.
	gr, _ := build(t, machine.Base(8, machine.Restricted))
	for _, idx := range []int{iB, iC} {
		if !edge(gr, iA, idx, Control) {
			t.Errorf("restricted: control A->%d must remain", idx)
		}
	}
	for _, idx := range []int{iD, iE} {
		if edge(gr, iA, idx, Control) {
			t.Errorf("restricted: control A->%d should be removed (non-trapping)", idx)
		}
	}

	// SentinelStores: the store's control dependence is removed too.
	gt, _ := build(t, machine.Base(8, machine.SentinelStores))
	if edge(gt, iA, iF, Control) {
		t.Error("sentinel+stores: store control dependence must be removed")
	}
	if !gt.Nodes[iF].Unprotected {
		t.Error("sentinel+stores: store must be unprotected")
	}
}

func TestReductionKeepsLiveDest(t *testing.T) {
	// If L1 uses r1, the load B must NOT be hoisted above the branch.
	p := prog.NewProgram()
	sb := p.AddBlock("main",
		ir.BRI(ir.Beq, ir.R(2), 0, "L1"),
		ir.LOAD(ir.Ld, ir.R(1), ir.R(2), 0),
		ir.HALT(),
	)
	sb.Superblock = true
	p.AddBlock("L1", ir.JSR("putint", ir.R(1)), ir.HALT())
	lv := dataflow.Compute(p)
	g := Build(sb, lv, nil)
	g.Reduce(machine.Base(8, machine.Sentinel))
	if !edge(g, 0, 1, Control) {
		t.Error("restriction (1): dest live on taken path must keep control dep")
	}
}

func TestDownwardMotionEdges(t *testing.T) {
	// li r9 (live at L1) before the branch must not sink below it; the store
	// and the trapping load must not either.
	p := prog.NewProgram()
	sb := p.AddBlock("main",
		ir.LI(ir.R(9), 5),                    // 0: live at L1
		ir.LOAD(ir.Ld, ir.R(1), ir.R(2), 0),  // 1: trapping
		ir.STORE(ir.St, ir.R(2), 8, ir.R(1)), // 2: store
		ir.LI(ir.R(8), 1),                    // 3: dead at L1
		ir.BRI(ir.Beq, ir.R(2), 0, "L1"),     // 4
		ir.HALT(),                            // 5
	)
	sb.Superblock = true
	p.AddBlock("L1", ir.JSR("putint", ir.R(9)), ir.HALT())
	lv := dataflow.Compute(p)
	g := Build(sb, lv, nil)
	for _, idx := range []int{0, 1, 2} {
		if !edge(g, idx, 4, Control) {
			t.Errorf("node %d must be control-ordered before the exit branch", idx)
		}
	}
	if edge(g, 3, 4, Control) {
		t.Error("dead non-trapping def may sink below the branch")
	}
}

func TestMemoryDisambiguation(t *testing.T) {
	p := prog.NewProgram()
	sb := p.AddBlock("main",
		ir.STORE(ir.St, ir.R(1), 0, ir.R(2)), // 0: st 0(r1)
		ir.LOAD(ir.Ld, ir.R(3), ir.R(1), 8),  // 1: ld 8(r1)  disjoint
		ir.LOAD(ir.Ld, ir.R(4), ir.R(1), 0),  // 2: ld 0(r1)  overlaps store 0
		ir.LOAD(ir.Ld, ir.R(5), ir.R(6), 0),  // 3: ld 0(r6)  unknown base: dependent
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 8), // 4: redefines r1
		ir.STORE(ir.St, ir.R(1), 0, ir.R(2)), // 5: st 0(r1') new version: dependent on all
		ir.HALT(),
	)
	sb.Superblock = true
	lv := dataflow.Compute(p)
	g := Build(sb, lv, nil)
	if edge(g, 0, 1, Mem) {
		t.Error("disjoint same-base accesses must be independent")
	}
	if !edge(g, 0, 2, Mem) {
		t.Error("overlapping same-base accesses must be dependent")
	}
	if !edge(g, 0, 3, Mem) {
		t.Error("different-base accesses must be conservatively dependent")
	}
	// Affine tracking: the store after "add r1, r1, 8" provably writes
	// [8,16) of the same chain, disjoint from the load of [0,8).
	if edge(g, 2, 5, Mem) {
		t.Error("affine same-base accesses with disjoint ranges must be independent")
	}
	// But it still conflicts with the load at offset 8.
	if !edge(g, 1, 5, Mem) {
		t.Error("affine overlapping accesses must stay dependent")
	}
}

func TestMemoryDisambiguationProvenance(t *testing.T) {
	// With provenance, stores through one LI-rooted pointer do not conflict
	// with loads through another.
	p := prog.NewProgram()
	sb := p.AddBlock("main",
		ir.LI(ir.R(1), 0x1000),
		ir.LI(ir.R(2), 0x2000),
		ir.STORE(ir.St, ir.R(1), 0, ir.R(3)), // 2
		ir.LOAD(ir.Ld, ir.R(4), ir.R(2), 0),  // 3
		ir.HALT(),
	)
	sb.Superblock = true
	lv := dataflow.Compute(p)
	pv := alias.Analyze(p)
	g := Build(sb, lv, pv)
	if edge(g, 2, 3, Mem) {
		t.Error("different-root accesses must be independent under provenance")
	}
	// Without provenance they remain dependent.
	g2 := Build(p.Blocks[0], lv, nil)
	if !edge(g2, 2, 3, Mem) {
		t.Error("without provenance, different bases must stay dependent")
	}
}

func TestHomeBlocks(t *testing.T) {
	g, _ := build(t, machine.Base(8, machine.Sentinel))
	// A is at index 0; B..F live in the home block (0, 6].
	for _, idx := range []int{iB, iC, iD, iE, iF} {
		nd := g.Nodes[idx]
		if nd.HomeStart != iA || nd.HomeEnd != iHalt {
			t.Errorf("node %d home = (%d,%d), want (%d,%d)",
				idx, nd.HomeStart, nd.HomeEnd, iA, iHalt)
		}
	}
	if g.Nodes[iA].HomeStart != -1 || g.Nodes[iA].HomeEnd != iA {
		t.Errorf("branch home = (%d,%d)", g.Nodes[iA].HomeStart, g.Nodes[iA].HomeEnd)
	}
}

func TestInsertSentinel(t *testing.T) {
	g, _ := build(t, machine.Base(8, machine.Sentinel))
	e := g.Nodes[iE]
	j := g.InsertSentinel(e)
	if !j.Sentinel || j.Protects != e || j.Instr.Op != ir.Check {
		t.Fatalf("sentinel node malformed: %+v", j)
	}
	if j.Instr.Src1 != ir.R(5) {
		t.Errorf("check source = %v, want r5", j.Instr.Src1)
	}
	var haveFlow, haveHomeStart, haveHomeEnd bool
	for _, in := range j.In {
		if in.From == e && in.Kind == Flow {
			haveFlow = true
		}
		if in.From == g.Nodes[iA] && in.Kind == Control {
			haveHomeStart = true
		}
	}
	for _, out := range j.Out {
		if out.To == g.Nodes[iHalt] && out.Kind == Control {
			haveHomeEnd = true
		}
	}
	if !haveFlow || !haveHomeStart || !haveHomeEnd {
		t.Errorf("sentinel edges: flow=%v homeStart=%v homeEnd=%v",
			haveFlow, haveHomeStart, haveHomeEnd)
	}
}

func TestInsertConfirm(t *testing.T) {
	g, _ := build(t, machine.Base(8, machine.SentinelStores))
	f := g.Nodes[iF]
	j := g.InsertConfirm(f)
	if !j.Sentinel || j.Protects != f || j.Instr.Op != ir.ConfirmSt {
		t.Fatalf("confirm node malformed: %+v", j)
	}
	if j.Instr.Imm != -1 {
		t.Errorf("confirm index must start unresolved, got %d", j.Instr.Imm)
	}
}

func TestGraphIsAcyclicAndForward(t *testing.T) {
	g, _ := build(t, machine.Base(8, machine.SentinelStores))
	for _, nd := range g.Nodes {
		for _, e := range nd.Out {
			if !e.From.Sentinel && !e.To.Sentinel && e.From.Index >= e.To.Index {
				t.Errorf("backward edge %d -> %d (%v)", e.From.Index, e.To.Index, e.Kind)
			}
		}
	}
}

func TestReduceTwicePanics(t *testing.T) {
	g, _ := build(t, machine.Base(8, machine.Sentinel))
	defer func() {
		if recover() == nil {
			t.Error("second Reduce must panic")
		}
	}()
	g.Reduce(machine.Base(8, machine.Sentinel))
}

func TestRemovedControlCount(t *testing.T) {
	g, _ := build(t, machine.Base(8, machine.Sentinel))
	if g.RemovedControl != 4 { // B, C, D, E
		t.Errorf("RemovedControl = %d, want 4", g.RemovedControl)
	}
	gr, _ := build(t, machine.Base(8, machine.Restricted))
	if gr.RemovedControl != 2 { // D, E only
		t.Errorf("restricted RemovedControl = %d, want 2", gr.RemovedControl)
	}
}

// TestStoreOrdersAgainstPriorAccesses is the regression test for the
// slice-aliasing hazard in memoryDeps: the seed walked prior accesses via
// append(loads, stores...), which — once loads has spare capacity — copies
// the stores into loads' backing array, where a later load append can clobber
// them. The builder must record a memory edge from EVERY prior may-aliasing
// load and store into each store, with interleaved appends in between.
func TestStoreOrdersAgainstPriorAccesses(t *testing.T) {
	p := prog.NewProgram()
	sb := p.AddBlock("main",
		ir.LOAD(ir.Ld, ir.R(1), ir.R(2), 0),   // 0: load, base r2
		ir.LOAD(ir.Ld, ir.R(3), ir.R(4), 0),   // 1: load, base r4
		ir.LOAD(ir.Ld, ir.R(5), ir.R(6), 0),   // 2: load, base r6
		ir.STORE(ir.St, ir.R(7), 0, ir.R(1)),  // 3: store, base r7
		ir.LOAD(ir.Ld, ir.R(9), ir.R(10), 0),  // 4: load, base r10
		ir.STORE(ir.St, ir.R(11), 0, ir.R(3)), // 5: store, base r11
		ir.HALT(),
	)
	sb.Superblock = true
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	g := Build(sb, dataflow.Compute(p), nil)

	// Distinct bases with no provenance info may alias pairwise.
	for _, from := range []int{0, 1, 2} {
		if !edge(g, from, 3, Mem) {
			t.Errorf("missing mem edge load %d -> store 3", from)
		}
	}
	if !edge(g, 3, 4, Mem) {
		t.Error("missing mem edge store 3 -> load 4")
	}
	for _, from := range []int{0, 1, 2, 3, 4} {
		if !edge(g, from, 5, Mem) {
			t.Errorf("missing mem edge %d -> store 5", from)
		}
	}
}

// TestNodeIDsAreStable pins the dense-index contract: Node.ID equals the
// node's position in g.Nodes, for original and inserted nodes alike, and
// insertion never renumbers existing nodes.
func TestNodeIDsAreStable(t *testing.T) {
	g, _ := build(t, machine.Base(8, machine.Sentinel))
	for i, nd := range g.Nodes {
		if nd.ID != i {
			t.Fatalf("g.Nodes[%d].ID = %d before insertion", i, nd.ID)
		}
	}
	s := g.InsertSentinel(g.Nodes[iE])
	if s.ID != len(g.Nodes)-1 {
		t.Errorf("inserted sentinel ID = %d, want %d", s.ID, len(g.Nodes)-1)
	}
	for i, nd := range g.Nodes {
		if nd.ID != i {
			t.Errorf("g.Nodes[%d].ID = %d after insertion", i, nd.ID)
		}
	}
}
