// Package depgraph builds the dependence graph of a superblock and performs
// the dependence-graph reduction of the sentinel paper's Appendix: removing
// control dependences to enable speculative code motion under the selected
// scheduling model and marking unprotected instructions.
//
// Edge semantics. Every edge carries a Delay:
//
//   - to.cycle >= from.cycle + Delay, and
//   - when both end up in the same cycle (possible only for Delay 0), from
//     must occupy an earlier slot than to.
//
// The simulated machine executes instructions in schedule order with
// immediate architectural effect and scoreboard interlocks for timing, so
// order-preserving 0-delay edges are sufficient for anti, output, memory and
// control dependences, while flow edges carry the producer's latency as a
// performance (not correctness) hint.
//
// Storage layout. Nodes carry a dense ID (position in Graph.Nodes) and live
// in one arena slice; builder state is indexed by register slot rather than
// keyed by ir.Reg maps; and the edges recorded during Build share a single
// backing allocation, with each node's In/Out list a capacity-clamped
// sub-slice so later insertions (sentinels, anti edges discovered during
// scheduling) reallocate instead of clobbering a neighbour's region.
package depgraph

import (
	"fmt"

	"sentinel/internal/alias"
	"sentinel/internal/dataflow"
	"sentinel/internal/ir"
	"sentinel/internal/machine"
	"sentinel/internal/prog"
)

// Kind classifies a dependence edge.
type Kind uint8

const (
	Flow    Kind = iota // read after write (register)
	Anti                // write after read (register)
	Output              // write after write (register)
	Mem                 // memory ordering (may-alias pairs involving a store)
	Control             // control dependence
)

var kindNames = [...]string{Flow: "flow", Anti: "anti", Output: "output",
	Mem: "mem", Control: "control"}

func (k Kind) String() string { return kindNames[k] }

// Edge is a dependence from From to To.
type Edge struct {
	From, To *Node
	Kind     Kind
	Delay    int
}

// Node wraps one instruction of the superblock.
type Node struct {
	Instr *ir.Instr
	// ID is the node's position in Graph.Nodes. It is stable for the life of
	// the graph (nodes are never removed) and dense, so schedulers can keep
	// per-node state in plain slices indexed by ID.
	ID int
	// Index is the original position within the superblock; inserted
	// sentinel nodes get the index of the instruction they protect, and are
	// distinguishable via Sentinel.
	Index int
	// Sentinel marks nodes inserted during scheduling (check_exception or
	// confirm_store) rather than present in the original code.
	Sentinel bool
	// Protects is the node this sentinel was inserted for (nil otherwise).
	Protects *Node

	In  []*Edge // dependences that must be satisfied before this node
	Out []*Edge

	// Unprotected marks instructions whose exception condition has no use
	// within their home block: speculating them requires an explicit
	// sentinel (§3.1, Appendix).
	Unprotected bool

	// HomeStart is the index of the nearest control instruction before this
	// node (-1 if none): the upper boundary of the home block. HomeEnd is
	// the index of the first control instruction at or after this node
	// (len(instrs) if none): the lower boundary.
	HomeStart, HomeEnd int
}

// Graph is the dependence graph of one superblock.
type Graph struct {
	Block *prog.Block
	Nodes []*Node

	// arena backs the nodes in Nodes. It is allocated with room for one
	// inserted sentinel per original instruction (the scheduler inserts at
	// most one check or confirm per speculated instruction), so pointers into
	// it stay valid across InsertSentinel/InsertConfirm.
	arena []Node
	// edges backs every *Edge recorded during Build; In/Out hold pointers
	// into it.
	edges []Edge
	// inBack/outBack are the shared backing arrays the per-node In/Out
	// sub-slices are carved from.
	inBack, outBack []*Edge
	// branchPrefix[i] counts conditional branches at original indices < i.
	branchPrefix []int32

	lv      *dataflow.Liveness
	pv      *alias.Provenance
	reduced bool
	// RemovedControl counts control dependences removed by reduction
	// (reported by ablation experiments).
	RemovedControl int
}

// edgeRec is one dependence recorded during Build, before the shared edge
// backing is allocated.
type edgeRec struct {
	from, to int32
	delay    int32
	kind     Kind
}

// Build constructs the full dependence graph of superblock b (all data,
// memory and control dependences, no reduction). lv must be liveness for the
// program containing b; pv supplies pointer provenance for memory
// disambiguation and may be nil (fully conservative aliasing).
func Build(b *prog.Block, lv *dataflow.Liveness, pv *alias.Provenance) *Graph {
	g := &Graph{Block: b, lv: lv, pv: pv}
	n := len(b.Instrs)
	g.arena = make([]Node, n, 2*n)
	g.Nodes = make([]*Node, n)
	for i, in := range b.Instrs {
		g.arena[i] = Node{Instr: in, ID: i, Index: i, HomeStart: -1, HomeEnd: n}
		g.Nodes[i] = &g.arena[i]
	}
	g.homeBlocks()
	g.branchPrefix = make([]int32, n+1)
	for i, in := range b.Instrs {
		g.branchPrefix[i+1] = g.branchPrefix[i]
		if ir.IsBranch(in.Op) {
			g.branchPrefix[i+1]++
		}
	}
	bd := &builder{g: g}
	bd.initSlots()
	bd.registerDeps()
	bd.memoryDeps()
	bd.controlDeps()
	bd.finalize()
	return g
}

func (g *Graph) homeBlocks() {
	last := -1
	for i, nd := range g.Nodes {
		nd.HomeStart = last
		if ir.IsControl(nd.Instr.Op) {
			last = i
		}
	}
	next := len(g.Nodes)
	for i := len(g.Nodes) - 1; i >= 0; i-- {
		nd := g.Nodes[i]
		if ir.IsControl(nd.Instr.Op) {
			// A control instruction ends its own home block.
			nd.HomeEnd = i
		} else {
			nd.HomeEnd = next
		}
		if ir.IsControl(nd.Instr.Op) {
			next = i
		}
	}
}

// builder holds the register-slot-indexed state used while recording edges.
// Physical registers map to [0, NumIntRegs+NumFPRegs) via ir.Reg.Index;
// virtual registers (legal in unallocated input) get slots above that.
type builder struct {
	g    *Graph
	recs []edgeRec
	virt map[ir.Reg]int32
	nSlt int
}

const physSlots = ir.NumIntRegs + ir.NumFPRegs

// initSlots assigns slots to every virtual register appearing in the block
// so per-slot state arrays can be sized once.
func (bd *builder) initSlots() {
	bd.nSlt = physSlots
	for _, nd := range bd.g.Nodes {
		in := nd.Instr
		for _, r := range [3]ir.Reg{in.Dest, in.Src1, in.Src2} {
			if r.Valid() && r.Virtual {
				if bd.virt == nil {
					bd.virt = map[ir.Reg]int32{}
				}
				if _, ok := bd.virt[r]; !ok {
					bd.virt[r] = int32(bd.nSlt)
					bd.nSlt++
				}
			}
		}
	}
}

func (bd *builder) slot(r ir.Reg) int32 {
	if r.Virtual {
		return bd.virt[r]
	}
	return int32(r.Index())
}

func (bd *builder) rec(from, to int, kind Kind, delay int) {
	bd.recs = append(bd.recs, edgeRec{from: int32(from), to: int32(to),
		delay: int32(delay), kind: kind})
}

func (bd *builder) registerDeps() {
	g := bd.g
	lastDef := make([]int32, bd.nSlt)
	for i := range lastDef {
		lastDef[i] = -1
	}
	usesSinceDef := make([][]int32, bd.nSlt)
	for _, nd := range g.Nodes {
		in := nd.Instr
		u1, u2 := in.Uses2()
		for _, u := range [2]ir.Reg{u1, u2} {
			if !u.Valid() {
				continue
			}
			s := bd.slot(u)
			if d := lastDef[s]; d >= 0 {
				bd.rec(int(d), nd.ID, Flow, machine.Latency(g.Nodes[d].Instr.Op))
			}
			usesSinceDef[s] = append(usesSinceDef[s], int32(nd.ID))
		}
		if d, ok := in.Def(); ok {
			s := bd.slot(d)
			if prev := lastDef[s]; prev >= 0 {
				bd.rec(int(prev), nd.ID, Output, 0)
			}
			for _, r := range usesSinceDef[s] {
				if int(r) != nd.ID {
					bd.rec(int(r), nd.ID, Anti, 0)
				}
			}
			lastDef[s] = int32(nd.ID)
			usesSinceDef[s] = usesSinceDef[s][:0]
		}
	}
}

// memRef describes one memory access for disambiguation: base register, its
// definition version at the access, the accumulated affine offset of that
// version, and the byte range.
type memRef struct {
	base    ir.Reg
	version int
	lo, hi  int64
}

// disjoint reports whether two accesses provably do not overlap: the same
// base register within the same affine version chain (constant increments
// keep accesses comparable across unrolled copies) with non-overlapping
// effective ranges, or bases with provably different pointer provenance.
func (g *Graph) disjoint(a, b memRef) bool {
	if a.base == b.base && a.version == b.version && (a.hi <= b.lo || b.hi <= a.lo) {
		return true
	}
	return g.pv != nil && g.pv.Disjoint(a.base, b.base)
}

func (bd *builder) memoryDeps() {
	g := bd.g
	version := make([]int32, bd.nSlt)
	delta := make([]int64, bd.nSlt)
	type access struct {
		ref  memRef
		node int32
	}
	var loads, stores []access
	for _, nd := range g.Nodes {
		in := nd.Instr
		if ir.IsMem(in.Op) {
			s := bd.slot(in.Src1)
			ref := memRef{base: in.Src1, version: int(version[s]),
				lo: in.Imm + delta[s], hi: in.Imm + delta[s] + int64(ir.MemSize(in.Op))}
			if ir.IsStore(in.Op) {
				// A store orders against every prior may-aliasing load and
				// store. The two slices are walked separately: combining them
				// with append(loads, stores...) would extend loads' backing
				// array in place when it has spare capacity, aliasing the
				// combined view with later appends to loads.
				for _, p := range loads {
					if !g.disjoint(p.ref, ref) {
						bd.rec(int(p.node), nd.ID, Mem, 0)
					}
				}
				for _, p := range stores {
					if !g.disjoint(p.ref, ref) {
						bd.rec(int(p.node), nd.ID, Mem, 0)
					}
				}
				stores = append(stores, access{ref, int32(nd.ID)})
			} else {
				for _, p := range stores {
					if !g.disjoint(p.ref, ref) {
						bd.rec(int(p.node), nd.ID, Mem, 0)
					}
				}
				loads = append(loads, access{ref, int32(nd.ID)})
			}
		}
		if d, ok := in.Def(); ok {
			s := bd.slot(d)
			if (in.Op == ir.Add || in.Op == ir.Sub) && !in.Src2.Valid() && in.Src1 == d {
				if in.Op == ir.Add {
					delta[s] += in.Imm
				} else {
					delta[s] -= in.Imm
				}
			} else {
				version[s]++
				delta[s] = 0
			}
		}
	}
}

func (bd *builder) controlDeps() {
	g := bd.g
	for ci, c := range g.Nodes {
		if !ir.IsControl(c.Instr.Op) {
			continue
		}
		// Upward-motion restrictions: control dependence from the control
		// instruction to every later instruction. Reduction may remove
		// these for conditional branches.
		//
		// A non-speculative potentially-trapping instruction must wait for
		// an older conditional branch to RESOLVE (branch latency, 1 cycle):
		// were it issued in the branch's own group, a wrong-path exception
		// would be signalled — precisely the hazard that requires sentinel
		// hardware. Non-trapping instructions may share the branch's group;
		// a taken branch nullifies younger slots cleanly.
		for i := ci + 1; i < len(g.Nodes); i++ {
			delay := 0
			if ir.IsBranch(c.Instr.Op) && ir.Traps(g.Nodes[i].Instr.Op) {
				delay = machine.Latency(c.Instr.Op)
			}
			bd.rec(ci, i, Control, delay)
		}
		// Downward-motion restrictions: instructions whose effects must be
		// architecturally visible if the exit is taken may not sink below
		// it: stores, trapping instructions (their exception would be
		// lost), and producers of values live on the taken path. Nothing
		// may sink past an unconditional exit (Jmp/Halt): it could never
		// execute, and blocks must stay well-formed.
		live := g.lv.LiveAtTaken(g.Block, ci)
		uncond := c.Instr.Op == ir.Jmp || c.Instr.Op == ir.Halt
		for i := 0; i < ci; i++ {
			nd := g.Nodes[i]
			in := nd.Instr
			if ir.IsControl(in.Op) {
				continue // already ordered via the control edge above
			}
			need := uncond || ir.IsStore(in.Op) || ir.Traps(in.Op)
			if !need {
				if d, ok := in.Def(); ok && live.Has(d) {
					need = true
				}
			}
			if need {
				bd.rec(i, ci, Control, 0)
			}
		}
	}
}

// finalize materializes the recorded edges: one shared Edge arena, and one
// shared backing array each for the In and Out pointer lists, carved into
// per-node sub-slices with clamped capacity. A post-Build append to any
// node's list (sentinel insertion, AddAnti) therefore reallocates that list
// instead of writing into the next node's region.
func (bd *builder) finalize() {
	g := bd.g
	n := len(g.Nodes)
	ne := len(bd.recs)
	g.edges = make([]Edge, ne)
	inCnt := make([]int32, n)
	outCnt := make([]int32, n)
	for _, r := range bd.recs {
		outCnt[r.from]++
		inCnt[r.to]++
	}
	g.inBack = make([]*Edge, ne)
	g.outBack = make([]*Edge, ne)
	inOff, outOff := 0, 0
	for i, nd := range g.Nodes {
		nd.In = g.inBack[inOff:inOff : inOff+int(inCnt[i])]
		nd.Out = g.outBack[outOff:outOff : outOff+int(outCnt[i])]
		inOff += int(inCnt[i])
		outOff += int(outCnt[i])
	}
	for i, r := range bd.recs {
		e := &g.edges[i]
		*e = Edge{From: g.Nodes[r.from], To: g.Nodes[r.to], Kind: r.kind, Delay: int(r.delay)}
		e.From.Out = append(e.From.Out, e)
		e.To.In = append(e.To.In, e)
	}
}

// addEdge inserts an edge after Build has finalized the shared backing; it
// allocates the edge individually.
func (g *Graph) addEdge(from, to *Node, kind Kind, delay int) *Edge {
	e := &Edge{From: from, To: to, Kind: kind, Delay: delay}
	from.Out = append(from.Out, e)
	to.In = append(to.In, e)
	return e
}

// newNode appends a sentinel node, preferring the arena's reserved capacity
// (one slot per original instruction) so node pointers stay stable.
func (g *Graph) newNode(tpl Node) *Node {
	tpl.ID = len(g.Nodes)
	var nd *Node
	if len(g.arena) < cap(g.arena) {
		g.arena = append(g.arena, tpl)
		nd = &g.arena[len(g.arena)-1]
	} else {
		nd = new(Node)
		*nd = tpl
	}
	g.Nodes = append(g.Nodes, nd)
	return nd
}

// Reduce performs dependence-graph reduction for the given machine (Appendix
// algorithm): it removes control dependences BR -> I when the model allows I
// to be speculative and dest(I) is not live when BR is taken, and it marks
// unprotected instructions. Reduce may be called once per graph.
func (g *Graph) Reduce(md machine.Desc) {
	if g.reduced {
		panic("depgraph: Reduce called twice")
	}
	g.reduced = true
	if md.Model != machine.Boosting {
		g.markUnprotected(md)
	}

	for _, nd := range g.Nodes {
		in := nd.Instr
		if !md.AllowSpeculative(in.Op) {
			continue
		}
		var keep []*Edge
		for _, e := range nd.In {
			if e.Kind == Control && e.From.Index < nd.Index && ir.IsBranch(e.From.Instr.Op) {
				if md.Model == machine.Boosting {
					// Boosting enforces NEITHER restriction (§2.3): the
					// shadow register file holds the result until the
					// crossed branches commit, so even a live destination
					// may be boosted — but only above at most BoostLevels
					// branches (shadow storage is finite).
					if g.branchesBetween(e.From.Index, nd.Index) <= md.BoostLevels {
						g.RemovedControl++
						e.From.Out = removeEdge(e.From.Out, e)
						continue
					}
					keep = append(keep, e)
					continue
				}
				// Restriction (1): dest(I) must not be used before being
				// redefined when BR is taken. Stores have no destination:
				// restriction (1) holds trivially and §4.2 removes the
				// dependence outright (memory edges still apply).
				d, hasDest := in.Def()
				if !hasDest || !g.lv.LiveAtTaken(g.Block, e.From.Index).Has(d) {
					g.RemovedControl++
					e.From.Out = removeEdge(e.From.Out, e)
					continue
				}
			}
			keep = append(keep, e)
		}
		nd.In = keep
	}
}

// branchesBetween counts conditional branches with original index in
// [from, to): the number of branches an instruction at to crosses when
// hoisted above the branch at from. Answered from the prefix sums computed
// during Build (sentinels inserted later never count: they are appended past
// the prefix range and are not branches).
func (g *Graph) branchesBetween(from, to int) int {
	n := len(g.branchPrefix) - 1
	if to > n {
		to = n
	}
	if from >= to {
		return 0
	}
	return int(g.branchPrefix[to] - g.branchPrefix[from])
}

func removeEdge(edges []*Edge, e *Edge) []*Edge {
	for i, x := range edges {
		if x == e {
			return append(edges[:i], edges[i+1:]...)
		}
	}
	return edges
}

// markUnprotected implements the protected/unprotected classification of the
// Appendix: an instruction is unprotected when its exception condition (its
// own, or one inherited as sentinel duty from an earlier instruction) has no
// consuming use within its home block; speculating it requires an explicit
// sentinel. Stores are handled per §4.2: under the speculative-store model
// every store is unprotected (its sentinel is a confirm_store).
func (g *Graph) markUnprotected(md machine.Desc) {
	duty := make([]bool, len(g.Nodes)) // carries an unchecked exception condition
	for i, nd := range g.Nodes {
		in := nd.Instr
		if ir.IsStore(in.Op) {
			// A store cannot pass sentinel duty on (it defines no register).
			// It is unprotected when it carries inherited duty (it can still
			// serve as a sentinel while non-speculative, cf. instruction F
			// in Figure 1), and under the speculative-store model every
			// store is unprotected: its sentinel is a confirm_store (§4.2),
			// which also reports any inherited exception condition captured
			// in the buffer entry (Table 2).
			if duty[i] || md.Model == machine.SentinelStores {
				nd.Unprotected = true
			}
			continue
		}
		if !ir.Traps(in.Op) && !duty[i] {
			continue
		}
		if md.NoSharedSentinels && ir.Traps(in.Op) {
			// Ablation: no instruction may serve as another's sentinel;
			// every speculated trapping instruction needs its own check.
			nd.Unprotected = true
			continue
		}
		// Find the first use of dest(I) at or before the first succeeding
		// control instruction (the control instruction itself may be the
		// consuming use).
		d, ok := in.Def()
		if !ok {
			nd.Unprotected = true
			continue
		}
		carrier := -1
		for j := i + 1; j <= nd.HomeEnd && j < len(g.Nodes); j++ {
			if uses(g.Nodes[j].Instr, d) {
				carrier = j
				break
			}
			if d2, ok2 := g.Nodes[j].Instr.Def(); ok2 && d2 == d {
				break // redefined before any use: no carrier in home block
			}
		}
		if carrier >= 0 {
			duty[carrier] = true
		} else {
			nd.Unprotected = true
		}
	}
}

func uses(in *ir.Instr, r ir.Reg) bool {
	u1, u2 := in.Uses2()
	return (u1.Valid() && u1 == r) || (u2.Valid() && u2 == r)
}

// InsertSentinel creates a check_exception node J for speculative
// unprotected instruction I (Appendix):
//
//   - a flow dependence I -> J (J reads I's destination's exception tag),
//   - a control dependence from the nearest control instruction preceding I
//     in the original order (the lower bound of I's home block) to J, and
//   - a control dependence from J to the first control instruction
//     originally below I, keeping J inside the home block.
//
// The caller (the list scheduler) adds J to its unscheduled set.
func (g *Graph) InsertSentinel(forNode *Node) *Node {
	in := forNode.Instr
	d, ok := in.Def()
	if !ok {
		panic(fmt.Sprintf("depgraph: sentinel for instruction without destination: %v", in))
	}
	chk := ir.CHECK(d)
	before := len(g.Nodes)
	j := g.newNode(Node{
		Instr:     chk,
		Index:     forNode.Index,
		Sentinel:  true,
		Protects:  forNode,
		HomeStart: forNode.HomeStart,
		HomeEnd:   forNode.HomeEnd,
	})
	g.addEdge(forNode, j, Flow, machine.Latency(in.Op))
	if forNode.HomeStart >= 0 {
		g.addEdge(g.Nodes[forNode.HomeStart], j, Control, 0)
	}
	if forNode.HomeEnd < before {
		g.addEdge(j, g.Nodes[forNode.HomeEnd], Control, 0)
	}
	return j
}

// InsertConfirm creates a confirm_store node for speculative store I, with
// the same home-block constraints as InsertSentinel. The confirm's index
// operand is filled in after scheduling, when the number of intervening
// stores is known (§4.2).
func (g *Graph) InsertConfirm(forNode *Node) *Node {
	if !ir.IsStore(forNode.Instr.Op) {
		panic("depgraph: InsertConfirm on non-store")
	}
	cf := ir.CONFIRM(-1)
	before := len(g.Nodes)
	j := g.newNode(Node{
		Instr:     cf,
		Index:     forNode.Index,
		Sentinel:  true,
		Protects:  forNode,
		HomeStart: forNode.HomeStart,
		HomeEnd:   forNode.HomeEnd,
	})
	// The confirm must follow the store's insertion into the buffer.
	g.addEdge(forNode, j, Mem, machine.Latency(forNode.Instr.Op))
	if forNode.HomeStart >= 0 {
		g.addEdge(g.Nodes[forNode.HomeStart], j, Control, 0)
	}
	if forNode.HomeEnd < before {
		g.addEdge(j, g.Nodes[forNode.HomeEnd], Control, 0)
	}
	return j
}

// AddAnti records an anti dependence from -> to discovered during
// scheduling. The list scheduler uses it to keep later writers of a checked
// register from clobbering it before an inserted sentinel reads it.
func (g *Graph) AddAnti(from, to *Node) { g.addEdge(from, to, Anti, 0) }

// String renders the graph for debugging.
func (g *Graph) String() string {
	s := ""
	for _, nd := range g.Nodes {
		flag := ""
		if nd.Unprotected {
			flag = " [unprotected]"
		}
		if nd.Sentinel {
			flag += " [sentinel]"
		}
		s += fmt.Sprintf("%3d: %v%s\n", nd.Index, nd.Instr, flag)
		for _, e := range nd.In {
			s += fmt.Sprintf("      <- %d (%v, delay %d)\n", e.From.Index, e.Kind, e.Delay)
		}
	}
	return s
}
