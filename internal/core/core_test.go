package core

import (
	"fmt"
	"testing"

	"sentinel/internal/ir"
	"sentinel/internal/machine"
	"sentinel/internal/mem"
	"sentinel/internal/prog"
	"sentinel/internal/sim"
)

// figure1 builds the paper's Figure 1(a) fragment as a superblock program,
// with an entry block supplying live-in registers. The store offset is 8
// (not the paper's 4) so it provably does not overlap B's 8-byte load.
func figure1() (*prog.Program, *mem.Memory) {
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(2), 0x1000),
		ir.LI(ir.R(4), 0x2000),
	)
	sb := p.AddBlock("main",
		ir.BRI(ir.Beq, ir.R(2), 0, "L1"),     // A
		ir.LOAD(ir.Ld, ir.R(1), ir.R(2), 0),  // B
		ir.LOAD(ir.Ld, ir.R(3), ir.R(4), 0),  // C
		ir.ALUI(ir.Add, ir.R(4), ir.R(1), 1), // D
		ir.ALUI(ir.Mul, ir.R(5), ir.R(3), 9), // E
		ir.STORE(ir.St, ir.R(2), 8, ir.R(4)), // F
		ir.HALT(),
	)
	sb.Superblock = true
	p.AddBlock("L1", ir.JSR("putint", ir.R(0)), ir.HALT())
	m := mem.New()
	m.Map("b", 0x1000, 64)
	m.Map("c", 0x2000, 64)
	m.Write(0x1000, 8, 11)
	m.Write(0x2000, 8, 22)
	return p, m
}

func find(b *prog.Block, op ir.Op) []*ir.Instr {
	var out []*ir.Instr
	for _, in := range b.Instrs {
		if in.Op == op {
			out = append(out, in)
		}
	}
	return out
}

func position(b *prog.Block, in *ir.Instr) int {
	for i, x := range b.Instrs {
		if x == in {
			return i
		}
	}
	return -1
}

// TestFigure1Sentinel checks the structural properties of the paper's
// Figure 1(b) schedule under the sentinel model: the loads are speculated
// above the branch, an explicit check_exception protects any speculated
// unprotected instruction, sentinels stay in the home block (after the
// branch), and the store is not speculated.
func TestFigure1Sentinel(t *testing.T) {
	p, _ := figure1()
	md := machine.Base(8, machine.Sentinel)
	sched, stats, err := Schedule(p, md)
	if err != nil {
		t.Fatal(err)
	}
	main := sched.Block("main")
	branch := find(main, ir.Beq)[0]
	loads := find(main, ir.Ld)
	store := find(main, ir.St)[0]

	for _, ld := range loads {
		if !ld.Spec {
			t.Errorf("load %v must be speculative", ld)
		}
		if position(main, ld) > position(main, branch) {
			t.Errorf("speculated load %v must precede the branch in schedule order", ld)
		}
	}
	if store.Spec {
		t.Error("store must not be speculative under the sentinel model")
	}
	if bp, sp := position(main, branch), position(main, store); sp < bp {
		t.Error("store must remain below the branch")
	}
	// Every inserted check must sit in the home block: after the branch,
	// before the halt.
	checks := find(main, ir.Check)
	if len(checks) != stats.Sentinels {
		t.Errorf("found %d checks, stats say %d", len(checks), stats.Sentinels)
	}
	halt := find(main, ir.Halt)[0]
	for _, c := range checks {
		cp := position(main, c)
		if cp < position(main, branch) || cp > position(main, halt) {
			t.Errorf("check %v escaped the home block", c)
		}
	}
	if stats.Speculative < 2 {
		t.Errorf("expected at least the two loads speculated, got %d", stats.Speculative)
	}
}

// TestFigure1ModelContrasts: restricted speculates no trapping instruction;
// general inserts no sentinels; sentinel+stores speculates the store and
// inserts a confirm.
func TestFigure1ModelContrasts(t *testing.T) {
	p, _ := figure1()

	r, rstats, err := Schedule(p, machine.Base(8, machine.Restricted))
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range r.Block("main").Instrs {
		if in.Spec && ir.Traps(in.Op) {
			t.Errorf("restricted percolation speculated trapping %v", in)
		}
	}
	if rstats.Sentinels != 0 || rstats.Confirms != 0 {
		t.Errorf("restricted must insert no sentinels: %+v", rstats)
	}

	g, gstats, err := Schedule(p, machine.Base(8, machine.General))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(find(g.Block("main"), ir.Check)); n != 0 || gstats.Sentinels != 0 {
		t.Errorf("general percolation must insert no checks (%d, %+v)", n, gstats)
	}

	// For the speculative-store contrast, the branch condition must come
	// from a load (otherwise the branch issues immediately and nothing
	// needs to speculate): ld r5; beq r5,0; st r7.
	ps := prog.NewProgram()
	ps.AddBlock("entry",
		ir.LI(ir.R(2), 0x1000),
		ir.LI(ir.R(4), 0x2000),
		ir.LI(ir.R(7), 7),
	)
	sb := ps.AddBlock("main",
		ir.LOAD(ir.Ld, ir.R(5), ir.R(2), 0),
		ir.BRI(ir.Beq, ir.R(5), 0, "L1"),
		ir.STORE(ir.St, ir.R(4), 0, ir.R(7)),
		ir.HALT(),
	)
	sb.Superblock = true
	ps.AddBlock("L1", ir.HALT())

	ts, tstats, err := Schedule(ps, machine.Base(8, machine.SentinelStores))
	if err != nil {
		t.Fatal(err)
	}
	main := ts.Block("main")
	store := find(main, ir.St)[0]
	if !store.Spec {
		t.Fatalf("store must be speculated under sentinel+stores:\n%s", ts)
	}
	confirms := find(main, ir.ConfirmSt)
	if len(confirms) != 1 || tstats.Confirms != 1 {
		t.Fatalf("want exactly one confirm, got %d (%+v)", len(confirms), tstats)
	}
	cf := confirms[0]
	if cf.Imm < 0 {
		t.Error("confirm index must be resolved")
	}
	branch := find(main, ir.Beq)[0]
	if position(main, cf) < position(main, branch) {
		t.Error("confirm must stay in the store's home block (after the branch)")
	}
	// The resolved index must equal the number of buffered stores between
	// the store and its confirm.
	n := int64(0)
	for i := position(main, store) + 1; i < position(main, cf); i++ {
		if ir.BufferedStore(main.Instrs[i].Op) {
			n++
		}
	}
	if cf.Imm != n {
		t.Errorf("confirm index %d, want %d", cf.Imm, n)
	}
}

// figure3 builds the paper's Figure 3(a) fragment:
//
//	A: jsr
//	B: r5 = mem(r3+0)
//	C: if (r5==0) goto L1
//	D: r1 = mem(r6+0)
//	E: r2 = r2+1
//	F: mem(r4+0) = r7
//	G: r8 = r1+1
//	H: r9 = mem(r2+0)
func figure3() *prog.Program {
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(3), 0x1000),
		ir.LI(ir.R(6), 0x2000),
		ir.LI(ir.R(4), 0x3000),
		ir.LI(ir.R(2), 0x3FF0),
		ir.LI(ir.R(7), 7),
	)
	sb := p.AddBlock("main",
		ir.JSR("putint", ir.R(7)),            // A
		ir.LOAD(ir.Ld, ir.R(5), ir.R(3), 0),  // B
		ir.BRI(ir.Beq, ir.R(5), 0, "L1"),     // C
		ir.LOAD(ir.Ld, ir.R(1), ir.R(6), 0),  // D
		ir.ALUI(ir.Add, ir.R(2), ir.R(2), 1), // E: self-modifying
		ir.STORE(ir.St, ir.R(4), 0, ir.R(7)), // F
		ir.ALUI(ir.Add, ir.R(8), ir.R(1), 1), // G: sentinel for D
		ir.LOAD(ir.Ld, ir.R(9), ir.R(2), 0),  // H
		ir.HALT(),
	)
	sb.Superblock = true
	p.AddBlock("L1", ir.HALT())
	return p
}

// TestFigure3Recovery checks the §3.7 scheduling constraints: the renaming
// transformation splits E, nothing crosses the irreversible jsr, and the
// schedule stays architecturally correct.
func TestFigure3Recovery(t *testing.T) {
	p := figure3()
	md := machine.Base(8, machine.Sentinel).WithRecovery()
	sched, stats, err := Schedule(p, md)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Renamed != 1 {
		t.Errorf("Renamed = %d, want 1 (instruction E split)", stats.Renamed)
	}
	if stats.ForcedIssues != 0 {
		t.Errorf("ForcedIssues = %d: Figure 3 must schedule without violations", stats.ForcedIssues)
	}
	main := sched.Block("main")
	// The jsr is an irreversible barrier: it must stay the first
	// instruction in schedule order.
	if main.Instrs[0].Op != ir.Jsr {
		t.Errorf("first scheduled instruction is %v, want jsr (irreversible barrier)", main.Instrs[0])
	}
	// E was split: there must be a mov restoring r2 from the rename
	// register, scheduled after D's sentinel-carrying use (G).
	movs := find(main, ir.Mov)
	if len(movs) != 1 {
		t.Fatalf("want 1 rename move, got %d:\n%s", len(movs), main.Instrs)
	}
	if movs[0].Dest != ir.R(2) {
		t.Errorf("rename move writes %v, want r2", movs[0].Dest)
	}

	// Execute: the result must match the reference interpreter.
	run := mem.New()
	run.Map("b", 0x1000, 8)
	run.Map("d", 0x2000, 8)
	run.Map("f", 0x3000, 0x1000)
	run.Write(0x1000, 8, 1) // r5 != 0: fall through
	ref, err := prog.Run(p, run.Clone(), prog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.Run(sched, md, run, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.MemSum != ref.MemSum || len(got.Out) != len(ref.Out) {
		t.Errorf("architectural mismatch after recovery scheduling")
	}
}

// TestRecoveryEndToEnd: under a recovery schedule, a page fault on a
// speculative load is reported by its sentinel, repaired, re-executed, and
// the program result is correct.
func TestRecoveryEndToEnd(t *testing.T) {
	p := figure3()
	md := machine.Base(8, machine.Sentinel).WithRecovery()
	sched, _, err := Schedule(p, md)
	if err != nil {
		t.Fatal(err)
	}
	run := mem.New()
	run.Map("b", 0x1000, 8)
	dseg := run.Map("d", 0x2000, 8)
	run.Map("f", 0x3000, 0x1000)
	run.Write(0x1000, 8, 1)
	run.Write(0x2000, 8, 500)
	dseg.Present = false // D will page-fault

	ref, err := prog.Run(p, mustPresentClone(run, "d"), prog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	recovered := 0
	got, err := sim.Run(sched, md, run, sim.Options{
		Handler: func(exc sim.Exception, m *sim.Machine) bool {
			recovered++
			if exc.Kind != ir.ExcPageFault {
				t.Errorf("kind = %v", exc.Kind)
			}
			dseg.Present = true
			return true
		},
	})
	if err != nil {
		t.Fatalf("recovery run: %v", err)
	}
	if recovered == 0 {
		t.Fatal("the page fault was never signalled")
	}
	if got.MemSum != ref.MemSum {
		t.Error("memory diverged after recovery")
	}
	for i := range ref.Out {
		if got.Out[i] != ref.Out[i] {
			t.Errorf("out[%d] = %d, want %d", i, got.Out[i], ref.Out[i])
		}
	}
}

func mustPresentClone(m *mem.Memory, seg string) *mem.Memory {
	c := m.Clone()
	c.Segment(seg).Present = true
	return c
}

// TestClearTagInsertion: a register read before any write gets a ClearTag
// at program entry under tag-using models only (§3.5).
func TestClearTagInsertion(t *testing.T) {
	build := func() *prog.Program {
		p := prog.NewProgram()
		p.AddBlock("main",
			ir.ALUI(ir.Add, ir.R(1), ir.R(9), 1), // r9 never defined
			ir.JSR("putint", ir.R(1)),
			ir.HALT(),
		)
		return p
	}
	s, stats, err := Schedule(build(), machine.Base(2, machine.Sentinel))
	if err != nil {
		t.Fatal(err)
	}
	if stats.ClearTags != 1 {
		t.Errorf("ClearTags = %d, want 1", stats.ClearTags)
	}
	ct := find(s.Block("main"), ir.ClearTag)
	if len(ct) != 1 || ct[0].Dest != ir.R(9) {
		t.Errorf("cleartag instrs: %v", ct)
	}

	g, gstats, err := Schedule(build(), machine.Base(2, machine.General))
	if err != nil {
		t.Fatal(err)
	}
	if gstats.ClearTags != 0 || len(find(g.Block("main"), ir.ClearTag)) != 0 {
		t.Error("general percolation needs no tag resets")
	}
}

// TestScheduleLegality: for random superblocks, the emitted schedule must
// respect issue width and every dependence-graph edge.
func TestScheduleLegality(t *testing.T) {
	for seed := uint32(1); seed <= 40; seed++ {
		p, m := randomProgram(seed)
		for _, model := range []machine.Model{machine.Restricted, machine.General,
			machine.Sentinel, machine.SentinelStores, machine.Boosting} {
			for _, w := range []int{1, 2, 4, 8} {
				md := machine.Base(w, model)
				sched, _, err := Schedule(p, md)
				if err != nil {
					t.Fatalf("seed %d %v w%d: %v", seed, model, w, err)
				}
				// Issue-width legality.
				for _, b := range sched.Blocks {
					perCycle := map[int]int{}
					for _, in := range b.Instrs {
						perCycle[in.Cycle]++
						if perCycle[in.Cycle] > w {
							t.Fatalf("seed %d %v w%d: cycle %d over-subscribed", seed, model, w, in.Cycle)
						}
					}
				}
				// Differential correctness.
				ref, err := prog.Run(p, m.Clone(), prog.Options{})
				if err != nil {
					t.Fatal(err)
				}
				got, err := sim.Run(sched, md, m.Clone(), sim.Options{})
				if err != nil {
					t.Fatalf("seed %d %v w%d: %v\n%s", seed, model, w, err, sched)
				}
				if got.MemSum != ref.MemSum {
					t.Fatalf("seed %d %v w%d: memory mismatch", seed, model, w)
				}
				for i := range ref.Out {
					if got.Out[i] != ref.Out[i] {
						t.Fatalf("seed %d %v w%d: out[%d] %d != %d", seed, model, w, i, got.Out[i], ref.Out[i])
					}
				}
			}
		}
	}
}

// randomProgram builds a deterministic pseudo-random superblock program
// with loads, stores, ALU ops and side exits, plus an input memory.
func randomProgram(seed uint32) (*prog.Program, *mem.Memory) {
	s := seed
	rnd := func(n int) int {
		s = s*1664525 + 1013904223
		return int(s>>16) % n
	}
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), 0x1000), // array a
		ir.LI(ir.R(2), 0x2000), // array b
		ir.LI(ir.R(3), 0),      // accumulator
		ir.LI(ir.R(4), 1),
	)
	var instrs []*ir.Instr
	nexits := 0
	for i := 0; i < 20+rnd(20); i++ {
		switch rnd(6) {
		case 0:
			instrs = append(instrs, ir.LOAD(ir.Ld, ir.R(5+rnd(3)), ir.R(1), int64(rnd(8)*8)))
		case 1:
			instrs = append(instrs, ir.LOAD(ir.Ld, ir.R(5+rnd(3)), ir.R(2), int64(rnd(8)*8)))
		case 2:
			instrs = append(instrs, ir.ALU(ir.Add, ir.R(3), ir.R(3), ir.R(5+rnd(3))))
		case 3:
			instrs = append(instrs, ir.STORE(ir.St, ir.R(2), int64(rnd(8)*8), ir.R(3)))
		case 4:
			instrs = append(instrs, ir.ALUI(ir.Mul, ir.R(5+rnd(3)), ir.R(3), int64(rnd(9)+1)))
		case 5:
			if nexits < 3 {
				instrs = append(instrs, ir.BRI(ir.Blt, ir.R(3), int64(-1-rnd(4)), fmt.Sprintf("x%d", nexits)))
				nexits++
			} else {
				instrs = append(instrs, ir.ALUI(ir.Add, ir.R(3), ir.R(3), 1))
			}
		}
	}
	instrs = append(instrs, ir.JSR("putint", ir.R(3)), ir.HALT())
	sb := p.AddBlock("main", instrs...)
	sb.Superblock = true
	for i := 0; i < 3; i++ {
		p.AddBlock(fmt.Sprintf("x%d", i),
			ir.JSR("putint", ir.R(5)),
			ir.HALT())
	}
	m := mem.New()
	m.Map("a", 0x1000, 128)
	m.Map("b", 0x2000, 128)
	for i := 0; i < 16; i++ {
		m.Write(0x1000+int64(i)*8, 8, uint64(rnd(100)))
		m.Write(0x2000+int64(i)*8, 8, uint64(rnd(100)))
	}
	return p, m
}

// TestScheduleRejectsBadMachine: invalid configurations must be refused.
func TestScheduleRejectsBadMachine(t *testing.T) {
	p, _ := figure1()
	if _, _, err := Schedule(p, machine.Desc{IssueWidth: 0, StoreBuffer: 8}); err == nil {
		t.Error("invalid machine accepted")
	}
}

// TestSplitSelfModifyingUnit exercises the renaming transformation directly.
func TestSplitSelfModifyingUnit(t *testing.T) {
	p := prog.NewProgram()
	b := p.AddBlock("sb",
		ir.ALUI(ir.Add, ir.R(2), ir.R(2), 1),      // split
		ir.ALU(ir.Add, ir.R(3), ir.R(2), ir.R(2)), // uses renamed r2
		ir.BRI(ir.Beq, ir.R(3), 0, "out"),
		ir.ALU(ir.Add, ir.R(4), ir.R(2), ir.R(3)), // next home block: uses r2 via move
		ir.HALT(),
	)
	b.Superblock = true
	p.AddBlock("out", ir.HALT())
	n := splitSelfModifying(p, b)
	if n != 1 {
		t.Fatalf("split = %d, want 1", n)
	}
	// First instruction now writes a fresh register, not r2.
	if b.Instrs[0].Dest == ir.R(2) {
		t.Error("dest must be renamed")
	}
	tmp := b.Instrs[0].Dest
	if b.Instrs[1].Src1 != tmp || b.Instrs[1].Src2 != tmp {
		t.Errorf("uses inside home block must read %v: %v", tmp, b.Instrs[1])
	}
	// A move r2 = tmp must appear before the branch (end of home block).
	mv := b.Instrs[2]
	if mv.Op != ir.Mov || mv.Dest != ir.R(2) || mv.Src1 != tmp {
		t.Errorf("expected move before home block end, got %v", mv)
	}
	// The use in the next home block still reads r2.
	var later *ir.Instr
	for _, in := range b.Instrs {
		if in.Dest == ir.R(4) {
			later = in
		}
	}
	if later.Src1 != ir.R(2) {
		t.Errorf("later home block must read the original register: %v", later)
	}
}
