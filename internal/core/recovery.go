package core

import (
	"sentinel/internal/ir"
	"sentinel/internal/prog"
)

// splitSelfModifying applies the renaming transformation of §3.7 to a
// superblock: every instruction that overwrites one of its own source
// registers (e.g. r2 = r2+1) is split into an operation writing a fresh
// register plus a move that updates the original register at the end of the
// instruction's home block:
//
//	E: r2 = r2+1   =>   E': r10 = r2+1 ... I: r2 = r10
//
// Uses of r2 between E and the move are renamed to r10. Such instructions
// would otherwise break restartable sequences (§3.7 restriction 3): after a
// partial execution their input is destroyed, so the sequence could not be
// re-executed. The move is an ordinary instruction; the scheduler's dynamic
// region tracking keeps it after the sentinels of any speculative
// instructions that moved beyond the original position (restriction 4).
//
// It returns the number of instructions split.
func splitSelfModifying(p *prog.Program, b *prog.Block) int {
	used := usedRegs(p)
	split := 0
	for i := 0; i < len(b.Instrs); i++ {
		in := b.Instrs[i]
		if !in.SelfModifying() {
			continue
		}
		d, _ := in.Def()
		tmp, ok := freeReg(used, d.Class)
		if !ok {
			continue // no free register: the scheduler's deferral still protects
		}
		used[tmp] = true

		in.Dest = tmp
		end := homeEndIndex(b, i)
		movePos := end
		needMove := true
		for j := i + 1; j < end; j++ {
			renameUses(b.Instrs[j], d, tmp)
			if dj, ok := b.Instrs[j].Def(); ok && dj == d {
				// d is redefined before the home block ends: the split value
				// dies here and no move is needed.
				needMove = false
				break
			}
		}
		if needMove {
			var mv *ir.Instr
			if d.Class == ir.IntClass {
				mv = ir.MOV(d, tmp)
			} else {
				mv = ir.FMOV(d, tmp)
			}
			rest := make([]*ir.Instr, 0, len(b.Instrs)+1)
			rest = append(rest, b.Instrs[:movePos]...)
			rest = append(rest, mv)
			rest = append(rest, b.Instrs[movePos:]...)
			b.Instrs = rest
		}
		split++
	}
	return split
}

// homeEndIndex returns the index of the first control instruction after i,
// or len(instrs).
func homeEndIndex(b *prog.Block, i int) int {
	for j := i + 1; j < len(b.Instrs); j++ {
		if ir.IsControl(b.Instrs[j].Op) {
			return j
		}
	}
	return len(b.Instrs)
}

func renameUses(in *ir.Instr, from, to ir.Reg) {
	if in.Src1 == from {
		in.Src1 = to
	}
	if in.Src2 == from {
		in.Src2 = to
	}
}

// usedRegs collects every register mentioned anywhere in the program.
func usedRegs(p *prog.Program) map[ir.Reg]bool {
	used := map[ir.Reg]bool{}
	for _, b := range p.Blocks {
		for _, in := range b.Instrs {
			if in.Dest.Valid() {
				used[in.Dest] = true
			}
			if in.Src1.Valid() {
				used[in.Src1] = true
			}
			if in.Src2.Valid() {
				used[in.Src2] = true
			}
		}
	}
	return used
}

// freeReg returns a physical register of the given class that the program
// never mentions.
func freeReg(used map[ir.Reg]bool, class ir.RegClass) (ir.Reg, bool) {
	n := ir.NumIntRegs
	mk := ir.R
	if class == ir.FPClass {
		n = ir.NumFPRegs
		mk = ir.F
	}
	// r0 is hardwired zero; start at 1 for the integer file.
	start := 0
	if class == ir.IntClass {
		start = 1
	}
	for i := start; i < n; i++ {
		if r := mk(i); !used[r] {
			return r, true
		}
	}
	return ir.NoReg, false
}
