package core

import (
	"testing"

	"sentinel/internal/machine"
	"sentinel/internal/prog"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

// benchFormed builds and superblock-forms one workload kernel, returning the
// scheduler's input program. The heavy lifting (profiling, formation) is out
// of the measured loop.
func benchFormed(b *testing.B, name string) *prog.Program {
	b.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		b.Fatalf("unknown workload %q", name)
	}
	p, m := w.Build()
	p.Layout()
	ref, err := prog.Run(p, m, prog.Options{Collect: true})
	if err != nil {
		b.Fatal(err)
	}
	f := superblock.Form(p, ref.Profile, superblock.Options{})
	f.Layout()
	return f
}

// BenchmarkScheduleBlock measures list-scheduling throughput on the kernels
// with the largest formed superblocks (nasa7: 134 instructions, tomcatv:
// 119, doduc: 109, espresso: 53, cmp: 45), under the model that exercises
// every scheduler feature (sentinel + speculative stores). These are the
// perf-trajectory benchmarks recorded in BENCH_schedule.json; CI fails on a
// >20% ns/op regression against the committed baseline.
func BenchmarkScheduleBlock(b *testing.B) {
	for _, name := range []string{"nasa7", "tomcatv", "doduc", "espresso", "cmp"} {
		b.Run(name, func(b *testing.B) {
			f := benchFormed(b, name)
			md := machine.Base(8, machine.SentinelStores)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := Schedule(f, md); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScheduleRecovery measures the recovery-constrained scheduler
// (dynamic region tracking is its own hot path) on the largest kernel.
func BenchmarkScheduleRecovery(b *testing.B) {
	f := benchFormed(b, "nasa7")
	md := machine.Base(8, machine.Sentinel).WithRecovery()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Schedule(f, md); err != nil {
			b.Fatal(err)
		}
	}
}
