package core

// The seed (pre-dense-index) list scheduler, kept verbatim as a differential
// oracle: it scans g.Nodes for every decision and keys all per-node state by
// *depgraph.Node maps, which makes it O(n^2 .. n^3) per block but trivially
// auditable against the paper's Appendix. The production scheduler in
// schedule.go must emit byte-identical programs; TestSchedulerMatchesReference
// (core) and TestDenseSchedulerMatchesReferenceOnCorpus (eval) enforce that on
// the full workload set and on differential-fuzz corpus inputs. It is not
// used on any production path.

import (
	"fmt"
	"sort"

	"sentinel/internal/alias"
	"sentinel/internal/dataflow"
	"sentinel/internal/depgraph"
	"sentinel/internal/ir"
	"sentinel/internal/machine"
	"sentinel/internal/prog"
)

// ScheduleReference compiles p exactly like Schedule but through the seed
// scheduler. Exported for the differential tests in this package and in
// internal/eval; production callers use Schedule.
func ScheduleReference(p *prog.Program, md machine.Desc) (*prog.Program, Stats, error) {
	var stats Stats
	if err := md.Validate(); err != nil {
		return nil, stats, err
	}
	p = p.Clone()

	if md.Recovery {
		for _, b := range p.Blocks {
			if b.Superblock {
				stats.Renamed += splitSelfModifying(p, b)
			}
		}
	}

	lv := dataflow.Compute(p)
	if md.Model.UsesTags() {
		stats.ClearTags += insertClearTags(p, lv)
		lv = dataflow.Compute(p)
	}
	pv := alias.Analyze(p)

	for _, b := range p.Blocks {
		if len(b.Instrs) == 0 {
			continue
		}
		s, err := refScheduleBlock(b, lv, pv, md)
		if err != nil {
			return nil, stats, fmt.Errorf("core: block %q: %w", b.Label, err)
		}
		stats.add(s)
	}
	p.Layout()
	if err := p.Validate(); err != nil {
		return nil, stats, fmt.Errorf("core: scheduled program invalid: %w", err)
	}
	return p, stats, nil
}

type refScheduler struct {
	g       *depgraph.Graph
	pv      *alias.Provenance
	md      machine.Desc
	cycleOf map[*depgraph.Node]int
	slotOf  map[*depgraph.Node]int
	height  map[*depgraph.Node]int
	done    map[*depgraph.Node]bool
	regions []*region
	stores  []*openStore
	pairs   map[*depgraph.Node]*depgraph.Node // spec store -> confirm
	stats   Stats
}

func refScheduleBlock(b *prog.Block, lv *dataflow.Liveness, pv *alias.Provenance, md machine.Desc) (Stats, error) {
	g := depgraph.Build(b, lv, pv)
	g.Reduce(md)
	s := &refScheduler{
		g:       g,
		pv:      pv,
		md:      md,
		cycleOf: map[*depgraph.Node]int{},
		slotOf:  map[*depgraph.Node]int{},
		height:  map[*depgraph.Node]int{},
		done:    map[*depgraph.Node]bool{},
		pairs:   map[*depgraph.Node]*depgraph.Node{},
	}
	s.stats.RemovedControl = g.RemovedControl
	for _, nd := range g.Nodes {
		s.computeHeight(nd)
	}
	if err := s.run(); err != nil {
		return s.stats, err
	}
	s.emit(b)
	return s.stats, nil
}

// computeHeight returns the latency-weighted critical-path height of nd.
func (s *refScheduler) computeHeight(nd *depgraph.Node) int {
	if h, ok := s.height[nd]; ok {
		return h
	}
	h := machine.Latency(nd.Instr.Op)
	for _, e := range nd.Out {
		if c := e.Delay + s.computeHeight(e.To); c > h {
			h = c
		}
	}
	s.height[nd] = h
	return h
}

// ready reports whether nd can issue at the given cycle.
func (s *refScheduler) ready(nd *depgraph.Node, cycle int) bool {
	for _, e := range nd.In {
		if !s.done[e.From] || s.cycleOf[e.From]+e.Delay > cycle {
			return false
		}
	}
	return true
}

// earliest returns the earliest cycle nd's scheduled predecessors allow, or
// -1 if some predecessor is unscheduled.
func (s *refScheduler) earliest(nd *depgraph.Node) int {
	at := 0
	for _, e := range nd.In {
		if !s.done[e.From] {
			return -1
		}
		if c := s.cycleOf[e.From] + e.Delay; c > at {
			at = c
		}
	}
	return at
}

func (s *refScheduler) deferral(nd *depgraph.Node) deferReason {
	in := nd.Instr
	if ir.BufferedStore(in.Op) {
		for _, os := range s.stores {
			if os.storesSince >= s.md.StoreBuffer-1 {
				return deferStoreSep
			}
		}
	}
	if s.md.Recovery && len(s.regions) > 0 {
		if d, ok := in.Def(); ok {
			for _, rg := range s.regions {
				if rg.protected.Has(d) {
					return deferRecovery
				}
			}
		}
		if in.SelfModifying() {
			return deferRecovery
		}
		if ir.IsStore(in.Op) && refStoreAliasesRegionLoad(s.pv, s.regions, in) {
			return deferRecovery
		}
	}
	return deferNo
}

// refStoreAliasesRegionLoad mirrors scheduler.storeAliasesRegionLoad.
func refStoreAliasesRegionLoad(pv *alias.Provenance, regions []*region, st *ir.Instr) bool {
	lo := st.Imm
	hi := st.Imm + int64(ir.MemSize(st.Op))
	for _, rg := range regions {
		for _, ld := range rg.loads {
			if pv != nil && pv.Disjoint(st.Src1, ld.base) {
				continue
			}
			if ld.poisoned || rg.poisoned.Has(st.Src1) || ld.base != st.Src1 ||
				(lo < ld.hi && ld.lo < hi) {
				return true
			}
		}
	}
	return false
}

// speculative reports whether issuing nd now moves it above a branch.
func (s *refScheduler) speculative(nd *depgraph.Node) bool {
	if nd.Sentinel || ir.IsControl(nd.Instr.Op) {
		return false
	}
	for _, other := range s.g.Nodes {
		if !other.Sentinel && ir.IsControl(other.Instr.Op) &&
			other.Index < nd.Index && !s.done[other] {
			return true
		}
	}
	return false
}

func (s *refScheduler) issue(nd *depgraph.Node, cycle, slot int) {
	s.done[nd] = true
	s.cycleOf[nd] = cycle
	s.slotOf[nd] = slot
	in := nd.Instr

	willSpec := s.speculative(nd)

	if s.md.Recovery && len(s.regions) > 0 {
		var keep []*region
		for _, rg := range s.regions {
			closed := rg.confirm == nd ||
				(!nd.Sentinel && ir.IsControl(in.Op) && rg.homeEnd == nd.Index)
			if !closed && !willSpec && !ir.IsControl(in.Op) {
				for _, u := range in.Uses() {
					if rg.watch.Has(u) {
						closed = true
						break
					}
				}
			}
			if !closed {
				keep = append(keep, rg)
			}
		}
		s.regions = keep
	}
	if in.Op == ir.ConfirmSt {
		var keep []*openStore
		for _, os := range s.stores {
			if os.confirm != nd {
				keep = append(keep, os)
			}
		}
		s.stores = keep
	}
	if s.md.Model == machine.Boosting && !nd.Sentinel && ir.IsBranch(in.Op) {
		var keep []*openStore
		for _, os := range s.stores {
			os.branchesLeft--
			if os.branchesLeft > 0 {
				keep = append(keep, os)
			}
		}
		s.stores = keep
	}
	if ir.BufferedStore(in.Op) {
		for _, os := range s.stores {
			os.storesSince++
		}
	}

	var confirm *depgraph.Node
	if willSpec && s.md.Model == machine.Boosting {
		in.Spec = true
		s.stats.Speculative++
		in.BoostLevel = s.pendingBranchesAbove(nd)
		if ir.BufferedStore(in.Op) {
			s.stores = append(s.stores, &openStore{store: nd, branchesLeft: in.BoostLevel})
		}
	} else if willSpec {
		in.Spec = true
		s.stats.Speculative++
		usesTags := s.md.Model.UsesTags()
		switch {
		case ir.IsStore(in.Op):
			confirm = s.g.InsertConfirm(nd)
			s.computeHeight(confirm)
			s.pairs[nd] = confirm
			s.stores = append(s.stores, &openStore{store: nd, confirm: confirm})
			s.stats.Confirms++
		case usesTags && nd.Unprotected:
			chk := s.g.InsertSentinel(nd)
			if d, ok := in.Def(); ok {
				for _, w := range s.g.Nodes {
					if w == nd || s.done[w] {
						continue
					}
					if wd, wok := w.Instr.Def(); wok && wd == d {
						s.g.AddAnti(chk, w)
					}
				}
			}
			s.computeHeight(chk)
			s.stats.Sentinels++
		}
	}

	if s.md.Recovery {
		for _, rg := range s.regions {
			readsWatch := false
			for _, u := range in.Uses() {
				rg.protected.Add(u)
				if rg.watch.Has(u) {
					readsWatch = true
				}
			}
			if d, ok := in.Def(); ok {
				if in.Spec && readsWatch {
					rg.watch.Add(d)
				} else if rg.watch.Has(d) {
					rg.watch.Remove(d)
				}
				rg.poisoned.Add(d)
			}
			if ir.IsLoad(in.Op) {
				rg.loads = append(rg.loads, regionLoad{
					base:     in.Src1,
					lo:       in.Imm,
					hi:       in.Imm + int64(ir.MemSize(in.Op)),
					poisoned: rg.poisoned.Has(in.Src1),
				})
			}
		}
		if in.Spec && ir.Traps(in.Op) {
			rg := &region{spec: nd, homeEnd: nd.HomeEnd, confirm: confirm}
			if d, ok := in.Def(); ok {
				rg.watch.Add(d)
			}
			for _, u := range in.Uses() {
				rg.protected.Add(u)
			}
			if ir.IsLoad(in.Op) {
				rg.loads = append(rg.loads, regionLoad{
					base: in.Src1,
					lo:   in.Imm,
					hi:   in.Imm + int64(ir.MemSize(in.Op)),
				})
			}
			s.regions = append(s.regions, rg)
		}
	}
}

// run performs the cycle-driven list scheduling loop.
func (s *refScheduler) run() error {
	cycle := 0
	guard := 0
	for {
		unscheduled := 0
		for _, nd := range s.g.Nodes {
			if !s.done[nd] {
				unscheduled++
			}
		}
		if unscheduled == 0 {
			return nil
		}
		if guard++; guard > 1000000 {
			return fmt.Errorf("scheduler did not converge")
		}

		issued := 0
		for issued < s.md.IssueWidth {
			cand := s.pick(cycle)
			if cand == nil {
				break
			}
			s.issue(cand, cycle, issued)
			issued++
		}
		if issued > 0 {
			cycle++
			continue
		}

		next := -1
		for _, nd := range s.g.Nodes {
			if s.done[nd] {
				continue
			}
			if at := s.earliest(nd); at > cycle && (next == -1 || at < next) {
				next = at
			}
		}
		if next > cycle {
			cycle = next
			continue
		}
		if cand := s.pickDeferred(cycle, deferRecovery); cand != nil {
			s.stats.ForcedIssues++
			s.issue(cand, cycle, 0)
			cycle++
			continue
		}
		if s.pickDeferred(cycle, deferStoreSep) != nil {
			return fmt.Errorf("store-buffer separation constraint is unsatisfiable (buffer size %d)", s.md.StoreBuffer)
		}
		return fmt.Errorf("dependence cycle detected")
	}
}

// pick returns the best ready, non-deferred candidate at cycle, or nil.
func (s *refScheduler) pick(cycle int) *depgraph.Node {
	var best *depgraph.Node
	for _, nd := range s.g.Nodes {
		if s.done[nd] || !s.ready(nd, cycle) || s.deferral(nd) != deferNo {
			continue
		}
		if s.md.Recovery {
			bc := best != nil && ir.IsControl(best.Instr.Op)
			nc := ir.IsControl(nd.Instr.Op)
			if nc != bc {
				if nc {
					best = nd
				}
				continue
			}
		}
		if best == nil || s.better(nd, best) {
			best = nd
		}
	}
	return best
}

// pickDeferred returns the best ready candidate held back for the given
// reason.
func (s *refScheduler) pickDeferred(cycle int, reason deferReason) *depgraph.Node {
	var best *depgraph.Node
	for _, nd := range s.g.Nodes {
		if s.done[nd] || !s.ready(nd, cycle) || s.deferral(nd) != reason {
			continue
		}
		if best == nil || s.better(nd, best) {
			best = nd
		}
	}
	return best
}

// pendingBranchesAbove counts the conditional branches that precede nd in
// the original order but are not yet scheduled.
func (s *refScheduler) pendingBranchesAbove(nd *depgraph.Node) int {
	n := 0
	for _, other := range s.g.Nodes {
		if !other.Sentinel && ir.IsBranch(other.Instr.Op) &&
			other.Index < nd.Index && !s.done[other] {
			n++
		}
	}
	return n
}

// better orders candidates by critical-path height, then by original
// program order for determinism.
func (s *refScheduler) better(a, b *depgraph.Node) bool {
	ha, hb := s.height[a], s.height[b]
	if ha != hb {
		return ha > hb
	}
	if a.Index != b.Index {
		return a.Index < b.Index
	}
	return !a.Sentinel && b.Sentinel
}

// emit rewrites the block's instructions in schedule order and resolves
// confirm_store indices.
func (s *refScheduler) emit(b *prog.Block) {
	nodes := make([]*depgraph.Node, len(s.g.Nodes))
	copy(nodes, s.g.Nodes)
	sort.Slice(nodes, func(i, j int) bool {
		ci, cj := s.cycleOf[nodes[i]], s.cycleOf[nodes[j]]
		if ci != cj {
			return ci < cj
		}
		return s.slotOf[nodes[i]] < s.slotOf[nodes[j]]
	})
	instrs := make([]*ir.Instr, len(nodes))
	pos := map[*depgraph.Node]int{}
	for i, nd := range nodes {
		nd.Instr.Cycle = s.cycleOf[nd]
		nd.Instr.Slot = s.slotOf[nd]
		instrs[i] = nd.Instr
		pos[nd] = i
	}
	for store, confirm := range s.pairs {
		n := int64(0)
		for i := pos[store] + 1; i < pos[confirm]; i++ {
			if ir.BufferedStore(instrs[i].Op) {
				n++
			}
		}
		confirm.Instr.Imm = n
	}
	b.Instrs = instrs
}
