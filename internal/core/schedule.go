// Package core implements sentinel superblock scheduling (Mahlke et al.,
// ASPLOS 1992) and the speculative code-motion models it is compared
// against: restricted percolation, general percolation, sentinel scheduling
// with speculative stores, and instruction boosting (§2.3, with shadow
// register files).
//
// Scheduling consists of dependence-graph construction and reduction
// (package depgraph) followed by the modified list scheduling of the
// paper's Appendix: when an unprotected instruction is moved above a branch,
// an explicit sentinel (check_exception for register-writing instructions,
// confirm_store for stores) is inserted into its home block and added to the
// unscheduled set; the speculative modifier is set on every instruction that
// moved above a branch.
package core

import (
	"fmt"
	"sort"

	"sentinel/internal/alias"
	"sentinel/internal/dataflow"
	"sentinel/internal/depgraph"
	"sentinel/internal/ir"
	"sentinel/internal/machine"
	"sentinel/internal/prog"
)

// Stats reports what scheduling did, for the paper's ablation experiments.
type Stats struct {
	// Speculative counts instructions whose speculative modifier was set.
	Speculative int
	// Sentinels counts explicit check_exception instructions inserted.
	Sentinels int
	// Confirms counts confirm_store instructions inserted.
	Confirms int
	// RemovedControl counts control dependences removed by reduction.
	RemovedControl int
	// ClearTags counts exception-tag resets inserted for possibly
	// uninitialized registers (§3.5).
	ClearTags int
	// Renamed counts self-modifying instructions split by the recovery
	// renaming transformation (§3.7).
	Renamed int
	// ForcedIssues counts instructions issued in violation of a recovery
	// deferral to break a scheduling deadlock; a nonzero value means the
	// schedule is not fully restartable (it is still architecturally
	// correct).
	ForcedIssues int
}

func (s *Stats) add(o Stats) {
	s.Speculative += o.Speculative
	s.Sentinels += o.Sentinels
	s.Confirms += o.Confirms
	s.RemovedControl += o.RemovedControl
	s.ClearTags += o.ClearTags
	s.Renamed += o.Renamed
	s.ForcedIssues += o.ForcedIssues
}

// Schedule compiles p for the machine md: every block is list-scheduled
// under md's speculation model. It returns a new scheduled program (p is not
// modified) with Cycle/Slot assigned on every instruction and sentinels
// inserted as needed.
func Schedule(p *prog.Program, md machine.Desc) (*prog.Program, Stats, error) {
	var stats Stats
	if err := md.Validate(); err != nil {
		return nil, stats, err
	}
	p = p.Clone()

	if md.Recovery {
		for _, b := range p.Blocks {
			if b.Superblock {
				stats.Renamed += splitSelfModifying(p, b)
			}
		}
	}

	lv := dataflow.Compute(p)
	if md.Model.UsesTags() {
		stats.ClearTags += insertClearTags(p, lv)
		lv = dataflow.Compute(p) // ClearTags define registers
	}
	pv := alias.Analyze(p)

	for _, b := range p.Blocks {
		if len(b.Instrs) == 0 {
			continue
		}
		s, err := scheduleBlock(b, lv, pv, md)
		if err != nil {
			return nil, stats, fmt.Errorf("core: block %q: %w", b.Label, err)
		}
		stats.add(s)
	}
	p.Layout()
	if err := p.Validate(); err != nil {
		return nil, stats, fmt.Errorf("core: scheduled program invalid: %w", err)
	}
	return p, stats, nil
}

// insertClearTags prepends ClearTag instructions to the entry block for
// every register that may be read before being written (§3.5): such a
// register could carry a stale exception tag and cause a spurious signal.
func insertClearTags(p *prog.Program, lv *dataflow.Liveness) int {
	uninit := lv.UninitializedAtEntry()
	regs := uninit.Regs()
	if len(regs) == 0 {
		return 0
	}
	entry := p.Block(p.Entry)
	pre := make([]*ir.Instr, 0, len(regs))
	for _, r := range regs {
		pre = append(pre, ir.CLEARTAG(r))
	}
	entry.Instrs = append(pre, entry.Instrs...)
	return len(regs)
}

// region tracks one open restartable sequence (§3.7): from a speculative
// trapping instruction until its sentinel executes, the register AND memory
// inputs of every instruction issued in between must be preserved, or the
// sequence could not be re-executed.
type region struct {
	spec *depgraph.Node
	// watch is the set of registers currently carrying the speculative
	// exception condition; the first non-speculative reader of any of them
	// is the sentinel and closes the region. Speculative readers propagate
	// the condition to their destinations.
	watch dataflow.RegSet
	// confirm closes the region instead, for speculative stores (§4).
	confirm *depgraph.Node
	// homeEnd is the original index of the control instruction ending the
	// speculative instruction's home block: a backstop close (every
	// sentinel is constrained to issue before it).
	homeEnd int
	// protected registers may not be overwritten while the region is open.
	protected dataflow.RegSet
	// loads records the memory references read inside the region; a store
	// that may alias any of them must wait for the region to close
	// (restriction 4 "for both register and memory operands").
	loads []regionLoad
	// poisoned registers were redefined inside the region, invalidating
	// base-register disambiguation against recorded loads.
	poisoned dataflow.RegSet
}

// regionLoad is a memory input recorded while a region is open.
type regionLoad struct {
	base     ir.Reg
	lo, hi   int64
	poisoned bool // base register value no longer comparable
}

// openStore tracks a speculative store awaiting its confirm (sentinel
// model) or the branches that commit it (boosting model), for the
// store-buffer separation constraint of §4.2 and its boosting analogue.
type openStore struct {
	store        *depgraph.Node
	confirm      *depgraph.Node
	branchesLeft int // boosting: commits when this many branches have issued
	storesSince  int
}

type scheduler struct {
	g       *depgraph.Graph
	pv      *alias.Provenance
	md      machine.Desc
	cycleOf map[*depgraph.Node]int
	slotOf  map[*depgraph.Node]int
	height  map[*depgraph.Node]int
	done    map[*depgraph.Node]bool
	regions []*region
	stores  []*openStore
	pairs   map[*depgraph.Node]*depgraph.Node // spec store -> confirm
	stats   Stats
}

func scheduleBlock(b *prog.Block, lv *dataflow.Liveness, pv *alias.Provenance, md machine.Desc) (Stats, error) {
	g := depgraph.Build(b, lv, pv)
	g.Reduce(md)
	s := &scheduler{
		g:       g,
		pv:      pv,
		md:      md,
		cycleOf: map[*depgraph.Node]int{},
		slotOf:  map[*depgraph.Node]int{},
		height:  map[*depgraph.Node]int{},
		done:    map[*depgraph.Node]bool{},
		pairs:   map[*depgraph.Node]*depgraph.Node{},
	}
	s.stats.RemovedControl = g.RemovedControl
	for _, nd := range g.Nodes {
		s.computeHeight(nd)
	}
	if err := s.run(); err != nil {
		return s.stats, err
	}
	s.emit(b)
	return s.stats, nil
}

// computeHeight returns the latency-weighted critical-path height of nd.
func (s *scheduler) computeHeight(nd *depgraph.Node) int {
	if h, ok := s.height[nd]; ok {
		return h
	}
	h := machine.Latency(nd.Instr.Op)
	for _, e := range nd.Out {
		if c := e.Delay + s.computeHeight(e.To); c > h {
			h = c
		}
	}
	s.height[nd] = h
	return h
}

// ready reports whether nd can issue at the given cycle.
func (s *scheduler) ready(nd *depgraph.Node, cycle int) bool {
	for _, e := range nd.In {
		if !s.done[e.From] || s.cycleOf[e.From]+e.Delay > cycle {
			return false
		}
	}
	return true
}

// earliest returns the earliest cycle nd's scheduled predecessors allow, or
// -1 if some predecessor is unscheduled.
func (s *scheduler) earliest(nd *depgraph.Node) int {
	at := 0
	for _, e := range nd.In {
		if !s.done[e.From] {
			return -1
		}
		if c := s.cycleOf[e.From] + e.Delay; c > at {
			at = c
		}
	}
	return at
}

// deferred classifies why a ready candidate may not issue this cycle.
type deferReason int

const (
	deferNo deferReason = iota
	deferStoreSep
	deferRecovery
)

func (s *scheduler) deferral(nd *depgraph.Node) deferReason {
	in := nd.Instr
	if ir.BufferedStore(in.Op) {
		// §4.2: a speculative store may be separated from its confirm by at
		// most StoreBuffer-1 stores, or the buffer could deadlock with a
		// probationary entry at its head.
		for _, os := range s.stores {
			if os.storesSince >= s.md.StoreBuffer-1 {
				return deferStoreSep
			}
		}
	}
	if s.md.Recovery && len(s.regions) > 0 {
		if d, ok := in.Def(); ok {
			for _, rg := range s.regions {
				if rg.protected.Has(d) {
					return deferRecovery
				}
			}
		}
		if in.SelfModifying() {
			// Restriction 3: re-executing a self-modifying instruction
			// inside a restartable sequence is wrong.
			return deferRecovery
		}
		if ir.IsStore(in.Op) && s.storeAliasesRegionLoad(in) {
			// Restriction 4 for memory operands: a store that may overwrite
			// a location read inside an open region must wait for the
			// sentinel (Figure 3: F scheduled after G).
			return deferRecovery
		}
	}
	return deferNo
}

// storeAliasesRegionLoad reports whether the store may alias any load
// recorded in an open region. Disambiguation matches package depgraph: same
// unpoisoned base register with disjoint offset ranges is independent;
// anything else may alias.
func (s *scheduler) storeAliasesRegionLoad(st *ir.Instr) bool {
	lo := st.Imm
	hi := st.Imm + int64(ir.MemSize(st.Op))
	for _, rg := range s.regions {
		for _, ld := range rg.loads {
			// Pointer provenance is flow-insensitive, so it stays valid
			// even when base registers were redefined inside the region.
			if s.pv != nil && s.pv.Disjoint(st.Src1, ld.base) {
				continue
			}
			if ld.poisoned || rg.poisoned.Has(st.Src1) || ld.base != st.Src1 ||
				(lo < ld.hi && ld.lo < hi) {
				return true
			}
		}
	}
	return false
}

// speculative reports whether issuing nd now moves it above a branch: some
// control instruction that precedes it in the original order is still
// unscheduled.
func (s *scheduler) speculative(nd *depgraph.Node) bool {
	if nd.Sentinel || ir.IsControl(nd.Instr.Op) {
		return false
	}
	for _, other := range s.g.Nodes {
		if !other.Sentinel && ir.IsControl(other.Instr.Op) &&
			other.Index < nd.Index && !s.done[other] {
			return true
		}
	}
	return false
}

func (s *scheduler) issue(nd *depgraph.Node, cycle, slot int) {
	s.done[nd] = true
	s.cycleOf[nd] = cycle
	s.slotOf[nd] = slot
	in := nd.Instr

	willSpec := s.speculative(nd)

	// Close recovery regions whose sentinel this instruction is: a
	// confirm_store closing its speculative store's region, a
	// non-speculative reader of a register carrying the exception
	// condition, or (backstop) the control instruction ending the home
	// block — every sentinel is constrained to issue before it.
	if s.md.Recovery && len(s.regions) > 0 {
		var keep []*region
		for _, rg := range s.regions {
			closed := rg.confirm == nd ||
				(!nd.Sentinel && ir.IsControl(in.Op) && rg.homeEnd == nd.Index)
			if !closed && !willSpec && !ir.IsControl(in.Op) {
				for _, u := range in.Uses() {
					if rg.watch.Has(u) {
						closed = true // this instruction is the sentinel
						break
					}
				}
			}
			if !closed {
				keep = append(keep, rg)
			}
		}
		s.regions = keep
	}
	if in.Op == ir.ConfirmSt {
		var keep []*openStore
		for _, os := range s.stores {
			if os.confirm != nd {
				keep = append(keep, os)
			}
		}
		s.stores = keep
	}
	if s.md.Model == machine.Boosting && !nd.Sentinel && ir.IsBranch(in.Op) {
		// A committing branch releases one shadow level: boosted stores
		// with no branches left become ordinary (confirmable) entries.
		var keep []*openStore
		for _, os := range s.stores {
			os.branchesLeft--
			if os.branchesLeft > 0 {
				keep = append(keep, os)
			}
		}
		s.stores = keep
	}
	if ir.BufferedStore(in.Op) {
		for _, os := range s.stores {
			os.storesSince++
		}
	}

	var confirm *depgraph.Node
	if willSpec && s.md.Model == machine.Boosting {
		in.Spec = true
		s.stats.Speculative++
		in.BoostLevel = s.pendingBranchesAbove(nd)
		if ir.BufferedStore(in.Op) {
			s.stores = append(s.stores, &openStore{store: nd, branchesLeft: in.BoostLevel})
		}
	} else if willSpec {
		in.Spec = true
		s.stats.Speculative++
		usesTags := s.md.Model.UsesTags()
		switch {
		case ir.IsStore(in.Op):
			// Only SentinelStores allows this; the confirm is the sentinel.
			confirm = s.g.InsertConfirm(nd)
			s.computeHeight(confirm)
			s.pairs[nd] = confirm
			s.stores = append(s.stores, &openStore{store: nd, confirm: confirm})
			s.stats.Confirms++
		case usesTags && nd.Unprotected:
			chk := s.g.InsertSentinel(nd)
			// The check examines dest(nd)'s exception tag: no later writer
			// of that register (e.g. an unrolled copy reusing it) may be
			// scheduled before the check reads it.
			if d, ok := in.Def(); ok {
				for _, w := range s.g.Nodes {
					if w == nd || s.done[w] {
						continue
					}
					if wd, wok := w.Instr.Def(); wok && wd == d {
						s.g.AddAnti(chk, w)
					}
				}
			}
			s.computeHeight(chk)
			s.stats.Sentinels++
		}
	}

	if s.md.Recovery {
		// Track X's effects in every open region: its inputs join the
		// protected set, a speculative reader propagates the watched
		// condition to its destination, redefinitions kill watched copies
		// and poison base-register disambiguation, and loads record the
		// memory inputs the region must preserve.
		for _, rg := range s.regions {
			readsWatch := false
			for _, u := range in.Uses() {
				rg.protected.Add(u)
				if rg.watch.Has(u) {
					readsWatch = true
				}
			}
			if d, ok := in.Def(); ok {
				if in.Spec && readsWatch {
					rg.watch.Add(d)
				} else if rg.watch.Has(d) {
					rg.watch.Remove(d)
				}
				rg.poisoned.Add(d)
			}
			if ir.IsLoad(in.Op) {
				rg.loads = append(rg.loads, regionLoad{
					base:     in.Src1,
					lo:       in.Imm,
					hi:       in.Imm + int64(ir.MemSize(in.Op)),
					poisoned: rg.poisoned.Has(in.Src1),
				})
			}
		}
		// A speculative trapping instruction opens a new restartable
		// sequence ending at its sentinel.
		if in.Spec && ir.Traps(in.Op) {
			rg := &region{spec: nd, homeEnd: nd.HomeEnd, confirm: confirm}
			if d, ok := in.Def(); ok {
				rg.watch.Add(d)
			}
			for _, u := range in.Uses() {
				rg.protected.Add(u)
			}
			if ir.IsLoad(in.Op) {
				rg.loads = append(rg.loads, regionLoad{
					base: in.Src1,
					lo:   in.Imm,
					hi:   in.Imm + int64(ir.MemSize(in.Op)),
				})
			}
			s.regions = append(s.regions, rg)
		}
	}
}

// run performs the cycle-driven list scheduling loop.
func (s *scheduler) run() error {
	cycle := 0
	guard := 0
	for {
		unscheduled := 0
		for _, nd := range s.g.Nodes {
			if !s.done[nd] {
				unscheduled++
			}
		}
		if unscheduled == 0 {
			return nil
		}
		if guard++; guard > 1000000 {
			return fmt.Errorf("scheduler did not converge")
		}

		issued := 0
		for issued < s.md.IssueWidth {
			cand := s.pick(cycle)
			if cand == nil {
				break
			}
			s.issue(cand, cycle, issued)
			issued++
		}
		if issued > 0 {
			cycle++
			continue
		}

		// Nothing issued: either wait for latencies, or we are blocked on
		// deferrals, or the graph is cyclic.
		next := -1
		for _, nd := range s.g.Nodes {
			if s.done[nd] {
				continue
			}
			if at := s.earliest(nd); at > cycle && (next == -1 || at < next) {
				next = at
			}
		}
		if next > cycle {
			cycle = next
			continue
		}
		// Deferred candidates are ready but held back. Force the
		// highest-priority one to break the deadlock; for recovery this
		// sacrifices restartability of the affected region (counted), never
		// architectural correctness. A forced store-separation violation
		// could deadlock the store buffer, so it is an error instead.
		if cand := s.pickDeferred(cycle, deferRecovery); cand != nil {
			s.stats.ForcedIssues++
			s.issue(cand, cycle, 0)
			cycle++
			continue
		}
		if s.pickDeferred(cycle, deferStoreSep) != nil {
			return fmt.Errorf("store-buffer separation constraint is unsatisfiable (buffer size %d)", s.md.StoreBuffer)
		}
		return fmt.Errorf("dependence cycle detected")
	}
}

// pick returns the best ready, non-deferred candidate at cycle, or nil.
// Under recovery constraints, ready control instructions go first within a
// cycle: an instruction issued in a later slot of a branch's own cycle is
// not speculative (a taken branch nullifies it), so fewer restartable
// regions open — at identical performance.
func (s *scheduler) pick(cycle int) *depgraph.Node {
	var best *depgraph.Node
	for _, nd := range s.g.Nodes {
		if s.done[nd] || !s.ready(nd, cycle) || s.deferral(nd) != deferNo {
			continue
		}
		if s.md.Recovery {
			bc := best != nil && ir.IsControl(best.Instr.Op)
			nc := ir.IsControl(nd.Instr.Op)
			if nc != bc {
				if nc {
					best = nd
				}
				continue
			}
		}
		if best == nil || s.better(nd, best) {
			best = nd
		}
	}
	return best
}

// pickDeferred returns the best ready candidate held back for the given
// reason.
func (s *scheduler) pickDeferred(cycle int, reason deferReason) *depgraph.Node {
	var best *depgraph.Node
	for _, nd := range s.g.Nodes {
		if s.done[nd] || !s.ready(nd, cycle) || s.deferral(nd) != reason {
			continue
		}
		if best == nil || s.better(nd, best) {
			best = nd
		}
	}
	return best
}

// pendingBranchesAbove counts the conditional branches that precede nd in
// the original order but are not yet scheduled: the number of shadow levels
// nd's result must survive (its boost level).
func (s *scheduler) pendingBranchesAbove(nd *depgraph.Node) int {
	n := 0
	for _, other := range s.g.Nodes {
		if !other.Sentinel && ir.IsBranch(other.Instr.Op) &&
			other.Index < nd.Index && !s.done[other] {
			n++
		}
	}
	return n
}

// better orders candidates by critical-path height, then by original
// program order for determinism.
func (s *scheduler) better(a, b *depgraph.Node) bool {
	ha, hb := s.height[a], s.height[b]
	if ha != hb {
		return ha > hb
	}
	if a.Index != b.Index {
		return a.Index < b.Index
	}
	// A sentinel shares its protectee's index; schedule the protectee
	// first (the sentinel depends on it anyway).
	return !a.Sentinel && b.Sentinel
}

// emit rewrites the block's instructions in schedule order and resolves
// confirm_store indices: the number of stores between a speculative store
// and its confirm in the final schedule (§4.2).
func (s *scheduler) emit(b *prog.Block) {
	nodes := make([]*depgraph.Node, len(s.g.Nodes))
	copy(nodes, s.g.Nodes)
	sort.Slice(nodes, func(i, j int) bool {
		ci, cj := s.cycleOf[nodes[i]], s.cycleOf[nodes[j]]
		if ci != cj {
			return ci < cj
		}
		return s.slotOf[nodes[i]] < s.slotOf[nodes[j]]
	})
	instrs := make([]*ir.Instr, len(nodes))
	pos := map[*depgraph.Node]int{}
	for i, nd := range nodes {
		nd.Instr.Cycle = s.cycleOf[nd]
		nd.Instr.Slot = s.slotOf[nd]
		instrs[i] = nd.Instr
		pos[nd] = i
	}
	for store, confirm := range s.pairs {
		n := int64(0)
		for i := pos[store] + 1; i < pos[confirm]; i++ {
			if ir.BufferedStore(instrs[i].Op) {
				n++
			}
		}
		confirm.Instr.Imm = n
	}
	b.Instrs = instrs
}
