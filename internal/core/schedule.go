// Package core implements sentinel superblock scheduling (Mahlke et al.,
// ASPLOS 1992) and the speculative code-motion models it is compared
// against: restricted percolation, general percolation, sentinel scheduling
// with speculative stores, and instruction boosting (§2.3, with shadow
// register files).
//
// Scheduling consists of dependence-graph construction and reduction
// (package depgraph) followed by the modified list scheduling of the
// paper's Appendix: when an unprotected instruction is moved above a branch,
// an explicit sentinel (check_exception for register-writing instructions,
// confirm_store for stores) is inserted into its home block and added to the
// unscheduled set; the speculative modifier is set on every instruction that
// moved above a branch.
//
// The scheduler keeps all per-node state in slices indexed by depgraph node
// ID and drives the cycle loop from two binary heaps: a ready heap ordered
// by pick priority (under recovery: control first; then critical-path height,
// original index, protectee-before-sentinel) and a future heap ordered by
// earliest feasible cycle. Nodes enter the heaps when their last dependence
// predecessor issues; edges inserted mid-schedule (sentinels, anti edges to
// later writers of a checked register) bump a per-node generation counter so
// stale heap entries are discarded on pop. The result is byte-identical to
// the seed scheduler preserved in refsched.go, which TestSchedulerMatchesReference
// enforces.
package core

import (
	"fmt"
	"sort"

	"sentinel/internal/alias"
	"sentinel/internal/dataflow"
	"sentinel/internal/depgraph"
	"sentinel/internal/ir"
	"sentinel/internal/machine"
	"sentinel/internal/prog"
)

// Stats reports what scheduling did, for the paper's ablation experiments.
type Stats struct {
	// Speculative counts instructions whose speculative modifier was set.
	Speculative int
	// Sentinels counts explicit check_exception instructions inserted.
	Sentinels int
	// Confirms counts confirm_store instructions inserted.
	Confirms int
	// RemovedControl counts control dependences removed by reduction.
	RemovedControl int
	// ClearTags counts exception-tag resets inserted for possibly
	// uninitialized registers (§3.5).
	ClearTags int
	// Renamed counts self-modifying instructions split by the recovery
	// renaming transformation (§3.7).
	Renamed int
	// ForcedIssues counts instructions issued in violation of a recovery
	// deferral to break a scheduling deadlock; a nonzero value means the
	// schedule is not fully restartable (it is still architecturally
	// correct).
	ForcedIssues int
}

func (s *Stats) add(o Stats) {
	s.Speculative += o.Speculative
	s.Sentinels += o.Sentinels
	s.Confirms += o.Confirms
	s.RemovedControl += o.RemovedControl
	s.ClearTags += o.ClearTags
	s.Renamed += o.Renamed
	s.ForcedIssues += o.ForcedIssues
}

// Schedule compiles p for the machine md: every block is list-scheduled
// under md's speculation model. It returns a new scheduled program (p is not
// modified) with Cycle/Slot assigned on every instruction and sentinels
// inserted as needed.
func Schedule(p *prog.Program, md machine.Desc) (*prog.Program, Stats, error) {
	var stats Stats
	if err := md.Validate(); err != nil {
		return nil, stats, err
	}
	p = p.Clone()

	if md.Recovery {
		for _, b := range p.Blocks {
			if b.Superblock {
				stats.Renamed += splitSelfModifying(p, b)
			}
		}
	}

	lv := dataflow.Compute(p)
	if md.Model.UsesTags() {
		stats.ClearTags += insertClearTags(p, lv)
		lv = dataflow.Compute(p) // ClearTags define registers
	}
	pv := alias.Analyze(p)

	for _, b := range p.Blocks {
		if len(b.Instrs) == 0 {
			continue
		}
		s, err := scheduleBlock(b, lv, pv, md)
		if err != nil {
			return nil, stats, fmt.Errorf("core: block %q: %w", b.Label, err)
		}
		stats.add(s)
	}
	p.Layout()
	if err := p.Validate(); err != nil {
		return nil, stats, fmt.Errorf("core: scheduled program invalid: %w", err)
	}
	return p, stats, nil
}

// insertClearTags prepends ClearTag instructions to the entry block for
// every register that may be read before being written (§3.5): such a
// register could carry a stale exception tag and cause a spurious signal.
func insertClearTags(p *prog.Program, lv *dataflow.Liveness) int {
	uninit := lv.UninitializedAtEntry()
	regs := uninit.Regs()
	if len(regs) == 0 {
		return 0
	}
	entry := p.Block(p.Entry)
	pre := make([]*ir.Instr, 0, len(regs))
	for _, r := range regs {
		pre = append(pre, ir.CLEARTAG(r))
	}
	entry.Instrs = append(pre, entry.Instrs...)
	return len(regs)
}

// region tracks one open restartable sequence (§3.7): from a speculative
// trapping instruction until its sentinel executes, the register AND memory
// inputs of every instruction issued in between must be preserved, or the
// sequence could not be re-executed.
type region struct {
	spec *depgraph.Node
	// watch is the set of registers currently carrying the speculative
	// exception condition; the first non-speculative reader of any of them
	// is the sentinel and closes the region. Speculative readers propagate
	// the condition to their destinations.
	watch dataflow.RegSet
	// confirm closes the region instead, for speculative stores (§4).
	confirm *depgraph.Node
	// homeEnd is the original index of the control instruction ending the
	// speculative instruction's home block: a backstop close (every
	// sentinel is constrained to issue before it).
	homeEnd int
	// protected registers may not be overwritten while the region is open.
	protected dataflow.RegSet
	// loads records the memory references read inside the region; a store
	// that may alias any of them must wait for the region to close
	// (restriction 4 "for both register and memory operands").
	loads []regionLoad
	// poisoned registers were redefined inside the region, invalidating
	// base-register disambiguation against recorded loads.
	poisoned dataflow.RegSet
}

// regionLoad is a memory input recorded while a region is open.
type regionLoad struct {
	base     ir.Reg
	lo, hi   int64
	poisoned bool // base register value no longer comparable
}

// openStore tracks a speculative store awaiting its confirm (sentinel
// model) or the branches that commit it (boosting model), for the
// store-buffer separation constraint of §4.2 and its boosting analogue.
type openStore struct {
	store        *depgraph.Node
	confirm      *depgraph.Node
	branchesLeft int // boosting: commits when this many branches have issued
	storesSince  int
}

// deferred classifies why a ready candidate may not issue this cycle.
type deferReason int

const (
	deferNo deferReason = iota
	deferStoreSep
	deferRecovery
)

// heapEnt is one candidate in the ready or future heap. Priority fields are
// snapshotted at push time (height and the static fields never change after
// a node is released); gen detects entries staled by mid-schedule edge
// insertion.
type heapEnt struct {
	id       int32
	gen      int32
	height   int32
	index    int32
	earliest int32
	ctrl     bool
	sent     bool
}

// pairEnt associates a speculative store with its confirm (by node ID).
type pairEnt struct {
	store, confirm int32
}

type scheduler struct {
	g  *depgraph.Graph
	pv *alias.Provenance
	md machine.Desc

	// Per-node state, indexed by depgraph node ID.
	cycleOf  []int32
	slotOf   []int32
	height   []int32
	done     []bool
	released []bool
	indeg    []int32 // unscheduled dependence predecessors
	gen      []int32 // bumped when a node's release state is invalidated

	readyNow []heapEnt // heap ordered by pick priority
	future   []heapEnt // heap ordered by earliest feasible cycle
	stash    []heapEnt // scratch: deferred entries popped during one pick

	// ctrlIdx/branchIdx list the original control/branch node IDs in
	// program order; ctrlFront is the first possibly-unscheduled control.
	ctrlIdx   []int32
	ctrlFront int
	branchIdx []int32
	// writers lists the IDs of instructions defining each register, for the
	// anti-dependence scan when a check_exception is inserted (only built
	// for tag-based models, which are the only inserters).
	writers map[ir.Reg][]int32

	cycle       int32
	unscheduled int

	regions []*region
	stores  []*openStore
	pairs   []pairEnt
	stats   Stats
}

func scheduleBlock(b *prog.Block, lv *dataflow.Liveness, pv *alias.Provenance, md machine.Desc) (Stats, error) {
	g := depgraph.Build(b, lv, pv)
	g.Reduce(md)
	n := len(g.Nodes)
	s := &scheduler{
		g:        g,
		pv:       pv,
		md:       md,
		cycleOf:  make([]int32, n, 2*n),
		slotOf:   make([]int32, n, 2*n),
		height:   make([]int32, n, 2*n),
		done:     make([]bool, n, 2*n),
		released: make([]bool, n, 2*n),
		indeg:    make([]int32, n, 2*n),
		gen:      make([]int32, n, 2*n),

		unscheduled: n,
	}
	s.stats.RemovedControl = g.RemovedControl

	// Every edge recorded during Build goes from a smaller to a larger
	// original index, so reverse ID order is a reverse-topological order and
	// one backward pass computes all critical-path heights (identical to the
	// seed's memoized recursion).
	for i := n - 1; i >= 0; i-- {
		nd := g.Nodes[i]
		h := int32(machine.Latency(nd.Instr.Op))
		for _, e := range nd.Out {
			if c := int32(e.Delay) + s.height[e.To.ID]; c > h {
				h = c
			}
		}
		s.height[i] = h
	}

	for i := 0; i < n; i++ {
		nd := g.Nodes[i]
		if ir.IsControl(nd.Instr.Op) {
			s.ctrlIdx = append(s.ctrlIdx, int32(i))
			if ir.IsBranch(nd.Instr.Op) {
				s.branchIdx = append(s.branchIdx, int32(i))
			}
		}
		s.indeg[i] = int32(len(nd.In))
	}
	if md.Model.UsesTags() {
		s.writers = make(map[ir.Reg][]int32)
		for i := 0; i < n; i++ {
			if d, ok := g.Nodes[i].Instr.Def(); ok {
				s.writers[d] = append(s.writers[d], int32(i))
			}
		}
	}
	for i := 0; i < n; i++ {
		if s.indeg[i] == 0 {
			s.release(int32(i))
		}
	}

	if err := s.run(); err != nil {
		return s.stats, err
	}
	s.emit(b)
	return s.stats, nil
}

// readyLess is the pick priority: under recovery, ready control instructions
// go first within a cycle (an instruction issued in a later slot of a
// branch's own cycle is not speculative — a taken branch nullifies it — so
// fewer restartable regions open, at identical performance); then
// critical-path height, original program order, and protectee before
// sentinel. The ID tiebreak reproduces the seed's first-scanned-wins rule.
func (s *scheduler) readyLess(a, b heapEnt) bool {
	if s.md.Recovery && a.ctrl != b.ctrl {
		return a.ctrl
	}
	if a.height != b.height {
		return a.height > b.height
	}
	if a.index != b.index {
		return a.index < b.index
	}
	if a.sent != b.sent {
		return !a.sent
	}
	return a.id < b.id
}

func futureLess(a, b heapEnt) bool {
	if a.earliest != b.earliest {
		return a.earliest < b.earliest
	}
	return a.id < b.id
}

func (s *scheduler) pushReady(e heapEnt) {
	s.readyNow = append(s.readyNow, e)
	h := s.readyNow
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s.readyLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (s *scheduler) popReady() heapEnt {
	h := s.readyNow
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	s.readyNow = h[:last]
	h = s.readyNow
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && s.readyLess(h[l], h[m]) {
			m = l
		}
		if r < last && s.readyLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

func (s *scheduler) pushFuture(e heapEnt) {
	s.future = append(s.future, e)
	h := s.future
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !futureLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (s *scheduler) popFuture() heapEnt {
	h := s.future
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	s.future = h[:last]
	h = s.future
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && futureLess(h[l], h[m]) {
			m = l
		}
		if r < last && futureLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// valid reports whether a heap entry still describes a live candidate: not
// yet issued, and not staled by a mid-schedule edge insertion.
func (s *scheduler) valid(e heapEnt) bool {
	return !s.done[e.id] && s.released[e.id] && s.gen[e.id] == e.gen
}

// release enters a node whose dependence predecessors have all issued into
// the ready or future heap, keyed by the earliest cycle they allow.
func (s *scheduler) release(id int32) {
	nd := s.g.Nodes[id]
	at := int32(0)
	for _, e := range nd.In {
		if c := s.cycleOf[e.From.ID] + int32(e.Delay); c > at {
			at = c
		}
	}
	s.released[id] = true
	ent := heapEnt{
		id:       id,
		gen:      s.gen[id],
		height:   s.height[id],
		index:    int32(nd.Index),
		earliest: at,
		ctrl:     !nd.Sentinel && ir.IsControl(nd.Instr.Op),
		sent:     nd.Sentinel,
	}
	if at <= s.cycle {
		s.pushReady(ent)
	} else {
		s.pushFuture(ent)
	}
}

// invalidate marks a released node no longer issuable (an edge was inserted
// in front of it); any heap entries it has become stale.
func (s *scheduler) invalidate(id int32) {
	s.gen[id]++
	s.released[id] = false
}

// addNode registers a node inserted mid-schedule (check_exception or
// confirm_store): grows the per-ID state, computes its height from its
// successors' memoized heights (the seed never refreshes a predecessor's
// height after insertion, so neither do we), accounts its edges into the
// indegree bookkeeping, and releases it if already unblocked.
func (s *scheduler) addNode(nd *depgraph.Node) {
	if nd.ID != len(s.done) {
		panic("core: node IDs out of sync with scheduler state")
	}
	h := int32(machine.Latency(nd.Instr.Op))
	for _, e := range nd.Out {
		if c := int32(e.Delay) + s.height[e.To.ID]; c > h {
			h = c
		}
	}
	indeg := int32(0)
	for _, e := range nd.In {
		if !s.done[e.From.ID] {
			indeg++
		}
	}
	s.cycleOf = append(s.cycleOf, 0)
	s.slotOf = append(s.slotOf, 0)
	s.height = append(s.height, h)
	s.done = append(s.done, false)
	s.released = append(s.released, false)
	s.indeg = append(s.indeg, indeg)
	s.gen = append(s.gen, 0)
	s.unscheduled++
	// The new node's outgoing edges (to its home block's closing control,
	// or anti edges to later writers of a checked register) block targets
	// that may already be released.
	for _, e := range nd.Out {
		t := int32(e.To.ID)
		if s.done[t] {
			continue
		}
		s.indeg[t]++
		s.invalidate(t)
	}
	if indeg == 0 {
		s.release(int32(nd.ID))
	}
}

// promote moves every future entry whose earliest cycle has arrived into the
// ready heap.
func (s *scheduler) promote() {
	for len(s.future) > 0 {
		top := s.future[0]
		if !s.valid(top) {
			s.popFuture()
			continue
		}
		if top.earliest > s.cycle {
			return
		}
		s.pushReady(s.popFuture())
	}
}

// futureMin returns the earliest cycle any released-but-not-ready node can
// issue, or -1 if there is none.
func (s *scheduler) futureMin() int32 {
	for len(s.future) > 0 {
		if top := s.future[0]; s.valid(top) {
			return top.earliest
		}
		s.popFuture()
	}
	return -1
}

func (s *scheduler) deferral(nd *depgraph.Node) deferReason {
	in := nd.Instr
	if ir.BufferedStore(in.Op) {
		// §4.2: a speculative store may be separated from its confirm by at
		// most StoreBuffer-1 stores, or the buffer could deadlock with a
		// probationary entry at its head.
		for _, os := range s.stores {
			if os.storesSince >= s.md.StoreBuffer-1 {
				return deferStoreSep
			}
		}
	}
	if s.md.Recovery && len(s.regions) > 0 {
		if d, ok := in.Def(); ok {
			for _, rg := range s.regions {
				if rg.protected.Has(d) {
					return deferRecovery
				}
			}
		}
		if in.SelfModifying() {
			// Restriction 3: re-executing a self-modifying instruction
			// inside a restartable sequence is wrong.
			return deferRecovery
		}
		if ir.IsStore(in.Op) && s.storeAliasesRegionLoad(in) {
			// Restriction 4 for memory operands: a store that may overwrite
			// a location read inside an open region must wait for the
			// sentinel (Figure 3: F scheduled after G).
			return deferRecovery
		}
	}
	return deferNo
}

// storeAliasesRegionLoad reports whether the store may alias any load
// recorded in an open region. Disambiguation matches package depgraph: same
// unpoisoned base register with disjoint offset ranges is independent;
// anything else may alias.
func (s *scheduler) storeAliasesRegionLoad(st *ir.Instr) bool {
	lo := st.Imm
	hi := st.Imm + int64(ir.MemSize(st.Op))
	for _, rg := range s.regions {
		for _, ld := range rg.loads {
			// Pointer provenance is flow-insensitive, so it stays valid
			// even when base registers were redefined inside the region.
			if s.pv != nil && s.pv.Disjoint(st.Src1, ld.base) {
				continue
			}
			if ld.poisoned || rg.poisoned.Has(st.Src1) || ld.base != st.Src1 ||
				(lo < ld.hi && ld.lo < hi) {
				return true
			}
		}
	}
	return false
}

// speculative reports whether issuing nd now moves it above a branch: some
// control instruction that precedes it in the original order is still
// unscheduled. Control instructions never lose their control dependences on
// one another, so they issue in program order and the first unscheduled
// entry of ctrlIdx is the minimum unscheduled control index.
func (s *scheduler) speculative(nd *depgraph.Node) bool {
	if nd.Sentinel || ir.IsControl(nd.Instr.Op) {
		return false
	}
	for s.ctrlFront < len(s.ctrlIdx) && s.done[s.ctrlIdx[s.ctrlFront]] {
		s.ctrlFront++
	}
	return s.ctrlFront < len(s.ctrlIdx) &&
		s.g.Nodes[s.ctrlIdx[s.ctrlFront]].Index < nd.Index
}

func (s *scheduler) issue(nd *depgraph.Node, cycle, slot int32) {
	id := int32(nd.ID)
	s.done[id] = true
	s.cycleOf[id] = cycle
	s.slotOf[id] = slot
	s.unscheduled--
	in := nd.Instr
	// Sentinel insertion below appends an edge nd -> sentinel to nd.Out; the
	// successor-release loop at the end must only walk the edges that existed
	// while nd was unscheduled (addNode already accounts the new one: edges
	// from done predecessors are excluded from the sentinel's indegree).
	nOut := len(nd.Out)

	willSpec := s.speculative(nd)

	// Close recovery regions whose sentinel this instruction is: a
	// confirm_store closing its speculative store's region, a
	// non-speculative reader of a register carrying the exception
	// condition, or (backstop) the control instruction ending the home
	// block — every sentinel is constrained to issue before it.
	if s.md.Recovery && len(s.regions) > 0 {
		var keep []*region
		for _, rg := range s.regions {
			closed := rg.confirm == nd ||
				(!nd.Sentinel && ir.IsControl(in.Op) && rg.homeEnd == nd.Index)
			if !closed && !willSpec && !ir.IsControl(in.Op) {
				u1, u2 := in.Uses2()
				for _, u := range [2]ir.Reg{u1, u2} {
					if u.Valid() && rg.watch.Has(u) {
						closed = true // this instruction is the sentinel
						break
					}
				}
			}
			if !closed {
				keep = append(keep, rg)
			}
		}
		s.regions = keep
	}
	if in.Op == ir.ConfirmSt {
		var keep []*openStore
		for _, os := range s.stores {
			if os.confirm != nd {
				keep = append(keep, os)
			}
		}
		s.stores = keep
	}
	if s.md.Model == machine.Boosting && !nd.Sentinel && ir.IsBranch(in.Op) {
		// A committing branch releases one shadow level: boosted stores
		// with no branches left become ordinary (confirmable) entries.
		var keep []*openStore
		for _, os := range s.stores {
			os.branchesLeft--
			if os.branchesLeft > 0 {
				keep = append(keep, os)
			}
		}
		s.stores = keep
	}
	if ir.BufferedStore(in.Op) {
		for _, os := range s.stores {
			os.storesSince++
		}
	}

	var confirm *depgraph.Node
	if willSpec && s.md.Model == machine.Boosting {
		in.Spec = true
		s.stats.Speculative++
		in.BoostLevel = s.pendingBranchesAbove(nd)
		if ir.BufferedStore(in.Op) {
			s.stores = append(s.stores, &openStore{store: nd, branchesLeft: in.BoostLevel})
		}
	} else if willSpec {
		in.Spec = true
		s.stats.Speculative++
		usesTags := s.md.Model.UsesTags()
		switch {
		case ir.IsStore(in.Op):
			// Only SentinelStores allows this; the confirm is the sentinel.
			confirm = s.g.InsertConfirm(nd)
			s.addNode(confirm)
			s.pairs = append(s.pairs, pairEnt{store: id, confirm: int32(confirm.ID)})
			s.stores = append(s.stores, &openStore{store: nd, confirm: confirm})
			s.stats.Confirms++
		case usesTags && nd.Unprotected:
			chk := s.g.InsertSentinel(nd)
			// The check examines dest(nd)'s exception tag: no later writer
			// of that register (e.g. an unrolled copy reusing it) may be
			// scheduled before the check reads it.
			if d, ok := in.Def(); ok {
				for _, w := range s.writers[d] {
					if w == id || s.done[w] {
						continue
					}
					s.g.AddAnti(chk, s.g.Nodes[w])
				}
			}
			s.addNode(chk)
			s.stats.Sentinels++
		}
	}

	if s.md.Recovery {
		// Track X's effects in every open region: its inputs join the
		// protected set, a speculative reader propagates the watched
		// condition to its destination, redefinitions kill watched copies
		// and poison base-register disambiguation, and loads record the
		// memory inputs the region must preserve.
		for _, rg := range s.regions {
			readsWatch := false
			u1, u2 := in.Uses2()
			for _, u := range [2]ir.Reg{u1, u2} {
				if !u.Valid() {
					continue
				}
				rg.protected.Add(u)
				if rg.watch.Has(u) {
					readsWatch = true
				}
			}
			if d, ok := in.Def(); ok {
				if in.Spec && readsWatch {
					rg.watch.Add(d)
				} else if rg.watch.Has(d) {
					rg.watch.Remove(d)
				}
				rg.poisoned.Add(d)
			}
			if ir.IsLoad(in.Op) {
				rg.loads = append(rg.loads, regionLoad{
					base:     in.Src1,
					lo:       in.Imm,
					hi:       in.Imm + int64(ir.MemSize(in.Op)),
					poisoned: rg.poisoned.Has(in.Src1),
				})
			}
		}
		// A speculative trapping instruction opens a new restartable
		// sequence ending at its sentinel.
		if in.Spec && ir.Traps(in.Op) {
			rg := &region{spec: nd, homeEnd: nd.HomeEnd, confirm: confirm}
			if d, ok := in.Def(); ok {
				rg.watch.Add(d)
			}
			u1, u2 := in.Uses2()
			for _, u := range [2]ir.Reg{u1, u2} {
				if u.Valid() {
					rg.protected.Add(u)
				}
			}
			if ir.IsLoad(in.Op) {
				rg.loads = append(rg.loads, regionLoad{
					base: in.Src1,
					lo:   in.Imm,
					hi:   in.Imm + int64(ir.MemSize(in.Op)),
				})
			}
			s.regions = append(s.regions, rg)
		}
	}

	// Releasing successors comes after any sentinel insertion so a target
	// of both nd and a just-inserted edge is never released prematurely.
	for _, e := range nd.Out[:nOut] {
		t := int32(e.To.ID)
		if s.done[t] {
			continue
		}
		if s.indeg[t]--; s.indeg[t] == 0 {
			s.release(t)
		}
	}
}

// run performs the cycle-driven list scheduling loop.
func (s *scheduler) run() error {
	s.cycle = 0
	guard := 0
	for s.unscheduled > 0 {
		if guard++; guard > 1000000 {
			return fmt.Errorf("scheduler did not converge")
		}
		s.promote()

		issued := int32(0)
		for issued < int32(s.md.IssueWidth) {
			cand := s.pick()
			if cand == nil {
				break
			}
			s.issue(cand, s.cycle, issued)
			issued++
		}
		if issued > 0 {
			s.cycle++
			continue
		}

		// Nothing issued: either wait for latencies, or we are blocked on
		// deferrals, or the graph is cyclic.
		if next := s.futureMin(); next > s.cycle {
			s.cycle = next
			continue
		}
		// Deferred candidates are ready but held back. Force the
		// highest-priority one to break the deadlock; for recovery this
		// sacrifices restartability of the affected region (counted), never
		// architectural correctness. A forced store-separation violation
		// could deadlock the store buffer, so it is an error instead.
		if cand := s.pickDeferred(deferRecovery); cand != nil {
			s.stats.ForcedIssues++
			s.issue(cand, s.cycle, 0)
			s.cycle++
			continue
		}
		if s.pickDeferred(deferStoreSep) != nil {
			return fmt.Errorf("store-buffer separation constraint is unsatisfiable (buffer size %d)", s.md.StoreBuffer)
		}
		return fmt.Errorf("dependence cycle detected")
	}
	return nil
}

// pick pops the best ready, non-deferred candidate, or nil. Deferred
// entries are stashed and re-pushed: deferral state changes with every
// issue, so they are re-examined at the next pick.
func (s *scheduler) pick() *depgraph.Node {
	var chosen *depgraph.Node
	for len(s.readyNow) > 0 {
		ent := s.popReady()
		if !s.valid(ent) {
			continue
		}
		nd := s.g.Nodes[ent.id]
		if s.deferral(nd) != deferNo {
			s.stash = append(s.stash, ent)
			continue
		}
		chosen = nd
		break
	}
	for _, ent := range s.stash {
		s.pushReady(ent)
	}
	s.stash = s.stash[:0]
	return chosen
}

// pickDeferred returns the best ready candidate held back for the given
// reason. Deferred candidates are never control instructions (controls
// define no registers, do not store, and are not self-modifying), so the
// plain heap order coincides with the seed's better-order among them even
// under recovery's control-first rule.
func (s *scheduler) pickDeferred(reason deferReason) *depgraph.Node {
	var chosen *depgraph.Node
	for len(s.readyNow) > 0 {
		ent := s.popReady()
		if !s.valid(ent) {
			continue
		}
		s.stash = append(s.stash, ent)
		if chosen == nil && s.deferral(s.g.Nodes[ent.id]) == reason {
			chosen = s.g.Nodes[ent.id]
		}
	}
	for _, ent := range s.stash {
		if chosen != nil && ent.id == int32(chosen.ID) {
			continue
		}
		s.pushReady(ent)
	}
	s.stash = s.stash[:0]
	return chosen
}

// pendingBranchesAbove counts the conditional branches that precede nd in
// the original order but are not yet scheduled: the number of shadow levels
// nd's result must survive (its boost level).
func (s *scheduler) pendingBranchesAbove(nd *depgraph.Node) int {
	n := 0
	for _, b := range s.branchIdx {
		if s.g.Nodes[b].Index >= nd.Index {
			break
		}
		if !s.done[b] {
			n++
		}
	}
	return n
}

// emit rewrites the block's instructions in schedule order and resolves
// confirm_store indices: the number of stores between a speculative store
// and its confirm in the final schedule (§4.2).
func (s *scheduler) emit(b *prog.Block) {
	n := len(s.g.Nodes)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, c := order[i], order[j]
		if s.cycleOf[a] != s.cycleOf[c] {
			return s.cycleOf[a] < s.cycleOf[c]
		}
		return s.slotOf[a] < s.slotOf[c]
	})
	instrs := make([]*ir.Instr, n)
	pos := make([]int32, n)
	for i, id := range order {
		nd := s.g.Nodes[id]
		nd.Instr.Cycle = int(s.cycleOf[id])
		nd.Instr.Slot = int(s.slotOf[id])
		instrs[i] = nd.Instr
		pos[id] = int32(i)
	}
	for _, pr := range s.pairs {
		cnt := int64(0)
		for i := pos[pr.store] + 1; i < pos[pr.confirm]; i++ {
			if ir.BufferedStore(instrs[i].Op) {
				cnt++
			}
		}
		s.g.Nodes[pr.confirm].Instr.Imm = cnt
	}
	b.Instrs = instrs
}
