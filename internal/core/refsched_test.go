package core

import (
	"fmt"
	"testing"

	"sentinel/internal/machine"
	"sentinel/internal/prog"
	"sentinel/internal/superblock"
	"sentinel/internal/workload"
)

// progsEqual compares two scheduled programs instruction by instruction,
// including the schedule coordinates, and reports the first difference.
func progsEqual(a, b *prog.Program) error {
	if len(a.Blocks) != len(b.Blocks) {
		return fmt.Errorf("block count %d != %d", len(a.Blocks), len(b.Blocks))
	}
	for bi, ba := range a.Blocks {
		bb := b.Blocks[bi]
		if ba.Label != bb.Label {
			return fmt.Errorf("block %d label %q != %q", bi, ba.Label, bb.Label)
		}
		if len(ba.Instrs) != len(bb.Instrs) {
			return fmt.Errorf("block %q: %d instrs != %d", ba.Label, len(ba.Instrs), len(bb.Instrs))
		}
		for i, ia := range ba.Instrs {
			ib := bb.Instrs[i]
			if ia.Op != ib.Op || ia.Dest != ib.Dest || ia.Src1 != ib.Src1 ||
				ia.Src2 != ib.Src2 || ia.Imm != ib.Imm || ia.Target != ib.Target ||
				ia.Spec != ib.Spec || ia.BoostLevel != ib.BoostLevel ||
				ia.Cycle != ib.Cycle || ia.Slot != ib.Slot || ia.PC != ib.PC {
				return fmt.Errorf("block %q instr %d: %v (cycle %d slot %d pc %d spec %v boost %d) != %v (cycle %d slot %d pc %d spec %v boost %d)",
					ba.Label, i,
					ia, ia.Cycle, ia.Slot, ia.PC, ia.Spec, ia.BoostLevel,
					ib, ib.Cycle, ib.Slot, ib.PC, ib.Spec, ib.BoostLevel)
			}
		}
	}
	return nil
}

// schedulerModels covers every speculation model plus the recovery and
// ablation variants the experiments exercise.
func schedulerModels(width int) []machine.Desc {
	return []machine.Desc{
		machine.Base(width, machine.Restricted),
		machine.Base(width, machine.General),
		machine.Base(width, machine.Sentinel),
		machine.Base(width, machine.SentinelStores),
		machine.Base(width, machine.Boosting),
		machine.Base(width, machine.Sentinel).WithRecovery(),
		machine.Base(width, machine.SentinelStores).WithRecovery(),
		func() machine.Desc {
			d := machine.Base(width, machine.Sentinel)
			d.NoSharedSentinels = true
			return d
		}(),
	}
}

// TestSchedulerMatchesReference is the determinism property test for the
// heap-based scheduler: on every workload kernel, under every model and two
// issue widths, Schedule must emit a program byte-identical (opcode, operand,
// cycle, slot, PC) to the seed scheduler preserved in refsched.go.
func TestSchedulerMatchesReference(t *testing.T) {
	for _, w := range workload.All() {
		p, m := w.Build()
		p.Layout()
		ref, err := prog.Run(p, m, prog.Options{Collect: true})
		if err != nil {
			t.Fatalf("%s: profile: %v", w.Name, err)
		}
		f := superblock.Form(p, ref.Profile, superblock.Options{})
		f.Layout()
		for _, width := range []int{2, 8} {
			for _, md := range schedulerModels(width) {
				got, gotStats, err1 := Schedule(f, md)
				want, wantStats, err2 := ScheduleReference(f, md)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%s %v w%d: error mismatch: %v vs %v", w.Name, md.Model, width, err1, err2)
				}
				if err1 != nil {
					continue
				}
				if gotStats != wantStats {
					t.Errorf("%s %v w%d recovery=%v: stats %+v != reference %+v",
						w.Name, md.Model, width, md.Recovery, gotStats, wantStats)
				}
				if err := progsEqual(got, want); err != nil {
					t.Errorf("%s %v w%d recovery=%v: %v", w.Name, md.Model, width, md.Recovery, err)
				}
			}
		}
	}
}

// (Virtual-register handling of the dense builder state is covered at the
// depgraph level, in TestBuildVirtualRegisters: liveness analysis rejects
// virtual registers before core.Schedule ever sees them.)
