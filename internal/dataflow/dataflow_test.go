package dataflow

import (
	"testing"
	"testing/quick"

	"sentinel/internal/ir"
	"sentinel/internal/prog"
)

func TestRegSetBasics(t *testing.T) {
	var s RegSet
	if !s.Empty() {
		t.Fatal("zero RegSet must be empty")
	}
	s.Add(ir.R(3))
	s.Add(ir.F(10))
	if !s.Has(ir.R(3)) || !s.Has(ir.F(10)) || s.Has(ir.R(10)) {
		t.Error("membership wrong")
	}
	if got := s.Regs(); len(got) != 2 || got[0] != ir.R(3) || got[1] != ir.F(10) {
		t.Errorf("Regs = %v", got)
	}
	s.Remove(ir.R(3))
	if s.Has(ir.R(3)) {
		t.Error("Remove failed")
	}
	var a, b RegSet
	a.Add(ir.R(1))
	b.Add(ir.R(2))
	u := a.Union(b)
	if !u.Has(ir.R(1)) || !u.Has(ir.R(2)) {
		t.Error("Union wrong")
	}
	d := u.Diff(b)
	if !d.Has(ir.R(1)) || d.Has(ir.R(2)) {
		t.Error("Diff wrong")
	}
}

// diamond builds:
//
//	entry: li r1,1 ; beq r1,0,right
//	left:  li r2,10 ; jmp join
//	right: li r3,20        <- r2 NOT defined here
//	join:  add r4,r2,r3 ; jsr putint r4 ; halt
func diamond() *prog.Program {
	p := prog.NewProgram()
	p.AddBlock("entry",
		ir.LI(ir.R(1), 1),
		ir.BRI(ir.Beq, ir.R(1), 0, "right"),
	)
	p.AddBlock("left", ir.LI(ir.R(2), 10), ir.JMP("join"))
	p.AddBlock("right", ir.LI(ir.R(3), 20))
	p.AddBlock("join",
		ir.ALU(ir.Add, ir.R(4), ir.R(2), ir.R(3)),
		ir.JSR("putint", ir.R(4)),
		ir.HALT(),
	)
	return p
}

func TestLivenessDiamond(t *testing.T) {
	p := diamond()
	lv := Compute(p)

	// r2 and r3 are live into join.
	join := lv.In["join"]
	if !join.Has(ir.R(2)) || !join.Has(ir.R(3)) {
		t.Errorf("join live-in = %v", join.Regs())
	}
	if join.Has(ir.R(1)) || join.Has(ir.R(4)) {
		t.Errorf("join live-in too big: %v", join.Regs())
	}
	// r3 is live into left (defined only in right but used in join — left
	// path reads it uninitialized); r2 is not live into left (defined there).
	left := lv.In["left"]
	if !left.Has(ir.R(3)) || left.Has(ir.R(2)) {
		t.Errorf("left live-in = %v", left.Regs())
	}
	// Entry sees uninitialized uses of r2 (via right path) and r3 (via left
	// path).
	uninit := lv.UninitializedAtEntry()
	if !uninit.Has(ir.R(2)) || !uninit.Has(ir.R(3)) {
		t.Errorf("uninitialized at entry = %v", uninit.Regs())
	}
	if uninit.Has(ir.R(1)) {
		t.Errorf("r1 defined before use, must not be in %v", uninit.Regs())
	}
}

func TestLiveAtTaken(t *testing.T) {
	p := diamond()
	lv := Compute(p)
	entry := p.Block("entry")
	taken := lv.LiveAtTaken(entry, 1) // beq -> right
	if !taken.Has(ir.R(2)) {
		// right does not define r2, join uses it.
		t.Errorf("live at taken(entry beq) = %v, want r2 in it", taken.Regs())
	}
	if taken.Has(ir.R(1)) {
		t.Errorf("r1 dead at right: %v", taken.Regs())
	}
	// Non-branch instruction: empty set.
	if !lv.LiveAtTaken(entry, 0).Empty() {
		t.Error("LiveAtTaken of non-branch must be empty")
	}
}

// loop checks convergence with a back edge: value carried around the loop
// stays live at the loop head.
func TestLivenessLoop(t *testing.T) {
	p := prog.NewProgram()
	p.AddBlock("entry", ir.LI(ir.R(1), 0), ir.LI(ir.R(2), 10))
	p.AddBlock("loop",
		ir.ALUI(ir.Add, ir.R(1), ir.R(1), 1),
		ir.BR(ir.Blt, ir.R(1), ir.R(2), "loop"),
	)
	p.AddBlock("exit", ir.JSR("putint", ir.R(1)), ir.HALT())
	lv := Compute(p)
	in := lv.In["loop"]
	if !in.Has(ir.R(1)) || !in.Has(ir.R(2)) {
		t.Errorf("loop live-in = %v, want r1 and r2", in.Regs())
	}
	if !lv.UninitializedAtEntry().Empty() {
		t.Errorf("nothing is uninitialized: %v", lv.UninitializedAtEntry().Regs())
	}
}

func TestLiveWithinBlock(t *testing.T) {
	// Superblock with a side exit: r5 used only at "out" target.
	p := prog.NewProgram()
	b := p.AddBlock("sb",
		ir.LI(ir.R(5), 1),                         // 0
		ir.BRI(ir.Beq, ir.R(1), 0, "out"),         // 1: side exit, r5 live at out
		ir.LI(ir.R(5), 2),                         // 2: redefines r5
		ir.ALU(ir.Add, ir.R(6), ir.R(5), ir.R(5)), // 3
		ir.JSR("putint", ir.R(6)),                 // 4
		ir.HALT(),                                 // 5
	)
	b.Superblock = true
	p.AddBlock("out", ir.JSR("putint", ir.R(5)), ir.HALT())
	lv := Compute(p)
	after := lv.LiveWithinBlock(b)
	if len(after) != 6 {
		t.Fatalf("len(after) = %d", len(after))
	}
	// After instr 0 (li r5), r5 is live (needed by the side exit).
	if !after[0].Has(ir.R(5)) {
		t.Errorf("after[0] = %v, want r5 live (side exit uses it)", after[0].Regs())
	}
	// After instr 3, r5 is dead, r6 live.
	if after[3].Has(ir.R(5)) || !after[3].Has(ir.R(6)) {
		t.Errorf("after[3] = %v", after[3].Regs())
	}
}

// Property: live-in(b) == use(b) ∪ (live-out(b) − def(b)) after convergence,
// for random linear programs.
func TestLivenessFixpointQuick(t *testing.T) {
	build := func(seed uint32) *prog.Program {
		p := prog.NewProgram()
		s := seed
		rnd := func(n int) int { s = s*1664525 + 1013904223; return int(s>>16) % n }
		var instrs []*ir.Instr
		for i := 0; i < 12; i++ {
			d, a, b := ir.R(1+rnd(6)), ir.R(1+rnd(6)), ir.R(1+rnd(6))
			instrs = append(instrs, ir.ALU(ir.Add, d, a, b))
		}
		instrs = append(instrs, ir.HALT())
		p.AddBlock("b0", instrs...)
		return p
	}
	f := func(seed uint32) bool {
		p := build(seed)
		lv := Compute(p)
		use, def := blockUseDef(p.Blocks[0])
		want := use.Union(lv.Out["b0"].Diff(def))
		return lv.In["b0"] == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
