// Package dataflow implements live-variable analysis over MIR programs.
// Liveness answers the two questions sentinel scheduling needs:
//
//  1. Dependence-graph reduction (§3.3): a control dependence from branch BR
//     to instruction I may be removed only if dest(I) is not live when BR is
//     taken, i.e. not live-in at BR's target block.
//  2. Uninitialized data (§3.5): registers live-in at the program entry may
//     be read before written and need their exception tags reset.
package dataflow

import (
	"sentinel/internal/ir"
	"sentinel/internal/prog"
)

// RegSet is a bitset over the 128 physical registers.
type RegSet [2]uint64

// Add inserts r.
func (s *RegSet) Add(r ir.Reg) {
	i := r.Index()
	s[i>>6] |= 1 << (i & 63)
}

// Remove deletes r.
func (s *RegSet) Remove(r ir.Reg) {
	i := r.Index()
	s[i>>6] &^= 1 << (i & 63)
}

// Has reports membership.
func (s RegSet) Has(r ir.Reg) bool {
	i := r.Index()
	return s[i>>6]&(1<<(i&63)) != 0
}

// Union returns s ∪ t.
func (s RegSet) Union(t RegSet) RegSet { return RegSet{s[0] | t[0], s[1] | t[1]} }

// Diff returns s \ t.
func (s RegSet) Diff(t RegSet) RegSet { return RegSet{s[0] &^ t[0], s[1] &^ t[1]} }

// Empty reports whether the set has no members.
func (s RegSet) Empty() bool { return s[0] == 0 && s[1] == 0 }

// Regs enumerates the members.
func (s RegSet) Regs() []ir.Reg {
	var out []ir.Reg
	for w := 0; w < 2; w++ {
		for b := 0; b < 64; b++ {
			if s[w]&(1<<b) == 0 {
				continue
			}
			idx := w*64 + b
			if idx < ir.NumIntRegs {
				out = append(out, ir.R(idx))
			} else {
				out = append(out, ir.F(idx-ir.NumIntRegs))
			}
		}
	}
	return out
}

// Liveness holds per-block live-in/out sets.
type Liveness struct {
	In  map[string]RegSet
	Out map[string]RegSet

	p *prog.Program
}

// blockUseDef computes the upward-exposed uses and the definitions of a
// block (uses before any local definition).
func blockUseDef(b *prog.Block) (use, def RegSet) {
	for _, in := range b.Instrs {
		for _, u := range in.Uses() {
			if !def.Has(u) {
				use.Add(u)
			}
		}
		if d, ok := in.Def(); ok {
			def.Add(d)
		}
	}
	return use, def
}

// Compute runs the standard backward iterative live-variable analysis on p.
// It works on both basic-block programs and superblock programs (where
// side-exit branches contribute their targets as successors).
func Compute(p *prog.Program) *Liveness {
	lv := &Liveness{
		In:  make(map[string]RegSet, len(p.Blocks)),
		Out: make(map[string]RegSet, len(p.Blocks)),
		p:   p,
	}
	use := make(map[string]RegSet, len(p.Blocks))
	def := make(map[string]RegSet, len(p.Blocks))
	for _, b := range p.Blocks {
		use[b.Label], def[b.Label] = blockUseDef(b)
	}
	for changed := true; changed; {
		changed = false
		// Reverse program order converges quickly for mostly-forward CFGs.
		for i := len(p.Blocks) - 1; i >= 0; i-- {
			b := p.Blocks[i]
			var out RegSet
			for _, s := range p.Successors(b) {
				out = out.Union(lv.In[s])
			}
			in := use[b.Label].Union(out.Diff(def[b.Label]))
			if out != lv.Out[b.Label] || in != lv.In[b.Label] {
				lv.Out[b.Label] = out
				lv.In[b.Label] = in
				changed = true
			}
		}
	}
	return lv
}

// LiveAtTaken returns the set of registers live when the branch at
// b.Instrs[idx] is taken: the live-in set of its target block. For Jsr/Halt
// (no target) it returns the empty set.
func (lv *Liveness) LiveAtTaken(b *prog.Block, idx int) RegSet {
	in := b.Instrs[idx]
	if !ir.IsBranch(in.Op) && in.Op != ir.Jmp {
		return RegSet{}
	}
	return lv.In[in.Target]
}

// UninitializedAtEntry returns the registers that may be read before being
// written on some execution path: exactly the live-in set of the entry
// block. Sentinel models must reset these registers' exception tags before
// use (§3.5).
func (lv *Liveness) UninitializedAtEntry() RegSet {
	return lv.In[lv.p.Entry]
}

// LiveWithinBlock computes, for each instruction index i in block b, the
// set of registers live immediately AFTER instruction i executes, taking
// side exits into account. Index -1's result (live before the first
// instruction) is stored at position 0 of the second return value... to keep
// the API simple we return after-sets only; the before-set of instruction i
// equals after-set of i-1 with i's effects removed, which callers rarely
// need. The scheduler uses after-sets to decide whether an instruction's
// value can legally move below a later branch.
func (lv *Liveness) LiveWithinBlock(b *prog.Block) []RegSet {
	n := len(b.Instrs)
	after := make([]RegSet, n)
	// Walk backward from the block's fall-through live-out. Side exits
	// contribute their targets' live-in sets at the branch sites inside the
	// loop, so the seed must be the fall-through path only: the live-in of
	// the next block in program order, or empty if the block cannot fall
	// through (terminal Halt or Jmp — a terminal Jmp's target is unioned in
	// by the loop).
	var cur RegSet
	if n > 0 {
		last := b.Instrs[n-1]
		if last.Op != ir.Halt && last.Op != ir.Jmp {
			if idx := lv.p.BlockIndex(b.Label); idx >= 0 && idx+1 < len(lv.p.Blocks) {
				cur = lv.In[lv.p.Blocks[idx+1].Label]
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		after[i] = cur
		in := b.Instrs[i]
		if d, ok := in.Def(); ok {
			cur.Remove(d)
		}
		for _, u := range in.Uses() {
			cur.Add(u)
		}
		if (ir.IsBranch(in.Op) || in.Op == ir.Jmp) && lv.p.Block(in.Target) != nil {
			cur = cur.Union(lv.In[in.Target])
		}
	}
	return after
}
