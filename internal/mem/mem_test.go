package mem

import (
	"testing"
	"testing/quick"

	"sentinel/internal/ir"
)

func TestMapAndReadWrite(t *testing.T) {
	m := New()
	m.Map("data", 0x1000, 64)
	if f := m.Write(0x1000, 8, 0xdeadbeef); f != nil {
		t.Fatalf("write: %v", f)
	}
	v, f := m.Read(0x1000, 8)
	if f != nil || v != 0xdeadbeef {
		t.Fatalf("read = %#x, %v", v, f)
	}
	if f := m.Write(0x1010, 1, 0xab); f != nil {
		t.Fatalf("byte write: %v", f)
	}
	v, f = m.Read(0x1010, 1)
	if f != nil || v != 0xab {
		t.Fatalf("byte read = %#x, %v", v, f)
	}
}

func TestUnmappedAccessViolation(t *testing.T) {
	m := New()
	m.Map("data", 0x1000, 16)
	for _, addr := range []int64{0, 0xfff, 0x1010, 0x100000} {
		if _, f := m.Read(addr, 8); f == nil || f.Kind != ir.ExcAccessViolation {
			t.Errorf("read %#x: fault = %v, want access violation", addr, f)
		}
		if f := m.Write(addr, 8, 1); f == nil || f.Kind != ir.ExcAccessViolation {
			t.Errorf("write %#x: fault = %v, want access violation", addr, f)
		}
	}
	// Straddling the end of a segment also faults.
	if _, f := m.Read(0x1009, 8); f == nil {
		t.Error("read straddling segment end must fault")
	}
}

func TestPageFaultAndRepair(t *testing.T) {
	m := New()
	s := m.Map("heap", 0x2000, 32)
	s.Present = false
	if _, f := m.Read(0x2000, 8); f == nil || f.Kind != ir.ExcPageFault {
		t.Fatalf("paged-out read fault = %v, want page fault", f)
	}
	if f := m.Write(0x2008, 8, 7); f == nil || f.Kind != ir.ExcPageFault {
		t.Fatalf("paged-out write fault = %v, want page fault", f)
	}
	s.Present = true // the "OS" maps the page in
	if _, f := m.Read(0x2000, 8); f != nil {
		t.Fatalf("after repair: %v", f)
	}
}

func TestOverlapPanics(t *testing.T) {
	m := New()
	m.Map("a", 0x1000, 64)
	defer func() {
		if recover() == nil {
			t.Error("overlapping Map must panic")
		}
	}()
	m.Map("b", 0x1030, 64)
}

func TestSegmentLookupByName(t *testing.T) {
	m := New()
	m.Map("a", 0x1000, 8)
	m.Map("b", 0x2000, 8)
	if s := m.Segment("b"); s == nil || s.Base != 0x2000 {
		t.Errorf("Segment(b) = %+v", s)
	}
	if m.Segment("missing") != nil {
		t.Error("missing segment should be nil")
	}
}

func TestTaggedSpillRoundTrip(t *testing.T) {
	m := New()
	m.Map("stack", 0x8000, 64)
	if f := m.WriteTagged(0x8000, 12345, 2); f != nil {
		t.Fatal(f)
	}
	v, tag, f := m.ReadTagged(0x8000)
	if f != nil || v != 12345 || tag != 2 {
		t.Fatalf("ReadTagged = %d, %d, %v", v, tag, f)
	}
	// A plain (non-tag-preserving) write clears the sidecar tag.
	if f := m.Write(0x8000, 8, 999); f != nil {
		t.Fatal(f)
	}
	_, tag, _ = m.ReadTagged(0x8000)
	if tag != 0 {
		t.Errorf("plain write must clear tag sidecar; tag = %d", tag)
	}
}

func TestChecksumDetectsDifferences(t *testing.T) {
	a, b := New(), New()
	a.Map("d", 0x1000, 32)
	b.Map("d", 0x1000, 32)
	if a.Checksum() != b.Checksum() {
		t.Fatal("identical memories must have equal checksums")
	}
	a.Write(0x1008, 8, 5)
	if a.Checksum() == b.Checksum() {
		t.Fatal("checksum must reflect content changes")
	}
	b.Write(0x1008, 8, 5)
	if a.Checksum() != b.Checksum() {
		t.Fatal("checksums must re-converge")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := New()
	m.Map("d", 0x1000, 16)
	m.Write(0x1000, 8, 42)
	m.WriteTagged(0x1008, 7, 1)
	c := m.Clone()
	if c.Checksum() != m.Checksum() {
		t.Fatal("clone checksum differs")
	}
	c.Write(0x1000, 8, 99)
	if v, _ := m.Read(0x1000, 8); v != 42 {
		t.Error("mutating clone must not affect original")
	}
	if _, tag, _ := c.ReadTagged(0x1008); tag != 1 {
		t.Error("clone must carry tag sidecar")
	}
}

// Property: for random in-bounds offsets, a written value reads back, both
// widths.
func TestReadBackQuick(t *testing.T) {
	m := New()
	const size = 4096
	m.Map("d", 0, size)
	f := func(off uint16, val uint64, byteWide bool) bool {
		width := 8
		if byteWide {
			width = 1
		}
		addr := int64(off) % (size - 8)
		if fa := m.Write(addr, width, val); fa != nil {
			return false
		}
		got, fa := m.Read(addr, width)
		if fa != nil {
			return false
		}
		if width == 1 {
			return got == val&0xff
		}
		return got == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: any access entirely outside mapped segments faults and never
// mutates the checksum.
func TestOutOfBoundsNeverMutatesQuick(t *testing.T) {
	m := New()
	m.Map("d", 0x1000, 256)
	sum := m.Checksum()
	f := func(addr int64, val uint64) bool {
		a := addr
		if a >= 0x1000 && a < 0x1100 {
			a += 0x10000 // push outside
		}
		fw := m.Write(a, 8, val)
		return fw != nil && m.Checksum() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
