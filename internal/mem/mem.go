// Package mem provides the byte-addressable data memory used by both the
// reference interpreter and the cycle simulator. Memory is organized as named
// segments; accesses outside any segment raise an access violation, and
// segments may be marked "not present" to model demand paging (page faults),
// which the recovery experiments use for fault injection.
package mem

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"sort"

	"sentinel/internal/ir"
)

// Fault describes a failed memory access. Faults are data, not Go errors:
// the machine architecture decides whether a fault becomes a signalled
// exception (non-speculative access) or a tagged register (speculative).
type Fault struct {
	Kind ir.ExcKind
	Addr int64
}

func (f *Fault) String() string {
	return fmt.Sprintf("%v at address %#x", f.Kind, f.Addr)
}

// Segment is a contiguous mapped region.
type Segment struct {
	Name    string
	Base    int64
	Data    []byte
	Present bool // false models a paged-out region: access => page fault
}

// Contains reports whether [addr, addr+size) lies inside the segment.
func (s *Segment) Contains(addr int64, size int) bool {
	return addr >= s.Base && addr+int64(size) <= s.Base+int64(len(s.Data))
}

// Memory is a sparse, segment-based memory image.
//
// Concurrency: a Memory is not safe for concurrent use while any goroutine
// writes it (Map, Write, WriteTagged, or segment mutation). The evaluation
// runner keeps one pristine image per benchmark and hands every simulation
// its own Clone; the pristine image itself is only ever read (Clone,
// Checksum), which is safe from multiple goroutines.
type Memory struct {
	segs []*Segment // sorted by Base, non-overlapping
	// tags holds the exception-tag sidecar written by SaveTR and read by
	// RestTR (§3.2: special instructions that save/restore both the data and
	// the exception tag of a register, e.g. for spill or context switch).
	tags map[int64]byte
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{tags: make(map[int64]byte)}
}

// Map creates a zero-initialized segment of the given size at base and
// returns it. It panics if the new segment would overlap an existing one;
// memory layout bugs in workload generators should fail loudly.
func (m *Memory) Map(name string, base int64, size int) *Segment {
	if size < 0 {
		panic("mem: negative segment size")
	}
	for _, s := range m.segs {
		if base < s.Base+int64(len(s.Data)) && s.Base < base+int64(size) {
			panic(fmt.Sprintf("mem: segment %q [%#x,%#x) overlaps %q",
				name, base, base+int64(size), s.Name))
		}
	}
	seg := &Segment{Name: name, Base: base, Data: make([]byte, size), Present: true}
	m.segs = append(m.segs, seg)
	sort.Slice(m.segs, func(i, j int) bool { return m.segs[i].Base < m.segs[j].Base })
	return seg
}

// Segment returns the named segment, or nil.
func (m *Memory) Segment(name string) *Segment {
	for _, s := range m.segs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

func (m *Memory) find(addr int64, size int) (*Segment, *Fault) {
	i := sort.Search(len(m.segs), func(i int) bool {
		s := m.segs[i]
		return addr < s.Base+int64(len(s.Data))
	})
	if i < len(m.segs) && m.segs[i].Contains(addr, size) {
		s := m.segs[i]
		if !s.Present {
			return nil, &Fault{Kind: ir.ExcPageFault, Addr: addr}
		}
		return s, nil
	}
	return nil, &Fault{Kind: ir.ExcAccessViolation, Addr: addr}
}

// Check performs address translation for a size-byte access at addr without
// touching data: it returns the fault a real access would raise, or nil.
// The store buffer uses it at insertion time (§4.1: "Address translation is
// performed during insertion").
func (m *Memory) Check(addr int64, size int) *Fault {
	_, f := m.find(addr, size)
	return f
}

// Read reads size (1 or 8) bytes at addr, little-endian.
func (m *Memory) Read(addr int64, size int) (uint64, *Fault) {
	s, f := m.find(addr, size)
	if f != nil {
		return 0, f
	}
	off := addr - s.Base
	switch size {
	case 1:
		return uint64(s.Data[off]), nil
	case 8:
		return binary.LittleEndian.Uint64(s.Data[off:]), nil
	default:
		panic(fmt.Sprintf("mem: unsupported access size %d", size))
	}
}

// Write writes size (1 or 8) bytes at addr, little-endian. A plain write
// clears any exception-tag sidecar at the address.
func (m *Memory) Write(addr int64, size int, val uint64) *Fault {
	s, f := m.find(addr, size)
	if f != nil {
		return f
	}
	off := addr - s.Base
	switch size {
	case 1:
		s.Data[off] = byte(val)
	case 8:
		binary.LittleEndian.PutUint64(s.Data[off:], val)
	default:
		panic(fmt.Sprintf("mem: unsupported access size %d", size))
	}
	delete(m.tags, addr)
	return nil
}

// WriteTagged writes a register's data together with its exception tag
// (SaveTR). Tag is stored in a sidecar so the memory image itself is
// unchanged in layout.
func (m *Memory) WriteTagged(addr int64, val uint64, tag byte) *Fault {
	if f := m.Write(addr, 8, val); f != nil {
		return f
	}
	if tag != 0 {
		m.tags[addr] = tag
	}
	return nil
}

// ReadTagged reads a register's data together with its exception tag
// (RestTR).
func (m *Memory) ReadTagged(addr int64) (uint64, byte, *Fault) {
	v, f := m.Read(addr, 8)
	if f != nil {
		return 0, 0, f
	}
	return v, m.tags[addr], nil
}

// Checksum returns a digest of all mapped bytes (segments in base order);
// two memories with identical mapped contents compare equal. Architectural
// results of the reference interpreter and every scheduled run are compared
// through this.
func (m *Memory) Checksum() uint64 {
	tab := crc64.MakeTable(crc64.ECMA)
	var h uint64
	var hdr [16]byte
	for _, s := range m.segs {
		binary.LittleEndian.PutUint64(hdr[0:], uint64(s.Base))
		binary.LittleEndian.PutUint64(hdr[8:], uint64(len(s.Data)))
		h = crc64.Update(h, tab, hdr[:])
		h = crc64.Update(h, tab, s.Data)
	}
	return h
}

// Clone returns a deep copy of the memory (segments and tag sidecar).
func (m *Memory) Clone() *Memory {
	c := New()
	for _, s := range m.segs {
		d := make([]byte, len(s.Data))
		copy(d, s.Data)
		c.segs = append(c.segs, &Segment{Name: s.Name, Base: s.Base, Data: d, Present: s.Present})
	}
	for k, v := range m.tags {
		c.tags[k] = v
	}
	return c
}
