package fingerprint

// The golden test: the canonical serialization is a cross-process contract.
// The fleet router (internal/fleet) consistent-hashes these exact bytes to
// pick a backend, and the backend (internal/server) keys its response-byte
// cache by them — if either side's serialization drifts, identical requests
// stop landing where their caches are warm and the fleet's hit rate
// silently collapses. Any intentional change to the serialization must
// update these digests AND redeploy router and backends together.

import (
	"encoding/hex"
	"testing"

	"sentinel/internal/machine"
)

func resolved(t *testing.T, model string, width int, predictor string) machine.Desc {
	t.Helper()
	md, err := machine.Resolve(model, width, predictor)
	if err != nil {
		t.Fatalf("Resolve(%q,%d,%q): %v", model, width, predictor, err)
	}
	return md
}

// TestGoldenKeys pins the fingerprint bytes for a matrix of representative
// requests. These digests were computed once and must never change by
// accident.
func TestGoldenKeys(t *testing.T) {
	cases := []struct {
		name string
		key  func(t *testing.T) Key
		want string
	}{
		{"simulate/cmp-stores-w8", func(t *testing.T) Key {
			return Simulate("cmp", "", resolved(t, "sentinel+stores", 8, ""))
		}, "96d58ad33b8b4e372093d7559f7ad8757bc45235bdda531eb4e951d84408d0e1"},
		{"simulate/defaults", func(t *testing.T) Key {
			return Simulate("cmp", "", resolved(t, "", 0, ""))
		}, "bc4d5b465796d69f5b49713ef17848421a02cee4435bb5ab844681858ea44c63"},
		{"simulate/inline-source", func(t *testing.T) Key {
			return Simulate("", "r1 = add r0, r0", resolved(t, "general", 2, "tage"))
		}, "0010c31b6e76d6a4778549baf7fd862e2a8c41652fb87baa04e3c73b2d17b8a1"},
		{"schedule/formed", func(t *testing.T) Key {
			return Schedule("cmp", "", resolved(t, "sentinel+stores", 8, ""), true)
		}, "c0fe8cb2f85a1582b31adc361ddf29d4912becb3b783e8913ee42e7f8b10c457"},
		{"schedule/unformed", func(t *testing.T) Key {
			return Schedule("cmp", "", resolved(t, "sentinel+stores", 8, ""), false)
		}, "cc65e7eb7d6e7b43b46264b534586bc11315cb45453fcfec275d5b810cf63f8f"},
		{"figures/all", func(t *testing.T) Key {
			return Figures(true, true, true, true, true, true, true, true, true, true)
		}, "7f6375280234207cd217651769141cdada2933606058455dea12476a5a6c0c50"},
		{"figures/fig4", func(t *testing.T) Key {
			return Figures(true, false, false, false, false, false, false, false, false, false)
		}, "40c23c5d51681bf394d2c4e89380410bcad458d1c8515208c6a47fafe5dee888"},
		{"raw/simulate-body", func(t *testing.T) Key {
			return RawRequest("/v1/simulate", "", []byte(`{"workload":"cmp","model":"sentinel+stores","width":8}`))
		}, "d67313e54821d652f272c9c25db3b946a5d5703bd51232d16e2bdffd413f3d9f"},
		{"raw/figures-query", func(t *testing.T) Key {
			return RawRequest("/v1/figures", "section=fig4", nil)
		}, "6e4f5296d67dbdfa32cf10fab23b3266d2a5ae475ffa18e98818599e710ee12c"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := hex.EncodeToString(func() []byte { k := tc.key(t); return k[:] }())
			if got != tc.want {
				t.Errorf("fingerprint drifted:\n got %s\nwant %s\n(router/backend cache affinity would silently split)", got, tc.want)
			}
		})
	}
}

// TestAliasEquivalence: textual variants of the same machine must
// fingerprint identically — it is what lets the router unify "sentinel",
// "" and width-0-vs-8 onto one backend.
func TestAliasEquivalence(t *testing.T) {
	base := Simulate("wc", "", resolved(t, "sentinel", 8, "perfect"))
	for _, alt := range []struct {
		model     string
		width     int
		predictor string
	}{
		{"", 0, ""},
		{"sentinel", 0, "perfect"},
		{"", 8, ""},
	} {
		got := Simulate("wc", "", resolved(t, alt.model, alt.width, alt.predictor))
		if got != base {
			t.Errorf("Resolve(%q,%d,%q) fingerprints differently from the canonical form",
				alt.model, alt.width, alt.predictor)
		}
	}
	if stores := Simulate("wc", "", resolved(t, "stores", 0, "")); stores == base {
		t.Error("'stores' alias collided with 'sentinel'")
	} else if canonical := Simulate("wc", "", resolved(t, "sentinel+stores", 8, "")); stores != canonical {
		t.Error("'stores' alias fingerprints differently from 'sentinel+stores'")
	}
}

// TestTagDisjointness: the same logical inputs under different endpoint
// tags must never collide.
func TestTagDisjointness(t *testing.T) {
	md := resolved(t, "sentinel", 8, "")
	if Simulate("cmp", "", md) == Schedule("cmp", "", md, true) {
		t.Error("simulate and schedule keys collided")
	}
	if got := [4]byte{TagSimulate, TagSchedule, TagFigures, TagRaw}; got != [4]byte{1, 2, 3, 4} {
		t.Errorf("endpoint tag bytes changed: %v (pinned 1,2,3,4)", got)
	}
}

// TestRawRequestInto: the scratch-reusing variant must agree with
// RawRequest byte for byte, including across reuses of the same scratch.
func TestRawRequestInto(t *testing.T) {
	var scratch []byte
	cases := []struct {
		path, query string
		body        []byte
	}{
		{"/v1/simulate", "", []byte(`{"workload":"cmp"}`)},
		{"/v1/schedule", "timeout_ms=50", []byte(`{"workload":"wc","model":"general"}`)},
		{"/v1/figures", "section=fig5", nil},
	}
	for _, tc := range cases {
		var got Key
		got, scratch = RawRequestInto(scratch, tc.path, tc.query, tc.body)
		if want := RawRequest(tc.path, tc.query, tc.body); got != want {
			t.Errorf("RawRequestInto(%q,%q) != RawRequest", tc.path, tc.query)
		}
	}
}
