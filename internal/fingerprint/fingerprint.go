// Package fingerprint is the canonical request fingerprint shared by the
// backend serving layer (internal/server, keying its response-byte cache)
// and the fleet router (internal/fleet, consistent-hashing requests onto
// backends). The key must identify everything that can influence the
// response bytes and nothing else: the normalized program spec (workload
// name, or the sha256 of inline source), the fully resolved machine
// description (so "sentinel" and "" and width 0 vs 8 land on one key), and
// the per-endpoint options.
//
// Both sides MUST agree byte-for-byte: a router that fingerprints a request
// differently from the backend silently splits the fleet's caches — every
// repeat would land on a backend whose cache was warmed under a different
// key. The golden test in this package pins the serialization so a skew
// can never creep in unnoticed.
package fingerprint

import (
	"crypto/sha256"
	"encoding/binary"

	"sentinel/internal/machine"
)

// Key is the canonical request fingerprint: a sha256 over the tagged
// canonical serialization of the normalized request.
type Key = [sha256.Size]byte

// Endpoint tags keep the keyspaces disjoint: a schedule and a simulate of
// the same program must never collide. The values are pinned by the golden
// test — changing one invalidates every fleet/backend cache relationship.
const (
	TagSimulate = byte(1)
	TagSchedule = byte(2)
	TagFigures  = byte(3)
	TagRaw      = byte(4)
)

// Buf accumulates the canonical serialization on the stack — sized so a
// workload-cell request (the warm path) never allocates on its way to the
// sha256. Inline source is folded in as its own sha256, so source length
// does not matter.
type Buf struct {
	b []byte
	a [96]byte
}

// New starts a canonical serialization with the endpoint tag.
func New(tag byte) Buf {
	var f Buf
	f.b = append(f.a[:0], tag)
	return f
}

// Str folds a length-prefixed string in ("ab"+"c" != "a"+"bc").
func (f *Buf) Str(s string) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
	f.b = append(f.b, n[:]...)
	f.b = append(f.b, s...)
}

// U64 folds a fixed-width little-endian integer in.
func (f *Buf) U64(v uint64) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], v)
	f.b = append(f.b, n[:]...)
}

// Bool folds one byte, 0 or 1.
func (f *Buf) Bool(v bool) {
	if v {
		f.b = append(f.b, 1)
	} else {
		f.b = append(f.b, 0)
	}
}

// Bytes folds raw bytes in (callers own any length prefixing).
func (f *Buf) Bytes(p []byte) { f.b = append(f.b, p...) }

// Sum finishes the serialization.
func (f *Buf) Sum() Key { return sha256.Sum256(f.b) }

// MachineDesc folds every field of the resolved machine description in.
// Callers must have normalized aliases and defaults first (machine.Resolve),
// so equivalent requests share bytes here.
func (f *Buf) MachineDesc(md machine.Desc) {
	f.U64(uint64(md.IssueWidth))
	f.U64(uint64(md.StoreBuffer))
	f.U64(uint64(md.Model))
	f.Bool(md.Recovery)
	f.Bool(md.NoSharedSentinels)
	f.U64(uint64(md.BoostLevels))
	f.U64(uint64(md.Predictor))
	f.U64(uint64(md.MispredictPenalty))
}

// Program folds the normalized program identity in: the workload name, or
// the content hash of inline source (never the source itself).
func (f *Buf) Program(workload, source string) {
	f.Str(workload)
	if source != "" {
		sum := sha256.Sum256([]byte(source))
		f.Bytes(sum[:])
	}
}

// Simulate fingerprints a cacheable simulate request. Callers must have
// ruled out fault injection and Full runs before using this as a cache key
// (for routing, affinity by the underlying program×machine is exactly
// right even for uncacheable runs — the compile artifacts are shared).
func Simulate(workload, source string, md machine.Desc) Key {
	f := New(TagSimulate)
	f.Program(workload, source)
	f.MachineDesc(md)
	return f.Sum()
}

// Schedule fingerprints a schedule request (always deterministic).
func Schedule(workload, source string, md machine.Desc, form bool) Key {
	f := New(TagSchedule)
	f.Program(workload, source)
	f.MachineDesc(md)
	f.Bool(form)
	return f.Sum()
}

// Figures fingerprints a figures request by its resolved section
// selection, in the fixed render order of eval.RenderSections.
func Figures(fig4, fig5, table3, overhead, recovery, buffer, faults, sharing, boost, prediction bool) Key {
	f := New(TagFigures)
	f.Bool(fig4)
	f.Bool(fig5)
	f.Bool(table3)
	f.Bool(overhead)
	f.Bool(recovery)
	f.Bool(buffer)
	f.Bool(faults)
	f.Bool(sharing)
	f.Bool(boost)
	f.Bool(prediction)
	return f.Sum()
}

// RawRequest fingerprints a request exactly as received: path, query and
// body bytes. Two requests with the same raw key are indistinguishable on
// the wire, so serving the first one's cached bytes to the second is
// trivially byte-identical — without decoding anything. Textual variants of
// the same logical request (field order, whitespace, defaulted fields) miss
// here and fall through to the canonical keys above.
func RawRequest(path, rawQuery string, body []byte) Key {
	f := New(TagRaw)
	f.Str(path)
	f.Str(rawQuery)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(body)))
	f.b = append(f.b, n[:]...)
	f.b = append(f.b, body...)
	return f.Sum()
}

// RawRequestInto is RawRequest over caller-owned scratch, for callers that
// fingerprint many requests back to back (the batch probe loop): the
// accumulation buffer is reused across calls instead of escaping per call.
// Returns the key and the (possibly grown) scratch to carry forward.
func RawRequestInto(scratch []byte, path, rawQuery string, body []byte) (Key, []byte) {
	b := append(scratch[:0], TagRaw)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(path)))
	b = append(b, n[:]...)
	b = append(b, path...)
	binary.LittleEndian.PutUint32(n[:], uint32(len(rawQuery)))
	b = append(b, n[:]...)
	b = append(b, rawQuery...)
	binary.LittleEndian.PutUint32(n[:], uint32(len(body)))
	b = append(b, n[:]...)
	b = append(b, body...)
	return sha256.Sum256(b), b
}
