package fleet

// Routing keys: the router-side half of the canonical fingerprint contract.
// For the decodable API shapes the router resolves the request exactly as
// the backend will (shared machine.Resolve + shared fingerprint
// serialization, pinned by internal/fingerprint's golden test), so textual
// variants of one logical request — field order, whitespace, defaulted
// width, model aliases — all hash to the backend whose caches that request
// already warmed. Anything the router cannot decode falls back to the
// raw-request fingerprint: still deterministic (the same bytes always land
// on the same backend, so even malformed-request error envelopes get
// response-cache affinity), just blind to textual variation.
//
// The router's decode is routing-only and deliberately lax — no
// DisallowUnknownFields, no required-field policing beyond what the key
// needs. The backend remains the sole authority on request validity; a
// request the backend will reject still routes deterministically and comes
// back with the backend's own envelope, byte-identical to a direct call.

import (
	"encoding/binary"
	"encoding/json"
	"net/url"

	"sentinel/internal/fingerprint"
	"sentinel/internal/machine"
)

// routeReq is the union of the simulate/schedule request fields the
// canonical fingerprint depends on.
type routeReq struct {
	Workload   string `json:"workload"`
	Source     string `json:"source"`
	Model      string `json:"model"`
	Predictor  string `json:"predictor"`
	Width      int    `json:"width"`
	Superblock *bool  `json:"superblock"`
}

// decodeRouteReq decodes body for routing. ok is false when the body does
// not decode or does not resolve to one canonical (program, machine) pair.
func decodeRouteReq(body []byte) (q routeReq, md machine.Desc, ok bool) {
	if json.Unmarshal(body, &q) != nil {
		return q, md, false
	}
	if (q.Workload == "") == (q.Source == "") {
		return q, md, false // zero or both: the backend owns the error
	}
	md, err := machine.Resolve(q.Model, q.Width, q.Predictor)
	if err != nil {
		return q, md, false
	}
	return q, md, true
}

// simulateRouteKey fingerprints a simulate body canonically. Fault-injected
// and Full runs share the plain run's key on purpose: they are uncacheable,
// but their compile artifacts are the same, so owner affinity is still
// exactly right.
func simulateRouteKey(body []byte) (fingerprint.Key, bool) {
	q, md, ok := decodeRouteReq(body)
	if !ok {
		return fingerprint.Key{}, false
	}
	return fingerprint.Simulate(q.Workload, q.Source, md), true
}

// scheduleRouteKey fingerprints a schedule body canonically.
func scheduleRouteKey(body []byte) (fingerprint.Key, bool) {
	q, md, ok := decodeRouteReq(body)
	if !ok {
		return fingerprint.Key{}, false
	}
	form := q.Superblock == nil || *q.Superblock
	return fingerprint.Schedule(q.Workload, q.Source, md, form), true
}

// figuresRouteKey fingerprints a /v1/figures query by its resolved section
// set, mirroring the endpoint's section vocabulary (eval.SectionByName). An
// unknown section name falls back to raw-key routing; the backend owns the
// error.
func figuresRouteKey(rawQuery string) (fingerprint.Key, bool) {
	q, err := url.ParseQuery(rawQuery)
	if err != nil {
		return fingerprint.Key{}, false
	}
	names := q["section"]
	var fig4, fig5, table3, overhead, recovery, buffer, faults, sharing, boost, prediction bool
	if len(names) == 0 {
		fig4, fig5, table3, overhead = true, true, true, true
		recovery, buffer, faults, sharing = true, true, true, true
		boost, prediction = true, true
	}
	for _, name := range names {
		switch name {
		case "fig4":
			fig4 = true
		case "fig5":
			fig5 = true
		case "table3":
			table3 = true
		case "overhead":
			overhead = true
		case "recovery":
			recovery = true
		case "buffer":
			buffer = true
		case "faults":
			faults = true
		case "sharing":
			sharing = true
		case "boosting", "boost":
			boost = true
		case "prediction":
			prediction = true
		case "all":
			fig4, fig5, table3, overhead = true, true, true, true
			recovery, buffer, faults, sharing = true, true, true, true
			boost, prediction = true, true
		default:
			return fingerprint.Key{}, false
		}
	}
	return fingerprint.Figures(fig4, fig5, table3, overhead, recovery,
		buffer, faults, sharing, boost, prediction), true
}

// httpRouteKey fingerprints one HTTP request for routing: canonical for the
// decodable endpoint shapes, raw otherwise. /v1/batch routes whole by its
// raw bytes (the wire entry point splits batches per element; the JSON one
// keeps a frame's elements together so its stream order is one backend's
// completion order).
func httpRouteKey(method, path, rawQuery string, body []byte) fingerprint.Key {
	switch {
	case method == "POST" && path == "/v1/simulate":
		if k, ok := simulateRouteKey(body); ok {
			return k
		}
	case method == "POST" && path == "/v1/schedule":
		if k, ok := scheduleRouteKey(body); ok {
			return k
		}
	case method == "GET" && path == "/v1/figures":
		if k, ok := figuresRouteKey(rawQuery); ok {
			return k
		}
	}
	return fingerprint.RawRequest(path, rawQuery, body)
}

// wireRouteKey fingerprints one wire batch element. The raw fallback uses
// the element's HTTP-twin path, so an undecodable payload still lands on
// the same backend whether it arrives framed or as a single POST.
func wireRouteKey(op byte, payload []byte) fingerprint.Key {
	if op == opScheduleByte {
		if k, ok := scheduleRouteKey(payload); ok {
			return k
		}
		return fingerprint.RawRequest("/v1/schedule", "", payload)
	}
	if k, ok := simulateRouteKey(payload); ok {
		return k
	}
	return fingerprint.RawRequest("/v1/simulate", "", payload)
}

// ringHash is the point on the hash circle a key routes from: any 8 bytes
// of the sha256 fingerprint are uniform, same as the backend's shard pick.
func ringHash(k fingerprint.Key) uint64 {
	return binary.LittleEndian.Uint64(k[:8])
}
