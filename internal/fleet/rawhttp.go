package fleet

// The raw HTTP/1.1 proxied hop: the cache-miss path to a backend, built
// like sentinelload's closed-loop client instead of net/http. One proxied
// request is: serialize the request frame into pooled scratch (request
// line, relayed headers, explicit Content-Length, body — one conn.Write),
// then parse the response in place off the pooled connection's buffered
// reader (status line, header offsets recorded for relay, body read whole
// by Content-Length or de-chunked into scratch). Buffering the entire
// response before relaying is what keeps the router's retry semantics
// simple: nothing has been written to the client until the hop has fully
// succeeded, so a draining refusal or transport error can still reroute.
//
// Connection discipline mirrors the wire proxy's: per-backend keep-alive
// pool, a failure on a pooled connection before any response byte arrives
// is a stale keep-alive and redials transparently, and only a *fresh* dial
// failure (rawDialError) flips the backend's reactive unhealthy edge.
// /v1/batch never takes this path — its chunked stream must flush element
// by element, which is exactly what buffering forbids — and keeps the
// net/http client.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// maxRawRespBytes bounds one buffered backend response (far above any real
// envelope or figures render; a response past it is a hop error).
const maxRawRespBytes = 64 << 20

// hdrPair records one relayable response header as offsets into
// rawScratch.hdr (name is hdr[n0:n1], value hdr[v0:v1]); offsets survive
// the append-driven reallocations that slices would not.
type hdrPair struct{ n0, n1, v0, v1 int }

// rawScratch pools the byte workspaces of one raw hop: the preserialized
// request frame, the response header block + relay offsets, and the
// response body accumulator.
type rawScratch struct {
	req   []byte
	hdr   []byte
	body  []byte
	pairs []hdrPair
}

var rawScratchPool = sync.Pool{New: func() any { return new(rawScratch) }}

func getRawScratch() *rawScratch { return rawScratchPool.Get().(*rawScratch) }

// putRawScratch recycles the scratch; one grown past 1 MiB is dropped so a
// single huge response cannot pin memory in the pool.
func putRawScratch(ps *rawScratch) {
	if cap(ps.req)+cap(ps.body)+cap(ps.hdr) > 1<<20 {
		return
	}
	rawScratchPool.Put(ps)
}

// rawResult is one parsed backend response. body and the header offsets
// alias the rawScratch that produced them: valid until the scratch is
// recycled, copied before any longer-lived use (the cache fill).
type rawResult struct {
	status     int
	closeAfter bool
	body       []byte
}

// rawDialError wraps a fresh-dial failure — the only raw-hop error class
// that marks a backend unhealthy (the wire path's rule, applied here).
type rawDialError struct{ err error }

func (e *rawDialError) Error() string { return e.err.Error() }
func (e *rawDialError) Unwrap() error { return e.err }

// buildRawRequest serializes r (with the already-slurped body) into ps.req:
// the exact request net/http would have sent, minus per-request allocation.
// Hop-by-hop headers stay behind; Host and Content-Length are the hop's
// own. Expect stays behind too: the body is already fully buffered and
// written in the same frame, so a relayed 100-continue handshake buys
// nothing and provokes an interim response the relay has no use for.
func buildRawRequest(ps *rawScratch, r *http.Request, host string, body []byte) {
	b := append(ps.req[:0], r.Method...)
	b = append(b, ' ')
	b = append(b, r.URL.EscapedPath()...)
	if r.URL.RawQuery != "" {
		b = append(b, '?')
		b = append(b, r.URL.RawQuery...)
	}
	b = append(b, " HTTP/1.1\r\nHost: "...)
	b = append(b, host...)
	b = append(b, '\r', '\n')
	for name, vals := range r.Header {
		if isHopHeader(name) || name == "Host" || name == "Content-Length" || name == "Expect" {
			continue
		}
		for _, v := range vals {
			b = append(b, name...)
			b = append(b, ':', ' ')
			b = append(b, v...)
			b = append(b, '\r', '\n')
		}
	}
	b = append(b, "Content-Length: "...)
	b = strconv.AppendInt(b, int64(len(body)), 10)
	b = append(b, "\r\n\r\n"...)
	ps.req = append(b, body...)
}

// rawSend performs one proxied hop over a pooled raw connection. The
// request frame must already be built in ps. Stale pooled connections
// (write failure, or EOF before any response byte) close and retry on the
// next pooled or fresh connection; every other failure surfaces — wrapped
// in rawDialError when a fresh dial was what failed.
func (rt *Router) rawSend(b *backend, r *http.Request, ps *rawScratch) (rawResult, error) {
	deadline := time.Now().Add(rt.cfg.RequestTimeout)
	if d, ok := r.Context().Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	for {
		hc, pooled, err := b.getHTTP(rt.cfg.DialTimeout)
		if err != nil {
			return rawResult{}, &rawDialError{err}
		}
		hc.conn.SetDeadline(deadline) //nolint:errcheck
		if _, err := hc.conn.Write(ps.req); err != nil {
			hc.conn.Close()
			if pooled {
				continue
			}
			return rawResult{}, err
		}
		res, began, err := readRawResponse(hc.br, ps)
		if err != nil {
			hc.conn.Close()
			if pooled && !began {
				continue
			}
			return rawResult{}, err
		}
		if res.closeAfter {
			hc.conn.Close()
		} else {
			b.putHTTP(hc)
		}
		return res, nil
	}
}

// readRawResponse consumes one final HTTP/1.1 response from br into ps.
// Interim 1xx responses (a 100 Continue from a backend that honored an
// Expect header, say) are parsed and discarded — only the final response is
// returned, so a 100 can never be mistaken for an unframed answer that
// blocks reading to EOF on a keep-alive connection. began reports whether
// any response byte arrived before a failure — false means the caller may
// treat a pooled connection as stale and retry.
func readRawResponse(br *bufio.Reader, ps *rawScratch) (res rawResult, began bool, err error) {
	const maxInterim = 8 // backends send at most one 1xx; anything more is broken
	for interim := 0; ; interim++ {
		line, err := br.ReadSlice('\n')
		if !began {
			began = len(line) > 0 || err == nil
		}
		if err != nil {
			return res, began, err
		}
		began = true
		if len(line) < 12 || !bytes.HasPrefix(line, []byte("HTTP/1.")) {
			return res, true, fmt.Errorf("malformed status line %q", trimLine(line))
		}
		res = rawResult{closeAfter: line[7] == '0'} // HTTP/1.0: no keep-alive by default
		for _, c := range line[9:12] {
			if c < '0' || c > '9' {
				return res, true, fmt.Errorf("malformed status line %q", trimLine(line))
			}
			res.status = res.status*10 + int(c-'0')
		}
		clen, chunked := -1, false
		ps.hdr = ps.hdr[:0]
		ps.pairs = ps.pairs[:0]
		for {
			h, err := br.ReadSlice('\n')
			if err != nil {
				return res, true, err
			}
			h = trimLine(h)
			if len(h) == 0 {
				break
			}
			colon := bytes.IndexByte(h, ':')
			if colon < 0 {
				return res, true, fmt.Errorf("malformed header line %q", h)
			}
			name, val := h[:colon], bytes.TrimSpace(h[colon+1:])
			switch {
			case asciiFold(name, "content-length"):
				n, ok := parseDec(val)
				if !ok {
					return res, true, fmt.Errorf("malformed Content-Length %q", val)
				}
				clen = n
			case asciiFold(name, "transfer-encoding"):
				chunked = bytes.EqualFold(val, []byte("chunked"))
			case asciiFold(name, "connection"):
				if bytes.EqualFold(val, []byte("close")) {
					res.closeAfter = true
				}
			case isHopHeaderBytes(name):
			default:
				n0 := len(ps.hdr)
				ps.hdr = append(ps.hdr, name...)
				v0 := len(ps.hdr)
				ps.hdr = append(ps.hdr, val...)
				ps.pairs = append(ps.pairs, hdrPair{n0, v0, v0, len(ps.hdr)})
			}
		}
		if res.status >= 100 && res.status < 200 {
			// Interim response: its header block just ended; the real response
			// follows on the same connection.
			if interim+1 >= maxInterim {
				return res, true, fmt.Errorf("%d interim 1xx responses without a final one", maxInterim)
			}
			continue
		}
		switch {
		case res.status == http.StatusNoContent || res.status == http.StatusNotModified:
			// Bodyless by definition: any Content-Length on a 304 describes
			// the representation, it does not frame bytes on this connection.
			ps.body = ps.body[:0]
		case chunked:
			if err := readChunkedInto(br, ps); err != nil {
				return res, true, err
			}
		case clen >= 0:
			if clen > maxRawRespBytes {
				return res, true, fmt.Errorf("response body %d bytes exceeds the %d relay bound", clen, maxRawRespBytes)
			}
			if cap(ps.body) < clen {
				ps.body = make([]byte, clen)
			}
			ps.body = ps.body[:clen]
			if _, err := io.ReadFull(br, ps.body); err != nil {
				return res, true, err
			}
		default:
			// No framing: the body runs to connection close.
			res.closeAfter = true
			ps.body = ps.body[:0]
			var err error
			if ps.body, err = readToEOF(br, ps.body); err != nil {
				return res, true, err
			}
		}
		res.body = ps.body
		return res, true, nil
	}
}

// readChunkedInto de-chunks a body into ps.body: size line, chunk bytes +
// CRLF, repeat; the zero chunk's trailers run to a blank line. The relayed
// framing becomes an explicit Content-Length — same bytes, settled framing.
func readChunkedInto(br *bufio.Reader, ps *rawScratch) error {
	ps.body = ps.body[:0]
	for {
		line, err := br.ReadSlice('\n')
		if err != nil {
			return err
		}
		n, ok := parseHex(trimLine(line))
		if !ok {
			return fmt.Errorf("malformed chunk size %q", trimLine(line))
		}
		if n == 0 {
			for {
				t, err := br.ReadSlice('\n')
				if err != nil {
					return err
				}
				if len(trimLine(t)) == 0 {
					return nil
				}
			}
		}
		if len(ps.body)+n > maxRawRespBytes {
			return fmt.Errorf("chunked body exceeds the %d relay bound", maxRawRespBytes)
		}
		off := len(ps.body)
		if cap(ps.body) < off+n {
			grown := make([]byte, off+n, (off+n)*2)
			copy(grown, ps.body)
			ps.body = grown
		} else {
			ps.body = ps.body[:off+n]
		}
		if _, err := io.ReadFull(br, ps.body[off:]); err != nil {
			return err
		}
		if _, err := br.Discard(2); err != nil { // chunk-terminating CRLF
			return err
		}
	}
}

// readToEOF drains br into dst, bounded by maxRawRespBytes.
func readToEOF(br *bufio.Reader, dst []byte) ([]byte, error) {
	var chunk [8192]byte
	for {
		n, err := br.Read(chunk[:])
		dst = append(dst, chunk[:n]...)
		if len(dst) > maxRawRespBytes {
			return dst, fmt.Errorf("unframed body exceeds the %d relay bound", maxRawRespBytes)
		}
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// relayRaw writes a parsed raw-hop response to the client: the backend's
// relayable headers, the answering-backend tag, explicit Content-Length
// framing (a de-chunked body is the same bytes under settled framing).
func relayRaw(w http.ResponseWriter, ps *rawScratch, res rawResult, addr string) {
	h := w.Header()
	for _, p := range ps.pairs {
		h.Add(string(ps.hdr[p.n0:p.n1]), string(ps.hdr[p.v0:p.v1]))
	}
	h.Set(fleetBackendHeader, addr)
	h.Set("Content-Length", strconv.Itoa(len(res.body)))
	w.WriteHeader(res.status)
	w.Write(res.body) //nolint:errcheck // client gone; nothing left to do
}

// findHeader returns the first recorded response header matching name
// (which must be in canonical form, as backends send it).
func (ps *rawScratch) findHeader(name string) string {
	for _, p := range ps.pairs {
		if asciiFold(ps.hdr[p.n0:p.n1], name) {
			return string(ps.hdr[p.v0:p.v1])
		}
	}
	return ""
}

// trimLine strips the CRLF (or bare LF) ReadSlice leaves on.
func trimLine(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
		if n > 1 && b[n-2] == '\r' {
			b = b[:n-2]
		}
	}
	return b
}

// asciiFold reports whether b equals name ASCII-case-insensitively; name is
// conventionally lowercase. Allocation-free.
func asciiFold(b []byte, name string) bool {
	if len(b) != len(name) {
		return false
	}
	for i := 0; i < len(name); i++ {
		c, d := b[i], name[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if 'A' <= d && d <= 'Z' {
			d += 'a' - 'A'
		}
		if c != d {
			return false
		}
	}
	return true
}

func isHopHeaderBytes(name []byte) bool {
	for _, h := range hopHeaders {
		if asciiFold(name, h) {
			return true
		}
	}
	return false
}

func parseDec(b []byte) (int, bool) {
	if len(b) == 0 {
		return 0, false
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

func parseHex(b []byte) (int, bool) {
	if len(b) == 0 {
		return 0, false
	}
	n := 0
	for _, c := range b {
		switch {
		case '0' <= c && c <= '9':
			n = n*16 + int(c-'0')
		case 'a' <= c && c <= 'f':
			n = n*16 + int(c-'a') + 10
		case 'A' <= c && c <= 'F':
			n = n*16 + int(c-'A') + 10
		case c == ';': // chunk extension: size already parsed
			return n, true
		default:
			return 0, false
		}
	}
	return n, true
}
