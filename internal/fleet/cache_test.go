package fleet_test

// Router warm path: the front response cache and its discipline. These tests
// pin the cached analogues of the proxied-path contracts — a cache-served
// response is byte-identical to a direct backend answer, the bypass ops never
// touch the cache, the LRU stays bounded under a key storm, a cold storm on
// one fingerprint costs one backend hop, hits show up in the flight
// recorder, and the warm serve stays within its allocation budget.

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sentinel/internal/fleet"
	"sentinel/internal/obs"
	"sentinel/internal/workload"
)

// TestFleetRouterCacheByteIdentity is the warm path's acceptance pin: for
// every workload × simulate/schedule (plus figures), the first proxied
// request answers byte-identically to a direct backend call, and the repeat
// is served by the front cache — tagged "cache" — with exactly the same
// bytes. A textual variant (reordered fields) of a cached request hits under
// the canonical key.
func TestFleetRouterCacheByteIdentity(t *testing.T) {
	_, _, router := startFleet(t, 3, nil)

	check := func(path string, body []byte) {
		t.Helper()
		cold := post(t, router, path, body)
		if cold.backend == "" || cold.backend == "cache" {
			t.Fatalf("%s %s: cold request answered by %q, want a backend", path, body, cold.backend)
		}
		direct := post(t, cold.backend, path, body)
		if direct.status != cold.status || !bytes.Equal(direct.body, cold.body) {
			t.Fatalf("%s %s: proxied (%d, %d bytes) differs from direct (%d, %d bytes)",
				path, body, cold.status, len(cold.body), direct.status, len(direct.body))
		}
		warm := post(t, router, path, body)
		if warm.backend != "cache" {
			t.Fatalf("%s %s: repeat answered by %q, want the front cache", path, body, warm.backend)
		}
		if warm.status != direct.status || warm.ctype != direct.ctype || !bytes.Equal(warm.body, direct.body) {
			t.Fatalf("%s %s: cached response differs from direct:\ncached: %d %q %s\ndirect: %d %q %s",
				path, body, warm.status, warm.ctype, warm.body, direct.status, direct.ctype, direct.body)
		}
	}

	all := workload.All()
	if len(all) != 17 {
		t.Fatalf("workload registry has %d benchmarks, want 17", len(all))
	}
	for _, wl := range all {
		body := []byte(fmt.Sprintf(`{"workload":%q,"model":"sentinel","width":4}`, wl.Name))
		check("/v1/simulate", body)
		check("/v1/schedule", body)
	}

	// GET /v1/figures caches too.
	cold := get(t, router, "/v1/figures?section=fig4")
	warm := get(t, router, "/v1/figures?section=fig4")
	if warm.backend != "cache" || !bytes.Equal(warm.body, cold.body) {
		t.Fatalf("figures repeat answered by %q (%d bytes), want cached copy of the %d-byte cold response",
			warm.backend, len(warm.body), len(cold.body))
	}

	// A textual variant of a cached request — same canonical meaning, different
	// bytes — hits under the canonical key, not just the raw one.
	prime := []byte(`{"workload":"compress","model":"sentinel+stores","width":8}`)
	first := post(t, router, "/v1/simulate", prime)
	variant := post(t, router, "/v1/simulate", []byte(`{"width":8, "model":"sentinel+stores", "workload":"compress"}`))
	if variant.backend != "cache" {
		t.Fatalf("reordered-field variant answered by %q, want the canonical cache tier", variant.backend)
	}
	if !bytes.Equal(variant.body, first.body) {
		t.Fatalf("canonical-tier response differs from the priming one:\nvariant: %s\nprime:   %s",
			variant.body, first.body)
	}
}

// TestFleetCacheBypass pins the discipline that keeps the cache honest:
// bypass ops (full traces, fault injection) and refusals the backend must
// produce itself are never served from the front cache, even when a close
// sibling is already cached.
func TestFleetCacheBypass(t *testing.T) {
	_, rt, router := startFleet(t, 2, nil)

	// full:true repeats cross the hop every time — the trace payload is
	// deliberately uncached fleet-wide.
	full := []byte(`{"workload":"cmp","model":"sentinel","width":4,"full":true}`)
	for i := 0; i < 3; i++ {
		if r := post(t, router, "/v1/simulate", full); r.status != http.StatusOK || r.backend == "cache" {
			t.Fatalf("full request %d: status %d backend %q, want 200 from a backend", i, r.status, r.backend)
		}
	}

	// Fault injection: find a segment the workload actually has (the 422
	// sentinel_exception envelope), then pin that its repeats are never
	// cached — a fault report must come from a live pipeline every time.
	var fault []byte
	for _, seg := range []string{"text", "input", "src", "a", "heap", "cells", "x", "re", "b-data", "tokens"} {
		body := []byte(fmt.Sprintf(`{"workload":"cmp","model":"sentinel","width":8,"fault_segment":%q}`, seg))
		if r := post(t, router, "/v1/simulate", body); r.status == http.StatusUnprocessableEntity {
			fault = body
			break
		}
	}
	if fault == nil {
		t.Fatal("no fault_segment candidate produced a 422 for cmp")
	}
	for i := 0; i < 3; i++ {
		r := post(t, router, "/v1/simulate", fault)
		if r.status != http.StatusUnprocessableEntity || r.backend == "cache" {
			t.Fatalf("fault repeat %d: status %d backend %q, want an uncached 422", i, r.status, r.backend)
		}
		if !strings.Contains(string(r.body), "sentinel_exception") {
			t.Fatalf("fault repeat %d: body %s, want the sentinel_exception envelope", i, r.body)
		}
	}

	// Non-200 envelopes are never memoized: an unknown workload decodes
	// cleanly (so it routes on the canonical key) but must refuse from a
	// backend on every repeat.
	unknown := []byte(`{"workload":"nope","model":"sentinel","width":4}`)
	first := post(t, router, "/v1/simulate", unknown)
	if first.status == http.StatusOK {
		t.Fatalf("unknown workload answered 200: %s", first.body)
	}
	for i := 0; i < 2; i++ {
		r := post(t, router, "/v1/simulate", unknown)
		if r.backend == "cache" {
			t.Fatalf("error-envelope repeat %d served from cache", i)
		}
		if r.status != first.status || !bytes.Equal(r.body, first.body) {
			t.Fatalf("error-envelope repeat %d: %d %s, want the backend's own %d %s", i, r.status, r.body, first.status, first.body)
		}
	}

	// The strict canonical gate: once the plain body is cached, a variant the
	// backend would refuse — an unknown field, an invalid timeout_ms — must
	// still get the backend's 400, never the cached 200.
	plain := []byte(`{"workload":"cmp","model":"sentinel","width":4}`)
	if r := post(t, router, "/v1/simulate", plain); r.status != http.StatusOK {
		t.Fatalf("priming request: status %d", r.status)
	}
	if r := post(t, router, "/v1/simulate", plain); r.backend != "cache" {
		t.Fatalf("prime did not cache (repeat answered by %q)", r.backend)
	}
	if r := post(t, router, "/v1/simulate", []byte(`{"workload":"cmp","model":"sentinel","width":4,"bogus":1}`)); r.status != http.StatusBadRequest || r.backend == "cache" {
		t.Fatalf("unknown-field variant: status %d backend %q, want the backend's 400", r.status, r.backend)
	}
	if r := post(t, router, "/v1/simulate?timeout_ms=abc", plain); r.status != http.StatusBadRequest || r.backend == "cache" {
		t.Fatalf("invalid timeout_ms: status %d backend %q, want the backend's 400", r.status, r.backend)
	}

	// Nothing above may have leaked into the cache beyond the two entries the
	// priming request filled (raw + canonical lane).
	if n := rt.CacheLen(); n != 2 {
		t.Errorf("cache holds %d entries after the bypass storm, want exactly the 2 primed lanes", n)
	}
}

// TestFleetCacheLRUBound: a storm of distinct cacheable keys cannot grow the
// front cache past its configured bound.
func TestFleetCacheLRUBound(t *testing.T) {
	_, rt, router := startFleet(t, 1, func(c *fleet.Config) { c.RespCacheEntries = 8 })
	for _, wl := range workload.All() {
		for _, width := range []int{2, 4, 8} {
			body := []byte(fmt.Sprintf(`{"workload":%q,"model":"sentinel","width":%d}`, wl.Name, width))
			if r := post(t, router, "/v1/simulate", body); r.status != http.StatusOK {
				t.Fatalf("%s width %d: status %d", wl.Name, width, r.status)
			}
		}
	}
	if n := rt.CacheLen(); n < 1 || n > 8 {
		t.Fatalf("cache holds %d entries after 51 distinct keys, want 1..8", n)
	}
	// The bound held, and the most recent key is still warm.
	last := []byte(fmt.Sprintf(`{"workload":%q,"model":"sentinel","width":8}`, workload.All()[16].Name))
	if r := post(t, router, "/v1/simulate", last); r.backend != "cache" {
		t.Fatalf("most-recent key answered by %q, want the front cache", r.backend)
	}
}

// TestFleetCacheSingleflight: a cold storm of identical requests costs the
// backend exactly one hop — the owner fills, every waiter is handed the
// owner's bytes and tagged as a cache answer.
func TestFleetCacheSingleflight(t *testing.T) {
	var backendHits atomic.Int64
	resp := []byte(`{"workload":"cmp","model":"sentinel","width":4,"cycles":123}` + "\n")
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		backendHits.Add(1)
		io.Copy(io.Discard, r.Body)        //nolint:errcheck
		time.Sleep(100 * time.Millisecond) // hold the storm in flight
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(resp) //nolint:errcheck
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stub := &http.Server{Handler: mux}
	go stub.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { stub.Close() })

	rt, err := fleet.New(fleet.Config{
		Backends:      []string{ln.Addr().String()},
		ProbeInterval: -1, // backends start ready; no prober needed
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: rt.Handler()}
	go httpSrv.Serve(rln) //nolint:errcheck
	t.Cleanup(func() { httpSrv.Close() })
	router := rln.Addr().String()

	const n = 8
	body := []byte(`{"workload":"cmp","model":"sentinel","width":4}`)
	results := make([]response, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = post(t, router, "/v1/simulate", body)
		}(i)
	}
	wg.Wait()

	cached := 0
	for i, r := range results {
		if r.status != http.StatusOK || !bytes.Equal(r.body, resp) {
			t.Fatalf("request %d: status %d body %s, want the stub's bytes", i, r.status, r.body)
		}
		if r.backend == "cache" {
			cached++
		}
	}
	if got := backendHits.Load(); got != 1 {
		t.Errorf("cold storm of %d identical requests cost the backend %d hops, want 1 (singleflight)", n, got)
	}
	if cached < n-1 {
		t.Errorf("%d of %d stormers were handed the owner's fill, want >= %d", cached, n, n-1)
	}
}

// TestFleetCacheDebugRequests: sampled warm hits appear in the router's
// flight recorder with the fcache lookup span and the warm marker — the
// observability contract for the new tier.
func TestFleetCacheDebugRequests(t *testing.T) {
	_, _, router := startFleet(t, 1, func(c *fleet.Config) {
		c.Recorder = obs.NewRecorder(obs.RecorderConfig{Entries: 32, Every: 1})
	})
	body := []byte(`{"workload":"wc","model":"sentinel","width":4}`)
	if r := post(t, router, "/v1/simulate", body); r.status != http.StatusOK {
		t.Fatalf("prime: status %d", r.status)
	}
	if r := post(t, router, "/v1/simulate", body); r.backend != "cache" {
		t.Fatalf("repeat answered by %q, want the front cache", r.backend)
	}
	r := get(t, router, "/debug/requests.json")
	if r.status != http.StatusOK {
		t.Fatalf("/debug/requests.json = %d", r.status)
	}
	if !strings.Contains(string(r.body), `"fcache"`) {
		t.Fatalf("recorder snapshot has no fcache span:\n%s", r.body)
	}
	if !strings.Contains(string(r.body), `"warm"`) {
		t.Fatalf("recorder snapshot never marked the raw-tier hit warm:\n%s", r.body)
	}
}

// nullWriter is the alloc test's response sink: a reusable header map and a
// discarding body, so the measurement sees only the router's own work.
type nullWriter struct{ h http.Header }

func (w *nullWriter) Header() http.Header         { return w.h }
func (w *nullWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nullWriter) WriteHeader(int)             {}

// rewindBody is a reusable request body: a bytes.Reader with a no-op Close,
// rewound between serves.
type rewindBody struct{ bytes.Reader }

func (*rewindBody) Close() error { return nil }

// TestFleetWarmServeAllocs pins the warm path's allocation budget: a
// raw-lane cache hit — slurp, fingerprint, lookup, two header sets, one
// Write — must stay within 4 allocations per request (the benchgate bound
// on FleetServeWarm).
func TestFleetWarmServeAllocs(t *testing.T) {
	b := startBackend(t)
	rt, err := fleet.New(fleet.Config{
		Backends:      []string{b.addr},
		ProbeInterval: -1, // no prober, no registry, no recorder: just the serve path
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	h := rt.Handler()

	body := []byte(`{"workload":"cmp","model":"sentinel","width":4}`)
	rb := new(rewindBody)
	rb.Reset(body)
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate", rb)
	req.Header.Set("Content-Type", "application/json")

	serve := func(w http.ResponseWriter) {
		rb.Seek(0, io.SeekStart) //nolint:errcheck
		req.Body = rb
		h.ServeHTTP(w, req)
	}
	// Prime through the real proxied hop, then confirm the repeat is warm.
	rec := httptest.NewRecorder()
	serve(rec)
	if rec.Code != http.StatusOK {
		t.Fatalf("prime: status %d: %s", rec.Code, rec.Body)
	}
	rec = httptest.NewRecorder()
	serve(rec)
	if got := rec.Header().Get("X-Fleet-Backend"); got != "cache" {
		t.Fatalf("repeat answered by %q, want the front cache", got)
	}

	w := &nullWriter{h: make(http.Header)}
	allocs := testing.AllocsPerRun(200, func() { serve(w) })
	if allocs > 4 {
		t.Fatalf("warm cache serve costs %.1f allocs/request, want <= 4", allocs)
	}
}
