package fleet

// The wire-protocol side of the router. A batch frame is the one place the
// router splits a request: each element fingerprints independently, so one
// frame's elements fan out to the backends that own them and results stream
// back to the client in fleet-wide completion order — the protocol's tag
// field exists precisely so order can float free of submission. Tags pass
// through unchanged; each backend echoes the client's own tags, and the
// router interleaves whatever arrives first.
//
// Element payloads and response envelopes are relayed byte-for-byte, same
// as the HTTP path. When the router must answer for an unreachable or
// refusing backend it synthesizes per-element envelopes with the backend
// vocabulary (unavailable/draining/overload/timeout), so a wire client's
// retry logic never learns whether a refusal came from a backend or the
// router in front of it. Overload is never retried — rerouting a refused
// element onto a sibling under fleet-wide load would amplify exactly the
// pressure admission control exists to shed.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"sentinel/internal/obs"
	"sentinel/internal/wire"
)

// opScheduleByte lets the route-key switch compare against the wire opcode
// without a widening conversion at every element.
const opScheduleByte = byte(wire.OpSchedule)

// wireLimits bounds decoded frames on both hops; the zero value selects the
// protocol defaults (1024 elements, 4 MiB payloads), matching the backends.
var wireLimits = wire.Limits{}

// serveWire terminates one sniffed wire connection: a loop of request
// frames, each fanned out and streamed back. The handler owns conn.
func (rt *Router) serveWire(br *bufio.Reader, conn net.Conn) {
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, wire.SniffBufSize)
	for {
		fr, err := wire.ReadRequest(br, wireLimits)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				var pe *wire.ProtocolError
				if errors.As(err, &pe) {
					bw.Write(wire.AppendError(nil, pe.Code, pe.Msg)) //nolint:errcheck
					bw.Flush()                                       //nolint:errcheck
				}
			}
			return
		}
		if !rt.serveWireFrame(bw, fr) {
			bw.Flush() //nolint:errcheck
			return
		}
		if bw.Flush() != nil {
			return
		}
	}
}

// serveWireFrame routes one frame's elements, fans the groups out to their
// backends concurrently, and streams results back as they complete. Returns
// false when the connection must close (draining refusal).
func (rt *Router) serveWireFrame(bw *bufio.Writer, fr *wire.ReqFrame) bool {
	if rt.draining.Load() {
		bw.Write(wire.AppendError(nil, wire.ErrDraining, "server is draining")) //nolint:errcheck
		return false
	}
	rt.inflight.Add(1)
	defer rt.inflight.Add(-1)
	rt.wireFrames.Inc()
	rt.wireElems.Add(int64(len(fr.Elems)))

	rd := rt.rec.Begin("/wire/batch")
	defer rd.Finish(http.StatusOK)

	// Group elements by routed backend. Map iteration order below is
	// irrelevant — completion order is the contract, not submission order.
	rd.Start(obs.StageRoute, obs.ArgNone)
	groups := make(map[int][]wire.ReqElem)
	spilledAny := false
	for i, e := range fr.Elems {
		k := wireRouteKey(e.Op, e.Payload)
		if i == 0 {
			rd.SetFingerprint(k[:8])
		}
		idx, spilled := rt.route(k)
		if idx >= 0 {
			rt.countRoute(idx, spilled)
		}
		if spilled {
			spilledAny = true
		}
		groups[idx] = append(groups[idx], e)
	}
	rd.End()
	arg := obs.ArgHashed
	if spilledAny {
		arg = obs.ArgSpilled
	}

	// The response header commits to the element count up front; every
	// element is then answered exactly once — by a backend or by synthesis.
	bw.Write(wire.AppendResponseHeader(nil, len(fr.Elems))) //nolint:errcheck

	rd.Start(obs.StageProxy, arg)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for idx, elems := range groups {
		if idx < 0 {
			rt.proxyErrs.Inc()
			rt.synthAll(&mu, bw, elems, http.StatusServiceUnavailable,
				"unavailable", "fleet: no ready backend")
			continue
		}
		wg.Add(1)
		go func(idx int, elems []wire.ReqElem) {
			defer wg.Done()
			rt.wireExchange(&mu, bw, idx, fr.TimeoutMS, elems)
		}(idx, elems)
	}
	wg.Wait()
	rd.End()
	return true
}

// wireExchange delivers one backend's element group, retrying unanswered
// elements once on a sibling when the backend fails or drains mid-exchange.
func (rt *Router) wireExchange(mu *sync.Mutex, bw *bufio.Writer, idx int, timeoutMS uint32, elems []wire.ReqElem) {
	mayRetry := true
	for {
		b := rt.backends[idx]
		b.inflight.Add(1)
		pending, retriable, err := rt.wireAttempt(mu, bw, b, timeoutMS, elems)
		b.inflight.Add(-1)
		if err == nil {
			return
		}
		if retriable && mayRetry {
			mayRetry = false
			if next := rt.pickAny(idx); next >= 0 {
				rt.retries.Inc()
				idx, elems = next, pending
				continue
			}
		}
		rt.proxyErrs.Inc()
		var pe *wire.ProtocolError
		if errors.As(err, &pe) {
			rt.synthRefusal(mu, bw, pending, pe)
		} else {
			rt.synthAll(mu, bw, pending, http.StatusServiceUnavailable,
				"unavailable", "fleet: backend "+b.addr+" unreachable")
		}
		return
	}
}

// pickAny returns the next round-robin eligible backend excluding skip, or
// -1 when none is. The wire retry target: any backend can serve any
// element, so unlike the spill pick a lone survivor is acceptable.
func (rt *Router) pickAny(skip int) int {
	n := len(rt.backends)
	start := int(rt.rr.Add(1) % uint64(n))
	for i := 0; i < n; i++ {
		j := (start + i) % n
		if j != skip && rt.eligible(j) {
			return j
		}
	}
	return -1
}

// exchangeTimeout bounds one backend exchange: the router's ceiling, or the
// client's batch deadline when tighter.
func (rt *Router) exchangeTimeout(timeoutMS uint32) time.Duration {
	d := rt.cfg.RequestTimeout
	if timeoutMS > 0 {
		if t := time.Duration(timeoutMS) * time.Millisecond; t < d {
			d = t
		}
	}
	return d
}

// wireAttempt runs one exchange against b. On failure it returns the
// elements the client has not yet received an answer for, plus whether a
// sibling retry is safe. A stale pooled connection (closed by the backend
// under the pool's feet) redials transparently as long as nothing has been
// streamed yet.
func (rt *Router) wireAttempt(mu *sync.Mutex, bw *bufio.Writer, b *backend, timeoutMS uint32, elems []wire.ReqElem) (pending []wire.ReqElem, retriable bool, err error) {
	for {
		wc, pooled, err := b.getWire(rt.cfg.DialTimeout)
		if err != nil {
			rt.noteDialFailure(b)
			return elems, true, err
		}
		wc.conn.SetDeadline(time.Now().Add(rt.exchangeTimeout(timeoutMS))) //nolint:errcheck
		frame := wire.AppendRequest(nil, &wire.ReqFrame{TimeoutMS: timeoutMS, Elems: elems})
		if _, werr := wc.conn.Write(frame); werr != nil {
			wc.conn.Close()
			if pooled {
				continue
			}
			return elems, true, werr
		}
		count, herr := wire.ReadResponseHeader(wc.br, wireLimits)
		if herr != nil {
			wc.conn.Close()
			var pe *wire.ProtocolError
			if errors.As(herr, &pe) {
				if pe.Code == wire.ErrDraining {
					// The drain-aware removal's reactive edge: the probe
					// window has not elapsed yet, but the backend told us.
					if !b.draining.Swap(true) {
						rt.logf("fleet: backend %s draining; rerouting new keys", b.addr)
					}
					return elems, true, herr
				}
				// Overload, timeout, malformed: the backend answered; the
				// refusal is synthesized per element, never retried.
				return elems, false, herr
			}
			if pooled {
				continue
			}
			return elems, true, herr
		}
		if count != len(elems) {
			wc.conn.Close()
			return elems, true, fmt.Errorf("fleet: backend %s answered %d of %d elements", b.addr, count, len(elems))
		}
		return rt.wireStream(mu, bw, b, wc, elems)
	}
}

// wireStream relays one exchange's response elements to the client as they
// arrive, matching them off against the outstanding tag multiset. On a
// mid-stream failure the unanswered elements come back as pending.
func (rt *Router) wireStream(mu *sync.Mutex, bw *bufio.Writer, b *backend, wc *wireConn, elems []wire.ReqElem) (pending []wire.ReqElem, retriable bool, err error) {
	// Tag → pending element indices. The protocol does not require unique
	// tags within a frame; duplicates pop in order (their payloads may
	// differ, but the client chose to make their answers indistinguishable).
	pend := make(map[uint32][]int, len(elems))
	for i, e := range elems {
		pend[e.Tag] = append(pend[e.Tag], i)
	}
	remaining := len(elems)
	var hdr, payload []byte
	for remaining > 0 {
		tag, status, plen, rerr := wire.ReadElemHeader(wc.br, wireLimits)
		if rerr != nil {
			err = rerr
			break
		}
		q := pend[tag]
		if len(q) == 0 {
			err = fmt.Errorf("fleet: backend %s echoed unexpected tag %d", b.addr, tag)
			break
		}
		pend[tag] = q[1:]
		remaining--
		if cap(payload) < plen {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, rerr := io.ReadFull(wc.br, payload); rerr != nil {
			err = rerr
			break
		}
		hdr = wire.AppendElemHeader(hdr[:0], tag, status, plen)
		mu.Lock()
		bw.Write(hdr)     //nolint:errcheck
		bw.Write(payload) //nolint:errcheck
		ferr := bw.Flush()
		mu.Unlock()
		if ferr != nil {
			// The client went away; nothing left to answer for.
			wc.conn.Close()
			return nil, false, nil
		}
	}
	if err != nil {
		wc.conn.Close()
		for _, idxs := range pend {
			for _, i := range idxs {
				pending = append(pending, elems[i])
			}
		}
		return pending, true, err
	}
	b.putWire(wc)
	return nil, false, nil
}

// synthRefusal maps a backend's error frame onto per-element envelopes with
// the matching HTTP vocabulary, so framed and unframed clients see the same
// refusal shape.
func (rt *Router) synthRefusal(mu *sync.Mutex, bw *bufio.Writer, elems []wire.ReqElem, pe *wire.ProtocolError) {
	status, kind := http.StatusInternalServerError, "internal"
	switch pe.Code {
	case wire.ErrOverload:
		status, kind = http.StatusTooManyRequests, "overload"
	case wire.ErrDraining:
		status, kind = http.StatusServiceUnavailable, "draining"
	case wire.ErrTimeout:
		status, kind = http.StatusGatewayTimeout, "timeout"
	}
	rt.synthAll(mu, bw, elems, status, kind, pe.Msg)
}

// synthAll answers every element in elems with one synthesized envelope.
func (rt *Router) synthAll(mu *sync.Mutex, bw *bufio.Writer, elems []wire.ReqElem, status int, kind, msg string) {
	body := envelopeBody(kind, msg)
	var hdr []byte
	mu.Lock()
	defer mu.Unlock()
	for _, e := range elems {
		hdr = wire.AppendElemHeader(hdr[:0], e.Tag, status, len(body))
		bw.Write(hdr)  //nolint:errcheck
		bw.Write(body) //nolint:errcheck
	}
	bw.Flush() //nolint:errcheck
}
