package fleet_test

// The warm-path benchmarks the perf work is gated on (scripts/benchgate.py
// reads their mirrors out of BENCH_serve.json):
//
//   FleetServeWarm — a raw-lane front-cache hit served by the router with
//   no backend traffic: slurp, fingerprint, one shard lookup, one Write.
//   Gated at <= 4 allocs/op.
//
//   FleetProxyMiss — the same request with caching disabled, so every serve
//   crosses the raw pooled-connection HTTP/1.1 hop to a warm backend; this
//   is the floor the old net/http hop was ~3.5x above.
//
// cmd/paperfigs -benchjson runs the same two loops to regenerate the JSON.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"sentinel/internal/fleet"
)

// benchFleetHandler builds a router over one real backend and returns its
// handler plus a re-servable request: rewind the body, serve, repeat.
func benchFleetHandler(b *testing.B, cacheEntries int) (http.Handler, *http.Request, *rewindBody) {
	b.Helper()
	bk := startBackend(b)
	rt, err := fleet.New(fleet.Config{
		Backends:         []string{bk.addr},
		ProbeInterval:    -1, // no prober: health is static for the bench
		RespCacheEntries: cacheEntries,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Close)

	body := []byte(`{"workload":"cmp","model":"sentinel+stores","width":8}`)
	rb := new(rewindBody)
	rb.Reset(body)
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate", rb)
	req.Header.Set("Content-Type", "application/json")

	// Prime: the first serve crosses the hop (filling the front cache when
	// enabled, and the backend's own respcache either way).
	rec := httptest.NewRecorder()
	h := rt.Handler()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("prime: status %d: %s", rec.Code, rec.Body)
	}
	return h, req, rb
}

func BenchmarkFleetServeWarm(b *testing.B) {
	h, req, rb := benchFleetHandler(b, 0)
	rec := httptest.NewRecorder()
	rb.Seek(0, io.SeekStart) //nolint:errcheck
	req.Body = rb
	h.ServeHTTP(rec, req)
	if rec.Header().Get("X-Fleet-Backend") != "cache" {
		b.Fatalf("warm repeat answered by %q, want the front cache", rec.Header().Get("X-Fleet-Backend"))
	}
	w := &nullWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.Seek(0, io.SeekStart) //nolint:errcheck
		req.Body = rb
		h.ServeHTTP(w, req)
	}
}

func BenchmarkFleetProxyMiss(b *testing.B) {
	h, req, rb := benchFleetHandler(b, -1)
	w := &nullWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(w.h)               // the relay Adds headers; a reused map must not accumulate
		rb.Seek(0, io.SeekStart) //nolint:errcheck
		req.Body = rb
		h.ServeHTTP(w, req)
	}
}
