package fleet_test

// Raw-hop edge contracts against real backends: a client that asks for the
// 100-continue handshake must not derail the pooled raw hop (the regression:
// a relayed Expect made Go backends emit an interim 100, which the parser
// took for an unframed final response and blocked on the keep-alive
// connection until the request deadline), and ResetCache actually drops the
// front cache so post-reset requests cross the hop again.

import (
	"bytes"
	"net/http"
	"testing"
	"time"

	"sentinel/internal/fleet"
)

// TestFleetRawHopExpectContinue: a POST carrying Expect: 100-continue (what
// curl sends by default for bodies over 1KB) is answered promptly and
// byte-identically to a direct backend call. The short RequestTimeout makes
// a regression fail as a quick 503 instead of a half-minute hang.
func TestFleetRawHopExpectContinue(t *testing.T) {
	_, _, router := startFleet(t, 2, func(cfg *fleet.Config) {
		cfg.RequestTimeout = 2 * time.Second
	})

	body := []byte(`{"workload":"cmp","model":"sentinel","width":4}`)
	req, err := http.NewRequest(http.MethodPost, "http://"+router+"/v1/simulate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Expect", "100-continue")

	client := &http.Client{Timeout: 15 * time.Second}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("POST with Expect: 100-continue: %v", err)
	}
	defer resp.Body.Close()
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after %v, want 200: %s", resp.StatusCode, time.Since(start), got.Bytes())
	}
	if b := resp.Header.Get("X-Fleet-Backend"); b == "" || b == "cache" {
		t.Fatalf("answered by %q, want a backend", b)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("request took %v; an Expect header must not stall the raw hop", elapsed)
	}

	direct := post(t, resp.Header.Get("X-Fleet-Backend"), "/v1/simulate", body)
	if direct.status != http.StatusOK || !bytes.Equal(direct.body, got.Bytes()) {
		t.Fatalf("proxied-with-Expect differs from direct:\nproxied: %s\ndirect:  %s", got.Bytes(), direct.body)
	}
}

// TestFleetResetCache: the documented operator hook — after ResetCache a
// previously warm request crosses the hop again instead of serving
// pre-reset bytes, then re-warms as usual.
func TestFleetResetCache(t *testing.T) {
	_, rt, router := startFleet(t, 2, nil)
	body := []byte(`{"workload":"cmp","model":"sentinel","width":4}`)

	cold := post(t, router, "/v1/simulate", body)
	if cold.status != http.StatusOK || cold.backend == "cache" {
		t.Fatalf("cold: status %d backend %q, want 200 from a backend", cold.status, cold.backend)
	}
	if warm := post(t, router, "/v1/simulate", body); warm.backend != "cache" {
		t.Fatalf("warm repeat answered by %q, want the front cache", warm.backend)
	}

	rt.ResetCache()
	refill := post(t, router, "/v1/simulate", body)
	if refill.backend == "cache" || refill.backend == "" {
		t.Fatalf("post-reset request answered by %q, want a backend (cache must be empty)", refill.backend)
	}
	if !bytes.Equal(refill.body, cold.body) {
		t.Fatal("post-reset backend answer differs from the original")
	}
	if rewarm := post(t, router, "/v1/simulate", body); rewarm.backend != "cache" {
		t.Fatalf("re-warmed repeat answered by %q, want the front cache", rewarm.backend)
	}
}
