package fleet

import (
	"testing"

	"sentinel/internal/eval"
	"sentinel/internal/wire"
)

// TestHTTPRouteKeyCanonical: textual variants of one logical request —
// field order, whitespace, defaulted width, model aliases — hash to the
// same key, and actually-different requests do not. This is the property
// that makes the fleet's caches converge instead of splitting per spelling.
func TestHTTPRouteKeyCanonical(t *testing.T) {
	base := httpRouteKey("POST", "/v1/simulate", "",
		[]byte(`{"workload":"cmp","model":"sentinel+stores","width":8}`))
	for _, variant := range []string{
		`{"width":8,"model":"sentinel+stores","workload":"cmp"}`,        // field order
		` { "workload" : "cmp" , "model":"sentinel+stores","width":8 }`, // whitespace
		`{"workload":"cmp","model":"sentinel+stores"}`,                  // width defaults to 8
	} {
		if got := httpRouteKey("POST", "/v1/simulate", "", []byte(variant)); got != base {
			t.Errorf("variant %s hashed differently from the canonical spelling", variant)
		}
	}
	for _, different := range []string{
		`{"workload":"wc","model":"sentinel+stores","width":8}`,  // other workload
		`{"workload":"cmp","model":"sentinel","width":8}`,        // other model
		`{"workload":"cmp","model":"sentinel+stores","width":4}`, // other width
	} {
		if got := httpRouteKey("POST", "/v1/simulate", "", []byte(different)); got == base {
			t.Errorf("distinct request %s collided with the base key", different)
		}
	}
	// Same body, different endpoint: schedule and simulate must not collide.
	if got := httpRouteKey("POST", "/v1/schedule", "",
		[]byte(`{"workload":"cmp","model":"sentinel+stores","width":8}`)); got == base {
		t.Error("schedule and simulate keys collided for the same body")
	}
}

// TestHTTPRouteKeyRawFallback: undecodable bodies still route
// deterministically (same bytes, same backend) without colliding with
// canonical keys.
func TestHTTPRouteKeyRawFallback(t *testing.T) {
	bad := []byte(`{"workload":`)
	k1 := httpRouteKey("POST", "/v1/simulate", "", bad)
	k2 := httpRouteKey("POST", "/v1/simulate", "", bad)
	if k1 != k2 {
		t.Fatal("raw fallback is not deterministic")
	}
	if k1 == httpRouteKey("POST", "/v1/simulate", "", []byte(`{"workload":"x`)) {
		t.Fatal("distinct malformed bodies collided")
	}
}

// TestWireRouteKeyMatchesHTTPTwin: a wire element routes exactly like the
// single POST carrying the same payload, decodable or not — so a request
// lands on one backend no matter how it arrives.
func TestWireRouteKeyMatchesHTTPTwin(t *testing.T) {
	good := []byte(`{"workload":"grep","model":"sentinel","width":4}`)
	bad := []byte(`not json`)
	cases := []struct {
		op   byte
		path string
		body []byte
	}{
		{byte(wire.OpSimulate), "/v1/simulate", good},
		{byte(wire.OpSchedule), "/v1/schedule", good},
		{byte(wire.OpSimulate), "/v1/simulate", bad},
		{byte(wire.OpSchedule), "/v1/schedule", bad},
	}
	for _, tc := range cases {
		if wireRouteKey(tc.op, tc.body) != httpRouteKey("POST", tc.path, "", tc.body) {
			t.Errorf("wire op %d and POST %s disagree on %q", tc.op, tc.path, tc.body)
		}
	}
	if wireRouteKey(byte(wire.OpSimulate), good) == wireRouteKey(byte(wire.OpSchedule), good) {
		t.Error("simulate and schedule wire keys collided for the same payload")
	}
}

// TestFiguresRouteKeyVocabulary: the router's section vocabulary mirrors
// the endpoint's (eval.SectionByName) name for name, so every request the
// backend can decode routes canonically and everything else falls back to
// raw — never a silent split between router and backend interpretation.
func TestFiguresRouteKeyVocabulary(t *testing.T) {
	names := []string{"fig4", "fig5", "table3", "overhead", "recovery",
		"buffer", "faults", "sharing", "boosting", "boost", "prediction",
		"all", "bogus", "figures", ""}
	for _, name := range names {
		var s eval.Sections
		backendKnows := s.SectionByName(name)
		_, routerKnows := figuresRouteKey("section=" + name)
		if backendKnows != routerKnows {
			t.Errorf("section %q: backend knows=%v, router knows=%v — vocabulary skew", name, backendKnows, routerKnows)
		}
	}
	// Alias and default equivalences the endpoint resolves must collapse to
	// one key: boosting == boost, no-section == all.
	boosting, ok1 := figuresRouteKey("section=boosting")
	boost, ok2 := figuresRouteKey("section=boost")
	if !ok1 || !ok2 || boosting != boost {
		t.Error("boosting/boost alias did not collapse to one key")
	}
	def, ok1 := figuresRouteKey("")
	all, ok2 := figuresRouteKey("section=all")
	if !ok1 || !ok2 || def != all {
		t.Error("defaulted section set did not collapse onto 'all'")
	}
	if fig4, _ := figuresRouteKey("section=fig4"); fig4 == all {
		t.Error("fig4 collided with all")
	}
	// Repeated sections are a set, not a list.
	a, _ := figuresRouteKey("section=fig4&section=fig5")
	b, _ := figuresRouteKey("section=fig5&section=fig4")
	if a != b {
		t.Error("section order changed the key")
	}
}
