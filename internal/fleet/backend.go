package fleet

// Per-backend state: the pooled HTTP client for the proxied hop, the pooled
// wire-protocol connections, and the health view the eligibility predicate
// reads on every routing decision.
//
// Health is two signals, updated two ways. The prober polls /readyz: 200
// means ready, a 503 "draining" body means the backend is shutting down
// gracefully (alive — it finishes what it holds — but must receive no new
// keys), anything else means not ready. The proxy path adds a reactive
// edge: a connect failure marks the backend not-ready immediately, without
// waiting out a probe interval, so the retry-with-reroute and every
// subsequent routing decision steer around it at once; the prober's next
// 200 brings it back. Backends start optimistically ready so the router
// serves before the first probe completes.

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"sentinel/internal/obs"
	"sentinel/internal/wire"
)

// backend is one sentineld process behind the router.
type backend struct {
	addr string // host:port, as configured (ring placement hashes this)
	base string // "http://" + addr

	client   *http.Client   // probe + streaming-hop client (net/http)
	wirePool chan *wireConn // idle wire-protocol connections
	httpPool chan *wireConn // idle raw HTTP/1.1 connections (cache-miss hop)

	ready    atomic.Bool  // last probe (or reactive edge) verdict
	draining atomic.Bool  // /readyz said "draining"
	failures atomic.Int32 // consecutive failed probes
	inflight atomic.Int64 // proxied requests + wire exchanges in flight

	// Per-backend routing counters. Standalone by default ( /fleet/status
	// reads them); a configured registry replaces them with its own so they
	// appear in /metrics too.
	hashed  *obs.Counter // requests routed here as ring owner
	spilled *obs.Counter // hot-key requests spilled here
}

// newBackend builds the backend handle and its connection pools.
func newBackend(addr string, dialTimeout time.Duration, wirePoolSize, httpPoolSize int) *backend {
	b := &backend{
		addr:     addr,
		base:     "http://" + addr,
		wirePool: make(chan *wireConn, wirePoolSize),
		httpPool: make(chan *wireConn, httpPoolSize),
		hashed:   new(obs.Counter),
		spilled:  new(obs.Counter),
	}
	dialer := &net.Dialer{Timeout: dialTimeout, KeepAlive: 30 * time.Second}
	b.client = &http.Client{
		Transport: &http.Transport{
			DialContext:         dialer.DialContext,
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		},
	}
	b.ready.Store(true)
	return b
}

// eligible reports whether new keys may route here.
func (b *backend) eligible() bool { return b.ready.Load() && !b.draining.Load() }

// close tears down all three pools.
func (b *backend) close() {
	b.client.CloseIdleConnections()
	for _, pool := range []chan *wireConn{b.wirePool, b.httpPool} {
	drain:
		for {
			select {
			case wc := <-pool:
				wc.conn.Close()
			default:
				break drain
			}
		}
	}
}

// wireConn is one pooled wire-protocol connection to a backend. An exchange
// owns the connection exclusively (the protocol is sequential per
// connection); a connection that sees any transport or framing error is
// closed instead of returned.
type wireConn struct {
	conn net.Conn
	br   *bufio.Reader
}

// getWire returns an idle pooled connection or dials a fresh one. pooled
// tells the caller whether a failure might just be a stale keep-alive (the
// backend closed it under the pool's feet) rather than a dead backend.
func (b *backend) getWire(dialTimeout time.Duration) (wc *wireConn, pooled bool, err error) {
	select {
	case wc := <-b.wirePool:
		return wc, true, nil
	default:
	}
	conn, err := net.DialTimeout("tcp", b.addr, dialTimeout)
	if err != nil {
		return nil, false, err
	}
	return &wireConn{conn: conn, br: bufio.NewReaderSize(conn, wire.SniffBufSize)}, false, nil
}

// putWire returns a healthy connection to the pool (closing it when full).
func (b *backend) putWire(wc *wireConn) {
	wc.conn.SetDeadline(time.Time{}) //nolint:errcheck
	select {
	case b.wirePool <- wc:
	default:
		wc.conn.Close()
	}
}

// getHTTP returns an idle raw HTTP/1.1 connection or dials a fresh one —
// the cache-miss hop's analogue of getWire, with the same pooled-vs-fresh
// distinction driving stale-keep-alive retries.
func (b *backend) getHTTP(dialTimeout time.Duration) (hc *wireConn, pooled bool, err error) {
	select {
	case hc := <-b.httpPool:
		return hc, true, nil
	default:
	}
	conn, err := net.DialTimeout("tcp", b.addr, dialTimeout)
	if err != nil {
		return nil, false, err
	}
	return &wireConn{conn: conn, br: bufio.NewReaderSize(conn, 8<<10)}, false, nil
}

// putHTTP returns a healthy raw connection to the pool (closing when full).
func (b *backend) putHTTP(hc *wireConn) {
	hc.conn.SetDeadline(time.Time{}) //nolint:errcheck
	select {
	case b.httpPool <- hc:
	default:
		hc.conn.Close()
	}
}

// probeLoop polls every backend until stop closes. One goroutine per
// router; backends are probed concurrently within a round so one hung
// backend cannot delay the verdict on the others.
func (rt *Router) probeLoop() {
	defer rt.probeWG.Done()
	tick := time.NewTicker(rt.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-rt.stopProbe:
			return
		case <-tick.C:
			done := make(chan struct{}, len(rt.backends))
			for _, b := range rt.backends {
				go func(b *backend) { rt.probe(b); done <- struct{}{} }(b)
			}
			for range rt.backends {
				<-done
			}
		}
	}
}

// probe polls one backend's /readyz and folds the verdict into its health
// state, logging transitions.
func (rt *Router) probe(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/readyz", nil)
	if err != nil {
		return
	}
	resp, err := b.client.Do(req)
	if err != nil {
		if int(b.failures.Add(1)) >= rt.cfg.FailureThreshold && b.ready.Swap(false) {
			rt.logf("fleet: backend %s unhealthy (%d consecutive probe failures): %v",
				b.addr, b.failures.Load(), err)
		}
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, drainSniffBytes))
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		b.failures.Store(0)
		wasDraining := b.draining.Swap(false)
		if !b.ready.Swap(true) || wasDraining {
			rt.logf("fleet: backend %s ready", b.addr)
		}
	case isDrainingBody(body):
		// Alive but going away: stop sending new keys, let it finish.
		b.failures.Store(0)
		if !b.draining.Swap(true) {
			rt.logf("fleet: backend %s draining; rerouting new keys", b.addr)
		}
	default:
		// Warming or otherwise not ready: ineligible immediately (no
		// failure threshold — the backend itself said not-ready).
		b.failures.Store(0)
		if b.ready.Swap(false) {
			rt.logf("fleet: backend %s not ready (%d %s)", b.addr, resp.StatusCode,
				bytes.TrimSpace(body))
		}
	}
}

// drainSniffBytes bounds how much of a refusal body the draining sniff
// reads — comfortably past any envelope the backends synthesize, so the
// marker cannot be truncated away (the old 64-byte limit could miss it in
// a padded envelope).
const drainSniffBytes = 4096

// isDrainingBody reports whether a /readyz or refusal body marks a
// draining backend: the plain-text "draining" readiness body, or the
// quoted "draining" kind wherever it sits inside a JSON envelope — not
// just in the first 64 bytes.
func isDrainingBody(body []byte) bool {
	return bytes.HasPrefix(bytes.TrimSpace(body), []byte("draining")) ||
		bytes.Contains(body, []byte(`"draining"`))
}

// noteDialFailure is the reactive unhealthy edge: a proxied hop that could
// not connect marks the backend down now, so the current request's retry
// and every following routing decision avoid it until a probe succeeds.
func (rt *Router) noteDialFailure(b *backend) {
	b.failures.Store(int32(rt.cfg.FailureThreshold))
	if b.ready.Swap(false) {
		rt.logf("fleet: backend %s unreachable; rerouting", b.addr)
	}
}
