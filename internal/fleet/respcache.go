package fleet

// The router's front response cache: the same two-tier warm path the
// backends serve from (internal/server/respcache.go — the LRU itself is
// shared code), applied before routing. A warm repeat is served with one
// w.Write before the ring is consulted, a timeout context exists, or a
// byte crosses the proxied hop; `X-Fleet-Backend: cache` marks the hit so
// affinity tests (and sentinelload's summary) can tell it from a backend
// answer.
//
// Keying discipline. The raw-request key (exact path+query+body bytes) is
// always safe: it can only ever hit an entry filled by a byte-identical
// request. The canonical key is stricter here than the routing key: routing
// may be lax (a misrouted request is merely slower), but serving a cached
// 200 for a request the backend would have refused breaks the byte-identity
// contract. canonCacheKey therefore re-decodes with the backends' own
// strictness (DisallowUnknownFields over the shared request structs, the
// wrapper's timeout_ms validation) and applies the backends' bypass rules:
// `full` and `fault_segment` requests are never probed or filled, only 200
// envelopes are stored. A request that fails the strict gate still routes
// on the lax key — it just always takes the proxied hop, and its non-200
// answer is never memoized.
//
// Fill is singleflighted per canonical key: a cold storm on one
// fingerprint costs one backend hop; waiters are handed the owner's bytes.
// An owner whose hop fails or proves uncacheable resolves "no result" and
// the waiters fall through to their own hop — a failed fill is never
// shared, echoing the eval flight's poisoning rule.
//
// Lifetime. The front cache assumes backend artifacts are immutable for the
// router's lifetime: the backends drop their own response caches on
// Runner.OnReset, but no reset signal crosses the fleet. An operator who
// resets or reloads backend state at runtime must call Router.ResetCache
// (or restart the router) so pre-reset bytes cannot keep being served.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"sentinel/internal/fingerprint"
	"sentinel/internal/server"
)

// cacheBackendName is the X-Fleet-Backend value marking a front-cache hit.
const cacheBackendName = "cache"

// Tier labels for the recorder (mirroring the backends' vocabulary).
const (
	tierRaw   = "raw"
	tierCanon = "canon"
)

// serveCached writes the cached response under k, tagging the hit and
// echoing a client request ID exactly as a backend would. One lookup, two
// header sets, one Write — the entire warm path after fingerprinting.
func (rt *Router) serveCached(w http.ResponseWriter, k fingerprint.Key, clientID string) bool {
	body, ctype, ok := rt.resp.Get(k)
	if !ok {
		return false
	}
	h := w.Header()
	h.Set("Content-Type", ctype)
	h.Set(fleetBackendHeader, cacheBackendName)
	if clientID != "" {
		h.Set(requestIDHeader, clientID)
	}
	w.Write(body) //nolint:errcheck // client gone; nothing left to do
	return true
}

// cacheProbeable reports whether a request may ever consult or fill the
// front cache: the three deterministic API endpoints, minus the sniffed
// bypass ops. Everything else — /v1/batch (streamed), unknown paths,
// fault/full simulates — always crosses the hop.
func cacheProbeable(method, path string, body []byte) bool {
	switch path {
	case "/v1/simulate":
		return method == http.MethodPost && !server.CacheOptOut(body)
	case "/v1/schedule":
		return method == http.MethodPost
	case "/v1/figures":
		return method == http.MethodGet
	}
	return false
}

// canonCacheKey returns the canonical cache key for a request whose
// response the backend would compute from that fingerprint alone. ok is
// false whenever the backend might answer something the fingerprint does
// not determine — an undecodable or unknown-field body, an unresolvable
// machine, a bypass op, an invalid timeout_ms — so a cached 200 can never
// mask a refusal the direct path would have produced. When ok, the key
// equals the routing key (both reduce to the shared fingerprint encoders).
func canonCacheKey(method, path, rawQuery string, body []byte) (fingerprint.Key, bool) {
	if !validTimeoutQuery(rawQuery) {
		return fingerprint.Key{}, false
	}
	switch path {
	case "/v1/simulate":
		if method != http.MethodPost {
			return fingerprint.Key{}, false
		}
		var req server.SimulateRequest
		if !strictDecode(body, &req) || req.Full || req.FaultSegment != "" {
			return fingerprint.Key{}, false
		}
		return simulateRouteKey(body)
	case "/v1/schedule":
		if method != http.MethodPost {
			return fingerprint.Key{}, false
		}
		var req server.ScheduleRequest
		if !strictDecode(body, &req) {
			return fingerprint.Key{}, false
		}
		return scheduleRouteKey(body)
	case "/v1/figures":
		if method != http.MethodGet {
			return fingerprint.Key{}, false
		}
		return figuresRouteKey(rawQuery)
	}
	return fingerprint.Key{}, false
}

// strictDecode mirrors the backends' decodeBody strictness: unknown fields
// refuse, so the canonical key is only trusted for bodies the backend will
// accept.
func strictDecode(body []byte, into any) bool {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	return dec.Decode(into) == nil
}

// validTimeoutQuery mirrors the backends' v1-wrapper timeout_ms check: a
// present-but-invalid value is a 400 on the direct path, so it must never
// be served from cache. Only plain positive decimal values pass: the
// backend's queryValue unescapes '%' and '+' forms before its Atoi, so a
// raw value like "+5" (which Atoi alone would accept) or "%35" (which the
// backend would accept) must not be trusted here — an escaped value simply
// forgoes the cache and takes the hop. A valid deadline is cacheable — a
// warm backend serves its own cached bytes without consulting the deadline
// either.
func validTimeoutQuery(rawQuery string) bool {
	for len(rawQuery) > 0 {
		part := rawQuery
		if i := strings.IndexByte(rawQuery, '&'); i >= 0 {
			part, rawQuery = rawQuery[:i], rawQuery[i+1:]
		} else {
			rawQuery = ""
		}
		const key = "timeout_ms"
		if len(part) > len(key)+1 && part[:len(key)] == key && part[len(key)] == '=' {
			v := part[len(key)+1:]
			for i := 0; i < len(v); i++ {
				if v[i] < '0' || v[i] > '9' {
					return false
				}
			}
			ms, err := strconv.Atoi(v)
			if err != nil || ms < 1 {
				return false
			}
		}
	}
	return true
}

// fillCall is one in-flight cache fill: waiters block on done; on ok the
// owner's immutable response copy is shared.
type fillCall struct {
	done     chan struct{}
	body     []byte
	ctype    string
	ok       bool
	resolved bool
}

// fillGroup is the per-canonical-key singleflight for cache fills.
type fillGroup struct {
	mu sync.Mutex
	m  map[fingerprint.Key]*fillCall
}

func newFillGroup() *fillGroup {
	return &fillGroup{m: make(map[fingerprint.Key]*fillCall)}
}

// begin registers interest in filling k. The first caller per key becomes
// the owner and must resolve exactly once (the proxy path defers an
// empty-handed resolve so error returns cannot strand waiters).
func (g *fillGroup) begin(k fingerprint.Key) (c *fillCall, owner bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[k]; ok {
		return c, false
	}
	c = &fillCall{done: make(chan struct{})}
	g.m[k] = c
	return c, true
}

// resolve publishes the owner's outcome and unregisters the call. body must
// be a copy nothing else writes to. Idempotent: the first resolve wins, so
// the success path's explicit resolve and the deferred abandon compose.
func (g *fillGroup) resolve(k fingerprint.Key, c *fillCall, body []byte, ctype string, ok bool) {
	g.mu.Lock()
	if g.m[k] == c {
		delete(g.m, k)
	}
	already := c.resolved
	c.resolved = true
	g.mu.Unlock()
	if already {
		return
	}
	c.body, c.ctype, c.ok = body, ctype, ok
	close(c.done)
}

// fpScratch pools the raw-fingerprint accumulation buffer, mirroring the
// backends' own warm path (fingerprint.RawRequestInto): the warm hit must
// not pay an allocation just to compute its key.
var fpScratchPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// rawRequestKey fingerprints a request's exact bytes over pooled scratch.
func rawRequestKey(path, rawQuery string, body []byte) fingerprint.Key {
	sp := fpScratchPool.Get().(*[]byte)
	k, b := fingerprint.RawRequestInto(*sp, path, rawQuery, body)
	if cap(b) <= 1<<20 {
		*sp = b
		fpScratchPool.Put(sp)
	}
	return k
}

// bodyBuf is the pooled request-body scratch for the proxy path: the
// accumulation buffer and the limit reader bounding it, recycled per
// request so the per-proxy io.ReadAll allocation is gone from the warm
// path.
type bodyBuf struct {
	buf bytes.Buffer
	lim io.LimitedReader
}

var bodyBufPool = sync.Pool{New: func() any { return new(bodyBuf) }}

func getBodyBuf() *bodyBuf {
	b := bodyBufPool.Get().(*bodyBuf)
	b.buf.Reset()
	return b
}

// putBodyBuf recycles the scratch; buffers grown past 1 MiB are dropped so
// one oversized body cannot pin memory in the pool.
func putBodyBuf(b *bodyBuf) {
	b.lim.R = nil
	if b.buf.Cap() > 1<<20 {
		return
	}
	bodyBufPool.Put(b)
}
