package fleet

// The Router: HTTP termination, the routing decision, the proxied hop with
// bounded retry, and the router's own observability surface.
//
// Endpoints the router answers itself: /healthz, /readyz (503 once draining
// or when no backend is eligible), /fleet/status (the per-backend health
// and routing view), /metrics, /debug/requests[.json], /debug/vars and
// /debug/pprof. Everything else — the /v1 API — is fingerprinted, routed
// and proxied; the backend's status, content type and body pass through
// byte-for-byte, plus an X-Fleet-Backend header naming the backend that
// answered (the affinity tests read it; bodies stay untouched).
//
// Error discipline: the router only synthesizes an envelope when it cannot
// obtain one from a backend — no backend eligible, or the proxied hop
// failed after the one permitted retry. Synthesized envelopes use the
// backends' own JSON shape with status 503, so a load client's retry logic
// treats a router-local refusal exactly like a backend's draining refusal.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sentinel/internal/fingerprint"
	"sentinel/internal/obs"
	"sentinel/internal/server"
	"sentinel/internal/wire"
)

// Config sizes the router. Zero values select defaults.
type Config struct {
	// Backends are the sentineld addresses (host:port) forming the ring.
	// At least one is required; order does not affect ring placement.
	Backends []string
	// VNodes is the virtual-node count per backend (default 64).
	VNodes int
	// HotThreshold is the sketch estimate at which a fingerprint spills
	// across the fleet (default 64; negative disables spilling).
	HotThreshold int
	// HotWindow is how many sketch touches between counter halvings
	// (default 4096).
	HotWindow int
	// ProbeInterval is the /readyz polling period (default 500ms; negative
	// disables the prober — tests drive health directly).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round-trip (default 2s).
	ProbeTimeout time.Duration
	// FailureThreshold is how many consecutive probe failures mark a
	// backend unhealthy (default 2; connect failures on the proxy path
	// mark it immediately).
	FailureThreshold int
	// DialTimeout bounds connection establishment to a backend (default 2s).
	DialTimeout time.Duration
	// RequestTimeout bounds one proxied wire exchange and one raw
	// cache-miss hop (default 30s; the streaming net/http hop inherits the
	// client's context instead).
	RequestTimeout time.Duration
	// WirePoolSize is the idle wire-connection pool per backend (default 4).
	WirePoolSize int
	// HTTPPoolSize is the idle raw HTTP/1.1 connection pool per backend for
	// the cache-miss proxied hop (default 64, matching the old net/http
	// transport's per-host cap).
	HTTPPoolSize int
	// MaxBodyBytes bounds a proxied request body (default 4 MiB, matching
	// the backends' own limit).
	MaxBodyBytes int
	// RespCacheEntries bounds the router's front response cache (0 selects
	// the default 4096, matching the backends; negative disables caching so
	// every request crosses the proxied hop).
	RespCacheEntries int
	// Registry receives router metrics; nil disables them (the obs nil path).
	Registry *obs.Registry
	// Recorder is the router's flight recorder; nil disables records.
	Recorder *obs.Recorder
	// Logf receives health transitions and drain progress (default: drop).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.VNodes == 0 {
		c.VNodes = 64
	}
	if c.HotThreshold == 0 {
		c.HotThreshold = 64
	}
	if c.HotWindow == 0 {
		c.HotWindow = 4096
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailureThreshold == 0 {
		c.FailureThreshold = 2
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.WirePoolSize == 0 {
		c.WirePoolSize = 4
	}
	if c.HTTPPoolSize == 0 {
		c.HTTPPoolSize = 64
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 4 << 20
	}
	return c
}

// Router consistent-hashes requests onto the backend ring. Construct with
// New; safe for concurrent use; Close when done.
type Router struct {
	cfg      Config
	ring     *ring
	sketch   *sketch // nil when spilling is disabled
	backends []*backend
	mux      *http.ServeMux
	rec      *obs.Recorder
	eligible func(int) bool // precomputed predicate; alloc-free routing

	// Front response cache + its singleflight fill; both nil when
	// RespCacheEntries is negative (every request then crosses the hop).
	resp   *server.RespCache
	flight *fillGroup

	rr        atomic.Uint64 // spill round-robin cursor
	draining  atomic.Bool
	inflight  atomic.Int64
	stopProbe chan struct{}
	probeWG   sync.WaitGroup
	closeOnce sync.Once

	// Metrics, nil (discarding) without a registry.
	reqTime    *obs.Histogram // wall time per proxied HTTP request, ns
	reqs       *obs.Counter   // proxied HTTP requests
	retries    *obs.Counter   // reroutes after a failed first hop
	proxyErrs  *obs.Counter   // synthesized envelopes (no backend answered)
	hashes     *obs.Counter   // routing decisions that used the ring owner
	spills     *obs.Counter   // routing decisions that spilled a hot key
	wireFrames *obs.Counter   // wire frames terminated
	wireElems  *obs.Counter   // wire elements routed
}

// New builds a Router over cfg.Backends and starts its health prober.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("fleet: at least one backend is required")
	}
	if len(cfg.Backends) > 1<<16-1 {
		return nil, fmt.Errorf("fleet: %d backends exceeds the ring's capacity", len(cfg.Backends))
	}
	rt := &Router{
		cfg:       cfg,
		ring:      newRing(cfg.Backends, cfg.VNodes),
		rec:       cfg.Recorder,
		stopProbe: make(chan struct{}),
	}
	if cfg.HotThreshold > 0 {
		rt.sketch = newSketch(cfg.HotWindow)
	}
	if rt.resp = server.NewRespCache(cfg.RespCacheEntries); rt.resp != nil {
		rt.flight = newFillGroup()
	}
	for _, addr := range cfg.Backends {
		rt.backends = append(rt.backends, newBackend(addr, cfg.DialTimeout, cfg.WirePoolSize, cfg.HTTPPoolSize))
	}
	rt.eligible = func(i int) bool { return rt.backends[i].eligible() }

	if reg := cfg.Registry; reg != nil {
		rt.reqTime = reg.Histogram("fleet.request_ns")
		rt.reqs = reg.Counter("fleet.requests")
		rt.retries = reg.Counter("fleet.retries")
		rt.proxyErrs = reg.Counter("fleet.proxy_errors")
		rt.hashes = reg.Counter("fleet.hashed")
		rt.spills = reg.Counter("fleet.spilled")
		rt.wireFrames = reg.Counter("fleet.wire_frames")
		rt.wireElems = reg.Counter("fleet.wire_elements")
		reg.Gauge("fleet.inflight", rt.inflight.Load)
		reg.Gauge("fleet.backends", func() int64 { return int64(len(rt.backends)) })
		reg.Gauge("fleet.backends_eligible", func() int64 {
			n := int64(0)
			for _, b := range rt.backends {
				if b.eligible() {
					n++
				}
			}
			return n
		})
		reg.Gauge("fleet.draining", func() int64 {
			if rt.draining.Load() {
				return 1
			}
			return 0
		})
		reg.Gauge("fleet.cache.size", func() int64 { return int64(rt.resp.Len()) })
		reg.Gauge("fleet.cache.hits", rt.resp.Hits)
		reg.Gauge("fleet.cache.misses", rt.resp.Misses)
		reg.Gauge("fleet.cache.evicts", rt.resp.Evicts)
		reg.Gauge("fleet.cache_hit_permille", rt.cacheHitPermille)
		for _, b := range rt.backends {
			b := b
			name := "fleet.backend." + b.addr
			b.hashed = reg.Counter(name + ".hashed")
			b.spilled = reg.Counter(name + ".spilled")
			reg.Gauge(name+".inflight", b.inflight.Load)
			reg.Gauge(name+".healthy", func() int64 {
				if b.eligible() {
					return 1
				}
				return 0
			})
		}
		if rt.rec != nil {
			reg.Gauge("fleet.recorder.retained", rt.rec.Retained)
		}
	}
	rt.routes()
	if cfg.ProbeInterval > 0 {
		rt.probeWG.Add(1)
		go rt.probeLoop()
	}
	return rt, nil
}

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Logf != nil {
		rt.cfg.Logf(format, args...)
	}
}

// Handler returns the root handler serving every router endpoint. The API
// paths dispatch straight to the proxy: ServeMux's catch-all pattern runs
// its wildcard matcher on every request (three allocations), which the warm
// path's budget cannot afford.
func (rt *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			rt.proxy(w, r)
			return
		}
		rt.mux.ServeHTTP(w, r)
	})
}

// SniffWire splits l between the two protocols: wire-magic connections are
// terminated by the router's wire proxy, everything else flows through the
// returned listener to the HTTP server — the same single-port deployment as
// sentineld itself.
func (rt *Router) SniffWire(l net.Listener) net.Listener {
	return wire.SplitListener(l, rt.serveWire)
}

// StartDrain makes /readyz report 503 and refuses new proxied work while
// in-flight hops complete. Idempotent.
func (rt *Router) StartDrain() { rt.draining.Store(true) }

// Drain starts draining and blocks until no proxied work is in flight or
// ctx expires.
func (rt *Router) Drain(ctx context.Context) error {
	rt.StartDrain()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for rt.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	return nil
}

// InFlight reports proxied requests and wire exchanges currently running.
func (rt *Router) InFlight() int64 { return rt.inflight.Load() }

// ResetCache drops every entry in the front response cache (no-op when
// caching is disabled). The cache assumes backend artifacts are immutable
// for the router's lifetime — the backends drop their own response caches
// on Runner.OnReset, but no reset signal crosses the fleet, so an operator
// who resets or reloads backend state at runtime must call this (or restart
// the router) to keep pre-reset bytes from being served.
func (rt *Router) ResetCache() { rt.resp.Reset() }

// Close stops the prober and tears down every backend's connection pools.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() {
		close(rt.stopProbe)
		rt.probeWG.Wait()
		for _, b := range rt.backends {
			b.close()
		}
	})
}

func (rt *Router) routes() {
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n")) //nolint:errcheck
	})
	rt.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		switch {
		case rt.draining.Load():
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n")) //nolint:errcheck
		case rt.eligibleCount() == 0:
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("no ready backend\n")) //nolint:errcheck
		default:
			w.Write([]byte("ready\n")) //nolint:errcheck
		}
	})
	rt.mux.HandleFunc("GET /fleet/status", rt.handleStatus)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /debug/requests", rt.handleDebugRequests)
	rt.mux.HandleFunc("GET /debug/requests.json", rt.handleDebugRequestsJSON)
	rt.mux.Handle("GET /debug/vars", expvar.Handler())
	rt.mux.HandleFunc("GET /debug/pprof/", netpprof.Index)
	rt.mux.HandleFunc("GET /debug/pprof/cmdline", netpprof.Cmdline)
	rt.mux.HandleFunc("GET /debug/pprof/profile", netpprof.Profile)
	rt.mux.HandleFunc("GET /debug/pprof/symbol", netpprof.Symbol)
	rt.mux.HandleFunc("GET /debug/pprof/trace", netpprof.Trace)
	// Everything else is the backends' API: fingerprint, route, proxy.
	rt.mux.HandleFunc("/", rt.proxy)
}

func (rt *Router) eligibleCount() int {
	n := 0
	for _, b := range rt.backends {
		if b.eligible() {
			n++
		}
	}
	return n
}

// route picks the backend for key k: the ring owner normally, or — when the
// sketch marks k hot and at least two backends are eligible — the next
// round-robin backend, replicating the hot key's response bytes across the
// fleet. Allocation-free.
func (rt *Router) route(k fingerprint.Key) (idx int, spilled bool) {
	if rt.sketch != nil && int(rt.sketch.touch(k)) >= rt.cfg.HotThreshold {
		if i := rt.pickSpill(-1); i >= 0 {
			return i, true
		}
	}
	return rt.ring.pick(ringHash(k), -1, rt.eligible), false
}

// Route reports which backend address a request with fingerprint k would be
// sent to and whether hot-key spill overrode ring ownership, without
// proxying anything. The proxy paths use the same decision; this is the
// entry point for benchmarks and tooling. addr is "" when no backend is
// eligible. Allocation-free.
func (rt *Router) Route(k fingerprint.Key) (addr string, spilled bool) {
	idx, spilled := rt.route(k)
	if idx < 0 {
		return "", false
	}
	return rt.backends[idx].addr, spilled
}

// pickSpill returns the next round-robin eligible backend (excluding skip),
// or -1 when fewer than two backends are eligible — with one backend,
// spilling is meaningless and the ring owner wins.
func (rt *Router) pickSpill(skip int) int {
	n := len(rt.backends)
	if n < 2 {
		return -1
	}
	eligible := 0
	for i := 0; i < n; i++ {
		if i != skip && rt.eligible(i) {
			eligible++
		}
	}
	if eligible < 2 && skip < 0 {
		return -1
	}
	if eligible == 0 {
		return -1
	}
	start := int(rt.rr.Add(1) % uint64(n))
	for i := 0; i < n; i++ {
		j := (start + i) % n
		if j != skip && rt.eligible(j) {
			return j
		}
	}
	return -1
}

// reroute picks the retry target after backend `failed` could not be
// reached: the ring successor for owner-routed keys, the next round-robin
// backend for spilled ones.
func (rt *Router) reroute(k fingerprint.Key, spilled bool, failed int) int {
	if spilled {
		return rt.pickSpill(failed)
	}
	return rt.ring.pick(ringHash(k), failed, rt.eligible)
}

// hopHeaders are the HTTP/1.1 connection-scoped headers that must not cross
// the proxied hop.
var hopHeaders = [...]string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// fleetBackendHeader names the backend that answered a proxied request.
const fleetBackendHeader = "X-Fleet-Backend"

// requestIDHeader echoes a client-supplied request ID on cache-served
// responses, exactly as a backend would have.
const requestIDHeader = "X-Request-Id"

// writeEnvelope synthesizes a backend-shaped JSON error envelope (the
// trailing newline matches the backends' json.Encoder output).
func writeEnvelope(w http.ResponseWriter, status int, kind, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"error\":{\"kind\":%q,\"message\":%q}}\n", kind, msg)
}

// envelopeBody is writeEnvelope's body bytes, for the wire proxy's
// element-level synthesis.
func envelopeBody(kind, msg string) []byte {
	return []byte(fmt.Sprintf("{\"error\":{\"kind\":%q,\"message\":%q}}\n", kind, msg))
}

// rawProxyable reports whether the cache-miss hop may use the raw pooled
// HTTP/1.1 client: the three deterministic API endpoints, whose responses
// are bounded and replayable. /v1/batch must stream element by element —
// exactly what response buffering forbids — and unknown paths are rare
// enough not to matter; both keep the net/http hop.
func rawProxyable(method, path string) bool {
	switch path {
	case "/v1/simulate", "/v1/schedule":
		return method == http.MethodPost
	case "/v1/figures":
		return method == http.MethodGet
	}
	return false
}

// proxy is the catch-all handler: front-cache probe, fingerprint, route,
// proxied hop with one bounded retry, byte-faithful relay of whatever the
// backend answered. Warm repeats never reach a backend; cacheable misses
// fill the cache under a per-fingerprint singleflight so a cold storm costs
// one hop.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request) {
	var t0 time.Time
	if rt.reqTime != nil {
		t0 = time.Now()
	}
	if rt.draining.Load() {
		writeEnvelope(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	rt.inflight.Add(1)
	defer rt.inflight.Add(-1)
	rt.reqs.Inc()
	clientID := r.Header.Get(requestIDHeader)

	// Slurp the body into pooled scratch: the fingerprint needs its bytes,
	// and the retry needs to replay them. A body over the limit is forwarded
	// as a spliced stream — the backend's own MaxBytesReader produces the
	// canonical refusal — but cannot be retried or cached.
	var body []byte
	var overflow io.Reader
	if r.Body != nil && r.Body != http.NoBody {
		bb := getBodyBuf()
		defer putBodyBuf(bb)
		bb.lim = io.LimitedReader{R: r.Body, N: int64(rt.cfg.MaxBodyBytes) + 1}
		if _, err := bb.buf.ReadFrom(&bb.lim); err != nil {
			writeEnvelope(w, http.StatusBadRequest, "bad_request", "fleet: reading request body: "+err.Error())
			return
		}
		body = bb.buf.Bytes()
		if len(body) > rt.cfg.MaxBodyBytes {
			overflow = r.Body
		}
	}

	// Warm fast path: a byte-identical repeat of an already-proxied request
	// is answered from the front cache with one Write — before routing, the
	// timeout context, or any backend traffic. Head-sampled like the
	// backends' own warm path: an unsampled hit records nothing.
	probeable := overflow == nil && rt.resp != nil && cacheProbeable(r.Method, r.URL.Path, body)
	var rd *obs.Record
	var rawK fingerprint.Key
	if probeable {
		rawK = rawRequestKey(r.URL.Path, r.URL.RawQuery, body)
		if rt.rec.SampleWarm() {
			rd = rt.rec.Begin(r.URL.Path)
			rd.SetID(clientID)
			rd.SetFingerprint(rawK[:8])
			rd.Start(obs.StageFleetCache, obs.ArgRaw)
		}
		if rt.serveCached(w, rawK, clientID) {
			if rt.reqTime != nil {
				rt.reqTime.Observe(time.Since(t0).Nanoseconds())
			}
			if rd != nil {
				rd.End()
				rd.MarkWarm()
				rd.SetTier(tierRaw)
				rd.Finish(http.StatusOK)
			}
			return
		}
		rd.End() // nil-safe: closes the lookup span on a sampled miss
	}

	// Missed path: every request gets a record; a record carried over from a
	// sampled warm miss is kept.
	if rd == nil && rt.rec != nil {
		rd = rt.rec.Begin(r.URL.Path)
		rd.SetID(clientID)
	}
	status := http.StatusOK
	defer func() { rd.Finish(status) }()

	// Canonical probe: a textual variant of a cached request (field order,
	// whitespace, defaulted width, model aliases) hits under the strict
	// canonical key — only when the backend would demonstrably accept the
	// body (see canonCacheKey).
	var canonK fingerprint.Key
	var canonOK bool
	if probeable {
		rd.Start(obs.StageFleetCache, obs.ArgCanon)
		canonK, canonOK = canonCacheKey(r.Method, r.URL.Path, r.URL.RawQuery, body)
		hit := canonOK && rt.serveCached(w, canonK, clientID)
		rd.End()
		if hit {
			rd.SetTier(tierCanon)
			if rt.reqTime != nil {
				rt.reqTime.Observe(time.Since(t0).Nanoseconds())
			}
			return
		}
	}

	// Singleflight the fill: one hop per cold fingerprint; waiters are handed
	// the owner's bytes. An owner that fails or proves uncacheable resolves
	// empty-handed (the deferred abandon is idempotent against the success
	// path's resolve) and waiters take their own hop — a failed fill is
	// never shared.
	var fill *fillCall
	if canonOK {
		var owner bool
		fill, owner = rt.flight.begin(canonK)
		if owner {
			defer func() { rt.flight.resolve(canonK, fill, nil, "", false) }()
		} else {
			rd.Start(obs.StageSFWait, obs.ArgCanon)
			select {
			case <-fill.done:
				rd.End()
				if fill.ok {
					h := w.Header()
					h.Set("Content-Type", fill.ctype)
					h.Set(fleetBackendHeader, cacheBackendName)
					if clientID != "" {
						h.Set(requestIDHeader, clientID)
					}
					w.Write(fill.body) //nolint:errcheck
					rd.SetTier(tierCanon)
					if rt.reqTime != nil {
						rt.reqTime.Observe(time.Since(t0).Nanoseconds())
					}
					return
				}
			case <-r.Context().Done():
				rd.End()
				status = http.StatusGatewayTimeout
				writeEnvelope(w, status, "timeout",
					"fleet: timed out waiting for an identical in-flight request")
				return
			}
		}
	}

	rd.Start(obs.StageRoute, obs.ArgNone)
	var key fingerprint.Key
	if canonOK {
		key = canonK // the strict cache key doubles as the routing key
	} else {
		key = httpRouteKey(r.Method, r.URL.Path, r.URL.RawQuery, body)
	}
	rd.SetFingerprint(key[:8])
	idx, spilled := rt.route(key)
	rd.End()
	if idx < 0 {
		status = http.StatusServiceUnavailable
		rt.proxyErrs.Inc()
		writeEnvelope(w, status, "unavailable", "fleet: no ready backend")
		return
	}
	rt.countRoute(idx, spilled)

	arg := obs.ArgHashed
	if spilled {
		arg = obs.ArgSpilled
	}
	if overflow == nil && rawProxyable(r.Method, r.URL.Path) {
		status = rt.proxyRaw(w, r, rd, arg, key, rawK, canonK, canonOK, fill, body, idx, spilled)
	} else {
		// The net/http transport's write loop may still be draining the
		// request reader after Do returns; hand it a private copy so the
		// pooled slurp can be recycled safely.
		status = rt.proxyStream(w, r, rd, arg, key, append([]byte(nil), body...), overflow, idx, spilled)
	}
	if rt.reqTime != nil {
		rt.reqTime.Observe(time.Since(t0).Nanoseconds())
	}
}

// proxyRaw is the cache-miss hop for the deterministic API endpoints: one
// raw HTTP/1.1 exchange over the per-backend keep-alive pool, the whole
// response buffered before relay so the bounded retry stays simple (nothing
// reaches the client until a hop has fully succeeded). A 200 under a trusted
// canonical key fills the front cache and resolves the singleflight.
func (rt *Router) proxyRaw(w http.ResponseWriter, r *http.Request, rd *obs.Record, arg obs.Arg,
	key, rawK, canonK fingerprint.Key, canonOK bool, fill *fillCall, body []byte, idx int, spilled bool) int {
	ps := getRawScratch()
	defer putRawScratch(ps)
	const maxAttempts = 2 // first hop + one reroute
	for attempt := 0; ; attempt++ {
		b := rt.backends[idx]
		b.inflight.Add(1)
		rd.Start(obs.StageProxy, arg)
		buildRawRequest(ps, r, b.addr, body)
		res, err := rt.rawSend(b, r, ps)
		rd.End()
		b.inflight.Add(-1)
		if err != nil {
			// Only a fresh dial failure marks the backend down (a stale pooled
			// connection already redialed inside rawSend); any hop failure may
			// reroute once — nothing has been written to the client.
			var dial *rawDialError
			if errors.As(err, &dial) {
				rt.noteDialFailure(b)
			}
			if attempt+1 < maxAttempts {
				if next := rt.reroute(key, spilled, idx); next >= 0 {
					rt.retries.Inc()
					rt.countRoute(next, spilled)
					idx = next
					continue
				}
			}
			rt.proxyErrs.Inc()
			writeEnvelope(w, http.StatusServiceUnavailable, "unavailable",
				fmt.Sprintf("fleet: backend %s unreachable: %v", b.addr, err))
			return http.StatusServiceUnavailable
		}
		// A draining backend refused after the probe window: treat its 503
		// envelope like a connect failure and reroute, once. Not draining (or
		// nowhere to go): the refusal relays verbatim below.
		if res.status == http.StatusServiceUnavailable && attempt+1 < maxAttempts && isDrainingBody(res.body) {
			if !b.draining.Swap(true) {
				rt.logf("fleet: backend %s draining; rerouting new keys", b.addr)
			}
			if next := rt.reroute(key, spilled, idx); next >= 0 {
				rt.retries.Inc()
				rt.countRoute(next, spilled)
				idx = next
				continue
			}
		}
		if canonOK && res.status == http.StatusOK {
			// Fill both lanes with one immutable copy (the scratch bytes are
			// recycled); the singleflight hands waiters the same copy. Only
			// 200 envelopes are stored — a refusal is never memoized.
			cbody := append([]byte(nil), res.body...)
			ctype := ps.findHeader("content-type")
			rt.resp.Put(canonK, cbody, ctype)
			rt.resp.Put(rawK, cbody, ctype)
			rt.flight.resolve(canonK, fill, cbody, ctype, true)
		}
		relayRaw(w, ps, res, b.addr)
		return res.status
	}
}

// proxyStream is the net/http hop for everything the raw path cannot carry:
// /v1/batch (flushed element by element), over-limit spliced bodies, and
// unknown paths. Semantics are unchanged from before the raw hop existed.
func (rt *Router) proxyStream(w http.ResponseWriter, r *http.Request, rd *obs.Record, arg obs.Arg,
	key fingerprint.Key, body []byte, overflow io.Reader, idx int, spilled bool) int {
	const maxAttempts = 2 // first hop + one reroute
	for attempt := 0; ; attempt++ {
		b := rt.backends[idx]
		b.inflight.Add(1)
		rd.Start(obs.StageProxy, arg)
		resp, err := rt.send(b, r, body, overflow)
		if err != nil {
			rd.End()
			b.inflight.Add(-1)
			rt.noteDialFailure(b)
			// Reroute once: safe because every proxied op is idempotent and
			// replayable from the slurped body (an overflowing body already
			// fed its stream to the dead hop, so it cannot be replayed).
			if attempt+1 < maxAttempts && overflow == nil {
				if next := rt.reroute(key, spilled, idx); next >= 0 {
					rt.retries.Inc()
					rt.countRoute(next, spilled)
					idx = next
					continue
				}
			}
			rt.proxyErrs.Inc()
			writeEnvelope(w, http.StatusServiceUnavailable, "unavailable",
				fmt.Sprintf("fleet: backend %s unreachable: %v", b.addr, err))
			return http.StatusServiceUnavailable
		}
		// A draining backend refused after the probe window: treat its 503
		// envelope like a connect failure and reroute, once.
		if resp.StatusCode == http.StatusServiceUnavailable && attempt+1 < maxAttempts && overflow == nil {
			refusal, _ := io.ReadAll(io.LimitReader(resp.Body, drainSniffBytes))
			resp.Body.Close()
			rd.End()
			b.inflight.Add(-1)
			if isDrainingBody(refusal) {
				if !b.draining.Swap(true) {
					rt.logf("fleet: backend %s draining; rerouting new keys", b.addr)
				}
				if next := rt.reroute(key, spilled, idx); next >= 0 {
					rt.retries.Inc()
					rt.countRoute(next, spilled)
					idx = next
					continue
				}
			}
			// Not draining (or nowhere to go): relay the refusal verbatim.
			relayHead(w, resp, b.addr, int64(len(refusal)))
			w.Write(refusal) //nolint:errcheck
			return resp.StatusCode
		}
		relayHead(w, resp, b.addr, resp.ContentLength)
		flushCopy(w, resp.Body)
		resp.Body.Close()
		rd.End()
		b.inflight.Add(-1)
		return resp.StatusCode
	}
}

// cacheHitPermille reports front-cache hits per thousand lookups (0 before
// any traffic); the CI fleet gate reads it from /metrics as
// fleet_cache_hit_permille.
func (rt *Router) cacheHitPermille() int64 {
	h, m := rt.resp.Hits(), rt.resp.Misses()
	if h+m == 0 {
		return 0
	}
	return h * 1000 / (h + m)
}

// CacheLen reports the front response cache's current entry count (0 when
// caching is disabled).
func (rt *Router) CacheLen() int { return rt.resp.Len() }

// countRoute attributes one routing decision to its backend.
func (rt *Router) countRoute(idx int, spilled bool) {
	if spilled {
		rt.spills.Inc()
		rt.backends[idx].spilled.Inc()
	} else {
		rt.hashes.Inc()
		rt.backends[idx].hashed.Inc()
	}
}

// send performs one proxied hop. The body is replayed from the slurped
// bytes; an overflowing body splices the unread remainder onto the stream.
func (rt *Router) send(b *backend, r *http.Request, body []byte, overflow io.Reader) (*http.Response, error) {
	var rdr io.Reader = bytes.NewReader(body)
	if overflow != nil {
		rdr = io.MultiReader(bytes.NewReader(body), overflow)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, b.base+r.URL.RequestURI(), rdr)
	if err != nil {
		return nil, err
	}
	if overflow == nil {
		req.ContentLength = int64(len(body))
	} else {
		req.ContentLength = -1
	}
	for name, vals := range r.Header {
		if isHopHeader(name) {
			continue
		}
		req.Header[name] = vals
	}
	return b.client.Do(req)
}

func isHopHeader(name string) bool {
	for _, h := range hopHeaders {
		if strings.EqualFold(name, h) {
			return true
		}
	}
	return false
}

// relayHead copies the backend response's headers and status to the client,
// tagging the answering backend. An explicit Content-Length (when known)
// keeps the relayed framing identical to the direct one.
func relayHead(w http.ResponseWriter, resp *http.Response, addr string, clen int64) {
	h := w.Header()
	for name, vals := range resp.Header {
		if isHopHeader(name) || name == "Content-Length" {
			continue
		}
		h[name] = vals
	}
	h.Set(fleetBackendHeader, addr)
	if clen >= 0 {
		h.Set("Content-Length", fmt.Sprintf("%d", clen))
	}
	w.WriteHeader(resp.StatusCode)
}

// flushCopy streams src to w, flushing after every read so streamed batch
// responses keep their element-by-element progress through the router.
func flushCopy(w http.ResponseWriter, src io.Reader) {
	rc := http.NewResponseController(w)
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			rc.Flush() //nolint:errcheck // best-effort streaming
		}
		if err != nil {
			return
		}
	}
}

// backendStatus is one backend's row in /fleet/status.
type backendStatus struct {
	Addr     string `json:"addr"`
	Ready    bool   `json:"ready"`
	Draining bool   `json:"draining"`
	Failures int    `json:"probe_failures"`
	Inflight int64  `json:"inflight"`
	Hashed   int64  `json:"hashed"`
	Spilled  int64  `json:"spilled"`
}

// handleStatus reports the router's health and routing view as JSON.
func (rt *Router) handleStatus(w http.ResponseWriter, r *http.Request) {
	out := struct {
		Draining bool            `json:"draining"`
		VNodes   int             `json:"vnodes_per_backend"`
		Backends []backendStatus `json:"backends"`
	}{
		Draining: rt.draining.Load(),
		VNodes:   rt.cfg.VNodes,
	}
	for _, b := range rt.backends {
		out.Backends = append(out.Backends, backendStatus{
			Addr:     b.addr,
			Ready:    b.ready.Load(),
			Draining: b.draining.Load(),
			Failures: int(b.failures.Load()),
			Inflight: b.inflight.Load(),
			Hashed:   b.hashed.Value(),
			Spilled:  b.spilled.Value(),
		})
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out) //nolint:errcheck
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if rt.cfg.Registry == nil {
		http.Error(w, "metrics registry disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.cfg.Registry.WritePrometheus(w) //nolint:errcheck
}

func (rt *Router) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if rt.rec == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	obs.WriteRequestsHTML(w, "sentinelfront", rt.rec.Snapshot(), rt.rec.Retained()) //nolint:errcheck
}

func (rt *Router) handleDebugRequestsJSON(w http.ResponseWriter, r *http.Request) {
	if rt.rec == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	views := rt.rec.Snapshot()
	if views == nil {
		views = []*obs.RecordView{}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(views) //nolint:errcheck
}
