package fleet

// White-box pins for the raw hop's response parser: interim 1xx responses
// are consumed, not mistaken for the final answer (the unframed-body branch
// would otherwise block reading to EOF on a keep-alive connection until the
// request deadline), bodyless statuses (204/304) never take that branch
// either, and the request builder keeps Expect off the wire — the body is
// fully buffered, so a relayed 100-continue handshake could only provoke
// the interim responses the parser now defends against.

import (
	"bufio"
	"bytes"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

func parseRaw(t *testing.T, wire string) (rawResult, *rawScratch, *bufio.Reader) {
	t.Helper()
	ps := new(rawScratch)
	br := bufio.NewReader(strings.NewReader(wire))
	res, began, err := readRawResponse(br, ps)
	if err != nil {
		t.Fatalf("readRawResponse(%q): %v", wire, err)
	}
	if !began {
		t.Fatalf("readRawResponse(%q): began = false after a full response", wire)
	}
	return res, ps, br
}

// TestReadRawResponseSkipsInterim: a 100 Continue ahead of the real
// response (what a backend emits when Expect reaches it) is discarded —
// status, headers and body all come from the final response, and the
// interim's headers never leak into the relay set.
func TestReadRawResponseSkipsInterim(t *testing.T) {
	res, ps, _ := parseRaw(t,
		"HTTP/1.1 100 Continue\r\nX-Interim: leak\r\n\r\n"+
			"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 5\r\n\r\nhello")
	if res.status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (the interim 100 must not be the answer)", res.status)
	}
	if string(res.body) != "hello" {
		t.Fatalf("body = %q, want %q", res.body, "hello")
	}
	if res.closeAfter {
		t.Error("closeAfter = true; a framed final response keeps the connection alive")
	}
	if got := ps.findHeader("content-type"); got != "application/json" {
		t.Errorf("Content-Type = %q, want the final response's %q", got, "application/json")
	}
	if got := ps.findHeader("x-interim"); got != "" {
		t.Errorf("interim header leaked into the relay set: X-Interim = %q", got)
	}
}

// TestReadRawResponseInterimChain: multiple interims (103 Early Hints then
// 100) still resolve to the final response; an endless interim stream is an
// error, not a hang.
func TestReadRawResponseInterimChain(t *testing.T) {
	res, _, _ := parseRaw(t,
		"HTTP/1.1 103 Early Hints\r\n\r\nHTTP/1.1 100 Continue\r\n\r\n"+
			"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
	if res.status != http.StatusOK || string(res.body) != "ok" {
		t.Fatalf("got status %d body %q, want 200 %q", res.status, res.body, "ok")
	}

	endless := strings.Repeat("HTTP/1.1 100 Continue\r\n\r\n", 16)
	ps := new(rawScratch)
	if _, _, err := readRawResponse(bufio.NewReader(strings.NewReader(endless)), ps); err == nil {
		t.Fatal("an interim-only stream parsed without error; want the interim bound to trip")
	}
}

// TestReadRawResponseBodyless: 204/304 carry no body regardless of framing
// headers, and — unlike the unframed default branch — they preserve the
// keep-alive connection: the next response on the same reader must parse.
func TestReadRawResponseBodyless(t *testing.T) {
	res, _, br := parseRaw(t,
		"HTTP/1.1 204 No Content\r\n\r\n"+
			"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nnext")
	if res.status != http.StatusNoContent || len(res.body) != 0 {
		t.Fatalf("204: status %d body %q, want 204 with no body", res.status, res.body)
	}
	if res.closeAfter {
		t.Error("204: closeAfter = true; a bodyless response keeps the connection alive")
	}
	ps := new(rawScratch)
	next, _, err := readRawResponse(br, ps)
	if err != nil || next.status != http.StatusOK || string(next.body) != "next" {
		t.Fatalf("response after the 204 did not parse: %v (status %d body %q)", err, next.status, next.body)
	}

	// A 304's Content-Length describes the representation it elides; reading
	// it as framing would swallow the next response (or block to deadline).
	res, _, br = parseRaw(t,
		"HTTP/1.1 304 Not Modified\r\nContent-Length: 10\r\nEtag: \"v1\"\r\n\r\n"+
			"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
	if res.status != http.StatusNotModified || len(res.body) != 0 || res.closeAfter {
		t.Fatalf("304: status %d body %q closeAfter %v, want bodyless keep-alive", res.status, res.body, res.closeAfter)
	}
	ps = new(rawScratch)
	next, _, err = readRawResponse(br, ps)
	if err != nil || next.status != http.StatusOK || string(next.body) != "ok" {
		t.Fatalf("response after the 304 did not parse: %v (status %d body %q)", err, next.status, next.body)
	}
}

// TestBuildRawRequestStripsExpect: the hop never relays Expect — the body
// travels in the same write as the headers, so the handshake the header
// requests is impossible to honor and only provokes interim responses.
func TestBuildRawRequestStripsExpect(t *testing.T) {
	body := []byte(`{"workload":"cmp","model":"sentinel"}`)
	r, err := http.NewRequest(http.MethodPost, "http://x/v1/simulate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r.Header.Set("Expect", "100-continue")
	r.Header.Set("X-Request-Id", "rid-1")

	ps := new(rawScratch)
	buildRawRequest(ps, r, "backend:9", body)
	frame := string(ps.req)
	if strings.Contains(strings.ToLower(frame), "expect") {
		t.Fatalf("Expect crossed the hop:\n%s", frame)
	}
	if !strings.Contains(frame, "X-Request-Id: rid-1\r\n") {
		t.Errorf("ordinary end-to-end header missing from the frame:\n%s", frame)
	}
	if !strings.Contains(frame, "Content-Length: "+strconv.Itoa(len(body))+"\r\n") {
		t.Errorf("explicit Content-Length missing from the frame:\n%s", frame)
	}
}
