package fleet_test

// Fleet integration: real backends (the full serving stack on real TCP
// listeners, both protocols sniffed on one port — exactly sentineld's
// deployment) behind a real router. These tests pin the subsystem's three
// contracts: affinity (identical requests land on one backend, so its
// caches concentrate), fidelity (a proxied response is byte-identical to a
// direct one, error envelopes included, over HTTP and wire alike), and
// availability (backend death and drain reroute without surfacing errors
// beyond the backends' own refusal vocabulary).

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"sentinel/internal/fleet"
	"sentinel/internal/obs"
	"sentinel/internal/server"
	"sentinel/internal/wire"
	"sentinel/internal/workload"
)

// testBackend is one in-process sentineld: server, sniffing listener, and
// the registry its cache counters live in.
type testBackend struct {
	srv     *server.Server
	reg     *obs.Registry
	httpSrv *http.Server
	addr    string
}

func startBackend(t testing.TB) *testBackend {
	t.Helper()
	reg := obs.NewRegistry()
	srv := server.New(server.Config{Workers: 2, Registry: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b := &testBackend{
		srv:     srv,
		reg:     reg,
		httpSrv: &http.Server{Handler: srv.Handler()},
		addr:    ln.Addr().String(),
	}
	go b.httpSrv.Serve(srv.SniffWire(ln)) //nolint:errcheck
	t.Cleanup(func() { b.httpSrv.Close() })
	return b
}

// promValue scrapes one metric value out of a registry's Prometheus text.
func promValue(t testing.TB, reg *obs.Registry, metric string) int64 {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`(?m)^` + metric + ` (\d+)$`).FindStringSubmatch(buf.String())
	if m == nil {
		return 0
	}
	v, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// startFleet launches n backends and a router over them, returning the
// router's base URL and raw address alongside the pieces.
func startFleet(t testing.TB, n int, tweak func(*fleet.Config)) ([]*testBackend, *fleet.Router, string) {
	t.Helper()
	backends := make([]*testBackend, n)
	addrs := make([]string, n)
	for i := range backends {
		backends[i] = startBackend(t)
		addrs[i] = backends[i].addr
	}
	cfg := fleet.Config{
		Backends:      addrs,
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  time.Second,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	rt, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: rt.Handler()}
	go httpSrv.Serve(rt.SniffWire(ln)) //nolint:errcheck
	t.Cleanup(func() { httpSrv.Close() })
	return backends, rt, ln.Addr().String()
}

// response captures everything byte-identity compares.
type response struct {
	status  int
	ctype   string
	body    []byte
	backend string // X-Fleet-Backend, empty on direct responses
}

func post(t *testing.T, base, path string, body []byte) response {
	t.Helper()
	resp, err := http.Post("http://"+base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s%s: %v", base, path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return response{
		status:  resp.StatusCode,
		ctype:   resp.Header.Get("Content-Type"),
		body:    b,
		backend: resp.Header.Get("X-Fleet-Backend"),
	}
}

func get(t *testing.T, base, path string) response {
	t.Helper()
	resp, err := http.Get("http://" + base + path)
	if err != nil {
		t.Fatalf("GET %s%s: %v", base, path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return response{
		status:  resp.StatusCode,
		ctype:   resp.Header.Get("Content-Type"),
		body:    b,
		backend: resp.Header.Get("X-Fleet-Backend"),
	}
}

// TestFleetByteIdentityAndAffinity is the tentpole's acceptance pin: every
// workload × simulate/schedule proxied through a 3-backend fleet answers
// byte-identically to a direct backend call, repeats land on the owner, and
// error envelopes relay untouched.
func TestFleetByteIdentityAndAffinity(t *testing.T) {
	// Front cache off: this test pins the *proxied* path (repeats must reach
	// the ring owner); TestFleetRouterCacheByteIdentity pins the cached one.
	backends, _, router := startFleet(t, 3, func(c *fleet.Config) { c.RespCacheEntries = -1 })
	byAddr := map[string]*testBackend{}
	for _, b := range backends {
		byAddr[b.addr] = b
	}

	var repeats, onOwner int
	check := func(path string, body []byte) {
		t.Helper()
		proxied := post(t, router, path, body)
		if proxied.backend == "" {
			t.Fatalf("%s %s: proxied response carries no X-Fleet-Backend", path, body)
		}
		if byAddr[proxied.backend] == nil {
			t.Fatalf("%s: unknown backend %q", path, proxied.backend)
		}
		direct := post(t, proxied.backend, path, body)
		if direct.status != proxied.status {
			t.Fatalf("%s %s: proxied status %d, direct %d", path, body, proxied.status, direct.status)
		}
		if direct.ctype != proxied.ctype {
			t.Fatalf("%s %s: proxied Content-Type %q, direct %q", path, body, proxied.ctype, direct.ctype)
		}
		if !bytes.Equal(direct.body, proxied.body) {
			t.Fatalf("%s %s: proxied body differs from direct:\nproxied: %s\ndirect:  %s",
				path, body, proxied.body, direct.body)
		}
		// Affinity: repeats of the identical request stay on the backend the
		// first one chose.
		for i := 0; i < 2; i++ {
			repeats++
			if post(t, router, path, body).backend == proxied.backend {
				onOwner++
			}
		}
	}

	all := workload.All()
	if len(all) != 17 {
		t.Fatalf("workload registry has %d benchmarks, want 17", len(all))
	}
	for _, wl := range all {
		body := []byte(fmt.Sprintf(`{"workload":%q,"model":"sentinel","width":4}`, wl.Name))
		check("/v1/simulate", body)
		check("/v1/schedule", body)
	}
	// Error envelopes relay byte-for-byte too: unknown workload (canonical
	// key), unknown model and malformed JSON (raw-key fallback).
	check("/v1/simulate", []byte(`{"workload":"nope","model":"sentinel"}`))
	check("/v1/simulate", []byte(`{"workload":"cmp","model":"warp-drive"}`))
	check("/v1/schedule", []byte(`{"workload":`))

	if frac := float64(onOwner) / float64(repeats); frac < 0.95 {
		t.Fatalf("only %.1f%% of %d repeats landed on the ring owner, want >= 95%%", 100*frac, repeats)
	}

	// GET /v1/figures proxies byte-identically as well.
	proxied := get(t, router, "/v1/figures?section=table3")
	direct := get(t, proxied.backend, "/v1/figures?section=table3")
	if proxied.status != direct.status || !bytes.Equal(proxied.body, direct.body) {
		t.Fatalf("figures proxied (%d, %d bytes) != direct (%d, %d bytes)",
			proxied.status, len(proxied.body), direct.status, len(direct.body))
	}
}

// TestFleetRespcacheConcentration: hammering one request through the router
// warms exactly one backend's response-byte cache — the cache-affinity the
// whole subsystem exists to buy.
func TestFleetRespcacheConcentration(t *testing.T) {
	// Front cache off so every repeat reaches the owner's own cache.
	backends, _, router := startFleet(t, 3, func(c *fleet.Config) { c.RespCacheEntries = -1 })
	body := []byte(`{"workload":"wc","model":"sentinel","width":4}`)
	const n = 20
	owner := ""
	for i := 0; i < n; i++ {
		r := post(t, router, "/v1/simulate", body)
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, r.status, r.body)
		}
		if owner == "" {
			owner = r.backend
		} else if r.backend != owner {
			t.Fatalf("request %d landed on %s, earlier ones on %s", i, r.backend, owner)
		}
	}
	var ownerHits, otherHits int64
	for _, b := range backends {
		hits := promValue(t, b.reg, "server_respcache_hits")
		if b.addr == owner {
			ownerHits = hits
		} else {
			otherHits += hits
		}
	}
	// First request misses (and fills), every repeat hits. The canonical
	// fingerprint keys both, so hits concentrate entirely on the owner.
	if ownerHits < n-2 {
		t.Errorf("owner %s respcache hits = %d, want >= %d", owner, ownerHits, n-2)
	}
	if otherHits != 0 {
		t.Errorf("non-owner backends saw %d respcache hits, want 0 (affinity leaked)", otherHits)
	}
}

// TestFleetRebalanceOnDeath: killing a backend reroutes its keyspace to the
// ring successor without a client-visible error — the request that
// discovers the corpse retries, later ones route around it, and the
// surviving backends keep their own keys.
func TestFleetRebalanceOnDeath(t *testing.T) {
	backends, _, router := startFleet(t, 3, func(c *fleet.Config) {
		c.FailureThreshold = 1
		c.RespCacheEntries = -1 // repeats must re-route, not hit the front cache
	})
	// Find bodies owned by two different backends so we can watch one move
	// and one stay. Counting distinct owners (not just distinct bodies) is
	// load-bearing: with random ports two keys share a ring owner often
	// enough that a "survivor" key could secretly live on the victim.
	// Width × predictor gives 9 distinct canonical keys to draw from.
	ownerOf := map[string]string{}
	owners := map[string]bool{}
	var bodies [][]byte
	preds := []string{"perfect", "static", "tage"}
	for i := 0; len(owners) < 2 && i < 9; i++ {
		body := []byte(fmt.Sprintf(`{"workload":"cmp","model":"sentinel","width":%d,"predictor":%q}`,
			2<<(i%3), preds[(i/3)%3]))
		r := post(t, router, "/v1/simulate", body)
		if r.status != http.StatusOK {
			t.Fatalf("probe body %s: status %d", body, r.status)
		}
		ownerOf[string(body)] = r.backend
		bodies = append(bodies, body)
		owners[r.backend] = true
	}
	if len(owners) < 2 {
		t.Skip("could not find keys on two distinct backends") // vanishingly unlikely
	}
	victimAddr := ownerOf[string(bodies[0])]
	var victim *testBackend
	for _, b := range backends {
		if b.addr == victimAddr {
			victim = b
		}
	}
	victim.httpSrv.Close()

	// The very next request for the dead backend's key must succeed via the
	// bounded retry — no error surfaces to the client.
	r := post(t, router, "/v1/simulate", bodies[0])
	if r.status != http.StatusOK {
		t.Fatalf("request after backend death: status %d: %s", r.status, r.body)
	}
	if r.backend == victimAddr {
		t.Fatalf("request after death still reports dead backend %s", victimAddr)
	}
	successor := r.backend

	// Keys owned by survivors never move (keys that lived on the victim
	// legitimately do — skip them).
	for _, body := range bodies[1:] {
		if ownerOf[string(body)] == victimAddr {
			continue
		}
		if got := post(t, router, "/v1/simulate", body).backend; got != ownerOf[string(body)] {
			t.Fatalf("survivor-owned key moved %s -> %s on an unrelated death", ownerOf[string(body)], got)
		}
	}
	// And the displaced key settles on its successor for subsequent requests
	// (reactive health marking — no probe wait needed).
	for i := 0; i < 3; i++ {
		r := post(t, router, "/v1/simulate", bodies[0])
		if r.status != http.StatusOK || r.backend != successor {
			t.Fatalf("displaced key bounced: status %d backend %s (successor %s)", r.status, r.backend, successor)
		}
	}
}

// TestFleetDrainMidLoad is the drain-interaction pin: a backend draining
// mid-load finishes what it holds while the router reroutes new keys; the
// load client observes nothing outside the 200/429/503 vocabulary, and
// after the probe notices, the drained backend receives no new keys at all.
func TestFleetDrainMidLoad(t *testing.T) {
	backends, _, router := startFleet(t, 3, func(c *fleet.Config) {
		c.ProbeInterval = 20 * time.Millisecond
	})

	var bodies [][]byte
	for _, wl := range []string{"cmp", "wc", "grep", "eqntott", "lex", "tbl"} {
		bodies = append(bodies, []byte(fmt.Sprintf(`{"workload":%q,"model":"sentinel","width":4}`, wl)))
	}
	// Warm every key so the load phase measures steady state, and learn the
	// owners so we can pick a victim that owns traffic.
	owners := map[string]string{}
	for _, b := range bodies {
		r := post(t, router, "/v1/simulate", b)
		if r.status != http.StatusOK {
			t.Fatalf("warm %s: status %d", b, r.status)
		}
		owners[string(b)] = r.backend
	}
	var victim *testBackend
	for _, b := range backends {
		if b.addr == owners[string(bodies[0])] {
			victim = b
		}
	}

	type shot struct {
		status  int
		backend string
		late    bool // fired after the drain settled
	}
	var mu sync.Mutex
	var shots []shot
	var drained sync.WaitGroup
	stop := make(chan struct{})
	settled := make(chan struct{})

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for i := w; ; i += 6 {
				select {
				case <-stop:
					return
				default:
				}
				body := bodies[i%len(bodies)]
				resp, err := client.Post("http://"+router+"/v1/simulate", "application/json", bytes.NewReader(body))
				s := shot{}
				if err != nil {
					s.status = -1
				} else {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
					s.status = resp.StatusCode
					s.backend = resp.Header.Get("X-Fleet-Backend")
				}
				select {
				case <-settled:
					s.late = true
				default:
				}
				mu.Lock()
				shots = append(shots, s)
				mu.Unlock()
			}
		}(w)
	}

	time.Sleep(100 * time.Millisecond)
	// SIGTERM-equivalent on the victim: stop admitting, finish in-flight.
	drained.Add(1)
	var drainErr error
	go func() {
		defer drained.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr = victim.srv.Drain(ctx)
	}()
	drained.Wait()
	// Give the prober a couple of rounds to observe the drain, then mark
	// everything after this point as "late": no late shot may hit the victim.
	time.Sleep(100 * time.Millisecond)
	close(settled)
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()

	if drainErr != nil {
		t.Fatalf("victim drain did not settle: %v (in-flight requests were not finished)", drainErr)
	}
	var total, lateOnVictim int
	for _, s := range shots {
		total++
		switch s.status {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Fatalf("load observed status %d — outside the 200/429/503 vocabulary", s.status)
		}
		if s.late && s.backend == victim.addr {
			lateOnVictim++
		}
	}
	if total < 50 {
		t.Fatalf("load produced only %d shots; test is not exercising concurrency", total)
	}
	if lateOnVictim > 0 {
		t.Errorf("%d shots landed on the draining backend after the probe window", lateOnVictim)
	}
}

// TestFleetHotKeySpill: a fingerprint hammered past the threshold spreads
// across the fleet instead of serializing its ring owner, and /fleet/status
// accounts the spills per backend.
func TestFleetHotKeySpill(t *testing.T) {
	_, _, router := startFleet(t, 3, func(c *fleet.Config) {
		c.HotThreshold = 10
		c.RespCacheEntries = -1 // the spill path serves misses; pin it in isolation
	})
	body := []byte(`{"workload":"cmp","model":"sentinel","width":4}`)
	hit := map[string]int{}
	for i := 0; i < 60; i++ {
		r := post(t, router, "/v1/simulate", body)
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, r.status, r.body)
		}
		hit[r.backend]++
	}
	if len(hit) < 3 {
		t.Fatalf("hot key reached only %d backends (%v), want all 3 via spill", len(hit), hit)
	}
	var status struct {
		Backends []struct {
			Addr    string `json:"addr"`
			Hashed  int64  `json:"hashed"`
			Spilled int64  `json:"spilled"`
		} `json:"backends"`
	}
	r := get(t, router, "/fleet/status")
	if err := json.Unmarshal(r.body, &status); err != nil {
		t.Fatalf("fleet/status: %v\n%s", err, r.body)
	}
	var spilled int64
	for _, b := range status.Backends {
		spilled += b.Spilled
	}
	if spilled < 40 {
		t.Errorf("fleet/status accounts %d spilled routes for 60 hot requests past threshold 10", spilled)
	}
}

// TestFleetWireByteIdentity: a wire batch through the router answers every
// element with exactly the payload a direct backend exchange produces —
// decodable and malformed elements alike — with tags passed through.
func TestFleetWireByteIdentity(t *testing.T) {
	backends, _, router := startFleet(t, 3, nil)
	frame := wire.AppendRequest(nil, &wire.ReqFrame{Elems: []wire.ReqElem{
		{Tag: 1, Op: wire.OpSimulate, Payload: []byte(`{"workload":"cmp","model":"sentinel","width":4}`)},
		{Tag: 2, Op: wire.OpSchedule, Payload: []byte(`{"workload":"wc","model":"sentinel","width":4}`)},
		{Tag: 3, Op: wire.OpSimulate, Payload: []byte(`{"workload":"nope","model":"sentinel"}`)},
		{Tag: 4, Op: wire.OpSchedule, Payload: []byte(`not json`)},
	}})

	exchange := func(addr string) map[uint32]response {
		t.Helper()
		conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
		br := bufio.NewReader(conn)
		count, err := wire.ReadResponseHeader(br, wire.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		out := map[uint32]response{}
		for i := 0; i < count; i++ {
			tag, status, plen, err := wire.ReadElemHeader(br, wire.Limits{})
			if err != nil {
				t.Fatal(err)
			}
			payload := make([]byte, plen)
			if _, err := io.ReadFull(br, payload); err != nil {
				t.Fatal(err)
			}
			out[tag] = response{status: status, body: payload}
		}
		return out
	}

	proxied := exchange(router)
	direct := exchange(backends[0].addr)
	if len(proxied) != 4 || len(direct) != 4 {
		t.Fatalf("proxied answered %d tags, direct %d, want 4", len(proxied), len(direct))
	}
	for tag, d := range direct {
		p, ok := proxied[tag]
		if !ok {
			t.Fatalf("tag %d missing from proxied response", tag)
		}
		if p.status != d.status {
			t.Errorf("tag %d: proxied status %d, direct %d", tag, p.status, d.status)
		}
		if !bytes.Equal(p.body, d.body) {
			t.Errorf("tag %d: proxied payload differs from direct:\nproxied: %s\ndirect:  %s", tag, p.body, d.body)
		}
	}
}

// TestFleetRouterEndpoints: the router's own surface — health, readiness
// through drain and fleet death, and the observability pages.
func TestFleetRouterEndpoints(t *testing.T) {
	backends, rt, router := startFleet(t, 2, func(c *fleet.Config) {
		c.FailureThreshold = 1
		c.RespCacheEntries = -1 // the fleet-death repeat below must reach the dead ring
		c.Registry = obs.NewRegistry()
		c.Recorder = obs.NewRecorder(obs.RecorderConfig{Entries: 16, Every: 1})
	})
	if r := get(t, router, "/healthz"); r.status != http.StatusOK || string(r.body) != "ok\n" {
		t.Fatalf("healthz = %d %q", r.status, r.body)
	}
	if r := get(t, router, "/readyz"); r.status != http.StatusOK || string(r.body) != "ready\n" {
		t.Fatalf("readyz = %d %q", r.status, r.body)
	}
	// One proxied request so the recorder and histogram have something.
	if r := post(t, router, "/v1/simulate", []byte(`{"workload":"cmp","model":"sentinel","width":4}`)); r.status != http.StatusOK {
		t.Fatalf("proxied request = %d: %s", r.status, r.body)
	}
	if r := get(t, router, "/metrics"); r.status != http.StatusOK ||
		!strings.Contains(string(r.body), "fleet_requests") {
		t.Fatalf("metrics missing fleet_requests:\n%s", r.body)
	}
	if r := get(t, router, "/debug/requests"); r.status != http.StatusOK ||
		!strings.Contains(string(r.body), "sentinelfront") {
		t.Fatalf("debug/requests = %d, want the sentinelfront flight-recorder page", r.status)
	}
	if r := get(t, router, "/fleet/status"); r.status != http.StatusOK ||
		!strings.Contains(string(r.body), backends[0].addr) {
		t.Fatalf("fleet/status does not list backend %s:\n%s", backends[0].addr, r.body)
	}

	// Kill the whole fleet: readyz flips to "no ready backend" once probes
	// notice, and proxied requests answer with the unavailable envelope.
	for _, b := range backends {
		b.httpSrv.Close()
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		if r := get(t, router, "/readyz"); r.status == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never noticed the whole fleet dying")
		}
		time.Sleep(20 * time.Millisecond)
	}
	r := post(t, router, "/v1/simulate", []byte(`{"workload":"cmp","model":"sentinel","width":4}`))
	if r.status != http.StatusServiceUnavailable || !strings.Contains(string(r.body), "unavailable") {
		t.Fatalf("fleet-wide death answered %d %q, want 503 unavailable envelope", r.status, r.body)
	}

	// Router drain: readyz reports draining, proxied requests refuse with
	// the backends' own draining envelope.
	rt.StartDrain()
	if r := get(t, router, "/readyz"); r.status != http.StatusServiceUnavailable || string(r.body) != "draining\n" {
		t.Fatalf("draining readyz = %d %q", r.status, r.body)
	}
	if r := post(t, router, "/v1/simulate", []byte(`{}`)); r.status != http.StatusServiceUnavailable ||
		!strings.Contains(string(r.body), `"draining"`) {
		t.Fatalf("draining proxied request = %d %q", r.status, r.body)
	}
}
