package fleet

// White-box pins for the warm path's gates: the draining sniff that the
// probe and refusal paths share (the old 64-byte limit could truncate the
// marker out of a padded envelope), and the strict canonical-key gate that
// keeps cached 200s from masking refusals.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestIsDrainingBody(t *testing.T) {
	padded := `{"error":{"message":"server is shutting down; in-flight work will finish, please retry another backend","kind":"draining"}}`
	if i := strings.Index(padded, "draining"); i < 64 {
		t.Fatalf("regression fixture puts the marker at byte %d; it must sit past the old 64-byte sniff", i)
	}
	cases := []struct {
		body string
		want bool
	}{
		{"draining\n", true},
		{"  draining\n", true},
		{`{"error":{"kind":"draining","message":"server is draining"}}` + "\n", true},
		{padded, true},
		{"ready\n", false},
		{"no ready backend\n", false},
		{`{"error":{"kind":"unavailable","message":"fleet: no ready backend"}}`, false},
		{"the pipeline is draining its stores", false}, // unquoted, not a marker
	}
	for _, tc := range cases {
		if got := isDrainingBody([]byte(tc.body)); got != tc.want {
			t.Errorf("isDrainingBody(%q) = %v, want %v", tc.body, got, tc.want)
		}
	}
}

// TestProbePaddedDrainEnvelope: the prober recognizes a draining backend
// whose refusal envelope buries the marker past 64 bytes — the regression
// the widened sniff exists for.
func TestProbePaddedDrainEnvelope(t *testing.T) {
	envelope := `{"error":{"message":"server is shutting down; in-flight work will finish, please retry another backend","kind":"draining"}}` + "\n"
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(envelope)) //nolint:errcheck
	}))
	defer stub.Close()

	rt, err := New(Config{
		Backends:      []string{strings.TrimPrefix(stub.URL, "http://")},
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	deadline := time.Now().Add(3 * time.Second)
	for !rt.backends[0].draining.Load() {
		if time.Now().After(deadline) {
			t.Fatal("probe never classified the padded 503 envelope as draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Draining, not dead: the backend stays alive to finish what it holds.
	if !rt.backends[0].ready.Load() {
		t.Error("padded draining envelope marked the backend unready; draining backends stay alive")
	}
}

func TestValidTimeoutQuery(t *testing.T) {
	cases := []struct {
		q    string
		want bool
	}{
		{"", true},
		{"timeout_ms=500", true},
		{"a=b&timeout_ms=10", true},
		{"timeout_ms=0", false},
		{"timeout_ms=-3", false},
		{"timeout_ms=abc", false},
		{"section=fig4", true},
		// The backend unescapes '%' and '+' forms before its Atoi, so raw
		// values Atoi alone would misjudge must not pass: "+5" is " 5" (a
		// 400) there, "%35" is "5" (accepted, but forgoing the cache for an
		// escaped value is the safe direction).
		{"timeout_ms=+5", false},
		{"timeout_ms=%35", false},
		{"timeout_ms=5%", false},
		{"timeout_ms=1e2", false},
	}
	for _, tc := range cases {
		if got := validTimeoutQuery(tc.q); got != tc.want {
			t.Errorf("validTimeoutQuery(%q) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestCanonCacheKeyGate(t *testing.T) {
	plain := []byte(`{"workload":"cmp","model":"sentinel","width":4}`)

	k, ok := canonCacheKey(http.MethodPost, "/v1/simulate", "", plain)
	if !ok {
		t.Fatal("plain simulate body failed the canonical gate")
	}
	// When the gate passes, the cache key IS the routing key: one fingerprint
	// for affinity and memoization both.
	if want := httpRouteKey(http.MethodPost, "/v1/simulate", "", plain); k != want {
		t.Error("canonical cache key differs from the routing key for an accepted body")
	}
	reordered := []byte(`{"width":4, "model":"sentinel", "workload":"cmp"}`)
	if k2, ok := canonCacheKey(http.MethodPost, "/v1/simulate", "", reordered); !ok || k2 != k {
		t.Error("reordered fields must canonicalize to the same key")
	}

	refused := []struct {
		name         string
		method, path string
		rawQuery     string
		body         []byte
	}{
		{"unknown field", http.MethodPost, "/v1/simulate", "", []byte(`{"workload":"cmp","model":"sentinel","width":4,"bogus":1}`)},
		{"full trace", http.MethodPost, "/v1/simulate", "", []byte(`{"workload":"cmp","model":"sentinel","width":4,"full":true}`)},
		{"fault injection", http.MethodPost, "/v1/simulate", "", []byte(`{"workload":"cmp","model":"sentinel","width":4,"fault_segment":"a"}`)},
		{"malformed json", http.MethodPost, "/v1/simulate", "", []byte(`{"workload":`)},
		{"invalid timeout", http.MethodPost, "/v1/simulate", "timeout_ms=abc", plain},
		{"wrong method", http.MethodGet, "/v1/simulate", "", plain},
		{"figures post", http.MethodPost, "/v1/figures", "section=fig4", nil},
		{"unknown path", http.MethodPost, "/v1/other", "", plain},
	}
	for _, tc := range refused {
		if _, ok := canonCacheKey(tc.method, tc.path, tc.rawQuery, tc.body); ok {
			t.Errorf("%s: canonical gate accepted a body the backend would refuse (or a non-API path)", tc.name)
		}
	}

	if _, ok := canonCacheKey(http.MethodPost, "/v1/schedule", "", plain); !ok {
		t.Error("plain schedule body failed the canonical gate")
	}
	if _, ok := canonCacheKey(http.MethodGet, "/v1/figures", "section=fig4", nil); !ok {
		t.Error("figures GET failed the canonical gate")
	}
}
